// Setagreement: the workload that motivates the paper — adaptive set
// consensus under a non-uniform failure model. Runs Algorithm 1 under
// random α-model schedules and the Section 6 simulation over iterated
// R_A for the Figure 5b adversary ({p2}, {p1,p3} and supersets), whose
// agreement power is 1 for partial participation and 2 at full
// participation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	fact "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	adv, err := fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	if err != nil {
		return err
	}
	fmt.Printf("adversary %v — fair=%v, setcon=%d\n", adv, adv.IsFair(), adv.Setcon())
	fmt.Println("agreement function (adaptivity):")
	for _, p := range []fact.ProcSet{
		fact.SetOf(1), fact.SetOf(0, 2), fact.SetOf(0, 1), fact.FullSet(3),
	} {
		fmt.Printf("  α(%v) = %d\n", p, adv.Alpha(p))
	}

	model, err := fact.NewModel(adv)
	if err != nil {
		return err
	}
	fmt.Printf("affine task: %s\n", model.Stats())

	// Theorem 7: Algorithm 1 under 200 random adversarial schedules.
	rep := model.VerifyAlgorithmOne(200, 42)
	fmt.Printf("Algorithm 1: liveness %d/%d, safety %d/%d\n",
		rep.Liveness, rep.Trials, rep.Safety, rep.Trials)

	// Properties 9/10/12 of the μ_Q leader map, exhaustively.
	if err := model.VerifyMuQ(); err != nil {
		return fmt.Errorf("μ_Q properties: %w", err)
	}
	fmt.Println("μ_Q properties 9/10/12: verified exhaustively over R_A facets")

	// Section 6: α-adaptive set consensus in iterated R_A, with a
	// detailed sample run at full participation.
	sim := model.VerifySetConsensusSimulation(200, 42)
	fmt.Printf("§6 simulation: %d/%d runs valid, max distinct decisions %d (bound α(Π)=%d)\n",
		sim.OK, sim.Trials, sim.MaxDistinct, adv.Alpha(fact.FullSet(3)))

	// One verbose run for illustration.
	fmt.Println("sample run with proposals p1→x, p2→y, p3→z:")
	out, err := sampleRun(model)
	if err != nil {
		return err
	}
	for _, p := range fact.FullSet(3).Members() {
		fmt.Printf("  %v decided %q at iteration %d\n", p, out.Decisions[p], out.DecidedAt[p])
	}
	return nil
}

// sampleRun executes one validated simulation run.
func sampleRun(model *fact.Model) (*fact.SimResult, error) {
	sim := model.NewSetConsensusSim()
	rng := rand.New(rand.NewSource(7))
	proposals := map[fact.ProcID]string{0: "x", 1: "y", 2: "z"}
	out, err := sim.Run(proposals, rng)
	if err != nil {
		return nil, err
	}
	if err := out.Validate(proposals); err != nil {
		return nil, err
	}
	return out, nil
}
