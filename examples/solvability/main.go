// Solvability: the FACT theorem as a decision procedure. For a sweep of
// fair adversaries, predict k-set consensus solvability from setcon and
// confirm it with the simplicial-map search on R_A — the computational
// content of Theorem 16.
package main

import (
	"errors"
	"fmt"
	"log"

	fact "repro"
	"repro/internal/solver"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fig5b, err := fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	if err != nil {
		return err
	}
	models := []struct {
		name string
		adv  *fact.Adversary
	}{
		{"1-obstruction-free", fact.KObstructionFree(3, 1)},
		{"2-obstruction-free", fact.KObstructionFree(3, 2)},
		{"1-resilient", fact.TResilient(3, 1)},
		{"fig5b ({p2},{p1,p3}+supersets)", fig5b},
		{"wait-free", fact.WaitFree(3)},
	}

	fmt.Println("FACT solvability sweep: k-set consensus, n=3")
	fmt.Println("prediction: solvable ⇔ k ≥ setcon(A)")
	fmt.Println()
	for _, mdl := range models {
		m, err := fact.NewModel(mdl.adv)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s setcon=%d  R_A facets=%d\n",
			mdl.name, m.Setcon(), m.AffineTask().NumFacets())
		for k := 1; k <= 3; k++ {
			res, err := m.SolveKSetConsensus(k, 1)
			verdict := ""
			switch {
			case errors.Is(err, solver.ErrSearchLimit):
				// The wait-free k=2 Sperner obstruction exceeds the
				// bounded search; impossibility there is the classical
				// ACT result.
				verdict = "undecided by bounded search (known unsolvable: Sperner/ACT)"
			case err != nil:
				return err
			case res.Solvable:
				verdict = fmt.Sprintf("solvable (map at ℓ=%d)", res.Rounds)
			default:
				verdict = "no map (unsolvable)"
			}
			marker := "✓"
			predicted := k >= m.Setcon()
			if err == nil && res.Solvable != predicted {
				marker = "✗ MISMATCH"
			}
			fmt.Printf("    k=%d: %-55s %s\n", k, verdict, marker)
		}
		fmt.Println()
	}
	return nil
}
