// Quickstart: build the affine task R_A of a fair adversary and print
// the paper's headline numbers — the Figure 1 census, the task's size,
// and the FACT equivalence in action for set consensus.
package main

import (
	"fmt"
	"log"

	fact "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The 1-resilient 3-process model: the running example of the paper
	// (Figure 1b).
	adv := fact.TResilient(3, 1)
	fmt.Printf("adversary: %v\n", adv)
	fmt.Printf("  fair: %v, superset-closed: %v, symmetric: %v\n",
		adv.IsFair(), adv.IsSupersetClosed(), adv.IsSymmetric())
	fmt.Printf("  set-consensus power (setcon): %d\n", adv.Setcon())

	model, err := fact.NewModel(adv)
	if err != nil {
		return err
	}
	fmt.Printf("affine task: %s\n", model.Stats())

	// FACT, constructive direction: Algorithm 1 solves R_A in the
	// α-model. Verify over 50 random failure-injecting schedules.
	report := model.VerifyAlgorithmOne(50, 2024)
	fmt.Printf("Algorithm 1: liveness %d/%d, safety %d/%d (mean %.0f shared steps)\n",
		report.Liveness, report.Trials, report.Safety, report.Trials, report.MeanSteps)

	// FACT, solvability direction: k-set consensus is solvable iff
	// k ≥ setcon — decided by simplicial-map search on R_A.
	for k := 1; k <= 3; k++ {
		res, err := model.SolveKSetConsensus(k, 1)
		if err != nil {
			return err
		}
		verdict := "NO MAP (unsolvable)"
		if res.Solvable {
			verdict = fmt.Sprintf("map found at ℓ=%d", res.Rounds)
		}
		fmt.Printf("  %d-set consensus: %s\n", k, verdict)
	}
	return nil
}
