// Classify: the Figure 2 census as data, computed by the sharded
// parallel census engine. Sweeps every adversary of a small system,
// classifies it (superset-closed / symmetric / fair), verifies the
// paper's inclusion claims, and prints the distribution of
// set-consensus powers across the fair class.
package main

import (
	"fmt"
	"log"

	fact "repro"
)

func main() {
	if err := run(3); err != nil {
		log.Fatal(err)
	}
}

func run(n int) error {
	rep, err := fact.RunCensus(n, fact.CensusOptions{})
	if err != nil {
		return err
	}
	s := rep.Summary

	fmt.Printf("adversary census, n=%d\n", n)
	fmt.Printf("  total:            %4d\n", s.Total)
	fmt.Printf("  superset-closed:  %4d (all fair: %v)\n", s.SupersetClosed, s.InclusionViolations == 0)
	fmt.Printf("  symmetric:        %4d (all fair: %v)\n", s.Symmetric, s.InclusionViolations == 0)
	fmt.Printf("  fair:             %4d\n", s.Fair)
	fmt.Printf("  unfair:           %4d (outside the FACT theorem's class)\n", s.Total-s.Fair)
	fmt.Println("  setcon histogram over fair adversaries:")
	for k, c := range s.SetconHist {
		if c > 0 {
			fmt.Printf("    setcon=%d: %d adversaries\n", k, c)
		}
	}
	// Figure 2: superset-closed ⊂ fair and symmetric ⊂ fair.
	for _, e := range rep.Entries {
		if (e.SupersetClosed || e.Symmetric) && !e.Fair {
			fmt.Printf("  INCLUSION VIOLATION: %s\n", e.Adversary)
		}
	}

	// A concrete unfair adversary, with its fairness witness.
	unfair, err := fact.NewAdversary(3, fact.SetOf(0, 1), fact.SetOf(2))
	if err != nil {
		return err
	}
	p, q, isFair := unfair.FairnessWitness()
	fmt.Printf("example unfair adversary %v: fair=%v, witness P=%v Q=%v\n", unfair, isFair, p, q)
	return nil
}
