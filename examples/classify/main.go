// Classify: the Figure 2 census as data. Enumerates every adversary of
// a small system, classifies it (superset-closed / symmetric / fair),
// verifies the paper's inclusion claims, and prints the distribution of
// set-consensus powers across the fair class.
package main

import (
	"fmt"
	"log"

	fact "repro"
)

func main() {
	if err := run(3); err != nil {
		log.Fatal(err)
	}
}

func run(n int) error {
	total, superset, symmetric, fair := 0, 0, 0, 0
	setconHist := map[int]int{}
	var inclusionViolations int

	fact.EnumerateAdversaries(n, func(a *fact.Adversary) bool {
		total++
		ss := a.IsSupersetClosed()
		sym := a.IsSymmetric()
		fr := a.IsFair()
		if ss {
			superset++
		}
		if sym {
			symmetric++
		}
		if fr {
			fair++
			setconHist[a.Setcon()]++
		}
		// Figure 2: superset-closed ⊂ fair and symmetric ⊂ fair.
		if (ss || sym) && !fr {
			inclusionViolations++
			fmt.Printf("  INCLUSION VIOLATION: %v\n", a)
		}
		return true
	})

	fmt.Printf("adversary census, n=%d\n", n)
	fmt.Printf("  total:            %4d\n", total)
	fmt.Printf("  superset-closed:  %4d (all fair: %v)\n", superset, inclusionViolations == 0)
	fmt.Printf("  symmetric:        %4d (all fair: %v)\n", symmetric, inclusionViolations == 0)
	fmt.Printf("  fair:             %4d\n", fair)
	fmt.Printf("  unfair:           %4d (outside the FACT theorem's class)\n", total-fair)
	fmt.Println("  setcon histogram over fair adversaries:")
	for k := 0; k <= n; k++ {
		if c, ok := setconHist[k]; ok {
			fmt.Printf("    setcon=%d: %d adversaries\n", k, c)
		}
	}

	// A concrete unfair adversary, with its fairness witness.
	unfair, err := fact.NewAdversary(3, fact.SetOf(0, 1), fact.SetOf(2))
	if err != nil {
		return err
	}
	p, q, isFair := unfair.FairnessWitness()
	fmt.Printf("example unfair adversary %v: fair=%v, witness P=%v Q=%v\n", unfair, isFair, p, q)
	return nil
}
