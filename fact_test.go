package fact

import (
	"strings"
	"testing"
)

func TestModelLifecycle(t *testing.T) {
	a := KObstructionFree(3, 1)
	m, err := NewModel(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.Setcon() != 1 {
		t.Errorf("metadata wrong: n=%d setcon=%d", m.N(), m.Setcon())
	}
	if m.Alpha(FullSet(3)) != 1 {
		t.Errorf("alpha wrong")
	}
	if m.AffineTask().NumFacets() != 73 {
		t.Errorf("R_A facets = %d, want 73", m.AffineTask().NumFacets())
	}
	if !strings.Contains(m.Stats(), "73 facets") {
		t.Errorf("stats = %s", m.Stats())
	}
	if m.Adversary() != a {
		t.Errorf("adversary accessor wrong")
	}
}

func TestModelSolveConsensus(t *testing.T) {
	m, err := NewModel(KObstructionFree(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveKSetConsensus(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable {
		t.Errorf("consensus must be solvable under 1-OF")
	}
	// FACT's negative direction: 1-resilience (setcon 2) cannot solve
	// consensus.
	m2, err := NewModel(TResilient(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.SolveKSetConsensus(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Solvable {
		t.Errorf("consensus must be unsolvable under 1-resilience")
	}
}

func TestModelVerifications(t *testing.T) {
	m, err := NewModel(TResilient(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyMuQ(); err != nil {
		t.Errorf("μ_Q: %v", err)
	}
	r1 := m.VerifyAlgorithmOne(20, 7)
	if r1.Safety != r1.Trials {
		t.Errorf("Algorithm 1 safety %d/%d: %v", r1.Safety, r1.Trials, r1.Violations)
	}
	r2 := m.VerifySetConsensusSimulation(20, 7)
	if r2.OK != r2.Trials {
		t.Errorf("simulation %d/%d: %v", r2.OK, r2.Trials, r2.Violations)
	}
}

func TestModelFigures(t *testing.T) {
	m, err := NewModel(KObstructionFree(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{
		FigureChr, FigureAffineTask, FigureContention, FigureCritical, FigureConcurrency,
	} {
		svg, err := m.FigureSVG(kind)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if !strings.HasPrefix(svg, "<svg") {
			t.Errorf("%s: not an SVG", kind)
		}
	}
	if _, err := m.FigureSVG("nonsense"); err == nil {
		t.Errorf("unknown figure kind must fail")
	}
}

func TestNewModelEmptyAdversary(t *testing.T) {
	// An adversary with α(Π) = 0 (no live set) yields an empty affine
	// task and must be rejected.
	a, err := NewAdversary(3, SetOf(0))
	if err != nil {
		t.Fatal(err)
	}
	// α(Π) = 1 here; instead build one whose restriction kills it:
	// actually a single live set {p1} gives α(Π)=1, fine. Use the truly
	// empty adversary.
	empty, err := NewAdversary(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(empty); err == nil {
		t.Errorf("empty adversary must be rejected")
	}
	if _, err := NewModel(a); err != nil {
		t.Errorf("singleton adversary should work: %v", err)
	}
}

// TestSharedUniverseModels builds several models over one shared Chr²
// vertex identity space and checks they behave like privately-interned
// ones, including witness verification through the public API.
func TestSharedUniverseModels(t *testing.T) {
	u := NewUniverse(3)
	advs := []*Adversary{TResilient(3, 1), KObstructionFree(3, 1)}
	for _, a := range advs {
		m, err := NewModelWithUniverse(u, a)
		if err != nil {
			t.Fatal(err)
		}
		k := m.Setcon()
		res, err := m.SolveKSetConsensus(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solvable {
			t.Fatalf("%v: %d-set consensus should be solvable", a, k)
		}
		task := KSetConsensus(3, k)
		if err := m.VerifyWitness(task, res.Rounds, res.Map); err != nil {
			t.Errorf("%v: witness rejected: %v", a, err)
		}
	}
	if _, err := NewModelWithUniverse(NewUniverse(4), TResilient(3, 1)); err == nil {
		t.Error("mismatched universe size should be rejected")
	}
}
