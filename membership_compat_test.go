package fact

import "testing"

// TestMembershipCompatShim is the deprecation-shim gate for the
// flat-array engine redesign: external callers holding the old
// callback-based Membership signature must keep compiling and working
// against the public surface — the callback form stays a supported
// compat path beside the rank-indexed tables.
func TestMembershipCompatShim(t *testing.T) {
	// The old signature, exactly as pre-redesign callers wrote it.
	var member Membership = func(r Run2, key RunKey) bool {
		return len(r.R1) <= 2
	}

	// Callback → table: the adapter bridges old callers onto the
	// rank-indexed engine.
	tables := TablesOf(member)
	ground := FullSet(3)
	mt := tables.MembershipTable(ground)
	if mt.Ground() != ground {
		t.Fatalf("table ground = %v, want %v", mt.Ground(), ground)
	}
	if mt.Len() == 0 || mt.Len() == mt.NumRuns() {
		t.Fatalf("restricted predicate should accept a strict non-empty subset, got %d/%d", mt.Len(), mt.NumRuns())
	}

	// Direct table construction from the old signature.
	if direct := NewMembershipTable(ground, member); direct.Len() != mt.Len() {
		t.Fatalf("direct table Len %d != adapted Len %d", direct.Len(), mt.Len())
	}

	// Table → callback: the reverse adapter hands old-style consumers a
	// working predicate again.
	back := mt.Membership()
	if back == nil {
		t.Fatal("Membership() adapter returned nil")
	}

	// The full-complex sentinels exist in both forms.
	if FullChr2Membership == nil {
		t.Fatal("FullChr2Membership gone")
	}
	if full := FullChr2Tables.MembershipTable(ground); full.Len() != full.NumRuns() {
		t.Fatal("FullChr2Tables rejected runs")
	}

	// An affine task still hands out the callback form, and it agrees
	// with the task's native tables.
	m, err := NewModel(TResilient(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	task := m.AffineTask()
	var taskTables MemberTables = task // native provider, no adapter
	old := task.Membership()
	tmt := taskTables.MembershipTable(ground)
	count := 0
	for _, r := range task.Facets() {
		if !old(r, r.Key()) {
			t.Fatalf("task callback rejected its own facet %v", r)
		}
		count++
	}
	if count == 0 || tmt.Len() != count {
		t.Fatalf("task table has %d full-ground runs, facets %d", tmt.Len(), count)
	}
}
