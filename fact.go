// Package fact is the public API of the reproduction of "An Asynchronous
// Computability Theorem for Fair Adversaries" (Kuznetsov, Rieutord, He;
// PODC 2018). It ties together the internal engines:
//
//   - adversaries and agreement functions (Section 3),
//   - the standard chromatic subdivision and IIS combinatorics
//     (Section 2),
//   - affine tasks R_A, R_{k-OF} and R_{t-res} (Section 4),
//   - Algorithm 1 solving R_A in the α-model (Section 5),
//   - the μ_Q simulation of the adversarial model in R_A^* (Section 6),
//   - the FACT solvability decision procedure (Theorem 16), and
//   - regeneration of the paper's figures.
//
// The central entry point is Model: build one from an adversary and ask
// it for its affine task, run the constructive algorithms, decide task
// solvability, and render figures.
package fact

import (
	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/census"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/procs"
	"repro/internal/sc"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/tasks"
)

// Re-exported core types. The aliases make the public surface self
// contained: examples and downstream users never import internal
// packages.
type (
	// ProcID identifies a process (0-based; prints as p1..pn).
	ProcID = procs.ID
	// ProcSet is a set of processes.
	ProcSet = procs.Set
	// OrderedPartition is a one-round immediate-snapshot schedule.
	OrderedPartition = procs.OrderedPartition
	// Adversary is a collection of live sets (Section 3).
	Adversary = adversary.Adversary
	// AlphaFunc is an agreement function α: 2^Π → {0..n}.
	AlphaFunc = adversary.AlphaFunc
	// AffineTask is a pure sub-complex of Chr² s (Section 4).
	AffineTask = affine.Task
	// Run2 is a two-round IIS run (a facet of Chr² s).
	Run2 = chromatic.Run2
	// RunKey is the packed binary key of a two-round run.
	RunKey = chromatic.RunKey
	// RunRank is the dense per-ground index of a two-round run — the
	// slot a MembershipTable answers by.
	RunRank = chromatic.RunRank
	// Membership is the generic run-membership callback consumed by the
	// subdivision engine (the compat path; table providers are the fast
	// path).
	Membership = chromatic.Membership
	// MembershipTable is a precomputed rank-indexed membership bitset
	// over one ground set — the flat-array fast path of the engine.
	MembershipTable = chromatic.MembershipTable
	// MemberTables supplies per-ground membership tables; AffineTask
	// implements it natively.
	MemberTables = chromatic.MemberTables
	// Universe interns Chr² s vertices into a shared identity space.
	Universe = chromatic.Universe
	// Task is a distributed task (I, O, Δ) (Section 2).
	Task = tasks.Task
	// SolveResult reports a FACT solvability decision.
	SolveResult = solver.Result
	// VertexMap is a vertex-level simplicial map (witness maps).
	VertexMap = sc.Map
	// SolverOptions tunes the solvability engine (workers, memoization).
	SolverOptions = solver.Options
	// TowerCache memoizes iterated subdivisions R_A^ℓ(I) across queries.
	TowerCache = chromatic.TowerCache
	// CacheStats is a snapshot of a TowerCache (hits, misses, sizes).
	CacheStats = chromatic.CacheStats
	// CensusOptions tunes the parallel adversary-census engine.
	CensusOptions = census.Options
	// CensusEntry is the census record of one adversary.
	CensusEntry = census.Entry
	// CensusSummary aggregates a census run.
	CensusSummary = census.Summary
	// CensusReport is the deterministic result of a census run.
	CensusReport = census.Report
	// CensusSink consumes streamed census entries in enumeration order.
	CensusSink = census.Sink
	// CensusCollector is the in-memory census sink.
	CensusCollector = census.Collector
	// CensusJSONLSink streams census entries as JSON lines to a file.
	CensusJSONLSink = census.JSONLSink
	// CensusCheckpoint is the resume state of a streaming census run.
	CensusCheckpoint = census.Checkpoint
	// CensusExaminer answers single-index census queries on the live
	// computation path (the store query layer's fallback).
	CensusExaminer = census.Examiner
	// CensusStore is the compressed, indexed on-disk census store.
	CensusStore = store.Store
	// CensusStoreStats describes a store's physical shape.
	CensusStoreStats = store.Stats
	// CensusMergeOptions tune a shard merge into a store.
	CensusMergeOptions = store.MergeOptions
	// CensusMergeStats report what one merge did.
	CensusMergeStats = store.MergeStats
	// CensusServer is the HTTP serving layer over a registry of census
	// stores (one mounted store per n, one process for all of them).
	CensusServer = store.Server
	// CensusServeOptions tune the serving layer (caches, auth, rate
	// limiting, logging, batch/range caps).
	CensusServeOptions = store.ServerOptions
	// CensusStoreRegistry mounts many census stores — one per n — for
	// a single serving process.
	CensusStoreRegistry = store.Registry
	// CensusStoreMount is one store mounted under a registry.
	CensusStoreMount = store.Mount
	// CensusAPIKey is one authorized serve-layer key with its rate
	// budget.
	CensusAPIKey = store.APIKey
	// CensusAuthConfig is the serve layer's API-key auth state.
	CensusAuthConfig = store.AuthConfig
	// CensusRangePage is one page of a store range scan.
	CensusRangePage = store.RangePage
	// CensusVerifyOptions tune a store deep check.
	CensusVerifyOptions = store.VerifyOptions
	// CensusVerifyReport is the outcome of a store deep check.
	CensusVerifyReport = store.VerifyReport
	// AdversaryOrbits enumerates color-permutation orbits of the census
	// domain (the -orbits symmetry reduction). Its
	// ForEachCanonicalFrom generator walks canonical representatives
	// directly — output-sensitive in the number of orbits — and is what
	// drives orbit-mode census sweeps; ForEachRepresentative is the
	// filter-based reference scan.
	AdversaryOrbits = adversary.Orbits
	// FabricCampaign is the sweep configuration a census-fabric
	// coordinator distributes to its workers.
	FabricCampaign = fabric.Campaign
	// FabricUnit is one leased work unit of a distributed campaign.
	FabricUnit = fabric.Unit
	// FabricCoordinator serves the v1 lease protocol over a campaign
	// and folds completed shards into the ledger store.
	FabricCoordinator = fabric.Coordinator
	// FabricCoordinatorOptions tune a campaign coordinator.
	FabricCoordinatorOptions = fabric.CoordinatorOptions
	// FabricWorkerOptions configure one fabric worker process.
	FabricWorkerOptions = fabric.WorkerOptions
	// FabricWorkerStats summarize one worker's run.
	FabricWorkerStats = fabric.WorkerStats
	// AlgOneReport aggregates an Algorithm 1 verification campaign.
	AlgOneReport = core.AlgOneReport
	// SetConsensusReport aggregates a Section 6 simulation campaign.
	SetConsensusReport = core.SetConsensusReport
	// SetConsensusSim runs α-adaptive set consensus over iterated R_A.
	SetConsensusSim = core.SetConsensusSim
	// SimResult is one simulated set-consensus execution.
	SimResult = core.SimResult
)

// Adversary constructors, re-exported.
var (
	// NewAdversary builds an adversary from explicit live sets.
	NewAdversary = adversary.New
	// WaitFree is the adversary of all non-empty live sets.
	WaitFree = adversary.WaitFree
	// TResilient is the t-resilient adversary.
	TResilient = adversary.TResilient
	// KObstructionFree is the k-obstruction-free adversary.
	KObstructionFree = adversary.KObstructionFree
	// SupersetClosure generates a superset-closed adversary.
	SupersetClosure = adversary.SupersetClosure
	// SymmetricFromSizes builds a symmetric adversary from live-set sizes.
	SymmetricFromSizes = adversary.SymmetricFromSizes
	// EnumerateAdversaries visits every adversary over n processes.
	EnumerateAdversaries = adversary.EnumerateAdversaries
	// AdversaryAt returns the idx-th adversary of the enumeration order.
	AdversaryAt = adversary.AdversaryAt
	// CensusSize returns the number of adversaries over n processes.
	CensusSize = adversary.CensusSize
	// RunCensus sweeps every adversary over n processes with the
	// sharded, parallel census engine (classify and solve modes),
	// materializing every entry (domains up to census.MaxDomain).
	RunCensus = census.Run
	// StreamCensus sweeps with bounded memory, emitting entries in
	// enumeration order to a sink — checkpointable and resumable, with
	// an orbit symmetry-reduction mode; no domain-size cap.
	StreamCensus = census.Stream
	// NewCensusJSONLSink opens a JSON-lines census stream (a ".gz"
	// path selects gzip compression automatically).
	NewCensusJSONLSink = census.NewJSONLSink
	// NewCensusJSONLSinkCompressed opens a gzip JSON-lines census
	// stream regardless of suffix (the -compress shard form).
	NewCensusJSONLSinkCompressed = census.NewJSONLSinkCompressed
	// SweepCensusRange sweeps exactly the raw enumeration indices
	// [lo, hi) — the rank-range primitive distributed fabric workers
	// drive; disjoint ranges concatenate byte-identically to a full
	// sweep.
	SweepCensusRange = census.SweepRange
	// NewFabricCoordinator builds a campaign coordinator over a ledger
	// store (recovering completed units from its contents).
	NewFabricCoordinator = fabric.NewCoordinator
	// PartitionFabricUnits slices a campaign domain into the disjoint
	// rank-balanced work units a coordinator leases out.
	PartitionFabricUnits = fabric.PartitionUnits
	// FabricWork runs a worker loop against a coordinator until the
	// campaign completes.
	FabricWork = fabric.Work
	// NewCensusExaminer builds a live single-index census query engine.
	NewCensusExaminer = census.NewExaminer
	// LoadCensusCheckpoint reads a census checkpoint sidecar.
	LoadCensusCheckpoint = census.LoadCheckpoint
	// CreateCensusStore initializes an empty census store directory.
	CreateCensusStore = store.Create
	// OpenCensusStore opens an existing census store.
	OpenCensusStore = store.Open
	// OpenOrCreateCensusStore opens a store, creating it when missing.
	OpenOrCreateCensusStore = store.OpenOrCreate
	// RehydrateCensusEntry maps a stored orbit representative's entry
	// onto another index of its orbit (Adversary.Permute).
	RehydrateCensusEntry = store.Rehydrate
	// NewCensusRegistryServer builds the HTTP serving layer over a
	// registry of mounted stores.
	NewCensusRegistryServer = store.NewServer
	// NewCensusServer builds the serving layer over one open store.
	//
	// Deprecated: a one-store shim kept for compatibility — it mounts
	// the store in a fresh registry. New code should build a
	// CensusStoreRegistry and use NewCensusRegistryServer.
	NewCensusServer = store.NewSingleServer
	// NewCensusStoreRegistry returns an empty store registry.
	NewCensusStoreRegistry = store.NewRegistry
	// LoadCensusAPIKeys reads a serve-layer API-key file
	// (name:key[:rate[:burst]] lines).
	LoadCensusAPIKeys = store.LoadAPIKeys
	// NewCensusAuthConfig builds serve-layer auth state from explicit
	// keys.
	NewCensusAuthConfig = store.NewAuthConfig
	// NewAdversaryOrbits precomputes the orbit tables for n processes.
	NewAdversaryOrbits = adversary.NewOrbits
	// AdversaryIndex is the inverse of AdversaryAt.
	AdversaryIndex = adversary.EnumerationIndex
)

// CensusMaxDomain bounds the domains RunCensus materializes in memory;
// StreamCensus has no such cap.
const CensusMaxDomain = census.MaxDomain

// Set helpers, re-exported.
var (
	// SetOf builds a process set.
	SetOf = procs.SetOf
	// FullSet is {p1..pn}.
	FullSet = procs.FullSet
)

// Engine helpers, re-exported.
var (
	// NewUniverse creates an empty Chr² vertex interner for n processes
	// (share one across models of the same n via NewModelWithUniverse).
	NewUniverse = chromatic.NewUniverse
	// NewTowerCache creates an empty iterated-subdivision cache.
	NewTowerCache = chromatic.NewTowerCache
	// NewTowerCacheWithBudget creates a byte-budgeted cache (LRU
	// eviction of least-recently-acquired towers).
	NewTowerCacheWithBudget = chromatic.NewTowerCacheWithBudget
	// SharedUniverse returns the process-wide per-n vertex interner
	// NewModel builds against.
	SharedUniverse = chromatic.SharedUniverse
	// DefaultTowerCache is the process-wide subdivision cache used by
	// Model.Solve and solver.SolveAffine.
	DefaultTowerCache = chromatic.DefaultTowerCache
	// DefaultWorkers returns the default engine worker count (one per CPU).
	DefaultWorkers = chromatic.DefaultWorkers
	// NewMembershipTable precomputes a rank-indexed membership table
	// over one ground set from a Membership callback.
	NewMembershipTable = chromatic.NewMembershipTable
	// TablesOf adapts a Membership callback into a (cached) table
	// provider — the bridge that keeps callback-based callers on the
	// flat-array engine.
	TablesOf = chromatic.TablesOf
	// FullChr2Membership accepts every run: L = Chr² s (callback form).
	FullChr2Membership = chromatic.FullChr2Membership
	// FullChr2Tables accepts every run (table-provider form).
	FullChr2Tables = chromatic.FullChr2Tables
)

// Task constructors and the task-spec registry, re-exported.
var (
	// KSetConsensus is the k-set consensus task with distinct inputs.
	KSetConsensus = tasks.KSetConsensus
	// Consensus is 1-set consensus.
	Consensus = tasks.Consensus
	// LoopAgreement is 3-process loop agreement over a hexagonal loop.
	LoopAgreement = tasks.LoopAgreement
	// ApproxAgreement is ε-approximate agreement over integer values.
	ApproxAgreement = tasks.ApproxAgreement
	// ParseTaskSpec parses a registered task spec string such as
	// "kset:k=2", "loop-agreement" or "approx:eps=1".
	ParseTaskSpec = tasks.ParseSpec
	// KSetTaskSpec builds the spec of k-set consensus.
	KSetTaskSpec = tasks.KSetSpec
	// RegisteredTaskKinds lists the registered task kinds, sorted.
	RegisteredTaskKinds = tasks.RegisteredKinds
	// CensusFamilyKinds lists the adversary-family filter kinds a
	// census sweep accepts.
	CensusFamilyKinds = census.FamilyKinds
)

// TaskSpec is a registered, serializable task identity (kind plus
// integer parameters) the census, store, serve and fabric layers sweep
// and route by.
type TaskSpec = tasks.Spec
