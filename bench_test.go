package fact

// Benchmark harness: one benchmark per experiment of the per-experiment
// index in DESIGN.md (E1–E16). The paper has no wall-clock tables — its
// artifacts are combinatorial objects and constructive theorems — so
// each bench regenerates the corresponding artifact and reports the
// cost of doing so, plus (via -v logs) the measured quantities recorded
// in EXPERIMENTS.md.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/hitting"
	"repro/internal/iis"
	"repro/internal/memory"
	"repro/internal/procs"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// BenchmarkE1Chr regenerates Figure 1a: the standard chromatic
// subdivision for n = 2..5.
func BenchmarkE1Chr(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ops := procs.EnumerateOrderedPartitions(procs.FullSet(n))
				if uint64(len(ops)) != procs.CountOrderedPartitions(n) {
					b.Fatalf("facet count mismatch")
				}
			}
		})
	}
	b.Run("complex/n=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := chromatic.BuildChr1(3)
			if c.NumVertices() != 12 {
				b.Fatalf("vertices = %d", c.NumVertices())
			}
		}
	})
}

// BenchmarkE2RTres regenerates Figure 1b (R_{1-res}, n=3) and the E2
// equality R_{t-res} = R_A.
func BenchmarkE2RTres(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d/t=1", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(n)
				rt, err := affine.BuildRTres(u, 1)
				if err != nil {
					b.Fatal(err)
				}
				ra, err := affine.BuildRA(u, adversary.TResilient(n, 1).Alpha, affine.DefaultVariant)
				if err != nil {
					b.Fatal(err)
				}
				if !ra.Equal(rt) {
					b.Fatalf("E2 equality fails")
				}
			}
		})
	}
}

// BenchmarkE3ISRuns regenerates the Figure 3 objects: IS run validation
// and enumeration.
func BenchmarkE3ISRuns(b *testing.B) {
	ground := procs.FullSet(4)
	b.Run("validate", func(b *testing.B) {
		views := procs.SingletonOrder(1, 0, 2, 3).Views()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := iis.ValidateViews(views); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumerate-2-rounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := len(iis.EnumerateRuns(ground, 2)); got != 75*75 {
				b.Fatalf("runs = %d", got)
			}
		}
	})
}

// BenchmarkE4Cont2 regenerates Figure 4c: the 2-contention complex.
func BenchmarkE4Cont2(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(n)
				simps := affine.Cont2Simplices(u, 1)
				if n == 3 && len(simps) != 84 { // 78 pairs + 6 triangles
					b.Fatalf("census = %d", len(simps))
				}
			}
		})
	}
}

// BenchmarkE5Critical regenerates Figure 5: critical-simplex
// computation across all Chr-s simplices.
func BenchmarkE5Critical(b *testing.B) {
	alphas := map[string]adversary.AlphaFunc{
		"1-OF":  adversary.KObstructionFree(3, 1).Alpha,
		"fig5b": mustFig5b(b).Alpha,
	}
	for name, alpha := range alphas {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				count := 0
				affine.ForEachChr1Simplex(procs.FullSet(3), func(s affine.Chr1Simplex) bool {
					count += len(affine.CriticalSimplices(alpha, s))
					return true
				})
				if count == 0 {
					b.Fatal("no critical simplices")
				}
			}
		})
	}
}

// BenchmarkE6Conc regenerates Figure 6: the concurrency map over Chr s.
func BenchmarkE6Conc(b *testing.B) {
	alpha := mustFig5b(b).Alpha
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		levels := [4]int{}
		affine.ForEachChr1Simplex(procs.FullSet(3), func(s affine.Chr1Simplex) bool {
			levels[affine.Critical(alpha, s).Conc]++
			return true
		})
		if levels[2] == 0 {
			b.Fatal("no level-2 simplices for fig5b")
		}
	}
}

// BenchmarkE7RA regenerates Figure 7: R_A construction per adversary
// and system size.
func BenchmarkE7RA(b *testing.B) {
	cases := []struct {
		name string
		n    int
		adv  *adversary.Adversary
	}{
		{"1-OF/n=3", 3, adversary.KObstructionFree(3, 1)},
		{"fig5b/n=3", 3, mustFig5b(b)},
		{"1-res/n=3", 3, adversary.TResilient(3, 1)},
		{"2-res/n=4", 4, adversary.TResilient(4, 2)},
		{"2-OF/n=4", 4, adversary.KObstructionFree(4, 2)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(c.n)
				if _, err := affine.BuildRA(u, c.adv.Alpha, affine.DefaultVariant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if !testing.Short() {
		b.Run("1-res/n=5", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(5)
				if _, err := affine.BuildRA(u, adversary.TResilient(5, 1).Alpha, affine.DefaultVariant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Census regenerates Figure 2 as data: the adversary census.
func BenchmarkE8Census(b *testing.B) {
	b.Run("n=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fair := 0
			adversary.EnumerateAdversaries(3, func(a *adversary.Adversary) bool {
				if a.IsFair() {
					fair++
				}
				return true
			})
			if fair != 44 {
				b.Fatalf("fair = %d, want 44", fair)
			}
		}
	})
}

// BenchmarkE9RkOF regenerates the E9 comparison: Definition 9 vs
// Definition 6 for k-obstruction-free adversaries.
func BenchmarkE9RkOF(b *testing.B) {
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k=%d/n=3", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(3)
				rkof, err := affine.BuildRkOF(u, k)
				if err != nil {
					b.Fatal(err)
				}
				ra, err := affine.BuildRA(u, adversary.KObstructionFree(3, k).Alpha, affine.DefaultVariant)
				if err != nil {
					b.Fatal(err)
				}
				equal := ra.Equal(rkof)
				if k == 1 && !equal {
					b.Fatal("E9 k=1 equality fails")
				}
				if k == 2 && equal {
					b.Fatal("E9 k=2 should be a strict inclusion")
				}
			}
		})
	}
}

// BenchmarkE10Algorithm1 measures Algorithm 1 runs in the α-model
// (Theorem 7 campaign).
func BenchmarkE10Algorithm1(b *testing.B) {
	advs := map[string]*adversary.Adversary{
		"1-OF":  adversary.KObstructionFree(3, 1),
		"1-res": adversary.TResilient(3, 1),
		"fig5b": mustFig5b(b),
	}
	for name, a := range advs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunAlgorithmOne(core.RunConfig{
					N:            3,
					Alpha:        a.Alpha,
					Participants: procs.FullSet(3),
					Seed:         int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Outputs) != 3 {
					b.Fatal("missing outputs")
				}
			}
		})
	}
}

// BenchmarkE11MuQ measures the μ_Q property verification (Properties
// 9, 10, 12).
func BenchmarkE11MuQ(b *testing.B) {
	a := mustFig5b(b)
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("validity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.CheckMuQValidity(a.Alpha, ra); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("agreement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.CheckMuQAgreement(a.Alpha, ra); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12FACT measures the solvability decision procedure
// (Theorem 16) on the E12 battery.
func BenchmarkE12FACT(b *testing.B) {
	cases := []struct {
		name string
		adv  *adversary.Adversary
		k    int
		want bool
	}{
		{"1-OF/k=1", adversary.KObstructionFree(3, 1), 1, true},
		{"1-res/k=1", adversary.TResilient(3, 1), 1, false},
		{"1-res/k=2", adversary.TResilient(3, 1), 2, true},
		{"fig5b/k=2", mustFig5b(b), 2, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			u := chromatic.NewUniverse(3)
			ra, err := affine.BuildRAForAdversary(u, c.adv, affine.DefaultVariant)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := solver.SolveAffine(tasks.KSetConsensus(3, c.k), ra, 1)
				if err != nil {
					b.Fatal(err)
				}
				if res.Solvable != c.want {
					b.Fatalf("solvable = %v, want %v", res.Solvable, c.want)
				}
			}
		})
	}
}

// BenchmarkE13Compactness measures bounded-round solvability discovery
// (the compactness story of Section 1).
func BenchmarkE13Compactness(b *testing.B) {
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRA(u, adversary.TResilient(3, 1).Alpha, affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := solver.SolveAffine(tasks.KSetConsensus(3, 2), ra, 2)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Solvable || res.Rounds != 1 {
			b.Fatalf("unexpected result %+v", res)
		}
	}
}

// BenchmarkE14Lemma3 measures the distribution-lemma verification
// (Lemma 3 + Corollary 4).
func BenchmarkE14Lemma3(b *testing.B) {
	a := mustFig5b(b)
	for i := 0; i < b.N; i++ {
		affine.ForEachChr1Simplex(procs.FullSet(3), func(s affine.Chr1Simplex) bool {
			for l := 1; l <= 3; l++ {
				if ok, _ := affine.CheckLemma3(a.Alpha, s, l); !ok {
					b.Fatal("Lemma 3 violated")
				}
				if !affine.CheckCorollary4(a.Alpha, s, l) {
					b.Fatal("Corollary 4 violated")
				}
			}
			return true
		})
	}
}

// BenchmarkE16Setcon measures agreement-function computation: setcon
// with memoization, csize, and the fairness decision.
func BenchmarkE16Setcon(b *testing.B) {
	b.Run("setcon/t-res/n=6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := adversary.TResilient(6, 2)
			if a.Setcon() != 3 {
				b.Fatal("setcon wrong")
			}
		}
	})
	b.Run("csize/t-res/n=6", func(b *testing.B) {
		a := adversary.TResilient(6, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hitting.Size(a.LiveSets()) != 3 {
				b.Fatal("csize wrong")
			}
		}
	})
	b.Run("fairness/fig5b", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !mustFig5b(b).IsFair() {
				b.Fatal("fig5b must be fair")
			}
		}
	})
}

// BenchmarkAblationDef9 compares the two guard readings of Definition 9
// (the design decision documented in DESIGN.md).
func BenchmarkAblationDef9(b *testing.B) {
	a := adversary.TResilient(3, 1)
	for _, v := range []affine.Def9Variant{affine.VariantIntersection, affine.VariantUnion} {
		name := "intersection"
		if v == affine.VariantUnion {
			name = "union"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := chromatic.NewUniverse(3)
				if _, err := affine.BuildRA(u, a.Alpha, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubstrates measures the shared-memory substrate: immediate
// snapshot objects and the cooperative scheduler.
func BenchmarkSubstrates(b *testing.B) {
	b.Run("immediate-snapshot/n=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			is := memory.NewImmediateSnapshot[procs.ID](4)
			_, err := sched.Run(sched.Config{
				N: 4, Participants: procs.FullSet(4), Seed: int64(i),
			}, func(ctx *sched.Context) error {
				is.WriteSnapshot(ctx, ctx.ID(), ctx.ID())
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure-svg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(render.Chr1SVG(3)) == 0 {
				b.Fatal("empty svg")
			}
		}
	})
}

// BenchmarkSection6Simulation measures the §6 α-adaptive set-consensus
// simulation throughput.
func BenchmarkSection6Simulation(b *testing.B) {
	a := mustFig5b(b)
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	sim := core.NewSetConsensusSim(ra, a.Alpha)
	rng := rand.New(rand.NewSource(1))
	proposals := map[procs.ID]string{0: "x", 1: "y", 2: "z"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(proposals, rng)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Validate(proposals); err != nil {
			b.Fatal(err)
		}
	}
}

func mustFig5b(b *testing.B) *adversary.Adversary {
	b.Helper()
	a, err := adversary.SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		b.Fatal(err)
	}
	return a
}
