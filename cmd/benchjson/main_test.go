package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelApplyAffine/2-OF/n=4/serial         	       3	  50578205 ns/op	20141378 B/op	  518064 allocs/op
BenchmarkE7RA/1-res/n=3                              	       3	    304853 ns/op	  120181 B/op	    2577 allocs/op
PASS
ok  	repro	19.336s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", f.Goos, f.Goarch)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkParallelApplyAffine/2-OF/n=4/serial" || b.Pkg != "repro" {
		t.Errorf("name/pkg = %q/%q", b.Name, b.Pkg)
	}
	if b.Runs != 3 || b.NsPerOp != 50578205 || b.BytesPerOp != 20141378 || b.AllocsPerOp != 518064 {
		t.Errorf("parsed values: %+v", b)
	}
}

func TestCompareGate(t *testing.T) {
	oldF, _ := Parse(strings.NewReader(sample))
	regressed := strings.Replace(sample, "  50578205 ns/op", "  90578205 ns/op", 1)
	newF, err := Parse(strings.NewReader(regressed))
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(oldF, newF, regexp.MustCompile(`ApplyAffine`))
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	var hit *Delta
	for i := range deltas {
		if deltas[i].Tracked {
			hit = &deltas[i]
		}
	}
	if hit == nil {
		t.Fatal("no tracked delta for ApplyAffine")
	}
	if hit.Percent < 20 {
		t.Errorf("regression percent = %.1f, want > 20", hit.Percent)
	}
	for _, d := range deltas {
		if strings.Contains(d.Name, "E7RA") && d.Tracked {
			t.Errorf("E7RA should not be tracked by the ApplyAffine gate")
		}
	}
}

const latencySample = `goos: linux
goarch: amd64
pkg: repro/internal/store
BenchmarkServeClassifyLatency-8   	    1000	   180000 ns/op	  520000 p99-ns/op	 2048 B/op	   40 allocs/op
PASS
`

func TestParseCustomMetric(t *testing.T) {
	f, err := Parse(strings.NewReader(latencySample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.NsPerOp != 180000 || b.BytesPerOp != 2048 || b.AllocsPerOp != 40 {
		t.Errorf("standard columns: %+v", b)
	}
	if got := b.Metrics["p99-ns/op"]; got != 520000 {
		t.Errorf("p99-ns/op = %v, want 520000", got)
	}
}

// bump reproduces the sample with one column value replaced.
func bump(t *testing.T, sample, old, new string) *File {
	t.Helper()
	if !strings.Contains(sample, old) {
		t.Fatalf("sample lacks %q", old)
	}
	f, err := Parse(strings.NewReader(strings.Replace(sample, old, new, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGateCustomMetric(t *testing.T) {
	oldF, _ := Parse(strings.NewReader(latencySample))
	newF := bump(t, latencySample, "520000 p99-ns/op", "720000 p99-ns/op")
	deltas := Compare(oldF, newF, regexp.MustCompile(`Serve`))
	if len(deltas) != 1 || !deltas[0].Tracked {
		t.Fatalf("deltas: %+v", deltas)
	}
	if unit, bad := deltas[0].regressed(20, 20); !bad || unit != "p99-ns/op" {
		t.Fatalf("p99 regression not gated: unit=%q bad=%v", unit, bad)
	}
	// The same p99 jump within threshold passes.
	okF := bump(t, latencySample, "520000 p99-ns/op", "560000 p99-ns/op")
	deltas = Compare(oldF, okF, regexp.MustCompile(`Serve`))
	if _, bad := deltas[0].regressed(20, 20); bad {
		t.Fatal("sub-threshold p99 delta tripped the gate")
	}
}

func TestGateAllocRegression(t *testing.T) {
	oldF, _ := Parse(strings.NewReader(sample))
	newF := bump(t, sample, "  518064 allocs/op", "  718064 allocs/op")
	deltas := Compare(oldF, newF, regexp.MustCompile(`ApplyAffine`))
	var hit *Delta
	for i := range deltas {
		if deltas[i].Tracked {
			hit = &deltas[i]
		}
	}
	if hit == nil {
		t.Fatal("no tracked delta")
	}
	if unit, bad := hit.regressed(20, 20); !bad || unit != "allocs/op" {
		t.Fatalf("alloc regression not gated: unit=%q bad=%v", unit, bad)
	}
	if _, bad := hit.regressed(20, 0); bad {
		t.Fatal("alloc gate fired with alloc-threshold disabled")
	}
}

func TestAllocGateFloor(t *testing.T) {
	// 40 allocs/op baseline is below the floor: even a huge percentage
	// jump must not trip the gate.
	oldF, _ := Parse(strings.NewReader(latencySample))
	newF := bump(t, latencySample, "   40 allocs/op", "   63 allocs/op")
	deltas := Compare(oldF, newF, regexp.MustCompile(`Serve`))
	if _, bad := deltas[0].regressed(100, 20); bad {
		t.Fatal("alloc gate fired below the floor")
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkBroken-8\nBenchmarkAlso 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Errorf("malformed lines parsed: %+v", f.Benchmarks)
	}
}
