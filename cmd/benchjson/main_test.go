package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelApplyAffine/2-OF/n=4/serial         	       3	  50578205 ns/op	20141378 B/op	  518064 allocs/op
BenchmarkE7RA/1-res/n=3                              	       3	    304853 ns/op	  120181 B/op	    2577 allocs/op
PASS
ok  	repro	19.336s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", f.Goos, f.Goarch)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkParallelApplyAffine/2-OF/n=4/serial" || b.Pkg != "repro" {
		t.Errorf("name/pkg = %q/%q", b.Name, b.Pkg)
	}
	if b.Runs != 3 || b.NsPerOp != 50578205 || b.BytesPerOp != 20141378 || b.AllocsPerOp != 518064 {
		t.Errorf("parsed values: %+v", b)
	}
}

func TestCompareGate(t *testing.T) {
	oldF, _ := Parse(strings.NewReader(sample))
	regressed := strings.Replace(sample, "  50578205 ns/op", "  90578205 ns/op", 1)
	newF, err := Parse(strings.NewReader(regressed))
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(oldF, newF, regexp.MustCompile(`ApplyAffine`))
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	var hit *Delta
	for i := range deltas {
		if deltas[i].Tracked {
			hit = &deltas[i]
		}
	}
	if hit == nil {
		t.Fatal("no tracked delta for ApplyAffine")
	}
	if hit.Percent < 20 {
		t.Errorf("regression percent = %.1f, want > 20", hit.Percent)
	}
	for _, d := range deltas {
		if strings.Contains(d.Name, "E7RA") && d.Tracked {
			t.Errorf("E7RA should not be tracked by the ApplyAffine gate")
		}
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkBroken-8\nBenchmarkAlso 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Errorf("malformed lines parsed: %+v", f.Benchmarks)
	}
}
