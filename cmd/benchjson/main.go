// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON artifact and gates benchmark regressions in CI:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson convert -out BENCH_123.json
//	benchjson compare -old BENCH_prev.json -new BENCH_123.json -threshold 20 -alloc-threshold 20 -match 'ApplyAffine|Solve|Census'
//
// convert parses the text format into {benchmarks: [{name, pkg, runs,
// ns_per_op, bytes_per_op, allocs_per_op, metrics}]}; metrics holds any
// custom b.ReportMetric units (e.g. the serve bench's p99-ns/op).
// compare matches benchmarks by (pkg, name) and fails (exit 1) when any
// benchmark matching -match regressed in ns/op or a custom metric by
// more than -threshold percent, or in allocs/op by more than
// -alloc-threshold percent (benchmarks allocating fewer than 64
// allocs/op are below the alloc-gate floor: percentage swings there are
// noise, not regressions).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`

	// Metrics holds custom b.ReportMetric values by unit, e.g.
	// "p99-ns/op" from the serve latency benchmark.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON artifact schema.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchjson convert|compare [flags]")
	}
	switch args[0] {
	case "convert":
		return cmdConvert(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want convert or compare)", args[0])
	}
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "JSON destination (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// Parse reads `go test -bench` text output.
func Parse(r io.Reader) (*File, error) {
	file := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			file.Benchmarks = append(file.Benchmarks, b)
		}
	}
	return file, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName-8   10   123456 ns/op   456 B/op   7 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = f
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric units ride along by name.
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = f
			}
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// Delta is one (old, new) comparison.
type Delta struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Percent float64 // (new-old)/old * 100

	OldBytes, NewBytes   int64
	OldAllocs, NewAllocs int64
	AllocPercent         float64 // allocs/op delta; 0 when old is 0

	Metrics []MetricDelta // custom metrics present on both sides

	Tracked bool
}

// MetricDelta is one custom-metric (old, new) comparison.
type MetricDelta struct {
	Unit     string
	Old, New float64
	Percent  float64
}

// allocGateFloor is the smallest baseline allocs/op the alloc gate
// fires on: below it a one-alloc swing is a double-digit percentage,
// so tiny benchmarks would flap the gate on noise.
const allocGateFloor = 64

// Compare joins two files by (pkg, name) and computes ns/op, alloc and
// custom-metric deltas; tracked marks benchmarks matching the gate
// expression.
func Compare(oldF, newF *File, tracked *regexp.Regexp) []Delta {
	type key struct{ pkg, name string }
	old := make(map[key]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		old[key{b.Pkg, b.Name}] = b
	}
	var out []Delta
	for _, b := range newF.Benchmarks {
		prev, ok := old[key{b.Pkg, b.Name}]
		if !ok {
			continue
		}
		d := Delta{
			Name:      b.Name,
			OldNs:     prev.NsPerOp,
			NewNs:     b.NsPerOp,
			Percent:   (b.NsPerOp - prev.NsPerOp) / prev.NsPerOp * 100,
			OldBytes:  prev.BytesPerOp,
			NewBytes:  b.BytesPerOp,
			OldAllocs: prev.AllocsPerOp,
			NewAllocs: b.AllocsPerOp,
			Tracked:   tracked != nil && tracked.MatchString(b.Name),
		}
		if prev.AllocsPerOp > 0 {
			d.AllocPercent = float64(b.AllocsPerOp-prev.AllocsPerOp) / float64(prev.AllocsPerOp) * 100
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, ok := prev.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			nv := b.Metrics[unit]
			d.Metrics = append(d.Metrics, MetricDelta{
				Unit: unit, Old: ov, New: nv, Percent: (nv - ov) / ov * 100,
			})
		}
		out = append(out, d)
	}
	return out
}

// regressed reports whether a tracked delta trips the gate, and on
// which figure. allocThreshold <= 0 disables the alloc gate.
func (d *Delta) regressed(threshold, allocThreshold float64) (string, bool) {
	if d.Percent > threshold {
		return "ns/op", true
	}
	if allocThreshold > 0 && d.OldAllocs >= allocGateFloor && d.AllocPercent > allocThreshold {
		return "allocs/op", true
	}
	for _, m := range d.Metrics {
		if m.Percent > threshold {
			return m.Unit, true
		}
	}
	return "", false
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline JSON")
	newPath := fs.String("new", "", "candidate JSON")
	threshold := fs.Float64("threshold", 20, "max tracked ns/op (and custom metric) regression, percent")
	allocThreshold := fs.Float64("alloc-threshold", 20, "max tracked allocs/op regression, percent (<= 0 disables)")
	match := fs.String("match", "", "regexp of tracked (gated) benchmark names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("compare needs -old and -new")
	}
	oldF, err := readFile(*oldPath)
	if err != nil {
		return err
	}
	newF, err := readFile(*newPath)
	if err != nil {
		return err
	}
	var tracked *regexp.Regexp
	if *match != "" {
		tracked, err = regexp.Compile(*match)
		if err != nil {
			return err
		}
	}
	deltas := Compare(oldF, newF, tracked)
	if len(deltas) == 0 {
		fmt.Println("benchjson: no common benchmarks to compare")
		return nil
	}
	var regressions []string
	for i := range deltas {
		d := &deltas[i]
		marker := " "
		if d.Tracked {
			marker = "*"
			if unit, bad := d.regressed(*threshold, *allocThreshold); bad {
				marker = "!"
				regressions = append(regressions, fmt.Sprintf("%s (%s)", d.Name, unit))
			}
		}
		line := fmt.Sprintf("%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%",
			marker, d.Name, d.OldNs, d.NewNs, d.Percent)
		if d.OldAllocs > 0 || d.NewAllocs > 0 {
			line += fmt.Sprintf("  %10d -> %10d B/op  %8d -> %8d allocs/op  %+7.1f%%",
				d.OldBytes, d.NewBytes, d.OldAllocs, d.NewAllocs, d.AllocPercent)
		}
		for _, m := range d.Metrics {
			line += fmt.Sprintf("  %.0f -> %.0f %s  %+7.1f%%", m.Old, m.New, m.Unit, m.Percent)
		}
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d tracked benchmark(s) regressed beyond the gate: %s",
			len(regressions), strings.Join(regressions, ", "))
	}
	return nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
