// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON artifact and gates benchmark regressions in CI:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson convert -out BENCH_123.json
//	benchjson compare -old BENCH_prev.json -new BENCH_123.json -threshold 20 -match 'ApplyAffine|Solve|Census'
//
// convert parses the text format into {benchmarks: [{name, pkg, runs,
// ns_per_op, bytes_per_op, allocs_per_op}]}. compare matches benchmarks
// by (pkg, name) and fails (exit 1) when any benchmark matching -match
// regressed in ns/op by more than -threshold percent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the JSON artifact schema.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchjson convert|compare [flags]")
	}
	switch args[0] {
	case "convert":
		return cmdConvert(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want convert or compare)", args[0])
	}
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "JSON destination (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// Parse reads `go test -bench` text output.
func Parse(r io.Reader) (*File, error) {
	file := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			file.Benchmarks = append(file.Benchmarks, b)
		}
	}
	return file, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName-8   10   123456 ns/op   456 B/op   7 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = f
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// Delta is one (old, new) comparison.
type Delta struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Percent float64 // (new-old)/old * 100
	Tracked bool
}

// Compare joins two files by (pkg, name) and computes ns/op deltas;
// tracked marks benchmarks matching the gate expression.
func Compare(oldF, newF *File, tracked *regexp.Regexp) []Delta {
	type key struct{ pkg, name string }
	old := make(map[key]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		old[key{b.Pkg, b.Name}] = b
	}
	var out []Delta
	for _, b := range newF.Benchmarks {
		prev, ok := old[key{b.Pkg, b.Name}]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Name:    b.Name,
			OldNs:   prev.NsPerOp,
			NewNs:   b.NsPerOp,
			Percent: (b.NsPerOp - prev.NsPerOp) / prev.NsPerOp * 100,
			Tracked: tracked != nil && tracked.MatchString(b.Name),
		})
	}
	return out
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline JSON")
	newPath := fs.String("new", "", "candidate JSON")
	threshold := fs.Float64("threshold", 20, "max tracked ns/op regression, percent")
	match := fs.String("match", "", "regexp of tracked (gated) benchmark names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("compare needs -old and -new")
	}
	oldF, err := readFile(*oldPath)
	if err != nil {
		return err
	}
	newF, err := readFile(*newPath)
	if err != nil {
		return err
	}
	var tracked *regexp.Regexp
	if *match != "" {
		tracked, err = regexp.Compile(*match)
		if err != nil {
			return err
		}
	}
	deltas := Compare(oldF, newF, tracked)
	if len(deltas) == 0 {
		fmt.Println("benchjson: no common benchmarks to compare")
		return nil
	}
	var regressions []Delta
	for _, d := range deltas {
		marker := " "
		if d.Tracked {
			marker = "*"
			if d.Percent > *threshold {
				marker = "!"
				regressions = append(regressions, d)
			}
		}
		fmt.Printf("%s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			marker, d.Name, d.OldNs, d.NewNs, d.Percent)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d tracked benchmark(s) regressed beyond %.0f%%", len(regressions), *threshold)
	}
	return nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
