package main

// factool tracecat — summarize span-trace JSONL files written by the
// -trace flag of the long-running subcommands (or streamed from a
// /debug/trace endpoint). One row per stage (span name): count, total,
// min, mean, p50, p99 and max, sorted by total time so the most
// expensive stage of a campaign reads first.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// stageSummary is one aggregated row of the tracecat report.
type stageSummary struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MinMs   float64 `json:"min_ms"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// tracecatReport is the -json output shape.
type tracecatReport struct {
	Spans   int            `json:"spans"`
	Roots   int            `json:"roots"`
	Orphans int            `json:"orphans"`
	SpanMs  float64        `json:"span_ms"`
	Stages  []stageSummary `json:"stages"`
	Skipped int            `json:"skipped_lines,omitempty"`
	Files   []string       `json:"files,omitempty"`
}

func cmdTracecat(args []string) error {
	fs := newFlagSet("tracecat")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON on stdout")
	top := fs.Int("top", 0, "print only the K most expensive stages by total time (0 = all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	files := fs.Args()

	var spans []obs.Span
	skipped := 0
	readFrom := func(r io.Reader, name string) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var sp obs.Span
			if err := json.Unmarshal(line, &sp); err != nil || sp.Name == "" {
				skipped++
				continue
			}
			spans = append(spans, sp)
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("tracecat: %s: %w", name, err)
		}
		return nil
	}
	if len(files) == 0 {
		if err := readFrom(os.Stdin, "stdin"); err != nil {
			return err
		}
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = readFrom(f, path)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("tracecat: no spans found (expected JSONL from -trace or /debug/trace)")
	}

	rep := summarizeTrace(spans)
	rep.Skipped = skipped
	rep.Files = files
	if *top > 0 && *top < len(rep.Stages) {
		rep.Stages = rep.Stages[:*top]
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("tracecat: %d spans, %d roots, %d orphaned, %.1fms first-start to last-end\n",
		rep.Spans, rep.Roots, rep.Orphans, rep.SpanMs)
	if skipped > 0 {
		fmt.Printf("  (%d unparseable lines skipped)\n", skipped)
	}
	fmt.Printf("%-28s %8s %12s %10s %10s %10s %10s %10s\n",
		"stage", "count", "total", "min", "mean", "p50", "p99", "max")
	for _, s := range rep.Stages {
		fmt.Printf("%-28s %8d %11.1fms %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
			s.Name, s.Count, s.TotalMs, s.MinMs, s.MeanMs, s.P50Ms, s.P99Ms, s.MaxMs)
	}
	return nil
}

// summarizeTrace folds spans into per-stage rows sorted by total time.
func summarizeTrace(spans []obs.Span) *tracecatReport {
	rep := &tracecatReport{Spans: len(spans)}
	ids := make(map[obs.SpanID]bool, len(spans))
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	byName := map[string][]time.Duration{}
	var lo, hi int64
	for _, sp := range spans {
		switch {
		case sp.Parent == 0:
			rep.Roots++
		case !ids[sp.Parent]:
			// Parent evicted from the ring or in another file: the span
			// still aggregates, but the nesting is incomplete.
			rep.Orphans++
		}
		byName[sp.Name] = append(byName[sp.Name], sp.Duration())
		if lo == 0 || sp.StartNS < lo {
			lo = sp.StartNS
		}
		if sp.EndNS > hi {
			hi = sp.EndNS
		}
	}
	if hi > lo {
		rep.SpanMs = float64(hi-lo) / float64(time.Millisecond)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for name, durs := range byName {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		q := func(p float64) time.Duration { return durs[int(p*float64(len(durs)-1))] }
		rep.Stages = append(rep.Stages, stageSummary{
			Name:    name,
			Count:   len(durs),
			TotalMs: ms(total),
			MinMs:   ms(durs[0]),
			MeanMs:  ms(total) / float64(len(durs)),
			P50Ms:   ms(q(0.50)),
			P99Ms:   ms(q(0.99)),
			MaxMs:   ms(durs[len(durs)-1]),
		})
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		if rep.Stages[i].TotalMs != rep.Stages[j].TotalMs {
			return rep.Stages[i].TotalMs > rep.Stages[j].TotalMs
		}
		return rep.Stages[i].Name < rep.Stages[j].Name
	})
	return rep
}
