package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := [][]string{
		{"chr", "-n", "3"},
		{"adversary", "-n", "3", "-kind", "fig5b"},
		{"adversary", "-n", "3", "-kind", "waitfree"},
		{"affine", "-n", "3", "-kind", "kof", "-k", "1"},
		{"classify", "-n", "2"},
		{"census", "-n", "2", "-json"},
		{"census", "-n", "2", "-solve", "-ktask", "1", "-verify", "-stats"},
		{"census", "-n", "3", "-workers", "4", "-progress"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	outc := make(chan string)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outc <- b.String()
	}()
	ferr := f()
	w.Close()
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return out
}

// TestCensusOutputDeterministic asserts the tentpole acceptance
// criterion at the CLI surface: both the human summary and the JSON
// report of `factool census -n 3` are byte-identical for -workers 1
// and -workers 8.
func TestCensusOutputDeterministic(t *testing.T) {
	for _, mode := range [][]string{
		{"census", "-n", "3"},
		{"census", "-n", "3", "-json"},
	} {
		serial := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "1"))
		})
		parallel := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "8"))
		})
		if serial != parallel {
			t.Errorf("%v output differs between -workers 1 and -workers 8", mode)
		}
		if len(serial) == 0 {
			t.Errorf("%v produced no output", mode)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"adversary", "-kind", "nonsense"},
		{"adversary", "-n", "4", "-kind", "fig5b"}, // fig5b is n=3 only
		{"census", "-n", "7"},                      // domain out of range must error, not panic
		{"census", "-n", "0", "-out", "x.jsonl"},   // streaming path validates too
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestFiguresWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"figures", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("figure files = %d, want 9", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1b_r1res.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("figure1b is not an SVG")
	}
}

func TestSolveCommand(t *testing.T) {
	if err := run([]string{"solve", "-n", "3", "-kind", "kof", "-k", "1", "-ktask", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-n", "3", "-kind", "tres", "-t", "1", "-ktask", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCommand(t *testing.T) {
	if err := run([]string{"simulate", "-n", "3", "-kind", "kof", "-k", "1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
}

// TestCensusStreamingCLI drives the streaming surface end to end: an
// interrupted (-maxindices) run with a checkpoint, resumed to
// completion, must leave a JSONL stream and summary byte-identical to
// an uninterrupted run — serial and parallel.
func TestCensusStreamingCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	fullOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-workers", "1", "-out", full})
	})
	fullBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullBytes) == 0 {
		t.Fatal("streaming run wrote no entries")
	}
	for _, workers := range []string{"1", "8"} {
		out := filepath.Join(dir, "part-w"+workers+".jsonl")
		ck := filepath.Join(dir, "ck-w"+workers+".json")
		_ = captureStdout(t, func() error {
			return run([]string{"census", "-n", "3", "-workers", workers,
				"-out", out, "-checkpoint", ck, "-checkpoint-every", "16", "-maxindices", "48"})
		})
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("workers=%s: no checkpoint written: %v", workers, err)
		}
		resumed := captureStdout(t, func() error {
			return run([]string{"census", "-n", "3", "-workers", workers,
				"-out", out, "-checkpoint", ck, "-resume"})
		})
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(fullBytes) {
			t.Errorf("workers=%s: resumed JSONL differs from uninterrupted run", workers)
		}
		if resumed != fullOut {
			t.Errorf("workers=%s: resumed summary differs from uninterrupted run:\n%s\n%s", workers, resumed, fullOut)
		}
	}
}

// TestCensusOrbitsCLI checks -orbits reports the same totals as the
// full sweep (modulo its extra orbit-representatives line).
func TestCensusOrbitsCLI(t *testing.T) {
	fullOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3"})
	})
	orbOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-orbits"})
	})
	var kept []string
	for _, line := range strings.Split(orbOut, "\n") {
		if strings.Contains(line, "orbit representatives") {
			continue
		}
		kept = append(kept, line)
	}
	if strings.Join(kept, "\n") != fullOut {
		t.Errorf("orbit summary (minus orbit line) differs from full sweep:\n%q\n%q", orbOut, fullOut)
	}
	if orbOut == fullOut {
		t.Error("orbit summary should report the representatives examined")
	}
}

// TestCensusResumeWithoutCheckpointStartsFresh pins the CI-robustness
// behavior: -resume with a missing sidecar is a fresh full run.
func TestCensusResumeWithoutCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "never-written.json")
	fresh := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-out", out, "-checkpoint", ck, "-resume"})
	})
	plain := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3"})
	})
	if fresh != plain {
		t.Errorf("fresh -resume run differs from plain census:\n%q\n%q", fresh, plain)
	}
}
