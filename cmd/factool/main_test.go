package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := [][]string{
		{"chr", "-n", "3"},
		{"adversary", "-n", "3", "-kind", "fig5b"},
		{"adversary", "-n", "3", "-kind", "waitfree"},
		{"affine", "-n", "3", "-kind", "kof", "-k", "1"},
		{"classify", "-n", "2"},
		{"census", "-n", "2", "-json"},
		{"census", "-n", "2", "-solve", "-ktask", "1", "-verify", "-stats"},
		{"census", "-n", "3", "-workers", "4", "-progress"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	outc := make(chan string)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outc <- b.String()
	}()
	ferr := f()
	w.Close()
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return out
}

// TestCensusOutputDeterministic asserts the tentpole acceptance
// criterion at the CLI surface: both the human summary and the JSON
// report of `factool census -n 3` are byte-identical for -workers 1
// and -workers 8.
func TestCensusOutputDeterministic(t *testing.T) {
	for _, mode := range [][]string{
		{"census", "-n", "3"},
		{"census", "-n", "3", "-json"},
	} {
		serial := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "1"))
		})
		parallel := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "8"))
		})
		if serial != parallel {
			t.Errorf("%v output differs between -workers 1 and -workers 8", mode)
		}
		if len(serial) == 0 {
			t.Errorf("%v produced no output", mode)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"adversary", "-kind", "nonsense"},
		{"adversary", "-n", "4", "-kind", "fig5b"}, // fig5b is n=3 only
		{"census", "-n", "7"},                      // domain out of range must error, not panic
		{"census", "-n", "0", "-out", "x.jsonl"},   // streaming path validates too
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestFiguresWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"figures", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("figure files = %d, want 9", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1b_r1res.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("figure1b is not an SVG")
	}
}

func TestSolveCommand(t *testing.T) {
	if err := run([]string{"solve", "-n", "3", "-kind", "kof", "-k", "1", "-ktask", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-n", "3", "-kind", "tres", "-t", "1", "-ktask", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCommand(t *testing.T) {
	if err := run([]string{"simulate", "-n", "3", "-kind", "kof", "-k", "1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
}

// TestCensusStreamingCLI drives the streaming surface end to end: an
// interrupted (-maxindices) run with a checkpoint, resumed to
// completion, must leave a JSONL stream and summary byte-identical to
// an uninterrupted run — serial and parallel.
func TestCensusStreamingCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	fullOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-workers", "1", "-out", full})
	})
	fullBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullBytes) == 0 {
		t.Fatal("streaming run wrote no entries")
	}
	for _, workers := range []string{"1", "8"} {
		out := filepath.Join(dir, "part-w"+workers+".jsonl")
		ck := filepath.Join(dir, "ck-w"+workers+".json")
		_ = captureStdout(t, func() error {
			return run([]string{"census", "-n", "3", "-workers", workers,
				"-out", out, "-checkpoint", ck, "-checkpoint-every", "16", "-maxindices", "48"})
		})
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("workers=%s: no checkpoint written: %v", workers, err)
		}
		resumed := captureStdout(t, func() error {
			return run([]string{"census", "-n", "3", "-workers", workers,
				"-out", out, "-checkpoint", ck, "-resume"})
		})
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(fullBytes) {
			t.Errorf("workers=%s: resumed JSONL differs from uninterrupted run", workers)
		}
		if resumed != fullOut {
			t.Errorf("workers=%s: resumed summary differs from uninterrupted run:\n%s\n%s", workers, resumed, fullOut)
		}
	}
}

// TestCensusOrbitsCLI checks -orbits reports the same totals as the
// full sweep (modulo its extra orbit-representatives line).
func TestCensusOrbitsCLI(t *testing.T) {
	fullOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3"})
	})
	orbOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-orbits"})
	})
	var kept []string
	for _, line := range strings.Split(orbOut, "\n") {
		if strings.Contains(line, "orbit representatives") {
			continue
		}
		kept = append(kept, line)
	}
	if strings.Join(kept, "\n") != fullOut {
		t.Errorf("orbit summary (minus orbit line) differs from full sweep:\n%q\n%q", orbOut, fullOut)
	}
	if orbOut == fullOut {
		t.Error("orbit summary should report the representatives examined")
	}
}

// TestCensusResumeWithoutCheckpointStartsFresh pins the CI-robustness
// behavior: -resume with a missing sidecar is a fresh full run.
func TestCensusResumeWithoutCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "never-written.json")
	fresh := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3", "-out", out, "-checkpoint", ck, "-resume"})
	})
	plain := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3"})
	})
	if fresh != plain {
		t.Errorf("fresh -resume run differs from plain census:\n%q\n%q", fresh, plain)
	}
}

// captureStderr runs f with os.Stderr redirected and returns what it
// wrote.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	outc := make(chan string)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outc <- b.String()
	}()
	f()
	w.Close()
	return <-outc
}

// TestExitCodes pins the CLI contract: 0 for success and help, 2 for
// usage errors (bad flags, bad values, unknown subcommand), 1 for
// runtime failures.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 2},                                                   // missing subcommand
		{[]string{"bogus"}, 2},                                     // unknown subcommand
		{[]string{"census", "-bogus"}, 2},                          // undefined flag
		{[]string{"census", "-n", "9"}, 2},                         // invalid flag value
		{[]string{"census", "-compress"}, 2},                       // -compress without -out
		{[]string{"merge"}, 2},                                     // missing -store
		{[]string{"merge", "-n", "3", "-store", "x"}, 2},           // no shards
		{[]string{"serve"}, 2},                                     // missing -store
		{[]string{"serve", "-store", "/nonexistent-store-dir"}, 1}, // runtime failure
		{[]string{"census", "-h"}, 0},                              // help exits clean
		{[]string{"help"}, 0},
		{[]string{"chr", "-n", "3"}, 0},
	}
	for _, c := range cases {
		var got int
		_ = captureStderr(t, func() { got = mainRun(c.args) })
		if got != c.want {
			t.Errorf("mainRun(%v) = %d, want %d", c.args, got, c.want)
		}
	}
}

// TestBadFlagsPrintSubcommandUsage: a subcommand's flag failure must
// print that subcommand's usage, not the global listing.
func TestBadFlagsPrintSubcommandUsage(t *testing.T) {
	for _, args := range [][]string{
		{"census", "-bogus"},  // parse error
		{"census", "-n", "9"}, // validation error
		{"merge", "-n", "3"},  // missing -store
	} {
		stderr := captureStderr(t, func() { mainRun(args) })
		if !strings.Contains(stderr, "usage: factool "+args[0]) {
			t.Errorf("%v: stderr misses the %s usage line:\n%s", args, args[0], stderr)
		}
		if strings.Contains(stderr, "subcommands:") {
			t.Errorf("%v: stderr shows the global usage instead of the subcommand's:\n%s", args, stderr)
		}
	}
	// The global usage still appears for unknown subcommands.
	stderr := captureStderr(t, func() { mainRun([]string{"bogus"}) })
	if !strings.Contains(stderr, "subcommands:") {
		t.Errorf("unknown subcommand should print the global usage:\n%s", stderr)
	}
}

// TestMergeCLI drives census → merge → store round-trip at the CLI
// surface, including a compressed shard and the -summary report.
func TestMergeCLI(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "census.jsonl.gz")
	storeDir := filepath.Join(dir, "store")
	if err := run([]string{"census", "-n", "3", "-workers", "1", "-out", shard, "-compress"}); err != nil {
		t.Fatal(err)
	}
	censusOut := captureStdout(t, func() error {
		return run([]string{"census", "-n", "3"})
	})
	var mergeOut string
	stderr := captureStderr(t, func() {
		mergeOut = captureStdout(t, func() error {
			return run([]string{"merge", "-n", "3", "-store", storeDir, "-summary", shard})
		})
	})
	if !strings.Contains(stderr, "128 entries") {
		t.Errorf("merge report misses the entry count:\n%s", stderr)
	}
	if mergeOut != censusOut {
		t.Errorf("merge -summary differs from census output:\n%q\n%q", mergeOut, censusOut)
	}
	// Idempotent re-merge: all duplicates, nothing added.
	stderr = captureStderr(t, func() {
		if err := run([]string{"merge", "-n", "3", "-store", storeDir, shard}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(stderr, "+0 entries (128 duplicates folded)") {
		t.Errorf("re-merge should fold everything as duplicates:\n%s", stderr)
	}
	// Wrong n against an existing store is a runtime error.
	if err := run([]string{"merge", "-n", "4", "-store", storeDir, shard}); err == nil {
		t.Error("merge with mismatched -n should fail")
	}
}
