package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := [][]string{
		{"chr", "-n", "3"},
		{"adversary", "-n", "3", "-kind", "fig5b"},
		{"adversary", "-n", "3", "-kind", "waitfree"},
		{"affine", "-n", "3", "-kind", "kof", "-k", "1"},
		{"classify", "-n", "2"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"adversary", "-kind", "nonsense"},
		{"adversary", "-n", "4", "-kind", "fig5b"}, // fig5b is n=3 only
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestFiguresWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"figures", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("figure files = %d, want 9", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1b_r1res.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("figure1b is not an SVG")
	}
}

func TestSolveCommand(t *testing.T) {
	if err := run([]string{"solve", "-n", "3", "-kind", "kof", "-k", "1", "-ktask", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-n", "3", "-kind", "tres", "-t", "1", "-ktask", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCommand(t *testing.T) {
	if err := run([]string{"simulate", "-n", "3", "-kind", "kof", "-k", "1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
}
