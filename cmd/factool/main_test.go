package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := [][]string{
		{"chr", "-n", "3"},
		{"adversary", "-n", "3", "-kind", "fig5b"},
		{"adversary", "-n", "3", "-kind", "waitfree"},
		{"affine", "-n", "3", "-kind", "kof", "-k", "1"},
		{"classify", "-n", "2"},
		{"census", "-n", "2", "-json"},
		{"census", "-n", "2", "-solve", "-ktask", "1", "-verify", "-stats"},
		{"census", "-n", "3", "-workers", "4", "-progress"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	outc := make(chan string)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outc <- b.String()
	}()
	ferr := f()
	w.Close()
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return out
}

// TestCensusOutputDeterministic asserts the tentpole acceptance
// criterion at the CLI surface: both the human summary and the JSON
// report of `factool census -n 3` are byte-identical for -workers 1
// and -workers 8.
func TestCensusOutputDeterministic(t *testing.T) {
	for _, mode := range [][]string{
		{"census", "-n", "3"},
		{"census", "-n", "3", "-json"},
	} {
		serial := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "1"))
		})
		parallel := captureStdout(t, func() error {
			return run(append(append([]string{}, mode...), "-workers", "8"))
		})
		if serial != parallel {
			t.Errorf("%v output differs between -workers 1 and -workers 8", mode)
		}
		if len(serial) == 0 {
			t.Errorf("%v produced no output", mode)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"adversary", "-kind", "nonsense"},
		{"adversary", "-n", "4", "-kind", "fig5b"}, // fig5b is n=3 only
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestFiguresWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"figures", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("figure files = %d, want 9", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1b_r1res.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("figure1b is not an SVG")
	}
}

func TestSolveCommand(t *testing.T) {
	if err := run([]string{"solve", "-n", "3", "-kind", "kof", "-k", "1", "-ktask", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-n", "3", "-kind", "tres", "-t", "1", "-ktask", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCommand(t *testing.T) {
	if err := run([]string{"simulate", "-n", "3", "-kind", "kof", "-k", "1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
}
