// Command factool explores the FACT reproduction from the command line:
//
//	factool chr -n 3                         # Chr s census (Figure 1a)
//	factool adversary -n 3 -kind tres -t 1   # adversary + agreement function
//	factool affine -n 3 -kind kof -k 1       # build R_A, print stats
//	factool classify -n 3                    # Figure 2 census
//	factool figures -dir out/                # regenerate all figure SVGs
//	factool solve -n 3 -kind tres -t 1 -k 2  # FACT solvability decision
//	factool simulate -n 3 -kind kof -k 1     # Algorithm 1 + §6 campaigns
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	fact "repro"
	"repro/internal/procs"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "chr":
		return cmdChr(args[1:])
	case "adversary":
		return cmdAdversary(args[1:])
	case "affine":
		return cmdAffine(args[1:])
	case "classify":
		return cmdClassify(args[1:])
	case "figures":
		return cmdFigures(args[1:])
	case "solve":
		return cmdSolve(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `factool — fair-adversary affine tasks toolbox

subcommands:
  chr        -n N                           Chr s census (Figure 1a)
  adversary  -n N -kind K [flags]           adversary, α, classification
  affine     -n N -kind K [flags]           affine task R_A stats
  classify   -n N                           adversary census (Figure 2)
  figures    -dir DIR                       regenerate figure SVGs
  solve      -n N -kind K [flags] -k K' [-workers W]
                                            k-set consensus solvability
  simulate   -n N -kind K [flags]           Algorithm 1 + §6 campaigns

adversary kinds (-kind): waitfree | tres (-t) | kof (-k) | fig5b
`)
}

// adversaryFlags adds the shared adversary-selection flags.
func adversaryFlags(fs *flag.FlagSet) (n *int, kind *string, t *int, k *int) {
	n = fs.Int("n", 3, "number of processes")
	kind = fs.String("kind", "tres", "adversary kind: waitfree|tres|kof|fig5b")
	t = fs.Int("t", 1, "resilience parameter for -kind tres")
	k = fs.Int("k", 1, "concurrency parameter for -kind kof")
	return
}

func buildAdversary(n int, kind string, t, k int) (*fact.Adversary, error) {
	switch kind {
	case "waitfree":
		return fact.WaitFree(n), nil
	case "tres":
		return fact.TResilient(n, t), nil
	case "kof":
		return fact.KObstructionFree(n, k), nil
	case "fig5b":
		if n != 3 {
			return nil, fmt.Errorf("fig5b adversary is defined for n=3")
		}
		return fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	default:
		return nil, fmt.Errorf("unknown adversary kind %q", kind)
	}
}

func cmdChr(args []string) error {
	fs := flag.NewFlagSet("chr", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("Chr s for n=%d\n", *n)
	fmt.Printf("  facets (ordered partitions): %d\n", procs.CountOrderedPartitions(*n))
	fmt.Printf("  vertices: %d\n", *n*(1<<uint(*n-1)))
	fmt.Printf("  Chr² s facets: %d\n",
		procs.CountOrderedPartitions(*n)*procs.CountOrderedPartitions(*n))
	return nil
}

func cmdAdversary(args []string) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	n, kind, t, k := adversaryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	fmt.Printf("%v (n=%d)\n", a, a.N())
	fmt.Printf("  superset-closed: %v\n", a.IsSupersetClosed())
	fmt.Printf("  symmetric:       %v\n", a.IsSymmetric())
	fmt.Printf("  fair:            %v\n", a.IsFair())
	fmt.Printf("  setcon:          %d\n", a.Setcon())
	fmt.Printf("  csize:           %d\n", a.CSize())
	fmt.Println("  agreement function:")
	af := a.AgreementFunction()
	keys := make([]procs.Set, 0, len(af))
	for p := range af {
		keys = append(keys, p)
	}
	procs.SortSets(keys)
	for _, p := range keys {
		fmt.Printf("    α(%v) = %d\n", p, af[p])
	}
	return nil
}

func cmdAffine(args []string) error {
	fs := flag.NewFlagSet("affine", flag.ContinueOnError)
	n, kind, t, k := adversaryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	fmt.Println(m.Stats())
	fmt.Println("  complex:", render.ComplexStats(m.AffineTask().Complex()))
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	type row struct {
		total, superset, symmetric, fair int
	}
	var r row
	fact.EnumerateAdversaries(*n, func(a *fact.Adversary) bool {
		r.total++
		ss := a.IsSupersetClosed()
		sym := a.IsSymmetric()
		fair := a.IsFair()
		if ss {
			r.superset++
		}
		if sym {
			r.symmetric++
		}
		if fair {
			r.fair++
		}
		if (ss || sym) && !fair {
			fmt.Printf("  WARNING: %v is superset/symmetric but unfair\n", a)
		}
		return true
	})
	fmt.Printf("adversary census for n=%d (Figure 2 as data)\n", *n)
	fmt.Printf("  total adversaries:    %d\n", r.total)
	fmt.Printf("  superset-closed:      %d\n", r.superset)
	fmt.Printf("  symmetric:            %d\n", r.symmetric)
	fmt.Printf("  fair:                 %d\n", r.fair)
	return nil
}

func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	dir := fs.String("dir", "figures", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	oneOF := fact.KObstructionFree(3, 1)
	fig5b, err := fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	if err != nil {
		return err
	}
	tres1 := fact.TResilient(3, 1)
	files := map[string]func() (string, error){
		"figure1a_chr.svg": func() (string, error) {
			return render.Chr1SVG(3), nil
		},
		"figure1b_r1res.svg":          modelFigure(tres1, fact.FigureAffineTask),
		"figure4c_contention.svg":     func() (string, error) { return render.Cont2SVG(3), nil },
		"figure5a_critical_1of.svg":   modelFigure(oneOF, fact.FigureCritical),
		"figure5b_critical_fig5b.svg": modelFigure(fig5b, fact.FigureCritical),
		"figure6a_conc_1of.svg":       modelFigure(oneOF, fact.FigureConcurrency),
		"figure6b_conc_fig5b.svg":     modelFigure(fig5b, fact.FigureConcurrency),
		"figure7a_ra_1of.svg":         modelFigure(oneOF, fact.FigureAffineTask),
		"figure7b_ra_fig5b.svg":       modelFigure(fig5b, fact.FigureAffineTask),
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		svg, err := files[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func modelFigure(a *fact.Adversary, kind string) func() (string, error) {
	return func() (string, error) {
		m, err := fact.NewModel(a)
		if err != nil {
			return "", err
		}
		return m.FigureSVG(kind)
	}
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	n, kind, t, k := adversaryFlags(fs)
	kTask := fs.Int("ktask", 1, "k for k-set consensus")
	rounds := fs.Int("rounds", 1, "maximum iterations of R_A")
	workers := fs.Int("workers", 0, "engine workers (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	m.SetWorkers(*workers)
	fmt.Printf("model %v: setcon = %d (FACT predicts solvable ⇔ k ≥ setcon)\n", a, m.Setcon())
	res, err := m.SolveKSetConsensus(*kTask, *rounds)
	if err != nil {
		return err
	}
	if res.Solvable {
		fmt.Printf("%d-set consensus: SOLVABLE at ℓ=%d (map on %d vertices)\n",
			*kTask, res.Rounds, len(res.Map))
	} else {
		fmt.Printf("%d-set consensus: no map up to ℓ=%d (complex sizes %v)\n",
			*kTask, *rounds, res.ComplexSizes)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	n, kind, t, k := adversaryFlags(fs)
	trials := fs.Int("trials", 100, "number of random schedules")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	fmt.Println(m.Stats())

	r1 := m.VerifyAlgorithmOne(*trials, *seed)
	fmt.Printf("Algorithm 1 (Theorem 7): liveness %d/%d, safety %d/%d, mean steps %.1f\n",
		r1.Liveness, r1.Trials, r1.Safety, r1.Trials, r1.MeanSteps)
	if len(r1.Violations) > 0 {
		fmt.Println("  violations:", strings.Join(r1.Violations[:minInt(3, len(r1.Violations))], "; "))
	}

	if err := m.VerifyMuQ(); err != nil {
		fmt.Println("μ_Q properties: FAIL:", err)
	} else {
		fmt.Println("μ_Q properties (9, 10, 12): OK (exhaustive over facets)")
	}

	r2 := m.VerifySetConsensusSimulation(*trials, *seed)
	fmt.Printf("§6 set-consensus simulation: %d/%d ok, max distinct decisions %d\n",
		r2.OK, r2.Trials, r2.MaxDistinct)
	if len(r2.Violations) > 0 {
		fmt.Println("  violations:", strings.Join(r2.Violations[:minInt(3, len(r2.Violations))], "; "))
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
