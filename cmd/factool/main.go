// Command factool explores the FACT reproduction from the command line:
//
//	factool chr -n 3                         # Chr s census (Figure 1a)
//	factool adversary -n 3 -kind tres -t 1   # adversary + agreement function
//	factool affine -n 3 -kind kof -k 1       # build R_A, print stats
//	factool classify -n 3                    # Figure 2 census
//	factool census -n 3 -workers 8 -json     # parallel census, JSON report
//	factool merge -n 3 -store DIR a.jsonl    # merge shards into a store
//	factool serve -store DIR -addr :8080     # HTTP query layer over a store
//	factool coordinate -n 4 -store DIR       # distributed-campaign coordinator
//	factool work -url http://host:8081       # fabric worker (acquire/sweep/upload)
//	factool figures -dir out/                # regenerate all figure SVGs
//	factool solve -n 3 -kind tres -t 1 -k 2  # FACT solvability decision
//	factool simulate -n 3 -kind kof -k 1     # Algorithm 1 + §6 campaigns
//
// Exit codes: 0 on success (including -h/help), 2 on bad usage (unknown
// subcommand, bad flags, invalid flag values — with the offending
// subcommand's usage on stderr), 1 on runtime failure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	fact "repro"
	"repro/internal/procs"
	"repro/internal/render"
)

func main() {
	os.Exit(mainRun(os.Args[1:]))
}

// mainRun maps run's outcome to the process exit code, printing usage
// for the specific failing subcommand on bad flags.
func mainRun(args []string) int {
	err := run(args)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		// -h on a subcommand: the FlagSet already printed its usage.
		return 0
	case errors.Is(err, errBadFlags):
		// Parse failure: the FlagSet already printed the error and the
		// subcommand's usage.
		return 2
	}
	var ue *usageError
	if errors.As(err, &ue) {
		fmt.Fprintln(os.Stderr, "factool:", ue.err)
		ue.fs.Usage()
		return 2
	}
	fmt.Fprintln(os.Stderr, "factool:", err)
	return 1
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand: %w", errBadFlags)
	}
	switch args[0] {
	case "chr":
		return cmdChr(args[1:])
	case "adversary":
		return cmdAdversary(args[1:])
	case "affine":
		return cmdAffine(args[1:])
	case "classify":
		return cmdClassify(args[1:])
	case "census":
		return cmdCensus(args[1:])
	case "merge":
		return cmdMerge(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "coordinate":
		return cmdCoordinate(args[1:])
	case "work":
		return cmdWork(args[1:])
	case "store":
		return cmdStore(args[1:])
	case "loadtest":
		return cmdLoadtest(args[1:])
	case "tracecat":
		return cmdTracecat(args[1:])
	case "figures":
		return cmdFigures(args[1:])
	case "solve":
		return cmdSolve(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q: %w", args[0], errBadFlags)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `factool — fair-adversary affine tasks toolbox

subcommands:
  chr        -n N                           Chr s census (Figure 1a)
  adversary  -n N -kind K [flags]           adversary, α, classification
  affine     -n N -kind K [flags]           affine task R_A stats
  classify   -n N                           adversary census (Figure 2)
  census     -n N [-workers W] [-json] [-solve -task S -rounds L -verify]
             [-family F] [-stats] [-progress] [-orbits] [-out F.jsonl]
             [-compress] [-checkpoint F -resume] [-checkpoint-every I]
             [-maxindices I] [-budget D] [-cachemb M]
                                            parallel adversary census
                                            (streaming, checkpointable,
                                            canonical-orbit enumeration;
                                            -task picks any registered
                                            task, -family a named
                                            adversary family)
  merge      -n N -store DIR SHARD...       merge census JSONL shards
                                            into an indexed store
  serve      -store DIR... [-stores GLOB] [-addr A] [-apikeys F]
             [-log-json] [-metrics] [flags] serve the v1 HTTP API over
                                            every mounted store (one
                                            process, any number of n)
  coordinate -n N -store DIR [-orbits] [-solve -task S -rounds L]
             [-unit-size U] [-addr A] [-ttl D] [-apikeys F]
             [-exit-on-complete]             distributed-campaign
                                            coordinator: lease rank-range
                                            units to workers, merge their
                                            shards into the store
  work       -url URL [-id W] [-workers W] [-ttl S] [-max-units K]
                                            fabric worker: acquire →
                                            sweep → upload until the
                                            campaign completes
  store      verify -store DIR [-spot K]    deep-check a store (CRC walk,
                                            manifest consistency, orbit
                                            spot check); exit 1 on
                                            corruption
  loadtest   -url URL -n N [-duration D] [-concurrency C] [-slo-p99 D]
                                            sustained classify/solve load
                                            against a serve endpoint,
                                            p50/p90/p99 + SLO check
  tracecat   [-json] [-top K] TRACE.jsonl...
                                            summarize -trace span files:
                                            per-stage latency table
  figures    -dir DIR                       regenerate figure SVGs
  solve      -n N -kind K [flags] -k K' [-workers W] [-stats]
                                            k-set consensus solvability
  simulate   -n N -kind K [flags]           Algorithm 1 + §6 campaigns

adversary kinds (-kind): waitfree | tres (-t) | kof (-k) | fig5b

observability: census, serve, coordinate and work also accept
  -debug-addr HOST:PORT (side surface with /healthz, /metrics,
  /debug/pprof and /debug/trace) and -trace FILE (span JSONL for
  factool tracecat)
`)
}

// synopses are the one-line usage forms printed by each subcommand's
// FlagSet on bad flags — the specific subcommand's usage, not the
// global one.
var synopses = map[string]string{
	"chr":       "-n N",
	"adversary": "-n N -kind waitfree|tres|kof|fig5b [-t T] [-k K]",
	"affine":    "-n N -kind waitfree|tres|kof|fig5b [-t T] [-k K]",
	"classify":  "-n N",
	"census": "-n N [-workers W] [-json] [-solve -task S -rounds L -verify] [-stats]\n" +
		"                      [-family F] [-progress] [-orbits] [-out F.jsonl] [-compress]\n" +
		"                      [-checkpoint F -resume] [-checkpoint-every I]\n" +
		"                      [-maxindices I] [-budget D] [-cachemb M]\n" +
		"                      [-debug-addr HOST:PORT] [-trace FILE]",
	"merge": "-n N -store DIR [-block-entries B] [-summary] SHARD.jsonl[.gz]...",
	"serve": "-store DIR [-store DIR ...] [-stores GLOB] [-addr HOST:PORT]\n" +
		"                      [-apikeys FILE] [-log-json] [-metrics=false]\n" +
		"                      [-cache-entries E] [-cachemb M] [-rounds L] [-readonly]\n" +
		"                      [-no-presence] [-drain-timeout D]\n" +
		"                      [-debug-addr HOST:PORT] [-trace FILE]",
	"coordinate": "-n N -store DIR [-orbits] [-solve -task S -rounds L] [-unit-size U]\n" +
		"                      [-addr HOST:PORT] [-ttl D] [-spool DIR] [-apikeys FILE]\n" +
		"                      [-log-json] [-exit-on-complete] [-drain-timeout D]\n" +
		"                      [-debug-addr HOST:PORT] [-trace FILE]",
	"work": "-url URL [-id W] [-task S] [-workers W] [-ttl SEC] [-cachemb M] [-tmp DIR]\n" +
		"                      [-max-units K] [-apikey KEY] [-max-outage D] [-crash-after K]\n" +
		"                      [-debug-addr HOST:PORT] [-trace FILE]",
	"store verify": "-store DIR [-spot K] [-json]",
	"loadtest": "-url URL -n N [-duration D] [-concurrency C] [-batch B]\n" +
		"                      [-solve-frac F] [-batch-frac F] [-task S] [-ktask K] [-seed S]\n" +
		"                      [-apikey KEY] [-slo-p99 D] [-json]",
	"tracecat": "[-json] [-top K] TRACE.jsonl... (stdin when no files)",
	"figures":  "-dir DIR",
	"solve":    "-n N -kind K [-t T] [-k K] -ktask K' [-rounds L] [-workers W] [-stats]",
	"simulate": "-n N -kind K [-t T] [-k K] [-trials T] [-seed S]",
}

// errBadFlags marks a flag-parse failure the FlagSet already reported
// (message + subcommand usage on stderr): exit 2, nothing reprinted.
var errBadFlags = errors.New("bad flags")

// usageError is a post-parse validation failure that should show the
// failing subcommand's usage: exit 2.
type usageError struct {
	fs  *flag.FlagSet
	err error
}

func (e *usageError) Error() string { return e.err.Error() }

// usagef wraps a validation failure with the subcommand's FlagSet so
// mainRun prints its usage.
func usagef(fs *flag.FlagSet, format string, args ...any) error {
	return &usageError{fs: fs, err: fmt.Errorf(format, args...)}
}

// newFlagSet builds a subcommand FlagSet whose usage output names the
// subcommand and its synopsis.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: factool %s %s\n", name, synopses[name])
		fs.PrintDefaults()
	}
	return fs
}

// parseFlags parses args, normalizing errors: help requests pass
// through, parse failures (already reported by the FlagSet, with the
// subcommand usage) become errBadFlags.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return fmt.Errorf("%v: %w", err, errBadFlags)
	}
	return nil
}

// adversaryFlags adds the shared adversary-selection flags.
func adversaryFlags(fs *flag.FlagSet) (n *int, kind *string, t *int, k *int) {
	n = fs.Int("n", 3, "number of processes")
	kind = fs.String("kind", "tres", "adversary kind: waitfree|tres|kof|fig5b")
	t = fs.Int("t", 1, "resilience parameter for -kind tres")
	k = fs.Int("k", 1, "concurrency parameter for -kind kof")
	return
}

func buildAdversary(n int, kind string, t, k int) (*fact.Adversary, error) {
	switch kind {
	case "waitfree":
		return fact.WaitFree(n), nil
	case "tres":
		return fact.TResilient(n, t), nil
	case "kof":
		return fact.KObstructionFree(n, k), nil
	case "fig5b":
		if n != 3 {
			return nil, fmt.Errorf("fig5b adversary is defined for n=3")
		}
		return fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	default:
		return nil, fmt.Errorf("unknown adversary kind %q", kind)
	}
}

func cmdChr(args []string) error {
	fs := newFlagSet("chr")
	n := fs.Int("n", 3, "number of processes")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fmt.Printf("Chr s for n=%d\n", *n)
	fmt.Printf("  facets (ordered partitions): %d\n", procs.CountOrderedPartitions(*n))
	fmt.Printf("  vertices: %d\n", *n*(1<<uint(*n-1)))
	fmt.Printf("  Chr² s facets: %d\n",
		procs.CountOrderedPartitions(*n)*procs.CountOrderedPartitions(*n))
	return nil
}

func cmdAdversary(args []string) error {
	fs := newFlagSet("adversary")
	n, kind, t, k := adversaryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	fmt.Printf("%v (n=%d)\n", a, a.N())
	fmt.Printf("  superset-closed: %v\n", a.IsSupersetClosed())
	fmt.Printf("  symmetric:       %v\n", a.IsSymmetric())
	fmt.Printf("  fair:            %v\n", a.IsFair())
	fmt.Printf("  setcon:          %d\n", a.Setcon())
	fmt.Printf("  csize:           %d\n", a.CSize())
	fmt.Println("  agreement function:")
	af := a.AgreementFunction()
	keys := make([]procs.Set, 0, len(af))
	for p := range af {
		keys = append(keys, p)
	}
	procs.SortSets(keys)
	for _, p := range keys {
		fmt.Printf("    α(%v) = %d\n", p, af[p])
	}
	return nil
}

func cmdAffine(args []string) error {
	fs := newFlagSet("affine")
	n, kind, t, k := adversaryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	fmt.Println(m.Stats())
	fmt.Println("  complex:", render.ComplexStats(m.AffineTask().Complex()))
	return nil
}

func cmdClassify(args []string) error {
	fs := newFlagSet("classify")
	n := fs.Int("n", 3, "number of processes")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	// The Figure 2 numbers, computed by the parallel census engine.
	rep, err := fact.RunCensus(*n, fact.CensusOptions{})
	if err != nil {
		return err
	}
	printCensusSummary(rep)
	return nil
}

func cmdCensus(args []string) error {
	fs := newFlagSet("census")
	n := fs.Int("n", 3, "number of processes")
	workers := fs.Int("workers", 0, "census workers (0 = all CPUs, 1 = serial)")
	jsonOut := fs.Bool("json", false, "emit the full deterministic report as JSON on stdout")
	solve := fs.Bool("solve", false, "also decide the configured task per fair adversary")
	task := fs.String("task", "", "registered task spec to decide (kset:k=K | consensus | loop-agreement | approx:eps=E | simplex-agreement | identity); implies -solve")
	kTask := fs.Int("ktask", 1, "k for -solve (deprecated compat for -task kset:k=K)")
	family := fs.String("family", "", "restrict the sweep to a named adversary family: t-resilient[:t=T] | symmetric | k-obstruction-free[:k=K]")
	rounds := fs.Int("rounds", 1, "maximum iterations of R_A for -solve")
	verify := fs.Bool("verify", false, "independently re-verify every witness map (-solve)")
	stats := fs.Bool("stats", false, "print tower-cache statistics to stderr (requires -solve)")
	progress := fs.Bool("progress", false, "report shard progress to stderr")
	orbits := fs.Bool("orbits", false, "sweep one representative per color-permutation orbit via the stabilizer-aware canonical enumerator (same totals, up to n! fewer adversaries, cost scales with orbits not domain)")
	out := fs.String("out", "", "stream entries as JSON lines to this file (bounded memory; no domain cap)")
	compress := fs.Bool("compress", false, "gzip the -out stream (automatic for .gz paths; resume-safe)")
	checkpoint := fs.String("checkpoint", "", "checkpoint sidecar path (periodic atomic frontier records)")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "enumeration indices between checkpoints (0 = default)")
	resume := fs.Bool("resume", false, "resume from -checkpoint when it exists (missing sidecar starts fresh)")
	maxIndices := fs.Uint64("maxindices", 0, "stop cleanly after about this many newly swept indices (0 = no cap)")
	budget := fs.Duration("budget", 0, "wall-clock budget; the sweep winds down cleanly when it elapses (0 = none)")
	cacheMB := fs.Int64("cachemb", 0, "tower-cache byte budget in MiB for -solve (0 = unbounded)")
	debugAddr, tracePath := debugFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *n < 1 || *n > 6 {
		return usagef(fs, "census: -n must be in [1,6], got %d", *n)
	}
	if *compress && *out == "" {
		return usagef(fs, "census: -compress requires -out")
	}
	if *task != "" {
		if _, err := fact.ParseTaskSpec(*task); err != nil {
			return usagef(fs, "census: %v", err)
		}
		*solve = true
	}
	opts := fact.CensusOptions{
		Workers:         *workers,
		Solve:           *solve,
		Task:            *task,
		KTask:           *kTask,
		Family:          *family,
		MaxRounds:       *rounds,
		VerifyWitnesses: *verify,
		Orbits:          *orbits,
		Checkpoint:      *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
		MaxIndices:      *maxIndices,
		Budget:          *budget,
		CacheBytes:      *cacheMB << 20,
	}
	stopDebug, derr := startDebug("census", *debugAddr, *tracePath, nil)
	if derr != nil {
		return derr
	}
	defer stopDebug()
	if *progress {
		// The engine's callback only stores counters; a wall-clock
		// ticker prints rate and ETA, so the cadence is time-based
		// instead of one line per shard.
		var doneCount, totalCount atomic.Uint64
		opts.Progress = func(done, total uint64) {
			doneCount.Store(done)
			totalCount.Store(total)
		}
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			var lastDone uint64
			lastAt := time.Now()
			for {
				select {
				case <-stopTick:
					return
				case now := <-tick.C:
					done, total := doneCount.Load(), totalCount.Load()
					rate := float64(done-lastDone) / now.Sub(lastAt).Seconds()
					lastDone, lastAt = done, now
					line := fmt.Sprintf("census: %d/%d adversaries (%.1f%%), %.0f/s",
						done, total, 100*float64(done)/float64(max(total, 1)), rate)
					if rate > 0 && total > done {
						eta := time.Duration(float64(total-done) / rate * float64(time.Second))
						line += ", eta " + eta.Round(time.Second).String()
					}
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
	}

	// The collecting engine materializes every entry (the full -json
	// report); streaming runs hold memory bounded by the reorder window
	// and are what checkpoints, budgets and big domains require.
	streaming := *out != "" || *checkpoint != "" || *resume ||
		*maxIndices > 0 || *budget > 0 || fact.CensusSize(*n) > fact.CensusMaxDomain
	var rep *fact.CensusReport
	var err error
	if streaming {
		// SIGINT winds the sweep down to a clean, checkpointed
		// frontier instead of tearing the stream mid-shard.
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt)
		defer func() {
			signal.Stop(sigc)
			close(sigc)
		}()
		go func() {
			if _, ok := <-sigc; ok {
				// Hand SIGINT back to the default handler so a second
				// Ctrl-C force-quits a wind-down that takes too long.
				signal.Stop(sigc)
				fmt.Fprintln(os.Stderr, "census: interrupt — winding down to a clean frontier (interrupt again to force quit)")
				close(stop)
			}
		}()
		opts.Stop = stop

		var sink fact.CensusSink
		if *out != "" {
			var js *fact.CensusJSONLSink
			var err error
			if *compress {
				js, err = fact.NewCensusJSONLSinkCompressed(*out)
			} else {
				js, err = fact.NewCensusJSONLSink(*out)
			}
			if err != nil {
				return err
			}
			defer js.Close()
			sink = js
		}
		rep, err = fact.StreamCensus(*n, opts, sink)
	} else {
		rep, err = fact.RunCensus(*n, opts)
	}
	if err != nil {
		return err
	}
	if *stats {
		if rep.Cache != nil {
			printCacheStats(*rep.Cache)
		} else {
			fmt.Fprintln(os.Stderr, "census: -stats reports the tower cache, which only solve jobs use; pass -solve")
		}
	}
	if rep.Incomplete {
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "census: incomplete — frontier at index %d/%d; rerun with -resume -checkpoint %q to continue\n",
				rep.NextIndex, fact.CensusSize(*n), *checkpoint)
		} else {
			fmt.Fprintf(os.Stderr, "census: incomplete — stopped at index %d/%d with no -checkpoint, so this progress cannot be resumed\n",
				rep.NextIndex, fact.CensusSize(*n))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printCensusSummary(rep)
	return nil
}

// cmdMerge folds census JSONL shards (plain or gzip) into an indexed,
// compressed on-disk store — the merge tool for per-night campaign
// shards the ROADMAP asks for.
func cmdMerge(args []string) error {
	fs := newFlagSet("merge")
	n := fs.Int("n", 0, "number of processes of the census (required; must match an existing store)")
	storeDir := fs.String("store", "", "store directory (created when missing)")
	blockEntries := fs.Int("block-entries", 0, "entries per compressed block (0 = default)")
	summary := fs.Bool("summary", false, "print the merged store's census summary to stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	shards := fs.Args()
	if *storeDir == "" {
		return usagef(fs, "merge: -store is required")
	}
	if *n < 1 || *n > 6 {
		return usagef(fs, "merge: -n must be in [1,6], got %d", *n)
	}
	if len(shards) == 0 {
		return usagef(fs, "merge: at least one shard file is required")
	}
	st, err := fact.OpenOrCreateCensusStore(*storeDir, *n)
	if err != nil {
		return err
	}
	defer st.Close()
	stats, err := st.Merge(shards, fact.CensusMergeOptions{BlockEntries: *blockEntries})
	if err != nil {
		return err
	}
	ss := st.Stats()
	fmt.Fprintf(os.Stderr, "merge: +%d entries (%d duplicates folded) from %d shard(s)\n",
		stats.Added, stats.Duplicates, len(shards))
	fmt.Fprintf(os.Stderr, "store %s: n=%d, %d entries, %d blocks, %d compressed bytes (gen %d)\n",
		*storeDir, ss.N, ss.Entries, ss.Blocks, ss.Bytes, ss.Generation)
	if *summary {
		sum, err := st.Summary()
		if err != nil {
			return err
		}
		printCensusSummary(&fact.CensusReport{Summary: sum})
	}
	return nil
}

// multiFlag is a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// cmdServe serves the v1 HTTP API over a registry of mounted stores —
// one process answering every mounted n — with optional API-key auth,
// Prometheus metrics, structured logging, and graceful drain on
// SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	var storeDirs multiFlag
	fs.Var(&storeDirs, "store", "census store directory to mount (repeatable; see factool merge)")
	storesGlob := fs.String("stores", "", "glob of store directories to mount (e.g. 'stores/n*')")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheEntries := fs.Int("cache-entries", 4096, "per-store in-memory entry LRU capacity")
	cacheMB := fs.Int64("cachemb", 0, "tower-cache byte budget in MiB for live solves, shared by all mounts (0 = unbounded)")
	rounds := fs.Int("rounds", 1, "default maximum iterations of R_A for /v1/solve")
	readonly := fs.Bool("readonly", false, "do not persist live-computed answers to the stores")
	apikeys := fs.String("apikeys", "", "API-key file (name:key[:rate[:burst]] lines); enables 401/429 auth")
	metricsOn := fs.Bool("metrics", true, "expose the Prometheus /metrics endpoint")
	logJSON := fs.Bool("log-json", false, "structured JSON request log on stderr")
	noPresence := fs.Bool("no-presence", false, "skip building per-store presence filters at startup")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "in-flight request budget during graceful shutdown")
	debugAddr, tracePath := debugFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	dirs := []string(storeDirs)
	if *storesGlob != "" {
		matches, err := filepath.Glob(*storesGlob)
		if err != nil {
			return usagef(fs, "serve: bad -stores glob: %v", err)
		}
		for _, m := range matches {
			if _, err := os.Stat(filepath.Join(m, "MANIFEST.json")); err == nil {
				dirs = append(dirs, m)
			}
		}
	}
	if len(dirs) == 0 {
		return usagef(fs, "serve: at least one -store (or a matching -stores glob) is required")
	}

	reg := fact.NewCensusStoreRegistry()
	defer reg.Close()
	for _, dir := range dirs {
		if err := reg.MountDir(dir); err != nil {
			return err
		}
	}
	opts := fact.CensusServeOptions{
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheMB << 20,
		MaxRounds:    *rounds,
		ReadOnly:     *readonly,
		SkipPresence: *noPresence,
	}
	if *apikeys != "" {
		auth, err := fact.LoadCensusAPIKeys(*apikeys)
		if err != nil {
			return err
		}
		opts.Auth = auth
	}
	if *logJSON {
		opts.AccessLog = os.Stderr
	}
	srv, err := fact.NewCensusRegistryServer(reg, opts)
	if err != nil {
		return err
	}
	stopDebug, err := startDebug("serve", *debugAddr, *tracePath, nil)
	if err != nil {
		return err
	}
	defer stopDebug()
	handler := srv.Handler()
	if !*metricsOn {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				http.NotFound(w, r)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	for _, mt := range reg.Mounts() {
		ss := mt.Store().Stats()
		fmt.Fprintf(os.Stderr, "factool serve: mounted %s: n=%d, %d entries, %d blocks\n",
			mt.Name(), ss.N, ss.Entries, ss.Blocks)
	}
	fmt.Fprintf(os.Stderr, "factool serve: %d store(s) listening on %s\n", len(dirs), ln.Addr())

	httpSrv := &http.Server{Handler: handler}
	return serveUntilSignal(httpSrv, ln, srv, *drainTimeout)
}

// serveUntilSignal runs the HTTP server until SIGINT or SIGTERM, then
// drains: readiness flips first (load balancers stop routing), then
// Shutdown lets in-flight requests finish within the timeout. A second
// signal force-quits via the default handler.
func serveUntilSignal(httpSrv *http.Server, ln net.Listener, srv *fact.CensusServer, drainTimeout time.Duration) error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		if _, ok := <-sigc; ok {
			// Hand the signals back to the default handler first, so a
			// second Ctrl-C during the drain force-quits instead of
			// panicking on a closed channel.
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "factool serve: signal — draining in-flight requests")
			srv.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			done <- httpSrv.Shutdown(ctx)
			return
		}
		done <- nil
	}()
	err := httpSrv.Serve(ln)
	signal.Stop(sigc) // no-op when the goroutine already stopped it
	close(sigc)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// cmdStore dispatches the store maintenance subcommands.
func cmdStore(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("store: missing subcommand (want: verify): %w", errBadFlags)
	}
	switch args[0] {
	case "verify":
		return cmdStoreVerify(args[1:])
	default:
		usage()
		return fmt.Errorf("store: unknown subcommand %q (want: verify): %w", args[0], errBadFlags)
	}
}

// cmdStoreVerify deep-checks a store: full CRC/framing walk, manifest
// consistency, duplicate agreement, kind discipline, and an
// orbit/classification spot check. Exit 1 on corruption.
func cmdStoreVerify(args []string) error {
	fs := newFlagSet("store verify")
	storeDir := fs.String("store", "", "census store directory (required)")
	spot := fs.Int("spot", 8, "entries to semantically re-derive (canonicality, orbit size, reclassification)")
	jsonOut := fs.Bool("json", false, "emit the verification report as JSON on stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *storeDir == "" {
		return usagef(fs, "store verify: -store is required")
	}
	st, err := fact.OpenCensusStore(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := st.Verify(fact.CensusVerifyOptions{SpotChecks: *spot})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("store %s: %d blocks, %d entries (%d unique), %d compressed bytes\n",
			*storeDir, rep.Blocks, rep.Entries, rep.Unique, rep.Bytes)
		fmt.Printf("  spot-checked: %d (reclassified from scratch: %d)\n", rep.SpotChecked, rep.Reclassified)
		for _, p := range rep.Problems {
			fmt.Printf("  PROBLEM: %s\n", p)
		}
	}
	if !rep.OK() {
		return fmt.Errorf("store verify: %d problem(s) found in %s", len(rep.Problems), *storeDir)
	}
	if !*jsonOut {
		fmt.Println("  OK: no corruption found")
	}
	return nil
}

// printCensusSummary renders the deterministic human-readable summary
// (identical for every worker count — timing and cache internals go to
// stderr, never here).
func printCensusSummary(rep *fact.CensusReport) {
	s := rep.Summary
	fmt.Printf("adversary census for n=%d (Figure 2 as data)\n", s.N)
	fmt.Printf("  total adversaries:    %d\n", s.Total)
	fmt.Printf("  superset-closed:      %d\n", s.SupersetClosed)
	fmt.Printf("  symmetric:            %d\n", s.Symmetric)
	fmt.Printf("  fair:                 %d\n", s.Fair)
	fmt.Printf("  inclusion violations: %d\n", s.InclusionViolations)
	fmt.Println("  setcon histogram over fair adversaries:")
	for k, c := range s.SetconHist {
		if c > 0 {
			fmt.Printf("    setcon=%d: %d adversaries\n", k, c)
		}
	}
	if s.Orbits > 0 {
		fmt.Printf("  orbit representatives examined: %d (symmetry reduction %.1fx)\n",
			s.Orbits, float64(s.Total)/float64(s.Orbits))
	}
	if s.Solved > 0 {
		if s.Task != "" {
			fmt.Printf("  solve mode (task %s):\n", s.Task)
		} else {
			fmt.Printf("  solve mode (k=%d):\n", s.KTask)
		}
		fmt.Printf("    solved:    %d\n", s.Solved)
		fmt.Printf("    solvable:  %d\n", s.Solvable)
		fmt.Printf("    undecided: %d\n", s.Undecided)
	}
}

func printCacheStats(st fact.CacheStats) {
	fmt.Fprintf(os.Stderr,
		"tower cache: %d hits, %d misses, %d towers, %d levels, %d vertices\n",
		st.Hits, st.Misses, st.Towers, st.Levels, st.Vertices)
}

func cmdFigures(args []string) error {
	fs := newFlagSet("figures")
	dir := fs.String("dir", "figures", "output directory")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	oneOF := fact.KObstructionFree(3, 1)
	fig5b, err := fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	if err != nil {
		return err
	}
	tres1 := fact.TResilient(3, 1)
	files := map[string]func() (string, error){
		"figure1a_chr.svg": func() (string, error) {
			return render.Chr1SVG(3), nil
		},
		"figure1b_r1res.svg":          modelFigure(tres1, fact.FigureAffineTask),
		"figure4c_contention.svg":     func() (string, error) { return render.Cont2SVG(3), nil },
		"figure5a_critical_1of.svg":   modelFigure(oneOF, fact.FigureCritical),
		"figure5b_critical_fig5b.svg": modelFigure(fig5b, fact.FigureCritical),
		"figure6a_conc_1of.svg":       modelFigure(oneOF, fact.FigureConcurrency),
		"figure6b_conc_fig5b.svg":     modelFigure(fig5b, fact.FigureConcurrency),
		"figure7a_ra_1of.svg":         modelFigure(oneOF, fact.FigureAffineTask),
		"figure7b_ra_fig5b.svg":       modelFigure(fig5b, fact.FigureAffineTask),
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		svg, err := files[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func modelFigure(a *fact.Adversary, kind string) func() (string, error) {
	return func() (string, error) {
		m, err := fact.NewModel(a)
		if err != nil {
			return "", err
		}
		return m.FigureSVG(kind)
	}
}

func cmdSolve(args []string) error {
	fs := newFlagSet("solve")
	n, kind, t, k := adversaryFlags(fs)
	kTask := fs.Int("ktask", 1, "k for k-set consensus")
	rounds := fs.Int("rounds", 1, "maximum iterations of R_A")
	workers := fs.Int("workers", 0, "engine workers (0 = all CPUs, 1 = serial)")
	stats := fs.Bool("stats", false, "print tower-cache statistics to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	m.SetWorkers(*workers)
	fmt.Printf("model %v: setcon = %d (FACT predicts solvable ⇔ k ≥ setcon)\n", a, m.Setcon())
	res, err := m.SolveKSetConsensus(*kTask, *rounds)
	if err != nil {
		return err
	}
	if res.Solvable {
		fmt.Printf("%d-set consensus: SOLVABLE at ℓ=%d (map on %d vertices)\n",
			*kTask, res.Rounds, len(res.Map))
	} else {
		fmt.Printf("%d-set consensus: no map up to ℓ=%d (complex sizes %v)\n",
			*kTask, *rounds, res.ComplexSizes)
	}
	if *stats {
		printCacheStats(fact.DefaultTowerCache.Snapshot())
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	n, kind, t, k := adversaryFlags(fs)
	trials := fs.Int("trials", 100, "number of random schedules")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	a, err := buildAdversary(*n, *kind, *t, *k)
	if err != nil {
		return err
	}
	m, err := fact.NewModel(a)
	if err != nil {
		return err
	}
	fmt.Println(m.Stats())

	r1 := m.VerifyAlgorithmOne(*trials, *seed)
	fmt.Printf("Algorithm 1 (Theorem 7): liveness %d/%d, safety %d/%d, mean steps %.1f\n",
		r1.Liveness, r1.Trials, r1.Safety, r1.Trials, r1.MeanSteps)
	if len(r1.Violations) > 0 {
		fmt.Println("  violations:", strings.Join(r1.Violations[:minInt(3, len(r1.Violations))], "; "))
	}

	if err := m.VerifyMuQ(); err != nil {
		fmt.Println("μ_Q properties: FAIL:", err)
	} else {
		fmt.Println("μ_Q properties (9, 10, 12): OK (exhaustive over facets)")
	}

	r2 := m.VerifySetConsensusSimulation(*trials, *seed)
	fmt.Printf("§6 set-consensus simulation: %d/%d ok, max distinct decisions %d\n",
		r2.OK, r2.Trials, r2.MaxDistinct)
	if len(r2.Violations) > 0 {
		fmt.Println("  violations:", strings.Join(r2.Violations[:minInt(3, len(r2.Violations))], "; "))
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
