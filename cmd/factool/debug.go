package main

// Shared -debug-addr / -trace wiring for the long-running factool
// subcommands (serve, coordinate, work, census): an operational side
// surface (/healthz, /metrics, /debug/pprof, /debug/vars, /debug/trace)
// plus JSONL span export for `factool tracecat`.

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// debugFlags adds the observability flags every long-runner shares.
func debugFlags(fs *flag.FlagSet) (debugAddr, tracePath *string) {
	debugAddr = fs.String("debug-addr", "",
		"serve /healthz, /metrics, /debug/pprof and /debug/trace on this address (off when empty)")
	tracePath = fs.String("trace", "",
		"append completed spans as JSON lines to this file (see factool tracecat)")
	return
}

// startDebug wires the shared flags up: span export to tracePath, and
// the debug mux on debugAddr over reg — nil means a fresh registry that
// includes the process-global families, which is right for subcommands
// whose telemetry is entirely package-global (census, serve). The
// returned cleanup stops the listener and closes the trace file; it is
// non-nil even on error.
func startDebug(name, debugAddr, tracePath string, reg *obs.Registry) (func(), error) {
	cleanup := func() {}
	if tracePath != "" {
		if err := obs.DefaultTracer.ExportTo(tracePath); err != nil {
			return cleanup, err
		}
		cleanup = func() { obs.DefaultTracer.Close() }
	}
	if debugAddr != "" {
		if reg == nil {
			reg = obs.NewRegistry()
			reg.Include(obs.Default)
		}
		bound, stop, err := obs.StartDebug(debugAddr, reg, obs.DefaultTracer)
		if err != nil {
			cleanup()
			return func() {}, err
		}
		fmt.Fprintf(os.Stderr, "factool %s: debug surface on http://%s (healthz, metrics, pprof, trace)\n", name, bound)
		closeTrace := cleanup
		cleanup = func() {
			stop()
			closeTrace()
		}
	}
	return cleanup, nil
}
