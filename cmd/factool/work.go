package main

// factool work — the worker side of the distributed census fabric: an
// acquire → rank-range sweep → shard upload loop against a `factool
// coordinate` endpoint.

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	fact "repro"
	"repro/internal/obs"
)

func cmdWork(args []string) error {
	fs := newFlagSet("work")
	url := fs.String("url", "http://127.0.0.1:8081", "coordinator base URL")
	id := fs.String("id", "", "worker id (default: hostname-pid)")
	task := fs.String("task", "", "task spec this worker expects the campaign to decide; a campaign sweeping a different task rejects the worker")
	workers := fs.Int("workers", 0, "sweep worker-pool size per unit (0 = one per CPU)")
	ttlSec := fs.Int("ttl", 0, "requested lease TTL in seconds (0 = coordinator default)")
	cacheMB := fs.Int64("cachemb", 0, "tower-cache byte budget in MiB for solve campaigns (0 = unbounded)")
	tmp := fs.String("tmp", "", "shard spool directory (default: system temp)")
	maxUnits := fs.Int("max-units", 0, "stop after completing this many units (0 = run to campaign end)")
	apikey := fs.String("apikey", "", "API key sent as a Bearer token")
	maxOutage := fs.Duration("max-outage", 0, "give up after the coordinator is unreachable this long (0 = retry forever)")
	crashAfter := fs.Int("crash-after", 0, "fault injection: die holding a lease after completing this many units")
	debugAddr, tracePath := debugFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *task != "" {
		if _, err := fact.ParseTaskSpec(*task); err != nil {
			return usagef(fs, "work: %v", err)
		}
	}
	opts := fact.FabricWorkerOptions{
		BaseURL:    *url,
		ID:         *id,
		TaskSpec:   *task,
		APIKey:     *apikey,
		Workers:    *workers,
		CacheBytes: *cacheMB << 20,
		TTLSec:     *ttlSec,
		TempDir:    *tmp,
		MaxUnits:   *maxUnits,
		MaxOutage:  *maxOutage,
		Log:        os.Stderr,
	}
	// The worker's scrape surface: its own sweep/lease families plus the
	// process-global ones (census throughput, solver decisions, runtime).
	reg := obs.NewRegistry()
	reg.Include(obs.Default)
	opts.Registry = reg
	stopDebug, err := startDebug("work", *debugAddr, *tracePath, reg)
	if err != nil {
		return err
	}
	defer stopDebug()
	if *crashAfter > 0 {
		target := *crashAfter + 1
		opts.AcquireHook = func(k int, leaseID string, u fact.FabricUnit) error {
			if k >= target {
				return fmt.Errorf("work: injected crash holding lease %s (unit %d)", leaseID, u.ID)
			}
			return nil
		}
	}

	// A signal closes Stop: the in-flight lease is released so its unit
	// requeues immediately instead of waiting out the TTL.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		fmt.Fprintln(os.Stderr, "factool work: signal — releasing lease and stopping")
		close(stop)
	}()
	opts.Stop = stop

	stats, err := fact.FabricWork(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "factool work: %s completed %d unit(s), %d entries\n", *id, stats.Units, stats.Entries)
	return nil
}
