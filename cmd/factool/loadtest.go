// factool loadtest: a self-contained load generator for the serve
// layer. It drives a configurable mix of single classifies, batch
// classifies, and live solves against a running `factool serve`,
// measures client-side latency quantiles, and exits non-zero when the
// run breaches its SLO (any 5xx, any transport error, or p99 over the
// -slo-p99 budget). CI uses it as the serve-load smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	fact "repro"
)

// ltStats is one worker's tally, merged after the run.
type ltStats struct {
	lat       []time.Duration // latency of every successful request
	byStatus  map[int]int
	transport int // client-side failures (dial, timeout, bad body)
}

// ltResult is the merged, reported outcome.
type ltResult struct {
	Requests   int            `json:"requests"`
	Errors5xx  int            `json:"errors_5xx"`
	Errors4xx  int            `json:"errors_4xx"`
	Transport  int            `json:"transport_errors"`
	Duration   float64        `json:"duration_sec"`
	Throughput float64        `json:"requests_per_sec"`
	P50Ms      float64        `json:"p50_ms"`
	P90Ms      float64        `json:"p90_ms"`
	P99Ms      float64        `json:"p99_ms"`
	MaxMs      float64        `json:"max_ms"`
	SLOP99Ms   float64        `json:"slo_p99_ms,omitempty"`
	SLOOK      bool           `json:"slo_ok"`
	ByStatus   map[string]int `json:"by_status"`
	byStatus   map[int]int    `json:"-"`
	p99        time.Duration  `json:"-"`
}

func cmdLoadtest(args []string) error {
	fs := newFlagSet("loadtest")
	baseURL := fs.String("url", "", "base URL of a running factool serve (required; e.g. http://127.0.0.1:8080)")
	n := fs.Int("n", 0, "system size to target (required; must be mounted on the server)")
	duration := fs.Duration("duration", 10*time.Second, "wall-clock length of the run")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	batch := fs.Int("batch", 16, "indices per batch classify request")
	solveFrac := fs.Float64("solve-frac", 0.05, "fraction of requests that are live /v1/solve calls")
	batchFrac := fs.Float64("batch-frac", 0.25, "fraction of requests that are batch classifies")
	ktask := fs.Int("ktask", 1, "k for the /v1/solve k-set consensus queries (deprecated: use -task kset:k=K)")
	task := fs.String("task", "", "task spec for the /v1/solve queries (e.g. loop-agreement, approx:eps=1); overrides -ktask")
	seed := fs.Int64("seed", 1, "RNG seed (per-worker streams derive from it; runs are reproducible)")
	apikey := fs.String("apikey", "", "API key sent as a Bearer token (when the server has -apikeys)")
	sloP99 := fs.Duration("slo-p99", 0, "p99 latency budget; breach fails the run (0 = no latency SLO)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON on stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *baseURL == "" {
		return usagef(fs, "loadtest: -url is required")
	}
	if *n <= 0 {
		return usagef(fs, "loadtest: -n is required")
	}
	if *concurrency <= 0 || *batch <= 0 {
		return usagef(fs, "loadtest: -concurrency and -batch must be positive")
	}
	if *solveFrac < 0 || *batchFrac < 0 || *solveFrac+*batchFrac > 1 {
		return usagef(fs, "loadtest: -solve-frac and -batch-frac must be non-negative and sum to at most 1")
	}
	if *task != "" {
		if _, err := fact.ParseTaskSpec(*task); err != nil {
			return usagef(fs, "loadtest: %v", err)
		}
	}
	base := strings.TrimRight(*baseURL, "/")
	domain := fact.CensusSize(*n)
	if domain == 0 {
		return usagef(fs, "loadtest: n=%d has an empty census domain", *n)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	authorize := func(req *http.Request) {
		if *apikey != "" {
			req.Header.Set("Authorization", "Bearer "+*apikey)
		}
	}

	// Preflight: the target n must be mounted, so a misconfigured run
	// fails fast instead of producing a wall of 404s.
	req, err := http.NewRequest("GET", base+"/v1/stores", nil)
	if err != nil {
		return err
	}
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("loadtest: preflight %s/v1/stores: %w", base, err)
	}
	var stores struct {
		Stores []struct {
			N int `json:"n"`
		} `json:"stores"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stores)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadtest: preflight %s/v1/stores: status %d (err %v)", base, resp.StatusCode, err)
	}
	mounted := false
	for _, s := range stores.Stores {
		if s.N == *n {
			mounted = true
		}
	}
	if !mounted {
		return fmt.Errorf("loadtest: n=%d is not mounted on %s", *n, base)
	}

	fmt.Fprintf(os.Stderr, "loadtest: %s n=%d domain=%d for %s with %d workers (batch=%d solve-frac=%.2f batch-frac=%.2f)\n",
		base, *n, domain, *duration, *concurrency, *batch, *solveFrac, *batchFrac)

	deadline := time.Now().Add(*duration)
	stats := make([]ltStats, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.byStatus = make(map[int]int)
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				var (
					status int
					err    error
				)
				start := time.Now()
				switch p := rng.Float64(); {
				case p < *solveFrac:
					idx := uint64(rng.Int63n(int64(domain)))
					status, err = ltGet(client, authorize, base+solveQuery(*n, idx, *task, *ktask))
				case p < *solveFrac+*batchFrac:
					idxs := make([]uint64, *batch)
					for i := range idxs {
						idxs[i] = uint64(rng.Int63n(int64(domain)))
					}
					status, err = ltBatch(client, authorize, base, *n, idxs)
				default:
					idx := uint64(rng.Int63n(int64(domain)))
					status, err = ltGet(client, authorize,
						fmt.Sprintf("%s/v1/classify?n=%d&index=%d", base, *n, idx))
				}
				if err != nil {
					st.transport++
					continue
				}
				st.byStatus[status]++
				st.lat = append(st.lat, time.Since(start))
			}
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	res := mergeLtStats(stats, elapsed, *sloP99)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Printf("loadtest: %d requests in %.1fs (%.1f req/s)\n", res.Requests, res.Duration, res.Throughput)
		var codes []int
		for c := range res.byStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Printf("  status %d: %d\n", c, res.byStatus[c])
		}
		if res.Transport > 0 {
			fmt.Printf("  transport errors: %d\n", res.Transport)
		}
		fmt.Printf("  latency p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	}
	switch {
	case res.Errors5xx > 0:
		return fmt.Errorf("loadtest: SLO breach: %d server errors (5xx)", res.Errors5xx)
	case res.Transport > 0:
		return fmt.Errorf("loadtest: SLO breach: %d transport errors", res.Transport)
	case res.Errors4xx > 0:
		return fmt.Errorf("loadtest: SLO breach: %d client errors (4xx) — check -apikey and the target n", res.Errors4xx)
	case !res.SLOOK:
		return fmt.Errorf("loadtest: SLO breach: p99 %.2fms exceeds budget %.2fms", res.P99Ms, res.SLOP99Ms)
	case res.Requests == 0:
		return fmt.Errorf("loadtest: no requests completed")
	}
	return nil
}

// solveQuery renders the /v1/solve query string: the task spec when
// one was given, the kset compat parameter otherwise.
func solveQuery(n int, idx uint64, task string, ktask int) string {
	if task != "" {
		return fmt.Sprintf("/v1/solve?n=%d&index=%d&task=%s", n, idx, url.QueryEscape(task))
	}
	return fmt.Sprintf("/v1/solve?n=%d&index=%d&ktask=%d", n, idx, ktask)
}

// ltGet issues one GET, draining the body so the connection is reused.
func ltGet(client *http.Client, authorize func(*http.Request), url string) (int, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return 0, err
	}
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// ltBatch issues one POST /v1/classify with the given index list.
func ltBatch(client *http.Client, authorize func(*http.Request), base string, n int, idxs []uint64) (int, error) {
	body, err := json.Marshal(struct {
		N       int      `json:"n"`
		Indices []uint64 `json:"indices"`
	}{N: n, Indices: idxs})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest("POST", base+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// mergeLtStats folds the per-worker tallies into the reported result.
func mergeLtStats(stats []ltStats, elapsed time.Duration, sloP99 time.Duration) ltResult {
	res := ltResult{byStatus: make(map[int]int), Duration: elapsed.Seconds(), SLOOK: true}
	var lat []time.Duration
	for i := range stats {
		st := &stats[i]
		res.Transport += st.transport
		for code, cnt := range st.byStatus {
			res.byStatus[code] += cnt
			res.Requests += cnt
			switch {
			case code >= 500:
				res.Errors5xx += cnt
			case code >= 400:
				res.Errors4xx += cnt
			}
		}
		lat = append(lat, st.lat...)
	}
	// String keys: JSON objects cannot key on ints, and jq-driven CI
	// reads these counts structurally (e.g. .by_status["200"]).
	res.ByStatus = make(map[string]int, len(res.byStatus))
	for code, cnt := range res.byStatus {
		res.ByStatus[strconv.Itoa(code)] = cnt
	}
	if res.Duration > 0 {
		res.Throughput = float64(res.Requests) / res.Duration
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lat)-1))
			return lat[i]
		}
		res.P50Ms = float64(q(0.50)) / float64(time.Millisecond)
		res.P90Ms = float64(q(0.90)) / float64(time.Millisecond)
		res.p99 = q(0.99)
		res.P99Ms = float64(res.p99) / float64(time.Millisecond)
		res.MaxMs = float64(lat[len(lat)-1]) / float64(time.Millisecond)
	}
	if sloP99 > 0 {
		res.SLOP99Ms = float64(sloP99) / float64(time.Millisecond)
		res.SLOOK = res.p99 <= sloP99
	}
	return res
}
