package main

// factool coordinate — the coordinator side of the distributed census
// fabric: partition a campaign into rank-range units, lease them to
// `factool work` processes over the v1 protocol, and fold the uploaded
// shards into the ledger store.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fact "repro"
)

func cmdCoordinate(args []string) error {
	fs := newFlagSet("coordinate")
	n := fs.Int("n", 3, "number of processes")
	storeDir := fs.String("store", "", "ledger store directory (created when missing)")
	orbits := fs.Bool("orbits", true, "sweep canonical orbit representatives only")
	solve := fs.Bool("solve", false, "campaign also decides the configured task per fair adversary")
	task := fs.String("task", "", "registered task spec the campaign decides (e.g. kset:k=2, loop-agreement); implies -solve")
	ktask := fs.Int("ktask", 1, "k of the k-set consensus task for -solve (deprecated compat for -task kset:k=K)")
	rounds := fs.Int("rounds", 1, "maximum iterations of R_A for -solve")
	unitSize := fs.Uint64("unit-size", 0, "ranks per unit (orbit mode) or raw indices per unit (0 = default)")
	addr := fs.String("addr", "127.0.0.1:8081", "listen address")
	ttl := fs.Duration("ttl", 60*time.Second, "default lease TTL; unrenewed leases requeue after it")
	spool := fs.String("spool", "", "shard spool directory (default: system temp)")
	apikeys := fs.String("apikeys", "", "API-key file (name:key[:rate[:burst]] lines); enables 401/429 auth")
	logJSON := fs.Bool("log-json", false, "structured JSON request log on stderr")
	exitOnComplete := fs.Bool("exit-on-complete", false, "shut down once every unit is merged (campaign runs, CI)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "in-flight request budget during shutdown")
	debugAddr, tracePath := debugFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *storeDir == "" {
		return usagef(fs, "coordinate: -store is required")
	}
	if *task != "" {
		if _, err := fact.ParseTaskSpec(*task); err != nil {
			return usagef(fs, "coordinate: %v", err)
		}
		*solve = true
	}
	st, err := fact.OpenOrCreateCensusStore(*storeDir, *n)
	if err != nil {
		return err
	}
	defer st.Close()

	camp := fact.FabricCampaign{N: *n, Orbits: *orbits, Solve: *solve, Task: *task, KTask: *ktask, MaxRounds: *rounds}
	opts := fact.FabricCoordinatorOptions{
		UnitSize: *unitSize,
		TTL:      *ttl,
		SpoolDir: *spool,
		Log:      os.Stderr,
	}
	if *apikeys != "" {
		auth, err := fact.LoadCensusAPIKeys(*apikeys)
		if err != nil {
			return err
		}
		opts.Auth = auth
	}
	if *logJSON {
		opts.AccessLog = os.Stderr
	}
	c, err := fact.NewFabricCoordinator(st, camp, opts)
	if err != nil {
		return err
	}
	// The debug surface reuses the coordinator's registry, so pprof and
	// /metrics show the same campaign families as the protocol port.
	stopDebug, err := startDebug("coordinate", *debugAddr, *tracePath, c.Registry())
	if err != nil {
		return err
	}
	defer stopDebug()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "factool coordinate: campaign n=%d orbits=%v solve=%v on %s (store %s)\n",
		*n, *orbits, *solve, ln.Addr(), *storeDir)

	// Serve until a signal — or, with -exit-on-complete, until the last
	// unit merges. Workers polling an already-drained campaign get their
	// "done" response during the drain window.
	httpSrv := &http.Server{Handler: c.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		if *exitOnComplete {
			select {
			case <-sigc:
			case <-c.Done():
				fmt.Fprintln(os.Stderr, "factool coordinate: campaign complete — draining")
			}
		} else {
			<-sigc
		}
		signal.Stop(sigc)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()
	err = httpSrv.Serve(ln)
	signal.Stop(sigc)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	status := c.Status()
	fmt.Fprintf(os.Stderr, "factool coordinate: %d/%d units done, %d requeues, %d entries in the store\n",
		status.Units.Done, status.Units.Total, status.Requeues, status.StoreEntries)
	if status.Units.Conflict > 0 {
		return fmt.Errorf("coordinate: %d unit(s) had conflicting completions — the store and the spooled shards disagree", status.Units.Conflict)
	}
	return nil
}
