package fact_test

import (
	"fmt"

	fact "repro"
)

// ExampleNewModel builds the affine task of the 1-resilient 3-process
// model and reports the headline numbers.
func ExampleNewModel() {
	model, err := fact.NewModel(fact.TResilient(3, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("setcon:", model.Setcon())
	fmt.Println("facets:", model.AffineTask().NumFacets())
	// Output:
	// setcon: 2
	// facets: 142
}

// ExampleModel_SolveKSetConsensus demonstrates the FACT theorem as a
// decision procedure: consensus is unsolvable under 1-resilience but
// 2-set consensus is solvable.
func ExampleModel_SolveKSetConsensus() {
	model, err := fact.NewModel(fact.TResilient(3, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	for k := 1; k <= 2; k++ {
		res, err := model.SolveKSetConsensus(k, 1)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("k=%d solvable=%v\n", k, res.Solvable)
	}
	// Output:
	// k=1 solvable=false
	// k=2 solvable=true
}

// ExampleAdversary_IsFair classifies the paper's Figure 5b adversary.
func ExampleAdversary_IsFair() {
	adv, err := fact.SupersetClosure(3, fact.SetOf(1), fact.SetOf(0, 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("fair:", adv.IsFair())
	fmt.Println("setcon:", adv.Setcon())
	fmt.Println("alpha of {p2}:", adv.Alpha(fact.SetOf(1)))
	// Output:
	// fair: true
	// setcon: 2
	// alpha of {p2}: 1
}
