// Package tasks implements the distributed-task formalism of Section 2:
// a task (I, O, Δ) with chromatic input/output complexes and a carrier
// map Δ, plus the concrete tasks used by the FACT experiments
// (k-set consensus, consensus, simplex agreement).
package tasks

import (
	"errors"
	"fmt"

	"repro/internal/procs"
	"repro/internal/sc"
)

// Task is a colored task (I, O, Δ). Δ is presented in the "locally
// determined" form the solver exploits:
//
//   - VertexAllowed(σ, o): may an output vertex o be decided by a
//     process whose accumulated knowledge (root carrier in I) is σ?
//   - SimplexAllowed(σ, img): may the simplex img (already a simplex of
//     Output, possibly partial) be jointly decided by processes whose
//     combined carrier is σ? It must be monotone: shrinking img or
//     growing σ cannot turn an allowed pair into a forbidden one.
//
// For such Δ, a vertex map is carried by Δ iff every vertex satisfies
// VertexAllowed and every facet image satisfies SimplexAllowed — the
// intermediate faces follow by monotonicity and inclusion-closure of
// the output complex. All tasks in this package have this form.
type Task struct {
	Name   string
	N      int
	Input  *sc.Complex
	Output *sc.Complex

	VertexAllowed  func(carrier sc.Simplex, o sc.VertexID) bool
	SimplexAllowed func(carrier sc.Simplex, img sc.Simplex) bool
}

// ErrBadTask reports an inconsistent task definition.
var ErrBadTask = errors.New("invalid task definition")

// Validate performs structural checks: chromatic complexes of matching
// color counts.
func (t *Task) Validate() error {
	if t.Input == nil || t.Output == nil {
		return fmt.Errorf("%w: missing complex", ErrBadTask)
	}
	if t.Input.Colors() != t.N || t.Output.Colors() != t.N {
		return fmt.Errorf("%w: color counts differ", ErrBadTask)
	}
	if !t.Input.IsChromatic() || !t.Output.IsChromatic() {
		return fmt.Errorf("%w: complexes must be chromatic", ErrBadTask)
	}
	if t.VertexAllowed == nil || t.SimplexAllowed == nil {
		return fmt.Errorf("%w: Δ not provided", ErrBadTask)
	}
	return nil
}

// StandardInput returns the standard (n-1)-simplex as an input complex:
// vertex i (color i) is process p_{i+1} with its fixed distinct input.
func StandardInput(n int) *sc.Complex {
	c := sc.NewComplex(n)
	ids := make([]sc.VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = sc.VertexID(i)
		// Errors impossible: colors in range by construction.
		_ = c.AddVertex(ids[i], i, fmt.Sprintf("%v:in=%d", procs.ID(i), i))
	}
	_ = c.AddSimplex(ids...)
	return c
}

// outVertexID encodes the output vertex (color, value) for an n-process
// value domain.
func outVertexID(n, color, value int) sc.VertexID {
	return sc.VertexID(color*n + value)
}

// KSetConsensus builds the k-set consensus task with distinct inputs:
// process p_i proposes value i; outputs are proposals of participating
// processes with at most k distinct values overall. This "simplex
// agreement flavored" instance is the standard one used in topological
// arguments; its solvability in a model M is equivalent to general
// k-set consensus solvability in M.
func KSetConsensus(n, k int) *Task {
	out := sc.NewComplex(n)
	for c := 0; c < n; c++ {
		for v := 0; v < n; v++ {
			_ = out.AddVertex(outVertexID(n, c, v), c, fmt.Sprintf("%v:dec=%d", procs.ID(c), v))
		}
	}
	// Facets: total assignments with at most k distinct values.
	var rec func(assign []int, pos int)
	rec = func(assign []int, pos int) {
		if pos == n {
			distinct := map[int]bool{}
			for _, v := range assign {
				distinct[v] = true
			}
			if len(distinct) <= k {
				ids := make([]sc.VertexID, n)
				for c, v := range assign {
					ids[c] = outVertexID(n, c, v)
				}
				_ = out.AddSimplex(ids...)
			}
			return
		}
		for v := 0; v < n; v++ {
			assign[pos] = v
			rec(assign, pos+1)
		}
	}
	rec(make([]int, n), 0)

	input := StandardInput(n)
	value := func(o sc.VertexID) int { return int(o) % n }
	return &Task{
		Name:   fmt.Sprintf("%d-set-consensus(n=%d)", k, n),
		N:      n,
		Input:  input,
		Output: out,
		VertexAllowed: func(carrier sc.Simplex, o sc.VertexID) bool {
			// Validity: the decided value is the input of a process in
			// the carrier (inputs are the vertex ids of I).
			return carrier.Contains(sc.VertexID(value(o)))
		},
		SimplexAllowed: func(_ sc.Simplex, img sc.Simplex) bool {
			distinct := map[int]bool{}
			for _, o := range img {
				distinct[value(o)] = true
			}
			return len(distinct) <= k
		},
	}
}

// Consensus is 1-set consensus.
func Consensus(n int) *Task {
	t := KSetConsensus(n, 1)
	t.Name = fmt.Sprintf("consensus(n=%d)", n)
	return t
}

// TrivialIdentity is the task in which every process must output its own
// input — solvable in every model without communication; used as a
// positive control for the solver.
func TrivialIdentity(n int) *Task {
	input := StandardInput(n)
	out := StandardInput(n)
	return &Task{
		Name:   fmt.Sprintf("identity(n=%d)", n),
		N:      n,
		Input:  input,
		Output: out,
		VertexAllowed: func(_ sc.Simplex, _ sc.VertexID) bool {
			return true
		},
		SimplexAllowed: func(_ sc.Simplex, _ sc.Simplex) bool { return true },
	}
}
