package tasks

// ε-approximate agreement, discretized: processes output values on the
// integer grid {0, …, n−1}; all outputs must lie within eps of each
// other and within the range of the participating inputs (process p_i
// inputs value i). eps=0 degenerates to consensus on a seen input;
// eps≥n−1 is trivially solvable.

import (
	"fmt"

	"repro/internal/procs"
	"repro/internal/sc"
)

// ApproxAgreement builds the eps-approximate agreement task on the
// integer grid for n processes.
func ApproxAgreement(n, eps int) *Task {
	out := sc.NewComplex(n)
	for c := 0; c < n; c++ {
		for v := 0; v < n; v++ {
			_ = out.AddVertex(outVertexID(n, c, v), c, fmt.Sprintf("%v:val=%d", procs.ID(c), v))
		}
	}
	// Facets: total assignments whose spread (max−min) is at most eps.
	var rec func(assign []int, at, min, max int)
	rec = func(assign []int, at, min, max int) {
		if at == n {
			ids := make([]sc.VertexID, n)
			for c, v := range assign {
				ids[c] = outVertexID(n, c, v)
			}
			_ = out.AddSimplex(ids...)
			return
		}
		for v := 0; v < n; v++ {
			nmin, nmax := min, max
			if at == 0 || v < nmin {
				nmin = v
			}
			if at == 0 || v > nmax {
				nmax = v
			}
			if nmax-nmin <= eps {
				assign[at] = v
				rec(assign, at+1, nmin, nmax)
			}
		}
	}
	rec(make([]int, n), 0, 0, 0)

	value := func(o sc.VertexID) int { return int(o) % n }
	return &Task{
		Name:   fmt.Sprintf("approx-agreement(n=%d,eps=%d)", n, eps),
		N:      n,
		Input:  StandardInput(n),
		Output: out,
		VertexAllowed: func(carrier sc.Simplex, o sc.VertexID) bool {
			// Validity: the value lies within the range of the carrier's
			// inputs (input vertex ids are the proposed values).
			min, max := -1, -1
			for _, in := range carrier {
				v := int(in)
				if min < 0 || v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			v := value(o)
			return min >= 0 && v >= min && v <= max
		},
		SimplexAllowed: func(_ sc.Simplex, img sc.Simplex) bool {
			min, max := -1, -1
			for _, o := range img {
				v := value(o)
				if min < 0 || v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			return max-min <= eps
		},
	}
}
