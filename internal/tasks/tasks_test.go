package tasks

import (
	"testing"

	"repro/internal/sc"
)

func TestStandardInput(t *testing.T) {
	for n := 2; n <= 4; n++ {
		c := StandardInput(n)
		if c.NumVertices() != n || !c.IsPure() || !c.IsChromatic() {
			t.Errorf("n=%d: bad standard input", n)
		}
		if c.Dimension() != n-1 {
			t.Errorf("n=%d: dim %d", n, c.Dimension())
		}
	}
}

func TestKSetConsensusOutputComplex(t *testing.T) {
	cases := []struct {
		n, k       int
		wantFacets int
	}{
		{3, 1, 3},  // all-agree assignments
		{3, 2, 21}, // 27 total minus 6 rainbow permutations
		{3, 3, 27}, // everything
		{2, 1, 2},
		{2, 2, 4},
	}
	for _, c := range cases {
		task := KSetConsensus(c.n, c.k)
		if err := task.Validate(); err != nil {
			t.Fatalf("n=%d k=%d: %v", c.n, c.k, err)
		}
		top := 0
		for _, f := range task.Output.Facets() {
			if f.Dim() == c.n-1 {
				top++
			}
		}
		if top != c.wantFacets {
			t.Errorf("n=%d k=%d: output facets = %d, want %d", c.n, c.k, top, c.wantFacets)
		}
		if !task.Output.IsChromatic() {
			t.Errorf("n=%d k=%d: output not chromatic", c.n, c.k)
		}
	}
}

func TestKSetConsensusDelta(t *testing.T) {
	task := KSetConsensus(3, 2)
	// Vertex (p1 decides 2) requires p3 (input 2) in the carrier.
	o := sc.VertexID(0*3 + 2)
	if task.VertexAllowed(sc.NewSimplex(0, 1), o) {
		t.Errorf("deciding a non-participant's value must be invalid")
	}
	if !task.VertexAllowed(sc.NewSimplex(0, 2), o) {
		t.Errorf("deciding a participant's value must be valid")
	}
	// Simplex with 3 distinct values violates 2-agreement.
	img := sc.NewSimplex(0*3+0, 1*3+1, 2*3+2)
	if task.SimplexAllowed(sc.NewSimplex(0, 1, 2), img) {
		t.Errorf("3 distinct values must violate 2-set consensus")
	}
	img2 := sc.NewSimplex(0*3+0, 1*3+1, 2*3+1)
	if !task.SimplexAllowed(sc.NewSimplex(0, 1, 2), img2) {
		t.Errorf("2 distinct values must be allowed")
	}
}

func TestConsensusName(t *testing.T) {
	if Consensus(3).Name != "consensus(n=3)" {
		t.Errorf("name wrong: %s", Consensus(3).Name)
	}
}

func TestTrivialIdentity(t *testing.T) {
	task := TrivialIdentity(3)
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if !task.VertexAllowed(sc.NewSimplex(0), 0) {
		t.Errorf("identity vertex must be allowed")
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	if err := (&Task{Name: "x", N: 2}).Validate(); err == nil {
		t.Errorf("missing complexes must be rejected")
	}
	good := KSetConsensus(2, 1)
	good.VertexAllowed = nil
	if err := good.Validate(); err == nil {
		t.Errorf("missing Δ must be rejected")
	}
	// Color count mismatch.
	bad := KSetConsensus(2, 1)
	bad.N = 3
	if err := bad.Validate(); err == nil {
		t.Errorf("color mismatch must be rejected")
	}
}
