package tasks

// Loop agreement (Herlihy–Rajsbaum): three distinguished vertices on a
// loop; processes start on corners and must converge onto a single
// vertex or a single edge of the loop, with solo runs pinned to the
// starting corner. This discrete instance uses the hexagon loop — the
// barycentric edge subdivision of a triangle boundary: corners at
// positions 0/2/4, midpoints at 1/3/5, and process p_i starts on corner
// (i mod 3).

import (
	"fmt"

	"repro/internal/procs"
	"repro/internal/sc"
)

const loopLen = 6

// loopVertexID encodes the output vertex (color, position) on the
// hexagon for an n-process system.
func loopVertexID(n, color, pos int) sc.VertexID {
	return sc.VertexID(color*loopLen + pos)
}

// loopCorner is the starting position of process i: corner (i mod 3).
func loopCorner(i int) int { return 2 * (i % 3) }

// loopAdjacent reports whether two hexagon positions span a vertex or a
// single edge of the loop.
func loopAdjacent(p, q int) bool {
	if p == q {
		return true
	}
	d := p - q
	if d < 0 {
		d = -d
	}
	return d == 1 || d == loopLen-1
}

// loopAllowed returns the positions reachable under carrier σ: the
// corners of σ's inputs plus, for multi-corner carriers, the connecting
// arcs (the carrier map Δ of loop agreement sends a face of the input
// simplex to the subcomplex of the loop spanned by its corners).
func loopAllowed(carrier sc.Simplex) [loopLen]bool {
	var corners [3]bool
	count := 0
	for _, v := range carrier {
		c := loopCorner(int(v))
		if !corners[c/2] {
			corners[c/2] = true
			count++
		}
	}
	var allowed [loopLen]bool
	switch count {
	case 3:
		for p := range allowed {
			allowed[p] = true
		}
	case 2:
		// The arc between the two corners, through their shared
		// midpoint: corners {0,2}→{0,1,2}, {2,4}→{2,3,4}, {4,0}→{4,5,0}.
		for a := 0; a < 3; a++ {
			b := (a + 1) % 3
			if corners[a] && corners[b] {
				allowed[2*a] = true
				allowed[2*a+1] = true
				allowed[2*b] = true
			}
		}
	default:
		for c := 0; c < 3; c++ {
			if corners[c] {
				allowed[2*c] = true
			}
		}
	}
	return allowed
}

// LoopAgreement builds the hexagon loop-agreement task for n processes:
// outputs are positions on the 6-cycle, jointly spanning at most one
// edge, each within the arc determined by the decider's carrier.
func LoopAgreement(n int) *Task {
	out := sc.NewComplex(n)
	for c := 0; c < n; c++ {
		for p := 0; p < loopLen; p++ {
			_ = out.AddVertex(loopVertexID(n, c, p), c, fmt.Sprintf("%v:pos=%d", procs.ID(c), p))
		}
	}
	// Facets: total assignments landing on a single position or a
	// single edge of the loop.
	addFacet := func(positions []int) {
		var rec func(assign []int, at int)
		rec = func(assign []int, at int) {
			if at == n {
				ids := make([]sc.VertexID, n)
				for c, p := range assign {
					ids[c] = loopVertexID(n, c, p)
				}
				_ = out.AddSimplex(ids...)
				return
			}
			for _, p := range positions {
				assign[at] = p
				rec(assign, at+1)
			}
		}
		rec(make([]int, n), 0)
	}
	for p := 0; p < loopLen; p++ {
		addFacet([]int{p, (p + 1) % loopLen})
	}

	pos := func(o sc.VertexID) int { return int(o) % loopLen }
	return &Task{
		Name:   fmt.Sprintf("loop-agreement(n=%d)", n),
		N:      n,
		Input:  StandardInput(n),
		Output: out,
		VertexAllowed: func(carrier sc.Simplex, o sc.VertexID) bool {
			return loopAllowed(carrier)[pos(o)]
		},
		SimplexAllowed: func(_ sc.Simplex, img sc.Simplex) bool {
			for i := 0; i < len(img); i++ {
				for j := i + 1; j < len(img); j++ {
					if !loopAdjacent(pos(img[i]), pos(img[j])) {
						return false
					}
				}
			}
			return true
		},
	}
}
