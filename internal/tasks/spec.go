package tasks

// Task specs: a registered, serializable task identity. A Spec is a
// kind plus integer parameters (`kset:k=2`, `approx:eps=1`,
// `loop-agreement`) that every layer — census options, JSONL entries,
// checkpoint fingerprints, store manifests, the v1 API, the fabric
// lease protocol — can carry as a short canonical string, and that the
// registry turns back into a concrete *Task for a given system size n.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
)

// ErrBadSpec reports a malformed or unregistered task spec.
var ErrBadSpec = errors.New("invalid task spec")

// Spec identifies a registered task kind with its integer parameters.
// The zero value is not a valid spec; build one with ParseSpec or
// KSetSpec. Specs compare by their canonical String form.
type Spec struct {
	Kind   string
	Params map[string]int
}

// paramDef declares one integer parameter of a task kind: its name, the
// default applied when the spec omits it, and its inclusive range.
type paramDef struct {
	name     string
	def      int
	min, max int
}

// kindDef is one registry entry: the declared parameters (in canonical
// String order) and the builder producing the concrete task for n.
type kindDef struct {
	params []paramDef
	build  func(n int, p map[string]int) (*Task, error)
}

// registry maps spec kinds to their definitions. Kinds are fixed at
// compile time; the map is read-only after init.
var registry = map[string]kindDef{
	"kset": {
		params: []paramDef{{name: "k", def: 1, min: 1, max: 1 << 20}},
		build: func(n int, p map[string]int) (*Task, error) {
			return KSetConsensus(n, p["k"]), nil
		},
	},
	"consensus": {
		build: func(n int, p map[string]int) (*Task, error) {
			return Consensus(n), nil
		},
	},
	"identity": {
		build: func(n int, p map[string]int) (*Task, error) {
			return TrivialIdentity(n), nil
		},
	},
	"loop-agreement": {
		build: func(n int, p map[string]int) (*Task, error) {
			return LoopAgreement(n), nil
		},
	},
	"approx": {
		params: []paramDef{{name: "eps", def: 1, min: 0, max: 1 << 20}},
		build: func(n int, p map[string]int) (*Task, error) {
			return ApproxAgreement(n, p["eps"]), nil
		},
	},
	"simplex-agreement": {
		// Simplex agreement on the wait-free affine task R_{A_WF}: the
		// goal complex is fixed per n, independent of the adversary
		// under test. Built over a private universe so the task's
		// vertex ids never alias the sweep's shared universe.
		build: func(n int, p map[string]int) (*Task, error) {
			u := chromatic.NewUniverse(n)
			ra, err := affine.BuildRAForAdversary(u, adversary.WaitFree(n), affine.DefaultVariant)
			if err != nil {
				return nil, fmt.Errorf("simplex-agreement: %w", err)
			}
			return SimplexAgreement(ra), nil
		},
	},
}

// RegisteredKinds returns the spec kinds the registry knows, sorted.
func RegisteredKinds() []string {
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// KSetSpec is the spec of the classic sweep: k-set consensus.
func KSetSpec(k int) Spec {
	if k < 1 {
		k = 1
	}
	return Spec{Kind: "kset", Params: map[string]int{"k": k}}
}

// ParseSpec parses `kind[:key=val[,key=val...]]` against the registry,
// applying declared defaults and range checks. The result round-trips:
// ParseSpec(s).String() parses back to an equal spec.
func ParseSpec(s string) (Spec, error) {
	kind := s
	rest := ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, rest = s[:i], s[i+1:]
	}
	def, ok := registry[kind]
	if !ok {
		return Spec{}, fmt.Errorf("%w: unknown kind %q (registered: %s)",
			ErrBadSpec, kind, strings.Join(RegisteredKinds(), ", "))
	}
	params := make(map[string]int)
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			eq := strings.IndexByte(kv, '=')
			if eq <= 0 {
				return Spec{}, fmt.Errorf("%w: %q: want key=value, got %q", ErrBadSpec, s, kv)
			}
			name, valStr := kv[:eq], kv[eq+1:]
			v, err := strconv.Atoi(valStr)
			if err != nil {
				return Spec{}, fmt.Errorf("%w: %q: parameter %s is not an integer", ErrBadSpec, s, name)
			}
			if _, dup := params[name]; dup {
				return Spec{}, fmt.Errorf("%w: %q: duplicate parameter %s", ErrBadSpec, s, name)
			}
			declared := false
			for _, pd := range def.params {
				if pd.name == name {
					declared = true
					if v < pd.min || v > pd.max {
						return Spec{}, fmt.Errorf("%w: %q: %s=%d out of range [%d, %d]",
							ErrBadSpec, s, name, v, pd.min, pd.max)
					}
				}
			}
			if !declared {
				return Spec{}, fmt.Errorf("%w: %q: kind %s has no parameter %s", ErrBadSpec, s, kind, name)
			}
			params[name] = v
		}
	}
	for _, pd := range def.params {
		if _, ok := params[pd.name]; !ok {
			params[pd.name] = pd.def
		}
	}
	return Spec{Kind: kind, Params: params}, nil
}

// String renders the canonical form: the kind followed by every
// declared parameter in declaration order (defaults included, so equal
// specs always render identically).
func (s Spec) String() string {
	def, ok := registry[s.Kind]
	if !ok || len(def.params) == 0 {
		return s.Kind
	}
	var b strings.Builder
	b.WriteString(s.Kind)
	for i, pd := range def.params {
		v, present := s.Params[pd.name]
		if !present {
			v = pd.def
		}
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", pd.name, v)
	}
	return b.String()
}

// Param returns the named parameter, or the registered default when the
// spec omits it.
func (s Spec) Param(name string) int {
	if v, ok := s.Params[name]; ok {
		return v
	}
	for _, pd := range registry[s.Kind].params {
		if pd.name == name {
			return pd.def
		}
	}
	return 0
}

// IsKSet reports whether the spec is the classic k-set consensus sweep
// — the compatibility path whose serialized forms (JSONL entries,
// checkpoint fingerprints) predate task specs and must stay unchanged.
func (s Spec) IsKSet() bool { return s.Kind == "kset" }

// Build constructs the concrete task for an n-process system.
func (s Spec) Build(n int) (*Task, error) {
	def, ok := registry[s.Kind]
	if !ok {
		return Spec{}.buildUnknown(s.Kind)
	}
	p := make(map[string]int, len(def.params))
	for _, pd := range def.params {
		v, present := s.Params[pd.name]
		if !present {
			v = pd.def
		}
		if v < pd.min || v > pd.max {
			return nil, fmt.Errorf("%w: %s: %s=%d out of range [%d, %d]",
				ErrBadSpec, s.Kind, pd.name, v, pd.min, pd.max)
		}
		p[pd.name] = v
	}
	return def.build(n, p)
}

func (Spec) buildUnknown(kind string) (*Task, error) {
	return nil, fmt.Errorf("%w: unknown kind %q (registered: %s)",
		ErrBadSpec, kind, strings.Join(RegisteredKinds(), ", "))
}
