package tasks

// Simplex agreement (Section 2): processes start on the vertices of s
// and must output vertices of a sub-complex L ⊆ Chr² s forming a simplex
// of L whose carrier is contained in the participating set. The affine
// task (s, L, Δ) with Δ(σ) = L ∩ Chr²(σ) is exactly this task; solving
// it iteratively is what the affine model L* means.

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/procs"
	"repro/internal/sc"
)

// SimplexAgreement builds the task (s, L, Δ) for an affine task L. The
// output complex is L's simplicial complex; Δ allows an output simplex
// when its vertices' carriers lie inside the participating set.
func SimplexAgreement(l *affine.Task) *Task {
	out := l.Complex()
	u := l.Universe()
	return &Task{
		Name:   fmt.Sprintf("simplex-agreement(%s)", l.Name),
		N:      l.N(),
		Input:  StandardInput(l.N()),
		Output: out,
		VertexAllowed: func(carrier sc.Simplex, o sc.VertexID) bool {
			// The output vertex's witnessed participation must lie
			// within the processes whose inputs the decider could have
			// seen (input vertex ids equal process ids in
			// StandardInput).
			v := u.Vertex(o)
			ok := true
			v.Carrier.ForEach(func(q procs.ID) {
				if !carrier.Contains(sc.VertexID(q)) {
					ok = false
				}
			})
			return ok
		},
		SimplexAllowed: func(carrier sc.Simplex, img sc.Simplex) bool {
			return out.HasSimplex(img)
		},
	}
}
