package tasks

import (
	"errors"
	"testing"

	"repro/internal/sc"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"kset", "kset:k=1"},
		{"kset:k=1", "kset:k=1"},
		{"kset:k=2", "kset:k=2"},
		{"consensus", "consensus"},
		{"identity", "identity"},
		{"loop-agreement", "loop-agreement"},
		{"approx", "approx:eps=1"},
		{"approx:eps=0", "approx:eps=0"},
		{"approx:eps=2", "approx:eps=2"},
		{"simplex-agreement", "simplex-agreement"},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got := spec.String(); got != c.canonical {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		// parse → String → parse is a fixed point.
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if again.String() != c.canonical {
			t.Errorf("round trip of %q drifted to %q", c.in, again.String())
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := []string{
		"",                 // empty kind
		"hyperloop",        // unknown kind
		"kset:k",           // missing value
		"kset:k=two",       // non-integer
		"kset:k=0",         // below range
		"kset:j=1",         // undeclared parameter
		"kset:k=1,k=2",     // duplicate parameter
		"approx:eps=-1",    // below range
		"loop-agreement:x", // params on a parameterless kind
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrBadSpec", s, err)
		}
	}
}

func TestSpecBuildUnknownKind(t *testing.T) {
	if _, err := (Spec{Kind: "hyperloop"}).Build(3); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Build of unknown kind = %v, want ErrBadSpec", err)
	}
}

func TestSpecBuildMatchesConstructors(t *testing.T) {
	for _, c := range []struct {
		spec string
		want string
	}{
		{"kset:k=2", "2-set-consensus(n=3)"},
		{"consensus", "consensus(n=3)"},
		{"identity", "identity(n=3)"},
		{"loop-agreement", "loop-agreement(n=3)"},
		{"approx:eps=1", "approx-agreement(n=3,eps=1)"},
	} {
		spec, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		task, err := spec.Build(3)
		if err != nil {
			t.Fatalf("Build(%q): %v", c.spec, err)
		}
		if task.Name != c.want {
			t.Errorf("Build(%q).Name = %q, want %q", c.spec, task.Name, c.want)
		}
		if err := task.Validate(); err != nil {
			t.Errorf("Build(%q): invalid task: %v", c.spec, err)
		}
	}
}

func TestKSetSpec(t *testing.T) {
	if got := KSetSpec(2).String(); got != "kset:k=2" {
		t.Errorf("KSetSpec(2) = %q", got)
	}
	if !KSetSpec(2).IsKSet() {
		t.Errorf("KSetSpec must report IsKSet")
	}
	if KSetSpec(0).Param("k") != 1 {
		t.Errorf("KSetSpec clamps k to 1")
	}
	spec, _ := ParseSpec("loop-agreement")
	if spec.IsKSet() {
		t.Errorf("loop-agreement must not report IsKSet")
	}
}

func TestLoopAgreementTask(t *testing.T) {
	task := LoopAgreement(3)
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6 edges × 2³ assignments, minus the 6 constant assignments each
	// counted in two adjacent edges: 42 top facets.
	top := 0
	for _, f := range task.Output.Facets() {
		if f.Dim() == 2 {
			top++
		}
	}
	if top != 42 {
		t.Errorf("loop agreement n=3 output facets = %d, want 42", top)
	}
	// Solo carrier {p1}: only its own corner (position 0) is allowed.
	solo := sc.NewSimplex(0)
	if !task.VertexAllowed(solo, sc.VertexID(0*loopLen+0)) {
		t.Errorf("solo run must allow its own corner")
	}
	if task.VertexAllowed(solo, sc.VertexID(0*loopLen+1)) {
		t.Errorf("solo run must not reach a midpoint")
	}
	// Two corners {p1, p2} (corners 0 and 2): the arc {0,1,2} opens up,
	// the far side of the loop stays closed.
	two := sc.NewSimplex(0, 1)
	for p := 0; p < loopLen; p++ {
		want := p <= 2
		if got := task.VertexAllowed(two, sc.VertexID(0*loopLen+p)); got != want {
			t.Errorf("two-corner carrier, position %d: allowed=%v want %v", p, got, want)
		}
	}
	// Joint decisions: one edge is fine, a spread of two edges is not.
	ok := sc.NewSimplex(sc.VertexID(0*loopLen+0), sc.VertexID(1*loopLen+1))
	if !task.SimplexAllowed(sc.NewSimplex(0, 1, 2), ok) {
		t.Errorf("an edge of the loop must be jointly decidable")
	}
	far := sc.NewSimplex(sc.VertexID(0*loopLen+0), sc.VertexID(1*loopLen+2))
	if task.SimplexAllowed(sc.NewSimplex(0, 1, 2), far) {
		t.Errorf("positions 0 and 2 span two edges and must be rejected")
	}
}

func TestApproxAgreementTask(t *testing.T) {
	task := ApproxAgreement(3, 1)
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	// Windows [0,1] and [1,2]: 8 assignments each, all-1 shared: 15.
	top := 0
	for _, f := range task.Output.Facets() {
		if f.Dim() == 2 {
			top++
		}
	}
	if top != 15 {
		t.Errorf("approx n=3 eps=1 output facets = %d, want 15", top)
	}
	// Validity: outputs outside the carrier's input range are invalid.
	carrier := sc.NewSimplex(0, 1) // inputs 0 and 1
	if task.VertexAllowed(carrier, sc.VertexID(0*3+2)) {
		t.Errorf("value 2 is outside the carrier range [0,1]")
	}
	if !task.VertexAllowed(carrier, sc.VertexID(0*3+1)) {
		t.Errorf("value 1 is inside the carrier range")
	}
	// Agreement: spread 2 violates eps=1.
	wide := sc.NewSimplex(sc.VertexID(0*3+0), sc.VertexID(1*3+2))
	if task.SimplexAllowed(sc.NewSimplex(0, 1, 2), wide) {
		t.Errorf("spread 2 must violate eps=1")
	}
	// eps=0 degenerates to consensus-style agreement.
	exact := ApproxAgreement(2, 0)
	mixed := sc.NewSimplex(sc.VertexID(0*2+0), sc.VertexID(1*2+1))
	if exact.SimplexAllowed(sc.NewSimplex(0, 1), mixed) {
		t.Errorf("eps=0 must force equal outputs")
	}
}
