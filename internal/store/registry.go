package store

// Registry: many stores, one process. Each census store covers one n
// (one kind — full or orbit-reduced — and at most one task spec); a
// registry mounts any number of them so a single `factool serve`
// answers every mounted (n, task) from one address. The serving layer
// routes each query's n (and optional task) parameter to its mount;
// /v1/stores lists them.

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// mountKey identifies one mount: the system size plus the canonical
// task spec the store's solve verdicts answer ("" for classification
// and unbound kset stores).
type mountKey struct {
	n    int
	task string
}

// Registry is a set of mounted stores keyed by (n, task). Safe for
// concurrent use; mounts are add-only (a serving process never
// unmounts).
type Registry struct {
	mu     sync.RWMutex
	mounts map[mountKey]*Mount
}

// Mount is one store mounted under a registry.
type Mount struct {
	name string
	st   *Store
}

// Name returns the mount's display name (the store directory's base
// name for MountDir, or whatever Mount was given).
func (m *Mount) Name() string { return m.name }

// N returns the mounted store's system size.
func (m *Mount) N() int { return m.st.N() }

// Task returns the canonical task spec the mounted store answers
// ("" for classification and unbound kset stores).
func (m *Mount) Task() string { return m.st.Task() }

// Store returns the mounted store.
func (m *Mount) Store() *Store { return m.st }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{mounts: make(map[mountKey]*Mount)}
}

// Mount adds an open store under the given display name. One mount per
// (n, task): a second store answering the same question is a
// configuration error, not a routing choice the server could make per
// query.
func (r *Registry) Mount(name string, st *Store) error {
	if st == nil {
		return fmt.Errorf("store: mount %q: nil store", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := mountKey{n: st.N(), task: st.Task()}
	if prev, ok := r.mounts[key]; ok {
		if key.task == "" {
			return fmt.Errorf("store: n=%d already mounted as %q", key.n, prev.name)
		}
		return fmt.Errorf("store: n=%d task %s already mounted as %q", key.n, key.task, prev.name)
	}
	if name == "" {
		name = fmt.Sprintf("n%d", key.n)
		if key.task != "" {
			name = fmt.Sprintf("n%d-%s", key.n, key.task)
		}
	}
	r.mounts[key] = &Mount{name: name, st: st}
	return nil
}

// MountDir opens the store in dir and mounts it under the directory's
// base name.
func (r *Registry) MountDir(dir string) error {
	st, err := Open(dir)
	if err != nil {
		return err
	}
	if err := r.Mount(filepath.Base(filepath.Clean(dir)), st); err != nil {
		st.Close()
		return err
	}
	return nil
}

// Get returns the mount serving n without naming a task: the
// task-neutral mount when one exists, else the sole mount of that n.
// Two task-specific mounts with no neutral sibling are ambiguous and
// resolve to nothing — queries must name the task.
func (r *Registry) Get(n int) (*Mount, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m, ok := r.mounts[mountKey{n: n}]; ok {
		return m, true
	}
	var only *Mount
	for key, m := range r.mounts {
		if key.n != n {
			continue
		}
		if only != nil {
			return nil, false
		}
		only = m
	}
	return only, only != nil
}

// GetTask returns the mount serving the given (n, canonical task
// spec). An empty task selects Get's defaulting.
func (r *Registry) GetTask(n int, task string) (*Mount, bool) {
	if task == "" {
		return r.Get(n)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.mounts[mountKey{n: n, task: task}]
	return m, ok
}

// Mounts returns every mount, sorted by (n, task).
func (r *Registry) Mounts() []*Mount {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Mount, 0, len(r.mounts))
	for _, m := range r.mounts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N() != out[j].N() {
			return out[i].N() < out[j].N()
		}
		return out[i].Task() < out[j].Task()
	})
	return out
}

// Ns returns the mounted system sizes, ascending, each once.
func (r *Registry) Ns() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[int]bool)
	ns := make([]int, 0, len(r.mounts))
	for key := range r.mounts {
		if !seen[key.n] {
			seen[key.n] = true
			ns = append(ns, key.n)
		}
	}
	sort.Ints(ns)
	return ns
}

// Close closes every mounted store, returning the first error.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, m := range r.mounts {
		if err := m.st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
