package store

// Registry: many stores, one process. Each census store covers one n
// (and one kind — full or orbit-reduced); a registry mounts any number
// of them so a single `factool serve` answers every mounted n from one
// address. The serving layer routes each query's n parameter to its
// mount; /v1/stores lists them.

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// Registry is a set of mounted stores keyed by n. Safe for concurrent
// use; mounts are add-only (a serving process never unmounts).
type Registry struct {
	mu     sync.RWMutex
	mounts map[int]*Mount
}

// Mount is one store mounted under a registry.
type Mount struct {
	name string
	st   *Store
}

// Name returns the mount's display name (the store directory's base
// name for MountDir, or whatever Mount was given).
func (m *Mount) Name() string { return m.name }

// N returns the mounted store's system size.
func (m *Mount) N() int { return m.st.N() }

// Store returns the mounted store.
func (m *Mount) Store() *Store { return m.st }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{mounts: make(map[int]*Mount)}
}

// Mount adds an open store under the given display name. One mount per
// n: a second store of the same n is a configuration error, not a
// routing choice the server could make per query.
func (r *Registry) Mount(name string, st *Store) error {
	if st == nil {
		return fmt.Errorf("store: mount %q: nil store", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := st.N()
	if prev, ok := r.mounts[n]; ok {
		return fmt.Errorf("store: n=%d already mounted as %q", n, prev.name)
	}
	if name == "" {
		name = fmt.Sprintf("n%d", n)
	}
	r.mounts[n] = &Mount{name: name, st: st}
	return nil
}

// MountDir opens the store in dir and mounts it under the directory's
// base name.
func (r *Registry) MountDir(dir string) error {
	st, err := Open(dir)
	if err != nil {
		return err
	}
	if err := r.Mount(filepath.Base(filepath.Clean(dir)), st); err != nil {
		st.Close()
		return err
	}
	return nil
}

// Get returns the mount serving n.
func (r *Registry) Get(n int) (*Mount, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.mounts[n]
	return m, ok
}

// Mounts returns every mount, sorted by n.
func (r *Registry) Mounts() []*Mount {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Mount, 0, len(r.mounts))
	for _, m := range r.mounts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N() < out[j].N() })
	return out
}

// Ns returns the mounted system sizes, ascending.
func (r *Registry) Ns() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ns := make([]int, 0, len(r.mounts))
	for n := range r.mounts {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns
}

// Close closes every mounted store, returning the first error.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, m := range r.mounts {
		if err := m.st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
