package store

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/census"
)

// TestSingleServerEquivalence pins the deprecated one-store shim to the
// Registry construction path: the same store served through
// NewSingleServer and through NewRegistry+Mount+NewServer answers
// byte-identically.
func TestSingleServerEquivalence(t *testing.T) {
	dir := t.TempDir()
	shard, _ := censusJSONL(t, dir, "shard.jsonl", 3, census.Options{Workers: 1, Orbits: true})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	shim, err := NewSingleServer(st, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := registryServer(t, st, ServerOptions{})

	tsShim := httptest.NewServer(shim.Handler())
	defer tsShim.Close()
	tsFull := httptest.NewServer(full.Handler())
	defer tsFull.Close()

	fetch := func(base, path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	for _, path := range []string{
		"/v1/stores",
		"/v1/classify?n=3&index=0",
		"/v1/entries?n=3&limit=16",
		"/v1/summary?n=3",
	} {
		codeA, bodyA := fetch(tsShim.URL, path)
		codeB, bodyB := fetch(tsFull.URL, path)
		if codeA != codeB {
			t.Errorf("%s: shim status %d, registry status %d", path, codeA, codeB)
		}
		if bodyA != bodyB {
			t.Errorf("%s: shim and registry bodies differ:\n%s\nvs\n%s", path, bodyA, bodyB)
		}
	}
}
