package store

// Structured (JSON lines) request logging for the serve layer, plus
// the request-id plumbing the error envelope reads. One line per
// request, one Write call per line (safe to point at os.Stderr), no
// dependencies beyond encoding/json.

import (
	"context"
	"encoding/json"
	"io"
	"sync"
)

type requestIDKey struct{}

// withRequestID tags a request context with its assigned id.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestID recovers the id assigned by the middleware ("" outside it).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// accessRecord is one request-log line.
type accessRecord struct {
	Time      string  `json:"ts"`
	Level     string  `json:"level"`
	Msg       string  `json:"msg"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Query     string  `json:"query,omitempty"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMs     float64 `json:"dur_ms"`
	RequestID string  `json:"request_id"`
	Key       string  `json:"key,omitempty"`
	Remote    string  `json:"remote,omitempty"`
}

// accessLogger serializes record writes: concurrent requests never
// interleave bytes within a line.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(rec accessRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
