package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/census"
)

// censusJSONL streams an n-process census to a JSONL file and returns
// its path plus the collected entries (the reference the store must
// reproduce byte-for-byte).
func censusJSONL(t *testing.T, dir, name string, n int, opts census.Options) (string, []census.Entry) {
	t.Helper()
	path := filepath.Join(dir, name)
	sink, err := census.NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	col := &census.Collector{}
	if _, err := census.Stream(n, opts, teeSink{sink, col}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path, col.Entries
}

// teeSink duplicates the stream into a file sink and a collector.
type teeSink struct {
	a, b census.Sink
}

func (s teeSink) Emit(e *census.Entry) error {
	if err := s.a.Emit(e); err != nil {
		return err
	}
	return s.b.Emit(e)
}

func (s teeSink) Flush() error {
	if f, ok := s.a.(census.Flusher); ok {
		return f.Flush()
	}
	return nil
}

func (s teeSink) Offset() int64 {
	if o, ok := s.a.(census.OffsetSink); ok {
		return o.Offset()
	}
	return 0
}

func (s teeSink) ResumeAt(entries uint64, bytes int64) error {
	if rs, ok := s.a.(census.ResumableSink); ok {
		return rs.ResumeAt(entries, bytes)
	}
	return nil
}

// splitJSONL writes lines[lo:hi] of a JSONL file to a new shard file.
func splitJSONL(t *testing.T, src, dst string, lo, hi int) string {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(b)
	if hi > len(lines) {
		hi = len(lines)
	}
	var out []byte
	for _, line := range lines[lo:hi] {
		out = append(out, line...)
		out = append(out, '\n')
	}
	if err := os.WriteFile(dst, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func splitLines(b []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				lines = append(lines, b[start:i])
			}
			start = i + 1
		}
	}
	return lines
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeRoundTrip is the satellite round-trip: a full n=3 census,
// split into two overlapping shards, merged into a store, must answer
// every index byte-for-byte identical to the direct census output —
// and aggregate to the identical summary.
func TestMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	full, want := censusJSONL(t, dir, "full.jsonl", 3, census.Options{Workers: 1})
	sh1 := splitJSONL(t, full, filepath.Join(dir, "a.jsonl"), 0, 80)
	sh2 := splitJSONL(t, full, filepath.Join(dir, "b.jsonl"), 48, len(want))

	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats, err := st.Merge([]string{sh1, sh2}, MergeOptions{BlockEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != uint64(len(want)) || stats.Added != uint64(len(want)) {
		t.Fatalf("merge stats %+v, want total=added=%d", stats, len(want))
	}
	if stats.Duplicates != 32 {
		t.Errorf("merge saw %d duplicates, want 32 (the shard overlap)", stats.Duplicates)
	}
	for i := range want {
		got, ok, err := st.Get(want[i].Index)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", want[i].Index, ok, err)
		}
		if mustJSON(t, got) != mustJSON(t, &want[i]) {
			t.Fatalf("entry %d: store %s != census %s", want[i].Index, mustJSON(t, got), mustJSON(t, &want[i]))
		}
	}

	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := st.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, sum) != mustJSON(t, rep.Summary) {
		t.Errorf("store summary %s != census summary %s", mustJSON(t, sum), mustJSON(t, rep.Summary))
	}
}

// TestMergeReopenAndRemerge checks a merged store survives reopen and
// that re-merging the same shard is a clean no-op (all duplicates).
func TestMergeReopenAndRemerge(t *testing.T) {
	dir := t.TempDir()
	full, want := censusJSONL(t, dir, "full.jsonl", 3, census.Options{Workers: 1})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Merge([]string{full}, MergeOptions{BlockEntries: 32}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, err = Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats, err := st.Merge([]string{full}, MergeOptions{BlockEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Duplicates != uint64(len(want)) || stats.Total != uint64(len(want)) {
		t.Fatalf("re-merge stats %+v, want added=0 dups=total=%d", stats, len(want))
	}
	if e, ok, err := st.Get(want[5].Index); err != nil || !ok || mustJSON(t, e) != mustJSON(t, &want[5]) {
		t.Fatalf("reopened Get: %v %v %v", e, ok, err)
	}
}

// TestMergeConflictRejected: an overlapping shard that disagrees on one
// index's bytes must fail the merge — and leave the store untouched.
func TestMergeConflictRejected(t *testing.T) {
	dir := t.TempDir()
	full, want := censusJSONL(t, dir, "full.jsonl", 3, census.Options{Workers: 1})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Merge([]string{full}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	// Corrupt one entry of a shard copy: flip its csize.
	bad := want[17]
	bad.CSize++
	line, _ := json.Marshal(&bad)
	if err := os.WriteFile(filepath.Join(dir, "bad.jsonl"), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Merge([]string{filepath.Join(dir, "bad.jsonl")}, MergeOptions{})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("merge of conflicting shard: err=%v, want ErrConflict", err)
	}
	// The failed merge must not have changed the store.
	if e, ok, _ := st.Get(want[17].Index); !ok || mustJSON(t, e) != mustJSON(t, &want[17]) {
		t.Fatalf("store changed by failed merge: %v %v", e, ok)
	}
}

// TestMergeKindMismatchRejected: orbit-reduced and full-sweep entries
// must not mix in one store.
func TestMergeKindMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	full, _ := censusJSONL(t, dir, "full.jsonl", 3, census.Options{Workers: 1})
	orbit, _ := censusJSONL(t, dir, "orbit.jsonl", 3, census.Options{Workers: 1, Orbits: true})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Merge([]string{full}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Merge([]string{orbit}, MergeOptions{}); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("mixing kinds: err=%v, want ErrKindMismatch", err)
	}
}

// TestMergeGzipShard: a compressed census shard (the -compress sink
// output) merges transparently.
func TestMergeGzipShard(t *testing.T) {
	dir := t.TempDir()
	gz, want := censusJSONL(t, dir, "full.jsonl.gz", 3, census.Options{Workers: 1})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats, err := st.Merge([]string{gz}, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != uint64(len(want)) {
		t.Fatalf("gzip merge total %d, want %d", stats.Total, len(want))
	}
	if e, ok, _ := st.Get(want[100].Index); !ok || mustJSON(t, e) != mustJSON(t, &want[100]) {
		t.Fatal("gzip-merged store misses entries")
	}
}

// TestOrbitLookup pins the acceptance criterion at n=3 and n=4: a store
// built from an orbit-reduced sweep answers EVERY index — canonical or
// not — with the same classification a full sweep computes directly,
// via orbit-canonical resolution and Permute rehydration.
func TestOrbitLookup(t *testing.T) {
	for _, n := range []int{3, 4} {
		dir := t.TempDir()
		orbitShard, _ := censusJSONL(t, dir, "orbit.jsonl", n, census.Options{Workers: 1, Orbits: true})
		st, err := Create(filepath.Join(dir, "store"), n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Merge([]string{orbitShard}, MergeOptions{}); err != nil {
			t.Fatal(err)
		}
		if !st.Orbits() {
			t.Fatalf("n=%d: store of orbit entries not marked orbit", n)
		}
		fullRep, err := census.Run(n, census.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		orbits := adversary.NewOrbits(n)
		rehydrated := 0
		for i := range fullRep.Entries {
			want := &fullRep.Entries[i]
			got, src, err := st.Lookup(want.Index, orbits)
			if err != nil {
				t.Fatal(err)
			}
			if src == LookupMiss {
				t.Fatalf("n=%d: index %d missing from orbit store", n, want.Index)
			}
			if src == LookupRehydrated {
				rehydrated++
				if mustJSON(t, got) != mustJSON(t, want) {
					t.Fatalf("n=%d index %d: rehydrated %s != census %s",
						n, want.Index, mustJSON(t, got), mustJSON(t, want))
				}
			} else {
				// Canonical: stored entry carries the orbit size, all
				// other fields must match the full sweep's.
				cp := got.Clone()
				cp.OrbitSize = 0
				if mustJSON(t, cp) != mustJSON(t, want) {
					t.Fatalf("n=%d index %d: stored %s != census %s",
						n, want.Index, mustJSON(t, cp), mustJSON(t, want))
				}
			}
		}
		if rehydrated == 0 {
			t.Fatalf("n=%d: no lookup exercised rehydration", n)
		}
		// Orbit-weighted store summary equals the orbit sweep's (full
		// totals + representative count).
		orbRep, err := census.Run(n, census.Options{Workers: 1, Orbits: true})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := st.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, sum) != mustJSON(t, orbRep.Summary) {
			t.Errorf("n=%d: store summary %s != orbit census summary %s",
				n, mustJSON(t, sum), mustJSON(t, orbRep.Summary))
		}
		st.Close()
	}
}

// TestPutNewAppend checks the write-back path: appended entries are
// immediately queryable, duplicates are no-ops, conflicts rejected, and
// everything survives reopen (including a crash-torn appended tail).
func TestPutNewAppend(t *testing.T) {
	dir := t.TempDir()
	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	e := &rep.Entries[42]
	if added, err := st.PutNew(e); err != nil || !added {
		t.Fatalf("PutNew: added=%v err=%v", added, err)
	}
	if added, err := st.PutNew(e); err != nil || added {
		t.Fatalf("duplicate PutNew: added=%v err=%v", added, err)
	}
	bad := *e
	bad.CSize++
	if _, err := st.PutNew(&bad); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting PutNew: err=%v, want ErrConflict", err)
	}
	if got, ok, _ := st.Get(e.Index); !ok || mustJSON(t, got) != mustJSON(t, e) {
		t.Fatal("appended entry not queryable")
	}
	st.Close()

	// Simulate a crash mid-append: garbage past the manifest's horizon
	// must be truncated away on open.
	man, _ := os.ReadFile(filepath.Join(dir, "store", manifestName))
	var m manifest
	if err := json.Unmarshal(man, &m); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "store", m.DataFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("torn garbage")
	f.Close()

	st, err = Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got, ok, _ := st.Get(e.Index); !ok || mustJSON(t, got) != mustJSON(t, e) {
		t.Fatal("entry lost after torn-tail reopen")
	}
	if added, err := st.PutNew(&rep.Entries[7]); err != nil || !added {
		t.Fatalf("append after torn-tail reopen: added=%v err=%v", added, err)
	}
	if got, ok, _ := st.Get(rep.Entries[7].Index); !ok || mustJSON(t, got) != mustJSON(t, &rep.Entries[7]) {
		t.Fatal("post-reopen append not queryable")
	}
}

// TestSolveStoreDisablesWriteBack: a store holding solve-mode sweep
// results must not be polluted by classify-only write-backs — the
// completed sweep's bytes would conflict on a later merge.
func TestSolveStoreDisablesWriteBack(t *testing.T) {
	dir := t.TempDir()
	// A partial solve sweep: only the first indices land in the store.
	shard, _ := censusJSONL(t, dir, "solve.jsonl", 3,
		census.Options{Workers: 1, Solve: true, ShardSize: 16, MaxIndices: 64})
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !st.SolveMode() {
		t.Fatal("store of a -solve sweep not marked solve-mode")
	}
	srv := registryServer(t, st, ServerOptions{})
	ms, err := srv.state(3, "")
	if err != nil {
		t.Fatal(err)
	}
	before := st.Stats().Entries
	// Index 100 misses: computed live, but NOT persisted.
	if _, src, err := srv.classifyIndex(ms, 100); err != nil || src != "computed" {
		t.Fatalf("classify miss: src=%q err=%v", src, err)
	}
	if after := st.Stats().Entries; after != before {
		t.Fatalf("solve store grew from %d to %d entries on a classify write-back", before, after)
	}
	// The rest of the sweep still merges cleanly afterwards.
	full, _ := censusJSONL(t, dir, "solve-full.jsonl", 3, census.Options{Workers: 1, Solve: true})
	if _, err := st.Merge([]string{full}, MergeOptions{}); err != nil {
		t.Fatalf("completing the solve sweep after serving: %v", err)
	}
	if !st.SolveMode() {
		t.Fatal("solve flag lost across merge")
	}
}
