package store

// The serve layer's metric set, built on the shared Prometheus-format
// primitives in internal/api: the kit's request families plus the
// store-specific counters, the compute-latency histogram and
// scrape-time gauges over the mounted stores and the shared tower
// cache.

import (
	"fmt"
	"io"

	"repro/internal/api"
)

// metrics is the serve layer's metric set. The http set (requests,
// auth rejections, request latency, in-flight gauge) is fed by the
// api middleware; the rest by the classify/solve paths.
type metrics struct {
	http           *api.HTTPMetrics
	storeHits      *api.CounterVec // n
	storeMisses    *api.CounterVec // n
	cacheHits      *api.CounterVec // n
	rehydrated     *api.CounterVec // n
	computed       *api.CounterVec // n
	persisted      *api.CounterVec // n
	computeSeconds *api.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		http:        api.NewHTTPMetrics("factool"),
		storeHits:   api.NewCounterVec("factool_store_hits_total", "Classify lookups answered directly from a store.", "n"),
		storeMisses: api.NewCounterVec("factool_store_misses_total", "Classify lookups the stores could not answer (live-computed).", "n"),
		cacheHits:   api.NewCounterVec("factool_entry_cache_hits_total", "Classify lookups answered from the in-memory entry LRU.", "n"),
		rehydrated:  api.NewCounterVec("factool_store_rehydrated_total", "Classify lookups answered by rehydrating an orbit representative.", "n"),
		computed:    api.NewCounterVec("factool_computed_total", "Entries computed on the live examination path.", "n"),
		persisted:   api.NewCounterVec("factool_persisted_total", "Live-computed entries written back to a store.", "n"),
		computeSeconds: api.NewHistogram("factool_compute_seconds",
			"Live classify/solve computation latency in seconds.", api.DefaultLatencyBuckets),
	}
}

// writeTo emits the full exposition: the counter/histogram families
// plus scrape-time gauges over the mounted stores and the shared tower
// cache.
func (m *metrics) writeTo(w io.Writer, s *Server) {
	m.http.Write(w)
	m.storeHits.Write(w)
	m.storeMisses.Write(w)
	m.cacheHits.Write(w)
	m.rehydrated.Write(w)
	m.computed.Write(w)
	m.persisted.Write(w)
	m.computeSeconds.Write(w)

	fmt.Fprintf(w, "# HELP factool_store_entries Entries resident in each mounted store.\n# TYPE factool_store_entries gauge\n")
	mounts := s.reg.Mounts()
	for _, mt := range mounts {
		fmt.Fprintf(w, "factool_store_entries{n=%q} %d\n", fmt.Sprint(mt.N()), mt.Store().Stats().Entries)
	}
	fmt.Fprintf(w, "# HELP factool_presence_skips_total Definite misses answered by the presence filter without block inflation.\n# TYPE factool_presence_skips_total counter\n")
	for _, mt := range mounts {
		fmt.Fprintf(w, "factool_presence_skips_total{n=%q} %d\n", fmt.Sprint(mt.N()), mt.Store().PresenceSkips())
	}

	// The cheap exposition path: counters and size gauges without
	// Snapshot's per-tower level walk, so scrapes stay O(1) however
	// large the cache grows.
	s.tcache.WritePrometheus(w)
}
