package store

// Hand-rolled Prometheus-format metrics for the serve layer: counters,
// label-vector counters and fixed-bucket histograms backed by atomics,
// with text exposition on /metrics. No client library — the exposition
// format is a few lines of text and the serve layer needs exactly
// counters, histograms and scrape-time gauges.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterVec is a labeled counter family (one label dimension set at
// construction; values materialize on first use).
type counterVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	vals map[string]*atomic.Uint64 // key: joined label values
}

func newCounterVec(name, help string, labels ...string) *counterVec {
	return &counterVec{name: name, help: help, labels: labels, vals: make(map[string]*atomic.Uint64)}
}

func (c *counterVec) with(values ...string) *atomic.Uint64 {
	key := strings.Join(values, "\x00")
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[key]
	if !ok {
		v = new(atomic.Uint64)
		c.vals[key] = v
	}
	return v
}

func (c *counterVec) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		key string
		val uint64
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{k, c.vals[k].Load()})
	}
	c.mu.Unlock()
	for _, r := range rows {
		values := strings.Split(r.key, "\x00")
		parts := make([]string, len(c.labels))
		for i, l := range c.labels {
			parts[i] = fmt.Sprintf("%s=%q", l, values[i])
		}
		fmt.Fprintf(w, "%s{%s} %d\n", c.name, strings.Join(parts, ","), r.val)
	}
}

// histogram is a fixed-bucket Prometheus histogram (cumulative buckets
// materialized at exposition; observation is two atomic adds and a
// bucket increment).
type histogram struct {
	name    string
	help    string
	buckets []float64 // upper bounds, ascending
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
	count   atomic.Uint64
}

// defaultLatencyBuckets span sub-millisecond store hits through
// multi-second live solves.
var defaultLatencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newHistogram(name, help string, buckets []float64) *histogram {
	return &histogram{name: name, help: help, buckets: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (h *histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// metrics is the serve layer's metric set.
type metrics struct {
	requests       *counterVec // path, code
	authRejected   *counterVec // reason: unauthorized | ratelimited
	storeHits      *counterVec // n
	storeMisses    *counterVec // n
	cacheHits      *counterVec // n
	rehydrated     *counterVec // n
	computed       *counterVec // n
	persisted      *counterVec // n
	requestSeconds *histogram
	computeSeconds *histogram
	inflight       atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:     newCounterVec("factool_requests_total", "HTTP requests by path and status code.", "path", "code"),
		authRejected: newCounterVec("factool_auth_rejected_total", "Requests rejected by API-key auth or rate limiting.", "reason"),
		storeHits:    newCounterVec("factool_store_hits_total", "Classify lookups answered directly from a store.", "n"),
		storeMisses:  newCounterVec("factool_store_misses_total", "Classify lookups the stores could not answer (live-computed).", "n"),
		cacheHits:    newCounterVec("factool_entry_cache_hits_total", "Classify lookups answered from the in-memory entry LRU.", "n"),
		rehydrated:   newCounterVec("factool_store_rehydrated_total", "Classify lookups answered by rehydrating an orbit representative.", "n"),
		computed:     newCounterVec("factool_computed_total", "Entries computed on the live examination path.", "n"),
		persisted:    newCounterVec("factool_persisted_total", "Live-computed entries written back to a store.", "n"),
		requestSeconds: newHistogram("factool_request_seconds",
			"End-to-end request latency in seconds.", defaultLatencyBuckets),
		computeSeconds: newHistogram("factool_compute_seconds",
			"Live classify/solve computation latency in seconds.", defaultLatencyBuckets),
	}
}

// writeTo emits the full exposition: the counter/histogram families
// plus scrape-time gauges over the mounted stores and the shared tower
// cache.
func (m *metrics) writeTo(w io.Writer, s *Server) {
	m.requests.write(w)
	m.authRejected.write(w)
	m.storeHits.write(w)
	m.storeMisses.write(w)
	m.cacheHits.write(w)
	m.rehydrated.write(w)
	m.computed.write(w)
	m.persisted.write(w)
	m.requestSeconds.write(w)
	m.computeSeconds.write(w)

	fmt.Fprintf(w, "# HELP factool_inflight_requests Requests currently being served.\n# TYPE factool_inflight_requests gauge\n")
	fmt.Fprintf(w, "factool_inflight_requests %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP factool_store_entries Entries resident in each mounted store.\n# TYPE factool_store_entries gauge\n")
	mounts := s.reg.Mounts()
	for _, mt := range mounts {
		fmt.Fprintf(w, "factool_store_entries{n=%q} %d\n", fmt.Sprint(mt.N()), mt.Store().Stats().Entries)
	}
	fmt.Fprintf(w, "# HELP factool_presence_skips_total Definite misses answered by the presence filter without block inflation.\n# TYPE factool_presence_skips_total counter\n")
	for _, mt := range mounts {
		fmt.Fprintf(w, "factool_presence_skips_total{n=%q} %d\n", fmt.Sprint(mt.N()), mt.Store().PresenceSkips())
	}

	cs := s.tcache.Snapshot()
	for _, g := range []struct {
		name, help string
		val        int64
	}{
		{"factool_tower_cache_towers", "Towers resident in the shared subdivision cache.", int64(cs.Towers)},
		{"factool_tower_cache_bytes", "Approximate resident bytes of the shared subdivision cache.", cs.Bytes},
		{"factool_tower_cache_max_bytes", "Byte budget of the shared subdivision cache (0 = unbounded).", cs.MaxBytes},
		{"factool_tower_cache_hits", "Subdivision cache hits.", cs.Hits},
		{"factool_tower_cache_misses", "Subdivision cache misses.", cs.Misses},
		{"factool_tower_cache_evictions", "Subdivision cache evictions.", cs.Evictions},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.val)
	}
}
