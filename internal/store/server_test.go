package store

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/census"
)

// newTestServer builds a server over a store merged from one shard.
func newTestServer(t *testing.T, n int, shardOpts census.Options, srvOpts ServerOptions) (*Server, *Store) {
	t.Helper()
	dir := t.TempDir()
	shard, _ := censusJSONL(t, dir, "shard.jsonl", n, shardOpts)
	st, err := Create(filepath.Join(dir, "store"), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	return registryServer(t, st, srvOpts), st
}

// registryServer mounts one store in a fresh registry and builds the
// serving layer over it — the canonical construction path.
func registryServer(tb testing.TB, st *Store, srvOpts ServerOptions) *Server {
	tb.Helper()
	reg := NewRegistry()
	if err := reg.Mount("store", st); err != nil {
		tb.Fatal(err)
	}
	srv, err := NewServer(reg, srvOpts)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeClassifyMatchesCensus: every /v1/classify answer — whether
// served from the store, rehydrated from an orbit representative, or
// computed live — equals the direct census entry byte-for-byte.
func TestServeClassifyMatchesCensus(t *testing.T) {
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1, Orbits: true}, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]int{}
	for i := range rep.Entries {
		want := &rep.Entries[i]
		var got classifyResponse
		code := getJSON(t, fmt.Sprintf("%s/v1/classify?n=3&index=%d", ts.URL, want.Index), &got)
		if code != http.StatusOK {
			t.Fatalf("classify %d: HTTP %d", want.Index, code)
		}
		if mustJSON(t, got.Entry) != mustJSON(t, want) {
			t.Fatalf("index %d (%s): served %s != census %s",
				want.Index, got.Source, mustJSON(t, got.Entry), mustJSON(t, want))
		}
		sources[got.Source]++
	}
	if sources["store"] == 0 || sources["store-rehydrated"] == 0 {
		t.Errorf("expected both direct and rehydrated answers, got %v", sources)
	}
}

// TestServeSummaryMatchesCensus: /v1/summary over a full-sweep store
// equals the census summary exactly.
func TestServeSummaryMatchesCensus(t *testing.T) {
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1}, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got summaryResponse
	if code := getJSON(t, ts.URL+"/v1/summary?n=3", &got); code != http.StatusOK {
		t.Fatalf("summary: HTTP %d", code)
	}
	if mustJSON(t, got.Summary) != mustJSON(t, rep.Summary) {
		t.Errorf("served summary %s != census %s", mustJSON(t, got.Summary), mustJSON(t, rep.Summary))
	}
	if got.Store.Entries != uint64(len(rep.Entries)) {
		t.Errorf("store stats report %d entries, want %d", got.Store.Entries, len(rep.Entries))
	}
}

// TestServeMissComputesAndPersists pins the acceptance criterion: a
// query the store cannot answer falls back to live computation and the
// answer lands durably in the store — a fresh server over the same
// store answers it without computing.
func TestServeMissComputesAndPersists(t *testing.T) {
	// A partial orbit sweep: the first 64 indices only, so most of the
	// domain misses.
	srv, st := newTestServer(t, 3,
		census.Options{Workers: 1, Orbits: true, ShardSize: 16, MaxIndices: 64},
		ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Index 100 is beyond the swept frontier: must be computed live.
	want := &rep.Entries[100]
	var got classifyResponse
	getJSON(t, ts.URL+"/v1/classify?n=3&index=100", &got)
	if got.Source != "computed" {
		t.Fatalf("expected a live-computed answer, got source %q", got.Source)
	}
	if mustJSON(t, got.Entry) != mustJSON(t, want) {
		t.Fatalf("computed %s != census %s", mustJSON(t, got.Entry), mustJSON(t, want))
	}
	// Second query: the entry LRU answers.
	getJSON(t, ts.URL+"/v1/classify?n=3&index=100", &got)
	if got.Source != "cache" {
		t.Errorf("second query source %q, want cache", got.Source)
	}

	// A fresh server over the same store must find the persisted
	// answer without recomputing (the write-back stored the canonical
	// representative, so index 100 resolves through its orbit).
	srv2 := registryServer(t, st, ServerOptions{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	getJSON(t, ts2.URL+"/v1/classify?n=3&index=100", &got)
	if got.Source != "store" && got.Source != "store-rehydrated" {
		t.Fatalf("persisted answer not found by fresh server: source %q", got.Source)
	}
	if mustJSON(t, got.Entry) != mustJSON(t, want) {
		t.Fatalf("persisted %s != census %s", mustJSON(t, got.Entry), mustJSON(t, want))
	}
}

// TestServeSolve drives the live /v1/solve path: the 1-obstruction-free
// adversary at n=3 has setcon 1, so 1-set consensus is solvable.
func TestServeSolve(t *testing.T) {
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1}, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Find the 1-OF adversary's enumeration index: live sets = all
	// singletons, masks {1, 2, 4} → index bits of the first three
	// domain positions... resolved robustly via the census entries.
	rep, err := census.Run(3, census.Options{Workers: 1, Solve: true})
	if err != nil {
		t.Fatal(err)
	}
	var idx uint64
	found := false
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Fair && e.Setcon == 1 && e.Solved && e.Solvable != nil && *e.Solvable {
			idx, found = e.Index, true
			break
		}
	}
	if !found {
		t.Fatal("no solvable setcon-1 adversary in the n=3 census")
	}
	var got solveResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/solve?n=3&index=%d&ktask=1", ts.URL, idx), &got); code != http.StatusOK {
		t.Fatalf("solve: HTTP %d", code)
	}
	if got.Solvable == nil || !*got.Solvable {
		t.Fatalf("solve response %+v: want solvable", got)
	}
}

// TestServeBadRequests: parameter validation covers n mismatch, missing
// and out-of-domain indices, and non-GET methods.
func TestServeBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1}, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/classify?n=4&index=0", http.StatusNotFound}, // n not mounted
		{"/v1/classify?index=0", http.StatusBadRequest},   // missing n
		{"/v1/classify?n=3", http.StatusBadRequest},       // missing index
		{"/v1/classify?n=3&index=128", http.StatusBadRequest},
		{"/v1/solve?n=3&index=0&ktask=9", http.StatusBadRequest},
		{"/v1/solve?n=3&index=0&rounds=99", http.StatusBadRequest},
		{"/v1/summary?n=2", http.StatusNotFound}, // n not mounted
		{"/v1/entries?n=3&from=5&to=1", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error struct {
				Code      int    `json:"code"`
				Message   string `json:"message"`
				RequestID string `json:"request_id"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: HTTP %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
		if err != nil || env.Error.Code != tc.want || env.Error.Message == "" || env.Error.RequestID == "" {
			t.Errorf("GET %s: bad error envelope (err %v): %+v", tc.url, err, env)
		}
		if got := resp.Header.Get("X-Request-Id"); got != env.Error.RequestID {
			t.Errorf("GET %s: X-Request-Id header %q != envelope request_id %q", tc.url, got, env.Error.RequestID)
		}
	}
	// POST is the batch form now — a non-JSON body is a 400, and the
	// unsupported method on an endpoint stays 405.
	resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader("nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST classify (bad body): HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/summary?n=3", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST summary: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestServeConcurrent hammers the handler from many goroutines across
// hits, rehydrations, misses (with write-back) and summaries — the
// -race correctness satellite.
func TestServeConcurrent(t *testing.T) {
	srv, _ := newTestServer(t, 3,
		census.Options{Workers: 1, Orbits: true, ShardSize: 16, MaxIndices: 64},
		ServerOptions{CacheEntries: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := census.Run(3, census.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				idx := uint64((i*workers + w) * 2 % 128)
				var got classifyResponse
				resp, err := http.Get(fmt.Sprintf("%s/v1/classify?n=3&index=%d", ts.URL, idx))
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
					resp.Body.Close()
					errs <- err
					return
				}
				resp.Body.Close()
				if mustJSON(t, got.Entry) != mustJSON(t, &rep.Entries[idx]) {
					errs <- fmt.Errorf("index %d: %s != %s", idx, mustJSON(t, got.Entry), mustJSON(t, &rep.Entries[idx]))
					return
				}
				if i%16 == 0 {
					var sum summaryResponse
					resp, err := http.Get(ts.URL + "/v1/summary?n=3")
					if err != nil {
						errs <- err
						return
					}
					if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
						resp.Body.Close()
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
