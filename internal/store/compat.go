package store

// Compatibility surface. Two generations of plumbing live here so the
// historical store-package names — and the public fact facade built on
// them — keep compiling unchanged:
//
//   - The v1 API kit (error envelope, request ids, middleware, metric
//     primitives, API-key auth) moved to internal/api, shared with the
//     fabric coordinator; the store names alias it.
//   - The one-store serving constructor predates the Registry; it
//     remains as a thin shim over the registry path.

import "repro/internal/api"

// APIKey is one authorized key with its rate budget.
//
// It aliases the shared kit's api.APIKey.
type APIKey = api.APIKey

// AuthConfig is the serve layer's auth state: the key set and its
// limiters. Safe for concurrent use.
//
// It aliases the shared kit's api.AuthConfig.
type AuthConfig = api.AuthConfig

// NewAuthConfig builds auth state from explicit keys.
var NewAuthConfig = api.NewAuthConfig

// LoadAPIKeys reads a key file of name:key[:rate[:burst]] lines.
var LoadAPIKeys = api.LoadAPIKeys

// NewSingleServer builds the serving layer over exactly one store,
// mounted as "store".
//
// Deprecated: the single-store path predates the Registry. New code
// should build a Registry, Mount each store, and call NewServer — this
// shim is exactly that sequence (TestSingleServerEquivalence pins it)
// and exists only for the historical API and the fact.NewCensusServer
// facade.
func NewSingleServer(st *Store, opts ServerOptions) (*Server, error) {
	reg := NewRegistry()
	if err := reg.Mount("store", st); err != nil {
		return nil, err
	}
	return NewServer(reg, opts)
}
