package store

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/census"
)

// benchStore builds an n=4 orbit store once per benchmark run.
func benchStore(b *testing.B) *Store {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, "orbit.jsonl")
	sink, err := census.NewJSONLSink(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := census.Stream(4, census.Options{Orbits: true}, sink); err != nil {
		b.Fatal(err)
	}
	sink.Close()
	st, err := Create(filepath.Join(dir, "store"), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	if _, err := st.Merge([]string{path}, MergeOptions{}); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkCensusStoreLookup measures the orbit-aware point-query hot
// path over the n=4 store (block cache warm, spanning direct hits and
// Permute rehydrations).
func BenchmarkCensusStoreLookup(b *testing.B) {
	st := benchStore(b)
	orbits := adversary.NewOrbits(4)
	total := adversary.CensusSize(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := uint64(i*2654435761) % total
		if _, src, err := st.Lookup(idx, orbits); err != nil || src == LookupMiss {
			b.Fatalf("lookup %d: src=%v err=%v", idx, src, err)
		}
	}
}

// BenchmarkServeClassifyLatency measures the per-request latency
// distribution of the HTTP classify path and reports the tail as a
// "p99-ns/op" custom metric beside the mean ns/op. The CI bench-track
// regex matches "Serve", and benchjson compare gates custom metric
// regressions like ns/op ones — so a serve p99 regression fails CI.
func BenchmarkServeClassifyLatency(b *testing.B) {
	st := benchStore(b)
	srv := registryServer(b, st, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	total := adversary.CensusSize(4)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := uint64(i*2654435761) % total
		t0 := time.Now()
		resp, err := client.Get(fmt.Sprintf("%s/v1/classify?n=4&index=%d", ts.URL, idx))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	slices.Sort(lat)
	p99 := lat[min(len(lat)*99/100, len(lat)-1)]
	b.ReportMetric(float64(p99), "p99-ns/op")
}

// BenchmarkCensusServeClassify measures the full HTTP query path
// (handler, store, LRU) under sequential load.
func BenchmarkCensusServeClassify(b *testing.B) {
	st := benchStore(b)
	srv := registryServer(b, st, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	total := adversary.CensusSize(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := uint64(i*2654435761) % total
		resp, err := http.Get(fmt.Sprintf("%s/v1/classify?n=4&index=%d", ts.URL, idx))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
