package store

// Deep verification: `factool store verify`. A full walk over the
// physical store — every block read, CRC-checked, inflated and framed —
// plus logical consistency of the manifest against the data (sorted
// blocks, exact First/Last/Entries, in-domain indices, byte-identical
// duplicates across overlapping blocks, kind discipline) and an
// orbit-consistency spot check re-deriving canonicality, orbit sizes
// and whole entries from scratch — classification entries always, and
// solve entries whenever the manifest records which task the store's
// verdicts answer.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/census"
	"repro/internal/chromatic"
)

// VerifyOptions tune a deep check.
type VerifyOptions struct {
	// SpotChecks bounds how many entries get semantically re-derived
	// (canonicality + orbit size, and a from-scratch reclassification
	// on classify stores). <= 0 selects 8; the sample is spread
	// deterministically across the stored sequence.
	SpotChecks int
}

// VerifyReport is the outcome of a deep check.
type VerifyReport struct {
	Blocks       int      `json:"blocks"`
	Entries      uint64   `json:"entries"`
	Unique       uint64   `json:"unique"`
	Bytes        int64    `json:"bytes"`
	SpotChecked  int      `json:"spot_checked"`
	Reclassified int      `json:"reclassified"`
	Problems     []string `json:"problems,omitempty"`
}

// OK reports a clean check.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Verify deep-checks the store. The returned error is only for
// environmental failures (an unreadable store, a failed examiner);
// data corruption lands in VerifyReport.Problems so one walk surfaces
// every finding, not just the first. Memory stays bounded by a few
// inflated blocks: the logical walk pages through Range.
func (s *Store) Verify(opts VerifyOptions) (*VerifyReport, error) {
	spot := opts.SpotChecks
	if spot <= 0 {
		spot = 8
	}
	rep := &VerifyReport{}
	n, domain, orbitKind, solveMode, err := s.verifyPhysical(rep)
	if err != nil {
		return nil, err
	}

	// Logical walk in index order through Range pages: every line
	// parses, agrees with its key, and obeys the manifest's kind and
	// solve commitments. Range itself enforces byte-identical
	// duplicates and ordering (ErrCorrupt), which counts as a finding.
	var orbits *adversary.Orbits
	if orbitKind {
		orbits = adversary.NewOrbits(n)
	}
	var examiner *census.Examiner
	if !solveMode {
		if examiner, err = census.NewExaminer(n, census.Options{}); err != nil {
			return nil, err
		}
	}
	// Solve stores are re-derivable once the manifest records the task
	// their verdicts answer (a kset spec bound there re-derives compat
	// entries byte-identically: those carry no task field either way).
	var solve *solveRederiver
	if task := s.Task(); solveMode && task != "" {
		solve = &solveRederiver{
			n:        n,
			task:     task,
			universe: chromatic.SharedUniverse(n),
			cache:    chromatic.NewTowerCache(),
		}
	}
	// Evenly-spread semantic sample over the unique entry sequence.
	step := uint64(1)
	if u := s.Stats().Entries; u > uint64(spot) {
		step = u / uint64(spot)
	}
	sawSolve := false
	var pos uint64
	for from, more := uint64(0), true; more; {
		page, err := s.Range(from, domain, DefaultBlockEntries)
		if err != nil {
			rep.problemf("range walk from %d: %v", from, err)
			break
		}
		from, more = page.Next, page.More
		for i, line := range page.Lines {
			idx := page.Indices[i]
			rep.Unique++
			var e census.Entry
			if err := json.Unmarshal(line, &e); err != nil {
				rep.problemf("index %d: unparseable entry: %v", idx, err)
				continue
			}
			if e.Index != idx {
				rep.problemf("index %d: line declares index %d", idx, e.Index)
			}
			if orbitKind && e.OrbitSize == 0 {
				rep.problemf("index %d: orbit store holds a plain entry", idx)
			}
			if !orbitKind && e.OrbitSize != 0 {
				rep.problemf("index %d: full store holds an orbit-weighted entry", idx)
			}
			if e.Solved {
				sawSolve = true
			}
			if pos%step == 0 && rep.SpotChecked < spot {
				rep.SpotChecked++
				s.spotCheck(rep, orbits, examiner, solve, idx, &e, line)
			}
			pos++
		}
	}
	if sawSolve && !solveMode {
		rep.problemf("manifest: solve entries present but Solve flag unset")
	}
	return rep, nil
}

// verifyPhysical walks every block bypassing the cache: CRC, gzip
// framing, entry counts, in-block ordering, and manifest agreement.
func (s *Store) verifyPhysical(rep *VerifyReport) (n int, domain uint64, orbitKind, solveMode bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return 0, 0, false, false, fmt.Errorf("store: closed")
	}
	n = s.man.N
	domain = s.domainSizeLocked()
	orbitKind = s.man.EntryKind == kindOrbit
	solveMode = s.man.Solve
	rep.Blocks = len(s.man.Blocks)
	var prevFirst uint64
	for j, b := range s.man.Blocks {
		rep.Bytes += b.Size
		if j > 0 && b.First < prevFirst {
			rep.problemf("manifest: block %d First=%d precedes block %d First=%d", j, b.First, j-1, prevFirst)
		}
		prevFirst = b.First
		if b.First > b.Last {
			rep.problemf("manifest: block %d First=%d > Last=%d", j, b.First, b.Last)
			continue
		}
		entries, err := s.readBlockLocked(b)
		if err != nil {
			rep.problemf("block %d: %v", j, err)
			continue
		}
		rep.Entries += uint64(len(entries))
		for i, be := range entries {
			if i > 0 && be.idx <= entries[i-1].idx {
				rep.problemf("block %d: entry %d index %d not above %d", j, i, be.idx, entries[i-1].idx)
			}
			if be.idx < b.First || be.idx > b.Last {
				rep.problemf("block %d: entry index %d outside manifest range [%d, %d]", j, be.idx, b.First, b.Last)
			}
			if be.idx >= domain {
				rep.problemf("block %d: entry index %d beyond the n=%d domain (%d)", j, be.idx, n, domain)
			}
		}
		if len(entries) > 0 {
			if entries[0].idx != b.First {
				rep.problemf("block %d: first entry %d, manifest First %d", j, entries[0].idx, b.First)
			}
			if entries[len(entries)-1].idx != b.Last {
				rep.problemf("block %d: last entry %d, manifest Last %d", j, entries[len(entries)-1].idx, b.Last)
			}
		}
	}
	return n, domain, orbitKind, solveMode, nil
}

// solveRederiver re-derives solve-mode entries under the task spec the
// manifest records. The Universe and TowerCache are shared across the
// whole sample; the Examiner is fresh per entry because MaxRounds is
// pinned to that entry's recorded rounds.
type solveRederiver struct {
	n        int
	task     string
	universe *chromatic.Universe
	cache    *chromatic.TowerCache
}

// rederive recomputes the entry from scratch at MaxRounds = max(1,
// e.Rounds): exact for solvable entries (the solver reports the
// minimal round count), and sound for unsolvable ones (solvability is
// monotone in rounds, so unsolvable within R implies unsolvable
// within 1).
func (v *solveRederiver) rederive(e *census.Entry) ([]byte, error) {
	rounds := e.Rounds
	if rounds < 1 {
		rounds = 1
	}
	ex, err := census.NewExaminer(v.n, census.Options{
		Solve:     true,
		Task:      v.task,
		MaxRounds: rounds,
		Universe:  v.universe,
		Cache:     v.cache,
	})
	if err != nil {
		return nil, err
	}
	want, err := ex.Examine(e.Index)
	if err != nil {
		return nil, err
	}
	want.OrbitSize = e.OrbitSize
	return json.Marshal(&want)
}

// spotCheck re-derives one entry from scratch: canonicality and orbit
// size on orbit stores, and the whole entry byte-for-byte wherever the
// sweep configuration is fully known — always on classify stores, and
// on solve stores whose manifest records the task (an unbound solve
// store's (task, rounds) is not recoverable, so it gets the orbit
// checks only; undecided entries are skipped, their search budget is
// not recorded).
func (s *Store) spotCheck(rep *VerifyReport, orbits *adversary.Orbits, examiner *census.Examiner,
	solve *solveRederiver, idx uint64, e *census.Entry, line []byte) {
	if orbits != nil {
		if !orbits.IsCanonical(idx) {
			rep.problemf("index %d: orbit store entry is not a canonical representative", idx)
			return
		}
		if _, size, _ := orbits.CanonicalWithWitness(idx); size != e.OrbitSize {
			rep.problemf("index %d: stored orbit size %d, derived %d", idx, e.OrbitSize, size)
		}
	}
	if solve != nil && !e.Undecided {
		wb, err := solve.rederive(e)
		if err != nil {
			rep.problemf("index %d: solve re-derivation failed: %v", idx, err)
			return
		}
		rep.Reclassified++
		if !bytes.Equal(wb, line) {
			rep.problemf("index %d: stored entry differs from solve re-derivation: stored %s, derived %s", idx, line, wb)
		}
		return
	}
	if examiner == nil {
		return
	}
	want, err := examiner.Examine(idx)
	if err != nil {
		rep.problemf("index %d: reclassification failed: %v", idx, err)
		return
	}
	want.OrbitSize = e.OrbitSize
	wb, err := json.Marshal(&want)
	if err != nil {
		rep.problemf("index %d: reclassification marshal: %v", idx, err)
		return
	}
	rep.Reclassified++
	if string(wb) != string(line) {
		rep.problemf("index %d: stored entry differs from reclassification: stored %s, derived %s", idx, line, wb)
	}
}
