// Package store implements the queryable census store: a compact,
// compressed, indexed on-disk form of adversary-census results, built
// by merging census JSONL shards (including the nightly census-long
// artifacts) and served by the `factool serve` HTTP layer.
//
// A store is a directory holding a MANIFEST.json and one generation of
// block data (blocks-%06d.dat): gzip-compressed blocks of raw census
// JSON lines, each block covering a sorted range of enumeration
// indices. The manifest is the sparse index — per block its first/last
// index, offset, compressed size and CRC — kept sorted by first index
// so a point query binary-searches the manifest, inflates one block,
// and binary-searches its entries. Writes are crash-safe by
// construction: block data is referenced only once the manifest rename
// lands, merges write a fresh generation file before swapping the
// manifest, and appended bytes beyond the manifest's horizon are
// truncated away on open.
//
// Lookups are orbit-aware: a query for any adversary index resolves
// through adversary.Orbits.Canonical to its stored representative and
// rehydrates the entry for the queried index via Adversary.Permute —
// so a store built from an orbit-reduced sweep (up to n! smaller)
// answers for the whole domain.
package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/census"
	"repro/internal/procs"
	"repro/internal/tasks"
)

const (
	manifestName  = "MANIFEST.json"
	formatVersion = 1

	// DefaultBlockEntries is the number of entries per compressed block:
	// large enough to compress well (JSON lines share most of their
	// structure), small enough that a point query inflates little.
	DefaultBlockEntries = 256

	// blockCacheSize bounds the per-store cache of inflated blocks.
	blockCacheSize = 16
)

// Errors surfaced by store operations.
var (
	// ErrConflict reports two shards (or a shard and the store) holding
	// different bytes for the same enumeration index — overlapping
	// inputs must agree byte-for-byte to merge.
	ErrConflict = errors.New("store: conflicting entries for the same index")
	// ErrCorrupt reports a store whose data fails validation (CRC, block
	// framing, or manifest/data disagreement).
	ErrCorrupt = errors.New("store: corrupt data")
	// ErrKindMismatch reports mixing incompatible entry populations in
	// one store — orbit-reduced vs full-sweep entries, or solve entries
	// answering different task specs — which would skew every aggregate
	// and answer.
	ErrKindMismatch = errors.New("store: incompatible entry kinds for one store")
)

// Entry kinds recorded in the manifest. A store is committed to one
// kind by its first ingested entry: orbit stores hold canonical
// representatives weighted by orbit size, full stores hold one entry
// per swept index.
const (
	kindUnknown = ""
	kindFull    = "full"
	kindOrbit   = "orbit"
)

// blockMeta is the sparse-index record of one compressed block.
type blockMeta struct {
	First   uint64 `json:"first"`
	Last    uint64 `json:"last"`
	Entries int    `json:"entries"`
	Offset  int64  `json:"offset"`
	Size    int64  `json:"size"`
	CRC     uint32 `json:"crc32"`
}

// manifest is the persistent index of a store.
type manifest struct {
	Version   int    `json:"version"`
	N         int    `json:"n"`
	EntryKind string `json:"entry_kind,omitempty"`

	// Solve records that the store holds entries of a solve-mode sweep
	// (set as soon as any ingested entry carries solve results). For
	// kset sweeps the exact solve configuration (k, rounds) is not
	// recoverable from entries unless Task below was bound, so the
	// serving layer disables classify write-backs into such a store
	// rather than mixing configurations.
	Solve bool `json:"solve,omitempty"`

	// Task is the canonical tasks.Spec string the store's solve entries
	// answer. It is committed by the first ingested entry carrying a
	// task field (non-kset sweeps stamp every entry), or bound
	// explicitly via BindTaskSpec (the fabric coordinator records its
	// campaign's spec, including kset ones, so `store verify` can
	// re-derive solve verdicts). Entries of a different spec never
	// merge. Empty means classification-only or an unbound kset store.
	Task string `json:"task,omitempty"`

	Generation int         `json:"generation"`
	DataFile   string      `json:"data_file"`
	Blocks     []blockMeta `json:"blocks"` // sorted by First
}

// Store is an open census store. Safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	man     manifest
	data    *os.File
	dataEnd int64 // horizon of manifest-referenced bytes

	// prefixMaxLast[i] = max(Blocks[0..i].Last): the interval-stabbing
	// helper that bounds how far left of the binary-search point a
	// lookup must scan when appended blocks overlap merged ones.
	prefixMaxLast []uint64

	// blockCache is keyed by data-file offset — stable across manifest
	// inserts (PutNew), so appends never evict hot inflated blocks; a
	// merge swaps the data file and clears it explicitly.
	blockCache map[int64][]blockEntry
	cacheOrder []int64 // LRU order, oldest first

	summary *census.Summary // cached aggregate; nil after writes

	// presence, when loaded (LoadPresence), short-circuits definite
	// misses before any index probe or block inflation. Nil until
	// loaded; a merge drops it (the entry set changed wholesale).
	presence      *presenceFilter
	presenceSkips atomic.Uint64
}

// blockEntry is one inflated entry: its index and raw JSON line
// (newline excluded).
type blockEntry struct {
	idx  uint64
	line []byte
}

// Create initializes an empty store for an n-process census in dir
// (created if needed). Fails if dir already holds a store.
func Create(dir string, n int) (*Store, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("store: n must be in [1,6], got %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	s := &Store{
		dir: dir,
		man: manifest{
			Version:    formatVersion,
			N:          n,
			Generation: 1,
			DataFile:   dataFileName(1),
		},
		blockCache: make(map[int64][]blockEntry),
	}
	f, err := os.OpenFile(filepath.Join(dir, s.man.DataFile), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s.data = f
	if err := s.writeManifestLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store, validating its manifest and truncating
// any unreferenced appended tail a crash may have left behind.
func Open(dir string) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var man manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("%w: parse manifest: %v", ErrCorrupt, err)
	}
	if man.Version != formatVersion {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, man.Version, formatVersion)
	}
	if man.N < 1 || man.N > 6 {
		return nil, fmt.Errorf("%w: manifest n=%d", ErrCorrupt, man.N)
	}
	s := &Store{dir: dir, man: man, blockCache: make(map[int64][]blockEntry)}
	s.reindexLocked()
	f, err := os.OpenFile(filepath.Join(dir, man.DataFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < s.dataEnd {
		f.Close()
		return nil, fmt.Errorf("%w: data file %s is %d bytes, manifest references %d",
			ErrCorrupt, man.DataFile, st.Size(), s.dataEnd)
	}
	if st.Size() > s.dataEnd {
		// A crash between a block append and its manifest commit leaves
		// unreferenced bytes; drop them so the next append lands at the
		// manifest's horizon.
		if err := f.Truncate(s.dataEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	s.data = f
	return s, nil
}

// OpenOrCreate opens the store in dir, creating an empty n-process one
// when none exists. An existing store must match n.
func OpenOrCreate(dir string, n int) (*Store, error) {
	s, err := Open(dir)
	if errors.Is(err, os.ErrNotExist) {
		return Create(dir, n)
	}
	if err != nil {
		return nil, err
	}
	if s.man.N != n {
		s.Close()
		return nil, fmt.Errorf("store: %s holds an n=%d store, want n=%d", dir, s.man.N, n)
	}
	return s, nil
}

// Close releases the data file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil
	}
	err := s.data.Close()
	s.data = nil
	return err
}

// N returns the system size of the census the store holds.
func (s *Store) N() int {
	return s.man.N
}

// Orbits reports whether the store holds orbit-reduced entries
// (canonical representatives weighted by orbit size).
func (s *Store) Orbits() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.EntryKind == kindOrbit
}

// SolveMode reports whether the store holds solve-mode sweep results.
func (s *Store) SolveMode() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Solve
}

// Task returns the canonical spec of the task the store's solve
// entries answer — empty for classification-only stores and for kset
// solve stores that were never bound via BindTaskSpec.
func (s *Store) Task() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Task
}

// BindTaskSpec records the task spec the store's solve entries answer,
// persisting it in the manifest. The fabric coordinator binds its
// campaign's spec so even kset stores — whose entries carry no task
// field for compatibility — become verifiable and guard their merges.
// Binding a spec over a different recorded one, or a non-kset spec
// over existing kset solve entries, is a kind mismatch.
func (s *Store) BindTaskSpec(spec string) error {
	if spec == "" {
		return nil
	}
	parsed, err := tasks.ParseSpec(spec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	canonical := parsed.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Task == canonical {
		return nil
	}
	if s.man.Task != "" {
		return fmt.Errorf("%w: store answers task %q, cannot bind %q",
			ErrKindMismatch, s.man.Task, canonical)
	}
	if s.man.Solve && !parsed.IsKSet() {
		return fmt.Errorf("%w: store holds kset solve entries, cannot bind task %q",
			ErrKindMismatch, canonical)
	}
	s.man.Task = canonical
	return s.writeManifestLocked()
}

// Stats describes a store's physical shape.
type Stats struct {
	N          int    `json:"n"`
	Entries    uint64 `json:"entries"`
	Blocks     int    `json:"blocks"`
	Bytes      int64  `json:"bytes"` // compressed block bytes
	Generation int    `json:"generation"`
	Orbits     bool   `json:"orbits,omitempty"`
}

// Stats returns the store's entry/block/byte counts.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		N:          s.man.N,
		Blocks:     len(s.man.Blocks),
		Generation: s.man.Generation,
		Orbits:     s.man.EntryKind == kindOrbit,
	}
	for _, b := range s.man.Blocks {
		st.Entries += uint64(b.Entries)
		st.Bytes += b.Size
	}
	return st
}

// reindexLocked rebuilds the derived lookup state after the manifest
// changes. The offset-keyed block cache survives (appends leave block
// data in place); dropCacheLocked handles data-file swaps. Callers
// hold s.mu (or own the store exclusively).
func (s *Store) reindexLocked() {
	s.prefixMaxLast = s.prefixMaxLast[:0]
	s.dataEnd = 0
	var max uint64
	for _, b := range s.man.Blocks {
		if b.Last > max {
			max = b.Last
		}
		s.prefixMaxLast = append(s.prefixMaxLast, max)
		if end := b.Offset + b.Size; end > s.dataEnd {
			s.dataEnd = end
		}
	}
	s.summary = nil
}

// dropCacheLocked empties the inflated-block cache — required whenever
// the data file itself is replaced (merge generations), where offsets
// name different bytes. Callers hold s.mu.
func (s *Store) dropCacheLocked() {
	s.blockCache = make(map[int64][]blockEntry)
	s.cacheOrder = s.cacheOrder[:0]
}

// Get returns the entry stored for the exact enumeration index, if any.
func (s *Store) Get(idx uint64) (*census.Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	line, ok, err := s.getRawLocked(idx)
	if err != nil || !ok {
		return nil, false, err
	}
	var e census.Entry
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, false, fmt.Errorf("%w: entry %d: %v", ErrCorrupt, idx, err)
	}
	return &e, true, nil
}

// domainSizeLocked is the store's enumeration-domain size.
func (s *Store) domainSizeLocked() uint64 {
	return adversary.CensusSize(s.man.N)
}

// getRawLocked finds the raw JSON line of idx. Callers hold s.mu.
func (s *Store) getRawLocked(idx uint64) ([]byte, bool, error) {
	if s.presence != nil && !s.presence.mayContain(idx) {
		s.presenceSkips.Add(1)
		return nil, false, nil
	}
	blocks := s.man.Blocks
	// i = first block with First > idx; candidates are to its left.
	i := sort.Search(len(blocks), func(j int) bool { return blocks[j].First > idx })
	for j := i - 1; j >= 0 && s.prefixMaxLast[j] >= idx; j-- {
		if blocks[j].Last < idx {
			continue
		}
		entries, err := s.blockEntriesLocked(j)
		if err != nil {
			return nil, false, err
		}
		k := sort.Search(len(entries), func(m int) bool { return entries[m].idx >= idx })
		if k < len(entries) && entries[k].idx == idx {
			return entries[k].line, true, nil
		}
	}
	return nil, false, nil
}

// blockEntriesLocked inflates block j through the LRU cache (keyed by
// the block's data-file offset). Callers hold s.mu.
func (s *Store) blockEntriesLocked(j int) ([]blockEntry, error) {
	key := s.man.Blocks[j].Offset
	if entries, ok := s.blockCache[key]; ok {
		s.touchBlockLocked(key)
		return entries, nil
	}
	entries, err := s.readBlockLocked(s.man.Blocks[j])
	if err != nil {
		return nil, err
	}
	s.blockCache[key] = entries
	s.cacheOrder = append(s.cacheOrder, key)
	if len(s.cacheOrder) > blockCacheSize {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.blockCache, evict)
	}
	return entries, nil
}

func (s *Store) touchBlockLocked(key int64) {
	for i, b := range s.cacheOrder {
		if b == key {
			s.cacheOrder = append(append(s.cacheOrder[:i:i], s.cacheOrder[i+1:]...), key)
			return
		}
	}
}

// readBlockLocked reads, checks and inflates one block from the data
// file. Callers hold s.mu.
func (s *Store) readBlockLocked(b blockMeta) ([]blockEntry, error) {
	if s.data == nil {
		return nil, errors.New("store: closed")
	}
	comp := make([]byte, b.Size)
	if _, err := s.data.ReadAt(comp, b.Offset); err != nil {
		return nil, fmt.Errorf("%w: read block at %d: %v", ErrCorrupt, b.Offset, err)
	}
	if crc := crc32.ChecksumIEEE(comp); crc != b.CRC {
		return nil, fmt.Errorf("%w: block at %d: crc %08x, manifest %08x", ErrCorrupt, b.Offset, crc, b.CRC)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, b.Offset, err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, b.Offset, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, b.Offset, err)
	}
	entries := make([]blockEntry, 0, b.Entries)
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		idx, err := entryIndex(line)
		if err != nil {
			return nil, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, b.Offset, err)
		}
		entries = append(entries, blockEntry{idx: idx, line: line})
	}
	if len(entries) != b.Entries {
		return nil, fmt.Errorf("%w: block at %d holds %d entries, manifest says %d",
			ErrCorrupt, b.Offset, len(entries), b.Entries)
	}
	return entries, nil
}

// entryIndex extracts the enumeration index from a census JSON line.
func entryIndex(line []byte) (uint64, error) {
	var e struct {
		Index uint64 `json:"index"`
	}
	if err := json.Unmarshal(line, &e); err != nil {
		return 0, err
	}
	return e.Index, nil
}

// LookupSource reports how a Lookup resolved.
type LookupSource int

const (
	// LookupMiss: neither the index nor its orbit representative is
	// stored.
	LookupMiss LookupSource = iota
	// LookupDirect: the index itself is stored.
	LookupDirect
	// LookupRehydrated: the orbit's canonical representative is stored
	// and the entry was rehydrated for the queried index via Permute.
	LookupRehydrated
)

// Lookup resolves an enumeration index orbit-aware: a direct hit wins;
// otherwise the index's canonical representative (orbits must be the
// store's n) is fetched and rehydrated for the queried index. The
// rehydrated entry is exactly what a full sweep would have recorded for
// that index: identity fields recomputed through Permute, invariant
// classification and solvability fields carried over, no orbit size.
func (s *Store) Lookup(idx uint64, orbits *adversary.Orbits) (*census.Entry, LookupSource, error) {
	if e, ok, err := s.Get(idx); err != nil {
		return nil, LookupMiss, err
	} else if ok {
		return e, LookupDirect, nil
	}
	if orbits == nil {
		return nil, LookupMiss, nil
	}
	// One image scan yields the representative and the rehydration
	// permutation together (no second PermutationBetween scan).
	canon, _, perm := orbits.CanonicalWithWitness(idx)
	if canon == idx {
		return nil, LookupMiss, nil
	}
	ce, ok, err := s.Get(canon)
	if err != nil || !ok {
		return nil, LookupMiss, err
	}
	e, err := rehydrateWith(s.man.N, ce, idx, perm)
	if err != nil {
		return nil, LookupMiss, err
	}
	return e, LookupRehydrated, nil
}

// Rehydrate maps a stored canonical-representative entry onto another
// index of its orbit: the adversary is rebuilt by renaming the
// representative's processes (Adversary.Permute), the identity fields
// (index, printed form, live-set masks) are recomputed from it, and
// every class- and solvability-invariant field is carried over. The
// result equals the entry a full sweep computes directly for idx.
func Rehydrate(n int, canonical *census.Entry, idx uint64, orbits *adversary.Orbits) (*census.Entry, error) {
	perm, ok := orbits.PermutationBetween(canonical.Index, idx)
	if !ok {
		return nil, fmt.Errorf("store: index %d is not in the orbit of %d", idx, canonical.Index)
	}
	return rehydrateWith(n, canonical, idx, perm)
}

// rehydrateWith is Rehydrate with the witness permutation already in
// hand (the single-scan CanonicalWithWitness path of Lookup and the
// serving layer).
func rehydrateWith(n int, canonical *census.Entry, idx uint64, perm []procs.ID) (*census.Entry, error) {
	a := adversary.AdversaryAt(n, canonical.Index).Permute(perm)
	if got := adversary.EnumerationIndex(a); got != idx {
		return nil, fmt.Errorf("store: rehydration of %d via %d landed on %d", idx, canonical.Index, got)
	}
	e := canonical.Clone()
	e.Index = idx
	e.Adversary = a.String()
	live := a.LiveSets()
	masks := make([]uint32, len(live))
	for i, ls := range live {
		masks[i] = uint32(ls)
	}
	e.LiveSetMasks = masks
	// A direct full-sweep entry carries no orbit size; neither does a
	// rehydrated one.
	e.OrbitSize = 0
	return e, nil
}

// PutNew appends one entry — the write-back path of the serving layer's
// live-computation fallback. The append is durable before the manifest
// commits, an entry already stored under the same index is left alone
// (reported as added=false; differing bytes are a conflict), and the
// entry's kind (orbit-weighted or plain) must match the store's.
func (s *Store) PutNew(e *census.Entry) (added bool, err error) {
	line, err := json.Marshal(e)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return false, errors.New("store: closed")
	}
	if err := s.admitKindLocked(e.OrbitSize > 0); err != nil {
		return false, err
	}
	if err := admitTask(&s.man, e.Task, e.Solved, e.Index); err != nil {
		return false, err
	}
	if e.Solved {
		s.man.Solve = true
	}
	if prev, ok, err := s.getRawLocked(e.Index); err != nil {
		return false, err
	} else if ok {
		if !bytes.Equal(prev, line) {
			return false, fmt.Errorf("%w: index %d", ErrConflict, e.Index)
		}
		return false, nil
	}
	meta, err := appendBlock(s.data, s.dataEnd, [][]byte{line}, e.Index, e.Index)
	if err != nil {
		return false, err
	}
	if err := s.data.Sync(); err != nil {
		return false, err
	}
	// Insert sorted by First so binary search keeps working.
	at := sort.Search(len(s.man.Blocks), func(j int) bool { return s.man.Blocks[j].First > meta.First })
	s.man.Blocks = append(s.man.Blocks, blockMeta{})
	copy(s.man.Blocks[at+1:], s.man.Blocks[at:])
	s.man.Blocks[at] = meta
	if err := s.writeManifestLocked(); err != nil {
		return false, err
	}
	s.reindexLocked()
	if s.presence != nil {
		s.presence.add(e.Index)
	}
	return true, nil
}

// admitKindLocked commits the store to the entry kind on first write
// and rejects mixing afterwards. Callers hold s.mu.
func (s *Store) admitKindLocked(orbit bool) error {
	kind := kindFull
	if orbit {
		kind = kindOrbit
	}
	switch s.man.EntryKind {
	case kindUnknown:
		s.man.EntryKind = kind
		return nil
	case kind:
		return nil
	default:
		return fmt.Errorf("%w: store holds %s entries, got a %s one",
			ErrKindMismatch, s.man.EntryKind, kind)
	}
}

// taskIsKSet reports whether a canonical manifest task string names the
// kset compat family, whose entries carry no task field.
func taskIsKSet(task string) bool {
	return task == "kset" || (len(task) > 5 && task[:5] == "kset:")
}

// admitTask commits the manifest to the task spec of the first entry
// carrying one and rejects mixing specs afterwards. Entries without a
// task field are the kset compat population: their solved entries are
// admissible only into stores whose recorded task (if any) is a kset
// spec. Callers update man.Solve after this check, never before.
func admitTask(man *manifest, task string, solved bool, idx uint64) error {
	if task == "" {
		if solved && man.Task != "" && !taskIsKSet(man.Task) {
			return fmt.Errorf("%w: store answers task %q, entry %d is a kset solve entry",
				ErrKindMismatch, man.Task, idx)
		}
		return nil
	}
	switch man.Task {
	case task:
		return nil
	case "":
		if man.Solve {
			return fmt.Errorf("%w: store holds kset solve entries, entry %d answers task %q",
				ErrKindMismatch, idx, task)
		}
		man.Task = task
		return nil
	default:
		return fmt.Errorf("%w: store answers task %q, entry %d answers %q",
			ErrKindMismatch, man.Task, idx, task)
	}
}

// appendBlock compresses lines into one block at the given offset of f.
func appendBlock(f *os.File, off int64, lines [][]byte, first, last uint64) (blockMeta, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	for _, line := range lines {
		if _, err := zw.Write(append(line, '\n')); err != nil {
			return blockMeta{}, err
		}
	}
	if err := zw.Close(); err != nil {
		return blockMeta{}, err
	}
	if _, err := f.WriteAt(buf.Bytes(), off); err != nil {
		return blockMeta{}, err
	}
	return blockMeta{
		First:   first,
		Last:    last,
		Entries: len(lines),
		Offset:  off,
		Size:    int64(buf.Len()),
		CRC:     crc32.ChecksumIEEE(buf.Bytes()),
	}, nil
}

// writeManifestLocked persists the manifest atomically (tmp file,
// sync, rename). Callers hold s.mu (or own the store exclusively).
func (s *Store) writeManifestLocked() error {
	b, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(s.dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, manifestName))
}

func dataFileName(gen int) string {
	return fmt.Sprintf("blocks-%06d.dat", gen)
}

// Summary aggregates every stored entry through census.Summary
// aggregation: orbit stores report full-domain totals (each canonical
// representative weighted by its orbit size), full stores report plain
// counts over what is stored. Cached until the next write.
func (s *Store) Summary() (census.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.summary != nil {
		return *s.summary, nil
	}
	sum := census.NewSummary(s.man.N)
	for j := range s.man.Blocks {
		entries, err := s.blockEntriesLocked(j)
		if err != nil {
			return census.Summary{}, err
		}
		for _, be := range entries {
			var e census.Entry
			if err := json.Unmarshal(be.line, &e); err != nil {
				return census.Summary{}, fmt.Errorf("%w: entry %d: %v", ErrCorrupt, be.idx, err)
			}
			sum.Accumulate(&e)
		}
	}
	s.summary = &sum
	return sum, nil
}
