package store

// Range scans: ordered iteration over the stored entries of an index
// window, the substrate of the /v1/entries API. Blocks are inflated
// lazily in index order through the same cache point lookups use, and
// duplicate indices across overlapping blocks (PutNew appends beside
// merged ranges) fold to one line, so a scan sees exactly the store's
// logical entry sequence.

import (
	"bytes"
	"container/heap"
	"fmt"
)

// RangePage is one page of a range scan.
type RangePage struct {
	// Lines are copies of the raw stored JSON lines (no trailing
	// newline), in strictly increasing index order.
	Lines [][]byte
	// Indices[i] is the enumeration index of Lines[i].
	Indices []uint64
	// Next is the index to resume from; More reports whether entries
	// at Next and beyond may remain in [Next, to).
	Next uint64
	More bool
}

// Range returns up to limit stored entries with from <= index < to.
// limit <= 0 selects DefaultBlockEntries. The page's lines are copies:
// callers own them beyond the store's locks. A scan of an orbit store
// yields the stored canonical representatives (with their orbit
// sizes), not the rehydrated full domain.
func (s *Store) Range(from, to uint64, limit int) (RangePage, error) {
	if limit <= 0 {
		limit = DefaultBlockEntries
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	page := RangePage{Next: to}
	if from >= to || len(s.man.Blocks) == 0 {
		return page, nil
	}

	// Candidate blocks: those whose [First, Last] can intersect
	// [from, to). prefixMaxLast is monotone, so the first candidate is
	// a binary search; the last is bounded by First < to.
	blocks := s.man.Blocks
	lo, hi := 0, len(s.prefixMaxLast)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.prefixMaxLast[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}

	// Sweep candidates in index order: activate each block (inflate,
	// position its cursor) only once the scan reaches its First, pop
	// the smallest current index across active blocks. A page-limited
	// scan therefore inflates just the blocks it actually reads.
	var h scanHeap
	next := lo
	// activateOne admits the next candidate block, skipping those that
	// cannot intersect the window; false means no candidates remain.
	activateOne := func() (bool, error) {
		for next < len(blocks) && blocks[next].First < to {
			j := next
			next++
			if blocks[j].Last < from {
				continue
			}
			entries, err := s.blockEntriesLocked(j)
			if err != nil {
				return false, err
			}
			pos := 0
			for pos < len(entries) && entries[pos].idx < from {
				pos++
			}
			if pos < len(entries) && entries[pos].idx < to {
				heap.Push(&h, &scanCursor{entries: entries, pos: pos})
			}
			return true, nil
		}
		return false, nil
	}
	var last uint64
	var lastLine []byte
	haveLast := false
	for {
		if h.Len() == 0 {
			more, err := activateOne()
			if err != nil {
				return RangePage{}, err
			}
			if !more && h.Len() == 0 {
				break
			}
			continue
		}
		// Every block that could hold an entry below the current top
		// must be active before the top is emitted.
		for next < len(blocks) && blocks[next].First <= h[0].entries[h[0].pos].idx {
			if _, err := activateOne(); err != nil {
				return RangePage{}, err
			}
		}
		cur := h[0]
		be := cur.entries[cur.pos]
		cur.pos++
		if cur.pos < len(cur.entries) && cur.entries[cur.pos].idx < to {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if haveLast && be.idx == last {
			// Duplicate across overlapping blocks: the store invariant
			// says the bytes agree (merge and PutNew both enforce it),
			// so disagreement here is corruption, not a choice.
			if !bytes.Equal(be.line, lastLine) {
				return RangePage{}, fmt.Errorf("%w: blocks disagree on index %d", ErrCorrupt, be.idx)
			}
			continue
		}
		if haveLast && be.idx < last {
			return RangePage{}, fmt.Errorf("%w: unordered scan at index %d", ErrCorrupt, be.idx)
		}
		if len(page.Lines) >= limit {
			// One entry beyond the page proves there is more.
			page.Next, page.More = be.idx, true
			return page, nil
		}
		page.Lines = append(page.Lines, append([]byte(nil), be.line...))
		page.Indices = append(page.Indices, be.idx)
		last, lastLine, haveLast = be.idx, be.line, true
	}
	return page, nil
}

type scanCursor struct {
	entries []blockEntry
	pos     int
}

type scanHeap []*scanCursor

func (h scanHeap) Len() int { return len(h) }
func (h scanHeap) Less(i, j int) bool {
	return h[i].entries[h[i].pos].idx < h[j].entries[h[j].pos].idx
}
func (h scanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x any)   { *h = append(*h, x.(*scanCursor)) }
func (h *scanHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
