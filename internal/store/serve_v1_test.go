package store

// Tests for the v1 serving layer redesign: multi-store registry
// routing, batch classify, range pagination, API-key auth and rate
// limiting, and graceful drain of in-flight requests.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/census"
)

// buildStore merges one census shard into a fresh store under dir.
func buildStore(t *testing.T, dir string, n int, opts census.Options) (*Store, []census.Entry) {
	t.Helper()
	shard, entries := censusJSONL(t, dir, fmt.Sprintf("shard-n%d.jsonl", n), n, opts)
	st, err := Create(filepath.Join(dir, fmt.Sprintf("store-n%d", n)), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	return st, entries
}

// newTwoMountServer builds a registry serving n=3 (full) and n=4
// (orbit-reduced, bounded sweep) from one process.
func newTwoMountServer(t *testing.T, srvOpts ServerOptions) (*Server, []census.Entry, []census.Entry) {
	t.Helper()
	dir := t.TempDir()
	st3, ent3 := buildStore(t, dir, 3, census.Options{Workers: 1})
	st4, ent4 := buildStore(t, dir, 4, census.Options{Workers: 1, Orbits: true, ShardSize: 64, MaxIndices: 256})
	reg := NewRegistry()
	if err := reg.Mount("n3", st3); err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount("n4", st4); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(reg, srvOpts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ent3, ent4
}

// TestRegistryMounts: one mount per n is enforced, lookups route by n,
// and /v1/stores lists every mount.
func TestRegistryMounts(t *testing.T) {
	srv, _, ent4 := newTwoMountServer(t, ServerOptions{})

	// A second store of an already-mounted n is a configuration error.
	dir := t.TempDir()
	dup, err := Create(filepath.Join(dir, "dup"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer dup.Close()
	if err := srv.reg.Mount("dup", dup); err == nil {
		t.Fatal("mounting a second n=3 store succeeded")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stores storesResponse
	if code := getJSON(t, ts.URL+"/v1/stores", &stores); code != http.StatusOK {
		t.Fatalf("stores: HTTP %d", code)
	}
	if len(stores.Stores) != 2 || stores.Stores[0].N != 3 || stores.Stores[1].N != 4 {
		t.Fatalf("stores = %+v, want n=3 and n=4", stores.Stores)
	}
	if stores.Stores[0].Kind != "full" || stores.Stores[1].Kind != "orbit" {
		t.Fatalf("kinds = %q/%q, want full/orbit", stores.Stores[0].Kind, stores.Stores[1].Kind)
	}

	// Both mounts answer classifies from one process; the n=4 queries
	// target stored canonical indices, so they are store hits.
	var c3 classifyResponse
	if code := getJSON(t, ts.URL+"/v1/classify?n=3&index=5", &c3); code != http.StatusOK || c3.N != 3 {
		t.Fatalf("classify n=3: HTTP %d %+v", code, c3)
	}
	idx4 := ent4[len(ent4)/2].Index
	var c4 classifyResponse
	if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/classify?n=4&index=%d", idx4), &c4); code != http.StatusOK || c4.N != 4 {
		t.Fatalf("classify n=4: HTTP %d %+v", code, c4)
	}
	var health healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if len(health.Mounts) != 2 {
		t.Fatalf("healthz mounts = %v, want [3 4]", health.Mounts)
	}
}

// TestRegistryConcurrent hammers both mounts from many goroutines —
// the cross-mount -race test: shared tower cache, per-mount LRUs and
// presence filters, lazy state, all under concurrent load.
func TestRegistryConcurrent(t *testing.T) {
	srv, ent3, ent4 := newTwoMountServer(t, ServerOptions{CacheEntries: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("%s/v1/classify?n=3&index=%d", ts.URL, ent3[(w*13+i)%len(ent3)].Index)
				case 1:
					url = fmt.Sprintf("%s/v1/classify?n=4&index=%d", ts.URL, ent4[(w*7+i)%len(ent4)].Index)
				case 2:
					url = ts.URL + "/v1/stores"
				default:
					url = ts.URL + "/healthz"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServeBatchClassify: a POST batch answers exactly what N single
// GETs answer, entry for entry, byte for byte.
func TestServeBatchClassify(t *testing.T) {
	srv, _ := newTestServer(t, 3,
		census.Options{Workers: 1, Orbits: true, ShardSize: 16, MaxIndices: 64},
		ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mix of store hits, rehydrations, and live-computed misses.
	indices := []uint64{0, 1, 5, 17, 40, 63, 90, 126}

	type rawClassify struct {
		N      int             `json:"n"`
		Index  uint64          `json:"index"`
		Source string          `json:"source"`
		Entry  json.RawMessage `json:"entry"`
	}
	single := make([]rawClassify, len(indices))
	for i, idx := range indices {
		if code := getJSON(t, fmt.Sprintf("%s/v1/classify?n=3&index=%d", ts.URL, idx), &single[i]); code != http.StatusOK {
			t.Fatalf("GET classify %d: HTTP %d", idx, code)
		}
	}

	body, _ := json.Marshal(batchClassifyRequest{N: 3, Indices: indices})
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		N       int           `json:"n"`
		Results []rawClassify `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&batch)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST classify: HTTP %d err %v", resp.StatusCode, err)
	}
	if batch.N != 3 || len(batch.Results) != len(indices) {
		t.Fatalf("batch: n=%d results=%d, want n=3 results=%d", batch.N, len(batch.Results), len(indices))
	}
	for i, idx := range indices {
		got, want := batch.Results[i], single[i]
		if got.Index != idx || got.N != 3 {
			t.Errorf("batch[%d]: index=%d n=%d, want index=%d n=3", i, got.Index, got.N, idx)
		}
		var g, w bytes.Buffer
		json.Compact(&g, got.Entry)
		json.Compact(&w, want.Entry)
		if !bytes.Equal(g.Bytes(), w.Bytes()) {
			t.Errorf("batch[%d] index %d: entry differs from single GET\n batch: %s\n single: %s",
				i, idx, g.Bytes(), w.Bytes())
		}
	}

	// Oversized batches are rejected up front.
	big := make([]uint64, 0, 2000)
	for i := 0; i < 2000; i++ {
		big = append(big, uint64(i%127))
	}
	body, _ = json.Marshal(batchClassifyRequest{N: 3, Indices: big})
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServeEntriesPagination: the range scan pages cover the store
// exactly once across block boundaries, the empty window is empty, and
// the JSONL stream equals the paginated walk.
func TestServeEntriesPagination(t *testing.T) {
	srv, st := newTestServer(t, 3, census.Options{Workers: 1, ShardSize: 16}, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	total := st.Stats().Entries // 127 entries over 8 blocks

	// Page through the full domain with a limit that straddles blocks.
	var (
		got  []uint64
		from = uint64(0)
	)
	for {
		var page entriesResponse
		url := fmt.Sprintf("%s/v1/entries?n=3&from=%d&limit=10", ts.URL, from)
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", url, code)
		}
		if page.Count != len(page.Entries) {
			t.Fatalf("page count %d != %d entries", page.Count, len(page.Entries))
		}
		if !page.More && page.NextFrom != 0 {
			t.Fatalf("final page has next_from=%d", page.NextFrom)
		}
		for _, raw := range page.Entries {
			var e struct {
				Index uint64 `json:"index"`
			}
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatal(err)
			}
			got = append(got, e.Index)
		}
		if !page.More {
			break
		}
		if page.NextFrom <= from {
			t.Fatalf("next_from %d did not advance past %d", page.NextFrom, from)
		}
		from = page.NextFrom
	}
	if uint64(len(got)) != total {
		t.Fatalf("paginated walk saw %d entries, store holds %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("unordered or duplicated index %d after %d", got[i], got[i-1])
		}
	}

	// A sub-window returns exactly the entries inside it.
	var window entriesResponse
	if code := getJSON(t, ts.URL+"/v1/entries?n=3&from=20&to=53&limit=100", &window); code != http.StatusOK {
		t.Fatalf("window: HTTP %d", code)
	}
	if window.Count != 33 || window.More {
		t.Fatalf("window [20,53): count=%d more=%v, want 33 false", window.Count, window.More)
	}

	// The empty window is a valid, empty page.
	var empty entriesResponse
	if code := getJSON(t, ts.URL+"/v1/entries?n=3&from=5&to=5", &empty); code != http.StatusOK {
		t.Fatalf("empty window: HTTP %d", code)
	}
	if empty.Count != 0 || empty.More {
		t.Fatalf("empty window: count=%d more=%v", empty.Count, empty.More)
	}

	// The JSONL stream yields the same sequence in one response.
	resp, err := http.Get(ts.URL + "/v1/entries?n=3&format=jsonl&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("jsonl content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte{'\n'})
	if uint64(len(lines)) != total {
		t.Fatalf("jsonl stream has %d lines, want %d", len(lines), total)
	}
	var first struct {
		Index uint64 `json:"index"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Index != got[0] {
		t.Fatalf("jsonl first line index=%d err=%v, want %d", first.Index, err, got[0])
	}
}

// TestServeAuth: unknown keys get 401, over-limit keys get 429 with a
// Retry-After, good keys pass, and probe endpoints stay open.
func TestServeAuth(t *testing.T) {
	auth, err := NewAuthConfig([]APIKey{
		{Name: "ci", Key: "open-sesame"},
		{Name: "throttled", Key: "slow-key", RatePerSec: 0.0001, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1}, ServerOptions{Auth: auth})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(key, header string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+"/v1/classify?n=3&index=0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set(header, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := get("", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key: HTTP %d, want 401", resp.StatusCode)
	}
	if resp := get("wrong", "X-API-Key"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key: HTTP %d, want 401", resp.StatusCode)
	}
	if resp := get("Bearer open-sesame", "Authorization"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer key: HTTP %d, want 200", resp.StatusCode)
	}
	if resp := get("open-sesame", "X-API-Key"); resp.StatusCode != http.StatusOK {
		t.Fatalf("header key: HTTP %d, want 200", resp.StatusCode)
	}

	// The throttled key has burst 1 and a negligible refill: the first
	// request drains the bucket, the second is rate-limited.
	if resp := get("slow-key", "X-API-Key"); resp.StatusCode != http.StatusOK {
		t.Fatalf("throttled first: HTTP %d, want 200", resp.StatusCode)
	}
	resp := get("slow-key", "X-API-Key")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled second: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// The other key's budget is untouched.
	if resp := get("open-sesame", "X-API-Key"); resp.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled key after 429: HTTP %d, want 200", resp.StatusCode)
	}

	// Probes and scrapers are exempt.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without key: HTTP %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestServeDrain: SetDraining flips /readyz to 503 while in-flight
// requests run to completion under http.Server.Shutdown.
func TestServeDrain(t *testing.T) {
	srv, _ := newTestServer(t, 3, census.Options{Workers: 1}, ServerOptions{})

	release := make(chan struct{})
	started := make(chan struct{})
	inner := srv.Handler()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("slow") != "" {
			close(started)
			<-release // hold the request in flight across the drain
		}
		inner.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: slow}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	var ready map[string]string
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusOK || ready["status"] != "ready" {
		t.Fatalf("readyz before drain: HTTP %d %v", code, ready)
	}

	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/classify?n=3&index=7&slow=1")
		if err != nil {
			inflight <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request: HTTP %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	<-started

	// Drain: readiness flips immediately, the in-flight request keeps
	// running, and Shutdown returns once it completes.
	srv.SetDraining(true)
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusServiceUnavailable || ready["status"] != "draining" {
		t.Fatalf("readyz during drain: HTTP %d %v, want 503 draining", code, ready)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- hs.Shutdown(ctx) }()

	// Shutdown must not complete while the request is held open.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed across drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
}

// TestServeMetrics: the Prometheus exposition carries the store
// hit/miss counters and latency histograms after traffic.
func TestServeMetrics(t *testing.T) {
	srv, _ := newTestServer(t, 3,
		census.Options{Workers: 1, Orbits: true, ShardSize: 16, MaxIndices: 64},
		ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, idx := range []uint64{0, 0, 5, 90, 126} { // cache hit, store hits, computes
		resp, err := http.Get(fmt.Sprintf("%s/v1/classify?n=3&index=%d", ts.URL, idx))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d err %v", resp.StatusCode, err)
	}
	text := string(body)
	for _, want := range []string{
		"factool_requests_total",
		"factool_store_hits_total",
		"factool_store_misses_total",
		"factool_entry_cache_hits_total",
		"factool_request_seconds_bucket",
		"factool_request_seconds_count",
		"factool_store_entries",
		"factool_inflight_requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
