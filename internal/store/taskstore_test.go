package store

// Tests for the task dimension of the store and serve layers: the
// manifest's task commitment (PutNew/Merge kind guard, BindTaskSpec),
// verify's task-aware solve re-derivation, and a multi-task registry
// serving three specs side by side, cross-validated against known
// small-n solvability results.

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/census"
)

// taskShard sweeps a bounded prefix of the n=3 domain under the given
// options and returns the shard path plus the collected entries.
func taskShard(t *testing.T, dir, name string, opts census.Options) (string, []census.Entry) {
	t.Helper()
	opts.Workers = 1
	opts.ShardSize = 16
	if opts.MaxIndices == 0 {
		opts.MaxIndices = 48
	}
	return censusJSONL(t, dir, name, 3, opts)
}

// taskStore merges a bounded sweep into a fresh store.
func taskStore(t *testing.T, dir, name string, opts census.Options) (*Store, []census.Entry) {
	t.Helper()
	shard, entries := taskShard(t, dir, name+".jsonl", opts)
	st, err := Create(filepath.Join(dir, name), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	return st, entries
}

// TestTaskKindGuard is the acceptance criterion: stores commit to one
// task spec, and merging entries that answer a different task — or a
// kset solve shard into a task-bound store — fails with the kind
// guard, on both the Merge and PutNew paths.
func TestTaskKindGuard(t *testing.T) {
	dir := t.TempDir()
	// The shards are index-disjoint: overlapping indices would trip the
	// byte-conflict check before the task guard ever saw the entry.
	loopShard, loopEntries := taskShard(t, dir, "loop.jsonl", census.Options{Task: "loop-agreement", MaxIndices: 16})
	approxFull, _ := taskShard(t, dir, "approx-full.jsonl", census.Options{Task: "approx:eps=1", MaxIndices: 24})
	approxShard := splitJSONL(t, approxFull, filepath.Join(dir, "approx.jsonl"), 16, 24)
	ksetFull, ksetEntries := taskShard(t, dir, "kset-full.jsonl", census.Options{Solve: true, KTask: 1})
	ksetShard := splitJSONL(t, ksetFull, filepath.Join(dir, "kset.jsonl"), 16, 48)
	solvedKset := false
	for _, e := range ksetEntries[16:] {
		solvedKset = solvedKset || e.Solved
	}
	if !solvedKset {
		t.Fatal("kset shard tail has no solved entry — widen MaxIndices")
	}

	loopSt, err := Create(filepath.Join(dir, "loop-store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer loopSt.Close()
	if _, err := loopSt.Merge([]string{loopShard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := loopSt.Task(); got != "loop-agreement" {
		t.Fatalf("store task %q after loop merge, want loop-agreement", got)
	}
	if _, err := loopSt.Merge([]string{approxShard}, MergeOptions{}); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("approx shard into loop store: err %v, want ErrKindMismatch", err)
	}
	if _, err := loopSt.Merge([]string{ksetShard}, MergeOptions{}); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("kset solve shard into loop store: err %v, want ErrKindMismatch", err)
	}
	bad := loopEntries[0].Clone()
	bad.Task = "approx:eps=1"
	if _, err := loopSt.PutNew(bad); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("PutNew of an approx entry: err %v, want ErrKindMismatch", err)
	}

	// The reverse direction: a store holding kset solve entries rejects
	// task-stamped shards, and BindTaskSpec can only name the kset task
	// it already answers.
	ksetSt, err := Create(filepath.Join(dir, "kset-store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ksetSt.Close()
	if _, err := ksetSt.Merge([]string{ksetShard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ksetSt.Merge([]string{loopShard}, MergeOptions{}); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("loop shard into kset solve store: err %v, want ErrKindMismatch", err)
	}
	if err := ksetSt.BindTaskSpec("loop-agreement"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("binding loop-agreement onto a kset solve store: err %v, want ErrKindMismatch", err)
	}
	if err := ksetSt.BindTaskSpec("kset:k=1"); err != nil {
		t.Fatal(err)
	}
	if got := ksetSt.Task(); got != "kset:k=1" {
		t.Fatalf("bound task %q, want kset:k=1", got)
	}
	if err := ksetSt.BindTaskSpec("kset:k=1"); err != nil {
		t.Fatal("rebinding the same spec must be idempotent:", err)
	}
	if err := ksetSt.BindTaskSpec("kset:k=2"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("rebinding kset:k=2 over kset:k=1: err %v, want ErrKindMismatch", err)
	}
}

// TestVerifyTaskStore: verify re-derives solve entries under the
// manifest-recorded task — both a non-kset store (the task committed
// by its own entries) and a kset store after BindTaskSpec.
func TestVerifyTaskStore(t *testing.T) {
	dir := t.TempDir()
	loopSt, _ := taskStore(t, dir, "loop", census.Options{Task: "loop-agreement"})
	rep, err := loopSt.Verify(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("loop store verify problems: %v", rep.Problems)
	}
	if rep.Reclassified == 0 {
		t.Fatal("loop store verify re-derived no entries")
	}

	ksetSt, _ := taskStore(t, dir, "kset", census.Options{Solve: true, KTask: 1})
	if err := ksetSt.BindTaskSpec("kset:k=1"); err != nil {
		t.Fatal(err)
	}
	rep, err = ksetSt.Verify(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("bound kset store verify problems: %v", rep.Problems)
	}
	if rep.Reclassified == 0 {
		t.Fatal("bound kset store verify re-derived no entries")
	}
}

// TestServeMultiTask is the serving half of the acceptance criterion:
// one registry mounts a neutral classify store plus three task-bound
// stores of the same n, /v1/stores reports each spec, task parameters
// route classifies to the right mount, and /v1/solve decisions for
// three distinct specs match the known small-n results (consensus
// solvable only under 0-resilience, 2-set consensus under
// 1-resilience, 3-set consensus wait-free).
func TestServeMultiTask(t *testing.T) {
	dir := t.TempDir()
	neutral, _ := taskStore(t, dir, "neutral", census.Options{MaxIndices: 128})
	kset1, _ := taskStore(t, dir, "kset1", census.Options{Solve: true, KTask: 1})
	kset2, _ := taskStore(t, dir, "kset2", census.Options{Solve: true, KTask: 2})
	loopSt, loopEntries := taskStore(t, dir, "loop", census.Options{Task: "loop-agreement"})
	if err := kset1.BindTaskSpec("kset:k=1"); err != nil {
		t.Fatal(err)
	}
	if err := kset2.BindTaskSpec("kset:k=2"); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	for name, st := range map[string]*Store{
		"n3": neutral, "n3-kset1": kset1, "n3-kset2": kset2, "n3-loop": loopSt,
	} {
		if err := reg.Mount(name, st); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(reg, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stores storesResponse
	if code := getJSON(t, ts.URL+"/v1/stores", &stores); code != http.StatusOK {
		t.Fatalf("stores: HTTP %d", code)
	}
	tasks := map[string]bool{}
	for _, si := range stores.Stores {
		tasks[si.Task] = true
	}
	for _, want := range []string{"", "kset:k=1", "kset:k=2", "loop-agreement"} {
		if !tasks[want] {
			t.Fatalf("/v1/stores tasks %v missing %q", tasks, want)
		}
	}

	// No task parameter → the neutral classify mount; a task parameter
	// → the mount bound to that spec.
	var plain classifyResponse
	if code := getJSON(t, ts.URL+"/v1/classify?n=3&index=5", &plain); code != http.StatusOK {
		t.Fatalf("neutral classify: HTTP %d", code)
	}
	if plain.Entry.Solved || plain.Entry.Task != "" {
		t.Fatalf("neutral classify entry solved=%v task=%q, want a classify entry", plain.Entry.Solved, plain.Entry.Task)
	}
	var routed classifyResponse
	u := ts.URL + "/v1/classify?n=3&index=5&task=" + url.QueryEscape("loop-agreement")
	if code := getJSON(t, u, &routed); code != http.StatusOK {
		t.Fatalf("loop classify: HTTP %d", code)
	}
	if got, want := mustJSON(t, routed.Entry), mustJSON(t, &loopEntries[5]); got != want {
		t.Fatalf("loop-routed entry:\n%s\nwant the swept entry:\n%s", got, want)
	}
	var sum summaryResponse
	if code := getJSON(t, ts.URL+"/v1/summary?n=3&task="+url.QueryEscape("kset:k=2"), &sum); code != http.StatusOK {
		t.Fatalf("kset2 summary: HTTP %d", code)
	}

	// Known small-n results through /v1/solve, one per spec. The t-
	// resilient adversaries are the canonical test points: consensus is
	// solvable only with no failures, 2-set consensus tolerates one
	// (Chaudhuri), 3-set consensus is trivially wait-free solvable —
	// and wait-free 2-set consensus exceeds the round-1 search budget.
	idxT0 := adversary.EnumerationIndex(adversary.TResilient(3, 0))
	idxT1 := adversary.EnumerationIndex(adversary.TResilient(3, 1))
	idxT2 := adversary.EnumerationIndex(adversary.TResilient(3, 2))
	for _, tc := range []struct {
		query    string
		idx      uint64
		solvable bool
		wantTask string
		wantK    int
	}{
		{"task=consensus", idxT0, true, "consensus", 0},
		{"task=consensus", idxT1, false, "consensus", 0},
		{"task=consensus", idxT2, false, "consensus", 0},
		{"task=" + url.QueryEscape("kset:k=2"), idxT1, true, "", 2},
		{"ktask=3", idxT2, true, "", 3},
	} {
		var resp solveResponse
		u := fmt.Sprintf("%s/v1/solve?n=3&index=%d&%s", ts.URL, tc.idx, tc.query)
		if code := getJSON(t, u, &resp); code != http.StatusOK {
			t.Fatalf("solve %s idx=%d: HTTP %d", tc.query, tc.idx, code)
		}
		if !resp.Solved || resp.Solvable == nil || *resp.Solvable != tc.solvable {
			t.Fatalf("solve %s idx=%d: %+v, want solvable=%v", tc.query, tc.idx, resp, tc.solvable)
		}
		if resp.Task != tc.wantTask || resp.KTask != tc.wantK {
			t.Fatalf("solve %s idx=%d: task=%q k_task=%d, want %q/%d", tc.query, tc.idx, resp.Task, resp.KTask, tc.wantTask, tc.wantK)
		}
	}
	var und solveResponse
	u = fmt.Sprintf("%s/v1/solve?n=3&index=%d&task=%s", ts.URL, idxT2, url.QueryEscape("kset:k=2"))
	if code := getJSON(t, u, &und); code != http.StatusOK {
		t.Fatalf("wait-free kset2 solve: HTTP %d", code)
	}
	if !und.Undecided || und.Solvable != nil {
		t.Fatalf("wait-free 2-set consensus: %+v, want undecided", und)
	}

	// task and ktask are mutually exclusive; an unregistered spec is a
	// client error, not a routing miss.
	for _, q := range []string{"task=consensus&ktask=1", "task=no-such-task"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/solve?n=3&index=%d&%s", ts.URL, idxT0, q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("solve with %s: HTTP %d, want 400", q, resp.StatusCode)
		}
	}
}
