package store

// Merging census shards into a store: a streaming k-way merge over the
// store's existing blocks and any number of JSONL shard files (plain or
// gzip — the census -compress output), producing a fresh generation of
// sorted, non-overlapping compressed blocks. Overlapping and adjacent
// index ranges fold together; two sources disagreeing on the bytes of
// one index are a conflict, not a silent overwrite. Memory is bounded
// by one block per source plus the block being built — campaign-sized
// shards merge without materializing the domain.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// MergeStats reports what one merge did.
type MergeStats struct {
	Added      uint64 `json:"added"`      // entries new to the store
	Duplicates uint64 `json:"duplicates"` // identical entries seen in >1 source
	Total      uint64 `json:"total"`      // entries in the store afterwards
}

// MergeOptions tune a merge.
type MergeOptions struct {
	// BlockEntries is the number of entries per rewritten block.
	// <= 0 selects DefaultBlockEntries.
	BlockEntries int
}

// Merge folds the given shard files into the store. Shards must be
// census JSONL streams sorted by enumeration index (what JSONLSink
// emits); a ".gz" suffix or gzip magic selects transparent inflation.
// On success the store points at the merged generation; on error the
// store is left exactly as it was (the old manifest never references
// new-generation bytes).
func (s *Store) Merge(shardPaths []string, opts MergeOptions) (MergeStats, error) {
	blockEntries := opts.BlockEntries
	if blockEntries <= 0 {
		blockEntries = DefaultBlockEntries
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return MergeStats{}, fmt.Errorf("store: closed")
	}

	var sources []*mergeSource
	for j := range s.man.Blocks {
		sources = append(sources, &mergeSource{store: s, block: j, name: "store"})
	}
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, path := range shardPaths {
		src, err := openShardSource(path)
		if err != nil {
			return MergeStats{}, err
		}
		closers = append(closers, src)
		sources = append(sources, src.mergeSource)
	}

	gen := s.man.Generation + 1
	out, err := os.OpenFile(filepath.Join(s.dir, dataFileName(gen)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return MergeStats{}, err
	}
	newMan := manifest{
		Version:    formatVersion,
		N:          s.man.N,
		EntryKind:  s.man.EntryKind,
		Solve:      s.man.Solve,
		Task:       s.man.Task,
		Generation: gen,
		DataFile:   dataFileName(gen),
	}
	commit := false
	defer func() {
		out.Close()
		if !commit {
			os.Remove(filepath.Join(s.dir, dataFileName(gen)))
		}
	}()

	var h sourceHeap
	for _, src := range sources {
		ok, err := src.next()
		if err != nil {
			return MergeStats{}, err
		}
		if ok {
			h = append(h, src)
		}
	}
	heap.Init(&h)

	var stats MergeStats
	var block [][]byte
	var first, last uint64
	var off int64
	haveLast := false
	var lastLine []byte
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		meta, err := appendBlock(out, off, block, first, last)
		if err != nil {
			return err
		}
		off += meta.Size
		newMan.Blocks = append(newMan.Blocks, meta)
		block = block[:0]
		return nil
	}
	for h.Len() > 0 {
		src := h[0]
		idx, line := src.idx, src.line
		if ok, err := src.next(); err != nil {
			return MergeStats{}, err
		} else if ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if haveLast && idx == last {
			// Same index seen again (overlapping sources): must agree.
			if !bytes.Equal(line, lastLine) {
				return MergeStats{}, fmt.Errorf("%w: index %d (%s vs previous source)", ErrConflict, idx, src.name)
			}
			stats.Duplicates++
			continue
		}
		// Store-resident lines were admitted when first ingested; shard
		// lines are checked against (and commit) the store's kind once,
		// from the probe parsed during scanning — no reparse.
		if src.scan != nil {
			if err := admitKind(&newMan, src.orbit, idx); err != nil {
				return MergeStats{}, err
			}
			if err := admitTask(&newMan, src.task, src.solved, idx); err != nil {
				return MergeStats{}, err
			}
			if src.solved {
				newMan.Solve = true
			}
		}
		cp := append([]byte(nil), line...)
		if len(block) == 0 {
			first = idx
		}
		block = append(block, cp)
		last, lastLine, haveLast = idx, cp, true
		stats.Total++
		if len(block) >= blockEntries {
			if err := flush(); err != nil {
				return MergeStats{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return MergeStats{}, err
	}
	if err := out.Sync(); err != nil {
		return MergeStats{}, err
	}

	// Commit: the manifest rename is the atomic switch to the new
	// generation; only then does the old data file go away.
	oldData := s.man.DataFile
	oldMan := s.man
	s.man = newMan
	if err := s.writeManifestLocked(); err != nil {
		s.man = oldMan
		return MergeStats{}, err
	}
	commit = true
	s.data.Close()
	s.data = out
	out = nil // keep the deferred Close from closing the live handle
	if oldData != newMan.DataFile {
		os.Remove(filepath.Join(s.dir, oldData))
	}
	s.dropCacheLocked() // offsets now name bytes of the new generation
	s.reindexLocked()
	s.presence = nil // entry set changed wholesale; reload to re-arm
	// Added = growth over what the store already held.
	var resident uint64
	for _, b := range oldMan.Blocks {
		resident += uint64(b.Entries)
	}
	stats.Added = stats.Total - resident
	return stats, nil
}

// mergeSource yields (index, line) pairs in increasing index order from
// either a store block or a shard scanner.
type mergeSource struct {
	name string

	// Store-block source.
	store   *Store
	block   int
	entries []blockEntry
	pos     int

	// Shard source.
	scan *bufio.Scanner

	idx     uint64
	line    []byte
	orbit   bool   // shard lines: entry carries an orbit size
	solved  bool   // shard lines: entry carries solve results
	task    string // shard lines: task spec the entry answers ("" = kset/classify)
	started bool
}

// lineProbe extracts the merge-relevant fields of a census JSON line
// in one parse.
type lineProbe struct {
	Index     uint64 `json:"index"`
	OrbitSize uint64 `json:"orbit_size"`
	Solved    bool   `json:"solved"`
	Task      string `json:"task"`
}

// next advances to the following entry; false means exhausted.
func (m *mergeSource) next() (bool, error) {
	prev, had := m.idx, m.started
	switch {
	case m.store != nil:
		if m.entries == nil {
			entries, err := m.store.readBlockLocked(m.store.man.Blocks[m.block])
			if err != nil {
				return false, err
			}
			m.entries = entries
		}
		if m.pos >= len(m.entries) {
			return false, nil
		}
		m.idx, m.line = m.entries[m.pos].idx, m.entries[m.pos].line
		m.pos++
	default:
		if !m.scan.Scan() {
			if err := m.scan.Err(); err != nil {
				return false, fmt.Errorf("store: read shard %s: %w", m.name, err)
			}
			return false, nil
		}
		line := m.scan.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			return m.next()
		}
		var probe lineProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return false, fmt.Errorf("store: shard %s: %w", m.name, err)
		}
		m.idx, m.line = probe.Index, append([]byte(nil), line...)
		m.orbit, m.solved, m.task = probe.OrbitSize > 0, probe.Solved, probe.Task
	}
	if had && m.idx < prev {
		return false, fmt.Errorf("store: source %s is not sorted by index (%d after %d)", m.name, m.idx, prev)
	}
	m.started = true
	return true, nil
}

// shardSource is a mergeSource over an open shard file.
type shardSource struct {
	*mergeSource
	f  *os.File
	zr *gzip.Reader
}

func (s *shardSource) Close() error {
	if s.zr != nil {
		s.zr.Close()
	}
	return s.f.Close()
}

// openShardSource opens a JSONL shard, inflating gzip transparently
// (by suffix or magic bytes).
func openShardSource(path string) (*shardSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open shard: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var r io.Reader = br
	src := &shardSource{f: f}
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: shard %s: %w", path, err)
		}
		src.zr = zr
		r = zr
	}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 1<<16), 1<<24)
	src.mergeSource = &mergeSource{name: filepath.Base(path), scan: scan}
	return src, nil
}

// sourceHeap is a min-heap of merge sources by current index (name as
// tiebreak for determinism).
type sourceHeap []*mergeSource

func (h sourceHeap) Len() int { return len(h) }
func (h sourceHeap) Less(i, j int) bool {
	if h[i].idx != h[j].idx {
		return h[i].idx < h[j].idx
	}
	return h[i].name < h[j].name
}
func (h sourceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sourceHeap) Push(x any)   { *h = append(*h, x.(*mergeSource)) }
func (h *sourceHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// admitKind commits the merged manifest to the entry kind of the first
// entry and rejects mixing orbit-reduced and full-sweep entries.
func admitKind(man *manifest, orbit bool, idx uint64) error {
	kind := kindFull
	if orbit {
		kind = kindOrbit
	}
	switch man.EntryKind {
	case kindUnknown:
		man.EntryKind = kind
		return nil
	case kind:
		return nil
	default:
		return fmt.Errorf("%w: store holds %s entries, shard entry %d is %s",
			ErrKindMismatch, man.EntryKind, idx, kind)
	}
}
