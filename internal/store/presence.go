package store

// Presence filter: a per-store summary of which enumeration indices are
// stored, consulted before the sparse index so a definite miss skips
// manifest probing and block inflation entirely. Small domains (n <= 4
// comfortably, and anything up to presenceBitmapMax bits) get an exact
// bitmap; larger domains get a Bloom filter sized from the store's
// entry count — no false negatives in either form, so the filter is
// transparent to lookup semantics and only trims work on misses.

import "sync/atomic"

const (
	// presenceBitmapMax bounds the exact-bitmap form: domains up to
	// 2^26 indices cost at most 8 MiB of bits.
	presenceBitmapMax = 1 << 26

	// presenceBloomBitsPerEntry sizes the Bloom form (~10 bits/entry
	// with 4 hashes gives ~1-2% false positives).
	presenceBloomBitsPerEntry = 10
	presenceBloomHashes       = 4
	presenceBloomMinBits      = 1 << 12
)

// presenceFilter answers "might index i be stored?" with no false
// negatives. Writes happen under the store mutex; reads are lock-free
// on an immutable word slice via atomic bit loads.
type presenceFilter struct {
	exact bool
	words []atomic.Uint64
	mask  uint64 // bloom: len(words)*64 - 1 (power of two bits)
}

// newPresenceFilter sizes a filter for a domain of the given size
// holding about entries stored indices.
func newPresenceFilter(domain, entries uint64) *presenceFilter {
	if domain <= presenceBitmapMax {
		return &presenceFilter{
			exact: true,
			words: make([]atomic.Uint64, (domain+63)/64),
		}
	}
	bits := uint64(presenceBloomMinBits)
	for bits < entries*presenceBloomBitsPerEntry {
		bits <<= 1
	}
	return &presenceFilter{
		words: make([]atomic.Uint64, bits/64),
		mask:  bits - 1,
	}
}

// mix is a splitmix64-style finalizer: the Bloom probe sequence derives
// from successive odd multiples of the mixed index.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (p *presenceFilter) add(idx uint64) {
	if p.exact {
		w := &p.words[idx/64]
		for {
			old := w.Load()
			if w.CompareAndSwap(old, old|1<<(idx%64)) {
				return
			}
		}
	}
	h := mix(idx)
	d := mix(idx ^ 0x9e3779b97f4a7c15)
	for i := 0; i < presenceBloomHashes; i++ {
		bit := (h + uint64(i)*d) & p.mask
		w := &p.words[bit/64]
		for {
			old := w.Load()
			if w.CompareAndSwap(old, old|1<<(bit%64)) {
				break
			}
		}
	}
}

// mayContain reports whether idx could be stored. False is definitive.
func (p *presenceFilter) mayContain(idx uint64) bool {
	if p.exact {
		return p.words[idx/64].Load()&(1<<(idx%64)) != 0
	}
	h := mix(idx)
	d := mix(idx ^ 0x9e3779b97f4a7c15)
	for i := 0; i < presenceBloomHashes; i++ {
		bit := (h + uint64(i)*d) & p.mask
		if p.words[bit/64].Load()&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// LoadPresence builds (or rebuilds) the store's presence filter by one
// walk over every block. Lookups afterwards answer definite misses
// without touching the sparse index or inflating blocks; PutNew keeps
// the filter current. The serving layer loads one per mounted store.
func (s *Store) LoadPresence() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var entries uint64
	for _, b := range s.man.Blocks {
		entries += uint64(b.Entries)
	}
	p := newPresenceFilter(s.domainSizeLocked(), entries)
	for j := range s.man.Blocks {
		blk, err := s.blockEntriesLocked(j)
		if err != nil {
			return err
		}
		for _, be := range blk {
			p.add(be.idx)
		}
	}
	s.presence = p
	return nil
}

// PresenceSkips reports how many lookups the presence filter answered
// as definite misses without touching block data.
func (s *Store) PresenceSkips() uint64 {
	return s.presenceSkips.Load()
}
