package store

// The HTTP query layer over a census store: `factool serve`. Queries
// resolve store-first through an in-memory LRU; a miss falls back to
// live computation on the census examination path (sharing
// chromatic.SharedUniverse(n) and a byte-budgeted TowerCache across all
// requests) and persists the computed answer back to the store, so the
// store converges toward the queried working set instead of recomputing
// it per request.
//
//	GET /v1/classify?n=N&index=I   one adversary's census entry
//	GET /v1/summary?n=N            aggregate over the whole store
//	GET /v1/solve?n=N&index=I&ktask=K[&rounds=L]   live FACT decision
//	GET /healthz                   liveness + counters
//
// Handlers are safe for arbitrary concurrency: the store serializes
// block access internally, the LRU has its own lock, and the live
// examiner is concurrency-safe by construction.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/census"
	"repro/internal/chromatic"
)

// ServerOptions tune the query layer.
type ServerOptions struct {
	// CacheEntries bounds the in-memory entry LRU. <= 0 selects 4096.
	CacheEntries int

	// CacheBytes budgets the live-solve tower cache (LRU eviction).
	// <= 0 means unbounded.
	CacheBytes int64

	// MaxRounds bounds /v1/solve searches when the request does not
	// pass rounds=. <= 0 selects 1.
	MaxRounds int

	// ReadOnly disables the write-back of computed entries.
	ReadOnly bool
}

// Server answers census queries from a store. Create with NewServer,
// mount Handler on any mux or http.Server.
type Server struct {
	st     *Store
	n      int
	orbits *adversary.Orbits
	opts   ServerOptions

	classify *census.Examiner
	universe *chromatic.Universe
	tcache   *chromatic.TowerCache

	lru *entryLRU

	// Counters (atomic): surfaced on /healthz.
	requests   atomic.Uint64
	cacheHits  atomic.Uint64
	storeHits  atomic.Uint64
	rehydrated atomic.Uint64
	computed   atomic.Uint64
	persisted  atomic.Uint64
}

// NewServer builds the query layer over an open store.
func NewServer(st *Store, opts ServerOptions) (*Server, error) {
	n := st.N()
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1
	}
	universe := chromatic.SharedUniverse(n)
	var tcache *chromatic.TowerCache
	if opts.CacheBytes > 0 {
		tcache = chromatic.NewTowerCacheWithBudget(opts.CacheBytes)
	} else {
		tcache = chromatic.NewTowerCache()
	}
	classify, err := census.NewExaminer(n, census.Options{Universe: universe, Cache: tcache})
	if err != nil {
		return nil, err
	}
	return &Server{
		st:       st,
		n:        n,
		orbits:   adversary.NewOrbits(n),
		opts:     opts,
		classify: classify,
		universe: universe,
		tcache:   tcache,
		lru:      newEntryLRU(opts.CacheEntries),
	}, nil
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/summary", s.handleSummary)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// httpError is the JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// params parses and validates the n (must match the store) and, when
// wantIndex, the index query parameters.
func (s *Server) params(w http.ResponseWriter, r *http.Request, wantIndex bool) (idx uint64, ok bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return 0, false
	}
	nStr := r.URL.Query().Get("n")
	if nStr == "" {
		httpError(w, http.StatusBadRequest, "missing n parameter (this store serves n=%d)", s.n)
		return 0, false
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n != s.n {
		httpError(w, http.StatusBadRequest, "n=%s not served: this store holds the n=%d census", nStr, s.n)
		return 0, false
	}
	if !wantIndex {
		return 0, true
	}
	idxStr := r.URL.Query().Get("index")
	if idxStr == "" {
		httpError(w, http.StatusBadRequest, "missing index parameter")
		return 0, false
	}
	idx, err = strconv.ParseUint(idxStr, 10, 64)
	if err != nil || idx >= adversary.CensusSize(s.n) {
		httpError(w, http.StatusBadRequest, "index %s outside the n=%d domain [0, %d)",
			idxStr, s.n, adversary.CensusSize(s.n))
		return 0, false
	}
	return idx, true
}

// classifyResponse is the /v1/classify envelope.
type classifyResponse struct {
	N      int           `json:"n"`
	Index  uint64        `json:"index"`
	Source string        `json:"source"` // cache | store | store-rehydrated | computed
	Entry  *census.Entry `json:"entry"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	idx, ok := s.params(w, r, true)
	if !ok {
		return
	}
	e, source, err := s.classifyIndex(idx)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "classify %d: %v", idx, err)
		return
	}
	writeJSON(w, classifyResponse{N: s.n, Index: idx, Source: source, Entry: e})
}

// classifyIndex resolves one index: LRU, store (orbit-aware), then live
// computation with write-back.
func (s *Server) classifyIndex(idx uint64) (*census.Entry, string, error) {
	if e, ok := s.lru.get(idx); ok {
		s.cacheHits.Add(1)
		return e, "cache", nil
	}
	e, src, err := s.st.Lookup(idx, s.orbits)
	if err != nil {
		return nil, "", err
	}
	switch src {
	case LookupDirect:
		s.storeHits.Add(1)
		e = stripOrbitSize(e)
		s.lru.put(idx, e)
		return e, "store", nil
	case LookupRehydrated:
		s.rehydrated.Add(1)
		s.lru.put(idx, e)
		return e, "store-rehydrated", nil
	}
	// Miss: compute live, persist the canonical form the store's kind
	// expects, answer for the queried index. Solve-mode stores get no
	// write-back: the sweep's (k, rounds) configuration is not
	// recoverable, so a classify-only entry would conflict with the
	// completed sweep's bytes on a later merge.
	s.computed.Add(1)
	e, persist, err := s.computeEntry(idx)
	if err != nil {
		return nil, "", err
	}
	if !s.opts.ReadOnly && !s.st.SolveMode() {
		if added, err := s.st.PutNew(persist); err != nil {
			return nil, "", err
		} else if added {
			s.persisted.Add(1)
		}
	}
	s.lru.put(idx, e)
	return e, "computed", nil
}

// computeEntry classifies idx on the live path. For orbit stores the
// persisted form is the orbit's canonical representative (carrying its
// orbit size, so store aggregates stay orbit-weighted); the response
// entry is always the queried index's own.
func (s *Server) computeEntry(idx uint64) (respond, persist *census.Entry, err error) {
	if s.st.Orbits() {
		canon, size, perm := s.orbits.CanonicalWithWitness(idx)
		ce, err := s.classify.Examine(canon)
		if err != nil {
			return nil, nil, err
		}
		ce.OrbitSize = size
		persist = &ce
		if canon == idx {
			return stripOrbitSize(&ce), persist, nil
		}
		respond, err = rehydrateWith(s.n, persist, idx, perm)
		if err != nil {
			return nil, nil, err
		}
		return respond, persist, nil
	}
	e, err := s.classify.Examine(idx)
	if err != nil {
		return nil, nil, err
	}
	return &e, &e, nil
}

// summaryResponse is the /v1/summary envelope.
type summaryResponse struct {
	N       int            `json:"n"`
	Summary census.Summary `json:"summary"`
	Store   Stats          `json:"store"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if _, ok := s.params(w, r, false); !ok {
		return
	}
	sum, err := s.st.Summary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "summary: %v", err)
		return
	}
	writeJSON(w, summaryResponse{N: s.n, Summary: sum, Store: s.st.Stats()})
}

// solveResponse is the /v1/solve envelope.
type solveResponse struct {
	N         int    `json:"n"`
	Index     uint64 `json:"index"`
	Adversary string `json:"adversary"`
	Fair      bool   `json:"fair"`
	Setcon    int    `json:"setcon"`
	KTask     int    `json:"k_task"`
	MaxRounds int    `json:"max_rounds"`
	Solved    bool   `json:"solved"`
	Solvable  *bool  `json:"solvable,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	RAFacets  int    `json:"ra_facets,omitempty"`
	Undecided bool   `json:"undecided,omitempty"`
	Source    string `json:"source"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	idx, ok := s.params(w, r, true)
	if !ok {
		return
	}
	q := r.URL.Query()
	kTask := 1
	if v := q.Get("ktask"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 1 || k > s.n {
			httpError(w, http.StatusBadRequest, "ktask %q outside [1, %d]", v, s.n)
			return
		}
		kTask = k
	}
	maxRounds := s.opts.MaxRounds
	if v := q.Get("rounds"); v != "" {
		l, err := strconv.Atoi(v)
		if err != nil || l < 1 || l > 4 {
			httpError(w, http.StatusBadRequest, "rounds %q outside [1, 4]", v)
			return
		}
		maxRounds = l
	}
	// Always a live decision over the shared universe and tower cache:
	// store entries only memoize the census' own solve configuration,
	// while /v1/solve answers for any (ktask, rounds).
	ex, err := census.NewExaminer(s.n, census.Options{
		Solve: true, KTask: kTask, MaxRounds: maxRounds,
		Universe: s.universe, Cache: s.tcache,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "solve: %v", err)
		return
	}
	s.computed.Add(1)
	e, err := ex.Examine(idx)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "solve %d: %v", idx, err)
		return
	}
	writeJSON(w, solveResponse{
		N: s.n, Index: idx, Adversary: e.Adversary,
		Fair: e.Fair, Setcon: e.Setcon,
		KTask: kTask, MaxRounds: maxRounds,
		Solved: e.Solved, Solvable: e.Solvable, Rounds: e.Rounds,
		RAFacets: e.RAFacets, Undecided: e.Undecided,
		Source: "computed",
	})
}

// healthzResponse is the /healthz envelope.
type healthzResponse struct {
	Status     string `json:"status"`
	N          int    `json:"n"`
	Store      Stats  `json:"store"`
	Requests   uint64 `json:"requests"`
	CacheHits  uint64 `json:"cache_hits"`
	StoreHits  uint64 `json:"store_hits"`
	Rehydrated uint64 `json:"rehydrated"`
	Computed   uint64 `json:"computed"`
	Persisted  uint64 `json:"persisted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthzResponse{
		Status: "ok", N: s.n, Store: s.st.Stats(),
		Requests:   s.requests.Load(),
		CacheHits:  s.cacheHits.Load(),
		StoreHits:  s.storeHits.Load(),
		Rehydrated: s.rehydrated.Load(),
		Computed:   s.computed.Load(),
		Persisted:  s.persisted.Load(),
	})
}

// stripOrbitSize normalizes a stored entry for query responses: the
// orbit size is sweep metadata of orbit-reduced stores, not part of the
// adversary's census record, so /v1/classify answers are byte-identical
// to a full sweep's entries whatever store kind backs them.
func stripOrbitSize(e *census.Entry) *census.Entry {
	if e.OrbitSize == 0 {
		return e
	}
	cp := e.Clone()
	cp.OrbitSize = 0
	return cp
}

// entryLRU is a bounded index → entry cache. Entries are stored and
// returned as clones, so callers never share mutable state.
type entryLRU struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*list.Element
	order *list.List // front = most recent
}

type lruItem struct {
	idx uint64
	e   *census.Entry
}

func newEntryLRU(capacity int) *entryLRU {
	return &entryLRU{
		cap:   capacity,
		items: make(map[uint64]*list.Element, capacity),
		order: list.New(),
	}
}

func (l *entryLRU) get(idx uint64) (*census.Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[idx]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruItem).e.Clone(), true
}

func (l *entryLRU) put(idx uint64, e *census.Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[idx]; ok {
		el.Value.(*lruItem).e = e.Clone()
		l.order.MoveToFront(el)
		return
	}
	l.items[idx] = l.order.PushFront(&lruItem{idx: idx, e: e.Clone()})
	for l.order.Len() > l.cap {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.items, back.Value.(*lruItem).idx)
	}
}
