package store

// The v1 HTTP serving layer over a registry of census stores: one
// process mounts a store per (n, task) and answers the whole API for
// all of them. Queries resolve store-first through a per-mount entry
// LRU and presence filter; a miss falls back to live computation on
// the census examination path (all mounts share one byte-budgeted
// TowerCache; each mount shares chromatic.SharedUniverse(n)) and
// persists the computed answer back to its store. Read queries take an
// optional task=<spec> parameter routing to the mount answering that
// task; without it the task-neutral (or sole) mount of the n answers.
//
//	GET  /v1/classify?n=N&index=I[&task=S]  one adversary's census entry
//	POST /v1/classify                   bulk: {"n":N,"indices":[...]}
//	GET  /v1/entries?n=N&from=A&to=B    range scan (paginated JSON, or
//	                                    format=jsonl streaming)
//	GET  /v1/summary?n=N                aggregate over a mounted store
//	GET  /v1/solve?n=N&index=I&task=S[&rounds=L]  live FACT decision
//	                                    (ktask=K selects kset:k=K)
//	GET  /v1/stores                     the mounted stores + task specs
//	GET  /healthz                       liveness + counters
//	GET  /readyz                        readiness (503 while draining)
//	GET  /metrics                       Prometheus text exposition
//
// Every response carries an X-Request-Id; errors use one JSON envelope
//
//	{"error":{"code":400,"message":"...","request_id":"..."}}
//
// while success bodies for /v1/classify entries stay byte-identical to
// `factool census -json` entries whatever store kind backs them.
// Optional API-key auth (ServerOptions.Auth) answers 401 for unknown
// keys and 429 for over-limit ones; /healthz, /readyz and /metrics
// stay open for probes and scrapers. Handlers are safe for arbitrary
// concurrency.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/api"
	"repro/internal/census"
	"repro/internal/chromatic"
	"repro/internal/tasks"
)

// ServerOptions tune the serving layer.
type ServerOptions struct {
	// CacheEntries bounds each mount's in-memory entry LRU. <= 0
	// selects 4096.
	CacheEntries int

	// CacheBytes budgets the live-solve tower cache shared by every
	// mount (LRU eviction). <= 0 means unbounded.
	CacheBytes int64

	// MaxRounds bounds /v1/solve searches when the request does not
	// pass rounds=. <= 0 selects 1.
	MaxRounds int

	// ReadOnly disables the write-back of computed entries.
	ReadOnly bool

	// Auth, when non-nil, requires a valid API key on every /v1
	// request and rate-limits per key. Nil serves openly.
	Auth *AuthConfig

	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog io.Writer

	// MaxRangeLimit caps the limit parameter of /v1/entries pages.
	// <= 0 selects 4096.
	MaxRangeLimit int

	// MaxBatch caps the indices of one bulk classify. <= 0 selects 1024.
	MaxBatch int

	// SkipPresence skips building the per-mount presence filters (a
	// full block walk per store at startup).
	SkipPresence bool
}

// Server answers census queries for every store mounted in a registry.
// Create with NewServer (or NewSingleServer for one store), mount
// Handler on any mux or http.Server.
type Server struct {
	reg    *Registry
	opts   ServerOptions
	tcache *chromatic.TowerCache
	m      *metrics
	mw     *api.Middleware

	mu     sync.RWMutex
	states map[mountKey]*mountState

	started time.Time

	ready    atomic.Bool
	draining atomic.Bool

	// Aggregate counters across mounts (surfaced on /healthz; the
	// per-n breakdown lives in /metrics).
	requests   atomic.Uint64
	cacheHits  atomic.Uint64
	storeHits  atomic.Uint64
	rehydrated atomic.Uint64
	computed   atomic.Uint64
	persisted  atomic.Uint64
}

// mountState is the per-mount serving machinery.
type mountState struct {
	mount    *Mount
	nLabel   string
	orbits   *adversary.Orbits
	classify *census.Examiner
	universe *chromatic.Universe
	lru      *entryLRU
}

// NewServer builds the serving layer over a registry. Presence filters
// are built per mount (one block walk each) unless SkipPresence; the
// registry may gain mounts later, which lazily get their serving state
// (and presence) on first query.
func NewServer(reg *Registry, opts ServerOptions) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("store: nil registry")
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1
	}
	if opts.MaxRangeLimit <= 0 {
		opts.MaxRangeLimit = 4096
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	var tcache *chromatic.TowerCache
	if opts.CacheBytes > 0 {
		tcache = chromatic.NewTowerCacheWithBudget(opts.CacheBytes)
	} else {
		tcache = chromatic.NewTowerCache()
	}
	s := &Server{
		reg:     reg,
		opts:    opts,
		tcache:  tcache,
		m:       newMetrics(),
		states:  make(map[mountKey]*mountState),
		started: time.Now(),
	}
	s.mw = api.NewMiddleware(api.MiddlewareOptions{
		Metrics:   s.m.http,
		Auth:      opts.Auth,
		AccessLog: opts.AccessLog,
	})
	for _, mt := range reg.Mounts() {
		if _, err := s.state(mt.N(), mt.Task()); err != nil {
			return nil, err
		}
	}
	s.ready.Store(true)
	return s, nil
}

// state returns (building lazily) the serving state of the mount for
// (n, canonical task spec); an empty task selects the registry's
// defaulting (the task-neutral or sole mount of that n).
func (s *Server) state(n int, task string) (*mountState, error) {
	mt, ok := s.reg.GetTask(n, task)
	if !ok {
		return nil, nil
	}
	// Key by the mount's own identity: the defaulted lookup for task ""
	// may resolve to a task-specific mount.
	key := mountKey{n: mt.N(), task: mt.Task()}
	s.mu.RLock()
	ms, ok := s.states[key]
	s.mu.RUnlock()
	if ok {
		return ms, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ms, ok := s.states[key]; ok {
		return ms, nil
	}
	universe := chromatic.SharedUniverse(n)
	classify, err := census.NewExaminer(n, census.Options{Universe: universe, Cache: s.tcache})
	if err != nil {
		return nil, err
	}
	if !s.opts.SkipPresence {
		if err := mt.Store().LoadPresence(); err != nil {
			return nil, err
		}
	}
	ms = &mountState{
		mount:    mt,
		nLabel:   strconv.Itoa(n),
		orbits:   adversary.NewOrbits(n),
		classify: classify,
		universe: universe,
		lru:      newEntryLRU(s.opts.CacheEntries),
	}
	s.states[key] = ms
	return ms, nil
}

// SetDraining flips readiness: /readyz answers 503 while true, so load
// balancers stop routing before the listener drains.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the HTTP handler serving the API, wrapped in the
// request-id / metrics / logging / auth middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/entries", s.handleEntries)
	mux.HandleFunc("/v1/summary", s.handleSummary)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/stores", s.handleStores)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.mw.Wrap(mux)
}

// mountFor routes a request's (n, optional task) parameters to its
// serving state, answering the envelope for missing/invalid/unmounted
// combinations. The task spec is canonicalized before lookup, so
// "kset" and "kset:k=1" route to the same mount.
func (s *Server) mountFor(w http.ResponseWriter, r *http.Request, nStr, taskStr string) (*mountState, bool) {
	if nStr == "" {
		api.Error(w, r, http.StatusBadRequest, "missing n parameter (mounted: n=%v)", s.reg.Ns())
		return nil, false
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		api.Error(w, r, http.StatusBadRequest, "bad n %q", nStr)
		return nil, false
	}
	task := ""
	if taskStr != "" {
		spec, err := tasks.ParseSpec(taskStr)
		if err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad task %q: %v", taskStr, err)
			return nil, false
		}
		task = spec.String()
	}
	ms, err := s.state(n, task)
	if err != nil {
		api.Error(w, r, http.StatusInternalServerError, "mount n=%d: %v", n, err)
		return nil, false
	}
	if ms == nil {
		if task != "" {
			api.Error(w, r, http.StatusNotFound, "n=%d task %s not mounted (mounted: n=%v)", n, task, s.reg.Ns())
			return nil, false
		}
		api.Error(w, r, http.StatusNotFound, "n=%d not mounted (mounted: n=%v)", n, s.reg.Ns())
		return nil, false
	}
	return ms, true
}

// parseIndex validates one index against the mount's domain.
func (ms *mountState) parseIndex(w http.ResponseWriter, r *http.Request, idxStr string) (uint64, bool) {
	if idxStr == "" {
		api.Error(w, r, http.StatusBadRequest, "missing index parameter")
		return 0, false
	}
	idx, err := strconv.ParseUint(idxStr, 10, 64)
	if err != nil || idx >= adversary.CensusSize(ms.mount.N()) {
		api.Error(w, r, http.StatusBadRequest, "index %s outside the n=%d domain [0, %d)",
			idxStr, ms.mount.N(), adversary.CensusSize(ms.mount.N()))
		return 0, false
	}
	return idx, true
}

// classifyResponse is the GET /v1/classify envelope.
type classifyResponse struct {
	N      int           `json:"n"`
	Index  uint64        `json:"index"`
	Source string        `json:"source"` // cache | store | store-rehydrated | computed
	Entry  *census.Entry `json:"entry"`
}

// batchClassifyRequest is the POST /v1/classify body. Task optionally
// routes to the mount answering that spec, like GET's task parameter.
type batchClassifyRequest struct {
	N       int      `json:"n"`
	Task    string   `json:"task,omitempty"`
	Indices []uint64 `json:"indices"`
}

// batchClassifyResponse is the POST /v1/classify envelope: results in
// request order, each result exactly the GET envelope for that index.
type batchClassifyResponse struct {
	N       int                `json:"n"`
	Results []classifyResponse `json:"results"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		ms, ok := s.mountFor(w, r, r.URL.Query().Get("n"), r.URL.Query().Get("task"))
		if !ok {
			return
		}
		idx, ok := ms.parseIndex(w, r, r.URL.Query().Get("index"))
		if !ok {
			return
		}
		e, source, err := s.classifyIndex(ms, idx)
		if err != nil {
			api.Error(w, r, http.StatusInternalServerError, "classify %d: %v", idx, err)
			return
		}
		api.WriteJSON(w, classifyResponse{N: ms.mount.N(), Index: idx, Source: source, Entry: e})
	case http.MethodPost:
		var req batchClassifyRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		ms, ok := s.mountFor(w, r, strconv.Itoa(req.N), req.Task)
		if !ok {
			return
		}
		if len(req.Indices) == 0 {
			api.Error(w, r, http.StatusBadRequest, "empty indices")
			return
		}
		if len(req.Indices) > s.opts.MaxBatch {
			api.Error(w, r, http.StatusBadRequest, "%d indices exceed the batch cap %d", len(req.Indices), s.opts.MaxBatch)
			return
		}
		domain := adversary.CensusSize(ms.mount.N())
		for _, idx := range req.Indices {
			if idx >= domain {
				api.Error(w, r, http.StatusBadRequest, "index %d outside the n=%d domain [0, %d)", idx, ms.mount.N(), domain)
				return
			}
		}
		resp := batchClassifyResponse{N: ms.mount.N(), Results: make([]classifyResponse, len(req.Indices))}
		for i, idx := range req.Indices {
			e, source, err := s.classifyIndex(ms, idx)
			if err != nil {
				api.Error(w, r, http.StatusInternalServerError, "classify %d: %v", idx, err)
				return
			}
			resp.Results[i] = classifyResponse{N: ms.mount.N(), Index: idx, Source: source, Entry: e}
		}
		api.WriteJSON(w, resp)
	default:
		api.Error(w, r, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// classifyIndex resolves one index: LRU, store (presence-filtered,
// orbit-aware), then live computation with write-back.
func (s *Server) classifyIndex(ms *mountState, idx uint64) (*census.Entry, string, error) {
	if e, ok := ms.lru.get(idx); ok {
		s.cacheHits.Add(1)
		s.m.cacheHits.With(ms.nLabel).Add(1)
		return e, "cache", nil
	}
	st := ms.mount.Store()
	e, src, err := st.Lookup(idx, ms.orbits)
	if err != nil {
		return nil, "", err
	}
	switch src {
	case LookupDirect:
		s.storeHits.Add(1)
		s.m.storeHits.With(ms.nLabel).Add(1)
		e = stripOrbitSize(e)
		ms.lru.put(idx, e)
		return e, "store", nil
	case LookupRehydrated:
		s.rehydrated.Add(1)
		s.m.rehydrated.With(ms.nLabel).Add(1)
		ms.lru.put(idx, e)
		return e, "store-rehydrated", nil
	}
	// Miss: compute live, persist the canonical form the store's kind
	// expects, answer for the queried index. Solve-mode stores get no
	// write-back: the sweep's (k, rounds) configuration is not
	// recoverable, so a classify-only entry would conflict with the
	// completed sweep's bytes on a later merge.
	s.computed.Add(1)
	s.m.storeMisses.With(ms.nLabel).Add(1)
	s.m.computed.With(ms.nLabel).Add(1)
	t0 := time.Now()
	e, persist, err := s.computeEntry(ms, idx)
	if err != nil {
		return nil, "", err
	}
	s.m.computeSeconds.Observe(time.Since(t0).Seconds())
	if !s.opts.ReadOnly && !st.SolveMode() {
		if added, err := st.PutNew(persist); err != nil {
			return nil, "", err
		} else if added {
			s.persisted.Add(1)
			s.m.persisted.With(ms.nLabel).Add(1)
		}
	}
	ms.lru.put(idx, e)
	return e, "computed", nil
}

// computeEntry classifies idx on the live path. For orbit stores the
// persisted form is the orbit's canonical representative (carrying its
// orbit size, so store aggregates stay orbit-weighted); the response
// entry is always the queried index's own.
func (s *Server) computeEntry(ms *mountState, idx uint64) (respond, persist *census.Entry, err error) {
	n := ms.mount.N()
	if ms.mount.Store().Orbits() {
		canon, size, perm := ms.orbits.CanonicalWithWitness(idx)
		ce, err := ms.classify.Examine(canon)
		if err != nil {
			return nil, nil, err
		}
		ce.OrbitSize = size
		persist = &ce
		if canon == idx {
			return stripOrbitSize(&ce), persist, nil
		}
		respond, err = rehydrateWith(n, persist, idx, perm)
		if err != nil {
			return nil, nil, err
		}
		return respond, persist, nil
	}
	e, err := ms.classify.Examine(idx)
	if err != nil {
		return nil, nil, err
	}
	return &e, &e, nil
}

// entriesResponse is the paginated JSON form of /v1/entries. Entries
// are the raw stored census lines (orbit stores: canonical
// representatives with their orbit sizes).
type entriesResponse struct {
	N        int               `json:"n"`
	From     uint64            `json:"from"`
	To       uint64            `json:"to"`
	Count    int               `json:"count"`
	Entries  []json.RawMessage `json:"entries"`
	More     bool              `json:"more"`
	NextFrom uint64            `json:"next_from,omitempty"`
}

// handleEntries is the range scan: stored entries with from <= index
// < to, paginated (JSON, limit + next_from) or streamed (format=jsonl,
// page-buffered so the store lock is never held across client writes).
func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		api.Error(w, r, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	ms, ok := s.mountFor(w, r, q.Get("n"), q.Get("task"))
	if !ok {
		return
	}
	domain := adversary.CensusSize(ms.mount.N())
	from, to := uint64(0), domain
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad from %q", v)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = strconv.ParseUint(v, 10, 64); err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad to %q", v)
			return
		}
	}
	if from > domain || to > domain || from > to {
		api.Error(w, r, http.StatusBadRequest, "range [%d, %d) outside the n=%d domain [0, %d]",
			from, to, ms.mount.N(), domain)
		return
	}
	limit := DefaultBlockEntries
	if v := q.Get("limit"); v != "" {
		l, err := strconv.Atoi(v)
		if err != nil || l < 1 {
			api.Error(w, r, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		if l > s.opts.MaxRangeLimit {
			l = s.opts.MaxRangeLimit
		}
		limit = l
	}
	st := ms.mount.Store()
	if q.Get("format") == "jsonl" {
		// Stream the window page by page: the store lock is taken per
		// page, never across a client write.
		w.Header().Set("Content-Type", "application/x-ndjson")
		wrote := false
		for {
			page, err := st.Range(from, to, limit)
			if err != nil {
				// Before the first byte the envelope still works; after,
				// the only honest signal is cutting the stream short.
				if !wrote {
					api.Error(w, r, http.StatusInternalServerError, "range: %v", err)
				}
				return
			}
			for _, line := range page.Lines {
				w.Write(line)
				w.Write([]byte{'\n'})
				wrote = true
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if !page.More {
				return
			}
			from = page.Next
		}
	}
	page, err := st.Range(from, to, limit)
	if err != nil {
		api.Error(w, r, http.StatusInternalServerError, "range: %v", err)
		return
	}
	resp := entriesResponse{
		N:       ms.mount.N(),
		From:    from,
		To:      to,
		Count:   len(page.Lines),
		Entries: make([]json.RawMessage, len(page.Lines)),
		More:    page.More,
	}
	for i, line := range page.Lines {
		resp.Entries[i] = json.RawMessage(line)
	}
	if page.More {
		resp.NextFrom = page.Next
	}
	api.WriteJSON(w, resp)
}

// summaryResponse is the /v1/summary envelope.
type summaryResponse struct {
	N       int            `json:"n"`
	Summary census.Summary `json:"summary"`
	Store   Stats          `json:"store"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		api.Error(w, r, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	ms, ok := s.mountFor(w, r, r.URL.Query().Get("n"), r.URL.Query().Get("task"))
	if !ok {
		return
	}
	sum, err := ms.mount.Store().Summary()
	if err != nil {
		api.Error(w, r, http.StatusInternalServerError, "summary: %v", err)
		return
	}
	api.WriteJSON(w, summaryResponse{N: ms.mount.N(), Summary: sum, Store: ms.mount.Store().Stats()})
}

// solveResponse is the /v1/solve envelope. KTask is set for kset
// decisions (the pre-spec surface); Task carries the canonical spec of
// every non-kset decision.
type solveResponse struct {
	N         int    `json:"n"`
	Index     uint64 `json:"index"`
	Adversary string `json:"adversary"`
	Fair      bool   `json:"fair"`
	Setcon    int    `json:"setcon"`
	KTask     int    `json:"k_task,omitempty"`
	Task      string `json:"task,omitempty"`
	MaxRounds int    `json:"max_rounds"`
	Solved    bool   `json:"solved"`
	Solvable  *bool  `json:"solvable,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	RAFacets  int    `json:"ra_facets,omitempty"`
	Undecided bool   `json:"undecided,omitempty"`
	Source    string `json:"source"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		api.Error(w, r, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	// The mount only supplies the n-domain and universe: /v1/solve is a
	// live decision of any registered task, so the task parameter does
	// not route mounts here.
	ms, ok := s.mountFor(w, r, q.Get("n"), "")
	if !ok {
		return
	}
	idx, ok := ms.parseIndex(w, r, q.Get("index"))
	if !ok {
		return
	}
	n := ms.mount.N()
	spec := tasks.KSetSpec(1)
	if v := q.Get("task"); v != "" {
		if q.Get("ktask") != "" {
			api.Error(w, r, http.StatusBadRequest, "task and ktask are mutually exclusive")
			return
		}
		var err error
		if spec, err = tasks.ParseSpec(v); err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad task %q: %v", v, err)
			return
		}
	} else if v := q.Get("ktask"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 1 {
			api.Error(w, r, http.StatusBadRequest, "ktask %q outside [1, %d]", v, n)
			return
		}
		spec = tasks.KSetSpec(k)
	}
	if k := spec.Param("k"); spec.IsKSet() && k > n {
		api.Error(w, r, http.StatusBadRequest, "ktask %q outside [1, %d]", strconv.Itoa(k), n)
		return
	}
	maxRounds := s.opts.MaxRounds
	if v := q.Get("rounds"); v != "" {
		l, err := strconv.Atoi(v)
		if err != nil || l < 1 || l > 4 {
			api.Error(w, r, http.StatusBadRequest, "rounds %q outside [1, 4]", v)
			return
		}
		maxRounds = l
	}
	// Always a live decision over the shared universe and tower cache:
	// store entries only memoize the census' own solve configuration,
	// while /v1/solve answers for any (task, rounds).
	ex, err := census.NewExaminer(n, census.Options{
		Solve: true, Task: spec.String(), MaxRounds: maxRounds,
		Universe: ms.universe, Cache: s.tcache,
	})
	if err != nil {
		api.Error(w, r, http.StatusInternalServerError, "solve: %v", err)
		return
	}
	s.computed.Add(1)
	s.m.computed.With(ms.nLabel).Add(1)
	t0 := time.Now()
	e, err := ex.Examine(idx)
	if err != nil {
		api.Error(w, r, http.StatusInternalServerError, "solve %d: %v", idx, err)
		return
	}
	s.m.computeSeconds.Observe(time.Since(t0).Seconds())
	resp := solveResponse{
		N: n, Index: idx, Adversary: e.Adversary,
		Fair: e.Fair, Setcon: e.Setcon,
		MaxRounds: maxRounds,
		Solved:    e.Solved, Solvable: e.Solvable, Rounds: e.Rounds,
		RAFacets: e.RAFacets, Undecided: e.Undecided,
		Source: "computed",
	}
	if spec.IsKSet() {
		resp.KTask = spec.Param("k")
	} else {
		resp.Task = spec.String()
	}
	api.WriteJSON(w, resp)
}

// storeInfo is one mount in the /v1/stores listing.
type storeInfo struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	Kind   string `json:"kind"` // full | orbit | empty
	Solve  bool   `json:"solve,omitempty"`
	Task   string `json:"task,omitempty"` // canonical spec the store answers
	Domain uint64 `json:"domain"`
	Stats  Stats  `json:"stats"`
}

// storesResponse is the /v1/stores envelope.
type storesResponse struct {
	Stores []storeInfo `json:"stores"`
}

func (s *Server) handleStores(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	resp := storesResponse{Stores: []storeInfo{}}
	for _, mt := range s.reg.Mounts() {
		st := mt.Store()
		kind := "full"
		stats := st.Stats()
		if st.Orbits() {
			kind = "orbit"
		} else if stats.Entries == 0 {
			kind = "empty"
		}
		resp.Stores = append(resp.Stores, storeInfo{
			Name:   mt.Name(),
			N:      mt.N(),
			Kind:   kind,
			Solve:  st.SolveMode(),
			Task:   st.Task(),
			Domain: adversary.CensusSize(mt.N()),
			Stats:  stats,
		})
	}
	api.WriteJSON(w, resp)
}

// healthzResponse is the /healthz envelope: liveness plus the
// aggregate counters (per-n breakdowns live on /metrics).
type healthzResponse struct {
	Status     string `json:"status"`
	Mounts     []int  `json:"mounts"`
	UptimeSec  int64  `json:"uptime_sec"`
	Requests   uint64 `json:"requests"`
	CacheHits  uint64 `json:"cache_hits"`
	StoreHits  uint64 `json:"store_hits"`
	Rehydrated uint64 `json:"rehydrated"`
	Computed   uint64 `json:"computed"`
	Persisted  uint64 `json:"persisted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, healthzResponse{
		Status:     "ok",
		Mounts:     s.reg.Ns(),
		UptimeSec:  int64(time.Since(s.started).Seconds()),
		Requests:   s.requests.Load(),
		CacheHits:  s.cacheHits.Load(),
		StoreHits:  s.storeHits.Load(),
		Rehydrated: s.rehydrated.Load(),
		Computed:   s.computed.Load(),
		Persisted:  s.persisted.Load(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		api.WriteJSON(w, map[string]string{"status": "draining"})
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		api.WriteJSON(w, map[string]string{"status": "starting"})
	default:
		api.WriteJSON(w, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeTo(w, s)
}

// stripOrbitSize normalizes a stored entry for query responses: the
// orbit size is sweep metadata of orbit-reduced stores, not part of the
// adversary's census record, so /v1/classify answers are byte-identical
// to a full sweep's entries whatever store kind backs them.
func stripOrbitSize(e *census.Entry) *census.Entry {
	if e.OrbitSize == 0 {
		return e
	}
	cp := e.Clone()
	cp.OrbitSize = 0
	return cp
}

// entryLRU is a bounded index → entry cache. Entries are stored and
// returned as clones, so callers never share mutable state.
type entryLRU struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*list.Element
	order *list.List // front = most recent
}

type lruItem struct {
	idx uint64
	e   *census.Entry
}

func newEntryLRU(capacity int) *entryLRU {
	return &entryLRU{
		cap:   capacity,
		items: make(map[uint64]*list.Element, capacity),
		order: list.New(),
	}
}

func (l *entryLRU) get(idx uint64) (*census.Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[idx]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruItem).e.Clone(), true
}

func (l *entryLRU) put(idx uint64, e *census.Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[idx]; ok {
		el.Value.(*lruItem).e = e.Clone()
		l.order.MoveToFront(el)
		return
	}
	l.items[idx] = l.order.PushFront(&lruItem{idx: idx, e: e.Clone()})
	for l.order.Len() > l.cap {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.items, back.Value.(*lruItem).idx)
	}
}
