package store

// Tests for the deep-check (`factool store verify`) and the presence
// filter that short-circuits lookups of absent indices.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/census"
)

// TestVerifyCleanStore: a freshly merged store passes the deep check,
// including the from-scratch reclassification spot sample.
func TestVerifyCleanStore(t *testing.T) {
	for _, orbits := range []bool{false, true} {
		st, _ := buildStore(t, t.TempDir(), 3, census.Options{Workers: 1, Orbits: orbits, ShardSize: 16})
		rep, err := st.Verify(VerifyOptions{SpotChecks: 5})
		if err != nil {
			t.Fatalf("orbits=%v: %v", orbits, err)
		}
		if !rep.OK() {
			t.Fatalf("orbits=%v: clean store flagged: %v", orbits, rep.Problems)
		}
		if rep.Blocks == 0 || rep.Entries == 0 || rep.Unique == 0 {
			t.Fatalf("orbits=%v: empty report %+v", orbits, rep)
		}
		if rep.SpotChecked == 0 || rep.Reclassified == 0 {
			t.Fatalf("orbits=%v: no spot checks ran: %+v", orbits, rep)
		}
	}
}

// TestVerifyDetectsCorruption: a flipped byte in the data file turns
// into a reported problem (and a non-OK exit), not a silent pass.
func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _ := buildStore(t, dir, 3, census.Options{Workers: 1, ShardSize: 16})
	storeDir := filepath.Join(dir, "store-n3")
	matches, err := filepath.Glob(filepath.Join(storeDir, "blocks-*.dat"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no data file in %s (err %v)", storeDir, err)
	}
	st.Close()

	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep, err := st2.Verify(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupted data file passed verification")
	}
}

// TestVerifyDetectsSemanticDrift: an entry whose stored bytes disagree
// with its reclassification is caught by the spot check.
func TestVerifyDetectsSemanticDrift(t *testing.T) {
	dir := t.TempDir()
	shard, entries := censusJSONL(t, dir, "shard.jsonl", 3, census.Options{Workers: 1, MaxIndices: 8})
	// Tamper with one line before the merge: flip a classification
	// field, keeping the JSON well-formed and the index untouched.
	raw, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	tampered := raw
	if i := indexOfByteSeq(raw, []byte(`"setcon":`)); i >= 0 {
		tampered = append([]byte{}, raw[:i+len(`"setcon":`)]...)
		tampered = append(tampered, '9')
		rest := raw[i+len(`"setcon":`):]
		for len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
			rest = rest[1:]
		}
		tampered = append(tampered, rest...)
	} else {
		t.Fatal("no setcon field found in shard")
	}
	if err := os.WriteFile(shard, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Create(filepath.Join(dir, "store"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Merge([]string{shard}, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// Spot-check every entry so the tampered one is guaranteed sampled.
	rep, err := st.Verify(VerifyOptions{SpotChecks: len(entries)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("semantically drifted entry passed verification")
	}
}

func indexOfByteSeq(b, seq []byte) int {
	for i := 0; i+len(seq) <= len(b); i++ {
		match := true
		for j := range seq {
			if b[i+j] != seq[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// TestPresenceFilter: absent indices short-circuit without inflating a
// block, present ones always pass (no false negatives), and PutNew
// keeps the filter current.
func TestPresenceFilter(t *testing.T) {
	dir := t.TempDir()
	st, entries := buildStore(t, dir, 3, census.Options{Workers: 1, ShardSize: 16, MaxIndices: 64})
	if err := st.LoadPresence(); err != nil {
		t.Fatal(err)
	}

	// Every stored index answers; the filter never rejects a present key.
	for _, e := range entries {
		_, ok, err := st.Get(e.Index)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("present index %d filtered out", e.Index)
		}
	}
	if skips := st.PresenceSkips(); skips != 0 {
		t.Fatalf("%d presence skips on present keys", skips)
	}

	// Absent indices (inside block gaps or beyond) are skipped by the
	// exact bitmap without touching a block.
	for idx := uint64(64); idx < 127; idx++ {
		_, ok, err := st.Get(idx)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("absent index %d answered", idx)
		}
	}
	if skips := st.PresenceSkips(); skips == 0 {
		t.Fatal("no presence skips across 63 absent lookups")
	}

	// A write-back lands in the filter: the new index must answer.
	ex, err := census.NewExaminer(3, census.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ex.Examine(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutNew(&e); err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.Get(100)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("index 100 absent after PutNew with an armed presence filter")
	}
}
