package sched

import (
	"errors"
	"testing"

	"repro/internal/procs"
)

func TestRunAllDecide(t *testing.T) {
	var order []procs.ID
	cfg := Config{N: 3, Participants: procs.FullSet(3), Seed: 1}
	res, err := Run(cfg, func(ctx *Context) error {
		for i := 0; i < 5; i++ {
			ctx.Step()
		}
		order = append(order, ctx.ID()) // safe: steps serialize execution
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != procs.FullSet(3) {
		t.Errorf("Decided = %v", res.Decided)
	}
	if !res.LivenessOK {
		t.Errorf("liveness should hold")
	}
	if res.Steps != 15 {
		t.Errorf("steps = %d, want 15", res.Steps)
	}
	if len(order) != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestRunDeterministicFromSeed(t *testing.T) {
	trace := func(seed int64) []procs.ID {
		var out []procs.ID
		cfg := Config{N: 3, Participants: procs.FullSet(3), Seed: seed}
		_, err := Run(cfg, func(ctx *Context) error {
			for i := 0; i < 10; i++ {
				ctx.Step()
				out = append(out, ctx.ID())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Logf("note: seeds 42 and 43 produced identical traces (possible but unlikely)")
	}
}

func TestRunKillsFaulty(t *testing.T) {
	cfg := Config{
		N:            3,
		Participants: procs.FullSet(3),
		KillAfter:    map[procs.ID]int{1: 2},
		Seed:         7,
	}
	res, err := Run(cfg, func(ctx *Context) error {
		for i := 0; i < 20; i++ {
			ctx.Step()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed.Contains(1) {
		t.Errorf("p2 should have crashed: %v", res.Crashed)
	}
	if res.Decided.Contains(1) {
		t.Errorf("crashed process must not decide")
	}
	if !res.Decided.Contains(0) || !res.Decided.Contains(2) {
		t.Errorf("correct processes must decide: %v", res.Decided)
	}
	if !res.LivenessOK {
		t.Errorf("liveness holds when only scheduled-faulty processes die")
	}
}

func TestRunStepBudget(t *testing.T) {
	cfg := Config{
		N:            2,
		Participants: procs.FullSet(2),
		MaxSteps:     50,
		Seed:         3,
	}
	// A process that waits forever on a condition that never comes.
	_, err := Run(cfg, func(ctx *Context) error {
		for {
			ctx.Step()
		}
	})
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("want ErrStepBudget, got %v", err)
	}
}

func TestRunProtocolError(t *testing.T) {
	wantErr := errors.New("protocol failure")
	cfg := Config{N: 2, Participants: procs.FullSet(2), Seed: 5}
	res, err := Run(cfg, func(ctx *Context) error {
		ctx.Step()
		if ctx.ID() == 0 {
			return wantErr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errs[0], wantErr) {
		t.Errorf("protocol error not reported: %v", res.Errs)
	}
}

func TestRunNoParticipants(t *testing.T) {
	if _, err := Run(Config{N: 3}, func(*Context) error { return nil }); !errors.Is(err, ErrNoProcs) {
		t.Errorf("want ErrNoProcs, got %v", err)
	}
}

func TestRunPartialParticipation(t *testing.T) {
	cfg := Config{N: 4, Participants: procs.SetOf(1, 3), Seed: 11}
	res, err := Run(cfg, func(ctx *Context) error {
		ctx.Step()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != procs.SetOf(1, 3) {
		t.Errorf("Decided = %v", res.Decided)
	}
}

func TestWaitingProtocolsUnblockEachOther(t *testing.T) {
	// p1 waits for p2's flag: the scheduler must keep granting steps so
	// that busy-wait loops make progress.
	var flag bool
	cfg := Config{N: 2, Participants: procs.FullSet(2), Seed: 13, MaxSteps: 10000}
	res, err := Run(cfg, func(ctx *Context) error {
		if ctx.ID() == 1 {
			ctx.Step()
			flag = true
			return nil
		}
		for {
			ctx.Step()
			if flag {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != procs.FullSet(2) {
		t.Errorf("both must decide: %v", res.Decided)
	}
}
