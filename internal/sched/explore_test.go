package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/procs"
)

// TestExploreCountsInterleavings: two processes taking 2 steps each,
// no crashes: the schedules are the interleavings of aabb — C(4,2) = 6.
func TestExploreCountsInterleavings(t *testing.T) {
	cfg := ExploreConfig{
		N:            2,
		Participants: procs.FullSet(2),
		MaxSteps:     16,
	}
	res, err := Explore(cfg, func() (Protocol, func(*Result) error) {
		proto := func(ctx *Context) error {
			ctx.Step()
			ctx.Step()
			return nil
		}
		return proto, func(r *Result) error {
			if r.Decided != procs.FullSet(2) {
				return fmt.Errorf("run incomplete: %v", r.Decided)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 6 {
		t.Errorf("runs = %d, want 6", res.Runs)
	}
	if res.Truncated {
		t.Errorf("should not truncate")
	}
}

// TestExploreWithCrashes: one process, one step, one allowed crash —
// schedules are {step} and {crash}: 2 runs.
func TestExploreWithCrashes(t *testing.T) {
	cfg := ExploreConfig{
		N:            1,
		Participants: procs.SetOf(0),
		MaxCrashes:   1,
		MaxSteps:     8,
	}
	sawCrash := false
	res, err := Explore(cfg, func() (Protocol, func(*Result) error) {
		proto := func(ctx *Context) error {
			ctx.Step()
			return nil
		}
		return proto, func(r *Result) error {
			if r.Crashed.Contains(0) {
				sawCrash = true
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 {
		t.Errorf("runs = %d, want 2", res.Runs)
	}
	if !sawCrash {
		t.Errorf("crash branch not explored")
	}
}

// TestExploreDetectsViolation: the checker's error aborts exploration.
func TestExploreDetectsViolation(t *testing.T) {
	wantErr := errors.New("found it")
	cfg := ExploreConfig{N: 2, Participants: procs.FullSet(2), MaxSteps: 8}
	_, err := Explore(cfg, func() (Protocol, func(*Result) error) {
		proto := func(ctx *Context) error {
			ctx.Step()
			return nil
		}
		return proto, func(*Result) error { return wantErr }
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("violation not propagated: %v", err)
	}
}

// TestExploreLivenessBound: a protocol that never finishes trips the
// liveness bound.
func TestExploreLivenessBound(t *testing.T) {
	cfg := ExploreConfig{N: 1, Participants: procs.SetOf(0), MaxSteps: 5}
	_, err := Explore(cfg, func() (Protocol, func(*Result) error) {
		proto := func(ctx *Context) error {
			for {
				ctx.Step()
			}
		}
		return proto, func(*Result) error { return nil }
	})
	if !errors.Is(err, ErrLivenessViolation) {
		t.Fatalf("want ErrLivenessViolation, got %v", err)
	}
}

// TestExploreTruncation: MaxRuns caps the exploration without error.
func TestExploreTruncation(t *testing.T) {
	cfg := ExploreConfig{
		N:            3,
		Participants: procs.FullSet(3),
		MaxSteps:     30,
		MaxRuns:      5,
	}
	res, err := Explore(cfg, func() (Protocol, func(*Result) error) {
		proto := func(ctx *Context) error {
			for i := 0; i < 4; i++ {
				ctx.Step()
			}
			return nil
		}
		return proto, func(*Result) error { return nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Runs != 5 {
		t.Errorf("truncation wrong: %+v", res)
	}
}

// TestExploreEmpty: no participants is an error.
func TestExploreEmpty(t *testing.T) {
	if _, err := Explore(ExploreConfig{N: 1}, nil); !errors.Is(err, ErrNoProcs) {
		t.Fatalf("want ErrNoProcs, got %v", err)
	}
}
