package sched

// Exhaustive schedule exploration (stateless model checking): instead of
// drawing one random interleaving, Explore enumerates EVERY schedule of
// the given protocol up to the step bound, including every crash
// placement within the failure budget, and invokes a checker on each
// completed run. This turns the randomized Theorem 7 campaigns into
// exhaustive verification for small systems.
//
// The state space is the tree of scheduler choices: at each point the
// scheduler either grants a step to one of the runnable processes or
// crashes one of the still-crashable processes. Runs are replayed from
// the root for every leaf (protocols are deterministic given the choice
// sequence), which keeps the implementation simple and the protocols
// unchanged.

import (
	"errors"
	"fmt"

	"repro/internal/procs"
)

// ExploreConfig bounds an exhaustive exploration.
type ExploreConfig struct {
	N            int
	Participants procs.Set
	// MaxCrashes bounds how many processes may crash in a run
	// (α(P) − 1 for α-model exploration).
	MaxCrashes int
	// Crashable restricts which processes may crash (defaults to all
	// participants when zero).
	Crashable procs.Set
	// MaxSteps bounds each run's total step count; runs that do not
	// complete within the bound are reported as liveness violations.
	MaxSteps int
	// MaxRuns aborts the exploration when the schedule tree is larger
	// (safety valve; 0 = unlimited).
	MaxRuns int
	// MaxNodes bounds the total number of explored tree nodes (replays).
	// Protocols with wait-phases generate exponentially many pruned
	// starvation subtrees; the node budget keeps the sweep bounded.
	// 0 selects a 200k default.
	MaxNodes int
	// PruneAtDepth controls what happens when a schedule prefix reaches
	// MaxSteps without completing. For wait-free protocols (operations
	// finish within a bounded number of the caller's own steps) leave it
	// false: hitting the bound is a genuine liveness violation. For
	// protocols with wait-phases (Algorithm 1), set it true: the DFS
	// necessarily explores starvation prefixes that lie outside the
	// model (correct processes must keep taking steps), and such
	// branches are pruned as truncation instead.
	PruneAtDepth bool
}

// ExploreResult aggregates an exploration.
type ExploreResult struct {
	Runs      int // completed runs checked
	Nodes     int // schedule-tree nodes replayed
	Truncated bool
}

// Exploration errors.
var (
	ErrLivenessViolation = errors.New("liveness violation: correct process undecided within step bound")
	ErrExploreBudget     = errors.New("exploration aborted: too many schedules")
)

// choice is one scheduler decision: grant a step to P (crash=false) or
// crash P before its next step (crash=true).
type choice struct {
	p     procs.ID
	crash bool
}

// RunFactory creates one run's protocol instance (with fresh shared
// objects) together with the checker applied to that run's Result when
// it completes. Every replayed schedule gets its own instance.
type RunFactory func() (Protocol, func(*Result) error)

// Explore enumerates all schedules. The factory is invoked once per
// replay; its checker returning an error aborts the exploration
// (reported verbatim).
func Explore(cfg ExploreConfig, factory RunFactory) (*ExploreResult, error) {
	if cfg.Participants.IsEmpty() {
		return nil, ErrNoProcs
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200
	}
	crashable := cfg.Crashable
	if crashable.IsEmpty() {
		crashable = cfg.Participants
	}
	res := &ExploreResult{}
	// Depth-first over choice prefixes. Each replay executes the prefix
	// and then reports the set of runnable processes at the frontier,
	// from which new branches are derived.
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}
	var dfs func(prefix []choice) error
	dfs = func(prefix []choice) error {
		if cfg.MaxRuns > 0 && res.Runs >= cfg.MaxRuns {
			res.Truncated = true
			return ErrExploreBudget
		}
		res.Nodes++
		if res.Nodes > maxNodes {
			res.Truncated = true
			return ErrExploreBudget
		}
		proto, check := factory()
		runnable, crashed, result, err := replay(cfg, proto, prefix)
		if err != nil {
			return err
		}
		if runnable.IsEmpty() {
			// Run complete: every process decided or crashed.
			res.Runs++
			return check(result)
		}
		if len(prefix) >= cfg.MaxSteps {
			if cfg.PruneAtDepth {
				res.Truncated = true
				return nil
			}
			return fmt.Errorf("%w: undecided %v after %d choices",
				ErrLivenessViolation, runnable, len(prefix))
		}
		// Rotate the branch order by depth: the leftmost path is then a
		// round-robin schedule (fair, in-model) rather than a single
		// process starving everyone, which matters for protocols with
		// wait-phases.
		members := runnable.Members()
		rot := len(prefix) % len(members)
		ordered := append(append([]procs.ID(nil), members[rot:]...), members[:rot]...)
		for _, p := range ordered {
			// Branch 1: grant p a step.
			if err := dfs(append(append([]choice(nil), prefix...), choice{p: p})); err != nil {
				return err
			}
			// Branch 2: crash p here (if the budget allows).
			if crashable.Contains(p) && crashed.Size() < cfg.MaxCrashes {
				if err := dfs(append(append([]choice(nil), prefix...), choice{p: p, crash: true})); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := dfs(nil); err != nil && !errors.Is(err, ErrExploreBudget) {
		return res, err
	}
	return res, nil
}

// replay runs the protocol under the exact choice sequence and returns
// the frontier: the processes still runnable afterwards, the crashed
// set, and the Result-so-far.
func replay(cfg ExploreConfig, proto Protocol, prefix []choice) (runnable, crashed procs.Set, result *Result, err error) {
	d := newDirected(cfg.N, cfg.Participants, proto)
	defer d.shutdown()
	for _, c := range prefix {
		if c.crash {
			if err := d.crash(c.p); err != nil {
				return 0, 0, nil, err
			}
			continue
		}
		if err := d.step(c.p); err != nil {
			return 0, 0, nil, err
		}
	}
	return d.runnable(), d.crashed, d.result(), nil
}

// directed is a scheduler driven by explicit choices rather than a RNG.
type directed struct {
	n       int
	procs   procs.Set
	states  map[procs.ID]*dstate
	ready   chan procs.ID
	done    chan procs.ID
	decided procs.Set
	crashed procs.Set
	errs    map[procs.ID]error
	steps   int
}

type dstate struct {
	ctx    *Context
	parked bool
	done   bool
	dead   bool
}

func newDirected(n int, participants procs.Set, proto Protocol) *directed {
	d := &directed{
		n:      n,
		procs:  participants,
		states: make(map[procs.ID]*dstate),
		ready:  make(chan procs.ID),
		done:   make(chan procs.ID),
		errs:   make(map[procs.ID]error),
	}
	participants.ForEach(func(p procs.ID) {
		ctx := &Context{id: p, grant: make(chan stepVerdict)}
		ctx.sched = &Scheduler{ready: d.ready}
		d.states[p] = &dstate{ctx: ctx}
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						panic(r)
					}
					return
				}
			}()
			if err := proto(ctx); err != nil {
				d.errs[p] = err // serialized: only the running proc executes
			}
			d.done <- p
		}()
	})
	d.settle()
	return d
}

// settle waits until every live process is parked in Step or done.
func (d *directed) settle() {
	for {
		pending := procs.EmptySet
		d.procs.ForEach(func(p procs.ID) {
			st := d.states[p]
			if !st.parked && !st.done && !st.dead {
				pending = pending.Add(p)
			}
		})
		if pending.IsEmpty() {
			return
		}
		select {
		case p := <-d.ready:
			d.states[p].parked = true
		case p := <-d.done:
			d.states[p].done = true
			d.decided = d.decided.Add(p)
		}
	}
}

func (d *directed) runnable() procs.Set {
	var out procs.Set
	d.procs.ForEach(func(p procs.ID) {
		if d.states[p].parked {
			out = out.Add(p)
		}
	})
	return out
}

func (d *directed) step(p procs.ID) error {
	st := d.states[p]
	if !st.parked {
		return fmt.Errorf("step for non-runnable process %v", p)
	}
	st.parked = false
	d.steps++
	st.ctx.grant <- verdictGo
	d.settle()
	return nil
}

func (d *directed) crash(p procs.ID) error {
	st := d.states[p]
	if !st.parked {
		return fmt.Errorf("crash for non-runnable process %v", p)
	}
	st.parked = false
	st.dead = true
	d.crashed = d.crashed.Add(p)
	st.ctx.grant <- verdictDie
	d.settle()
	return nil
}

// shutdown kills every still-parked process so goroutines exit.
func (d *directed) shutdown() {
	d.procs.ForEach(func(p procs.ID) {
		st := d.states[p]
		if st.parked {
			st.parked = false
			st.dead = true
			st.ctx.grant <- verdictDie
		}
	})
	// Drain any in-flight notifications (none expected: shutdown is
	// called only at a settled frontier).
}

func (d *directed) result() *Result {
	res := &Result{
		Decided: d.decided,
		Crashed: d.crashed,
		Steps:   d.steps,
		Errs:    d.errs,
	}
	res.LivenessOK = true
	d.procs.ForEach(func(p procs.ID) {
		if !d.crashed.Contains(p) && !d.decided.Contains(p) {
			res.LivenessOK = false
		}
	})
	return res
}
