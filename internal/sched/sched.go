// Package sched provides a deterministic adversarial scheduler for
// asynchronous shared-memory protocols: processes run as cooperative
// goroutines that block before every shared-memory step until the
// scheduler grants them the step, so exactly one process executes at a
// time and every interleaving is reproducible from a seed.
//
// The scheduler injects crash failures at scheduled step counts,
// supporting runs of adversarial A-models and α-models (Definition 3):
// pick a participating set P with α(P) ≥ 1 and a faulty set F ⊆ P with
// |F| ≤ α(P)−1, and the scheduler explores the corresponding prefixes.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/procs"
)

// Protocol is the code run by one process. It may perform local
// computation freely and must call ctx.Step() before each shared-memory
// operation. Returning ends the process (it has decided).
type Protocol func(ctx *Context) error

// Errors reported by Run.
var (
	ErrStepBudget = errors.New("step budget exhausted before all correct processes decided")
	ErrNoProcs    = errors.New("no participating processes")
)

// killed is the sentinel panic used to unwind a crashed process's
// goroutine from inside Step.
type killed struct{}

// Context is the per-process handle passed to protocols.
type Context struct {
	id    procs.ID
	sched *Scheduler
	grant chan stepVerdict
}

type stepVerdict int

const (
	verdictGo stepVerdict = iota + 1
	verdictDie
)

// ID returns the identity of this process.
func (c *Context) ID() procs.ID { return c.id }

// Step blocks until the scheduler grants this process its next
// shared-memory step. If the scheduler has crashed the process, Step
// never returns (the goroutine unwinds).
func (c *Context) Step() {
	// Signal readiness and wait for the verdict.
	c.sched.ready <- c.id
	v := <-c.grant
	if v == verdictDie {
		panic(killed{})
	}
}

// Scheduler drives one run.
type Scheduler struct {
	n     int
	rng   *rand.Rand
	ready chan procs.ID

	mu   sync.Mutex
	errs map[procs.ID]error
}

// Config describes one run.
type Config struct {
	N            int       // system size
	Participants procs.Set // processes that take steps
	// KillAfter maps a process to the number of shared steps it may
	// take before crashing. Processes absent from the map are correct.
	KillAfter map[procs.ID]int
	// MaxSteps bounds the total number of granted steps (liveness
	// budget). Zero selects a generous default.
	MaxSteps int
	// Seed drives the interleaving.
	Seed int64
}

// Result reports the outcome of a run.
type Result struct {
	Decided    procs.Set          // processes whose protocol returned
	Crashed    procs.Set          // processes crashed by the scheduler
	Steps      int                // total granted steps
	Errs       map[procs.ID]error // protocol errors, if any
	LivenessOK bool               // all correct participants decided
}

// Run executes the protocol for every participant under a random
// failure-injecting schedule. It returns ErrStepBudget (with a partial
// Result) when correct processes fail to decide within the budget —
// the liveness-violation signal used by the Algorithm 1 experiments.
func Run(cfg Config, proto Protocol) (*Result, error) {
	if cfg.Participants.IsEmpty() {
		return nil, ErrNoProcs
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 20000 * cfg.Participants.Size()
	}
	s := &Scheduler{
		n:     cfg.N,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ready: make(chan procs.ID),
		errs:  make(map[procs.ID]error),
	}

	type pstate struct {
		ctx     *Context
		waiting bool // parked in Step, awaiting a verdict
		done    bool
		crashed bool
		steps   int
	}
	states := make(map[procs.ID]*pstate)
	var wg sync.WaitGroup
	doneCh := make(chan procs.ID)

	cfg.Participants.ForEach(func(p procs.ID) {
		ctx := &Context{
			id:    p,
			sched: s,
			grant: make(chan stepVerdict),
		}
		states[p] = &pstate{ctx: ctx}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						panic(r) // real bug: propagate
					}
					return // crashed silently
				}
			}()
			if err := proto(ctx); err != nil {
				s.mu.Lock()
				s.errs[p] = err
				s.mu.Unlock()
			}
			doneCh <- p
		}()
	})

	res := &Result{Errs: s.errs}
	live := cfg.Participants // not yet done nor crashed
	waitingSet := procs.EmptySet

	// Event loop: collect ready/done notifications, grant steps.
	for res.Steps < maxSteps && !live.IsEmpty() {
		// Drain arrivals until every live process is either waiting in
		// Step or has announced completion.
		progress := true
		for progress {
			progress = false
			pending := procs.EmptySet
			live.ForEach(func(p procs.ID) {
				if !waitingSet.Contains(p) {
					pending = pending.Add(p)
				}
			})
			if pending.IsEmpty() {
				break
			}
			select {
			case p := <-s.ready:
				states[p].waiting = true
				waitingSet = waitingSet.Add(p)
				progress = true
			case p := <-doneCh:
				states[p].done = true
				res.Decided = res.Decided.Add(p)
				live = live.Remove(p)
				progress = true
			}
		}
		if live.IsEmpty() {
			break
		}
		// Pick a waiting process at random and grant or kill.
		candidates := waitingSet.Members()
		if len(candidates) == 0 {
			break // all remaining are done (handled above)
		}
		p := candidates[s.rng.Intn(len(candidates))]
		st := states[p]
		kill := false
		if limit, ok := cfg.KillAfter[p]; ok && st.steps >= limit {
			kill = true
		}
		waitingSet = waitingSet.Remove(p)
		st.waiting = false
		if kill {
			st.crashed = true
			res.Crashed = res.Crashed.Add(p)
			live = live.Remove(p)
			st.ctx.grant <- verdictDie
			continue
		}
		st.steps++
		res.Steps++
		st.ctx.grant <- verdictGo
	}

	// Kill every process still running (budget exhausted or leftovers):
	// first those already parked in Step, then any still in flight.
	budgetHit := !live.IsEmpty()
	waitingSet.ForEach(func(p procs.ID) {
		if live.Contains(p) {
			states[p].crashed = true
			res.Crashed = res.Crashed.Add(p)
			live = live.Remove(p)
			states[p].ctx.grant <- verdictDie
		}
	})
	for !live.IsEmpty() {
		select {
		case p := <-s.ready:
			states[p].crashed = true
			res.Crashed = res.Crashed.Add(p)
			live = live.Remove(p)
			states[p].ctx.grant <- verdictDie
		case p := <-doneCh:
			states[p].done = true
			res.Decided = res.Decided.Add(p)
			live = live.Remove(p)
		}
	}
	wg.Wait()

	// Liveness: every participant not deliberately crashed must decide.
	res.LivenessOK = true
	cfg.Participants.ForEach(func(p procs.ID) {
		if _, scheduledToDie := cfg.KillAfter[p]; !scheduledToDie && !res.Decided.Contains(p) {
			res.LivenessOK = false
		}
	})
	if budgetHit {
		return res, fmt.Errorf("%w: %d steps, undecided %v", ErrStepBudget, res.Steps,
			cfg.Participants.Diff(res.Decided.Union(res.Crashed)))
	}
	return res, nil
}
