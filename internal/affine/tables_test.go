package affine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// buildTask builds an R_A over a fresh universe for the given adversary.
func buildTask(t *testing.T, a *adversary.Adversary) *Task {
	t.Helper()
	u := chromatic.NewUniverse(a.N())
	task, err := BuildRAForAdversary(u, a, DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// TestTaskTablesMatchCallback pins the affine task's native table
// provider against its compat Membership() callback on every ground
// set — full and restricted — for n ≤ 4 adversaries of each family.
func TestTaskTablesMatchCallback(t *testing.T) {
	advs := []*adversary.Adversary{
		adversary.WaitFree(3),
		adversary.TResilient(3, 1),
		adversary.KObstructionFree(4, 2),
		adversary.TResilient(4, 1),
	}
	for _, a := range advs {
		t.Run(fmt.Sprintf("n=%d/%v", a.N(), a), func(t *testing.T) {
			task := buildTask(t, a)
			member := task.Membership()
			for _, ground := range procs.NonemptySubsets(procs.FullSet(task.N())) {
				mt := task.MembershipTable(ground)
				chromatic.ForEachRun2Ranked(ground, func(r chromatic.Run2, key chromatic.RunKey, rank chromatic.RunRank) bool {
					if got, want := mt.Contains(rank), member(r, key); got != want {
						t.Fatalf("ground %v rank %d: table %v, callback %v", ground, rank, got, want)
					}
					return true
				})
			}
		})
	}
}

// TestPrecomputeRestrictedFacetsMatchesSerial is the fan-out
// byte-identity gate: the parallel precompute fills the memo with
// exactly what serial first-touch RestrictedFacets calls produce, for
// every participating set and any worker count.
func TestPrecomputeRestrictedFacetsMatchesSerial(t *testing.T) {
	a := adversary.KObstructionFree(4, 2)
	subsets := procs.NonemptySubsets(procs.FullSet(4))

	serialTask := buildTask(t, a)
	serial := make(map[procs.Set][]chromatic.Run2, len(subsets))
	for _, p := range subsets {
		serial[p] = serialTask.RestrictedFacets(p)
	}

	for _, workers := range []int{1, 4, 16} {
		task := buildTask(t, a)
		task.PrecomputeRestrictedFacets(workers)
		for _, p := range subsets {
			if !reflect.DeepEqual(task.RestrictedFacets(p), serial[p]) {
				t.Fatalf("workers=%d: restricted facets of %v differ from serial", workers, p)
			}
		}
	}
}

// TestIterateTablesMatchesCallbackTower pins the redesigned tower
// route: IterateWorkers (task-native tables) equals a tower extended
// through the compat callback, at one and at eight workers.
func TestIterateTablesMatchesCallbackTower(t *testing.T) {
	task := buildTask(t, adversary.TResilient(3, 1))
	input := standardComplex(t, 3)
	for _, workers := range []int{1, 8} {
		viaTables, err := task.IterateWorkers(input, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		compat := chromatic.NewTower(input)
		compat.SetWorkers(workers)
		for i := 0; i < 2; i++ {
			if err := compat.Extend(task.Membership()); err != nil {
				t.Fatal(err)
			}
		}
		if !viaTables.Top().Equal(compat.Top()) {
			t.Fatalf("workers=%d: table tower differs from callback tower", workers)
		}
	}
}
