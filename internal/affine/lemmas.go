package affine

// Mechanized checks of the distribution results of Section 5.3:
// Lemma 3, Corollary 4 and Lemma 11. These underpin both liveness
// (Lemma 5) and safety (Lemma 6) of Algorithm 1; experiment E14/E15
// verifies them exhaustively for small n.

import (
	"repro/internal/adversary"
	"repro/internal/hitting"
	"repro/internal/procs"
)

// criticalAtLeast returns {θ ∈ CS_α(σ) : α(χ(carrier(θ, s))) ≥ l} as a
// family of color sets.
func criticalAtLeast(alpha adversary.AlphaFunc, s Chr1Simplex, l int) []procs.Set {
	var family []procs.Set
	for _, g := range s.Groups() {
		av := alpha(g.View)
		if av < l {
			continue
		}
		for _, theta := range procs.NonemptySubsets(g.Members) {
			if alpha(g.View.Diff(theta)) < av {
				family = append(family, theta)
			}
		}
	}
	return family
}

// CheckLemma3 verifies the Lemma 3 inequality for a simplex σ ∈ Chr s
// with χ(σ) = χ(carrier(σ, s)) and a level l:
//
//	α(χ(σ)) − l + 1 ≤ csize({θ ∈ CS_α(σ) : α(χ(carrier(θ,s))) ≥ l}).
//
// It returns ok=false when the inequality fails, and skip=true when the
// premise χ(σ) = χ(carrier(σ, s)) does not hold.
func CheckLemma3(alpha adversary.AlphaFunc, s Chr1Simplex, l int) (ok, skip bool) {
	if s.Procs() != s.Carrier() {
		return true, true
	}
	lhs := alpha(s.Procs()) - l + 1
	if lhs <= 0 {
		return true, false
	}
	cs := hitting.Size(criticalAtLeast(alpha, s, l))
	return lhs <= cs, false
}

// CheckCorollary4 verifies the generalized inequality for any σ ∈ Chr s:
//
//	α(χ(carrier(σ,s))) − l − |χ(carrier(σ,s)) \ χ(σ)| + 1
//	    ≤ csize({θ ∈ CS_α(σ) : α(χ(carrier(θ,s))) ≥ l}).
func CheckCorollary4(alpha adversary.AlphaFunc, s Chr1Simplex, l int) bool {
	carrier := s.Carrier()
	lhs := alpha(carrier) - l - carrier.Diff(s.Procs()).Size() + 1
	if lhs <= 0 {
		return true
	}
	return lhs <= hitting.Size(criticalAtLeast(alpha, s, l))
}

// CheckLemma11 verifies that any two critical simplices of σ with equal
// agreement power share the same View¹ (carrier in s).
func CheckLemma11(alpha adversary.AlphaFunc, s Chr1Simplex) bool {
	groups := s.Groups()
	// Critical groups carry the carrier; distinct critical groups with
	// the same α(view) violate the lemma (their members' critical
	// simplices would witness it).
	seen := make(map[int]procs.Set)
	for _, g := range groups {
		av := alpha(g.View)
		if alpha(g.View.Diff(g.Members)) >= av {
			continue // not critical
		}
		if prev, ok := seen[av]; ok && prev != g.View {
			return false
		}
		seen[av] = g.View
	}
	return true
}

// ForEachChr1Simplex enumerates every simplex of Chr s over the ground
// set (all sub-simplices of all facets, deduplicated), calling f with
// each. Stops early when f returns false.
func ForEachChr1Simplex(ground procs.Set, f func(Chr1Simplex) bool) {
	seen := make(map[string]bool)
	for _, sub := range procs.NonemptySubsets(ground) {
		for _, op := range procs.EnumerateOrderedPartitions(sub) {
			views := op.Views()
			// Every subset of the facet's vertices is a simplex.
			for _, members := range procs.NonemptySubsets(sub) {
				s := Chr1Simplex{Views: make(map[procs.ID]procs.Set, members.Size())}
				key := ""
				members.ForEach(func(q procs.ID) {
					s.Views[q] = views[q]
					key += q.String() + views[q].String()
				})
				if seen[key] {
					continue
				}
				seen[key] = true
				if !f(s) {
					return
				}
			}
		}
	}
}
