// Package affine implements Section 4 of the paper: the 2-contention
// complex Cont² (Definition 5), the affine task R_{k-OF} of
// k-obstruction-freedom (Definition 6), critical simplices
// (Definition 7), the concurrency map Conc_α (Definition 8), and the
// affine task R_A of an arbitrary fair adversary (Definition 9), together
// with the t-resilient affine task R_{t-res} of Saraph-Herlihy-Gafni and
// the distribution lemmas of Section 5.3.
package affine

import (
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sc"
)

// ContendingPair implements the pair condition of Definition 5 on raw
// view data: processes a and b are contending when their View¹ and View²
// are strictly ordered in opposite directions.
//
// View² values are compared as process sets (χ of the Chr-s carrier),
// which is equivalent to simplex inclusion for vertices belonging to a
// common simplex of Chr² s — the only situation Definition 5 quantifies
// over.
func ContendingPair(view1a, view2a, view1b, view2b procs.Set) bool {
	return (view1a.ProperSubsetOf(view1b) && view2b.ProperSubsetOf(view2a)) ||
		(view1b.ProperSubsetOf(view1a) && view2a.ProperSubsetOf(view2b))
}

// Contending reports whether two Chr²-s vertices are contending.
func Contending(a, b chromatic.Vertex2) bool {
	return ContendingPair(a.View1, a.View2, b.View1, b.View2)
}

// IsContentionSimplex reports whether every two vertices of the given
// set are contending (Definition 5). Singletons and the empty set are
// contention simplices vacuously.
func IsContentionSimplex(vs []chromatic.Vertex2) bool {
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			if !Contending(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// facetContention precomputes, for one facet of Chr² s (a 2-round run
// over ground), the set of contention sub-simplices as a bitmask table:
// table[mask] reports whether the vertex subset indexed by mask (bit i =
// i-th member of ground in increasing ID order) is pairwise contending.
type facetContention struct {
	members []procs.ID
	table   []bool
	// view2 of each member (χ of the round-2 carrier) and the round-2
	// knowledge union per mask, used to compute carriers of subsets.
	view2   map[procs.ID]procs.Set
	unionV2 []procs.Set
}

func newFacetContention(run chromatic.Run2) *facetContention {
	ground := run.Ground()
	members := ground.Members()
	m := len(members)
	view1 := run.R1.Views()
	view2 := make(map[procs.ID]procs.Set, m)
	for _, p := range members {
		v, _ := run.R2.ViewOf(p)
		view2[p] = v
	}
	pair := make([][]bool, m)
	for i := range pair {
		pair[i] = make([]bool, m)
		for j := range pair[i] {
			if i != j {
				a, b := members[i], members[j]
				pair[i][j] = ContendingPair(view1[a], view2[a], view1[b], view2[b])
			}
		}
	}
	size := 1 << uint(m)
	table := make([]bool, size)
	unionV2 := make([]procs.Set, size)
	table[0] = true
	for mask := 1; mask < size; mask++ {
		// last set bit index
		last := 0
		for (mask>>uint(last))&1 == 0 {
			last++
		}
		rest := mask &^ (1 << uint(last))
		unionV2[mask] = unionV2[rest].Union(view2[members[last]])
		ok := table[rest]
		if ok {
			for i := 0; i < m && ok; i++ {
				if rest&(1<<uint(i)) != 0 && !pair[last][i] {
					ok = false
				}
			}
		}
		table[mask] = ok
	}
	return &facetContention{members: members, table: table, view2: view2, unionV2: unionV2}
}

// setOf converts a bitmask over members to a process set.
func (fc *facetContention) setOf(mask int) procs.Set {
	var s procs.Set
	for i, p := range fc.members {
		if mask&(1<<uint(i)) != 0 {
			s = s.Add(p)
		}
	}
	return s
}

// Cont2Simplices enumerates, for an n-process system, every simplex of
// the 2-contention complex Cont² of dimension ≥ minDim, as simplices of
// interned Chr²-s vertices (deduplicated across runs). This is the
// Figure 4c object.
func Cont2Simplices(u *chromatic.Universe, minDim int) []sc.Simplex {
	seen := make(map[string]bool)
	var out []sc.Simplex
	full := procs.FullSet(u.N())
	for _, ground := range procs.NonemptySubsets(full) {
		chromatic.ForEachRun2(ground, func(run chromatic.Run2) bool {
			fc := newFacetContention(run)
			ids := run.FacetIDs(u)
			m := len(fc.members)
			for mask := 1; mask < 1<<uint(m); mask++ {
				if !fc.table[mask] {
					continue
				}
				dim := popcount(mask) - 1
				if dim < minDim {
					continue
				}
				var simplex sc.Simplex
				for i := 0; i < m; i++ {
					if mask&(1<<uint(i)) != 0 {
						simplex = append(simplex, ids[i])
					}
				}
				simplex = sc.NewSimplex(simplex...)
				k := simplex.Key()
				if !seen[k] {
					seen[k] = true
					out = append(out, simplex)
				}
			}
			return true
		})
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
