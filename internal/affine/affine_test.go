package affine

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sc"
)

func seq(ids ...procs.ID) procs.OrderedPartition { return procs.SingletonOrder(ids...) }

func fig5bAdversary(t *testing.T) *adversary.Adversary {
	t.Helper()
	a, err := adversary.SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFigure4aContention: two reversed sequential runs — every subset of
// processes is contending.
func TestFigure4aContention(t *testing.T) {
	run := chromatic.Run2{R1: seq(1, 0, 2), R2: seq(2, 0, 1)}
	fc := newFacetContention(run)
	for mask := 1; mask < 8; mask++ {
		if !fc.table[mask] {
			t.Errorf("subset mask %b should be contending", mask)
		}
	}
}

// TestFigure4bContention: runs {p1},{p2},{p3} then {p2},{p3,p1} — the
// only contending couple is {p1,p2}.
func TestFigure4bContention(t *testing.T) {
	run := chromatic.Run2{
		R1: seq(0, 1, 2),
		R2: procs.OrderedPartition{procs.SetOf(1), procs.SetOf(0, 2)},
	}
	u := chromatic.NewUniverse(3)
	ids := run.FacetIDs(u)
	verts := make([]chromatic.Vertex2, 3)
	for i, id := range ids {
		verts[i] = u.Vertex(id)
	}
	type pair struct{ a, b int }
	want := map[pair]bool{{0, 1}: true, {0, 2}: false, {1, 2}: false}
	for p, w := range want {
		if got := Contending(verts[p.a], verts[p.b]); got != w {
			t.Errorf("pair (%d,%d): contending = %v, want %v", p.a, p.b, got, w)
		}
	}
	if !IsContentionSimplex(verts[:2]) {
		t.Errorf("{p1,p2} must be a contention simplex")
	}
	if IsContentionSimplex(verts) {
		t.Errorf("full facet must not be a contention simplex")
	}
	if !IsContentionSimplex(verts[:1]) || !IsContentionSimplex(nil) {
		t.Errorf("singletons and empty sets are vacuously contention simplices")
	}
}

// TestFigure4cCont2Census pins the measured census of the 2-contention
// complex for n=3 (Figure 4c): 78 contending pairs, 6 contending
// triangles (the 3! pairs of fully reversed sequential runs yield 6
// distinct triangles).
func TestFigure4cCont2Census(t *testing.T) {
	u := chromatic.NewUniverse(3)
	simps := Cont2Simplices(u, 1)
	pairs, tris := 0, 0
	for _, s := range simps {
		switch s.Dim() {
		case 1:
			pairs++
		case 2:
			tris++
		}
	}
	if pairs != 78 || tris != 6 {
		t.Errorf("Cont² census = (%d pairs, %d triangles), want (78, 6)", pairs, tris)
	}
}

// TestCont2InclusionClosed: faces of contention simplices are contention
// simplices (Cont² is a complex).
func TestCont2InclusionClosed(t *testing.T) {
	u := chromatic.NewUniverse(3)
	for _, s := range Cont2Simplices(u, 2) {
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if !Contending(u.Vertex(s[i]), u.Vertex(s[j])) {
					t.Fatalf("face of contention simplex not contending")
				}
			}
		}
	}
}

// TestFigure5aCritical1OF: for α(P)=min(|P|,1) (1-obstruction-freedom),
// the critical simplices of a Chr-s facet are exactly its first block.
func TestFigure5aCritical1OF(t *testing.T) {
	alpha := adversary.KObstructionFree(3, 1).Alpha
	for _, op := range procs.EnumerateOrderedPartitions(procs.FullSet(3)) {
		s := FromPartition(op)
		cs := CriticalSimplices(alpha, s)
		if len(cs) != 1 || cs[0] != op[0] {
			t.Errorf("partition %v: critical = %v, want [%v]", op, cs, op[0])
		}
		info := Critical(alpha, s)
		if info.CSM != op[0] || info.CSV != op[0] || info.Conc != 1 {
			t.Errorf("partition %v: info = %+v", op, info)
		}
	}
}

// TestFigure5bCritical: critical simplices for the adversary
// {p2},{p1,p3} + supersets on representative schedules.
func TestFigure5bCritical(t *testing.T) {
	alpha := fig5bAdversary(t).Alpha
	// Run {p2},{p1},{p3}: critical = {p2} (new α level 1) and {p3}
	// (completes Π, new α level 2).
	s := FromPartition(seq(1, 0, 2))
	cs := CriticalSimplices(alpha, s)
	wantSets := map[procs.Set]bool{procs.SetOf(1): true, procs.SetOf(2): true}
	if len(cs) != 2 || !wantSets[cs[0]] || !wantSets[cs[1]] {
		t.Errorf("critical simplices = %v, want {p2} and {p3}", cs)
	}
	info := Critical(alpha, s)
	if info.Conc != 2 {
		t.Errorf("Conc = %d, want 2", info.Conc)
	}
	// Synchronous run: the single group Π with α=2; every non-empty
	// subset θ has α(Π\θ) ≤ 1 < 2, so all 7 subsets are critical.
	sync := FromPartition(procs.Synchronous(procs.FullSet(3)))
	if got := len(CriticalSimplices(alpha, sync)); got != 7 {
		t.Errorf("sync critical count = %d, want 7", got)
	}
	// Run {p1},{p2},{p3}: {p1} has α({p1})=0 — never critical; {p2}
	// completes {p1,p2} (α 0→1): critical; {p3} completes Π (1→2).
	s3 := FromPartition(seq(0, 1, 2))
	cs3 := CriticalSimplices(alpha, s3)
	if len(cs3) != 2 || cs3[0] != procs.SetOf(1) || cs3[1] != procs.SetOf(2) {
		t.Errorf("critical = %v, want [{p2} {p3}]", cs3)
	}
}

// TestCriticalGroupConsistency cross-validates the group-based critical
// computation against the literal Definition 7 on every simplex of
// Chr s (n = 3 and 4).
func TestCriticalGroupConsistency(t *testing.T) {
	advs := []*adversary.Adversary{
		adversary.KObstructionFree(3, 1),
		adversary.TResilient(3, 1),
		fig5bAdversary(t),
		adversary.KObstructionFree(4, 2),
		adversary.TResilient(4, 2),
	}
	for _, a := range advs {
		alpha := a.Alpha
		ground := procs.FullSet(a.N())
		ForEachChr1Simplex(ground, func(s Chr1Simplex) bool {
			// Reference: enumerate all θ via Definition 7 directly.
			var refCSM, refCSV procs.Set
			refConc := 0
			for _, theta := range procs.NonemptySubsets(s.Procs()) {
				if !IsCriticalSimplex(alpha, s, theta) {
					continue
				}
				refCSM = refCSM.Union(theta)
				var carrier procs.Set
				theta.ForEach(func(q procs.ID) { carrier = s.Views[q] })
				refCSV = refCSV.Union(carrier)
				if av := alpha(carrier); av > refConc {
					refConc = av
				}
			}
			info := Critical(alpha, s)
			if info.CSM != refCSM || info.CSV != refCSV || info.Conc != refConc {
				t.Fatalf("%v: mismatch: got CSM=%v CSV=%v Conc=%d, ref CSM=%v CSV=%v Conc=%d",
					s.Views, info.CSM, info.CSV, info.Conc, refCSM, refCSV, refConc)
			}
			return true
		})
	}
}

// TestFigure6ConcurrencyLevels: concurrency map values on
// representative simplices (Figure 6).
func TestFigure6ConcurrencyLevels(t *testing.T) {
	oneOF := adversary.KObstructionFree(3, 1).Alpha
	// Lone vertex (p1, {p1,p2}): group incomplete — level 0 (black).
	v := Chr1Simplex{Views: map[procs.ID]procs.Set{0: procs.SetOf(0, 1)}}
	if got := Critical(oneOF, v).Conc; got != 0 {
		t.Errorf("1-OF Conc of incomplete block vertex = %d, want 0", got)
	}
	// Lone corner (p1, {p1}): critical — level 1 (orange/green region).
	c := Chr1Simplex{Views: map[procs.ID]procs.Set{0: procs.SetOf(0)}}
	if got := Critical(oneOF, c).Conc; got != 1 {
		t.Errorf("1-OF Conc of corner = %d, want 1", got)
	}
	fig5b := fig5bAdversary(t).Alpha
	// (p2, {p2}) is a witness of agreement power 1.
	p2solo := Chr1Simplex{Views: map[procs.ID]procs.Set{1: procs.SetOf(1)}}
	if got := Critical(fig5b, p2solo).Conc; got != 1 {
		t.Errorf("fig5b Conc of p2 corner = %d, want 1", got)
	}
	// (p1, {p1}) has α({p1}) = 0: level 0.
	p1solo := Chr1Simplex{Views: map[procs.ID]procs.Set{0: procs.SetOf(0)}}
	if got := Critical(fig5b, p1solo).Conc; got != 0 {
		t.Errorf("fig5b Conc of p1 corner = %d, want 0", got)
	}
	// Full synchronous facet: level 2 (green center).
	sync := FromPartition(procs.Synchronous(procs.FullSet(3)))
	if got := Critical(fig5b, sync).Conc; got != 2 {
		t.Errorf("fig5b Conc of sync facet = %d, want 2", got)
	}
}

// TestRAEqualsRkOF1 is experiment E9 for k=1: Definition 9 (union
// reading) coincides with Definition 6 for 1-obstruction-freedom.
func TestRAEqualsRkOF1(t *testing.T) {
	for _, n := range []int{3, 4} {
		u := chromatic.NewUniverse(n)
		kof := adversary.KObstructionFree(n, 1)
		rkof, err := BuildRkOF(u, 1)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := BuildRA(u, kof.Alpha, VariantUnion)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Equal(rkof) {
			t.Errorf("n=%d: R_A(1-OF) != R_{1-OF}: %d vs %d facets",
				n, ra.NumFacets(), rkof.NumFacets())
		}
	}
}

// TestRAStrictlyInsideRkOF2 pins the measured finding of E9 for k ≥ 2:
// R_A is a strict sub-complex of R_{k-OF} (Definition 9 additionally
// rejects runs that Algorithm 1's wait-phase cannot generate). At n=3,
// k=2: 142 vs 163 facets, with R_A ⊆ R_{k-OF}.
func TestRAStrictlyInsideRkOF2(t *testing.T) {
	u := chromatic.NewUniverse(3)
	kof := adversary.KObstructionFree(3, 2)
	rkof, err := BuildRkOF(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := BuildRA(u, kof.Alpha, VariantUnion)
	if err != nil {
		t.Fatal(err)
	}
	if got := rkof.NumFacets(); got != 163 {
		t.Errorf("R_{2-OF} facets = %d, want 163", got)
	}
	if got := ra.NumFacets(); got != 142 {
		t.Errorf("R_A(2-OF) facets = %d, want 142", got)
	}
	if miss := ra.MissingFrom(rkof); len(miss) != 0 {
		t.Errorf("R_A must be inside R_{2-OF}; %d facets escape", len(miss))
	}
	// The canonical rejected witness: p3 last in IS1 but solo-first in
	// IS2 — exactly a schedule blocked by Algorithm 1 (rank ≥ conc).
	witness := chromatic.Run2{R1: seq(0, 1, 2), R2: seq(2, 0, 1)}
	if ra.ContainsRun(witness) {
		t.Errorf("witness run should be rejected by Definition 9")
	}
	if !rkof.ContainsRun(witness) {
		t.Errorf("witness run should be accepted by Definition 6")
	}
}

// TestRTresMatchesRA is experiment E2: for t-resilient adversaries,
// Definition 9 (union reading) reproduces the Saraph-Herlihy-Gafni
// affine task R_{t-res} exactly, for every t, at n=3 and n=4.
func TestRTresMatchesRA(t *testing.T) {
	for _, n := range []int{3, 4} {
		for tt := 0; tt < n; tt++ {
			u := chromatic.NewUniverse(n)
			tr := adversary.TResilient(n, tt)
			rtres, err := BuildRTres(u, tt)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := BuildRA(u, tr.Alpha, VariantUnion)
			if err != nil {
				t.Fatal(err)
			}
			if !ra.Equal(rtres) {
				t.Errorf("n=%d t=%d: R_A != R_{t-res}: %d vs %d facets",
					n, tt, ra.NumFacets(), rtres.NumFacets())
			}
		}
	}
}

// TestIntersectionVariantDiffers documents why the union reading is the
// default: the literal Definition 9 intersection guard fails the
// R_{1-OF} cross-check.
func TestIntersectionVariantDiffers(t *testing.T) {
	u := chromatic.NewUniverse(3)
	kof := adversary.KObstructionFree(3, 1)
	rkof, err := BuildRkOF(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := BuildRA(u, kof.Alpha, VariantIntersection)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Equal(rkof) {
		t.Errorf("intersection variant unexpectedly matches R_{1-OF}; revisit DESIGN.md note")
	}
	if got := ra.NumFacets(); got != 49 {
		t.Errorf("intersection variant facets = %d, want measured 49", got)
	}
}

// TestFigure1bRTresCount pins the measured size of R_{1-res} for n=3
// (Figure 1b) and checks purity.
func TestFigure1bRTresCount(t *testing.T) {
	u := chromatic.NewUniverse(3)
	task, err := BuildRTres(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := task.NumFacets(); got != 142 {
		t.Errorf("R_{1-res} facets = %d, want 142", got)
	}
	cplx := task.Complex()
	if !cplx.IsPure() || cplx.Dimension() != 2 {
		t.Errorf("R_{1-res} must be pure of dimension 2")
	}
	// Wait-free degenerate cases: t = n-1 gives all of Chr² s.
	all, err := BuildRTres(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumFacets() != 169 {
		t.Errorf("R_{2-res} facets = %d, want 169", all.NumFacets())
	}
}

// TestWaitFreeRAIsFullChr2: the wait-free adversary's affine task is all
// of Chr² s — the FACT theorem degenerates to the ACT.
func TestWaitFreeRAIsFullChr2(t *testing.T) {
	u := chromatic.NewUniverse(3)
	wf := adversary.WaitFree(3)
	ra, err := BuildRA(u, wf.Alpha, DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	if ra.NumFacets() != 169 {
		t.Errorf("wait-free R_A facets = %d, want 169", ra.NumFacets())
	}
}

// TestFigure7RA pins the measured affine-task sizes of Figure 7 and
// structural invariants.
func TestFigure7RA(t *testing.T) {
	u := chromatic.NewUniverse(3)
	oneOF, err := BuildRA(u, adversary.KObstructionFree(3, 1).Alpha, DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	if oneOF.NumFacets() != 73 {
		t.Errorf("R_A(1-OF) facets = %d, want 73", oneOF.NumFacets())
	}
	fig5b, err := BuildRA(u, fig5bAdversary(t).Alpha, DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	if fig5b.NumFacets() != 145 {
		t.Errorf("R_A(fig5b) facets = %d, want measured 145", fig5b.NumFacets())
	}
	for _, task := range []*Task{oneOF, fig5b} {
		c := task.Complex()
		if !c.IsPure() || c.Dimension() != 2 || !c.IsChromatic() {
			t.Errorf("%s: must be pure chromatic of dim 2", task.Name)
		}
	}
	// The synchronous-synchronous run has no contention and full
	// participation witnesses: in both tasks.
	sync := chromatic.Run2{
		R1: procs.Synchronous(procs.FullSet(3)),
		R2: procs.Synchronous(procs.FullSet(3)),
	}
	if !oneOF.ContainsRun(sync) || !fig5b.ContainsRun(sync) {
		t.Errorf("sync/sync run must belong to every R_A")
	}
}

// TestTaskBasics covers the Task container API.
func TestTaskBasics(t *testing.T) {
	u := chromatic.NewUniverse(3)
	if _, err := NewTask("empty", u, nil); err == nil {
		t.Errorf("empty task must be rejected")
	}
	sync := chromatic.Run2{
		R1: procs.Synchronous(procs.FullSet(3)),
		R2: procs.Synchronous(procs.FullSet(3)),
	}
	task, err := NewTask("one", u, []chromatic.Run2{sync})
	if err != nil {
		t.Fatal(err)
	}
	if task.N() != 3 || task.NumFacets() != 1 || task.Universe() != u {
		t.Errorf("metadata wrong")
	}
	if !task.ContainsRun(sync) {
		t.Errorf("ContainsRun false negative")
	}
	other := chromatic.Run2{R1: seq(0, 1, 2), R2: seq(0, 1, 2)}
	if task.ContainsRun(other) {
		t.Errorf("ContainsRun false positive")
	}
	if task.VertexCensus() != 3 {
		t.Errorf("vertex census = %d", task.VertexCensus())
	}
	ids := sync.FacetIDs(u)
	if !task.ContainsSimplex(ids) || !task.ContainsSimplex(ids[:1]) {
		t.Errorf("ContainsSimplex should accept faces of facets")
	}
	if task.ContainsSimplex(nil) {
		t.Errorf("empty simplex not contained")
	}
	// Membership predicate: sub-ground runs must resolve via faces.
	member := task.Membership()
	if !member(sync, sync.Key()) {
		t.Errorf("membership of facet run")
	}
	soloP1 := chromatic.Run2{R1: seq(0), R2: seq(0)}
	// (p1 alone in both rounds) is a face of sync/sync? p1's content
	// there is {p1 -> {p1,p2,p3}}, not {p1 -> {p1}}: not a face.
	if member(soloP1, soloP1.Key()) {
		t.Errorf("solo run should not be a face of the sync facet")
	}
	// A task equals itself and differs from another.
	if !task.Equal(task) {
		t.Errorf("Equal reflexive")
	}
	task2, err := NewTask("two", u, []chromatic.Run2{other})
	if err != nil {
		t.Fatal(err)
	}
	if task.Equal(task2) {
		t.Errorf("Equal false positive")
	}
	if len(task.MissingFrom(task2)) != 1 {
		t.Errorf("MissingFrom wrong")
	}
}

// TestLemma3Distribution is experiment E14: the Lemma 3 inequality holds
// for every simplex with full carrier coverage and every level, for a
// battery of fair adversaries at n=3 (and a spot check at n=4).
func TestLemma3Distribution(t *testing.T) {
	advs := []*adversary.Adversary{
		adversary.WaitFree(3),
		adversary.TResilient(3, 1),
		adversary.KObstructionFree(3, 1),
		adversary.KObstructionFree(3, 2),
		fig5bAdversary(t),
		adversary.TResilient(4, 2),
	}
	for _, a := range advs {
		ground := procs.FullSet(a.N())
		ForEachChr1Simplex(ground, func(s Chr1Simplex) bool {
			for l := 1; l <= a.N(); l++ {
				if ok, skip := CheckLemma3(a.Alpha, s, l); !skip && !ok {
					t.Fatalf("%v: Lemma 3 fails at %v l=%d", a, s.Views, l)
				}
				if !CheckCorollary4(a.Alpha, s, l) {
					t.Fatalf("%v: Corollary 4 fails at %v l=%d", a, s.Views, l)
				}
			}
			return true
		})
	}
}

// TestLemma11 is experiment E15.
func TestLemma11(t *testing.T) {
	advs := []*adversary.Adversary{
		adversary.WaitFree(3),
		adversary.TResilient(3, 1),
		adversary.KObstructionFree(3, 2),
		fig5bAdversary(t),
		adversary.TResilient(4, 1),
	}
	for _, a := range advs {
		ForEachChr1Simplex(procs.FullSet(a.N()), func(s Chr1Simplex) bool {
			if !CheckLemma11(a.Alpha, s) {
				t.Fatalf("%v: Lemma 11 fails at %v", a, s.Views)
			}
			return true
		})
	}
}

// TestIterateRA: iterating R_A over the standard simplex (the affine
// model) produces pure chromatic complexes with consistent carriers.
func TestIterateRA(t *testing.T) {
	u := chromatic.NewUniverse(3)
	ra, err := BuildRA(u, adversary.KObstructionFree(3, 1).Alpha, DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	input := standardComplex(t, 3)
	tower, err := ra.Iterate(input, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := tower.Top()
	if !top.IsChromatic() {
		t.Errorf("R_A(s) must be chromatic")
	}
	topFacets := 0
	for _, f := range top.Facets() {
		if f.Dim() == 2 {
			topFacets++
		}
	}
	if topFacets != ra.NumFacets() {
		t.Errorf("R_A(s) top facets = %d, want %d", topFacets, ra.NumFacets())
	}
}

func standardComplex(t *testing.T, n int) *sc.Complex {
	t.Helper()
	c := sc.NewComplex(n)
	ids := make([]sc.VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = sc.VertexID(i)
		if err := c.AddVertex(ids[i], i, procs.ID(i).String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddSimplex(ids...); err != nil {
		t.Fatal(err)
	}
	return c
}
