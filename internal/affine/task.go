package affine

// The affine-task container: a pure sub-complex of Chr² s given by its
// facets (2-round runs), with membership tests, the simplicial complex
// realization, and the Membership predicate consumed by
// chromatic.Tower to build iterated models L^m (Section 2, "Simplex
// agreement and affine tasks").

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sc"
)

// ErrEmptyTask is returned when a construction selects no facet: the
// affine task would be empty, which Definition 9 excludes.
var ErrEmptyTask = errors.New("affine task has no facets")

// Task is an affine task L ⊆ Chr² s: a pure non-empty sub-complex of the
// second chromatic subdivision, identified by its top-dimensional facets
// (2-round IIS runs over the full process set).
type Task struct {
	Name string

	n      int
	u      *chromatic.Universe
	facets []chromatic.Run2

	keys map[chromatic.RunKey]bool // binary run keys of the facets

	cplxOnce sync.Once
	cplx     *sc.Complex // lazy closure of the facets

	sigOnce sync.Once
	sig     string

	tabMu  sync.Mutex
	tables map[procs.Set]*chromatic.MembershipTable

	restMu     sync.Mutex
	restricted map[procs.Set][]chromatic.Run2
}

// NewTask builds an affine task from explicit facet runs.
func NewTask(name string, u *chromatic.Universe, facets []chromatic.Run2) (*Task, error) {
	if len(facets) == 0 {
		return nil, ErrEmptyTask
	}
	t := &Task{
		Name:   name,
		n:      u.N(),
		u:      u,
		facets: facets,
		keys:   make(map[chromatic.RunKey]bool, len(facets)),
	}
	full := procs.FullSet(u.N())
	for _, r := range facets {
		if err := r.Validate(full); err != nil {
			return nil, err
		}
		t.keys[r.Key()] = true
	}
	return t, nil
}

// N returns the number of processes.
func (t *Task) N() int { return t.n }

// Universe returns the vertex interner shared by the task's complexes.
func (t *Task) Universe() *chromatic.Universe { return t.u }

// NumFacets returns the number of top-dimensional facets.
func (t *Task) NumFacets() int { return len(t.facets) }

// Facets returns a copy of the facet runs.
func (t *Task) Facets() []chromatic.Run2 {
	out := make([]chromatic.Run2, len(t.facets))
	copy(out, t.facets)
	return out
}

// ContainsRun reports whether the full-participation run is a facet.
func (t *Task) ContainsRun(r chromatic.Run2) bool { return t.keys[r.Key()] }

// Complex materializes the task as a simplicial complex (the closure of
// its facets, including all boundary faces). Cached after first call.
func (t *Task) Complex() *sc.Complex {
	t.cplxOnce.Do(func() {
		c := sc.NewComplex(t.n)
		for _, r := range t.facets {
			chromatic.AddFacetToComplex(t.u, c, r)
		}
		t.cplx = c
	})
	return t.cplx
}

// Signature returns a deterministic identifier of the task's membership
// semantics: a digest of the system size and the sorted binary facet run
// keys. Two tasks with equal signatures accept exactly the same runs, so
// the signature keys the iterated-subdivision cache
// (chromatic.TowerCache).
func (t *Task) Signature() string {
	t.sigOnce.Do(func() {
		keys := make([]chromatic.RunKey, 0, len(t.keys))
		for k := range t.keys {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		h := sha256.New()
		fmt.Fprintf(h, "affine:%d;", t.n)
		buf := make([]byte, 0, 16)
		for _, k := range keys {
			h.Write(k.AppendBytes(buf[:0]))
		}
		t.sig = hex.EncodeToString(h.Sum(nil))
	})
	return t.sig
}

// MembershipTable returns the task's precomputed rank-indexed
// membership bitset over the given ground set — affine.Task natively
// implements chromatic.MemberTables, so the task itself is the fast
// path of ApplyAffineTables / Tower.ExtendTables. Tables are built once
// per (task, ground): from the facet key set on the full ground, and
// through the complex's closure on restricted grounds. Safe for
// concurrent use.
func (t *Task) MembershipTable(ground procs.Set) *chromatic.MembershipTable {
	t.tabMu.Lock()
	mt, ok := t.tables[ground]
	t.tabMu.Unlock()
	if ok {
		return mt
	}
	if ground == procs.FullSet(t.n) {
		mt = chromatic.NewMembershipTable(ground,
			func(r chromatic.Run2, key chromatic.RunKey) bool { return t.keys[key] })
	} else {
		t.Complex()
		mt = chromatic.NewMembershipTable(ground,
			func(r chromatic.Run2, key chromatic.RunKey) bool {
				return t.ContainsSimplex(r.FacetIDs(t.u))
			})
	}
	t.tabMu.Lock()
	if prior, ok := t.tables[ground]; ok {
		mt = prior
	} else {
		if t.tables == nil {
			t.tables = make(map[procs.Set]*chromatic.MembershipTable)
		}
		t.tables[ground] = mt
	}
	t.tabMu.Unlock()
	return mt
}

// RestrictedFacets enumerates the runs over the participating set whose
// simplices belong to the task: the facets of L ∩ Chr²(P). Derived from
// the rank-indexed membership table, memoized per participant set and
// shared by every simulation over this task; safe for concurrent use.
func (t *Task) RestrictedFacets(p procs.Set) []chromatic.Run2 {
	t.restMu.Lock()
	runs, ok := t.restricted[p]
	t.restMu.Unlock()
	if ok {
		return runs
	}
	mt := t.MembershipTable(p)
	parts := chromatic.OrderedPartitionsOf(p)
	rank := chromatic.RunRank(0)
	for i := range parts {
		for j := range parts {
			if mt.Contains(rank) {
				runs = append(runs, chromatic.Run2{R1: parts[i], R2: parts[j]})
			}
			rank++
		}
	}
	t.restMu.Lock()
	if prior, ok := t.restricted[p]; ok {
		runs = prior
	} else {
		if t.restricted == nil {
			t.restricted = make(map[procs.Set][]chromatic.Run2)
		}
		t.restricted[p] = runs
	}
	t.restMu.Unlock()
	return runs
}

// PrecomputeRestrictedFacets fills the restricted-facet (and membership
// table) memo for every non-empty participating set P ⊆ Π in parallel —
// the per-P computations are independent, so they fan out over the
// worker pool (workers <= 0 selects one per CPU). The memoized results
// are identical to what serial RestrictedFacets calls would produce;
// simulation campaigns touching many participating sets call this once
// up front instead of paying for each set on first touch.
func (t *Task) PrecomputeRestrictedFacets(workers int) {
	subsets := procs.NonemptySubsets(procs.FullSet(t.n))
	if workers <= 0 {
		workers = chromatic.DefaultWorkers()
	}
	if workers > len(subsets) {
		workers = len(subsets)
	}
	if workers <= 1 {
		for _, p := range subsets {
			t.RestrictedFacets(p)
		}
		return
	}
	// The closure complex is built lazily under a Once; touch it before
	// fanning out so workers only read it.
	t.Complex()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(subsets) {
					return
				}
				t.RestrictedFacets(subsets[i])
			}
		}()
	}
	wg.Wait()
}

// ContainsSimplex reports whether the interned vertex set is a simplex
// of the task (a face of some facet).
func (t *Task) ContainsSimplex(ids []sc.VertexID) bool {
	if len(ids) == 0 {
		return false
	}
	return t.Complex().Has(ids...)
}

// Membership returns the structural predicate used to apply this affine
// task to arbitrary chromatic complexes (chromatic.Tower.Extend): a
// 2-round run over a ground set of colors is accepted iff its simplex
// belongs to the task. The run key the enumerators precompute indexes
// the facet map directly, so the full-ground path is a single map read.
//
// This is the generic/compat form; the engine's fast path consumes the
// task directly as a chromatic.MemberTables provider (MembershipTable),
// which answers by rank-indexed bit probes. The returned predicate is
// safe for concurrent use: the task complex is materialized eagerly
// here, so evaluations only read it (and intern through the
// lock-protected Universe).
func (t *Task) Membership() chromatic.Membership {
	t.Complex()
	full := procs.FullSet(t.n)
	return func(r chromatic.Run2, key chromatic.RunKey) bool {
		if r.Ground() == full {
			return t.keys[key]
		}
		return t.ContainsSimplex(r.FacetIDs(t.u))
	}
}

// Equal reports whether two tasks have the same facet set.
func (t *Task) Equal(other *Task) bool {
	if t.n != other.n || len(t.facets) != len(other.facets) {
		return false
	}
	for k := range t.keys {
		if !other.keys[k] {
			return false
		}
	}
	return true
}

// MissingFrom returns facets of t absent from other (diagnostics for
// equality experiments). Sorted by run key.
func (t *Task) MissingFrom(other *Task) []chromatic.Run2 {
	var out []chromatic.Run2
	for _, r := range t.facets {
		if !other.keys[r.Key()] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key().Less(out[j].Key()) })
	return out
}

// VertexCensus returns the number of distinct vertices used by the
// task's facets.
func (t *Task) VertexCensus() int {
	seen := make(map[sc.VertexID]bool)
	for _, r := range t.facets {
		for _, id := range r.FacetIDs(t.u) {
			seen[id] = true
		}
	}
	return len(seen)
}

// Iterate builds the m-fold iteration L^m(I) over an input complex I
// (use the standard simplex for the affine model of Section 2) and
// returns the tower with carrier tracking.
func (t *Task) Iterate(input *sc.Complex, m int) (*chromatic.Tower, error) {
	return t.IterateWorkers(input, m, 0)
}

// IterateWorkers is Iterate with an explicit subdivision worker count
// (<= 0 selects chromatic.DefaultWorkers(), 1 the serial path). The
// tower extends through the task's rank-indexed membership tables.
func (t *Task) IterateWorkers(input *sc.Complex, m, workers int) (*chromatic.Tower, error) {
	tower := chromatic.NewTower(input)
	tower.SetWorkers(workers)
	for i := 0; i < m; i++ {
		if err := tower.ExtendTables(t); err != nil {
			return nil, err
		}
	}
	return tower, nil
}
