package affine

// The affine-task container: a pure sub-complex of Chr² s given by its
// facets (2-round runs), with membership tests, the simplicial complex
// realization, and the Membership predicate consumed by
// chromatic.Tower to build iterated models L^m (Section 2, "Simplex
// agreement and affine tasks").

import (
	"errors"
	"sort"

	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sc"
)

// ErrEmptyTask is returned when a construction selects no facet: the
// affine task would be empty, which Definition 9 excludes.
var ErrEmptyTask = errors.New("affine task has no facets")

// Task is an affine task L ⊆ Chr² s: a pure non-empty sub-complex of the
// second chromatic subdivision, identified by its top-dimensional facets
// (2-round IIS runs over the full process set).
type Task struct {
	Name string

	n      int
	u      *chromatic.Universe
	facets []chromatic.Run2

	keys map[string]bool // run keys of the facets
	cplx *sc.Complex     // lazy closure of the facets
}

// NewTask builds an affine task from explicit facet runs.
func NewTask(name string, u *chromatic.Universe, facets []chromatic.Run2) (*Task, error) {
	if len(facets) == 0 {
		return nil, ErrEmptyTask
	}
	t := &Task{
		Name:   name,
		n:      u.N(),
		u:      u,
		facets: facets,
		keys:   make(map[string]bool, len(facets)),
	}
	full := procs.FullSet(u.N())
	for _, r := range facets {
		if err := r.Validate(full); err != nil {
			return nil, err
		}
		t.keys[runKey(r)] = true
	}
	return t, nil
}

func runKey(r chromatic.Run2) string { return r.R1.Key() + "/" + r.R2.Key() }

// N returns the number of processes.
func (t *Task) N() int { return t.n }

// Universe returns the vertex interner shared by the task's complexes.
func (t *Task) Universe() *chromatic.Universe { return t.u }

// NumFacets returns the number of top-dimensional facets.
func (t *Task) NumFacets() int { return len(t.facets) }

// Facets returns a copy of the facet runs.
func (t *Task) Facets() []chromatic.Run2 {
	out := make([]chromatic.Run2, len(t.facets))
	copy(out, t.facets)
	return out
}

// ContainsRun reports whether the full-participation run is a facet.
func (t *Task) ContainsRun(r chromatic.Run2) bool { return t.keys[runKey(r)] }

// Complex materializes the task as a simplicial complex (the closure of
// its facets, including all boundary faces). Cached after first call.
func (t *Task) Complex() *sc.Complex {
	if t.cplx != nil {
		return t.cplx
	}
	c := sc.NewComplex(t.n)
	for _, r := range t.facets {
		chromatic.AddFacetToComplex(t.u, c, r)
	}
	t.cplx = c
	return c
}

// ContainsSimplex reports whether the interned vertex set is a simplex
// of the task (a face of some facet).
func (t *Task) ContainsSimplex(ids []sc.VertexID) bool {
	if len(ids) == 0 {
		return false
	}
	return t.Complex().Has(ids...)
}

// Membership returns the structural predicate used to apply this affine
// task to arbitrary chromatic complexes (chromatic.Tower.Extend): a
// 2-round run over a ground set of colors is accepted iff its simplex
// belongs to the task.
func (t *Task) Membership() chromatic.Membership {
	return func(r chromatic.Run2) bool {
		if r.Ground() == procs.FullSet(t.n) {
			return t.keys[runKey(r)]
		}
		return t.ContainsSimplex(r.FacetIDs(t.u))
	}
}

// Equal reports whether two tasks have the same facet set.
func (t *Task) Equal(other *Task) bool {
	if t.n != other.n || len(t.facets) != len(other.facets) {
		return false
	}
	for k := range t.keys {
		if !other.keys[k] {
			return false
		}
	}
	return true
}

// MissingFrom returns facets of t absent from other (diagnostics for
// equality experiments). Sorted by run key.
func (t *Task) MissingFrom(other *Task) []chromatic.Run2 {
	var out []chromatic.Run2
	for _, r := range t.facets {
		if !other.keys[runKey(r)] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return runKey(out[i]) < runKey(out[j]) })
	return out
}

// VertexCensus returns the number of distinct vertices used by the
// task's facets.
func (t *Task) VertexCensus() int {
	seen := make(map[sc.VertexID]bool)
	for _, r := range t.facets {
		for _, id := range r.FacetIDs(t.u) {
			seen[id] = true
		}
	}
	return len(seen)
}

// Iterate builds the m-fold iteration L^m(I) over an input complex I
// (use the standard simplex for the affine model of Section 2) and
// returns the tower with carrier tracking.
func (t *Task) Iterate(input *sc.Complex, m int) (*chromatic.Tower, error) {
	tower := chromatic.NewTower(input)
	member := t.Membership()
	for i := 0; i < m; i++ {
		if err := tower.Extend(member); err != nil {
			return nil, err
		}
	}
	return tower, nil
}
