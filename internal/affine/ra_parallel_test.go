package affine

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// TestBuildRAParallelMatchesSerial: the parallel facet filter is gated
// by byte-identity with the serial reference — same rows, same order,
// at any worker count, for both guard variants.
func TestBuildRAParallelMatchesSerial(t *testing.T) {
	n := 4
	parts := procs.EnumerateOrderedPartitions(procs.FullSet(n))
	alphas := map[string]adversary.AlphaFunc{
		"waitfree": adversary.WaitFree(n).Alpha,
		"1-res":    adversary.TResilient(n, 1).Alpha,
		"2-OF":     adversary.KObstructionFree(n, 2).Alpha,
	}
	for name, alpha := range alphas {
		for _, variant := range []Def9Variant{VariantIntersection, VariantUnion} {
			serial := buildRAFacetRows(alpha, parts, variant, 1)
			for _, workers := range []int{2, 8, 1000} {
				par := buildRAFacetRows(alpha, parts, variant, workers)
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("%s variant=%d: rows differ between 1 and %d workers", name, variant, workers)
				}
			}
		}
	}
}

// TestBuildRATaskMatchesSerialScan: BuildRA (parallel by default)
// produces exactly the task of the historical serial double loop.
func TestBuildRATaskMatchesSerialScan(t *testing.T) {
	n := 4
	u := chromatic.NewUniverse(n)
	alpha := adversary.KObstructionFree(n, 2).Alpha
	parts := procs.EnumerateOrderedPartitions(procs.FullSet(n))

	var facets []chromatic.Run2
	for _, r1 := range parts {
		pc := newR1Context(alpha, r1)
		for _, r2 := range parts {
			run := chromatic.Run2{R1: r1, R2: r2}
			if raFacetOK(pc, run, VariantUnion) {
				facets = append(facets, run)
			}
		}
	}
	want, err := NewTask("ref", u, facets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildRA(u, alpha, VariantUnion)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Facets(), got.Facets()) {
		t.Fatalf("BuildRA facets differ from the serial scan (%d vs %d)", got.NumFacets(), want.NumFacets())
	}
}
