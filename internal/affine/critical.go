package affine

// Critical simplices (Definition 7), critical-simplex members CSM,
// critical-simplex views CSV, and the concurrency map Conc_α
// (Definition 8), computed on simplices of Chr s.
//
// A simplex σ ∈ Chr s is represented by the View¹ assignment of its
// vertices: vertex (q, V) has carrier(­v, s) = V. Grouping vertices by
// view makes criticality tractable:
//
//   - a critical simplex θ must have all vertices sharing one view V, so
//     θ is a subset of the "view group" G_V = {q ∈ σ : View¹(q) = V};
//   - θ ⊆ G_V is critical iff α(V \ χ(θ)) < α(V);
//   - criticality is upward-closed inside a group (α is monotone), so
//     the group itself is critical iff any subset is, and then every
//     member of the group belongs to some critical simplex.
//
// Hence CSM_α(σ) = ∪{G_V : α(V\G_V) < α(V)}, CSV_α(σ) = ∪{V : ...},
// and Conc_α(σ) = max{α(V) : ...} (Definition 8, with max ∅ = 0).

import (
	"sort"

	"repro/internal/adversary"
	"repro/internal/procs"
)

// Chr1Simplex is a simplex of Chr s given extensionally: the View¹ of
// each of its vertices, keyed by color. (Vertex (q, Views[q]).)
type Chr1Simplex struct {
	Views map[procs.ID]procs.Set
}

// Procs returns χ(σ).
func (s Chr1Simplex) Procs() procs.Set {
	var out procs.Set
	for q := range s.Views {
		out = out.Add(q)
	}
	return out
}

// Carrier returns χ(carrier(σ, s)): the union of the views.
func (s Chr1Simplex) Carrier() procs.Set {
	var out procs.Set
	for _, v := range s.Views {
		out = out.Union(v)
	}
	return out
}

// Restrict keeps only the vertices with colors in u.
func (s Chr1Simplex) Restrict(u procs.Set) Chr1Simplex {
	out := Chr1Simplex{Views: make(map[procs.ID]procs.Set, u.Size())}
	for q, v := range s.Views {
		if u.Contains(q) {
			out.Views[q] = v
		}
	}
	return out
}

// ViewGroup is a maximal set of vertices of a Chr-s simplex sharing the
// same View¹.
type ViewGroup struct {
	View    procs.Set // the shared View¹ (= shared carrier in s)
	Members procs.Set // χ of the group's vertices
}

// Groups returns the view groups of the simplex, ordered by view size
// (the IS containment order).
func (s Chr1Simplex) Groups() []ViewGroup {
	byView := make(map[procs.Set]procs.Set)
	for q, v := range s.Views {
		byView[v] = byView[v].Add(q)
	}
	out := make([]ViewGroup, 0, len(byView))
	for v, g := range byView {
		out = append(out, ViewGroup{View: v, Members: g})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].View.Size() != out[j].View.Size() {
			return out[i].View.Size() < out[j].View.Size()
		}
		return out[i].View < out[j].View
	})
	return out
}

// CriticalInfo aggregates CSM, CSV and Conc of a Chr-s simplex.
type CriticalInfo struct {
	CSM  procs.Set // χ(CSM_α(σ)): members of some critical simplex
	CSV  procs.Set // χ(CSV_α(σ)): union of critical views
	Conc int       // Conc_α(σ)
	// CriticalGroups lists the critical view groups in view order.
	CriticalGroups []ViewGroup
}

// Critical computes CSM/CSV/Conc for the simplex under the agreement
// function α.
func Critical(alpha adversary.AlphaFunc, s Chr1Simplex) CriticalInfo {
	var info CriticalInfo
	for _, g := range s.Groups() {
		av := alpha(g.View)
		if alpha(g.View.Diff(g.Members)) < av {
			info.CSM = info.CSM.Union(g.Members)
			info.CSV = info.CSV.Union(g.View)
			if av > info.Conc {
				info.Conc = av
			}
			info.CriticalGroups = append(info.CriticalGroups, g)
		}
	}
	return info
}

// IsCriticalSimplex evaluates Definition 7 directly on a candidate θ
// (given as its color set) inside the simplex s: all vertices of θ share
// the carrier of θ, and α drops when removing χ(θ) from it.
func IsCriticalSimplex(alpha adversary.AlphaFunc, s Chr1Simplex, theta procs.Set) bool {
	if theta.IsEmpty() || !theta.SubsetOf(s.Procs()) {
		return false
	}
	var carrier procs.Set
	first := true
	same := true
	theta.ForEach(func(q procs.ID) {
		v := s.Views[q]
		if first {
			carrier = v
			first = false
		} else if v != carrier {
			same = false
		}
	})
	if !same {
		return false
	}
	return alpha(carrier.Diff(theta)) < alpha(carrier)
}

// CriticalSimplices enumerates CS_α(σ): every critical sub-simplex of s,
// as color sets. Exponential in group sizes; intended for tests and
// small-n experiments (Lemma 3, Figure 5).
func CriticalSimplices(alpha adversary.AlphaFunc, s Chr1Simplex) []procs.Set {
	var out []procs.Set
	for _, g := range s.Groups() {
		av := alpha(g.View)
		for _, theta := range procs.NonemptySubsets(g.Members) {
			if alpha(g.View.Diff(theta)) < av {
				out = append(out, theta)
			}
		}
	}
	procs.SortSets(out)
	return out
}

// FromPartition builds the Chr-s facet of an ordered partition: the
// simplex whose vertices are (q, view of q).
func FromPartition(op procs.OrderedPartition) Chr1Simplex {
	return Chr1Simplex{Views: op.Views()}
}
