package affine

// BuildRA constructs the affine task R_A of Definition 9 for a fair
// adversary's agreement function α:
//
//	R_A = Cl({σ ∈ facets(Chr² s) : ∀θ ⊆ σ, P(θ, σ)})
//	P(θ, σ) ≡ (θ ∈ Cont² ∧ guard(θ) = ∅) ⟹ dim(θ) < Conc_α(τ)
//
// with τ = carrier(θ, Chr s) and ρ = carrier(σ, Chr s). The guard is the
// color set that "may rely on critical simplices"; the paper states it
// as χ(θ) ∩ χ(CSM_α(ρ)) ∩ χ(CSV_α(τ)) in Definition 9 but uses
// χ(θ) ∩ (χ(CSM_α(ρ)) ∪ χ(CSV_α(τ))) in the safety proof (Lemma 6).
// Both readings are implemented; see Def9Variant. Experiment E9 (the
// paper's own sanity condition R_A = R_{k-OF} for k-obstruction-free
// adversaries) discriminates them empirically.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// Def9Variant selects the reading of the guard condition in
// Definition 9.
type Def9Variant int

const (
	// VariantIntersection uses χ(θ) ∩ χ(CSM(ρ)) ∩ χ(CSV(τ)) = ∅, the
	// literal text of Definition 9.
	VariantIntersection Def9Variant = iota + 1
	// VariantUnion uses χ(θ) ∩ (χ(CSM(ρ)) ∪ χ(CSV(τ))) = ∅, the guard
	// used in the proof of Lemma 6.
	VariantUnion
)

// DefaultVariant is the package default, fixed by experiment E9: the
// union reading makes R_A coincide with R_{k-OF} on k-obstruction-free
// adversaries (see EXPERIMENTS.md).
const DefaultVariant = VariantUnion

// BuildRA constructs R_A for an n-process system and agreement function
// α. The adversary must satisfy α(Π) ≥ 1 for the task to be non-empty.
// The facet filter runs one worker per CPU over the first-round
// schedules (the rows are independent: each builds its own r1Context);
// the facet order — and so the task — is identical to the serial scan.
func BuildRA(u *chromatic.Universe, alpha adversary.AlphaFunc, variant Def9Variant) (*Task, error) {
	n := u.N()
	full := procs.FullSet(n)
	parts := procs.EnumerateOrderedPartitions(full)
	rows := buildRAFacetRows(alpha, parts, variant, 0)
	var facets []chromatic.Run2
	for _, row := range rows {
		facets = append(facets, row...)
	}
	t, err := NewTask(fmt.Sprintf("R_A(n=%d)", n), u, facets)
	if err != nil {
		return nil, fmt.Errorf("R_A: %w", err)
	}
	return t, nil
}

// parallelRARows is the row count below which the parallel scan is not
// worth its goroutines: n=3 has 13 ordered partitions (serial), n=4
// has 75 and n=5 has 541 (parallel).
const parallelRARows = 64

// buildRAFacetRows applies the Definition 9 facet filter row by row:
// rows[i] holds the facets with R1 = parts[i], each row in r2
// enumeration order. workers <= 0 selects one per CPU; small domains
// and workers == 1 take the serial path. Every worker builds its own
// r1Context, so rows share no state and the concatenated output is
// byte-identical across worker counts.
func buildRAFacetRows(alpha adversary.AlphaFunc, parts []procs.OrderedPartition, variant Def9Variant, workers int) [][]chromatic.Run2 {
	rows := make([][]chromatic.Run2, len(parts))
	row := func(i int) {
		r1 := parts[i]
		pc := newR1Context(alpha, r1)
		for _, r2 := range parts {
			run := chromatic.Run2{R1: r1, R2: r2}
			if raFacetOK(pc, run, variant) {
				rows[i] = append(rows[i], run)
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers == 1 || len(parts) < parallelRARows {
		for i := range parts {
			row(i)
		}
		return rows
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				row(i)
			}
		}()
	}
	wg.Wait()
	return rows
}

// BuildRAForAdversary is a convenience wrapper deriving α from A.
func BuildRAForAdversary(u *chromatic.Universe, a *adversary.Adversary, variant Def9Variant) (*Task, error) {
	t, err := BuildRA(u, a.Alpha, variant)
	if err != nil {
		return nil, err
	}
	t.Name = "R_" + a.String()
	return t, nil
}

// r1Context caches the α-dependent data of one first-round schedule: the
// full-carrier critical info (for ρ) and per-subset τ contexts.
type r1Context struct {
	alpha adversary.AlphaFunc
	view1 map[procs.ID]procs.Set
	rho   CriticalInfo
	sigma Chr1Simplex
	tau   map[procs.Set]CriticalInfo
}

func newR1Context(alpha adversary.AlphaFunc, r1 procs.OrderedPartition) *r1Context {
	sigma := FromPartition(r1)
	return &r1Context{
		alpha: alpha,
		view1: sigma.Views,
		rho:   Critical(alpha, sigma),
		sigma: sigma,
		tau:   make(map[procs.Set]CriticalInfo),
	}
}

// tauInfo returns the critical info of the sub-simplex of the round-1
// facet restricted to the processes in u (the carrier of θ in Chr s).
func (c *r1Context) tauInfo(u procs.Set) CriticalInfo {
	if info, ok := c.tau[u]; ok {
		return info
	}
	info := Critical(c.alpha, c.sigma.Restrict(u))
	c.tau[u] = info
	return info
}

// raFacetOK evaluates ∀θ ⊆ σ: P(θ, σ) for the facet of the run.
func raFacetOK(c *r1Context, run chromatic.Run2, variant Def9Variant) bool {
	fc := newFacetContention(run)
	m := len(fc.members)
	for mask := 1; mask < 1<<uint(m); mask++ {
		if !fc.table[mask] {
			continue // θ ∉ Cont²: P(θ,σ) holds vacuously
		}
		theta := fc.setOf(mask)
		tau := c.tauInfo(fc.unionV2[mask])
		var guard procs.Set
		switch variant {
		case VariantIntersection:
			guard = theta.Intersect(c.rho.CSM).Intersect(tau.CSV)
		default:
			guard = theta.Intersect(c.rho.CSM.Union(tau.CSV))
		}
		if guard.IsEmpty() && theta.Size()-1 >= tau.Conc {
			return false
		}
	}
	return true
}

// BuildRkOF constructs R_{k-OF} per Definition 6: the pure complement of
// the contention simplices of dimension ≥ k, i.e. the closure of the
// facets of Chr² s having no (k+1)-subset of pairwise-contending
// vertices.
func BuildRkOF(u *chromatic.Universe, k int) (*Task, error) {
	n := u.N()
	full := procs.FullSet(n)
	parts := procs.EnumerateOrderedPartitions(full)
	var facets []chromatic.Run2
	for _, r1 := range parts {
		for _, r2 := range parts {
			run := chromatic.Run2{R1: r1, R2: r2}
			fc := newFacetContention(run)
			ok := true
			for mask := 1; mask < 1<<uint(n) && ok; mask++ {
				if fc.table[mask] && popcount(mask)-1 >= k {
					ok = false
				}
			}
			if ok {
				facets = append(facets, run)
			}
		}
	}
	t, err := NewTask(fmt.Sprintf("R_%d-OF(n=%d)", k, n), u, facets)
	if err != nil {
		return nil, fmt.Errorf("R_%d-OF: %w", k, err)
	}
	return t, nil
}

// BuildRTres constructs the t-resilient affine task R_{t-res} of Saraph,
// Herlihy and Gafni (Figure 1b): the facets of Chr² s in which every
// process "sees" at least n−t−1 other processes through the two rounds,
// i.e. every vertex's carrier χ(carrier(v, s)) has at least n−t
// members. (The simplices excluded are exactly those adjacent to the
// (n−t−1)-skeleton of s.)
func BuildRTres(u *chromatic.Universe, t int) (*Task, error) {
	n := u.N()
	full := procs.FullSet(n)
	parts := procs.EnumerateOrderedPartitions(full)
	var facets []chromatic.Run2
	for _, r1 := range parts {
		view1 := r1.Views()
		for _, r2 := range parts {
			run := chromatic.Run2{R1: r1, R2: r2}
			ok := true
			full.ForEach(func(p procs.ID) {
				if !ok {
					return
				}
				v2, _ := r2.ViewOf(p)
				var carrier procs.Set
				v2.ForEach(func(q procs.ID) { carrier = carrier.Union(view1[q]) })
				if carrier.Size() < n-t {
					ok = false
				}
			})
			if ok {
				facets = append(facets, run)
			}
		}
	}
	task, err := NewTask(fmt.Sprintf("R_%d-res(n=%d)", t, n), u, facets)
	if err != nil {
		return nil, fmt.Errorf("R_%d-res: %w", t, err)
	}
	return task, nil
}
