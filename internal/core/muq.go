package core

// The α-adaptive leader-election map μ_Q of Section 6.2, together with
// checkable forms of its three properties (Validity 9, Agreement 10,
// Robustness 12). μ_Q assigns to every R_A vertex of a process in Q a
// leader from Q observed in that iteration, with the number of distinct
// leaders bounded by the agreement power of the witnessed participation.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// MuQ computes μ_Q(v) for a Chr²-s vertex v (its Content is the simplex
// carrier(v, Chr s)). Q is the set of processes that may participate in
// the agreement and have not terminated. ok is false when no observed
// View¹ intersects Q (cannot happen when χ(v) ∈ Q, by Property 9).
func MuQ(alpha adversary.AlphaFunc, v chromatic.Vertex2, q procs.Set) (procs.ID, bool) {
	ctx := affine.Chr1Simplex{Views: v.Content}
	info := affine.Critical(alpha, ctx)
	if info.CSV.Intersects(q) {
		// δ_Q: the smallest critical-simplex View¹ intersecting Q.
		// Critical groups are ordered by view size (IS containment), so
		// the first intersecting one is minimal.
		for _, g := range info.CriticalGroups {
			if g.View.Intersects(q) {
				leader, _ := g.View.Intersect(q).Min()
				return leader, true
			}
		}
	}
	// γ_Q: the smallest observed View¹ intersecting Q.
	var best procs.Set
	found := false
	for _, view := range v.Content {
		if !view.Intersects(q) {
			continue
		}
		if !found || view.Size() < best.Size() {
			best = view
			found = true
		}
	}
	if !found {
		return 0, false
	}
	leader, _ := best.Intersect(q).Min()
	return leader, true
}

// CheckMuQValidity verifies Property 9 on every facet of the task: for
// every vertex v with χ(v) ∈ Q, μ_Q(v) ∈ χ(carrier(v, s)) ∩ Q.
func CheckMuQValidity(alpha adversary.AlphaFunc, task *affine.Task) error {
	u := task.Universe()
	full := procs.FullSet(task.N())
	for _, run := range task.Facets() {
		for _, id := range run.FacetIDs(u) {
			v := u.Vertex(id)
			for _, q := range procs.NonemptySubsets(full) {
				if !q.Contains(v.Color) {
					continue
				}
				leader, ok := MuQ(alpha, v, q)
				if !ok {
					return fmt.Errorf("μ_Q undefined at %v Q=%v", u.Label(id), q)
				}
				if !v.Carrier.Contains(leader) || !q.Contains(leader) {
					return fmt.Errorf("μ_Q(%v, Q=%v) = %v ∉ carrier ∩ Q",
						u.Label(id), q, leader)
				}
			}
		}
	}
	return nil
}

// CheckMuQAgreement verifies Property 10 on every facet σ of the task:
// for every Q and every θ ⊆ σ with χ(θ) ⊆ Q, the number of distinct
// leaders over θ is at most α(χ(carrier(θ, s))).
func CheckMuQAgreement(alpha adversary.AlphaFunc, task *affine.Task) error {
	u := task.Universe()
	full := procs.FullSet(task.N())
	for _, run := range task.Facets() {
		ids := run.FacetIDs(u)
		verts := make([]chromatic.Vertex2, len(ids))
		for i, id := range ids {
			verts[i] = u.Vertex(id)
		}
		for _, q := range procs.NonemptySubsets(full) {
			// Leaders for the vertices with colors in Q.
			leaders := make(map[procs.ID]procs.ID)
			for _, v := range verts {
				if !q.Contains(v.Color) {
					continue
				}
				l, ok := MuQ(alpha, v, q)
				if !ok {
					return fmt.Errorf("μ_Q undefined at color %v Q=%v", v.Color, q)
				}
				leaders[v.Color] = l
			}
			// Every θ ⊆ σ with χ(θ) ⊆ Q.
			for _, theta := range procs.NonemptySubsets(q) {
				distinct := make(map[procs.ID]bool)
				var carrier procs.Set
				complete := true
				theta.ForEach(func(p procs.ID) {
					found := false
					for _, v := range verts {
						if v.Color == p {
							distinct[leaders[p]] = true
							carrier = carrier.Union(v.Carrier)
							found = true
						}
					}
					if !found {
						complete = false
					}
				})
				if !complete {
					continue
				}
				if len(distinct) > alpha(carrier) {
					return fmt.Errorf("run %v Q=%v θ=%v: %d leaders > α(%v)=%d",
						run, q, theta, len(distinct), carrier, alpha(carrier))
				}
			}
		}
	}
	return nil
}

// CheckMuQRobustness verifies Property 12 on every facet vertex: μ_Q(v)
// only depends on Q ∩ χ(carrier(v, s)).
func CheckMuQRobustness(alpha adversary.AlphaFunc, task *affine.Task) error {
	u := task.Universe()
	full := procs.FullSet(task.N())
	for _, run := range task.Facets() {
		for _, id := range run.FacetIDs(u) {
			v := u.Vertex(id)
			for _, q := range procs.NonemptySubsets(full) {
				l1, ok1 := MuQ(alpha, v, q)
				l2, ok2 := MuQ(alpha, v, q.Intersect(v.Carrier))
				if ok1 != ok2 || (ok1 && l1 != l2) {
					return fmt.Errorf("robustness fails at %v Q=%v: %v/%v vs %v/%v",
						u.Label(id), q, l1, ok1, l2, ok2)
				}
			}
		}
	}
	return nil
}
