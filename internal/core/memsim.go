package core

// The shared-memory half of the Section 6.1 simulation: processes
// running through iterations of R_A simulate an atomic-snapshot memory
// in the style of Gafni-Rajsbaum "Distributed programming with tasks"
// (the paper's reference [16]).
//
// Every process always has a pending write (sequence-numbered; the
// paper's convention "if there is nothing to write, the process
// rewrites its last written value"). The full-information iterations
// maintain, per process,
//
//   - Vec:  the merged memory state (per-process max sequence seen), and
//   - Obs:  for each other process, the latest Vec it was seen holding —
//     the two-level knowledge needed to decide write completion.
//
// A pending write of p completes at an iteration where every process in
// p's current view is known to have seen it (then no process can later
// take a snapshot missing it without seeing p again); p then takes a
// snapshot (its current Vec) and issues the next write. "Fast" processes
// (never seen by anyone) complete writes immediately after their view
// confirms them; "slow" processes may starve while fast ones are active
// — the lock-free progress of the paper, resolved there by terminated
// processes switching to ⊥ inputs.
//
// The executable validation checks the safety skeleton of the
// simulation (see MemSimResult.Validate): snapshot self-inclusion,
// per-process monotonicity, within-iteration chain ordering (the order
// the linearization argument uses), and reads-from validity. The full
// linearizability argument is Section 6.3's proof; these are its
// checkable load-bearing invariants.

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/procs"
)

// memVec is a per-process sequence vector: v[q] = highest write of q
// known.
type memVec map[procs.ID]int

func (v memVec) clone() memVec {
	out := make(memVec, len(v))
	for q, s := range v {
		out[q] = s
	}
	return out
}

func (v memVec) mergeFrom(w memVec) {
	for q, s := range w {
		if s > v[q] {
			v[q] = s
		}
	}
}

// leq reports componentwise v ≤ w.
func (v memVec) leq(w memVec) bool {
	for q, s := range v {
		if s > w[q] {
			return false
		}
	}
	return true
}

// SnapshotEvent is one completed simulated snapshot.
type SnapshotEvent struct {
	Proc      procs.ID
	Iteration int
	ViewSize  int    // |χ(carrier)| of the vertex at that iteration
	WriteSeq  int    // the write this snapshot completed (own component)
	Vec       memVec // the returned memory state
}

// MemSimResult collects a simulated execution's events.
type MemSimResult struct {
	Snapshots  []SnapshotEvent
	Iterations int
	// IssuedSeq is the highest write each process issued.
	IssuedSeq map[procs.ID]int
}

// MemorySim simulates atomic-snapshot memory over iterations of an
// affine task.
type MemorySim struct {
	task  *affine.Task
	alpha adversary.AlphaFunc
	sim   *SetConsensusSim // reused for restricted facet enumeration
}

// NewMemorySim builds a memory simulation over the affine task.
func NewMemorySim(task *affine.Task, alpha adversary.AlphaFunc) *MemorySim {
	return &MemorySim{task: task, alpha: alpha, sim: NewSetConsensusSim(task, alpha)}
}

// ErrNoParticipants is returned for an empty participant set.
var ErrNoParticipants = errors.New("memory simulation requires participants")

// pstate is one process's simulation state.
type pstate struct {
	vec     memVec
	obs     map[procs.ID]memVec // q -> q's Vec as last seen
	pending int                 // sequence of the in-flight write
}

// Run simulates `iterations` rounds of the affine task over the given
// participants, every process repeatedly writing and snapshotting.
func (m *MemorySim) Run(participants procs.Set, iterations int, rng *rand.Rand) (*MemSimResult, error) {
	if participants.IsEmpty() {
		return nil, ErrNoParticipants
	}
	runs := m.sim.RestrictedFacets(participants)
	if len(runs) == 0 {
		return nil, fmt.Errorf("%w: P=%v", ErrNoFacets, participants)
	}
	states := make(map[procs.ID]*pstate, participants.Size())
	participants.ForEach(func(p procs.ID) {
		st := &pstate{
			vec:     memVec{p: 1}, // first write is in flight immediately
			obs:     make(map[procs.ID]memVec),
			pending: 1,
		}
		states[p] = st
	})
	res := &MemSimResult{
		Iterations: iterations,
		IssuedSeq:  make(map[procs.ID]int, participants.Size()),
	}
	u := m.task.Universe()
	for iter := 1; iter <= iterations; iter++ {
		run := runs[rng.Intn(len(runs))]
		// Post the entering states, then merge per the run's views
		// (everyone reads the same posted states: IIS semantics).
		posted := make(map[procs.ID]*pstate, len(states))
		for p, st := range states {
			posted[p] = &pstate{vec: st.vec.clone(), obs: st.obs, pending: st.pending}
		}
		participants.ForEach(func(p procs.ID) {
			st := states[p]
			v := u.Vertex(run.VertexOf(u, p))
			seen := v.Carrier // transitive knowledge through both IS rounds
			seen.ForEach(func(q procs.ID) {
				if q == p {
					return
				}
				qs := posted[q]
				st.vec.mergeFrom(qs.vec)
				// Two-level knowledge: q's posted Vec is what q had
				// seen entering this iteration.
				if prev, ok := st.obs[q]; ok {
					prev.mergeFrom(qs.vec)
				} else {
					st.obs[q] = qs.vec.clone()
				}
			})
			// Write completion: every process currently visible has
			// been seen holding p's pending write.
			complete := true
			seen.ForEach(func(q procs.ID) {
				if q == p {
					return
				}
				ov, ok := st.obs[q]
				if !ok || ov[p] < st.pending {
					complete = false
				}
			})
			if complete {
				res.Snapshots = append(res.Snapshots, SnapshotEvent{
					Proc:      p,
					Iteration: iter,
					ViewSize:  seen.Size(),
					WriteSeq:  st.pending,
					Vec:       st.vec.clone(),
				})
				res.IssuedSeq[p] = st.pending
				st.pending++
				st.vec[p] = st.pending // next write goes in flight
			}
		})
	}
	return res, nil
}

// Validate checks the safety skeleton of the simulated memory:
//
//  1. self-inclusion: each snapshot contains the write it completed;
//  2. per-process monotonicity: successive snapshots of one process are
//     componentwise non-decreasing;
//  3. within-iteration chain: snapshots taken in the same iteration are
//     totally ordered by view size and componentwise comparable in that
//     order (the ordering the linearization argument relies on);
//  4. reads-from validity: no component exceeds the writer's in-flight
//     sequence at that time.
func (r *MemSimResult) Validate() error {
	last := make(map[procs.ID]memVec)
	byIter := make(map[int][]SnapshotEvent)
	for _, ev := range r.Snapshots {
		if ev.Vec[ev.Proc] < ev.WriteSeq {
			return fmt.Errorf("snapshot of %v at iter %d misses own write %d",
				ev.Proc, ev.Iteration, ev.WriteSeq)
		}
		if prev, ok := last[ev.Proc]; ok && !prev.leq(ev.Vec) {
			return fmt.Errorf("%v snapshots not monotone at iter %d", ev.Proc, ev.Iteration)
		}
		last[ev.Proc] = ev.Vec
		byIter[ev.Iteration] = append(byIter[ev.Iteration], ev)
	}
	for iter, evs := range byIter {
		for i := range evs {
			for j := range evs {
				if evs[i].ViewSize <= evs[j].ViewSize {
					continue
				}
				// Larger view must dominate smaller view's snapshot.
				if !evs[j].Vec.leq(evs[i].Vec) {
					return fmt.Errorf("iteration %d: snapshots of %v and %v incomparable",
						iter, evs[i].Proc, evs[j].Proc)
				}
			}
		}
	}
	return nil
}

// CompletedWrites returns how many writes each process completed — the
// progress measure (fast processes complete many; slow ones may be
// starved under lock-freedom).
func (r *MemSimResult) CompletedWrites() map[procs.ID]int {
	out := make(map[procs.ID]int, len(r.IssuedSeq))
	for p, s := range r.IssuedSeq {
		out[p] = s
	}
	return out
}
