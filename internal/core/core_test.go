package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// fixture bundles an adversary with its affine task.
type fixture struct {
	name  string
	n     int
	alpha adversary.AlphaFunc
	task  *affine.Task
}

func buildFixtures(t *testing.T) []fixture {
	t.Helper()
	mk := func(name string, n int, a *adversary.Adversary) fixture {
		u := chromatic.NewUniverse(n)
		task, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return fixture{name: name, n: n, alpha: a.Alpha, task: task}
	}
	fig5b, err := adversary.SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	return []fixture{
		mk("1-OF", 3, adversary.KObstructionFree(3, 1)),
		mk("2-OF", 3, adversary.KObstructionFree(3, 2)),
		mk("1-resilient", 3, adversary.TResilient(3, 1)),
		mk("wait-free", 3, adversary.WaitFree(3)),
		mk("fig5b", 3, fig5b),
	}
}

// TestAlgorithmOneSolo: a single participant with α ≥ 1 runs alone and
// outputs the solo vertex.
func TestAlgorithmOneSolo(t *testing.T) {
	a := adversary.KObstructionFree(3, 1)
	res, err := RunAlgorithmOne(RunConfig{
		N:            3,
		Alpha:        a.Alpha,
		Participants: procs.SetOf(1),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Outputs[1]
	if !ok {
		t.Fatal("p2 did not decide")
	}
	if out.View1 != procs.SetOf(1) || len(out.Content) != 1 || out.Content[1] != procs.SetOf(1) {
		t.Errorf("solo output wrong: %+v", out)
	}
}

// TestAlgorithmOneModelViolation: crash budgets beyond α(P)−1 are
// rejected, as is participation with α(P) = 0.
func TestAlgorithmOneModelViolation(t *testing.T) {
	a := adversary.TResilient(3, 1) // α(Π)=2: at most 1 crash
	_, err := RunAlgorithmOne(RunConfig{
		N:            3,
		Alpha:        a.Alpha,
		Participants: procs.FullSet(3),
		KillAfter:    map[procs.ID]int{0: 1, 1: 2},
		Seed:         1,
	})
	if !errors.Is(err, ErrModelViolated) {
		t.Errorf("want ErrModelViolated, got %v", err)
	}
	_, err = RunAlgorithmOne(RunConfig{
		N:            3,
		Alpha:        a.Alpha,
		Participants: procs.SetOf(0), // α = 0 under 1-resilience
		Seed:         1,
	})
	if !errors.Is(err, ErrModelViolated) {
		t.Errorf("want ErrModelViolated for α=0, got %v", err)
	}
}

// TestAlgorithmOneSafetyLiveness is experiment E10 in miniature: random
// α-model schedules for every fixture; liveness and safety must be
// perfect.
func TestAlgorithmOneSafetyLiveness(t *testing.T) {
	for _, f := range buildFixtures(t) {
		report := CheckAlgorithmOne(f.n, f.alpha, f.task, 60, 0xC0FFEE)
		if report.Liveness != report.Trials || report.Safety != report.Trials {
			t.Errorf("%s: liveness %d/%d safety %d/%d; first violations: %v",
				f.name, report.Liveness, report.Trials, report.Safety, report.Trials,
				firstN(report.Violations, 3))
		}
	}
}

func firstN(v []string, n int) []string {
	if len(v) <= n {
		return v
	}
	return v[:n]
}

// TestAlgorithmOneFullParticipationOutputsFacetRun: with no failures and
// full participation, outputs reconstruct a full facet of R_A.
func TestAlgorithmOneFullParticipationOutputsFacetRun(t *testing.T) {
	for _, f := range buildFixtures(t) {
		for seed := int64(0); seed < 10; seed++ {
			res, err := RunAlgorithmOne(RunConfig{
				N:            f.n,
				Alpha:        f.alpha,
				Participants: procs.FullSet(f.n),
				Seed:         seed,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", f.name, seed, err)
			}
			if len(res.Outputs) != f.n {
				t.Fatalf("%s seed %d: %d outputs", f.name, seed, len(res.Outputs))
			}
			ids := res.OutputSimplex(f.task.Universe())
			if !f.task.ContainsSimplex(ids) {
				t.Errorf("%s seed %d: outputs not in R_A", f.name, seed)
			}
		}
	}
}

// TestMuQProperties is experiment E11: Properties 9, 10 and 12 hold
// exhaustively over the facets of R_A for every fixture.
func TestMuQProperties(t *testing.T) {
	for _, f := range buildFixtures(t) {
		if err := CheckMuQValidity(f.alpha, f.task); err != nil {
			t.Errorf("%s: validity: %v", f.name, err)
		}
		if err := CheckMuQAgreement(f.alpha, f.task); err != nil {
			t.Errorf("%s: agreement: %v", f.name, err)
		}
		if err := CheckMuQRobustness(f.alpha, f.task); err != nil {
			t.Errorf("%s: robustness: %v", f.name, err)
		}
	}
}

// TestMuQSoloVertex: a process that saw only itself elects itself.
func TestMuQSoloVertex(t *testing.T) {
	a := adversary.KObstructionFree(3, 1)
	v := chromatic.Vertex2{
		Color:   1,
		View1:   procs.SetOf(1),
		View2:   procs.SetOf(1),
		Carrier: procs.SetOf(1),
		Content: map[procs.ID]procs.Set{1: procs.SetOf(1)},
	}
	leader, ok := MuQ(a.Alpha, v, procs.FullSet(3))
	if !ok || leader != 1 {
		t.Errorf("solo leader = %v/%v, want p2", leader, ok)
	}
	// Q that misses every observed view: undefined.
	if _, ok := MuQ(a.Alpha, v, procs.SetOf(0)); ok {
		t.Errorf("μ_Q should be undefined when Q misses all views")
	}
}

// TestSetConsensusSimulation is the Section 6.1 experiment: α-adaptive
// set consensus holds in iterated R_A for every fixture.
func TestSetConsensusSimulation(t *testing.T) {
	for _, f := range buildFixtures(t) {
		report := CheckSetConsensus(f.task, f.alpha, 80, 0xBEEF)
		if report.OK != report.Trials {
			t.Errorf("%s: %d/%d ok; violations: %v",
				f.name, report.OK, report.Trials, firstN(report.Violations, 3))
		}
	}
}

// TestSetConsensusConsensusFor1OF: for 1-obstruction-freedom α(Π)=1, the
// simulation must reach full consensus (1 distinct value) every time.
func TestSetConsensusConsensusFor1OF(t *testing.T) {
	a := adversary.KObstructionFree(3, 1)
	u := chromatic.NewUniverse(3)
	task, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSetConsensusSim(task, a.Alpha)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		proposals := map[procs.ID]string{0: "a", 1: "b", 2: "c"}
		res, err := sim.Run(proposals, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(proposals); err != nil {
			t.Fatal(err)
		}
		if res.Distinct() != 1 {
			t.Fatalf("trial %d: consensus violated: %v", trial, res.Decisions)
		}
	}
}

// TestSetConsensusRejectsEmpty: no proposals is an error.
func TestSetConsensusRejectsEmpty(t *testing.T) {
	a := adversary.KObstructionFree(3, 1)
	u := chromatic.NewUniverse(3)
	task, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSetConsensusSim(task, a.Alpha)
	if _, err := sim.Run(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("empty proposals should fail")
	}
}

// TestRestrictedFacetsShrink: facets over a sub-participation are the
// task's boundary simplices; every returned run validates.
func TestRestrictedFacetsShrink(t *testing.T) {
	a := adversary.TResilient(3, 1)
	u := chromatic.NewUniverse(3)
	task, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSetConsensusSim(task, a.Alpha)
	member := task.Membership()
	for _, p := range procs.NonemptySubsets(procs.FullSet(3)) {
		runs := sim.RestrictedFacets(p)
		for _, r := range runs {
			if r.Ground() != p {
				t.Fatalf("run over wrong ground: %v vs %v", r.Ground(), p)
			}
			if !member(r, r.Key()) {
				t.Fatalf("restricted facet not a member: %v", r)
			}
		}
	}
}
