package core

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sched"
)

// TestAlgorithmOneSystematicN2 model-checks Algorithm 1 for a 2-process
// wait-free-equivalent model (2-obstruction-freedom: α(P) = |P|) over a
// systematic frontier of schedules with up to one crash: safety
// (outputs ∈ R_A) must hold in every completed run. (The complete tree
// has ~C(32,16) schedules; the run cap keeps this a deep-but-bounded
// sweep.)
func TestAlgorithmOneSystematicN2(t *testing.T) {
	a := adversary.KObstructionFree(2, 2)
	u := chromatic.NewUniverse(2)
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.ExploreConfig{
		N:            2,
		Participants: procs.FullSet(2),
		MaxCrashes:   a.Alpha(procs.FullSet(2)) - 1,
		MaxSteps:     120,
		MaxRuns:      2500,
	}
	res, err := sched.Explore(cfg, func() (sched.Protocol, func(*sched.Result) error) {
		alg := NewAlgorithmOne(2, a.Alpha)
		check := func(r *sched.Result) error {
			outputs := alg.Outputs()
			if len(outputs) == 0 {
				return nil
			}
			rr := &RunResult{Outputs: outputs}
			if err := rr.CheckSafety(ra); err != nil {
				return fmt.Errorf("schedule decided=%v crashed=%v: %w",
					r.Decided, r.Crashed, err)
			}
			// Liveness: in completed runs all non-crashed processes
			// decided (guaranteed by completion), so check output
			// presence.
			missing := r.Decided.Diff(outputsSet(outputs))
			if !missing.IsEmpty() {
				return fmt.Errorf("decided without output: %v", missing)
			}
			return nil
		}
		return alg.Protocol, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 100 {
		t.Fatalf("suspiciously few schedules: %d", res.Runs)
	}
	t.Logf("systematically verified Algorithm 1 over %d schedules (truncated=%v)",
		res.Runs, res.Truncated)
}

// TestAlgorithmOneSystematicN3 sweeps a bounded systematic frontier of
// 3-process schedules for the 1-resilient model.
func TestAlgorithmOneSystematicN3(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration skipped in -short mode")
	}
	a := adversary.TResilient(3, 1)
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.ExploreConfig{
		N:            3,
		Participants: procs.FullSet(3),
		MaxCrashes:   1,
		MaxSteps:     220,
		MaxRuns:      80,
		// Algorithm 1 has a wait-phase: starvation prefixes are outside
		// the α-model and must be pruned, not reported as violations.
		PruneAtDepth: true,
	}
	res, err := sched.Explore(cfg, func() (sched.Protocol, func(*sched.Result) error) {
		alg := NewAlgorithmOne(3, a.Alpha)
		check := func(*sched.Result) error {
			rr := &RunResult{Outputs: alg.Outputs()}
			return rr.CheckSafety(ra)
		}
		return alg.Protocol, check
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("systematically verified %d schedules (truncated=%v)", res.Runs, res.Truncated)
}

func outputsSet(outputs map[procs.ID]Output) procs.Set {
	var s procs.Set
	for p := range outputs {
		s = s.Add(p)
	}
	return s
}
