package core

// The α-adaptive set-consensus simulation in R_A^* (Section 6.1): every
// process proceeds through iterations of the affine task, adopting the
// decision estimate of its μ_Q leader each round; terminated processes
// submit ⊥ (they drop out of Q), and the remaining processes continue.
// Validity and α-agreement follow from Properties 9, 10 and 12 and are
// asserted by the experiments built on this type.

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

// Simulation errors.
var (
	ErrNoFacets       = errors.New("affine task has no facets over the participating set")
	ErrNotParticipant = errors.New("proposal from non-participating process")
)

// SetConsensusSim runs α-adaptive set consensus over iterations of an
// affine task restricted to a fixed participating set.
type SetConsensusSim struct {
	task  *affine.Task
	alpha adversary.AlphaFunc
}

// NewSetConsensusSim prepares a simulation over the given affine task.
func NewSetConsensusSim(task *affine.Task, alpha adversary.AlphaFunc) *SetConsensusSim {
	return &SetConsensusSim{task: task, alpha: alpha}
}

// RestrictedFacets enumerates the runs over the participating set whose
// simplices belong to the task: the facets of L ∩ Chr²(P). Memoized on
// the task itself, so every simulation and experiment over the same
// affine task shares one enumeration per participant set.
func (s *SetConsensusSim) RestrictedFacets(p procs.Set) []chromatic.Run2 {
	return s.task.RestrictedFacets(p)
}

// SimResult reports one simulated execution.
type SimResult struct {
	Decisions  map[procs.ID]string // final decision per participant
	DecidedAt  map[procs.ID]int    // iteration at which each decided
	Iterations int                 // total iterations executed
	MaxAlpha   int                 // α(P) — the agreement bound
}

// Distinct returns the number of distinct decided values.
func (r *SimResult) Distinct() int {
	set := make(map[string]bool, len(r.Decisions))
	for _, v := range r.Decisions {
		set[v] = true
	}
	return len(set)
}

// Run executes the simulation: participants propose, then iterate the
// affine task; in every iteration each still-active process adopts the
// estimate of its μ_Q leader (Q = active processes); each process
// decides at a per-process random iteration ≥ 2 (after every observed
// process carries an estimate) and then drops to ⊥ inputs, shrinking Q.
func (s *SetConsensusSim) Run(proposals map[procs.ID]string, rng *rand.Rand) (*SimResult, error) {
	var participants procs.Set
	for p := range proposals {
		participants = participants.Add(p)
	}
	if participants.IsEmpty() {
		return nil, ErrNotParticipant
	}
	estimates := make(map[procs.ID]string, len(proposals))
	for p, v := range proposals {
		estimates[p] = v
	}
	res := &SimResult{
		Decisions: make(map[procs.ID]string),
		DecidedAt: make(map[procs.ID]int),
		MaxAlpha:  s.alpha(participants),
	}
	// Per-process decision iteration: 2 + geometric-ish jitter.
	decideAt := make(map[procs.ID]int)
	participants.ForEach(func(p procs.ID) { decideAt[p] = 2 + rng.Intn(3) })

	// All participants keep moving through the IIS iterations forever
	// (terminated ones submit ⊥, per Section 6.1); only the
	// leader-eligible set Q shrinks as processes decide.
	runs := s.RestrictedFacets(participants)
	if len(runs) == 0 {
		return nil, fmt.Errorf("%w: P=%v", ErrNoFacets, participants)
	}
	active := participants
	for iter := 1; !active.IsEmpty(); iter++ {
		res.Iterations = iter
		run := runs[rng.Intn(len(runs))]
		// Compute all adoptions against the pre-iteration estimates
		// (processes move through the iteration "simultaneously").
		newEst := make(map[procs.ID]string, active.Size())
		var iterErr error
		active.ForEach(func(p procs.ID) {
			if iterErr != nil {
				return
			}
			v := s.task.Universe().Vertex(run.VertexOf(s.task.Universe(), p))
			leader, ok := MuQ(s.alpha, v, active)
			if !ok {
				iterErr = fmt.Errorf("μ_Q undefined for %v in %v", p, run)
				return
			}
			newEst[p] = estimates[leader]
		})
		if iterErr != nil {
			return nil, iterErr
		}
		for p, v := range newEst {
			estimates[p] = v
		}
		// Decisions: processes whose decision iteration arrived decide
		// and leave (their further inputs are ⊥, shrinking Q).
		active.ForEach(func(p procs.ID) {
			if iter >= decideAt[p] {
				res.Decisions[p] = estimates[p]
				res.DecidedAt[p] = iter
				active = active.Remove(p)
			}
		})
	}
	return res, nil
}

// Validate checks validity (every decision is a proposal) and
// α-agreement (distinct decisions ≤ α(P)) for a finished run.
func (r *SimResult) Validate(proposals map[procs.ID]string) error {
	proposed := make(map[string]bool, len(proposals))
	for _, v := range proposals {
		proposed[v] = true
	}
	for p, v := range r.Decisions {
		if !proposed[v] {
			return fmt.Errorf("process %v decided non-proposed value %q", p, v)
		}
	}
	if d := r.Distinct(); d > r.MaxAlpha {
		return fmt.Errorf("α-agreement violated: %d distinct > α = %d", d, r.MaxAlpha)
	}
	if len(r.Decisions) != len(proposals) {
		return fmt.Errorf("termination violated: %d of %d decided",
			len(r.Decisions), len(proposals))
	}
	return nil
}
