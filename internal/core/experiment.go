package core

// Randomized model-checking harnesses for the two constructive theorems:
// Theorem 7 (Algorithm 1 solves R_A in the α-model — experiment E10) and
// the Section 6 set-consensus simulation (experiment E11/E12 support).

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/procs"
)

// AlgOneReport aggregates an E10 campaign.
type AlgOneReport struct {
	Trials     int
	Liveness   int // runs where all correct processes decided
	Safety     int // runs whose outputs form a simplex of R_A
	MeanSteps  float64
	Violations []string // diagnostics of failed runs (empty on success)
}

// CheckAlgorithmOne runs `trials` random α-model schedules of
// Algorithm 1 and verifies liveness (Lemma 5) and safety (Lemma 6)
// against the affine task.
func CheckAlgorithmOne(n int, alpha adversary.AlphaFunc, task *affine.Task, trials int, seed int64) *AlgOneReport {
	rng := rand.New(rand.NewSource(seed))
	report := &AlgOneReport{Trials: trials}
	full := procs.FullSet(n)
	// Trials draw random participating sets and consult the task's
	// restricted facets per schedule step; precompute them in parallel.
	task.PrecomputeRestrictedFacets(0)
	// Participating sets with α(P) ≥ 1.
	var okParts []procs.Set
	for _, p := range procs.NonemptySubsets(full) {
		if alpha(p) >= 1 {
			okParts = append(okParts, p)
		}
	}
	totalSteps := 0
	for trial := 0; trial < trials; trial++ {
		p := okParts[rng.Intn(len(okParts))]
		budget := alpha(p) - 1
		kill := make(map[procs.ID]int)
		if budget > 0 {
			members := p.Members()
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			f := rng.Intn(budget + 1)
			for i := 0; i < f; i++ {
				kill[members[i]] = rng.Intn(25)
			}
		}
		res, err := RunAlgorithmOne(RunConfig{
			N:            n,
			Alpha:        alpha,
			Participants: p,
			KillAfter:    kill,
			Seed:         rng.Int63(),
			MaxSteps:     40000,
		})
		if err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("trial %d (P=%v, kill=%v): %v", trial, p, kill, err))
			continue
		}
		report.Liveness++
		totalSteps += res.Steps
		if err := res.CheckSafety(task); err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("trial %d (P=%v, kill=%v): %v", trial, p, kill, err))
			continue
		}
		report.Safety++
	}
	if report.Liveness > 0 {
		report.MeanSteps = float64(totalSteps) / float64(report.Liveness)
	}
	return report
}

// SetConsensusReport aggregates a Section 6 simulation campaign.
type SetConsensusReport struct {
	Trials      int
	OK          int
	MaxDistinct int
	Violations  []string
}

// CheckSetConsensus runs `trials` random iterated-R_A set-consensus
// executions over random participating sets with α(P) ≥ 1, validating
// termination, validity and α-agreement.
func CheckSetConsensus(task *affine.Task, alpha adversary.AlphaFunc, trials int, seed int64) *SetConsensusReport {
	rng := rand.New(rand.NewSource(seed))
	sim := NewSetConsensusSim(task, alpha)
	report := &SetConsensusReport{Trials: trials}
	full := procs.FullSet(task.N())
	// The campaign touches every participating set below; fill the
	// restricted-facet memo on all CPUs instead of serially on first use.
	task.PrecomputeRestrictedFacets(0)
	var okParts []procs.Set
	for _, p := range procs.NonemptySubsets(full) {
		if alpha(p) >= 1 && len(sim.RestrictedFacets(p)) > 0 {
			okParts = append(okParts, p)
		}
	}
	if len(okParts) == 0 {
		report.Violations = append(report.Violations, "no participating set admits facets")
		return report
	}
	for trial := 0; trial < trials; trial++ {
		p := okParts[rng.Intn(len(okParts))]
		proposals := make(map[procs.ID]string, p.Size())
		p.ForEach(func(q procs.ID) {
			proposals[q] = fmt.Sprintf("v%d", rng.Intn(p.Size())) // colliding proposals allowed
		})
		res, err := sim.Run(proposals, rng)
		if err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("trial %d (P=%v): %v", trial, p, err))
			continue
		}
		if err := res.Validate(proposals); err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("trial %d (P=%v): %v", trial, p, err))
			continue
		}
		report.OK++
		if d := res.Distinct(); d > report.MaxDistinct {
			report.MaxDistinct = d
		}
	}
	return report
}
