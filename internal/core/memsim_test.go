package core

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

func memFixture(t *testing.T, a *adversary.Adversary) *MemorySim {
	t.Helper()
	u := chromatic.NewUniverse(a.N())
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	return NewMemorySim(ra, a.Alpha)
}

// TestMemorySimSafety: the simulated atomic-snapshot memory satisfies
// its safety skeleton over many random iterated-R_A executions, for a
// battery of fair models.
func TestMemorySimSafety(t *testing.T) {
	advs := []*adversary.Adversary{
		adversary.KObstructionFree(3, 1),
		adversary.TResilient(3, 1),
		adversary.WaitFree(3),
	}
	for _, a := range advs {
		sim := memFixture(t, a)
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 25; trial++ {
			res, err := sim.Run(procs.FullSet(3), 40, rng)
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%v trial %d: %v", a, trial, err)
			}
		}
	}
}

// TestMemorySimProgress: someone always makes progress (lock-freedom):
// across a long run the total number of completed writes grows.
func TestMemorySimProgress(t *testing.T) {
	sim := memFixture(t, adversary.TResilient(3, 1))
	rng := rand.New(rand.NewSource(3))
	res, err := sim.Run(procs.FullSet(3), 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.CompletedWrites() {
		total += c
	}
	if total < 50 {
		t.Fatalf("too little progress: %d completed writes in 200 iterations (%v)",
			total, res.CompletedWrites())
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMemorySimPartialParticipation: the simulation works over proper
// participation subsets (boundary facets of R_A).
func TestMemorySimPartialParticipation(t *testing.T) {
	sim := memFixture(t, adversary.KObstructionFree(3, 1))
	rng := rand.New(rand.NewSource(5))
	res, err := sim.Run(procs.SetOf(0, 2), 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Snapshots {
		if ev.Vec[1] != 0 {
			t.Fatalf("non-participant appeared in a snapshot: %+v", ev)
		}
	}
}

// TestMemorySimErrors: configuration errors are reported.
func TestMemorySimErrors(t *testing.T) {
	sim := memFixture(t, adversary.KObstructionFree(3, 1))
	rng := rand.New(rand.NewSource(1))
	if _, err := sim.Run(procs.EmptySet, 10, rng); err == nil {
		t.Errorf("empty participants must fail")
	}
}

// TestMemVecOps covers the vector lattice helpers.
func TestMemVecOps(t *testing.T) {
	a := memVec{0: 1, 1: 2}
	b := a.clone()
	b.mergeFrom(memVec{1: 5, 2: 1})
	if b[0] != 1 || b[1] != 5 || b[2] != 1 {
		t.Errorf("merge wrong: %v", b)
	}
	if a[1] != 2 {
		t.Errorf("clone aliased")
	}
	if !a.leq(b) || b.leq(a) {
		t.Errorf("leq wrong")
	}
}
