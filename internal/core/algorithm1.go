// Package core implements the constructive heart of the paper:
// Algorithm 1 (solving the affine task R_A in the α-model, Section 5),
// the α-adaptive leader-election map μ_Q (Section 6.2), and the
// α-adaptive set-consensus simulation in iterated R_A (Section 6.1).
package core

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/memory"
	"repro/internal/procs"
	"repro/internal/sc"
	"repro/internal/sched"
)

// Output is the result of one process's R_A invocation: its first-round
// view and the second immediate snapshot content (process → its first
// IS view), i.e. exactly a vertex of Chr² s.
type Output struct {
	View1   procs.Set
	Content map[procs.ID]procs.Set
}

// Vertex interns the output as a Chr²-s vertex.
func (o Output) Vertex(u *chromatic.Universe, p procs.ID) sc.VertexID {
	return u.Intern(p, o.Content)
}

// AlgorithmOne holds the shared state of one run of Algorithm 1:
// FirstIS/SecondIS immediate-snapshot objects, the IS1/IS2 view
// registers, and the Conc registers (lines 1–3 of the pseudocode).
type AlgorithmOne struct {
	n     int
	alpha adversary.AlphaFunc

	firstIS  *memory.ImmediateSnapshot[procs.ID]
	secondIS *memory.ImmediateSnapshot[procs.Set]
	is1      *memory.Snapshot[procs.Set]
	is2      *memory.Snapshot[procs.Set]
	conc     *memory.Snapshot[int]

	outputs map[procs.ID]Output
}

// NewAlgorithmOne allocates the shared objects for an n-process run.
func NewAlgorithmOne(n int, alpha adversary.AlphaFunc) *AlgorithmOne {
	return &AlgorithmOne{
		n:        n,
		alpha:    alpha,
		firstIS:  memory.NewImmediateSnapshot[procs.ID](n),
		secondIS: memory.NewImmediateSnapshot[procs.Set](n),
		is1:      memory.NewSnapshot[procs.Set](n),
		is2:      memory.NewSnapshot[procs.Set](n),
		conc:     memory.NewSnapshot[int](n),
		outputs:  make(map[procs.ID]Output),
	}
}

// Outputs returns the outputs of the decided processes.
func (a *AlgorithmOne) Outputs() map[procs.ID]Output {
	out := make(map[procs.ID]Output, len(a.outputs))
	for p, o := range a.outputs {
		out[p] = o
	}
	return out
}

// Protocol is the per-process code of Algorithm 1 (lines 4–13).
func (a *AlgorithmOne) Protocol(ctx *sched.Context) error {
	p := ctx.ID()

	// Line 5: IS1[i] ← FirstIS(input_i).
	first := a.firstIS.WriteSnapshot(ctx, p, p)
	var view1 procs.Set
	for q := range first {
		view1 = view1.Add(q)
	}
	a.is1.Update(ctx, p, view1)

	// Lines 6–9: wait until crit ∨ (rank < conc).
	alphaV1 := a.alpha(view1)
	for {
		is1v := a.is1.Scan(ctx)
		is2v := a.is2.Scan(ctx)
		concv := a.conc.Scan(ctx)

		// crit: p belongs to a critical simplex (line 7).
		var sameView procs.Set
		for j, v := range is1v {
			if v == view1 {
				sameView = sameView.Add(j)
			}
		}
		crit := alphaV1 > a.alpha(view1.Diff(sameView))

		// rank: potentially contending unterminated processes (line 8).
		rank := 0
		view1.ForEach(func(j procs.ID) {
			if _, terminated := is2v[j]; terminated {
				return
			}
			if is1v[j] != view1 { // includes unwritten IS1[j] (∅ ≠ view1)
				rank++
			}
		})

		// conc: concurrency allowance (line 9).
		conc := alphaV1
		for _, c := range concv {
			if c > conc {
				conc = c
			}
		}

		if crit || rank < conc {
			break
		}
	}

	// Line 10: IS2[i] ← SecondIS(IS1[i]).
	second := a.secondIS.WriteSnapshot(ctx, p, view1)
	var view2 procs.Set
	content := make(map[procs.ID]procs.Set, len(second))
	for q, v := range second {
		view2 = view2.Add(q)
		content[q] = v
	}
	a.is2.Update(ctx, p, view2)

	// Lines 11–12: publish the concurrency level when p's critical
	// simplex has terminated.
	is1v := a.is1.Scan(ctx)
	is2v := a.is2.Scan(ctx)
	var sameViewDone procs.Set
	for j, v := range is1v {
		if v == view1 {
			if _, done := is2v[j]; done {
				sameViewDone = sameViewDone.Add(j)
			}
		}
	}
	if alphaV1 > a.alpha(view1.Diff(sameViewDone)) {
		a.conc.Update(ctx, p, alphaV1)
	}

	// Line 13: return IS2[i]. (The scheduler serializes goroutines, so
	// the map write is race-free.)
	a.outputs[p] = Output{View1: view1, Content: content}
	return nil
}

// RunConfig parameterizes one α-model run of Algorithm 1.
type RunConfig struct {
	N            int
	Alpha        adversary.AlphaFunc
	Participants procs.Set
	KillAfter    map[procs.ID]int // crash schedule (must respect the α-model budget)
	Seed         int64
	MaxSteps     int
}

// RunResult reports one run.
type RunResult struct {
	Outputs map[procs.ID]Output
	Decided procs.Set
	Crashed procs.Set
	Steps   int
}

// ErrModelViolated is returned when the failure schedule exceeds the
// α-model budget (more than α(P)−1 scheduled crashes, or α(P) = 0).
var ErrModelViolated = errors.New("failure schedule violates the α-model")

// RunAlgorithmOne executes one scheduled run of Algorithm 1.
func RunAlgorithmOne(cfg RunConfig) (*RunResult, error) {
	alphaP := cfg.Alpha(cfg.Participants)
	if alphaP < 1 || len(cfg.KillAfter) > alphaP-1 {
		return nil, fmt.Errorf("%w: P=%v α=%d crashes=%d",
			ErrModelViolated, cfg.Participants, alphaP, len(cfg.KillAfter))
	}
	alg := NewAlgorithmOne(cfg.N, cfg.Alpha)
	res, err := sched.Run(sched.Config{
		N:            cfg.N,
		Participants: cfg.Participants,
		KillAfter:    cfg.KillAfter,
		MaxSteps:     cfg.MaxSteps,
		Seed:         cfg.Seed,
	}, alg.Protocol)
	if err != nil {
		return nil, err
	}
	for p, e := range res.Errs {
		if e != nil {
			return nil, fmt.Errorf("process %v: %w", p, e)
		}
	}
	return &RunResult{
		Outputs: alg.Outputs(),
		Decided: res.Decided,
		Crashed: res.Crashed,
		Steps:   res.Steps,
	}, nil
}

// OutputSimplex interns the decided outputs as a simplex of Chr² s.
func (r *RunResult) OutputSimplex(u *chromatic.Universe) []sc.VertexID {
	ids := make([]sc.VertexID, 0, len(r.Outputs))
	for p, o := range r.Outputs {
		ids = append(ids, o.Vertex(u, p))
	}
	return ids
}

// CheckSafety verifies Lemma 6 for one run: the decided outputs form a
// simplex of the affine task.
func (r *RunResult) CheckSafety(task *affine.Task) error {
	if len(r.Outputs) == 0 {
		return nil // no outputs: vacuously safe
	}
	ids := r.OutputSimplex(task.Universe())
	if !task.ContainsSimplex(ids) {
		return fmt.Errorf("outputs %v not a simplex of %s", r.Outputs, task.Name)
	}
	return nil
}
