// Package hitting computes exact minimal hitting sets of set families.
//
// The minimal hitting set size csize(Q) is central to the paper: for a
// superset-closed adversary A, setcon(A) = csize(A) (Gafni-Kuznetsov), and
// the liveness/safety proofs of Algorithm 1 (Lemma 3, Corollary 4) bound
// the distribution of critical simplices via csize.
package hitting

import "repro/internal/procs"

// Size returns csize(family): the size of a smallest set H that
// intersects every member of the family. By convention:
//   - csize of an empty family is 0 (nothing to hit);
//   - if the family contains the empty set, no hitting set exists and
//     Size returns -1.
func Size(family []procs.Set) int {
	for _, s := range family {
		if s.IsEmpty() {
			return -1
		}
	}
	reduced := reduce(family)
	if len(reduced) == 0 {
		return 0
	}
	best := upperBound(reduced)
	return branch(reduced, 0, best)
}

// Hit returns one minimum hitting set (and its size). The second return
// is false when no hitting set exists (family contains the empty set).
func Hit(family []procs.Set) (procs.Set, bool) {
	for _, s := range family {
		if s.IsEmpty() {
			return 0, false
		}
	}
	reduced := reduce(family)
	if len(reduced) == 0 {
		return 0, true
	}
	target := Size(family)
	var universe procs.Set
	for _, s := range reduced {
		universe = universe.Union(s)
	}
	var found procs.Set
	var search func(h procs.Set, rest []procs.Set) bool
	search = func(h procs.Set, rest []procs.Set) bool {
		if h.Size() > target {
			return false
		}
		idx := firstUnhit(rest, h)
		if idx < 0 {
			found = h
			return true
		}
		hit := false
		rest[idx].ForEach(func(p procs.ID) {
			if hit {
				return
			}
			if search(h.Add(p), rest) {
				hit = true
			}
		})
		return hit
	}
	_ = universe
	if search(0, reduced) {
		return found, true
	}
	return 0, true
}

// IsHittingSet reports whether h intersects every member of the family.
func IsHittingSet(h procs.Set, family []procs.Set) bool {
	for _, s := range family {
		if !h.Intersects(s) {
			return false
		}
	}
	return true
}

// reduce removes supersets of other members: a set that contains another
// member is hit whenever the smaller one is, so it is redundant.
func reduce(family []procs.Set) []procs.Set {
	out := make([]procs.Set, 0, len(family))
	for i, s := range family {
		redundant := false
		for j, t := range family {
			if i == j {
				continue
			}
			if t.SubsetOf(s) && (t != s || j < i) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, s)
		}
	}
	return out
}

// upperBound is a greedy hitting-set size, used to prune branch().
func upperBound(family []procs.Set) int {
	remaining := make([]procs.Set, len(family))
	copy(remaining, family)
	size := 0
	for len(remaining) > 0 {
		// Pick the element covering the most remaining sets.
		counts := map[procs.ID]int{}
		for _, s := range remaining {
			s.ForEach(func(p procs.ID) { counts[p]++ })
		}
		var best procs.ID
		bestCount := -1
		for p, c := range counts {
			if c > bestCount || (c == bestCount && p < best) {
				best, bestCount = p, c
			}
		}
		size++
		next := remaining[:0]
		for _, s := range remaining {
			if !s.Contains(best) {
				next = append(next, s)
			}
		}
		remaining = next
	}
	return size
}

// branch performs branch-and-bound: pick the first unhit set and branch
// on each of its elements.
func branch(family []procs.Set, picked, best int) int {
	if picked >= best {
		return best
	}
	idx := -1
	for i, s := range family {
		if s != 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return picked
	}
	s := family[idx]
	s.ForEach(func(p procs.ID) {
		// Hit every set containing p, recurse on the rest.
		next := make([]procs.Set, 0, len(family))
		for _, t := range family {
			if t != 0 && !t.Contains(p) {
				next = append(next, t)
			}
		}
		if r := branch(next, picked+1, best); r < best {
			best = r
		}
	})
	return best
}

func firstUnhit(family []procs.Set, h procs.Set) int {
	for i, s := range family {
		if !h.Intersects(s) {
			return i
		}
	}
	return -1
}
