package hitting

import (
	"math/rand"
	"testing"

	"repro/internal/procs"
)

func set(ids ...procs.ID) procs.Set { return procs.SetOf(ids...) }

func TestSizeBasics(t *testing.T) {
	cases := []struct {
		name   string
		family []procs.Set
		want   int
	}{
		{"empty family", nil, 0},
		{"single set", []procs.Set{set(0, 1)}, 1},
		{"disjoint pair", []procs.Set{set(0), set(1)}, 2},
		{"common element", []procs.Set{set(0, 1), set(0, 2)}, 1},
		{"contains empty", []procs.Set{set(0), procs.EmptySet}, -1},
		{"t-resilient 1 of 3", []procs.Set{set(0, 1), set(0, 2), set(1, 2)}, 2},
		{"figure 5b adversary generators", []procs.Set{set(1), set(0, 2)}, 2},
		{"all singletons", []procs.Set{set(0), set(1), set(2)}, 3},
		{"superset reduced", []procs.Set{set(0), set(0, 1), set(0, 1, 2)}, 1},
	}
	for _, c := range cases {
		if got := Size(c.family); got != c.want {
			t.Errorf("%s: Size = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTResilientCsize(t *testing.T) {
	// Family of all (n-t)-subsets of n processes has csize t+1.
	for n := 2; n <= 5; n++ {
		for tt := 0; tt < n; tt++ {
			family := procs.SubsetsOfSize(procs.FullSet(n), n-tt)
			if got := Size(family); got != tt+1 {
				t.Errorf("n=%d t=%d: csize = %d, want %d", n, tt, got, tt+1)
			}
		}
	}
}

func TestHitReturnsValidMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(4)
		var family []procs.Set
		for i := 0; i < 1+rng.Intn(5); i++ {
			s := procs.Set(rng.Intn(1<<uint(n))) & procs.FullSet(n)
			if s.IsEmpty() {
				s = set(procs.ID(rng.Intn(n)))
			}
			family = append(family, s)
		}
		want := Size(family)
		h, ok := Hit(family)
		if !ok {
			t.Fatalf("Hit failed on %v", family)
		}
		if !IsHittingSet(h, family) {
			t.Fatalf("Hit returned non-hitting set %v for %v", h, family)
		}
		if h.Size() != want {
			t.Fatalf("Hit size %d != Size %d for %v", h.Size(), want, family)
		}
	}
}

func TestHitEdgeCases(t *testing.T) {
	if h, ok := Hit(nil); !ok || !h.IsEmpty() {
		t.Errorf("Hit(nil) = %v, %v", h, ok)
	}
	if _, ok := Hit([]procs.Set{procs.EmptySet}); ok {
		t.Errorf("Hit of family containing empty set should fail")
	}
}

func TestSizeBruteForceAgreement(t *testing.T) {
	// Cross-check against exhaustive search for n <= 4.
	rng := rand.New(rand.NewSource(11))
	brute := func(family []procs.Set, n int) int {
		if len(family) == 0 {
			return 0
		}
		for size := 0; size <= n; size++ {
			for _, h := range procs.SubsetsOfSize(procs.FullSet(n), size) {
				if IsHittingSet(h, family) {
					return size
				}
			}
		}
		return -1
	}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		var family []procs.Set
		for i := 0; i < rng.Intn(6); i++ {
			s := procs.Set(rng.Intn(1<<uint(n))) & procs.FullSet(n)
			if !s.IsEmpty() {
				family = append(family, s)
			}
		}
		if got, want := Size(family), brute(family, n); got != want {
			t.Fatalf("Size = %d, brute = %d for %v", got, want, family)
		}
	}
}
