package api

// The shared middleware chain and structured access logging: every v1
// surface wraps its mux in Middleware.Wrap so request ids, the
// in-flight gauge, API-key auth, latency/status metrics and the JSON
// access log behave identically everywhere.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// StatusWriter captures the response status and size for metrics and
// the access log.
type StatusWriter struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

func (w *StatusWriter) WriteHeader(code int) {
	if w.Status == 0 {
		w.Status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *StatusWriter) Write(b []byte) (int, error) {
	if w.Status == 0 {
		w.Status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.Bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (JSONL range scans).
func (w *StatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// MiddlewareOptions configure one surface's middleware chain.
type MiddlewareOptions struct {
	// Metrics receives request counts, latency and auth rejections.
	// Required.
	Metrics *HTTPMetrics

	// Auth, when non-nil, requires a valid API key on every
	// non-exempt request and rate-limits per key. Nil admits openly.
	Auth *AuthConfig

	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog io.Writer

	// Exempt reports paths that skip auth. Nil selects ProbePath.
	Exempt func(path string) bool
}

// Middleware is the assembled chain; build with NewMiddleware and wrap
// the surface's mux with Wrap.
type Middleware struct {
	opts   MiddlewareOptions
	logger *accessLogger
	epoch  string
	seq    atomic.Uint64
}

// NewMiddleware builds the chain. Request ids are <epoch>-<seq> with a
// per-process epoch, so ids stay unique across restarts.
func NewMiddleware(opts MiddlewareOptions) *Middleware {
	if opts.Metrics == nil {
		opts.Metrics = NewHTTPMetrics("api")
	}
	if opts.Exempt == nil {
		opts.Exempt = ProbePath
	}
	mw := &Middleware{
		opts:  opts,
		epoch: fmt.Sprintf("%08x", uint32(time.Now().UnixNano())),
	}
	if opts.AccessLog != nil {
		mw.logger = &accessLogger{w: opts.AccessLog}
	}
	return mw
}

// Wrap instruments a handler: request id, in-flight gauge, auth + rate
// limiting, latency/status metrics, access logging.
func (mw *Middleware) Wrap(next http.Handler) http.Handler {
	m := mw.opts.Metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := fmt.Sprintf("%s-%06d", mw.epoch, mw.seq.Add(1))
		w.Header().Set("X-Request-Id", reqID)
		sw := &StatusWriter{ResponseWriter: w}
		r = r.WithContext(WithRequestID(r.Context(), reqID))
		m.Inflight.Add(1)
		defer m.Inflight.Add(-1)

		keyName := ""
		if mw.opts.Auth != nil && !mw.opts.Exempt(r.URL.Path) {
			name, status, retryAfter := mw.opts.Auth.Admit(r)
			keyName = name
			switch status {
			case http.StatusUnauthorized:
				m.AuthRejected.With("unauthorized").Add(1)
				Error(sw, r, http.StatusUnauthorized, "missing or unknown API key")
			case http.StatusTooManyRequests:
				m.AuthRejected.With("ratelimited").Add(1)
				sw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				Error(sw, r, http.StatusTooManyRequests, "rate limit exceeded for this API key")
			default:
				next.ServeHTTP(sw, r)
			}
		} else {
			next.ServeHTTP(sw, r)
		}

		if sw.Status == 0 {
			sw.Status = http.StatusOK
		}
		dur := time.Since(start)
		m.Requests.With(r.URL.Path, strconv.Itoa(sw.Status)).Add(1)
		m.RequestSeconds.Observe(dur.Seconds())
		if mw.logger != nil {
			mw.logger.log(AccessRecord{
				Time:      start.UTC().Format(time.RFC3339Nano),
				Level:     "info",
				Msg:       "request",
				Method:    r.Method,
				Path:      r.URL.Path,
				Query:     r.URL.RawQuery,
				Status:    sw.Status,
				Bytes:     sw.Bytes,
				DurMs:     float64(dur.Microseconds()) / 1e3,
				RequestID: reqID,
				Key:       keyName,
				Remote:    r.RemoteAddr,
			})
		}
	})
}

// AccessRecord is one request-log line.
type AccessRecord struct {
	Time      string  `json:"ts"`
	Level     string  `json:"level"`
	Msg       string  `json:"msg"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Query     string  `json:"query,omitempty"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMs     float64 `json:"dur_ms"`
	RequestID string  `json:"request_id"`
	Key       string  `json:"key,omitempty"`
	Remote    string  `json:"remote,omitempty"`
}

// accessLogger serializes record writes: concurrent requests never
// interleave bytes within a line.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(rec AccessRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
