package api

// Metric primitives for the v1 HTTP surfaces. The counter/histogram/
// gauge implementations moved to internal/obs (the process-wide
// telemetry plane) in the observability PR; the serve and fabric
// surfaces keep building against the api names, which are now thin
// aliases. Only HTTPMetrics — the request-shaped bundle the middleware
// feeds — lives here.

import (
	"io"
	"sync/atomic"

	"repro/internal/obs"
)

// CounterVec is a labeled counter family. See obs.CounterVec.
type CounterVec = obs.CounterVec

// Histogram is a fixed-bucket Prometheus histogram. See obs.Histogram.
type Histogram = obs.Histogram

// DefaultLatencyBuckets span sub-millisecond store hits through
// multi-second live solves.
var DefaultLatencyBuckets = obs.DefaultLatencyBuckets

// NewCounterVec builds a counter family with the given label names.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return obs.NewCounterVec(name, help, labels...)
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return obs.NewHistogram(name, help, buckets)
}

// FormatFloat renders a float without trailing zeros, matching the
// bucket labels Prometheus clients emit.
func FormatFloat(v float64) string { return obs.FormatFloat(v) }

// WriteGauge emits one gauge sample with its HELP/TYPE header.
func WriteGauge(w io.Writer, name, help string, val int64) {
	obs.WriteGauge(w, name, help, val)
}

// HTTPMetrics is the per-surface request metric set the middleware
// feeds: request counts by path/status, auth rejections, end-to-end
// latency and the in-flight gauge. Names are <prefix>_requests_total,
// <prefix>_auth_rejected_total, <prefix>_request_seconds and
// <prefix>_inflight_requests.
type HTTPMetrics struct {
	prefix         string
	Requests       *CounterVec // path, code
	AuthRejected   *CounterVec // reason: unauthorized | ratelimited
	RequestSeconds *Histogram
	Inflight       atomic.Int64
}

// NewHTTPMetrics builds the request metric set under a name prefix
// (e.g. "factool").
func NewHTTPMetrics(prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		prefix:       prefix,
		Requests:     NewCounterVec(prefix+"_requests_total", "HTTP requests by path and status code.", "path", "code"),
		AuthRejected: NewCounterVec(prefix+"_auth_rejected_total", "Requests rejected by API-key auth or rate limiting.", "reason"),
		RequestSeconds: NewHistogram(prefix+"_request_seconds",
			"End-to-end request latency in seconds.", DefaultLatencyBuckets),
	}
}

// Write emits the request families plus the in-flight gauge.
func (m *HTTPMetrics) Write(w io.Writer) {
	m.Requests.Write(w)
	m.AuthRejected.Write(w)
	m.RequestSeconds.Write(w)
	WriteGauge(w, m.prefix+"_inflight_requests", "Requests currently being served.", m.Inflight.Load())
}

// WritePrometheus implements obs.Collector, so an HTTPMetrics set can
// register directly into an obs.Registry.
func (m *HTTPMetrics) WritePrometheus(w io.Writer) { m.Write(w) }
