package api

// Exposition edge cases for the metric primitives: label escaping,
// histogram bucket cumulativity, and concurrent counter-vec label
// materialization (exercised under -race by the race CI job).

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecLabelEscaping(t *testing.T) {
	c := NewCounterVec("esc_total", "Escaping probe.", "who")
	c.With(`plain`).Add(1)
	c.With(`has"quote`).Add(2)
	c.With(`back\slash`).Add(3)
	c.With("new\nline").Add(4)
	var buf bytes.Buffer
	c.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		`esc_total{who="plain"} 1`,
		`esc_total{who="has\"quote"} 2`,
		`esc_total{who="back\\slash"} 3`,
		`esc_total{who="new\nline"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing escaped row %q in:\n%s", want, out)
		}
	}
	// Every sample row must stay one physical line — a raw newline in a
	// label value would corrupt the whole scrape.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !regexp.MustCompile(`^esc_total\{who=".*"\} \d+$`).MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestCounterVecMultiLabelRows(t *testing.T) {
	c := NewCounterVec("multi_total", "Two labels.", "path", "code")
	c.With("/v1/classify", "200").Add(5)
	c.With("/v1/classify", "429").Add(1)
	var buf bytes.Buffer
	c.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, `multi_total{path="/v1/classify",code="200"} 5`) ||
		!strings.Contains(out, `multi_total{path="/v1/classify",code="429"} 1`) {
		t.Fatalf("bad multi-label rows:\n%s", out)
	}
	if strings.Count(out, "# HELP") != 1 || strings.Count(out, "# TYPE") != 1 {
		t.Fatalf("headers duplicated:\n%s", out)
	}
}

func TestHistogramBucketCumulativity(t *testing.T) {
	h := NewHistogram("lat_seconds", "Cumulativity probe.", []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.02, 0.05, 0.5, 2, 7} // 1 / 2 / 1 under each bound, 2 overflow
	var sum float64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}
	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()

	bucketRe := regexp.MustCompile(`lat_seconds_bucket\{le="([^"]+)"\} (\d+)`)
	var counts []uint64
	var bounds []string
	for _, m := range bucketRe.FindAllStringSubmatch(out, -1) {
		n, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, m[1])
		counts = append(counts, n)
	}
	if len(counts) != 4 || bounds[3] != "+Inf" {
		t.Fatalf("expected 3 bounds plus +Inf, got %v", bounds)
	}
	// Exact cumulative counts for the observation set.
	for i, want := range []uint64{1, 3, 4, 6} {
		if counts[i] != want {
			t.Errorf("bucket le=%s = %d, want %d\n%s", bounds[i], counts[i], want, out)
		}
	}
	// Cumulativity invariants: non-decreasing, +Inf == _count.
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets not cumulative: %v", counts)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("lat_seconds_count %d\n", len(obs))) {
		t.Fatalf("_count != observations:\n%s", out)
	}
	sumRe := regexp.MustCompile(`lat_seconds_sum ([0-9.]+)`)
	m := sumRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no _sum in:\n%s", out)
	}
	got, _ := strconv.ParseFloat(m[1], 64)
	if math.Abs(got-sum) > 1e-6 {
		t.Fatalf("_sum = %v, want %v", got, sum)
	}
}

func TestHistogramEmptyExposition(t *testing.T) {
	h := NewHistogram("idle_seconds", "Never observed.", DefaultLatencyBuckets)
	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, `idle_seconds_bucket{le="+Inf"} 0`) ||
		!strings.Contains(out, "idle_seconds_count 0") ||
		!strings.Contains(out, "idle_seconds_sum 0") {
		t.Fatalf("empty histogram malformed:\n%s", out)
	}
}

func TestCounterVecConcurrentRegistration(t *testing.T) {
	// Many goroutines materializing overlapping label sets while a
	// scraper writes: the total across rows must equal the adds, and
	// -race must stay quiet.
	c := NewCounterVec("conc_total", "Concurrency probe.", "worker")
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.With(fmt.Sprintf("w%d", (g+i)%7)).Add(1)
				if i%50 == 0 {
					var buf bytes.Buffer
					c.Write(&buf) // concurrent scrape
				}
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	c.Write(&buf)
	rowRe := regexp.MustCompile(`conc_total\{worker="w\d"\} (\d+)`)
	var total uint64
	for _, m := range rowRe.FindAllStringSubmatch(buf.String(), -1) {
		n, _ := strconv.ParseUint(m[1], 10, 64)
		total += n
	}
	if total != goroutines*perG {
		t.Fatalf("total = %d, want %d\n%s", total, goroutines*perG, buf.String())
	}
}
