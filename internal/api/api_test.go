package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, map[string]string{"status": "ok"})
	})
}

func TestMiddlewareRequestIDAndEnvelope(t *testing.T) {
	m := NewHTTPMetrics("kit")
	mw := NewMiddleware(MiddlewareOptions{Metrics: m})
	h := mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestID(r.Context()) == "" {
			t.Error("no request id in context")
		}
		Error(w, r, http.StatusTeapot, "no %s here", "coffee")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/thing", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
	reqID := rec.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("missing X-Request-Id")
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v", err)
	}
	if env.Error.Code != http.StatusTeapot || env.Error.Message != "no coffee here" {
		t.Fatalf("envelope = %+v", env.Error)
	}
	if env.Error.RequestID != reqID {
		t.Fatalf("envelope request id %q != header %q", env.Error.RequestID, reqID)
	}

	// A second request gets a distinct id.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/thing", nil))
	if rec2.Header().Get("X-Request-Id") == reqID {
		t.Fatal("request ids repeat")
	}
}

func TestMiddlewareAuth(t *testing.T) {
	auth, err := NewAuthConfig([]APIKey{
		{Name: "ci", Key: "secret"},
		{Name: "slow", Key: "throttled", RatePerSec: 0.0001, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewHTTPMetrics("kit")
	mw := NewMiddleware(MiddlewareOptions{Metrics: m, Auth: auth})
	h := mw.Wrap(okHandler())

	get := func(path, key string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if key != "" {
			r.Header.Set("Authorization", "Bearer "+key)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}

	if rec := get("/v1/thing", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("no key: status = %d, want 401", rec.Code)
	}
	if rec := get("/v1/thing", "wrong"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("bad key: status = %d, want 401", rec.Code)
	}
	if rec := get("/v1/thing", "secret"); rec.Code != http.StatusOK {
		t.Fatalf("good key: status = %d, want 200", rec.Code)
	}
	// Probe paths stay open.
	if rec := get("/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: status = %d, want 200", rec.Code)
	}
	// Second request on a burst-1 near-zero-rate key is throttled.
	if rec := get("/v1/thing", "throttled"); rec.Code != http.StatusOK {
		t.Fatalf("throttled #1: status = %d, want 200", rec.Code)
	}
	rec := get("/v1/thing", "throttled")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled #2: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := m.AuthRejected.With("ratelimited").Load(); got != 1 {
		t.Fatalf("ratelimited counter = %d, want 1", got)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMiddleware(MiddlewareOptions{Metrics: NewHTTPMetrics("kit"), AccessLog: &buf})
	h := mw.Wrap(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/thing?x=1", nil))
	var recLine AccessRecord
	if err := json.Unmarshal(buf.Bytes(), &recLine); err != nil {
		t.Fatalf("bad access line %q: %v", buf.String(), err)
	}
	if recLine.Path != "/v1/thing" || recLine.Query != "x=1" || recLine.Status != 200 {
		t.Fatalf("access line = %+v", recLine)
	}
	if recLine.RequestID != rec.Header().Get("X-Request-Id") {
		t.Fatal("access line request id mismatch")
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewHTTPMetrics("kit")
	m.Requests.With("/v1/a", "200").Add(3)
	m.Requests.With("/v1/b", "404").Add(1)
	m.RequestSeconds.Observe(0.003)
	m.RequestSeconds.Observe(2.0)
	var buf bytes.Buffer
	m.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		`kit_requests_total{path="/v1/a",code="200"} 3`,
		`kit_requests_total{path="/v1/b",code="404"} 1`,
		`kit_request_seconds_bucket{le="0.005"} 1`,
		`kit_request_seconds_bucket{le="+Inf"} 2`,
		`kit_request_seconds_count 2`,
		"kit_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestLoadAPIKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.txt")
	content := "# comment\nci:secret\nlimited:lkey:5:10\n\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	auth, err := LoadAPIKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set("X-API-Key", "lkey")
	name, status, _ := auth.Admit(r)
	if name != "limited" || status != 0 {
		t.Fatalf("admit(lkey) = %q, %d", name, status)
	}

	if err := os.WriteFile(path, []byte("justakey\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAPIKeys(path); err == nil {
		t.Fatal("malformed key line accepted")
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram("x_seconds", "help", DefaultLatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	var buf bytes.Buffer
	h.Write(&buf)
	if !strings.Contains(buf.String(), fmt.Sprintf("x_seconds_sum %s\n", FormatFloat(1.0))) {
		t.Fatalf("sum drifted:\n%s", buf.String())
	}
}
