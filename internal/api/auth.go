package api

// API-key authentication and per-key rate limiting for the v1
// surfaces. Keys load from a plain text file (one key per line,
// optional per-key rate and burst), requests present them as a bearer
// token or X-API-Key header, and each key gets its own token bucket —
// an over-limit key is throttled (429) without touching any other
// key's budget. No auth config means an open server (the historical
// behavior).

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// APIKey is one authorized key with its rate budget.
type APIKey struct {
	// Name labels the key in logs and metrics (never the secret).
	Name string
	// Key is the secret presented by clients.
	Key string
	// RatePerSec refills the key's token bucket; <= 0 means unlimited.
	RatePerSec float64
	// Burst caps the bucket; <= 0 selects max(2*RatePerSec, 1).
	Burst float64
}

// AuthConfig is a v1 surface's auth state: the key set and its
// limiters. Safe for concurrent use.
type AuthConfig struct {
	keys map[string]*keyState
}

type keyState struct {
	name  string
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewAuthConfig builds auth state from explicit keys.
func NewAuthConfig(keys []APIKey) (*AuthConfig, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("api: auth enabled with no keys")
	}
	cfg := &AuthConfig{keys: make(map[string]*keyState, len(keys))}
	for _, k := range keys {
		if k.Key == "" {
			return nil, fmt.Errorf("api: empty API key %q", k.Name)
		}
		if _, dup := cfg.keys[k.Key]; dup {
			return nil, fmt.Errorf("api: duplicate API key %q", k.Name)
		}
		burst := k.Burst
		if burst <= 0 {
			burst = 2 * k.RatePerSec
			if burst < 1 {
				burst = 1
			}
		}
		name := k.Name
		if name == "" {
			name = anonymizeKey(k.Key)
		}
		cfg.keys[k.Key] = &keyState{
			name:   name,
			rate:   k.RatePerSec,
			burst:  burst,
			tokens: burst,
			last:   time.Now(),
		}
	}
	return cfg, nil
}

// LoadAPIKeys reads a key file: one key per line as
//
//	name:key[:rate[:burst]]
//
// with '#' comments and blank lines ignored. rate is requests/second
// (0 or omitted = unlimited), burst the bucket cap.
func LoadAPIKeys(path string) (*AuthConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("api: apikeys: %w", err)
	}
	defer f.Close()
	var keys []APIKey
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("api: apikeys %s:%d: want name:key[:rate[:burst]]", path, lineNo)
		}
		k := APIKey{Name: parts[0], Key: parts[1]}
		if len(parts) > 2 && parts[2] != "" {
			if k.RatePerSec, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("api: apikeys %s:%d: bad rate %q", path, lineNo, parts[2])
			}
		}
		if len(parts) > 3 && parts[3] != "" {
			if k.Burst, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("api: apikeys %s:%d: bad burst %q", path, lineNo, parts[3])
			}
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("api: apikeys: %w", err)
	}
	return NewAuthConfig(keys)
}

// anonymizeKey renders a log-safe key label.
func anonymizeKey(key string) string {
	if len(key) <= 4 {
		return "key-****"
	}
	return "key-" + key[:4] + "****"
}

// requestKey extracts the presented API key: Authorization bearer
// token first, X-API-Key header second.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
	}
	return r.Header.Get("X-API-Key")
}

// Admit authorizes one request. It returns the key's display name and
// a zero status on success; otherwise the HTTP status to answer (401
// unknown or missing key, 429 over the key's rate) and, for 429, a
// suggested Retry-After in seconds.
func (a *AuthConfig) Admit(r *http.Request) (name string, status int, retryAfter int) {
	ks, ok := a.keys[requestKey(r)]
	if !ok {
		return "", http.StatusUnauthorized, 0
	}
	if ks.rate <= 0 {
		return ks.name, 0, 0
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	now := time.Now()
	ks.tokens += now.Sub(ks.last).Seconds() * ks.rate
	if ks.tokens > ks.burst {
		ks.tokens = ks.burst
	}
	ks.last = now
	if ks.tokens < 1 {
		wait := (1 - ks.tokens) / ks.rate
		retry := int(wait + 1)
		return ks.name, http.StatusTooManyRequests, retry
	}
	ks.tokens--
	return ks.name, 0, 0
}
