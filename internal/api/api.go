// Package api is the shared v1 HTTP kit: the JSON error envelope,
// request-id plumbing, middleware (request ids, in-flight gauge,
// API-key auth + per-key rate limiting, latency/status metrics,
// structured access logging) and the hand-rolled Prometheus metric
// primitives behind /metrics. Both v1 surfaces — the store serve layer
// and the fabric coordinator — are built on it, so their envelopes,
// headers and exposition format cannot drift.
package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

type requestIDKey struct{}

// WithRequestID tags a request context with its assigned id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID recovers the id assigned by the middleware ("" outside it).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ErrorEnvelope is the uniform v1 error body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries one error's status, message and request id.
type ErrorBody struct {
	Code      int    `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// Error writes the JSON error envelope, tagging the request id.
func Error(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: RequestID(r.Context()),
	}})
}

// WriteJSON writes an indented JSON success body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ProbePath reports the endpoints exempt from auth: health probes and
// metric scrapers authenticate out of band (network policy), and
// locking them out turns every outage into a diagnosis problem.
func ProbePath(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics"
}
