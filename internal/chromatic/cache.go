package chromatic

// TowerCache memoizes iterated subdivisions R_A^ℓ(I) across solvability
// queries: an entry is keyed by the membership predicate's signature and
// the input complex's hash, and holds one Tower that is extended lazily
// and monotonically. Repeated SolveAffine calls, the core experiments
// and the factool subcommands therefore build each level exactly once.

import (
	"sync"
	"sync/atomic"

	"repro/internal/sc"
)

// TowerCache is a concurrency-safe cache of iterated subdivisions.
// The zero value is not usable; create instances with NewTowerCache.
type TowerCache struct {
	mu      sync.Mutex
	entries map[string]*CachedTower

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultTowerCache is the process-wide cache used by solver.SolveAffine
// and the Model convenience APIs.
var DefaultTowerCache = NewTowerCache()

// NewTowerCache creates an empty cache.
func NewTowerCache() *TowerCache {
	return &TowerCache{entries: make(map[string]*CachedTower)}
}

// CachedTower is a shared, lazily extended tower. Extension is
// serialized internally; the underlying Tower may be read concurrently
// up to any height already ensured.
type CachedTower struct {
	mu    sync.Mutex
	tower *Tower
}

// Acquire returns the cached tower for (sig, input), creating it on a
// miss. sig must uniquely determine the membership predicate (use
// affine.Task.Signature for affine tasks); the input complex is hashed.
// workers configures extensions of a freshly created tower; a cache hit
// keeps the existing tower's worker count.
func (c *TowerCache) Acquire(sig string, input *sc.Complex, workers int) *CachedTower {
	key := sig + "\x00" + input.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ct, ok := c.entries[key]; ok {
		c.hits.Add(1)
		return ct
	}
	c.misses.Add(1)
	tower := NewTower(input)
	tower.SetWorkers(workers)
	ct := &CachedTower{tower: tower}
	c.entries[key] = ct
	return ct
}

// Stats reports cache hits and misses (Acquire calls that found,
// respectively created, an entry).
func (c *TowerCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheStats is a point-in-time snapshot of a TowerCache: the hit/miss
// counters plus size accounting — the number of cached towers, their
// total built levels, and the total vertices across those levels. The
// size figures are the groundwork for LRU bounding (ROADMAP): they are
// what an eviction policy will weigh.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Towers   int   `json:"towers"`
	Levels   int   `json:"levels"`
	Vertices int   `json:"vertices"`
}

// Snapshot collects the cache statistics. Towers mid-extension are
// counted at the height already built.
func (c *TowerCache) Snapshot() CacheStats {
	c.mu.Lock()
	entries := make([]*CachedTower, 0, len(c.entries))
	for _, ct := range c.entries {
		entries = append(entries, ct)
	}
	c.mu.Unlock()
	st := CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Towers: len(entries),
	}
	for _, ct := range entries {
		h := ct.tower.Height()
		st.Levels += h
		for level := 1; level <= h; level++ {
			st.Vertices += ct.tower.LevelComplex(level).NumVertices()
		}
	}
	return st
}

// Len returns the number of cached towers.
func (c *TowerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Tower returns the underlying tower. Callers must only read levels up
// to a height previously ensured via EnsureHeight.
func (ct *CachedTower) Tower() *Tower { return ct.tower }

// EnsureHeight extends the tower to at least the given height using the
// membership predicate, which must match the signature the tower was
// acquired under. Concurrent calls are serialized; already-built levels
// are never rebuilt.
func (ct *CachedTower) EnsureHeight(member Membership, height int) error {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for ct.tower.Height() < height {
		if err := ct.tower.Extend(member); err != nil {
			return err
		}
	}
	return nil
}
