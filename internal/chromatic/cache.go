package chromatic

// TowerCache memoizes iterated subdivisions R_A^l(I) across solvability
// queries: an entry is keyed by the membership predicate's signature and
// the input complex's hash, and holds one Tower that is extended lazily
// and monotonically. Repeated SolveAffine calls, the core experiments
// and the factool subcommands therefore build each level exactly once.
//
// Memory can be bounded for long-running enumeration campaigns: with a
// byte budget set (SetMaxBytes / NewTowerCacheWithBudget), entries are
// tracked in least-recently-acquired order with an approximate resident
// size, and unpinned entries are evicted from the cold end whenever the
// budget is exceeded — the cache runs flat instead of accreting one
// tower per distinct R_A signature over a whole census. Entries are
// pinned while acquired: Acquire pins, CachedTower.Release unpins, and
// only unpinned entries are evicted, so a tower never disappears under
// a running solve. An evicted tower still held by a caller remains
// fully usable (it is simply no longer shared); its next Acquire is a
// miss that rebuilds.

import (
	"container/list"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sc"
)

// TowerCache is a concurrency-safe cache of iterated subdivisions.
// The zero value is not usable; create instances with NewTowerCache.
type TowerCache struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently acquired
	maxBytes int64
	bytes    int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is the LRU bookkeeping of one cached tower.
type cacheEntry struct {
	key     string
	ct      *CachedTower
	elem    *list.Element
	bytes   int64
	pins    int
	evicted bool
}

// DefaultTowerCache is the process-wide cache used by solver.SolveAffine
// and the Model convenience APIs.
var DefaultTowerCache = NewTowerCache()

// NewTowerCache creates an empty cache with no byte budget.
func NewTowerCache() *TowerCache {
	return &TowerCache{entries: make(map[string]*cacheEntry), lru: list.New()}
}

// NewTowerCacheWithBudget creates an empty cache that evicts
// least-recently-acquired unpinned towers once the approximate resident
// size exceeds maxBytes. maxBytes <= 0 means unbounded.
func NewTowerCacheWithBudget(maxBytes int64) *TowerCache {
	c := NewTowerCache()
	c.maxBytes = maxBytes
	return c
}

// SetMaxBytes installs (or clears, with n <= 0) the byte budget and
// immediately evicts down to it.
func (c *TowerCache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictLocked()
}

// CachedTower is a shared, lazily extended tower. Extension is
// serialized internally; the underlying Tower may be read concurrently
// up to any height already ensured.
type CachedTower struct {
	mu    sync.Mutex
	tower *Tower

	cache *TowerCache
	entry *cacheEntry
}

// Acquire returns the cached tower for (sig, input), creating it on a
// miss. sig must uniquely determine the membership predicate (use
// affine.Task.Signature for affine tasks); the input complex is hashed.
// workers configures extensions of a freshly created tower; a cache hit
// keeps the existing tower's worker count.
//
// The entry is pinned until Release: on caches with a byte budget,
// callers should Release the tower when done so it becomes evictable
// (unbounded caches never evict, so legacy callers that never Release
// only forgo eviction, nothing else).
func (c *TowerCache) Acquire(sig string, input *sc.Complex, workers int) *CachedTower {
	key := sig + "\x00" + input.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		e.pins++
		c.lru.MoveToFront(e.elem)
		return e.ct
	}
	c.misses.Add(1)
	tower := NewTower(input)
	tower.SetWorkers(workers)
	e := &cacheEntry{key: key, bytes: tower.ApproxBytes(), pins: 1}
	e.ct = &CachedTower{tower: tower, cache: c, entry: e}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += e.bytes
	c.evictLocked()
	return e.ct
}

// Release unpins one Acquire of this tower, making the entry evictable
// once every holder has released it. Releasing more times than acquired
// is a no-op; releasing a tower whose entry was already evicted (or one
// not owned by a cache) is too.
func (ct *CachedTower) Release() {
	c := ct.cache
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := ct.entry
	if e.evicted || e.pins == 0 {
		return
	}
	e.pins--
	c.evictLocked()
}

// resize refreshes the recorded size of a grown tower and enforces the
// budget. Called after EnsureHeight extensions.
func (c *TowerCache) resize(ct *CachedTower) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := ct.entry
	if e.evicted {
		return
	}
	nb := ct.tower.ApproxBytes()
	c.bytes += nb - e.bytes
	e.bytes = nb
	c.evictLocked()
}

// evictLocked drops least-recently-acquired unpinned entries until the
// cache fits its budget. Pinned entries are skipped, so a cache whose
// live working set exceeds the budget temporarily runs over it (a soft
// bound) rather than corrupting in-flight solves.
func (c *TowerCache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for elem := c.lru.Back(); elem != nil && c.bytes > c.maxBytes; {
		e := elem.Value.(*cacheEntry)
		prev := elem.Prev()
		if e.pins == 0 {
			c.lru.Remove(elem)
			delete(c.entries, e.key)
			c.bytes -= e.bytes
			e.evicted = true
			c.evictions.Add(1)
		}
		elem = prev
	}
}

// Stats reports cache hits and misses (Acquire calls that found,
// respectively created, an entry).
func (c *TowerCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheStats is a point-in-time snapshot of a TowerCache: the hit/miss
// counters plus size accounting — the number of cached towers, their
// total built levels, the total vertices across those levels, the
// approximate resident bytes, and the eviction counters when a byte
// budget is set. With a budget, eviction timing depends on goroutine
// scheduling, so Hits/Misses/Evictions/Bytes are not
// worker-count-deterministic — keep budgeted cache stats out of
// byte-compared outputs.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Towers    int   `json:"towers"`
	Levels    int   `json:"levels"`
	Vertices  int   `json:"vertices"`
	Bytes     int64 `json:"bytes,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
	Evictions int64 `json:"evictions,omitempty"`
}

// Snapshot collects the cache statistics. Towers mid-extension are
// counted at the height already built.
func (c *TowerCache) Snapshot() CacheStats {
	c.mu.Lock()
	entries := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Towers:    len(entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Evictions: c.evictions.Load(),
	}
	c.mu.Unlock()
	for _, e := range entries {
		h := e.ct.tower.Height()
		st.Levels += h
		for level := 1; level <= h; level++ {
			st.Vertices += e.ct.tower.LevelComplex(level).NumVertices()
		}
	}
	return st
}

// WritePrometheus emits the cache counters and size gauges in
// Prometheus text format. Unlike Snapshot it never walks the towers
// (Levels/Vertices are omitted), so it is cheap enough for every
// scrape of a long campaign; it implements obs.Collector so a cache
// registers directly into a telemetry registry.
func (c *TowerCache) WritePrometheus(w io.Writer) {
	c.mu.Lock()
	towers := len(c.entries)
	bytes, maxBytes := c.bytes, c.maxBytes
	c.mu.Unlock()
	obs.WriteGauge(w, "factool_tower_cache_towers", "Towers resident in the shared subdivision cache.", int64(towers))
	obs.WriteGauge(w, "factool_tower_cache_bytes", "Approximate resident bytes of the shared subdivision cache.", bytes)
	obs.WriteGauge(w, "factool_tower_cache_max_bytes", "Byte budget of the shared subdivision cache (0 = unbounded).", maxBytes)
	obs.WriteGauge(w, "factool_tower_cache_hits", "Subdivision cache hits.", c.hits.Load())
	obs.WriteGauge(w, "factool_tower_cache_misses", "Subdivision cache misses.", c.misses.Load())
	obs.WriteGauge(w, "factool_tower_cache_evictions", "Subdivision cache evictions.", c.evictions.Load())
}

// Len returns the number of cached towers.
func (c *TowerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Tower returns the underlying tower. Callers must only read levels up
// to a height previously ensured via EnsureHeight.
func (ct *CachedTower) Tower() *Tower { return ct.tower }

// EnsureHeight extends the tower to at least the given height using the
// membership predicate, which must match the signature the tower was
// acquired under. Concurrent calls are serialized; already-built levels
// are never rebuilt. Compat form of EnsureHeightTables — the callback
// is adapted with TablesOf per call.
func (ct *CachedTower) EnsureHeight(member Membership, height int) error {
	return ct.EnsureHeightTables(TablesOf(member), height)
}

// EnsureHeightTables extends the tower to at least the given height
// using the membership-table provider (the rank-indexed fast path),
// which must match the signature the tower was acquired under.
// Concurrent calls are serialized; already-built levels are never
// rebuilt.
func (ct *CachedTower) EnsureHeightTables(tables MemberTables, height int) error {
	return ct.EnsureHeightTablesTraced(tables, height, 0)
}

// EnsureHeightTablesTraced is EnsureHeightTables recording a
// chromatic.tower_extend span under parent when the tower actually
// grows (already-built heights record nothing, keeping the per-round
// fast path span-free).
func (ct *CachedTower) EnsureHeightTablesTraced(tables MemberTables, height int, parent obs.SpanID) error {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	var span *obs.ActiveSpan
	from := ct.tower.Height()
	for ct.tower.Height() < height {
		if span == nil {
			span = obs.DefaultTracer.Start("chromatic.tower_extend", parent,
				"from", strconv.Itoa(from), "to", strconv.Itoa(height))
		}
		if err := ct.tower.ExtendTables(tables); err != nil {
			span.End()
			return err
		}
	}
	if span != nil {
		span.End()
		if ct.cache != nil {
			ct.cache.resize(ct)
		}
	}
	return nil
}
