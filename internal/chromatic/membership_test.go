package chromatic

import (
	"fmt"
	"testing"

	"repro/internal/procs"
)

// pseudoMember is a pure deterministic predicate selecting an arbitrary
// sub-complex — a hash over the packed run key, so acceptance varies
// with both rounds.
var pseudoMember Membership = func(_ Run2, key RunKey) bool {
	return (key.R1*2654435761+key.R2*40503)%3 == 0
}

// TestMembershipTableMatchesCallback pins the table-vs-callback
// equivalence on every ground set of n ≤ 4: the precomputed bitset
// answers every ranked run exactly like the predicate it was built
// from, and the Membership() adapter inverts the construction.
func TestMembershipTableMatchesCallback(t *testing.T) {
	preds := []struct {
		name string
		m    Membership
	}{
		{"full", FullChr2Membership},
		{"restricted", restrictedMember},
		{"pseudo", pseudoMember},
	}
	for _, n := range []int{1, 2, 3, 4} {
		for _, pred := range preds {
			t.Run(fmt.Sprintf("n=%d/%s", n, pred.name), func(t *testing.T) {
				for _, ground := range procs.NonemptySubsets(procs.FullSet(n)) {
					mt := NewMembershipTable(ground, pred.m)
					if mt.NumRuns() != RunCount(ground) {
						t.Fatalf("ground %v: NumRuns = %d, want %d", ground, mt.NumRuns(), RunCount(ground))
					}
					adapter := mt.Membership()
					count := 0
					ForEachRun2Ranked(ground, func(r Run2, key RunKey, rank RunRank) bool {
						want := pred.m(r, key)
						if mt.Contains(rank) != want {
							t.Fatalf("ground %v rank %d: table says %v, callback %v",
								ground, rank, mt.Contains(rank), want)
						}
						if adapter(r, key) != want {
							t.Fatalf("ground %v rank %d: adapter disagrees with callback", ground, rank)
						}
						if want {
							count++
						}
						return true
					})
					if mt.Len() != count {
						t.Fatalf("ground %v: Len = %d, want %d", ground, mt.Len(), count)
					}
				}
			})
		}
	}
}

// TestFullTableIsAllAccepting pins the nil-words fast path: the cached
// full-ground table accepts everything and reports every row non-empty.
func TestFullTableIsAllAccepting(t *testing.T) {
	ground := procs.FullSet(3)
	mt := FullChr2Tables.MembershipTable(ground)
	if mt.Len() != mt.NumRuns() {
		t.Fatalf("full table Len %d != NumRuns %d", mt.Len(), mt.NumRuns())
	}
	for i := 0; i < mt.NumParts(); i++ {
		if !mt.RowAny(i) {
			t.Fatalf("full table row %d reported empty", i)
		}
	}
}

// TestApplyAffineTablesMatchesCallback checks the redesigned entry
// points agree: the callback path (ApplyAffine via TablesOf) and the
// direct table path (ApplyAffineTables over a caller-built provider)
// produce identical complexes and carriers, serial and parallel.
func TestApplyAffineTablesMatchesCallback(t *testing.T) {
	for _, n := range []int{2, 3} {
		base := standardBase(t, n)
		viaCallback, err := ApplyAffineWorkers(base, pseudoMember, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			viaTables, err := ApplyAffineTables(base, TablesOf(pseudoMember), workers)
			if err != nil {
				t.Fatal(err)
			}
			if !viaCallback.Complex.Equal(viaTables.Complex) {
				t.Fatalf("n=%d workers=%d: table path complex differs from callback path", n, workers)
			}
			for _, v := range viaCallback.Complex.VertexIDs() {
				if !viaCallback.Carrier(v).Equal(viaTables.Carrier(v)) {
					t.Fatalf("n=%d workers=%d: carrier of %d differs", n, workers, v)
				}
			}
		}
	}
}

// TestMemoArenaReuse exercises the generation-counter arena directly:
// records vanish after reset without reallocation, both on the flat
// slot path and on the map fallback for oversized grounds.
func TestMemoArenaReuse(t *testing.T) {
	flat := newMemoArena[int](procs.FullSet(4), 4)
	if flat.slots == nil {
		t.Fatal("n=4 ground should use the flat slot path")
	}
	// A ground with a high bit set pushes members<<width beyond
	// arenaMaxSlots: the arena must fall back to the map.
	big := newMemoArena[int](procs.Set(1)<<15, 4)
	if big.over == nil {
		t.Fatal("oversized ground should use the map fallback")
	}
	for name, a := range map[string]*memoArena[int]{"flat": flat, "map": big} {
		if _, ok := a.get(1, 3); ok {
			t.Fatalf("%s: fresh arena reported a hit", name)
		}
		a.put(1, 3, 42)
		a.put(2, 1, 7)
		if v, ok := a.get(1, 3); !ok || v != 42 {
			t.Fatalf("%s: get(1,3) = %d,%v want 42,true", name, v, ok)
		}
		a.reset()
		if _, ok := a.get(1, 3); ok {
			t.Fatalf("%s: record survived reset", name)
		}
		a.put(1, 3, 9)
		if v, ok := a.get(1, 3); !ok || v != 9 {
			t.Fatalf("%s: post-reset put lost: %d,%v", name, v, ok)
		}
	}
}

// TestArenaReuseAcrossTowerLevels is the race-exercised arena test
// (run under -race in CI): repeated Extend calls at one and at eight
// workers reuse per-worker arenas across rows and levels, and the
// towers stay byte-identical.
func TestArenaReuseAcrossTowerLevels(t *testing.T) {
	build := func(workers int) *Tower {
		tower := NewTower(standardBase(t, 3))
		tower.SetWorkers(workers)
		for i := 0; i < 2; i++ {
			if err := tower.ExtendTables(TablesOf(pseudoMember)); err != nil {
				t.Fatal(err)
			}
		}
		return tower
	}
	w1 := build(1)
	w8 := build(8)
	if !w1.Top().Equal(w8.Top()) {
		t.Fatal("tower tops differ between 1 and 8 workers")
	}
	if w1.Top().Hash() != w8.Top().Hash() {
		t.Fatal("tower hashes differ between 1 and 8 workers")
	}
	for _, v := range w1.Top().VertexIDs() {
		if !w1.RootCarrier(v).Equal(w8.RootCarrier(v)) {
			t.Fatalf("root carrier of %d differs", v)
		}
	}
}
