package chromatic

import (
	"fmt"
	"testing"
)

// TestTowerCacheEviction checks the byte budget: distinct signatures
// accrete towers until the budget is exceeded, then the
// least-recently-acquired unpinned entries are evicted and re-acquiring
// them is a miss that rebuilds.
func TestTowerCacheEviction(t *testing.T) {
	base := standardBase(t, 3)
	one := NewTower(base)
	if err := one.Extend(FullChr2Membership); err != nil {
		t.Fatal(err)
	}
	towerBytes := one.ApproxBytes()
	if towerBytes <= 0 {
		t.Fatalf("ApproxBytes = %d, want > 0", towerBytes)
	}

	// Budget for about two extended towers.
	cache := NewTowerCacheWithBudget(2*towerBytes + towerBytes/2)
	acquire := func(sig string) *CachedTower {
		ct := cache.Acquire(sig, base, 1)
		if err := ct.EnsureHeight(FullChr2Membership, 1); err != nil {
			t.Fatal(err)
		}
		return ct
	}
	for i := 0; i < 4; i++ {
		acquire(fmt.Sprintf("sig-%d", i)).Release()
	}
	st := cache.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after 4 towers against a 2-tower budget: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident %d bytes above budget %d with everything released", st.Bytes, st.MaxBytes)
	}
	if cache.Len() >= 4 {
		t.Fatalf("len = %d, want < 4 after eviction", cache.Len())
	}
	// sig-0 was the coldest entry: re-acquiring it must be a miss.
	misses0 := st.Misses
	acquire("sig-0").Release()
	if _, misses := cache.Stats(); misses != misses0+1 {
		t.Fatalf("re-acquire of evicted entry: misses = %d, want %d", misses, misses0+1)
	}
}

// TestTowerCacheLRUOrder checks recency: touching an old entry saves it
// and sacrifices the colder one instead.
func TestTowerCacheLRUOrder(t *testing.T) {
	base := standardBase(t, 3)
	probe := NewTower(base)
	if err := probe.Extend(FullChr2Membership); err != nil {
		t.Fatal(err)
	}
	cache := NewTowerCacheWithBudget(2*probe.ApproxBytes() + probe.ApproxBytes()/2)
	build := func(sig string) {
		ct := cache.Acquire(sig, base, 1)
		if err := ct.EnsureHeight(FullChr2Membership, 1); err != nil {
			t.Fatal(err)
		}
		ct.Release()
	}
	build("a")
	build("b")
	cache.Acquire("a", base, 1).Release() // refresh a: b is now coldest
	build("c")                            // evicts b, not a
	hits0, _ := cache.Stats()
	cache.Acquire("a", base, 1).Release()
	if hits, _ := cache.Stats(); hits != hits0+1 {
		t.Fatal("entry 'a' should have survived eviction (it was refreshed)")
	}
	_, misses0 := cache.Stats()
	cache.Acquire("b", base, 1).Release()
	if _, misses := cache.Stats(); misses != misses0+1 {
		t.Fatal("entry 'b' should have been evicted as the coldest")
	}
}

// TestTowerCachePinnedSurvives checks that a pinned (acquired, not yet
// released) tower is never evicted, even when the budget is blown, and
// that an evicted-while-held tower keeps working.
func TestTowerCachePinnedSurvives(t *testing.T) {
	base := standardBase(t, 3)
	cache := NewTowerCacheWithBudget(1) // everything over budget
	pinned := cache.Acquire("pinned", base, 1)
	if err := pinned.EnsureHeight(FullChr2Membership, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ct := cache.Acquire(fmt.Sprintf("other-%d", i), base, 1)
		if err := ct.EnsureHeight(FullChr2Membership, 1); err != nil {
			t.Fatal(err)
		}
		ct.Release() // immediately evictable: budget is 1 byte
	}
	hits0, _ := cache.Stats()
	again := cache.Acquire("pinned", base, 1)
	if again != pinned {
		t.Fatal("pinned entry was evicted")
	}
	if hits, _ := cache.Stats(); hits != hits0+1 {
		t.Fatal("pinned re-acquire should be a hit")
	}
	again.Release()
	pinned.Release()
	// Now unpinned: the 1-byte budget evicts it.
	if cache.Len() != 0 {
		t.Fatalf("len = %d, want 0 once every pin is released", cache.Len())
	}
	// The held tower object itself must remain usable after eviction.
	if err := pinned.EnsureHeight(FullChr2Membership, 2); err != nil {
		t.Fatalf("evicted-but-held tower failed to extend: %v", err)
	}
	if pinned.Tower().Height() != 2 {
		t.Fatalf("height = %d, want 2", pinned.Tower().Height())
	}
	// Double-release of an evicted entry is a no-op, not a panic.
	pinned.Release()
}

// TestTowerCacheUnboundedNeverEvicts pins the legacy behavior: without
// a budget nothing is evicted and Release is optional.
func TestTowerCacheUnboundedNeverEvicts(t *testing.T) {
	base := standardBase(t, 3)
	cache := NewTowerCache()
	for i := 0; i < 5; i++ {
		ct := cache.Acquire(fmt.Sprintf("sig-%d", i), base, 1)
		if err := ct.EnsureHeight(FullChr2Membership, 1); err != nil {
			t.Fatal(err)
		}
		// No Release: unbounded caches must not care.
	}
	st := cache.Snapshot()
	if st.Evictions != 0 || st.Towers != 5 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("size accounting missing: %+v", st)
	}
}

// TestSetMaxBytesEvictsImmediately checks installing a budget on a full
// cache trims it without waiting for the next Acquire.
func TestSetMaxBytesEvictsImmediately(t *testing.T) {
	base := standardBase(t, 3)
	cache := NewTowerCache()
	for i := 0; i < 3; i++ {
		ct := cache.Acquire(fmt.Sprintf("sig-%d", i), base, 1)
		if err := ct.EnsureHeight(FullChr2Membership, 1); err != nil {
			t.Fatal(err)
		}
		ct.Release()
	}
	if cache.Len() != 3 {
		t.Fatalf("len = %d, want 3", cache.Len())
	}
	cache.SetMaxBytes(1)
	if cache.Len() != 0 {
		t.Fatalf("len = %d after SetMaxBytes(1), want 0", cache.Len())
	}
	st := cache.Snapshot()
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
}
