package chromatic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/procs"
)

// randRun draws a pseudo-random full-participation 2-round run.
func randRun(seed int64, n int) Run2 {
	rng := rand.New(rand.NewSource(seed))
	g := procs.FullSet(n)
	return Run2{
		R1: procs.RandomOrderedPartition(g, rng),
		R2: procs.RandomOrderedPartition(g, rng),
	}
}

// TestQuickVertex2Invariants: structural invariants of Chr² vertices
// from arbitrary runs.
func TestQuickVertex2Invariants(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint(seed)%2)
		run := randRun(seed, n)
		u := NewUniverse(n)
		for _, p := range procs.FullSet(n).Members() {
			v := u.Vertex(run.VertexOf(u, p))
			// Self-inclusion at both levels.
			if !v.View1.Contains(p) || !v.View2.Contains(p) {
				return false
			}
			// View¹ ⊆ Carrier, and content covers exactly View².
			if !v.View1.SubsetOf(v.Carrier) {
				return false
			}
			var content procs.Set
			var carrier procs.Set
			for q, view := range v.Content {
				content = content.Add(q)
				carrier = carrier.Union(view)
			}
			if content != v.View2 || carrier != v.Carrier {
				return false
			}
			// Round-2 knowledge includes the round-1 view of everyone
			// seen before p in round 2... at minimum p's own View¹.
			if !v.View1.SubsetOf(v.Carrier) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickFacetIsChromaticChain: within one facet, View² values form a
// containment chain and colors are distinct.
func TestQuickFacetChain(t *testing.T) {
	f := func(seed int64) bool {
		run := randRun(seed, 3)
		u := NewUniverse(3)
		ids := run.FacetIDs(u)
		for i := range ids {
			for j := range ids {
				vi, vj := u.Vertex(ids[i]), u.Vertex(ids[j])
				if i != j && vi.Color == vj.Color {
					return false
				}
				if !vi.View2.SubsetOf(vj.View2) && !vj.View2.SubsetOf(vi.View2) {
					return false
				}
				if !vi.View1.SubsetOf(vj.View1) && !vj.View1.SubsetOf(vi.View1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoordsBarycentric: all geometric coordinates are barycentric
// (non-negative, summing to 1).
func TestQuickCoordsBarycentric(t *testing.T) {
	f := func(seed int64) bool {
		n := 3
		run := randRun(seed, n)
		u := NewUniverse(n)
		for _, id := range run.FacetIDs(u) {
			p := Coords2(n, u.Vertex(id))
			sum := 0.0
			for _, x := range p {
				if x < -1e-9 {
					return false
				}
				sum += x
			}
			if sum < 1-1e-6 || sum > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickKnowledgeEqualsCarrier: the run's transitive 2-round
// knowledge (per iis semantics recomputed here) equals the vertex
// carrier.
func TestQuickKnowledgeEqualsCarrier(t *testing.T) {
	f := func(seed int64) bool {
		run := randRun(seed, 4)
		u := NewUniverse(4)
		views1 := run.R1.Views()
		for _, p := range procs.FullSet(4).Members() {
			v := u.Vertex(run.VertexOf(u, p))
			v2, _ := run.R2.ViewOf(p)
			var know procs.Set
			v2.ForEach(func(q procs.ID) { know = know.Union(views1[q]) })
			if know != v.Carrier {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
