// Package chromatic implements the standard chromatic subdivision Chr of
// Section 2 and Appendix A: Chr s for the standard simplex, the second
// subdivision Chr² s (whose facets are 2-round IIS runs), iterated and
// generic subdivisions with carrier tracking, and the geometric
// coordinates of Appendix A used for rendering the paper's figures.
//
// Combinatorial identities used throughout:
//
//   - A facet of Chr s with participation P is exactly an ordered
//     partition of P (a one-round IS schedule); the vertex of process p
//     is (p, view) where view is the union of p's block and all earlier
//     blocks.
//   - A facet of Chr² s is a pair of ordered partitions (R1, R2) of Π:
//     R1 orders the first IS, R2 the second. The vertex of p is
//     (p, σ) where σ = {(q, View¹(q)) : q ∈ View²(p)} ∈ Chr s,
//     View¹(q) is q's round-1 view under R1 and View²(p) is p's round-2
//     prefix under R2.
package chromatic

import (
	"fmt"
	"sync"

	"repro/internal/procs"
	"repro/internal/sc"
)

// V1ID deterministically encodes a vertex (color, view) of Chr s as a
// vertex ID. Stable across complexes, so Chr-s sub-complexes built
// independently are directly comparable.
func V1ID(color procs.ID, view procs.Set) sc.VertexID {
	return sc.VertexID(int32(color)<<20 | int32(view))
}

// V1Label renders a Chr-s vertex in the paper's style, e.g. "p2:{p1,p2}".
func V1Label(color procs.ID, view procs.Set) string {
	return fmt.Sprintf("%v:%v", color, view)
}

// BuildChr1 constructs Chr s for an n-process system as an explicit
// complex: all facets given by ordered partitions of every face of s
// (so boundary simplices with partial participation are included).
func BuildChr1(n int) *sc.Complex {
	c := sc.NewComplex(n)
	full := procs.FullSet(n)
	for _, ground := range procs.NonemptySubsets(full) {
		for _, op := range procs.EnumerateOrderedPartitions(ground) {
			views := op.Views()
			ids := make([]sc.VertexID, 0, ground.Size())
			ground.ForEach(func(p procs.ID) {
				id := V1ID(p, views[p])
				// Errors impossible: colors in range, consistent labels.
				_ = c.AddVertex(id, int(p), V1Label(p, views[p]))
				ids = append(ids, id)
			})
			_ = c.AddSimplex(ids...)
		}
	}
	return c
}

// Vertex2 is the structured datum of a Chr² s vertex.
type Vertex2 struct {
	Color procs.ID
	// View1 is carrier(v', s) for the same-colored vertex v' of the
	// carrier in Chr s: the process's own first-round view.
	View1 procs.Set
	// View2 is χ(carrier(v, Chr s)): the processes seen in round 2.
	View2 procs.Set
	// Carrier is χ(carrier(v, s)): the union of View1(q) over q ∈ View2 —
	// the full participation witnessed through both rounds.
	Carrier procs.Set
	// Content maps each q ∈ View2 to View¹(q): the simplex of Chr s that
	// this vertex saw in its second immediate snapshot.
	Content map[procs.ID]procs.Set
}

// Universe interns Chr² s vertices into stable vertex IDs so that all
// sub-complexes of Chr² s for a given n share a vertex identity space.
// Safe for concurrent use: the parallel subdivision engine interns
// candidate vertices from many workers at once. IDs of vertices interned
// concurrently depend on scheduling, but membership testing — the only
// concurrent consumer — never relies on which fresh ID a candidate got.
type Universe struct {
	n    int
	mu   sync.RWMutex
	ids  map[string]sc.VertexID
	data []Vertex2
}

// NewUniverse creates an empty interner for an n-process system.
func NewUniverse(n int) *Universe {
	return &Universe{n: n, ids: make(map[string]sc.VertexID)}
}

// sharedUniverses holds the process-wide per-n universes handed out by
// SharedUniverse.
var (
	sharedUniversesMu sync.Mutex
	sharedUniverses   = make(map[int]*Universe)
)

// SharedUniverse returns the process-wide universe for n-process
// systems, creating it on first use. Models built through the
// convenience APIs share it so repeated builds for the same n intern
// each Chr² vertex once instead of once per model; callers that need an
// isolated identity space (or fully reproducible vertex IDs regardless
// of what was built before) should use NewUniverse instead.
func SharedUniverse(n int) *Universe {
	sharedUniversesMu.Lock()
	defer sharedUniversesMu.Unlock()
	u, ok := sharedUniverses[n]
	if !ok {
		u = NewUniverse(n)
		sharedUniverses[n] = u
	}
	return u
}

// N returns the number of processes.
func (u *Universe) N() int { return u.n }

// NumVertices returns the number of interned vertices.
func (u *Universe) NumVertices() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.data)
}

// appendContentKey appends the canonical binary serialization of
// (color, content) to buf: the color, the round-2 view bitset, then the
// round-1 views of its members in increasing process order. The round-2
// view both disambiguates the entry set and drives ordered iteration,
// so no sorting (and no fmt formatting) happens on this path — it is
// the interning hot key of R_A^ℓ construction.
func appendContentKey(buf []byte, color procs.ID, content map[procs.ID]procs.Set) []byte {
	var view2 procs.Set
	for q := range content {
		view2 = view2.Add(q)
	}
	buf = append(buf, byte(color),
		byte(view2), byte(view2>>8), byte(view2>>16), byte(view2>>24))
	view2.ForEach(func(q procs.ID) {
		v := content[q]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	})
	return buf
}

// Intern returns the vertex ID for (color, content), creating it if
// needed. content maps each process seen in round 2 to its round-1 view;
// it must include color itself (self-inclusion).
func (u *Universe) Intern(color procs.ID, content map[procs.ID]procs.Set) sc.VertexID {
	var arr [5 + 4*procs.MaxProcs]byte
	key := appendContentKey(arr[:0], color, content)
	u.mu.RLock()
	id, ok := u.ids[string(key)]
	u.mu.RUnlock()
	if ok {
		return id
	}
	v2 := Vertex2{Color: color, Content: make(map[procs.ID]procs.Set, len(content))}
	for q, view := range content {
		v2.Content[q] = view
		v2.View2 = v2.View2.Add(q)
		v2.Carrier = v2.Carrier.Union(view)
	}
	v2.View1 = content[color]
	u.mu.Lock()
	defer u.mu.Unlock()
	if id, ok := u.ids[string(key)]; ok {
		return id
	}
	id = sc.VertexID(len(u.data))
	u.data = append(u.data, v2)
	u.ids[string(key)] = id
	return id
}

// Vertex returns the structured datum of an interned vertex.
func (u *Universe) Vertex(id sc.VertexID) Vertex2 {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.data[int(id)]
}

// Label renders a Chr²-s vertex: "p1:V1{..}V2{..}".
func (u *Universe) Label(id sc.VertexID) string {
	v := u.Vertex(id)
	return fmt.Sprintf("%v:V1%v,V2%v", v.Color, v.View1, v.View2)
}

// Run2 is a 2-round IIS run over a ground set: a facet of Chr²(σ) where
// σ is the face of s with χ(σ) = ground. Both rounds are ordered
// partitions of the same ground (full-information IIS: everyone moves in
// both rounds).
type Run2 struct {
	R1, R2 procs.OrderedPartition
}

// Validate checks both rounds partition the same ground set.
func (r Run2) Validate(ground procs.Set) error {
	if err := r.R1.Validate(ground); err != nil {
		return fmt.Errorf("round 1: %w", err)
	}
	if err := r.R2.Validate(ground); err != nil {
		return fmt.Errorf("round 2: %w", err)
	}
	return nil
}

// Ground returns the participating set of the run.
func (r Run2) Ground() procs.Set { return r.R1.Ground() }

// RunKey is the compact comparable identity of a Run2: the packed-nibble
// encodings of both rounds (procs.OrderedPartition.PackedKey). It is the
// membership hot-path key — two runs over grounds within
// procs.PackedKeyMaxProcs are equal iff their RunKeys are — and replaces
// the fmt-built string keys the affine-task membership maps used before.
type RunKey struct{ R1, R2 uint64 }

// Key returns the binary key of the run.
func (r Run2) Key() RunKey {
	return RunKey{R1: r.R1.PackedKey(), R2: r.R2.PackedKey()}
}

// Less orders run keys lexicographically (R1, then R2) for deterministic
// iteration over key sets.
func (k RunKey) Less(o RunKey) bool {
	if k.R1 != o.R1 {
		return k.R1 < o.R1
	}
	return k.R2 < o.R2
}

// AppendBytes appends the 16-byte little-endian serialization of the
// key, for hashing task signatures.
func (k RunKey) AppendBytes(buf []byte) []byte {
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(k.R1>>(8*i)))
	}
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(k.R2>>(8*i)))
	}
	return buf
}

// String renders the run as "R1: ... | R2: ...".
func (r Run2) String() string {
	return fmt.Sprintf("R1: %v | R2: %v", r.R1, r.R2)
}

// ContentOf returns the second-snapshot content of process p in this
// run: q -> View¹(q) for every q in p's round-2 prefix.
func (r Run2) ContentOf(p procs.ID) map[procs.ID]procs.Set {
	view2, ok := r.R2.ViewOf(p)
	if !ok {
		return nil
	}
	views1 := r.R1.Views()
	content := make(map[procs.ID]procs.Set, view2.Size())
	view2.ForEach(func(q procs.ID) { content[q] = views1[q] })
	return content
}

// VertexOf interns and returns the Chr²-s vertex of process p in the run.
func (r Run2) VertexOf(u *Universe, p procs.ID) sc.VertexID {
	return u.Intern(p, r.ContentOf(p))
}

// FacetIDs interns the whole facet (one vertex per participating
// process), in increasing process order.
func (r Run2) FacetIDs(u *Universe) []sc.VertexID {
	views1 := r.R1.Views()
	ground := r.Ground()
	out := make([]sc.VertexID, 0, ground.Size())
	ground.ForEach(func(p procs.ID) {
		view2, _ := r.R2.ViewOf(p)
		content := make(map[procs.ID]procs.Set, view2.Size())
		view2.ForEach(func(q procs.ID) { content[q] = views1[q] })
		out = append(out, u.Intern(p, content))
	})
	return out
}

// ForEachRun2 enumerates every 2-round run over the given ground set
// (from the cached partition table — see ForEachRun2Keyed for the form
// that also yields precomputed run keys). Stops early if f returns
// false.
func ForEachRun2(ground procs.Set, f func(Run2) bool) {
	parts := partitionsFor(ground).parts
	for _, r1 := range parts {
		for _, r2 := range parts {
			if !f(Run2{R1: r1, R2: r2}) {
				return
			}
		}
	}
}

// BuildChr2 constructs the full Chr² s complex for n processes,
// including all boundary simplices (runs over every non-empty face of
// s), interning vertices into u.
func BuildChr2(u *Universe) *sc.Complex {
	n := u.n
	c := sc.NewComplex(n)
	for _, ground := range procs.NonemptySubsets(procs.FullSet(n)) {
		ForEachRun2(ground, func(r Run2) bool {
			ids := r.FacetIDs(u)
			for _, id := range ids {
				v := u.Vertex(id)
				_ = c.AddVertex(id, int(v.Color), u.Label(id))
			}
			_ = c.AddSimplex(ids...)
			return true
		})
	}
	return c
}

// AddFacetToComplex registers the facet of run r into complex c,
// creating vertices as needed.
func AddFacetToComplex(u *Universe, c *sc.Complex, r Run2) []sc.VertexID {
	ids := r.FacetIDs(u)
	for _, id := range ids {
		v := u.Vertex(id)
		_ = c.AddVertex(id, int(v.Color), u.Label(id))
	}
	_ = c.AddSimplex(ids...)
	return ids
}
