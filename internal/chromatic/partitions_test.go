package chromatic

import (
	"testing"

	"repro/internal/procs"
)

// TestForEachRun2KeyedMatchesDerivedKeys checks the precomputed
// per-partition key table assembles exactly the keys Run2.Key derives,
// over every ground subset of a 4-process system.
func TestForEachRun2KeyedMatchesDerivedKeys(t *testing.T) {
	for _, ground := range procs.NonemptySubsets(procs.FullSet(4)) {
		count := 0
		ForEachRun2Keyed(ground, func(r Run2, k RunKey) bool {
			if k != r.Key() {
				t.Fatalf("ground %v: table key %v != derived %v for %v/%v",
					ground, k, r.Key(), r.R1, r.R2)
			}
			count++
			return true
		})
		parts := len(procs.EnumerateOrderedPartitions(ground))
		if count != parts*parts {
			t.Fatalf("ground %v: enumerated %d runs, want %d", ground, count, parts*parts)
		}
	}
}

// TestOrderedPartitionsOfCached checks the cached enumeration matches
// the canonical order and is the same shared slice across calls.
func TestOrderedPartitionsOfCached(t *testing.T) {
	ground := procs.FullSet(3)
	a := OrderedPartitionsOf(ground)
	b := OrderedPartitionsOf(ground)
	if &a[0] != &b[0] {
		t.Error("OrderedPartitionsOf should return the shared cached slice")
	}
	want := procs.EnumerateOrderedPartitions(ground)
	if len(a) != len(want) {
		t.Fatalf("cached enumeration has %d partitions, want %d", len(a), len(want))
	}
	for i := range want {
		if a[i].Key() != want[i].Key() {
			t.Fatalf("partition %d: %v != %v", i, a[i], want[i])
		}
	}
}
