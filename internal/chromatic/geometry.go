package chromatic

// Geometric realization coordinates from Appendix A: the vertex (i, t) of
// Chr s is identified with the point
//
//	1/(2k-1) x_i + 2/(2k-1) Σ_{j∈t, j≠i} x_j,   k = |t|,
//
// in |s| ⊂ R^n. Applying the same formula one level up places Chr² s
// vertices inside |s| too. These coordinates drive the SVG renderings of
// the paper's figures (n = 3).

import "repro/internal/procs"

// Point is a barycentric coordinate vector over the n corners of s.
type Point []float64

// Corner returns the barycentric coordinates of corner i of s.
func Corner(n int, i procs.ID) Point {
	p := make(Point, n)
	p[i] = 1
	return p
}

// Coords1 returns the coordinates of the Chr-s vertex (color, view).
func Coords1(n int, color procs.ID, view procs.Set) Point {
	k := float64(view.Size())
	w := 2*k - 1
	p := make(Point, n)
	view.ForEach(func(j procs.ID) {
		if j == color {
			p[j] = 1 / w
		} else {
			p[j] = 2 / w
		}
	})
	return p
}

// Coords2 returns the coordinates of a Chr²-s vertex: the subdivision
// formula applied to the positions of the Chr-s vertices it sees.
func Coords2(n int, v Vertex2) Point {
	k := float64(len(v.Content))
	w := 2*k - 1
	p := make(Point, n)
	for q, view := range v.Content {
		qp := Coords1(n, q, view)
		coef := 2 / w
		if q == v.Color {
			coef = 1 / w
		}
		for i := range p {
			p[i] += coef * qp[i]
		}
	}
	return p
}

// Planar projects a barycentric point over 3 corners onto 2D (an
// equilateral triangle with side 1), for rendering n = 3 figures.
// Corner order: p1 bottom-left, p3 bottom-right, p2 top — matching the
// paper's figures ("p2 the top vertex, p1 the bottom left vertex and p3
// the bottom right vertex").
func Planar(p Point) (x, y float64) {
	if len(p) < 3 {
		return 0, 0
	}
	const h = 0.8660254037844386 // sqrt(3)/2
	// p1 -> (0,0), p3 -> (1,0), p2 -> (0.5, h).
	x = p[2]*1 + p[1]*0.5
	y = p[1] * h
	return x, y
}
