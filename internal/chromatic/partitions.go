package chromatic

// Per-ground ordered-partition tables with precomputed packed keys,
// per-process views, and dense run ranks.
//
// Every 2-round enumeration (ForEachRun2, the parallel subdivision
// engine, affine-task restriction) walks the same |parts|² run grid per
// ground set. The table below computes, once per ground set per process
// lifetime:
//
//   - the canonical partition enumeration itself (removing the recursive
//     procs.EnumerateOrderedPartitions allocation from every ApplyAffine
//     level),
//   - each partition's packed key (run keys are assembled from two table
//     reads instead of |parts|² PackedKey computations),
//   - each partition's per-process IS views as a flat slice indexed by
//     process ID (removing the per-run procs.OrderedPartition.Views map
//     allocation from the subdivision hot path), and
//   - the dense run-rank geometry: the run (parts[i], parts[j]) has
//     RunRank i*|parts|+j, the index MembershipTable bitsets and the
//     flat-array engine are addressed by.
//
// Cached partitions are shared read-only values: callers must never
// mutate the returned schedules or view rows (no caller does — runs are
// consumed structurally).

import (
	"math/bits"
	"sync"

	"repro/internal/procs"
)

// partTable is the cached enumeration of one ground set: the ordered
// partitions in the canonical procs.EnumerateOrderedPartitions order,
// their packed keys (index-aligned), their per-process views, and the
// ground's member list. keys is nil when the ground exceeds the
// packed-key capacity (IDs ≥ procs.PackedKeyMaxProcs), where key
// derivation would panic just as Run2.Key does.
type partTable struct {
	parts   []procs.OrderedPartition
	keys    []uint64
	members []procs.ID     // ground members, ascending
	views   [][]procs.Set  // views[i][p] = IS view of p under parts[i]
	index   map[uint64]int // packed key -> partition index; nil iff keys is

	fullOnce sync.Once
	full     *MembershipTable // lazily built all-accepting table
}

var (
	partMu   sync.RWMutex
	partTabs = map[procs.Set]*partTable{}
)

// partitionsFor returns the cached partition table of ground, building
// it on first use.
func partitionsFor(ground procs.Set) *partTable {
	partMu.RLock()
	t, ok := partTabs[ground]
	partMu.RUnlock()
	if ok {
		return t
	}
	partMu.Lock()
	defer partMu.Unlock()
	if t, ok = partTabs[ground]; ok {
		return t
	}
	t = &partTable{
		parts:   procs.EnumerateOrderedPartitions(ground),
		members: ground.Members(),
	}
	if packable(ground) {
		t.keys = make([]uint64, len(t.parts))
		t.index = make(map[uint64]int, len(t.parts))
		for i, p := range t.parts {
			t.keys[i] = p.PackedKey()
			t.index[t.keys[i]] = i
		}
	}
	width := bits.Len32(uint32(ground))
	viewRows := make([]procs.Set, len(t.parts)*width)
	t.views = make([][]procs.Set, len(t.parts))
	for i, p := range t.parts {
		row := viewRows[i*width : (i+1)*width : (i+1)*width]
		var acc procs.Set
		for _, b := range p {
			acc = acc.Union(b)
			view := acc
			b.ForEach(func(q procs.ID) { row[q] = view })
		}
		t.views[i] = row
	}
	partTabs[ground] = t
	return t
}

// packable reports whether every partition of ground fits the packed-key
// encoding (all member IDs inside the nibble layout).
func packable(ground procs.Set) bool {
	return uint32(ground)>>procs.PackedKeyMaxProcs == 0 &&
		ground.Size() < procs.PackedKeyMaxProcs
}

// OrderedPartitionsOf returns the cached enumeration of every ordered
// partition of ground in the canonical order. The slice and its
// partitions are shared — callers must treat them as read-only.
func OrderedPartitionsOf(ground procs.Set) []procs.OrderedPartition {
	return partitionsFor(ground).parts
}

// NumOrderedPartitions returns the number of ordered partitions of
// ground (the ordered Bell number of its size), from the cached table.
func NumOrderedPartitions(ground procs.Set) int {
	return len(partitionsFor(ground).parts)
}

// RunCount returns the number of 2-round runs over ground — the size of
// the RunRank space: NumOrderedPartitions(ground)².
func RunCount(ground procs.Set) int {
	m := NumOrderedPartitions(ground)
	return m * m
}

// ForEachRun2Keyed enumerates every 2-round run over the ground set
// together with its binary run key, assembled from the per-partition
// packed-key table instead of re-derived per run. Stops early if f
// returns false.
func ForEachRun2Keyed(ground procs.Set, f func(Run2, RunKey) bool) {
	t := partitionsFor(ground)
	if t.keys == nil {
		// Beyond packed capacity: derive per run (panics exactly where
		// Run2.Key would).
		for _, r1 := range t.parts {
			for _, r2 := range t.parts {
				r := Run2{R1: r1, R2: r2}
				if !f(r, r.Key()) {
					return
				}
			}
		}
		return
	}
	for i, r1 := range t.parts {
		k1 := t.keys[i]
		for j, r2 := range t.parts {
			if !f(Run2{R1: r1, R2: r2}, RunKey{R1: k1, R2: t.keys[j]}) {
				return
			}
		}
	}
}

// ForEachRun2Ranked is ForEachRun2Keyed with the run's dense rank: runs
// enumerate in rank order (rank(i,j) = i*|parts|+j), so the callback's
// rank argument simply increments. Stops early if f returns false.
func ForEachRun2Ranked(ground procs.Set, f func(Run2, RunKey, RunRank) bool) {
	rank := RunRank(0)
	ForEachRun2Keyed(ground, func(r Run2, k RunKey) bool {
		ok := f(r, k, rank)
		rank++
		return ok
	})
}
