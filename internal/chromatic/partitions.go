package chromatic

// Per-ground ordered-partition tables with precomputed packed keys.
//
// Every 2-round enumeration (ForEachRun2, the parallel subdivision
// engine, affine-task restriction) walks the same |parts|² run grid per
// ground set, and the membership hot path keys each run by the packed
// encodings of its two schedules. Deriving those keys per run costs
// |parts|² PackedKey computations where |parts| suffice: the table below
// computes each partition's key exactly once per ground set per process
// lifetime, and run keys are assembled from two table reads. Caching the
// enumeration itself also removes the recursive
// procs.EnumerateOrderedPartitions allocation from every ApplyAffine
// level.
//
// Cached partitions are shared read-only values: callers must never
// mutate the returned schedules (no caller does — runs are consumed
// structurally).

import (
	"sync"

	"repro/internal/procs"
)

// partTable is the cached enumeration of one ground set: the ordered
// partitions in the canonical procs.EnumerateOrderedPartitions order and
// their packed keys, index-aligned. keys is nil when the ground exceeds
// the packed-key capacity (IDs ≥ procs.PackedKeyMaxProcs), where key
// derivation would panic just as Run2.Key does.
type partTable struct {
	parts []procs.OrderedPartition
	keys  []uint64
}

var (
	partMu   sync.RWMutex
	partTabs = map[procs.Set]*partTable{}
)

// partitionsFor returns the cached partition table of ground, building
// it on first use.
func partitionsFor(ground procs.Set) *partTable {
	partMu.RLock()
	t, ok := partTabs[ground]
	partMu.RUnlock()
	if ok {
		return t
	}
	partMu.Lock()
	defer partMu.Unlock()
	if t, ok = partTabs[ground]; ok {
		return t
	}
	t = &partTable{parts: procs.EnumerateOrderedPartitions(ground)}
	if packable(ground) {
		t.keys = make([]uint64, len(t.parts))
		for i, p := range t.parts {
			t.keys[i] = p.PackedKey()
		}
	}
	partTabs[ground] = t
	return t
}

// packable reports whether every partition of ground fits the packed-key
// encoding (all member IDs inside the nibble layout).
func packable(ground procs.Set) bool {
	return uint32(ground)>>procs.PackedKeyMaxProcs == 0 &&
		ground.Size() < procs.PackedKeyMaxProcs
}

// OrderedPartitionsOf returns the cached enumeration of every ordered
// partition of ground in the canonical order. The slice and its
// partitions are shared — callers must treat them as read-only.
func OrderedPartitionsOf(ground procs.Set) []procs.OrderedPartition {
	return partitionsFor(ground).parts
}

// ForEachRun2Keyed enumerates every 2-round run over the ground set
// together with its binary run key, assembled from the per-partition
// packed-key table instead of re-derived per run. Stops early if f
// returns false.
func ForEachRun2Keyed(ground procs.Set, f func(Run2, RunKey) bool) {
	t := partitionsFor(ground)
	if t.keys == nil {
		// Beyond packed capacity: derive per run (panics exactly where
		// Run2.Key would).
		for _, r1 := range t.parts {
			for _, r2 := range t.parts {
				r := Run2{R1: r1, R2: r2}
				if !f(r, r.Key()) {
					return
				}
			}
		}
		return
	}
	for i, r1 := range t.parts {
		k1 := t.keys[i]
		for j, r2 := range t.parts {
			if !f(Run2{R1: r1, R2: r2}, RunKey{R1: k1, R2: t.keys[j]}) {
				return
			}
		}
	}
}
