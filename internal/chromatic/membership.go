package chromatic

// Rank-indexed membership tables: the flat-array fast path of the
// subdivision engine.
//
// At a fixed ground set the 2-round runs form a small dense grid —
// |parts|² of them, |parts| the ordered Bell number — so an affine
// task's membership over that ground fits a bitset indexed by the run's
// dense rank (partitions.go). The engine then answers "is this run a
// facet of L?" with one bit probe instead of a hash-map lookup keyed by
// packed schedules, and providers (affine.Task, the TablesOf adapter)
// evaluate each predicate exactly once per (provider, ground) instead
// of once per enumeration visit.
//
// The Membership callback remains the generic/compat path: TablesOf
// adapts any callback into a caching table provider, and
// MembershipTable.Membership adapts a table back into a callback, with
// equivalence pinned by tests.

import (
	"sync"

	"repro/internal/procs"
)

// RunRank is the dense index of a 2-round run over its ground set: the
// run (parts[i], parts[j]) of the canonical partition enumeration has
// rank i*|parts|+j. Ranks are contiguous in [0, RunCount(ground)), so
// per-run data lives in slices and bitsets instead of maps.
type RunRank int32

// MembershipTable is a precomputed membership bitset over the runs of
// one ground set, indexed by RunRank. The zero value is not usable;
// build tables with NewMembershipTable or FullMembershipTable (or get
// them from a provider such as affine.Task). Tables are immutable after
// construction and safe for concurrent use.
type MembershipTable struct {
	ground procs.Set
	nParts int
	words  []uint64 // nil = every run accepted
	count  int      // accepted runs
}

// NewMembershipTable precomputes the membership table of ground by
// evaluating the callback once per run, in rank order. The callback
// must be pure: the table is the predicate's permanent answer for this
// ground.
func NewMembershipTable(ground procs.Set, member Membership) *MembershipTable {
	t := partitionsFor(ground)
	m := len(t.parts)
	mt := &MembershipTable{
		ground: ground,
		nParts: m,
		words:  make([]uint64, (m*m+63)/64),
	}
	// ForEachRun2Keyed enumerates in rank order, so the rank is a simple
	// counter.
	rank := 0
	ForEachRun2Keyed(ground, func(r Run2, k RunKey) bool {
		if member(r, k) {
			mt.words[rank>>6] |= 1 << (uint(rank) & 63)
			mt.count++
		}
		rank++
		return true
	})
	return mt
}

// FullMembershipTable returns the all-accepting table of ground
// (L = Chr² s). The table is cached per ground and shared.
func FullMembershipTable(ground procs.Set) *MembershipTable {
	t := partitionsFor(ground)
	t.fullOnce.Do(func() {
		m := len(t.parts)
		t.full = &MembershipTable{ground: ground, nParts: m, count: m * m}
	})
	return t.full
}

// Ground returns the ground set the table is indexed over.
func (mt *MembershipTable) Ground() procs.Set { return mt.ground }

// NumParts returns the number of ordered partitions of the ground set
// (the stride of the rank grid).
func (mt *MembershipTable) NumParts() int { return mt.nParts }

// NumRuns returns the size of the rank space, NumParts()².
func (mt *MembershipTable) NumRuns() int { return mt.nParts * mt.nParts }

// Len returns the number of accepted runs.
func (mt *MembershipTable) Len() int { return mt.count }

// All reports whether the table accepts every run.
func (mt *MembershipTable) All() bool { return mt.words == nil }

// Contains reports whether the run with the given rank is accepted. The
// rank must lie in [0, NumRuns()).
func (mt *MembershipTable) Contains(r RunRank) bool {
	if mt.words == nil {
		return true
	}
	return mt.words[uint32(r)>>6]&(1<<(uint32(r)&63)) != 0
}

// RowAny reports whether any run with first-round schedule parts[i] is
// accepted — whether row i of the rank grid has a set bit. Lets the
// engine skip whole first-round schedules of sparse tasks.
func (mt *MembershipTable) RowAny(i int) bool {
	if mt.words == nil {
		return true
	}
	lo := uint32(i * mt.nParts)
	hi := lo + uint32(mt.nParts)
	for lo < hi {
		w := mt.words[lo>>6]
		// Mask off bits below lo and at/above hi within this word.
		w &= ^uint64(0) << (lo & 63)
		if next := (lo &^ 63) + 64; next > hi {
			w &= (1 << (hi & 63)) - 1
		}
		if w != 0 {
			return true
		}
		lo = (lo &^ 63) + 64
	}
	return false
}

// Membership adapts the table back into the callback form — the
// generic/compat path. The returned predicate answers by rank lookup
// (resolving the run's schedules to their partition indices through the
// packed-key index) and is safe for concurrent use. It must only be
// invoked on runs over the table's ground set.
func (mt *MembershipTable) Membership() Membership {
	t := partitionsFor(mt.ground)
	return func(r Run2, key RunKey) bool {
		if mt.words == nil {
			return true
		}
		if t.index == nil {
			// Beyond packed capacity RunKey derivation panics before this
			// point; keep the structural fallback for completeness.
			i, j := t.indexOfSlow(r.R1), t.indexOfSlow(r.R2)
			return mt.Contains(RunRank(i*mt.nParts + j))
		}
		i, ok1 := t.index[key.R1]
		j, ok2 := t.index[key.R2]
		if !ok1 || !ok2 {
			return false
		}
		return mt.Contains(RunRank(i*mt.nParts + j))
	}
}

// indexOfSlow locates a partition in the table by structural equality —
// only reachable for grounds beyond the packed-key capacity.
func (t *partTable) indexOfSlow(p procs.OrderedPartition) int {
	for i, q := range t.parts {
		if q.Equal(p) {
			return i
		}
	}
	return -1
}

// MemberTables provides the precomputed membership table of any ground
// set — the table-form counterpart of the Membership callback, accepted
// by ApplyAffineTables, Tower.ExtendTables and
// CachedTower.EnsureHeightTables. affine.Task implements it natively;
// TablesOf adapts a callback. Implementations must be safe for
// concurrent use.
type MemberTables interface {
	MembershipTable(ground procs.Set) *MembershipTable
}

// fullTables is the provider of L = Chr² s.
type fullTables struct{}

func (fullTables) MembershipTable(ground procs.Set) *MembershipTable {
	return FullMembershipTable(ground)
}

// FullChr2Tables is the table provider accepting every run: the
// table-form counterpart of FullChr2Membership.
var FullChr2Tables MemberTables = fullTables{}

// callbackTables adapts a Membership callback into a caching table
// provider: the callback is evaluated once per ground across the
// adapter's lifetime, so iterated applications reuse the tables.
type callbackTables struct {
	member Membership

	mu sync.Mutex
	by map[procs.Set]*MembershipTable
}

// TablesOf adapts a Membership callback into a MemberTables provider.
// The callback must be pure and safe for concurrent use; it is
// evaluated once per run per ground over the adapter's lifetime, and
// the resulting tables are cached inside the adapter.
func TablesOf(member Membership) MemberTables {
	return &callbackTables{member: member, by: make(map[procs.Set]*MembershipTable)}
}

func (c *callbackTables) MembershipTable(ground procs.Set) *MembershipTable {
	c.mu.Lock()
	mt, ok := c.by[ground]
	c.mu.Unlock()
	if ok {
		return mt
	}
	mt = NewMembershipTable(ground, c.member)
	c.mu.Lock()
	if prior, ok := c.by[ground]; ok {
		mt = prior
	} else {
		c.by[ground] = mt
	}
	c.mu.Unlock()
	return mt
}
