package chromatic

import (
	"fmt"
	"testing"

	"repro/internal/sc"
)

func standardBase(t testing.TB, n int) *sc.Complex {
	t.Helper()
	c := sc.NewComplex(n)
	ids := make([]sc.VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = sc.VertexID(i)
		if err := c.AddVertex(ids[i], i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddSimplex(ids...); err != nil {
		t.Fatal(err)
	}
	return c
}

// restrictedMember is a pure, concurrency-safe membership predicate
// that selects a strict sub-complex of Chr²: runs whose first round has
// at most two blocks.
var restrictedMember Membership = func(r Run2, _ RunKey) bool { return len(r.R1) <= 2 }

// TestApplyAffineParallelDeterminism asserts the parallel engine is
// byte-identical to the serial path: same vertex IDs, labels, carriers
// and simplices for every worker count.
func TestApplyAffineParallelDeterminism(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, member := range []struct {
			name string
			m    Membership
		}{
			{"full", FullChr2Membership},
			{"restricted", restrictedMember},
		} {
			t.Run(fmt.Sprintf("n=%d/%s", n, member.name), func(t *testing.T) {
				base := standardBase(t, n)
				serial, err := ApplyAffineWorkers(base, member.m, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					parallel, err := ApplyAffineWorkers(base, member.m, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !serial.Complex.Equal(parallel.Complex) {
						t.Fatalf("workers=%d: complexes differ", workers)
					}
					if serial.Complex.Hash() != parallel.Complex.Hash() {
						t.Fatalf("workers=%d: hashes differ", workers)
					}
					for _, v := range serial.Complex.VertexIDs() {
						if !serial.Carrier(v).Equal(parallel.Carrier(v)) {
							t.Fatalf("workers=%d: carrier of %d differs", workers, v)
						}
					}
				}
			})
		}
	}
}

// TestTowerParallelDeterminism iterates two levels and compares serial
// vs parallel towers, including root carriers.
func TestTowerParallelDeterminism(t *testing.T) {
	base := standardBase(t, 3)
	serial := NewTower(base)
	serial.SetWorkers(1)
	parallel := NewTower(base)
	parallel.SetWorkers(8)
	for i := 0; i < 2; i++ {
		if err := serial.Extend(restrictedMember); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Extend(restrictedMember); err != nil {
			t.Fatal(err)
		}
	}
	if !serial.Top().Equal(parallel.Top()) {
		t.Fatal("tower tops differ")
	}
	for _, v := range serial.Top().VertexIDs() {
		if !serial.RootCarrier(v).Equal(parallel.RootCarrier(v)) {
			t.Fatalf("root carrier of %d differs", v)
		}
	}
}

// TestTowerCache asserts that acquiring the same (signature, input)
// returns the same tower and that levels are built exactly once.
func TestTowerCache(t *testing.T) {
	cache := NewTowerCache()
	base := standardBase(t, 3)
	ct1 := cache.Acquire("sig-a", base, 0)
	if err := ct1.EnsureHeight(FullChr2Membership, 1); err != nil {
		t.Fatal(err)
	}
	ct2 := cache.Acquire("sig-a", base, 0)
	if ct1 != ct2 {
		t.Fatal("same key must return the same cached tower")
	}
	if ct2.Tower().Height() != 1 {
		t.Fatalf("height = %d, want 1 (reused)", ct2.Tower().Height())
	}
	top := ct2.Tower().Top()
	if err := ct2.EnsureHeight(FullChr2Membership, 1); err != nil {
		t.Fatal(err)
	}
	if ct2.Tower().Top() != top {
		t.Fatal("EnsureHeight rebuilt an existing level")
	}
	// A different signature over the same input is a distinct entry.
	ct3 := cache.Acquire("sig-b", base, 0)
	if ct3 == ct1 {
		t.Fatal("different signatures must not share towers")
	}
	// An equal-but-distinct input complex hits the same entry.
	ct4 := cache.Acquire("sig-a", standardBase(t, 3), 0)
	if ct4 != ct1 {
		t.Fatal("hash-equal inputs must share the cached tower")
	}
	hits, misses := cache.Stats()
	if misses != 2 || hits != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2/2", hits, misses)
	}
	if cache.Len() != 2 {
		t.Fatalf("len = %d, want 2", cache.Len())
	}
}
