package chromatic

import (
	"testing"

	"repro/internal/procs"
	"repro/internal/sc"
)

// TestChrStandardCounts reproduces the structure behind Figure 1a:
// Chr s for n processes has n * 2^(n-1) vertices... no — the exact law:
// vertices are pairs (i, t) with i ∈ t ⊆ Π, hence n * 2^(n-1) of them,
// and its facets (top-dimensional simplices) are the ordered partitions
// of Π, hence ordered-Bell-many.
func TestChrStandardCounts(t *testing.T) {
	wantFacets := []int{0, 1, 3, 13, 75, 541}
	for n := 1; n <= 5; n++ {
		c := BuildChr1(n)
		wantVerts := n * (1 << uint(n-1))
		if got := c.NumVertices(); got != wantVerts {
			t.Errorf("n=%d: vertices = %d, want %d", n, got, wantVerts)
		}
		facets := c.Facets()
		top := 0
		for _, f := range facets {
			if f.Dim() == n-1 {
				top++
			}
		}
		if top != wantFacets[n] {
			t.Errorf("n=%d: top facets = %d, want %d", n, top, wantFacets[n])
		}
		if !c.IsPure() {
			t.Errorf("n=%d: Chr s must be pure", n)
		}
		if !c.IsChromatic() {
			t.Errorf("n=%d: Chr s must be chromatic", n)
		}
	}
}

// TestFigure3Runs checks the two example IS runs of Figure 3.
func TestFigure3Runs(t *testing.T) {
	// Figure 3a — ordered run {p2}, {p1}, {p3}:
	// p2 sees {p2}, p1 sees {p1,p2}, p3 sees {p1,p2,p3}.
	op := procs.SingletonOrder(1, 0, 2)
	views := op.Views()
	if views[1] != procs.SetOf(1) || views[0] != procs.SetOf(0, 1) || views[2] != procs.FullSet(3) {
		t.Errorf("figure 3a views wrong: %v", views)
	}
	// Figure 3b — synchronous run {p1,p2,p3}: everyone sees everyone.
	for p, v := range procs.Synchronous(procs.FullSet(3)).Views() {
		if v != procs.FullSet(3) {
			t.Errorf("figure 3b: %v sees %v", p, v)
		}
	}
}

func TestChr2FacetCount(t *testing.T) {
	// Facets of Chr² s = (ordered Bell)^2: 9, 169, 5625 for n=2,3,4.
	want := map[int]int{2: 9, 3: 169}
	for n, w := range want {
		u := NewUniverse(n)
		c := BuildChr2(u)
		top := 0
		for _, f := range c.Facets() {
			if f.Dim() == n-1 {
				top++
			}
		}
		if top != w {
			t.Errorf("n=%d: Chr² facets = %d, want %d", n, top, w)
		}
		if !c.IsPure() || !c.IsChromatic() {
			t.Errorf("n=%d: Chr² s must be pure and chromatic", n)
		}
	}
}

func TestVertex2Views(t *testing.T) {
	// Run: R1 = {p2}, {p1}, {p3}; R2 = {p1,p2,p3}.
	r := Run2{
		R1: procs.SingletonOrder(1, 0, 2),
		R2: procs.Synchronous(procs.FullSet(3)),
	}
	if err := r.Validate(procs.FullSet(3)); err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(3)
	v := u.Vertex(r.VertexOf(u, 0)) // p1
	if v.View1 != procs.SetOf(0, 1) {
		t.Errorf("View1 = %v, want {p1,p2}", v.View1)
	}
	if v.View2 != procs.FullSet(3) {
		t.Errorf("View2 = %v, want all", v.View2)
	}
	if v.Carrier != procs.FullSet(3) {
		t.Errorf("Carrier = %v", v.Carrier)
	}
	// p2 runs alone first: in a solo-prefix run p2's vertex has minimal
	// views when R2 also starts with p2.
	r2 := Run2{
		R1: procs.SingletonOrder(1, 0, 2),
		R2: procs.SingletonOrder(1, 0, 2),
	}
	w := u.Vertex(r2.VertexOf(u, 1))
	if w.View1 != procs.SetOf(1) || w.View2 != procs.SetOf(1) || w.Carrier != procs.SetOf(1) {
		t.Errorf("solo p2 vertex wrong: %+v", w)
	}
}

func TestUniverseInterningStable(t *testing.T) {
	u := NewUniverse(3)
	content := map[procs.ID]procs.Set{0: procs.SetOf(0), 1: procs.SetOf(0, 1)}
	a := u.Intern(1, content)
	b := u.Intern(1, map[procs.ID]procs.Set{1: procs.SetOf(0, 1), 0: procs.SetOf(0)})
	if a != b {
		t.Errorf("interning not canonical: %d vs %d", a, b)
	}
	if u.NumVertices() != 1 {
		t.Errorf("NumVertices = %d", u.NumVertices())
	}
	c := u.Intern(0, content)
	if c == a {
		t.Errorf("different colors must intern differently")
	}
}

// TestChr2VertexIdentityAcrossRuns: the same (color, content) arising in
// different runs must intern to the same vertex; different contents with
// the same (View1, View2) must not.
func TestChr2VertexIdentityAcrossRuns(t *testing.T) {
	u := NewUniverse(3)
	// Vertex of p1 where p1 saw only itself in both rounds, from two
	// different runs.
	rA := Run2{R1: procs.SingletonOrder(0, 1, 2), R2: procs.SingletonOrder(0, 1, 2)}
	rB := Run2{R1: procs.SingletonOrder(0, 2, 1), R2: procs.SingletonOrder(0, 2, 1)}
	if rA.VertexOf(u, 0) != rB.VertexOf(u, 0) {
		t.Errorf("identical solo vertices should coincide")
	}
	// p3's vertex: View2 = {p1,p3} in both, but p1's View1 differs
	// ({p1} vs {p1,p2}): distinct vertices despite equal (View1,View2).
	rC := Run2{R1: procs.SingletonOrder(0, 1, 2), R2: procs.SingletonOrder(0, 2, 1)}
	rD := Run2{R1: procs.OrderedPartition{procs.SetOf(0, 1), procs.SetOf(2)}, R2: procs.SingletonOrder(0, 2, 1)}
	vc := rC.VertexOf(u, 2)
	vd := rD.VertexOf(u, 2)
	if vc == vd {
		t.Errorf("vertices with different contents must differ")
	}
	if u.Vertex(vc).View2 != u.Vertex(vd).View2 {
		t.Errorf("View2 should agree in this construction")
	}
}

func TestGeometryCoords(t *testing.T) {
	n := 3
	// Corner vertex (p1, {p1}) of Chr s must sit at corner p1.
	p := Coords1(n, 0, procs.SetOf(0))
	if p[0] != 1 || p[1] != 0 || p[2] != 0 {
		t.Errorf("corner coords = %v", p)
	}
	// Central vertex (p1, {p1,p2,p3}): 1/5 for itself, 2/5 for others.
	c := Coords1(n, 0, procs.FullSet(3))
	if !close(c[0], 0.2) || !close(c[1], 0.4) || !close(c[2], 0.4) {
		t.Errorf("central coords = %v", c)
	}
	sum := c[0] + c[1] + c[2]
	if !close(sum, 1) {
		t.Errorf("coords must be barycentric, sum = %v", sum)
	}
	// Chr² coordinates remain barycentric.
	u := NewUniverse(3)
	r := Run2{R1: procs.Synchronous(procs.FullSet(3)), R2: procs.Synchronous(procs.FullSet(3))}
	v := u.Vertex(r.VertexOf(u, 1))
	q := Coords2(n, v)
	if !close(q[0]+q[1]+q[2], 1) {
		t.Errorf("Chr² coords not barycentric: %v", q)
	}
	x, y := Planar(Corner(3, 1))
	if !close(x, 0.5) || !close(y, 0.8660254037844386) {
		t.Errorf("p2 should project to the top: (%v,%v)", x, y)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestApplyAffineFullChr2(t *testing.T) {
	// Applying full Chr² to the standard 2-simplex reproduces Chr² s.
	input := standardComplex(t, 3)
	it, err := ApplyAffine(input, FullChr2Membership)
	if err != nil {
		t.Fatal(err)
	}
	top := 0
	for _, f := range it.Complex.Facets() {
		if f.Dim() == 2 {
			top++
		}
	}
	if top != 169 {
		t.Errorf("facets = %d, want 169", top)
	}
	if !it.Complex.IsChromatic() {
		t.Errorf("subdivision must be chromatic")
	}
	// Carrier of any full facet is the whole input simplex.
	for _, f := range it.Complex.Facets() {
		if f.Dim() == 2 {
			if got := it.SimplexCarrier(f); len(got) != 3 {
				t.Fatalf("carrier of top facet = %v", got)
			}
			break
		}
	}
}

func TestTowerCarriers(t *testing.T) {
	input := standardComplex(t, 2)
	tower := NewTower(input)
	for i := 0; i < 2; i++ {
		if err := tower.Extend(FullChr2Membership); err != nil {
			t.Fatal(err)
		}
	}
	if tower.Height() != 2 {
		t.Fatalf("height = %d", tower.Height())
	}
	top := tower.Top()
	// Every top vertex's root carrier is a simplex of the input.
	for _, id := range top.VertexIDs() {
		rc := tower.RootCarrier(id)
		if !input.HasSimplex(rc) {
			t.Fatalf("root carrier %v not in input", rc)
		}
		v, _ := top.Vertex(id)
		// Chromatic consistency: the vertex's own color appears in the
		// root carrier's colors.
		if !input.ColorSet(rc).Contains(procs.ID(v.Color)) {
			t.Fatalf("root carrier misses own color")
		}
	}
	// Facet count of Chr⁴ of an edge: ordered Bell(2)^4 = 81.
	top2 := 0
	for _, f := range top.Facets() {
		if f.Dim() == 1 {
			top2++
		}
	}
	if top2 != 81 {
		t.Errorf("Chr⁴ edge facets = %d, want 81", top2)
	}
}

func TestApplyAffineRejectsNonChromatic(t *testing.T) {
	bad := sc.NewComplex(2)
	if err := bad.AddVertex(0, 0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddVertex(1, 0, "b"); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddSimplex(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyAffine(bad, FullChr2Membership); err == nil {
		t.Errorf("expected chromaticity error")
	}
}

func standardComplex(t *testing.T, n int) *sc.Complex {
	t.Helper()
	c := sc.NewComplex(n)
	ids := make([]sc.VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = sc.VertexID(i)
		if err := c.AddVertex(ids[i], i, procs.ID(i).String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddSimplex(ids...); err != nil {
		t.Fatal(err)
	}
	return c
}
