package chromatic

// Iterated application of affine tasks (and of Chr² itself) to arbitrary
// chromatic base complexes, with carrier tracking. This powers the
// solvability side of the FACT theorem: building R_A^ℓ(I) from an input
// complex I and searching for a simplicial map to the output complex.
//
// Construction fans out across a bounded worker pool: the unit of work
// is one (base face, first-round schedule) pair, whose second-round
// schedules a worker enumerates against the membership predicate. Each
// worker dedups the vertices it produces in a private shard; shards are
// merged into the global intern table in the serial enumeration order,
// so the resulting complex — vertex IDs, labels, carriers, simplices —
// is byte-identical for every worker count.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/procs"
	"repro/internal/sc"
)

// Membership decides whether a given 2-round run (over a ground set of
// colors) yields a simplex of the affine task L ⊆ Chr² s. The full Chr²
// subdivision is the constant-true predicate.
//
// The enumerators pass the run's binary key alongside it, assembled from
// the per-partition packed-key table (partitions.go) instead of
// re-derived per run — the key is what affine-task membership maps are
// indexed by, so predicates never recompute it on the hot path. Callers
// invoking a predicate on a run of their own pass run.Key().
//
// Predicates are evaluated concurrently by the parallel subdivision
// engine and must be safe for simultaneous calls from multiple
// goroutines (affine.Task.Membership and FullChr2Membership are).
type Membership func(run Run2, key RunKey) bool

// FullChr2Membership accepts every run: L = Chr² s.
var FullChr2Membership Membership = func(Run2, RunKey) bool { return true }

// DefaultWorkers is the worker count used when callers pass workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Iterated is one level of affine-task application over a base complex:
// the sub-complex of Chr²(base) selected by the membership predicate,
// with per-vertex carriers into the base complex.
type Iterated struct {
	Base    *sc.Complex
	Complex *sc.Complex

	carrier map[sc.VertexID]sc.Simplex
	// content records, for each new vertex, its second-snapshot content
	// in base-vertex terms: base vertex -> set of base vertices (View¹).
	content map[sc.VertexID]map[sc.VertexID]sc.Simplex
	interns map[string]sc.VertexID
	next    sc.VertexID
}

// ErrNotChromaticBase is returned when the base complex is not chromatic.
var ErrNotChromaticBase = errors.New("base complex is not chromatic")

// ApplyAffine computes L(base) with the default worker count: for every
// simplex σ of the base complex and every 2-round run over χ(σ) accepted
// by member, the corresponding facet of Chr²(σ) is added. Carriers of
// new vertices point into base.
func ApplyAffine(base *sc.Complex, member Membership) (*Iterated, error) {
	return ApplyAffineWorkers(base, member, 0)
}

// ApplyAffineWorkers is ApplyAffine with an explicit worker count.
// workers <= 0 selects DefaultWorkers(); workers == 1 runs the serial
// reference path. The output is byte-identical across worker counts.
func ApplyAffineWorkers(base *sc.Complex, member Membership, workers int) (*Iterated, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	faces, err := chromaticFaces(base)
	if err != nil {
		return nil, err
	}
	it := &Iterated{
		Base:    base,
		Complex: sc.NewComplex(base.Colors()),
		carrier: make(map[sc.VertexID]sc.Simplex),
		content: make(map[sc.VertexID]map[sc.VertexID]sc.Simplex),
		interns: make(map[string]sc.VertexID),
	}
	if workers == 1 {
		for _, f := range faces {
			ForEachRun2Keyed(f.ground, func(r Run2, k RunKey) bool {
				if member(r, k) {
					it.addRun(r, f.byColor)
				}
				return true
			})
		}
		return it, nil
	}
	it.applyParallel(faces, member, workers)
	return it, nil
}

// baseFace is one distinct chromatic face of the base complex, with its
// color -> base vertex index.
type baseFace struct {
	ground  procs.Set
	byColor map[procs.ID]sc.VertexID
}

// chromaticFaces collects the distinct faces of the base complex in the
// deterministic serial enumeration order (facets, then subset masks),
// validating chromaticity along the way.
func chromaticFaces(base *sc.Complex) ([]baseFace, error) {
	if !base.IsChromatic() {
		return nil, ErrNotChromaticBase
	}
	var faces []baseFace
	seenFaces := make(map[string]bool)
	for _, facet := range base.Facets() {
		for _, face := range facet.Faces() {
			fk := face.Key()
			if seenFaces[fk] {
				continue
			}
			seenFaces[fk] = true
			byColor := make(map[procs.ID]sc.VertexID, len(face))
			var ground procs.Set
			for _, v := range face {
				vert, _ := base.Vertex(v)
				p := procs.ID(vert.Color)
				if ground.Contains(p) {
					return nil, ErrNotChromaticBase
				}
				byColor[p] = v
				ground = ground.Add(p)
			}
			faces = append(faces, baseFace{ground: ground, byColor: byColor})
		}
	}
	return faces, nil
}

// vertexRec is a worker-shard record of one subdivision vertex, keyed by
// the same canonical string the serial interner uses.
type vertexRec struct {
	key     string
	color   int
	content map[sc.VertexID]sc.Simplex
}

// runUnit is the parallel work unit: one base face crossed with one
// first-round schedule (an index into the face's cached partition
// table). Workers enumerate its second-round schedules.
type runUnit struct {
	face int
	r1   int
}

// applyParallel fans the run enumeration out over the worker pool and
// merges the per-unit results in serial enumeration order.
func (it *Iterated) applyParallel(faces []baseFace, member Membership, workers int) {
	tabByGround := make(map[procs.Set]*partTable)
	for _, f := range faces {
		if _, ok := tabByGround[f.ground]; !ok {
			tabByGround[f.ground] = partitionsFor(f.ground)
		}
	}
	var units []runUnit
	for fi, f := range faces {
		for i := range tabByGround[f.ground].parts {
			units = append(units, runUnit{face: fi, r1: i})
		}
	}
	// results[i] holds the accepted facets of unit i, each facet a list
	// of shard records in ground order.
	results := make([][][]*vertexRec, len(units))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := make(map[string]*vertexRec)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				f := faces[u.face]
				tab := tabByGround[f.ground]
				r1 := tab.parts[u.r1]
				var k1 uint64
				if tab.keys != nil {
					k1 = tab.keys[u.r1]
				}
				// Within a unit the first round is fixed, so a vertex is
				// determined by (color, round-2 view): memoize records
				// per (p, View²) instead of rebuilding them per run.
				views1 := r1.Views()
				memo := make(map[uint64]*vertexRec)
				var accepted [][]*vertexRec
				for ri, r2 := range tab.parts {
					r := Run2{R1: r1, R2: r2}
					var key RunKey
					if tab.keys != nil {
						key = RunKey{R1: k1, R2: tab.keys[ri]}
					} else {
						key = r.Key()
					}
					if !member(r, key) {
						continue
					}
					recs := make([]*vertexRec, 0, f.ground.Size())
					f.ground.ForEach(func(p procs.ID) {
						view2, _ := r2.ViewOf(p)
						mk := uint64(p)<<32 | uint64(view2)
						rec, ok := memo[mk]
						if !ok {
							rec = buildRec(p, view2, views1, f.byColor, shard)
							memo[mk] = rec
						}
						recs = append(recs, rec)
					})
					accepted = append(accepted, recs)
				}
				results[i] = accepted
			}
		}()
	}
	wg.Wait()
	for _, accepted := range results {
		for _, recs := range accepted {
			ids := make([]sc.VertexID, len(recs))
			for j, rec := range recs {
				ids[j] = it.internRec(rec)
			}
			_ = it.Complex.AddSimplex(ids...)
		}
	}
}

// buildRec computes the shard record of the vertex (p, view2) under the
// unit's fixed first-round views, reusing the worker's shard so vertices
// repeated across units are built once per worker.
func buildRec(p procs.ID, view2 procs.Set, views1 map[procs.ID]procs.Set,
	byColor map[procs.ID]sc.VertexID, shard map[string]*vertexRec) *vertexRec {
	content := make(map[sc.VertexID]sc.Simplex, view2.Size())
	view2.ForEach(func(q procs.ID) {
		view := views1[q]
		baseView := make(sc.Simplex, 0, view.Size())
		view.ForEach(func(x procs.ID) { baseView = append(baseView, byColor[x]) })
		content[byColor[q]] = sc.NewSimplex(baseView...)
	})
	key := iterKey(byColor[p], content)
	if rec, ok := shard[key]; ok {
		return rec
	}
	rec := &vertexRec{key: key, color: int(p), content: content}
	shard[key] = rec
	return rec
}

// internRec interns one shard record into the global table, assigning
// IDs in merge order — identical to the serial first-seen order.
func (it *Iterated) internRec(rec *vertexRec) sc.VertexID {
	if id, ok := it.interns[rec.key]; ok {
		return id
	}
	return it.register(rec.key, rec.color, rec.content)
}

// addRun interns one run's facet (serial path).
func (it *Iterated) addRun(r Run2, byColor map[procs.ID]sc.VertexID) {
	views1 := r.R1.Views()
	ground := r.Ground()
	ids := make([]sc.VertexID, 0, ground.Size())
	ground.ForEach(func(p procs.ID) {
		view2, _ := r.R2.ViewOf(p)
		content := make(map[sc.VertexID]sc.Simplex, view2.Size())
		view2.ForEach(func(q procs.ID) {
			view := views1[q]
			baseView := make(sc.Simplex, 0, view.Size())
			view.ForEach(func(x procs.ID) { baseView = append(baseView, byColor[x]) })
			content[byColor[q]] = sc.NewSimplex(baseView...)
		})
		ids = append(ids, it.intern(byColor[p], int(p), content))
	})
	_ = it.Complex.AddSimplex(ids...)
}

// intern canonicalizes a new vertex (baseVertex, content) and returns its
// ID, registering it in the complex with its carrier.
func (it *Iterated) intern(baseV sc.VertexID, color int, content map[sc.VertexID]sc.Simplex) sc.VertexID {
	key := iterKey(baseV, content)
	if id, ok := it.interns[key]; ok {
		return id
	}
	return it.register(key, color, content)
}

// register assigns the next vertex ID to a fresh (key, content) pair.
func (it *Iterated) register(key string, color int, content map[sc.VertexID]sc.Simplex) sc.VertexID {
	id := it.next
	it.next++
	var carrier sc.Simplex
	for _, view := range content {
		carrier = carrier.Union(view)
	}
	it.carrier[id] = carrier
	it.content[id] = content
	// The key is binary; label with the (unique) ID and the carrier,
	// which is what diagnostics actually read.
	label := fmt.Sprintf("c%d#%d@%v", color, id, carrier)
	_ = it.Complex.AddVertex(id, color, label)
	it.interns[key] = id
	return id
}

// iterKey canonically serializes (baseVertex, content) as a compact
// binary string: the base vertex, then each content entry — base vertex,
// view length, view members — in increasing base-vertex order. Views are
// canonical sc.Simplex values (sorted, deduplicated), so the encoding is
// injective; binary appends replace the fmt-built string form that
// profiles showed near the top of R_A^ℓ construction.
func iterKey(baseV sc.VertexID, content map[sc.VertexID]sc.Simplex) string {
	keys := make([]sc.VertexID, 0, len(content))
	total := 0
	for k, view := range content {
		keys = append(keys, k)
		total += len(view)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := make([]byte, 0, 4+len(keys)*5+total*4)
	buf = appendVertexID(buf, baseV)
	for _, k := range keys {
		view := content[k]
		buf = appendVertexID(buf, k)
		buf = append(buf, byte(len(view)))
		for _, v := range view {
			buf = appendVertexID(buf, v)
		}
	}
	return string(buf)
}

func appendVertexID(buf []byte, v sc.VertexID) []byte {
	return append(buf, byte(v), byte(uint32(v)>>8), byte(uint32(v)>>16), byte(uint32(v)>>24))
}

// Carrier returns the carrier of a subdivision vertex in the base
// complex (the set of base vertices whose knowledge it transitively
// contains).
func (it *Iterated) Carrier(v sc.VertexID) sc.Simplex { return it.carrier[v] }

// SimplexCarrier returns the carrier of a simplex: the union of the
// carriers of its vertices.
func (it *Iterated) SimplexCarrier(s sc.Simplex) sc.Simplex {
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(it.carrier[v])
	}
	return out
}

// Tower is an iterated application L^ℓ(I): level 0 is the input complex,
// each Extend applies an affine task (or full Chr²) to the top.
//
// A Tower may be shared by concurrent readers (carrier queries and
// level access are mutex-guarded); Extend calls must be serialized by
// the caller — TowerCache does so for cached towers.
type Tower struct {
	Input  *sc.Complex
	Levels []*Iterated

	workers   int
	mu        sync.Mutex
	rootCache map[int]map[sc.VertexID]sc.Simplex
}

// NewTower starts a tower over the given input complex using the default
// worker count for extensions.
func NewTower(input *sc.Complex) *Tower {
	return &Tower{Input: input, rootCache: make(map[int]map[sc.VertexID]sc.Simplex)}
}

// SetWorkers fixes the worker count used by subsequent Extend calls
// (<= 0 selects DefaultWorkers()).
func (t *Tower) SetWorkers(workers int) { t.workers = workers }

// Top returns the current top complex (the input when no levels exist).
func (t *Tower) Top() *sc.Complex {
	return t.LevelComplex(t.Height())
}

// LevelComplex returns the complex at the given level: the input at
// level 0, L^level(I) above.
func (t *Tower) LevelComplex(level int) *sc.Complex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if level == 0 {
		return t.Input
	}
	return t.Levels[level-1].Complex
}

// Extend applies one round of the affine task to the top of the tower.
func (t *Tower) Extend(member Membership) error {
	it, err := ApplyAffineWorkers(t.Top(), member, t.workers)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.Levels = append(t.Levels, it)
	t.mu.Unlock()
	return nil
}

// ApproxBytes estimates the resident size of the tower: the input
// complex plus every built level. The estimate is deliberately cheap
// (derived from vertex/simplex counts, not by walking the maps) — it is
// the weight the TowerCache byte budget uses for LRU eviction, where
// relative size between towers matters more than absolute accuracy.
func (t *Tower) ApproxBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := complexApproxBytes(t.Input)
	for _, it := range t.Levels {
		b += it.ApproxBytes()
	}
	return b
}

// ApproxBytes estimates the resident size of one built level: its
// complex plus the carrier, content and intern tables keyed per vertex.
func (it *Iterated) ApproxBytes() int64 {
	nv := int64(it.Complex.NumVertices())
	n := int64(it.Complex.Colors())
	// Per vertex: intern key + label, carrier slice, and a content map
	// of up to n inner simplices.
	return complexApproxBytes(it.Complex) + nv*(160+96*n)
}

// complexApproxBytes estimates a complex's resident size from its
// vertex and simplex counts.
func complexApproxBytes(c *sc.Complex) int64 {
	return int64(c.NumVertices())*96 + int64(c.NumSimplices())*112
}

// Height returns the number of affine-task applications.
func (t *Tower) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Levels)
}

// RootCarrier returns the carrier of a top-level vertex all the way down
// in the input complex.
func (t *Tower) RootCarrier(v sc.VertexID) sc.Simplex {
	return t.RootCarrierAt(t.Height(), v)
}

// RootCarrierAt returns the input-complex carrier of a vertex of the
// level-`level` complex.
func (t *Tower) RootCarrierAt(level int, v sc.VertexID) sc.Simplex {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.carrierAt(level, v)
}

// RootCarrierOf returns the root carrier of a top-level simplex.
func (t *Tower) RootCarrierOf(s sc.Simplex) sc.Simplex {
	return t.RootCarrierOfAt(t.Height(), s)
}

// RootCarrierOfAt returns the root carrier of a simplex of the
// level-`level` complex.
func (t *Tower) RootCarrierOfAt(level int, s sc.Simplex) sc.Simplex {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(t.carrierAt(level, v))
	}
	return out
}

// carrierAt computes carriers recursively; callers must hold t.mu.
func (t *Tower) carrierAt(level int, v sc.VertexID) sc.Simplex {
	if level == 0 {
		return sc.Simplex{v}
	}
	if cached, ok := t.rootCache[level]; ok {
		if s, ok := cached[v]; ok {
			return s
		}
	} else {
		t.rootCache[level] = make(map[sc.VertexID]sc.Simplex)
	}
	it := t.Levels[level-1]
	var out sc.Simplex
	for _, u := range it.Carrier(v) {
		out = out.Union(t.carrierAt(level-1, u))
	}
	t.rootCache[level][v] = out
	return out
}
