package chromatic

// Iterated application of affine tasks (and of Chr² itself) to arbitrary
// chromatic base complexes, with carrier tracking. This powers the
// solvability side of the FACT theorem: building R_A^ℓ(I) from an input
// complex I and searching for a simplicial map to the output complex.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/procs"
	"repro/internal/sc"
)

// Membership decides whether a given 2-round run (over a ground set of
// colors) yields a simplex of the affine task L ⊆ Chr² s. The full Chr²
// subdivision is the constant-true predicate.
type Membership func(run Run2) bool

// FullChr2Membership accepts every run: L = Chr² s.
var FullChr2Membership Membership = func(Run2) bool { return true }

// Iterated is one level of affine-task application over a base complex:
// the sub-complex of Chr²(base) selected by the membership predicate,
// with per-vertex carriers into the base complex.
type Iterated struct {
	Base    *sc.Complex
	Complex *sc.Complex

	carrier map[sc.VertexID]sc.Simplex
	// content records, for each new vertex, its second-snapshot content
	// in base-vertex terms: base vertex -> set of base vertices (View¹).
	content map[sc.VertexID]map[sc.VertexID]sc.Simplex
	interns map[string]sc.VertexID
	next    sc.VertexID
}

// ErrNotChromaticBase is returned when the base complex is not chromatic.
var ErrNotChromaticBase = errors.New("base complex is not chromatic")

// ApplyAffine computes L(base): for every simplex σ of the base complex
// and every 2-round run over χ(σ) accepted by member, the corresponding
// facet of Chr²(σ) is added. Carriers of new vertices point into base.
func ApplyAffine(base *sc.Complex, member Membership) (*Iterated, error) {
	return applyAffineImpl(base, member)
}

// addRun interns one run's facet.
func (it *Iterated) addRun(r Run2, byColor map[procs.ID]sc.VertexID) {
	views1 := r.R1.Views()
	ground := r.Ground()
	ids := make([]sc.VertexID, 0, ground.Size())
	ground.ForEach(func(p procs.ID) {
		view2, _ := r.R2.ViewOf(p)
		content := make(map[sc.VertexID]sc.Simplex, view2.Size())
		view2.ForEach(func(q procs.ID) {
			view := views1[q]
			baseView := make(sc.Simplex, 0, view.Size())
			view.ForEach(func(x procs.ID) { baseView = append(baseView, byColor[x]) })
			content[byColor[q]] = sc.NewSimplex(baseView...)
		})
		ids = append(ids, it.intern(byColor[p], int(p), content))
	})
	_ = it.Complex.AddSimplex(ids...)
}

// intern canonicalizes a new vertex (baseVertex, content) and returns its
// ID, registering it in the complex with its carrier.
func (it *Iterated) intern(baseV sc.VertexID, color int, content map[sc.VertexID]sc.Simplex) sc.VertexID {
	key := iterKey(baseV, content)
	if id, ok := it.interns[key]; ok {
		return id
	}
	id := it.next
	it.next++
	var carrier sc.Simplex
	for _, view := range content {
		carrier = carrier.Union(view)
	}
	it.carrier[id] = carrier
	it.content[id] = content
	label := fmt.Sprintf("c%d@%s", color, key)
	_ = it.Complex.AddVertex(id, color, label)
	it.interns[key] = id
	return id
}

func iterKey(baseV sc.VertexID, content map[sc.VertexID]sc.Simplex) string {
	keys := make([]sc.VertexID, 0, len(content))
	for k := range content {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", baseV)
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:", k)
		for _, v := range content[k] {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Carrier returns the carrier of a subdivision vertex in the base
// complex (the set of base vertices whose knowledge it transitively
// contains).
func (it *Iterated) Carrier(v sc.VertexID) sc.Simplex { return it.carrier[v] }

// SimplexCarrier returns the carrier of a simplex: the union of the
// carriers of its vertices.
func (it *Iterated) SimplexCarrier(s sc.Simplex) sc.Simplex {
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(it.carrier[v])
	}
	return out
}

// Tower is an iterated application L^ℓ(I): level 0 is the input complex,
// each Extend applies an affine task (or full Chr²) to the top.
type Tower struct {
	Input  *sc.Complex
	Levels []*Iterated

	rootCache map[int]map[sc.VertexID]sc.Simplex
}

// NewTower starts a tower over the given input complex.
func NewTower(input *sc.Complex) *Tower {
	return &Tower{Input: input, rootCache: make(map[int]map[sc.VertexID]sc.Simplex)}
}

// Top returns the current top complex (the input when no levels exist).
func (t *Tower) Top() *sc.Complex {
	if len(t.Levels) == 0 {
		return t.Input
	}
	return t.Levels[len(t.Levels)-1].Complex
}

// Extend applies one round of the affine task to the top of the tower.
func (t *Tower) Extend(member Membership) error {
	it, err := applyAffineImpl(t.Top(), member)
	if err != nil {
		return err
	}
	t.Levels = append(t.Levels, it)
	return nil
}

// Height returns the number of affine-task applications.
func (t *Tower) Height() int { return len(t.Levels) }

// RootCarrier returns the carrier of a top-level vertex all the way down
// in the input complex.
func (t *Tower) RootCarrier(v sc.VertexID) sc.Simplex {
	return t.carrierAt(len(t.Levels), v)
}

// RootCarrierOf returns the root carrier of a top-level simplex.
func (t *Tower) RootCarrierOf(s sc.Simplex) sc.Simplex {
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(t.RootCarrier(v))
	}
	return out
}

func (t *Tower) carrierAt(level int, v sc.VertexID) sc.Simplex {
	if level == 0 {
		return sc.Simplex{v}
	}
	if cached, ok := t.rootCache[level]; ok {
		if s, ok := cached[v]; ok {
			return s
		}
	} else {
		t.rootCache[level] = make(map[sc.VertexID]sc.Simplex)
	}
	it := t.Levels[level-1]
	var out sc.Simplex
	for _, u := range it.Carrier(v) {
		out = out.Union(t.carrierAt(level-1, u))
	}
	t.rootCache[level][v] = out
	return out
}

// applyAffineImpl is the race-free implementation used by Tower.Extend
// and (via a thin wrapper) by ApplyAffine.
func applyAffineImpl(base *sc.Complex, member Membership) (*Iterated, error) {
	if !base.IsChromatic() {
		return nil, ErrNotChromaticBase
	}
	it := &Iterated{
		Base:    base,
		Complex: sc.NewComplex(base.Colors()),
		carrier: make(map[sc.VertexID]sc.Simplex),
		content: make(map[sc.VertexID]map[sc.VertexID]sc.Simplex),
		interns: make(map[string]sc.VertexID),
	}
	seenFaces := make(map[string]bool)
	for _, facet := range base.Facets() {
		for _, face := range facet.Faces() {
			fk := face.Key()
			if seenFaces[fk] {
				continue
			}
			seenFaces[fk] = true
			byColor := make(map[procs.ID]sc.VertexID, len(face))
			var ground procs.Set
			chromaticFace := true
			for _, v := range face {
				vert, _ := base.Vertex(v)
				p := procs.ID(vert.Color)
				if ground.Contains(p) {
					chromaticFace = false
					break
				}
				byColor[p] = v
				ground = ground.Add(p)
			}
			if !chromaticFace {
				return nil, ErrNotChromaticBase
			}
			ForEachRun2(ground, func(r Run2) bool {
				if member(r) {
					it.addRun(r, byColor)
				}
				return true
			})
		}
	}
	return it, nil
}
