package chromatic

// Iterated application of affine tasks (and of Chr² itself) to arbitrary
// chromatic base complexes, with carrier tracking. This powers the
// solvability side of the FACT theorem: building R_A^ℓ(I) from an input
// complex I and searching for a simplicial map to the output complex.
//
// The engine is rank-indexed: membership is consulted through
// MembershipTable bitsets (one bit probe per run instead of a hash-map
// lookup), per-partition IS views come from the flat per-ground tables
// of partitions.go, and the per-work-unit vertex memo is a
// generation-counter arena indexed by (process, round-2 view) — reset by
// bumping a counter, not by reallocation. The Membership callback form
// remains supported through the TablesOf adapter.
//
// Construction fans out across a bounded worker pool: the unit of work
// is one (base face, first-round schedule) pair, whose second-round
// schedules a worker enumerates against the membership table. Each
// worker dedups the vertices it produces in a private shard; shards are
// merged into the global intern table in the serial enumeration order,
// so the resulting complex — vertex IDs, labels, carriers, simplices —
// is byte-identical for every worker count.

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/procs"
	"repro/internal/sc"
)

// Membership decides whether a given 2-round run (over a ground set of
// colors) yields a simplex of the affine task L ⊆ Chr² s. The full Chr²
// subdivision is the constant-true predicate.
//
// This is the generic/compat form. The engine's fast path consumes
// precomputed MembershipTable bitsets (membership.go); callbacks are
// adapted with TablesOf, which evaluates the predicate exactly once per
// run per ground set. Predicates must therefore be pure — the table is
// their permanent answer — and safe for concurrent calls (affine
// task predicates and FullChr2Membership are).
//
// The enumerators pass the run's binary key alongside it, assembled from
// the per-partition packed-key table (partitions.go) instead of
// re-derived per run. Callers invoking a predicate on a run of their own
// pass run.Key().
type Membership func(run Run2, key RunKey) bool

// FullChr2Membership accepts every run: L = Chr² s.
var FullChr2Membership Membership = func(Run2, RunKey) bool { return true }

// DefaultWorkers is the worker count used when callers pass workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Iterated is one level of affine-task application over a base complex:
// the sub-complex of Chr²(base) selected by the membership table, with
// per-vertex carriers into the base complex.
type Iterated struct {
	Base    *sc.Complex
	Complex *sc.Complex

	carrier map[sc.VertexID]sc.Simplex
	interns map[string]sc.VertexID
	next    sc.VertexID
}

// ErrNotChromaticBase is returned when the base complex is not chromatic.
var ErrNotChromaticBase = errors.New("base complex is not chromatic")

// ApplyAffine computes L(base) with the default worker count: for every
// simplex σ of the base complex and every 2-round run over χ(σ) accepted
// by member, the corresponding facet of Chr²(σ) is added. Carriers of
// new vertices point into base.
//
// Compat form: the callback is adapted with TablesOf (evaluated once per
// run per ground). Callers holding a table provider — affine.Task is one
// — should use ApplyAffineTables directly.
func ApplyAffine(base *sc.Complex, member Membership) (*Iterated, error) {
	return ApplyAffineTables(base, TablesOf(member), 0)
}

// ApplyAffineWorkers is ApplyAffine with an explicit worker count.
// workers <= 0 selects DefaultWorkers(); workers == 1 runs the serial
// reference path. The output is byte-identical across worker counts.
func ApplyAffineWorkers(base *sc.Complex, member Membership, workers int) (*Iterated, error) {
	return ApplyAffineTables(base, TablesOf(member), workers)
}

// ApplyAffineTables computes L(base) from a membership-table provider —
// the rank-indexed fast path. workers <= 0 selects DefaultWorkers();
// workers == 1 runs the serial reference path. The output is
// byte-identical across worker counts.
func ApplyAffineTables(base *sc.Complex, tables MemberTables, workers int) (*Iterated, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	faces, err := chromaticFaces(base)
	if err != nil {
		return nil, err
	}
	it := &Iterated{
		Base:    base,
		Complex: sc.NewComplex(base.Colors()),
		carrier: make(map[sc.VertexID]sc.Simplex),
		interns: make(map[string]sc.VertexID),
	}
	if workers == 1 {
		it.applySerial(faces, tables)
		return it, nil
	}
	it.applyParallel(faces, tables, workers)
	return it, nil
}

// baseFace is one distinct chromatic face of the base complex, with its
// color -> base vertex table (flat, indexed by color).
type baseFace struct {
	ground  procs.Set
	byColor []sc.VertexID
}

// chromaticFaces collects the distinct faces of the base complex in the
// deterministic serial enumeration order (facets, then subset masks),
// validating chromaticity along the way.
func chromaticFaces(base *sc.Complex) ([]baseFace, error) {
	if !base.IsChromatic() {
		return nil, ErrNotChromaticBase
	}
	colors := base.Colors()
	var faces []baseFace
	seenFaces := make(map[string]bool)
	for _, facet := range base.Facets() {
		for _, face := range facet.Faces() {
			fk := face.Key()
			if seenFaces[fk] {
				continue
			}
			seenFaces[fk] = true
			byColor := make([]sc.VertexID, colors)
			var ground procs.Set
			for _, v := range face {
				vert, _ := base.Vertex(v)
				p := procs.ID(vert.Color)
				if ground.Contains(p) {
					return nil, ErrNotChromaticBase
				}
				byColor[p] = v
				ground = ground.Add(p)
			}
			faces = append(faces, baseFace{ground: ground, byColor: byColor})
		}
	}
	return faces, nil
}

// arenaMaxSlots bounds the flat slot space of a memo arena; grounds
// whose (member, view) index space exceeds it (only reachable far
// beyond the sizes the engine can enumerate) fall back to a map.
const arenaMaxSlots = 1 << 16

// memoArena memoizes per-row vertex records indexed by (member
// position, round-2 view): a flat generation-stamped slot array that
// resets in O(1) by bumping the generation counter instead of
// reallocating. One arena per (worker, ground) lives across every row
// of that ground.
type memoArena[T any] struct {
	gen   uint32
	width uint
	slots []memoSlot[T]
	over  map[uint32]T // fallback beyond arenaMaxSlots
}

type memoSlot[T any] struct {
	gen uint32
	val T
}

func newMemoArena[T any](ground procs.Set, members int) *memoArena[T] {
	// Slot index: memberPos << width | view2, view2 ⊆ ground.
	a := &memoArena[T]{gen: 1, width: uint(bits.Len32(uint32(ground)))}
	if size := members << a.width; size <= arenaMaxSlots {
		a.slots = make([]memoSlot[T], size)
	} else {
		a.over = make(map[uint32]T)
	}
	return a
}

// reset invalidates every memoized record in O(1) (flat form) or by
// clearing the fallback map.
func (a *memoArena[T]) reset() {
	a.gen++
	if a.over != nil && len(a.over) > 0 {
		clear(a.over)
	}
}

func (a *memoArena[T]) get(pi int, view2 procs.Set) (T, bool) {
	if a.slots != nil {
		s := &a.slots[uint32(pi)<<a.width|uint32(view2)]
		if s.gen == a.gen {
			return s.val, true
		}
		var zero T
		return zero, false
	}
	v, ok := a.over[uint32(pi)<<a.width|uint32(view2)]
	return v, ok
}

func (a *memoArena[T]) put(pi int, view2 procs.Set, v T) {
	if a.slots != nil {
		s := &a.slots[uint32(pi)<<a.width|uint32(view2)]
		s.gen, s.val = a.gen, v
		return
	}
	a.over[uint32(pi)<<a.width|uint32(view2)] = v
}

// applySerial is the serial reference path: faces in order, runs in rank
// order, vertices interned at first encounter. Within one first-round
// row a vertex is determined by (process, round-2 view), so the arena
// memoizes interned IDs per row.
func (it *Iterated) applySerial(faces []baseFace, tables MemberTables) {
	arenas := make(map[procs.Set]*memoArena[sc.VertexID])
	var keyBuf []byte
	var ids []sc.VertexID
	for _, f := range faces {
		tab := partitionsFor(f.ground)
		mt := tables.MembershipTable(f.ground)
		members := tab.members
		m := len(tab.parts)
		ar := arenas[f.ground]
		if ar == nil {
			ar = newMemoArena[sc.VertexID](f.ground, len(members))
			arenas[f.ground] = ar
		}
		for i := 0; i < m; i++ {
			if !mt.RowAny(i) {
				continue
			}
			views1 := tab.views[i]
			base := i * m
			ar.reset()
			for j := 0; j < m; j++ {
				if !mt.Contains(RunRank(base + j)) {
					continue
				}
				views2 := tab.views[j]
				ids = ids[:0]
				for pi, p := range members {
					view2 := views2[p]
					id, ok := ar.get(pi, view2)
					if !ok {
						id = it.internFlat(f.byColor, p, view2, views1, &keyBuf)
						ar.put(pi, view2, id)
					}
					ids = append(ids, id)
				}
				_ = it.Complex.AddSimplex(ids...)
			}
		}
	}
}

// internFlat interns the vertex (p, view2) of one run, building its
// canonical key into the caller's reusable buffer. The global intern
// probe allocates nothing on a hit.
func (it *Iterated) internFlat(byColor []sc.VertexID, p procs.ID, view2 procs.Set,
	views1 []procs.Set, keyBuf *[]byte) sc.VertexID {
	buf := appendIterKey((*keyBuf)[:0], byColor[p], view2, views1, byColor)
	*keyBuf = buf
	if id, ok := it.interns[string(buf)]; ok {
		return id
	}
	return it.register(string(buf), int(p), flatCarrier(view2, views1, byColor))
}

// vertexRec is a worker-shard record of one subdivision vertex, keyed by
// the same canonical string the serial interner uses.
type vertexRec struct {
	key     string
	color   int32
	carrier sc.Simplex
}

// runUnit is the parallel work unit: one base face crossed with one
// first-round schedule (an index into the face's cached partition
// table). Workers enumerate its second-round schedules.
type runUnit struct {
	face int
	r1   int
}

// applyParallel fans the run enumeration out over the worker pool and
// merges the per-unit results in serial enumeration order.
func (it *Iterated) applyParallel(faces []baseFace, tables MemberTables, workers int) {
	type groundData struct {
		tab *partTable
		mt  *MembershipTable
	}
	byGround := make(map[procs.Set]groundData)
	for _, f := range faces {
		if _, ok := byGround[f.ground]; !ok {
			byGround[f.ground] = groundData{
				tab: partitionsFor(f.ground),
				mt:  tables.MembershipTable(f.ground),
			}
		}
	}
	var units []runUnit
	for fi, f := range faces {
		g := byGround[f.ground]
		for i := range g.tab.parts {
			if !g.mt.RowAny(i) {
				continue
			}
			units = append(units, runUnit{face: fi, r1: i})
		}
	}
	// results[i] holds the accepted facets of unit i, each facet a list
	// of shard records in ground order.
	results := make([][][]*vertexRec, len(units))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := make(map[string]*vertexRec)
			arenas := make(map[procs.Set]*memoArena[*vertexRec])
			var keyBuf []byte
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				f := faces[u.face]
				g := byGround[f.ground]
				tab, mt := g.tab, g.mt
				members := tab.members
				m := len(tab.parts)
				ar := arenas[f.ground]
				if ar == nil {
					ar = newMemoArena[*vertexRec](f.ground, len(members))
					arenas[f.ground] = ar
				}
				ar.reset()
				views1 := tab.views[u.r1]
				base := u.r1 * m
				var accepted [][]*vertexRec
				for j := 0; j < m; j++ {
					if !mt.Contains(RunRank(base + j)) {
						continue
					}
					views2 := tab.views[j]
					recs := make([]*vertexRec, 0, len(members))
					for pi, p := range members {
						view2 := views2[p]
						rec, ok := ar.get(pi, view2)
						if !ok {
							rec = buildRec(p, view2, views1, f.byColor, shard, &keyBuf)
							ar.put(pi, view2, rec)
						}
						recs = append(recs, rec)
					}
					accepted = append(accepted, recs)
				}
				results[i] = accepted
			}
		}()
	}
	wg.Wait()
	ids := make([]sc.VertexID, 0, 16)
	for _, accepted := range results {
		for _, recs := range accepted {
			ids = ids[:0]
			for _, rec := range recs {
				ids = append(ids, it.internRec(rec))
			}
			_ = it.Complex.AddSimplex(ids...)
		}
	}
}

// buildRec computes the shard record of the vertex (p, view2) under the
// unit's fixed first-round views, reusing the worker's shard so vertices
// repeated across units are built once per worker. The shard probe
// allocates nothing on a hit.
func buildRec(p procs.ID, view2 procs.Set, views1 []procs.Set,
	byColor []sc.VertexID, shard map[string]*vertexRec, keyBuf *[]byte) *vertexRec {
	buf := appendIterKey((*keyBuf)[:0], byColor[p], view2, views1, byColor)
	*keyBuf = buf
	if rec, ok := shard[string(buf)]; ok {
		return rec
	}
	rec := &vertexRec{
		key:     string(buf),
		color:   int32(p),
		carrier: flatCarrier(view2, views1, byColor),
	}
	shard[rec.key] = rec
	return rec
}

// flatCarrier derives the carrier of the vertex (·, view2): the base
// vertices of every color transitively seen through the two rounds.
func flatCarrier(view2 procs.Set, views1 []procs.Set, byColor []sc.VertexID) sc.Simplex {
	var cs procs.Set
	view2.ForEach(func(q procs.ID) { cs = cs.Union(views1[q]) })
	carrier := make(sc.Simplex, 0, cs.Size())
	cs.ForEach(func(x procs.ID) { carrier = append(carrier, byColor[x]) })
	return sc.NewSimplex(carrier...)
}

// internRec interns one shard record into the global table, assigning
// IDs in merge order — identical to the serial first-seen order.
func (it *Iterated) internRec(rec *vertexRec) sc.VertexID {
	if id, ok := it.interns[rec.key]; ok {
		return id
	}
	return it.register(rec.key, int(rec.color), rec.carrier)
}

// register assigns the next vertex ID to a fresh (key, carrier) pair.
func (it *Iterated) register(key string, color int, carrier sc.Simplex) sc.VertexID {
	id := it.next
	it.next++
	it.carrier[id] = carrier
	// The key is binary; label with the (unique) ID and the carrier,
	// which is what diagnostics actually read.
	label := fmt.Sprintf("c%d#%d@%v", color, id, carrier)
	_ = it.Complex.AddVertex(id, color, label)
	it.interns[key] = id
	return id
}

// appendIterKey canonically serializes a subdivision vertex as a compact
// binary string: the base vertex, then per member of its round-2 view in
// increasing color order — the member's base vertex, its round-1 view
// length, and the view's base vertices in increasing color order. Every
// byte derives from the vertex's content alone (each base vertex's color
// is fixed by the chromatic base complex), so the encoding is canonical
// across faces; the prefix-decodable layout makes it injective.
func appendIterKey(buf []byte, baseV sc.VertexID, view2 procs.Set,
	views1 []procs.Set, byColor []sc.VertexID) []byte {
	buf = appendVertexID(buf, baseV)
	view2.ForEach(func(q procs.ID) {
		view := views1[q]
		buf = appendVertexID(buf, byColor[q])
		buf = append(buf, byte(view.Size()))
		view.ForEach(func(x procs.ID) { buf = appendVertexID(buf, byColor[x]) })
	})
	return buf
}

func appendVertexID(buf []byte, v sc.VertexID) []byte {
	return append(buf, byte(v), byte(uint32(v)>>8), byte(uint32(v)>>16), byte(uint32(v)>>24))
}

// Carrier returns the carrier of a subdivision vertex in the base
// complex (the set of base vertices whose knowledge it transitively
// contains).
func (it *Iterated) Carrier(v sc.VertexID) sc.Simplex { return it.carrier[v] }

// SimplexCarrier returns the carrier of a simplex: the union of the
// carriers of its vertices.
func (it *Iterated) SimplexCarrier(s sc.Simplex) sc.Simplex {
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(it.carrier[v])
	}
	return out
}

// Tower is an iterated application L^ℓ(I): level 0 is the input complex,
// each Extend applies an affine task (or full Chr²) to the top.
//
// A Tower may be shared by concurrent readers (carrier queries and
// level access are mutex-guarded); Extend calls must be serialized by
// the caller — TowerCache does so for cached towers.
type Tower struct {
	Input  *sc.Complex
	Levels []*Iterated

	workers   int
	mu        sync.Mutex
	rootCache map[int]map[sc.VertexID]sc.Simplex
}

// NewTower starts a tower over the given input complex using the default
// worker count for extensions.
func NewTower(input *sc.Complex) *Tower {
	return &Tower{Input: input, rootCache: make(map[int]map[sc.VertexID]sc.Simplex)}
}

// SetWorkers fixes the worker count used by subsequent Extend calls
// (<= 0 selects DefaultWorkers()).
func (t *Tower) SetWorkers(workers int) { t.workers = workers }

// Top returns the current top complex (the input when no levels exist).
func (t *Tower) Top() *sc.Complex {
	return t.LevelComplex(t.Height())
}

// LevelComplex returns the complex at the given level: the input at
// level 0, L^level(I) above.
func (t *Tower) LevelComplex(level int) *sc.Complex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if level == 0 {
		return t.Input
	}
	return t.Levels[level-1].Complex
}

// Extend applies one round of the affine task to the top of the tower.
// Compat form of ExtendTables — the callback is adapted with TablesOf
// per call; callers extending repeatedly should hold a table provider.
func (t *Tower) Extend(member Membership) error {
	return t.ExtendTables(TablesOf(member))
}

// ExtendTables applies one round of the affine task, given by its
// membership-table provider, to the top of the tower.
func (t *Tower) ExtendTables(tables MemberTables) error {
	it, err := ApplyAffineTables(t.Top(), tables, t.workers)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.Levels = append(t.Levels, it)
	t.mu.Unlock()
	return nil
}

// ApproxBytes estimates the resident size of the tower: the input
// complex plus every built level. The estimate is deliberately cheap
// (derived from vertex/simplex counts, not by walking the maps) — it is
// the weight the TowerCache byte budget uses for LRU eviction, where
// relative size between towers matters more than absolute accuracy.
func (t *Tower) ApproxBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := complexApproxBytes(t.Input)
	for _, it := range t.Levels {
		b += it.ApproxBytes()
	}
	return b
}

// ApproxBytes estimates the resident size of one built level: its
// complex plus the carrier and intern tables keyed per vertex.
func (it *Iterated) ApproxBytes() int64 {
	nv := int64(it.Complex.NumVertices())
	n := int64(it.Complex.Colors())
	// Per vertex: intern key + label, carrier slice, and the per-color
	// key payload.
	return complexApproxBytes(it.Complex) + nv*(160+96*n)
}

// complexApproxBytes estimates a complex's resident size from its
// vertex and simplex counts.
func complexApproxBytes(c *sc.Complex) int64 {
	return int64(c.NumVertices())*96 + int64(c.NumSimplices())*112
}

// Height returns the number of affine-task applications.
func (t *Tower) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Levels)
}

// RootCarrier returns the carrier of a top-level vertex all the way down
// in the input complex.
func (t *Tower) RootCarrier(v sc.VertexID) sc.Simplex {
	return t.RootCarrierAt(t.Height(), v)
}

// RootCarrierAt returns the input-complex carrier of a vertex of the
// level-`level` complex.
func (t *Tower) RootCarrierAt(level int, v sc.VertexID) sc.Simplex {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.carrierAt(level, v)
}

// RootCarrierOf returns the root carrier of a top-level simplex.
func (t *Tower) RootCarrierOf(s sc.Simplex) sc.Simplex {
	return t.RootCarrierOfAt(t.Height(), s)
}

// RootCarrierOfAt returns the root carrier of a simplex of the
// level-`level` complex.
func (t *Tower) RootCarrierOfAt(level int, s sc.Simplex) sc.Simplex {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out sc.Simplex
	for _, v := range s {
		out = out.Union(t.carrierAt(level, v))
	}
	return out
}

// carrierAt computes carriers recursively; callers must hold t.mu.
func (t *Tower) carrierAt(level int, v sc.VertexID) sc.Simplex {
	if level == 0 {
		return sc.Simplex{v}
	}
	if cached, ok := t.rootCache[level]; ok {
		if s, ok := cached[v]; ok {
			return s
		}
	} else {
		t.rootCache[level] = make(map[sc.VertexID]sc.Simplex)
	}
	it := t.Levels[level-1]
	var out sc.Simplex
	for _, u := range it.Carrier(v) {
		out = out.Union(t.carrierAt(level-1, u))
	}
	t.rootCache[level][v] = out
	return out
}
