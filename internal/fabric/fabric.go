// Package fabric is the distributed census fabric: a lease-based
// coordinator that fans a census campaign out to HTTP workers, with
// the census store as the durable ledger.
//
// The campaign domain — raw enumeration indices [0, CensusSize(n)) —
// is partitioned into contiguous work units. In orbit mode the unit
// boundaries land on canonical-representative starts, so every unit
// carries the same number of ranks (real work) regardless of how the
// canonical sequence clusters; in full mode units are fixed-size raw
// ranges. Units are disjoint and cover the domain, so the shards
// workers upload merge into exactly the store a single-node sweep of
// the same configuration would build, byte for byte.
//
// The coordinator (Coordinator, `factool coordinate`) serves a
// v1-style lease protocol built on the shared internal/api kit:
//
//	POST /v1/leases                acquire: {"worker":W,"ttl_sec":T}
//	POST /v1/leases/{id}/renew     heartbeat under long solves
//	POST /v1/leases/{id}/complete  gzip shard upload -> store merge
//	POST /v1/leases/{id}/release   graceful hand-back (SIGINT)
//	GET  /v1/fabric/status         campaign progress + workers
//	GET  /healthz /readyz /metrics probes and Prometheus exposition
//
// Expired leases requeue their unit; lease records are kept for the
// life of the process, so a late completion from an expired lease
// still folds in through the conflict-checked Merge — double-completed
// units are self-checking byte-for-byte, and any disagreement is a
// 409, never a silent overwrite. On restart the coordinator recovers
// the ledger from the store itself: one range walk counts the entries
// resident in each unit, and fully-covered units never lease again.
//
// The worker (Work, `factool work`) loops acquire → rank-range sweep
// (census.SweepRange over the existing orbit block producer) →
// gzip-upload → re-acquire, renewing under long solves, backing off
// across coordinator outages, and releasing its lease on a graceful
// stop.
package fabric

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/tasks"
)

// Campaign is the sweep configuration a coordinator distributes. It
// must match the store's kind (a solve-mode orbit store only accepts
// solve-mode orbit shards) and task spec — NewCoordinator checks, and
// the merge's kind guards backstop.
type Campaign struct {
	N      int  `json:"n"`
	Orbits bool `json:"orbits"`
	Solve  bool `json:"solve,omitempty"`

	// Task is the canonical spec of the task a solve campaign decides.
	// Normalize derives it ("kset:k=<KTask>" when empty); workers sweep
	// exactly this spec, so shards from every worker agree byte-wise.
	Task      string `json:"task,omitempty"`
	KTask     int    `json:"k_task,omitempty"`
	MaxRounds int    `json:"max_rounds,omitempty"`
}

// normalize validates and defaults the campaign in place.
func (c *Campaign) normalize() error {
	if c.N < 1 || c.N > 6 {
		return fmt.Errorf("fabric: n must be in [1,6], got %d", c.N)
	}
	if c.Solve {
		if c.KTask <= 0 {
			c.KTask = 1
		}
		if c.Task == "" {
			c.Task = tasks.KSetSpec(c.KTask).String()
		}
		spec, err := tasks.ParseSpec(c.Task)
		if err != nil {
			return fmt.Errorf("fabric: %w", err)
		}
		c.Task = spec.String()
		if spec.IsKSet() {
			c.KTask = spec.Param("k")
		} else {
			c.KTask = 0
		}
		if c.MaxRounds <= 0 {
			c.MaxRounds = 1
		}
	} else {
		c.Task, c.KTask, c.MaxRounds = "", 0, 0
	}
	return nil
}

// Unit is one work unit: the raw index range [Lo, Hi) and the number
// of entries a complete sweep of it emits (canonical representatives
// in orbit mode, Hi-Lo in full mode).
type Unit struct {
	ID    int    `json:"id"`
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Ranks uint64 `json:"ranks"`
}

// PartitionUnits slices the campaign domain into contiguous disjoint
// units covering [0, CensusSize(n)). unitSize is the number of
// canonical ranks per unit in orbit mode (one stabilizer-aware walk of
// the canonical sequence places each boundary on a representative's
// raw index) and the number of raw indices per unit in full mode.
func PartitionUnits(c Campaign, unitSize uint64) ([]Unit, error) {
	if err := c.normalize(); err != nil {
		return nil, err
	}
	if unitSize == 0 {
		return nil, fmt.Errorf("fabric: unit size must be positive")
	}
	domain := adversary.CensusSize(c.N)
	var units []Unit
	if !c.Orbits {
		for lo := uint64(0); lo < domain; lo += unitSize {
			hi := lo + unitSize
			if hi > domain {
				hi = domain
			}
			units = append(units, Unit{ID: len(units), Lo: lo, Hi: hi, Ranks: hi - lo})
		}
		return units, nil
	}
	// Orbit mode: close a unit when it holds unitSize representatives,
	// at the raw index of the next representative — so boundaries are
	// exact representative starts and every raw index (canonical or
	// not) lands in exactly one unit. The final unit absorbs the
	// non-canonical tail up to the domain end.
	o := adversary.NewOrbits(c.N)
	cur := Unit{}
	o.ForEachCanonicalFrom(0, func(idx, size uint64) bool {
		if cur.Ranks == unitSize {
			cur.Hi = idx
			cur.ID = len(units)
			units = append(units, cur)
			cur = Unit{Lo: idx}
		}
		cur.Ranks++
		return true
	})
	if cur.Ranks > 0 {
		cur.Hi = domain
		cur.ID = len(units)
		units = append(units, cur)
	}
	return units, nil
}
