package fabric

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/census"
	"repro/internal/obs"
	"repro/internal/store"
)

// testCoord builds a coordinator over a fresh store plus its HTTP
// server. The returned clock shifts the coordinator's notion of now.
func testCoord(t *testing.T, camp Campaign, opts CoordinatorOptions) (*Coordinator, *httptest.Server, func(time.Duration)) {
	t.Helper()
	st, err := store.Create(t.TempDir(), camp.N)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return coordOver(t, st, camp, opts)
}

func coordOver(t *testing.T, st *store.Store, camp Campaign, opts CoordinatorOptions) (*Coordinator, *httptest.Server, func(time.Duration)) {
	t.Helper()
	var mu sync.Mutex
	offset := time.Duration(0)
	opts.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return time.Now().Add(offset)
	}
	opts.SpoolDir = t.TempDir()
	c, err := NewCoordinator(st, camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	advance := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		offset += d
	}
	return c, srv, advance
}

// acquire grabs one lease over HTTP.
func acquire(t *testing.T, url, worker string) leaseResponse {
	t.Helper()
	body, _ := json.Marshal(acquireRequest{Worker: worker})
	resp, err := http.Post(url+"/v1/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire: status %d", resp.StatusCode)
	}
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// sweepShard produces the gzip shard for one unit of the campaign.
func sweepShard(t *testing.T, dir string, camp Campaign, u Unit) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("unit-%d.jsonl.gz", u.ID))
	sink, err := census.NewJSONLSinkCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := census.Options{Orbits: camp.Orbits, Solve: camp.Solve, KTask: camp.KTask, MaxRounds: camp.MaxRounds}
	rep, err := census.SweepRange(camp.N, opts, sink, u.Lo, u.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatalf("unit %d sweep incomplete", u.ID)
	}
	return path
}

// upload posts a shard file against a lease; returns the HTTP status
// and body.
func upload(t *testing.T, url, leaseID, path string) (int, string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	resp, err := http.Post(url+"/v1/leases/"+leaseID+"/complete", "application/gzip", f)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// storeLines walks the whole store in index order.
func storeLines(t *testing.T, st *store.Store, domain uint64) []string {
	t.Helper()
	var lines []string
	from := uint64(0)
	for {
		page, err := st.Range(from, domain, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range page.Lines {
			lines = append(lines, string(l))
		}
		if !page.More {
			return lines
		}
		from = page.Next
	}
}

// TestPartitionUnits: units are contiguous, disjoint, cover the domain,
// and orbit-mode ranks sum to the orbit count.
func TestPartitionUnits(t *testing.T) {
	n := 4
	domain := adversary.CensusSize(n)
	for _, tc := range []struct {
		orbits   bool
		unitSize uint64
	}{{false, 1 << 12}, {true, 64}, {true, 7}, {true, domain}} {
		units, err := PartitionUnits(Campaign{N: n, Orbits: tc.orbits}, tc.unitSize)
		if err != nil {
			t.Fatal(err)
		}
		var ranks uint64
		for i, u := range units {
			if u.ID != i {
				t.Fatalf("unit %d has id %d", i, u.ID)
			}
			if u.Lo >= u.Hi {
				t.Fatalf("unit %d empty: [%d,%d)", i, u.Lo, u.Hi)
			}
			if i == 0 && u.Lo != 0 {
				t.Fatalf("first unit starts at %d", u.Lo)
			}
			if i > 0 && u.Lo != units[i-1].Hi {
				t.Fatalf("gap before unit %d: %d != %d", i, u.Lo, units[i-1].Hi)
			}
			ranks += u.Ranks
		}
		if units[len(units)-1].Hi != domain {
			t.Fatalf("last unit ends at %d, domain is %d", units[len(units)-1].Hi, domain)
		}
		want := domain
		if tc.orbits {
			want = 0
			adversary.NewOrbits(n).ForEachRepresentative(func(idx, size uint64) bool {
				want++
				return true
			})
		}
		if ranks != want {
			t.Fatalf("orbits=%v unitSize=%d: ranks sum %d, want %d", tc.orbits, tc.unitSize, ranks, want)
		}
	}
}

// TestFabricEndToEnd: two in-process workers drain an n=3 orbit
// campaign; the merged store is line-identical to a single-node sweep.
func TestFabricEndToEnd(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	dir := t.TempDir()
	st, err := store.Create(dir, camp.N)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var events bytes.Buffer
	c, srv, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 8, Log: &events})

	var wg sync.WaitGroup
	stats := make([]WorkerStats, 2)
	errs := make([]error, 2)
	for i := range stats {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = Work(WorkerOptions{
				BaseURL: srv.URL,
				ID:      fmt.Sprintf("w%d", i),
				Workers: 2,
				TempDir: t.TempDir(),
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done after both workers returned")
	}

	// Reference: the same campaign swept on one node.
	full, err := census.Run(camp.N, census.Options{Orbits: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := storeLines(t, st, adversary.CensusSize(camp.N))
	if len(lines) != len(full.Entries) {
		t.Fatalf("store holds %d entries, single-node sweep %d", len(lines), len(full.Entries))
	}
	for i := range lines {
		want, _ := json.Marshal(&full.Entries[i])
		if lines[i] != string(want) {
			t.Fatalf("entry %d differs:\n store: %s\n sweep: %s", i, lines[i], want)
		}
	}
	if total := stats[0].Entries + stats[1].Entries; total != uint64(len(lines)) {
		t.Errorf("workers report %d entries, store holds %d", total, len(lines))
	}
	status := c.Status()
	if !status.Done || status.Units.Done != status.Units.Total || status.Units.Conflict != 0 {
		t.Errorf("status after drain: %+v", status.Units)
	}
}

// TestLeaseExpiryRequeue: an unrenewed lease lapses at TTL and its unit
// requeues at the front; a fresh worker then drains the campaign.
func TestLeaseExpiryRequeue(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	var events bytes.Buffer
	c, srv, advance := testCoord(t, camp, CoordinatorOptions{UnitSize: 4, TTL: time.Minute, Log: &events})

	first := acquire(t, srv.URL, "flaky")
	if first.Status != "lease" {
		t.Fatalf("acquire: %q", first.Status)
	}
	// The worker vanishes. Past the TTL the unit must lease again.
	advance(2 * time.Minute)
	second := acquire(t, srv.URL, "steady")
	if second.Status != "lease" {
		t.Fatalf("post-expiry acquire: %q", second.Status)
	}
	if second.Lease.Unit.ID != first.Lease.Unit.ID {
		t.Fatalf("requeued unit %d not re-leased first (got %d)", first.Lease.Unit.ID, second.Lease.Unit.ID)
	}
	if c.Status().Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", c.Status().Requeues)
	}
	if !strings.Contains(events.String(), "requeued") {
		t.Fatal("expiry event not logged")
	}
	// The expired lease is dead to renewal…
	resp, err := http.Post(srv.URL+"/v1/leases/"+first.Lease.ID+"/renew", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("renewing an expired lease: status %d, want 410", resp.StatusCode)
	}
	// …and the replacement worker can finish the campaign.
	if _, err := Work(WorkerOptions{BaseURL: srv.URL, ID: "steady", TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done")
	}
}

// TestLeaseRenewExtends: renewal pushes the deadline out, so a renewed
// lease survives clock advances that would otherwise expire it.
func TestLeaseRenewExtends(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	_, srv, advance := testCoord(t, camp, CoordinatorOptions{UnitSize: 1024, TTL: time.Minute})
	lr := acquire(t, srv.URL, "w")
	for i := 0; i < 3; i++ {
		advance(45 * time.Second)
		resp, err := http.Post(srv.URL+"/v1/leases/"+lr.Lease.ID+"/renew", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("renew %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestDoubleCompleteIdentical: the same shard landing twice (an expired
// lease's late completion) folds as duplicates, not an error.
func TestDoubleCompleteIdentical(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	c, srv, advance := testCoord(t, camp, CoordinatorOptions{UnitSize: 4, TTL: time.Minute})
	first := acquire(t, srv.URL, "slow")
	shard := sweepShard(t, t.TempDir(), camp, first.Lease.Unit)

	// The lease expires and the unit is re-completed by someone else.
	advance(2 * time.Minute)
	second := acquire(t, srv.URL, "fast")
	if second.Lease.Unit.ID != first.Lease.Unit.ID {
		t.Fatalf("expected the requeued unit, got %d", second.Lease.Unit.ID)
	}
	if code, body := upload(t, srv.URL, second.Lease.ID, shard); code != http.StatusOK {
		t.Fatalf("fresh complete: %d %s", code, body)
	}
	// The slow worker's identical shard arrives late: accepted, all
	// duplicates.
	code, body := upload(t, srv.URL, first.Lease.ID, shard)
	if code != http.StatusOK {
		t.Fatalf("late duplicate complete: %d %s", code, body)
	}
	var cr completeResponse
	if err := json.Unmarshal([]byte(body), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Added != 0 || cr.Duplicates != first.Lease.Unit.Ranks {
		t.Fatalf("late duplicate: added %d, duplicates %d (unit has %d ranks)",
			cr.Added, cr.Duplicates, first.Lease.Unit.Ranks)
	}
	if c.Status().Units.Conflict != 0 {
		t.Fatal("identical double-complete flagged as conflict")
	}
}

// TestDoubleCompleteConflict: a late completion whose bytes disagree
// with the ledger is a 409 and marks the unit conflicted.
func TestDoubleCompleteConflict(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	c, srv, advance := testCoord(t, camp, CoordinatorOptions{UnitSize: 4, TTL: time.Minute})
	first := acquire(t, srv.URL, "honest")
	dir := t.TempDir()
	shard := sweepShard(t, dir, camp, first.Lease.Unit)
	if code, body := upload(t, srv.URL, first.Lease.ID, shard); code != http.StatusOK {
		t.Fatalf("complete: %d %s", code, body)
	}

	// A late re-completion of the same unit with one entry's payload
	// altered — same index, different bytes.
	advance(2 * time.Minute)
	lines := gunzipLines(t, shard)
	// Different bytes, same index, still parseable: validation passes
	// and the conflict is caught by the merge itself.
	tampered := strings.Replace(lines[1], "{", `{"aaa_tamper":true,`, 1)
	if tampered == lines[1] {
		t.Fatal("tamper had no effect")
	}
	var probe map[string]any
	if err := json.Unmarshal([]byte(tampered), &probe); err != nil {
		t.Fatal(err)
	}
	lines[1] = tampered
	bad := filepath.Join(dir, "tampered.jsonl")
	if err := os.WriteFile(bad, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, body := upload(t, srv.URL, first.Lease.ID, bad)
	if code != http.StatusConflict {
		t.Fatalf("conflicting complete: %d %s, want 409", code, body)
	}
	if got := c.Status().Units.Conflict; got != 1 {
		t.Fatalf("conflict units = %d, want 1", got)
	}
}

// gunzipLines reads a (possibly gzip) shard's lines.
func gunzipLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 1 && b[0] == 0x1f && b[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer gz.Close()
		if b, err = io.ReadAll(gz); err != nil {
			t.Fatal(err)
		}
	}
	return strings.Split(strings.TrimRight(string(b), "\n"), "\n")
}

// TestShardValidation: short, out-of-range and malformed shards are
// rejected with 400 before touching the store.
func TestShardValidation(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	_, srv, _ := testCoord(t, camp, CoordinatorOptions{UnitSize: 4})
	lr := acquire(t, srv.URL, "w")
	dir := t.TempDir()
	shard := sweepShard(t, dir, camp, lr.Lease.Unit)
	lines := gunzipLines(t, shard)

	write := func(name string, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	short := write("short.jsonl", strings.Join(lines[:len(lines)-1], "\n")+"\n")
	if code, body := upload(t, srv.URL, lr.Lease.ID, short); code != http.StatusBadRequest {
		t.Fatalf("short shard: %d %s, want 400", code, body)
	}
	foreign := write("foreign.jsonl", strings.Join(lines, "\n")+"\n"+
		fmt.Sprintf(`{"index":%d}`, lr.Lease.Unit.Hi)+"\n")
	if code, body := upload(t, srv.URL, lr.Lease.ID, foreign); code != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: %d %s, want 400", code, body)
	}
	junk := write("junk.jsonl", "not json\n")
	if code, body := upload(t, srv.URL, lr.Lease.ID, junk); code != http.StatusBadRequest {
		t.Fatalf("junk shard: %d %s, want 400", code, body)
	}
	// The lease survives rejected uploads: the real shard still lands.
	if code, body := upload(t, srv.URL, lr.Lease.ID, shard); code != http.StatusOK {
		t.Fatalf("good shard after rejects: %d %s", code, body)
	}
}

// TestWorkerCrashMidLease: a worker dying with a lease held neither
// blocks nor corrupts the campaign — the unit requeues at expiry and a
// second worker finishes; the store matches the single-node sweep.
func TestWorkerCrashMidLease(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	dir := t.TempDir()
	st, err := store.Create(dir, camp.N)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var events bytes.Buffer
	c, srv, advance := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 8, TTL: time.Minute, Log: &events})

	boom := errors.New("boom")
	_, err = Work(WorkerOptions{
		BaseURL: srv.URL, ID: "crasher", TempDir: t.TempDir(),
		AcquireHook: func(k int, leaseID string, u Unit) error {
			if k == 2 {
				return boom // die holding the second lease, first unit done
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("crasher returned %v, want the crash", err)
	}
	if cs := c.Status(); cs.Units.Leased != 1 || cs.Units.Done != 1 {
		t.Fatalf("after crash: %+v, want 1 leased / 1 done", cs.Units)
	}

	advance(2 * time.Minute) // the abandoned lease lapses
	if _, err := Work(WorkerOptions{BaseURL: srv.URL, ID: "finisher", TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done")
	}
	if c.Status().Requeues == 0 {
		t.Fatal("crash did not register a requeue")
	}

	full, err := census.Run(camp.N, census.Options{Orbits: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := storeLines(t, st, adversary.CensusSize(camp.N))
	if len(lines) != len(full.Entries) {
		t.Fatalf("store holds %d entries, want %d", len(lines), len(full.Entries))
	}
}

// TestCoordinatorRestartRecovery: a new coordinator over a partially
// filled store re-leases only the missing units, and the drained store
// matches the single-node sweep.
func TestCoordinatorRestartRecovery(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	dir := t.TempDir()
	st, err := store.Create(dir, camp.N)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, srv, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 4})

	// First life: complete exactly two units, then "crash".
	units, err := PartitionUnits(camp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 3 {
		t.Fatalf("campaign too small for the test: %d units", len(units))
	}
	shardDir := t.TempDir()
	for i := 0; i < 2; i++ {
		lr := acquire(t, srv.URL, "w")
		shard := sweepShard(t, shardDir, camp, lr.Lease.Unit)
		if code, body := upload(t, srv.URL, lr.Lease.ID, shard); code != http.StatusOK {
			t.Fatalf("complete %d: %d %s", i, code, body)
		}
	}
	srv.Close()

	// Second life over the same store.
	c2, srv2, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 4})
	status := c2.Status()
	if status.Units.Done != 2 {
		t.Fatalf("recovered %d done units, want 2", status.Units.Done)
	}
	if _, err := Work(WorkerOptions{BaseURL: srv2.URL, ID: "w2", TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("campaign not done after recovery drain")
	}

	full, err := census.Run(camp.N, census.Options{Orbits: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := storeLines(t, st, adversary.CensusSize(camp.N))
	if len(lines) != len(full.Entries) {
		t.Fatalf("store holds %d entries, want %d", len(lines), len(full.Entries))
	}
	for i := range lines {
		want, _ := json.Marshal(&full.Entries[i])
		if lines[i] != string(want) {
			t.Fatalf("entry %d differs after recovery", i)
		}
	}

	// A third life over the complete store is born done.
	c3, srv3, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 4})
	select {
	case <-c3.Done():
	default:
		t.Fatal("coordinator over a complete store not born done")
	}
	if lr := acquire(t, srv3.URL, "idle"); lr.Status != "done" {
		t.Fatalf("acquire on a complete campaign: %q, want done", lr.Status)
	}
}

// TestCoordinatorRejectsMismatchedStore: a store of the wrong kind is
// refused up front.
func TestCoordinatorRejectsMismatchedStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := NewCoordinator(st, Campaign{N: 4, Orbits: true}, CoordinatorOptions{}); err == nil {
		t.Fatal("n mismatch accepted")
	}
	if _, err := NewCoordinator(nil, Campaign{N: 3}, CoordinatorOptions{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewCoordinator(st, Campaign{N: 0}, CoordinatorOptions{}); err == nil {
		t.Fatal("bad n accepted")
	}
}

// TestFabricTraceSpans: a drained campaign under a private tracer
// yields one ended fabric.campaign span, a completed fabric.lease span
// per unit nested under it, and worker-side unit/sweep spans nested
// under the worker's fabric.work span.
func TestFabricTraceSpans(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultRingSpans)
	camp := Campaign{N: 3, Orbits: true}
	st, err := store.Create(t.TempDir(), camp.N)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c, srv, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 8, Tracer: tr})
	if _, err := Work(WorkerOptions{
		BaseURL: srv.URL, ID: "w0", Workers: 2, TempDir: t.TempDir(), Tracer: tr,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done after worker returned")
	}

	byName := map[string][]obs.Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if len(byName["fabric.campaign"]) != 1 {
		t.Fatalf("want 1 fabric.campaign span, got %d", len(byName["fabric.campaign"]))
	}
	campaign := byName["fabric.campaign"][0]
	if campaign.Parent != 0 || campaign.EndNS <= campaign.StartNS {
		t.Fatalf("campaign span malformed: %+v", campaign)
	}

	total := c.Status().Units.Total
	unitsSeen := map[string]bool{}
	for _, l := range byName["fabric.lease"] {
		if l.Parent != campaign.ID {
			t.Fatalf("lease span %d has parent %d, campaign is %d", l.ID, l.Parent, campaign.ID)
		}
		if l.Attrs["outcome"] == "completed" {
			unitsSeen[l.Attrs["unit"]] = true
		}
	}
	if len(unitsSeen) != total {
		t.Fatalf("completed lease spans cover %d units, campaign has %d", len(unitsSeen), total)
	}

	if len(byName["fabric.work"]) != 1 {
		t.Fatalf("want 1 fabric.work span, got %d", len(byName["fabric.work"]))
	}
	work := byName["fabric.work"][0]
	unitIDs := map[obs.SpanID]bool{}
	for _, u := range byName["fabric.unit"] {
		if u.Parent != work.ID {
			t.Fatalf("unit span %d has parent %d, work is %d", u.ID, u.Parent, work.ID)
		}
		unitIDs[u.ID] = true
	}
	if len(unitIDs) != total {
		t.Fatalf("worker ran %d unit spans, campaign has %d units", len(unitIDs), total)
	}
	if len(byName["census.sweep"]) == 0 || len(byName["fabric.upload"]) == 0 {
		t.Fatalf("missing sweep/upload spans: sweeps=%d uploads=%d",
			len(byName["census.sweep"]), len(byName["fabric.upload"]))
	}
	for _, s := range byName["census.sweep"] {
		if !unitIDs[s.Parent] {
			t.Fatalf("sweep span %d not nested under a unit span (parent %d)", s.ID, s.Parent)
		}
	}
	for _, s := range byName["fabric.upload"] {
		if !unitIDs[s.Parent] {
			t.Fatalf("upload span %d not nested under a unit span (parent %d)", s.ID, s.Parent)
		}
	}
}

// TestCoordinatorMetricsExposition: the /metrics endpoint serves the
// campaign gauges, the merge/lease families, and — via the included
// process-global registry — the runtime and census families.
func TestCoordinatorMetricsExposition(t *testing.T) {
	camp := Campaign{N: 3, Orbits: true}
	st, err := store.Create(t.TempDir(), camp.N)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c, srv, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 64})
	if _, err := Work(WorkerOptions{
		BaseURL: srv.URL, ID: "w0", Workers: 1, TempDir: t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
	<-c.Done()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, series := range []string{
		"factool_fabric_units_total",
		"factool_fabric_units_done",
		"factool_fabric_units_pending",
		"factool_fabric_requeues_total",
		"factool_fabric_store_entries",
		"factool_fabric_merged_bytes_total",
		`factool_fabric_leases_total{event="granted"}`,
		"factool_fabric_merge_seconds_count",
		"factool_fabric_requests_total",
		"factool_fabric_inflight_requests",
		// Included from the process-global registry.
		"factool_census_indices_examined_total",
		"go_goroutines",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// The drained campaign's gauges reflect completion.
	done := fmt.Sprintf("factool_fabric_units_done %d", c.Status().Units.Total)
	if !strings.Contains(text, done) {
		t.Errorf("exposition missing %q:\n%s", done, text)
	}
	if strings.Contains(text, "factool_fabric_merged_bytes_total 0\n") {
		t.Error("merged bytes still zero after completed campaign")
	}
}

// TestCoordinatorDrainNoGoroutineLeak: a full campaign lifecycle —
// serve, drain by a worker, shut down — returns the process to its
// baseline goroutine count. Guards against leaked per-lease timers or
// merge goroutines surviving coordinator shutdown.
func TestCoordinatorDrainNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	camp := Campaign{N: 3, Orbits: true}
	st, err := store.Create(t.TempDir(), camp.N)
	if err != nil {
		t.Fatal(err)
	}
	c, srv, _ := coordOver(t, st, camp, CoordinatorOptions{UnitSize: 64})
	if _, err := Work(WorkerOptions{
		BaseURL: srv.URL, ID: "w0", Workers: 2, TempDir: t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
	<-c.Done()
	srv.Close()
	st.Close()
	http.DefaultClient.CloseIdleConnections()

	// Goroutines wind down asynchronously; poll with a deadline.
	deadline := time.Now().Add(5 * time.Second)
	slack := 3
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines: baseline %d, now %d after drain+shutdown\n%s",
				baseline, runtime.NumGoroutine(), buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
