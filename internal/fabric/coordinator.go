package fabric

// The coordinator half of the fabric: lease bookkeeping over the unit
// partition, the v1 lease protocol handlers, shard validation, and the
// conflict-checked fold into the store ledger.

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tasks"
)

// CoordinatorOptions tune a campaign coordinator.
type CoordinatorOptions struct {
	// UnitSize is the ranks per unit (orbit mode) or raw indices per
	// unit (full mode). <= 0 selects 2048 ranks / 65536 indices.
	UnitSize uint64

	// TTL is the default lease duration when an acquire does not
	// request one; requested TTLs are capped at 10×. <= 0 selects 60s.
	TTL time.Duration

	// SpoolDir receives uploaded shards before validation and merge.
	// Empty selects the system temp directory.
	SpoolDir string

	// MaxShardBytes caps one uploaded (compressed) shard. <= 0
	// selects 1 GiB.
	MaxShardBytes int64

	// Auth, when non-nil, requires a valid API key on every /v1
	// request. Probe endpoints stay open.
	Auth *api.AuthConfig

	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog io.Writer

	// Log, when non-nil, receives one line per campaign event (lease
	// granted / expired+requeued / completed / conflict).
	Log io.Writer

	// Tracer records the campaign's spans (fabric.campaign →
	// fabric.lease → fabric.merge). Nil selects obs.DefaultTracer.
	Tracer *obs.Tracer

	// now overrides the clock (lease-expiry tests).
	now func() time.Time
}

// unitStatus is the ledger state of one unit.
type unitStatus int

const (
	unitPending unitStatus = iota
	unitLeased
	unitDone
)

// unitState is one unit's ledger row.
type unitState struct {
	Unit
	status   unitStatus
	holder   string // lease id while leased
	attempts int    // leases granted for this unit
	conflict string // non-empty: a completion conflicted with the ledger
}

// lease is one granted lease. Records are kept for the life of the
// process — a completion arriving after expiry (or even after another
// worker completed the unit) still folds in through the
// conflict-checked merge.
type lease struct {
	id       string
	unitID   int
	worker   string
	ttl      time.Duration
	deadline time.Time
	done     bool
	released bool
	expired  bool
	span     *obs.ActiveSpan // fabric.lease, ended at complete/expire/release
}

// workerStat aggregates one worker id's activity for /v1/fabric/status.
type workerStat struct {
	Leases    int   `json:"leases"`
	Completed int   `json:"completed"`
	LastSeen  int64 `json:"last_seen_unix"`
}

// fabricMetrics is the coordinator's metric set.
type fabricMetrics struct {
	http         *api.HTTPMetrics
	leases       *api.CounterVec // event: granted|renewed|completed|expired|released|conflict
	mergeSeconds *api.Histogram
	mergedBytes  *obs.Counter
}

func newFabricMetrics() *fabricMetrics {
	return &fabricMetrics{
		http:   api.NewHTTPMetrics("factool_fabric"),
		leases: api.NewCounterVec("factool_fabric_leases_total", "Lease lifecycle events by kind.", "event"),
		mergeSeconds: api.NewHistogram("factool_fabric_merge_seconds",
			"Shard validate+merge latency in seconds.", api.DefaultLatencyBuckets),
		mergedBytes: obs.NewCounter("factool_fabric_merged_bytes_total",
			"Compressed shard bytes folded into the ledger store."),
	}
}

// Coordinator runs one campaign: it leases units to workers and folds
// completed shards into the store. Create with NewCoordinator, serve
// Handler; all methods are safe for concurrent use.
type Coordinator struct {
	st       *store.Store
	camp     Campaign
	opts     CoordinatorOptions
	mw       *api.Middleware
	m        *fabricMetrics
	reg      *obs.Registry
	tracer   *obs.Tracer
	campSpan *obs.ActiveSpan
	started  time.Time

	mu        sync.Mutex
	units     []*unitState
	pending   []int // unit ids awaiting a lease, FIFO (requeues at the front)
	leases    map[string]*lease
	workers   map[string]*workerStat
	leaseSeq  uint64
	epoch     string
	doneUnits int
	requeues  uint64
	conflicts int

	doneOnce sync.Once
	doneCh   chan struct{}
}

// NewCoordinator builds a coordinator over an open store. A non-empty
// store must match the campaign's kind; its resident entries are
// recovered as ledger state (fully-covered units never lease again),
// which is how an interrupted campaign resumes.
func NewCoordinator(st *store.Store, camp Campaign, opts CoordinatorOptions) (*Coordinator, error) {
	if st == nil {
		return nil, errors.New("fabric: nil store")
	}
	if err := camp.normalize(); err != nil {
		return nil, err
	}
	if st.N() != camp.N {
		return nil, fmt.Errorf("fabric: store is n=%d, campaign is n=%d", st.N(), camp.N)
	}
	if st.Stats().Entries > 0 {
		if st.Orbits() != camp.Orbits {
			return nil, fmt.Errorf("fabric: store orbit mode %v, campaign %v", st.Orbits(), camp.Orbits)
		}
		if st.SolveMode() != camp.Solve {
			return nil, fmt.Errorf("fabric: store solve mode %v, campaign %v", st.SolveMode(), camp.Solve)
		}
	}
	// Bind the campaign's task spec into the manifest up front: a store
	// answering a different task refuses here (before any unit leases),
	// and a fresh store records which task its verdicts will answer —
	// `factool store verify` re-derives solve entries from that record.
	if camp.Solve {
		if err := st.BindTaskSpec(camp.Task); err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
	}
	if opts.UnitSize == 0 {
		if camp.Orbits {
			opts.UnitSize = 2048
		} else {
			opts.UnitSize = 1 << 16
		}
	}
	if opts.TTL <= 0 {
		opts.TTL = 60 * time.Second
	}
	if opts.SpoolDir == "" {
		opts.SpoolDir = os.TempDir()
	}
	if opts.MaxShardBytes <= 0 {
		opts.MaxShardBytes = 1 << 30
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	units, err := PartitionUnits(camp, opts.UnitSize)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		st:      st,
		camp:    camp,
		opts:    opts,
		m:       newFabricMetrics(),
		started: opts.now(),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerStat),
		epoch:   fmt.Sprintf("%08x", uint32(time.Now().UnixNano())),
		doneCh:  make(chan struct{}),
	}
	c.mw = api.NewMiddleware(api.MiddlewareOptions{
		Metrics:   c.m.http,
		Auth:      opts.Auth,
		AccessLog: opts.AccessLog,
	})
	c.tracer = opts.Tracer
	if c.tracer == nil {
		c.tracer = obs.DefaultTracer
	}
	// Per-instance registry: the coordinator's own families plus the
	// process-global ones (census, solver, runtime), so one scrape of
	// /metrics sees the whole campaign — and two coordinators in one
	// test process never collide on registration.
	c.reg = obs.NewRegistry()
	c.reg.MustRegister("fabric-http", c.m.http)
	c.reg.MustRegister("fabric-leases", c.m.leases)
	c.reg.MustRegister("fabric-merge-seconds", c.m.mergeSeconds)
	c.reg.MustRegister("fabric-merged-bytes", c.m.mergedBytes)
	c.reg.MustRegister("fabric-campaign", obs.CollectorFunc(c.writeCampaignGauges))
	c.reg.Include(obs.Default)
	c.campSpan = c.tracer.Start("fabric.campaign", 0,
		"n", fmt.Sprint(camp.N),
		"orbits", fmt.Sprint(camp.Orbits),
		"solve", fmt.Sprint(camp.Solve),
		"units", fmt.Sprint(len(units)))
	for _, u := range units {
		c.units = append(c.units, &unitState{Unit: u})
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	for _, us := range c.units {
		if us.status != unitDone {
			c.pending = append(c.pending, us.ID)
		}
	}
	if c.doneUnits == len(c.units) {
		c.markDone()
		c.logf("campaign already complete: %d units resident in the store", c.doneUnits)
	} else {
		c.logf("campaign open: %d/%d units resident, %d to sweep",
			c.doneUnits, len(c.units), len(c.units)-c.doneUnits)
	}
	return c, nil
}

// recover replays the store into the ledger: one range walk counts the
// entries resident in each unit; a unit holding its full complement is
// done. (Partial counts stay pending — the re-sweep's entries merge as
// byte-identical duplicates.)
func (c *Coordinator) recover() error {
	if c.st.Stats().Entries == 0 {
		return nil
	}
	ui := 0
	counts := make([]uint64, len(c.units))
	from := uint64(0)
	for {
		page, err := c.st.Range(from, c.units[len(c.units)-1].Hi, 4096)
		if err != nil {
			return fmt.Errorf("fabric: recovering ledger: %w", err)
		}
		for _, idx := range page.Indices {
			for ui < len(c.units) && idx >= c.units[ui].Hi {
				ui++
			}
			if ui == len(c.units) {
				break
			}
			counts[ui]++
		}
		if !page.More {
			break
		}
		from = page.Next
	}
	for i, us := range c.units {
		if counts[i] == us.Ranks {
			us.status = unitDone
			c.doneUnits++
		}
	}
	return nil
}

// Done is closed once every unit's entries are resident in the store.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// markDone closes the done channel and ends the campaign span, once.
func (c *Coordinator) markDone() {
	c.doneOnce.Do(func() {
		close(c.doneCh)
		c.campSpan.End()
	})
}

// Registry exposes the coordinator's telemetry registry (its own
// families plus the included process-global ones) so a -debug-addr
// surface can serve the same exposition as /metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// logf writes one campaign event line.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Log == nil {
		return
	}
	fmt.Fprintf(c.opts.Log, "fabric: "+format+"\n", args...)
}

// Handler returns the coordinator's HTTP surface, wrapped in the
// shared request-id / metrics / logging / auth middleware.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/leases", c.handleAcquire)
	mux.HandleFunc("POST /v1/leases/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/leases/{id}/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/leases/{id}/release", c.handleRelease)
	mux.HandleFunc("GET /v1/fabric/status", c.handleStatus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c.mw.Wrap(mux)
}

// expireLocked lapses every overdue lease, requeueing units still held
// by one. Requeued units go to the front of the queue so stragglers
// don't starve behind fresh work. Callers hold c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, l := range c.leases {
		if l.done || l.released || l.expired || now.Before(l.deadline) {
			continue
		}
		l.expired = true
		c.m.leases.With("expired").Add(1)
		l.span.SetAttr("outcome", "expired")
		l.span.End()
		us := c.units[l.unitID]
		if us.status == unitLeased && us.holder == l.id {
			us.status = unitPending
			us.holder = ""
			c.pending = append([]int{us.ID}, c.pending...)
			c.requeues++
			c.logf("lease %s expired; unit %d [%d,%d) requeued (worker %s)",
				l.id, us.ID, us.Lo, us.Hi, l.worker)
		}
	}
}

// acquireRequest is the POST /v1/leases body. Task, when non-empty, is
// the spec the worker expects to sweep — a campaign deciding a
// different task answers 409 instead of leasing.
type acquireRequest struct {
	Worker string `json:"worker"`
	TTLSec int    `json:"ttl_sec,omitempty"`
	Task   string `json:"task,omitempty"`
}

// leaseInfo describes a granted lease to its worker.
type leaseInfo struct {
	ID       string   `json:"id"`
	Unit     Unit     `json:"unit"`
	Campaign Campaign `json:"campaign"`
	TTLSec   int      `json:"ttl_sec"`
}

// leaseResponse is the acquire envelope: a lease, a wait hint, or the
// campaign-done signal.
type leaseResponse struct {
	Status   string     `json:"status"` // lease | wait | done
	RetrySec int        `json:"retry_sec,omitempty"`
	Lease    *leaseInfo `json:"lease,omitempty"`
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		api.Error(w, r, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Worker == "" {
		api.Error(w, r, http.StatusBadRequest, "missing worker id")
		return
	}
	if req.Task != "" {
		spec, err := tasks.ParseSpec(req.Task)
		if err != nil {
			api.Error(w, r, http.StatusBadRequest, "bad task %q: %v", req.Task, err)
			return
		}
		if spec.String() != c.camp.Task {
			campaignTask := c.camp.Task
			if campaignTask == "" {
				campaignTask = "none (classification campaign)"
			}
			api.Error(w, r, http.StatusConflict, "worker %s sweeps task %s, campaign decides %s",
				req.Worker, spec, campaignTask)
			return
		}
	}
	ttl := c.opts.TTL
	if req.TTLSec > 0 {
		ttl = time.Duration(req.TTLSec) * time.Second
		if max := 10 * c.opts.TTL; ttl > max {
			ttl = max
		}
	}
	now := c.opts.now()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	c.touchWorkerLocked(req.Worker, now)
	if len(c.pending) == 0 {
		if c.doneUnits == len(c.units) {
			api.WriteJSON(w, leaseResponse{Status: "done"})
			return
		}
		retry := int(c.opts.TTL / 4 / time.Second)
		if retry < 1 {
			retry = 1
		}
		api.WriteJSON(w, leaseResponse{Status: "wait", RetrySec: retry})
		return
	}
	us := c.units[c.pending[0]]
	c.pending = c.pending[1:]
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("%s-%06d", c.epoch, c.leaseSeq),
		unitID:   us.ID,
		worker:   req.Worker,
		ttl:      ttl,
		deadline: now.Add(ttl),
	}
	l.span = c.tracer.Start("fabric.lease", c.campSpan.ID(),
		"lease", l.id,
		"unit", fmt.Sprint(us.ID),
		"worker", req.Worker,
		"attempt", fmt.Sprint(us.attempts+1))
	c.leases[l.id] = l
	us.status = unitLeased
	us.holder = l.id
	us.attempts++
	c.workers[req.Worker].Leases++
	c.m.leases.With("granted").Add(1)
	c.logf("lease %s: unit %d [%d,%d) %d ranks -> worker %s (ttl %s, attempt %d)",
		l.id, us.ID, us.Lo, us.Hi, us.Ranks, req.Worker, ttl, us.attempts)
	api.WriteJSON(w, leaseResponse{Status: "lease", Lease: &leaseInfo{
		ID:       l.id,
		Unit:     us.Unit,
		Campaign: c.camp,
		TTLSec:   int(ttl / time.Second),
	}})
}

// touchWorkerLocked records worker liveness. Callers hold c.mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerStat {
	ws, ok := c.workers[id]
	if !ok {
		ws = &workerStat{}
		c.workers[id] = ws
	}
	ws.LastSeen = now.Unix()
	return ws
}

// leaseByID resolves a path id. Callers hold c.mu.
func (c *Coordinator) leaseByID(w http.ResponseWriter, r *http.Request) (*lease, bool) {
	l, ok := c.leases[r.PathValue("id")]
	if !ok {
		api.Error(w, r, http.StatusNotFound, "unknown lease %q", r.PathValue("id"))
		return nil, false
	}
	return l, true
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	now := c.opts.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leaseByID(w, r)
	if !ok {
		return
	}
	c.touchWorkerLocked(l.worker, now)
	if l.done {
		api.WriteJSON(w, map[string]string{"status": "completed"})
		return
	}
	if l.expired || l.released {
		api.Error(w, r, http.StatusGone, "lease %s is no longer held (expired or released)", l.id)
		return
	}
	l.deadline = now.Add(l.ttl)
	c.m.leases.With("renewed").Add(1)
	api.WriteJSON(w, map[string]any{"status": "ok", "deadline_unix": l.deadline.Unix()})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	now := c.opts.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leaseByID(w, r)
	if !ok {
		return
	}
	c.touchWorkerLocked(l.worker, now)
	if !l.done && !l.released && !l.expired {
		l.released = true
		l.span.SetAttr("outcome", "released")
		l.span.End()
		us := c.units[l.unitID]
		if us.status == unitLeased && us.holder == l.id {
			us.status = unitPending
			us.holder = ""
			c.pending = append([]int{us.ID}, c.pending...)
			c.logf("lease %s released; unit %d requeued (worker %s)", l.id, us.ID, l.worker)
		}
		c.m.leases.With("released").Add(1)
	}
	api.WriteJSON(w, map[string]string{"status": "ok"})
}

// completeResponse acknowledges a folded shard.
type completeResponse struct {
	Status     string `json:"status"`
	Added      uint64 `json:"added"`
	Duplicates uint64 `json:"duplicates"`
	UnitsDone  int    `json:"units_done"`
	UnitsTotal int    `json:"units_total"`
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	l, ok := c.leaseByID(w, r)
	if !ok {
		c.mu.Unlock()
		return
	}
	unit := c.units[l.unitID].Unit
	c.touchWorkerLocked(l.worker, c.opts.now())
	c.mu.Unlock()

	// Spool, validate and merge outside the ledger lock: merges are
	// the slow path and the store serializes them itself.
	spool, shardBytes, err := c.spoolShard(r.Body)
	if spool != "" {
		defer os.Remove(spool)
	}
	if err != nil {
		api.Error(w, r, http.StatusBadRequest, "reading shard: %v", err)
		return
	}
	t0 := time.Now()
	mergeSpan := c.tracer.Start("fabric.merge", l.span.ID(),
		"unit", fmt.Sprint(unit.ID), "bytes", fmt.Sprint(shardBytes))
	if err := validateShard(spool, unit); err != nil {
		mergeSpan.SetAttr("outcome", "invalid")
		mergeSpan.End()
		api.Error(w, r, http.StatusBadRequest, "lease %s unit %d: %v", l.id, unit.ID, err)
		return
	}
	stats, err := c.st.Merge([]string{spool}, store.MergeOptions{})
	c.m.mergeSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		status := http.StatusInternalServerError
		outcome := "error"
		if errors.Is(err, store.ErrConflict) || errors.Is(err, store.ErrKindMismatch) {
			status = http.StatusConflict
			outcome = "conflict"
			c.mu.Lock()
			c.units[l.unitID].conflict = err.Error()
			c.conflicts++
			c.mu.Unlock()
			c.m.leases.With("conflict").Add(1)
			c.logf("lease %s: unit %d CONFLICT: %v", l.id, unit.ID, err)
		}
		mergeSpan.SetAttr("outcome", outcome)
		mergeSpan.End()
		api.Error(w, r, status, "merging unit %d: %v", unit.ID, err)
		return
	}
	c.m.mergedBytes.Add(uint64(shardBytes))
	mergeSpan.SetAttr("added", fmt.Sprint(stats.Added))
	mergeSpan.SetAttr("duplicates", fmt.Sprint(stats.Duplicates))
	mergeSpan.End()

	now := c.opts.now()
	c.mu.Lock()
	l.done = true
	us := c.units[l.unitID]
	if us.status != unitDone {
		us.status = unitDone
		us.holder = ""
		c.doneUnits++
		// The unit may sit in the pending queue (expiry requeued it
		// before this late completion landed) — drop it.
		for i, id := range c.pending {
			if id == us.ID {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	if ws := c.touchWorkerLocked(l.worker, now); true {
		ws.Completed++
	}
	done, total := c.doneUnits, len(c.units)
	c.mu.Unlock()
	c.m.leases.With("completed").Add(1)
	l.span.SetAttr("outcome", "completed")
	l.span.End()
	c.logf("lease %s: unit %d completed by %s (added %d, duplicates %d) [%d/%d]",
		l.id, unit.ID, l.worker, stats.Added, stats.Duplicates, done, total)
	if done == total {
		c.markDone()
		c.logf("campaign complete: %d units, %d entries in the store", total, c.st.Stats().Entries)
	}
	api.WriteJSON(w, completeResponse{
		Status: "ok", Added: stats.Added, Duplicates: stats.Duplicates,
		UnitsDone: done, UnitsTotal: total,
	})
}

// spoolShard copies an upload to disk, enforcing the size cap. It
// returns the spool path and the compressed byte count received.
func (c *Coordinator) spoolShard(body io.Reader) (string, int64, error) {
	f, err := os.CreateTemp(c.opts.SpoolDir, "fabric-shard-*.jsonl.gz")
	if err != nil {
		return "", 0, err
	}
	n, err := io.Copy(f, io.LimitReader(body, c.opts.MaxShardBytes+1))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return f.Name(), n, err
	}
	if n > c.opts.MaxShardBytes {
		return f.Name(), n, fmt.Errorf("shard exceeds the %d-byte cap", c.opts.MaxShardBytes)
	}
	return f.Name(), n, nil
}

// validateShard checks an uploaded shard covers its unit exactly:
// strictly increasing indices inside [Lo, Hi), and the unit's full
// complement of entries — a short sweep or a shard for the wrong range
// is rejected before it can poison the ledger.
func validateShard(path string, u Unit) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rd io.Reader = bufio.NewReaderSize(f, 1<<16)
	if br := rd.(*bufio.Reader); true {
		if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
			gz, err := gzip.NewReader(br)
			if err != nil {
				return fmt.Errorf("inflating shard: %w", err)
			}
			defer gz.Close()
			rd = gz
		}
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var count uint64
	last := uint64(0)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Index *uint64 `json:"index"`
		}
		if err := json.Unmarshal(line, &probe); err != nil || probe.Index == nil {
			return fmt.Errorf("shard line %d: not a census entry", count+1)
		}
		idx := *probe.Index
		if idx < u.Lo || idx >= u.Hi {
			return fmt.Errorf("shard entry %d outside the unit range [%d, %d)", idx, u.Lo, u.Hi)
		}
		if count > 0 && idx <= last {
			return fmt.Errorf("shard indices not strictly increasing at %d", idx)
		}
		last = idx
		count++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("scanning shard: %w", err)
	}
	if count != u.Ranks {
		return fmt.Errorf("shard holds %d entries, unit needs %d", count, u.Ranks)
	}
	return nil
}

// StatusResponse is the GET /v1/fabric/status envelope.
type StatusResponse struct {
	Campaign Campaign `json:"campaign"`
	Units    struct {
		Total    int `json:"total"`
		Done     int `json:"done"`
		Leased   int `json:"leased"`
		Pending  int `json:"pending"`
		Conflict int `json:"conflict"`
	} `json:"units"`
	UnitSize     uint64                 `json:"unit_size"`
	Requeues     uint64                 `json:"requeues"`
	StoreEntries uint64                 `json:"store_entries"`
	Workers      map[string]*workerStat `json:"workers"`
	Done         bool                   `json:"done"`
	UptimeSec    int64                  `json:"uptime_sec"`
}

// Status snapshots campaign progress (also the /v1/fabric/status body).
func (c *Coordinator) Status() StatusResponse {
	now := c.opts.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	resp := StatusResponse{
		Campaign:     c.camp,
		UnitSize:     c.opts.UnitSize,
		Requeues:     c.requeues,
		StoreEntries: c.st.Stats().Entries,
		Workers:      make(map[string]*workerStat, len(c.workers)),
		Done:         c.doneUnits == len(c.units),
		UptimeSec:    int64(now.Sub(c.started).Seconds()),
	}
	resp.Units.Total = len(c.units)
	for _, us := range c.units {
		switch us.status {
		case unitDone:
			resp.Units.Done++
		case unitLeased:
			resp.Units.Leased++
		default:
			resp.Units.Pending++
		}
		if us.conflict != "" {
			resp.Units.Conflict++
		}
	}
	for id, ws := range c.workers {
		cp := *ws
		resp.Workers[id] = &cp
	}
	return resp
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, c.Status())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	done, total := c.doneUnits, len(c.units)
	c.mu.Unlock()
	api.WriteJSON(w, map[string]any{
		"status":      "ok",
		"units_done":  done,
		"units_total": total,
		"uptime_sec":  int64(c.opts.now().Sub(c.started).Seconds()),
	})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, map[string]string{"status": "ready"})
}

// writeCampaignGauges derives the campaign progress gauges from one
// Status snapshot at scrape time (registered as a collector in c.reg).
func (c *Coordinator) writeCampaignGauges(w io.Writer) {
	st := c.Status()
	api.WriteGauge(w, "factool_fabric_units_total", "Work units in the campaign.", int64(st.Units.Total))
	api.WriteGauge(w, "factool_fabric_units_done", "Work units whose entries are resident in the store.", int64(st.Units.Done))
	api.WriteGauge(w, "factool_fabric_units_leased", "Work units currently leased.", int64(st.Units.Leased))
	api.WriteGauge(w, "factool_fabric_units_pending", "Work units awaiting a lease.", int64(st.Units.Pending))
	api.WriteGauge(w, "factool_fabric_units_conflict", "Work units with a conflicting completion.", int64(st.Units.Conflict))
	api.WriteGauge(w, "factool_fabric_requeues_total", "Units requeued after lease expiry.", int64(st.Requeues))
	api.WriteGauge(w, "factool_fabric_store_entries", "Entries resident in the ledger store.", int64(st.StoreEntries))
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WritePrometheus(w)
}
