package fabric

// The worker half of the fabric: an acquire → sweep → upload loop over
// the coordinator's lease protocol, built on census.SweepRange.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/census"
	"repro/internal/chromatic"
	"repro/internal/obs"
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	// BaseURL locates the coordinator, e.g. "http://host:8080".
	BaseURL string

	// ID names this worker in leases and status. Empty is rejected —
	// `factool work` defaults it to hostname-pid.
	ID string

	// APIKey, when non-empty, is sent as a Bearer token.
	APIKey string

	// TaskSpec, when non-empty, is the task spec this worker expects
	// the campaign to decide; it is announced on acquire and a
	// coordinator sweeping a different spec rejects the worker instead
	// of handing it units it was not provisioned for.
	TaskSpec string

	// Workers is the sweep worker-pool size per unit (census
	// Options.Workers). <= 0 selects one per CPU.
	Workers int

	// CacheBytes bounds the worker-lifetime tower cache shared across
	// units. <= 0 means unbounded.
	CacheBytes int64

	// TTLSec is the lease TTL this worker requests. <= 0 accepts the
	// coordinator's default.
	TTLSec int

	// TempDir spools shard files mid-sweep. Empty selects the system
	// temp directory.
	TempDir string

	// MaxUnits, when > 0, stops after completing that many units
	// (smoke tests and canary runs).
	MaxUnits int

	// Stop interrupts the worker when closed: the in-flight lease is
	// released and Work returns cleanly.
	Stop <-chan struct{}

	// Log, when non-nil, receives one line per worker event.
	Log io.Writer

	// Client overrides the HTTP client (tests). Nil selects a client
	// with no overall timeout — shard uploads of long units are slow.
	Client *http.Client

	// MaxBackoff caps the transport-error retry backoff. <= 0
	// selects 15s.
	MaxBackoff time.Duration

	// MaxOutage, when > 0, bounds how long the worker keeps retrying
	// an unreachable coordinator before giving up. 0 retries forever —
	// the durable-campaign default, where workers are expected to ride
	// out coordinator restarts.
	MaxOutage time.Duration

	// AcquireHook, when non-nil, observes every granted lease before
	// its sweep starts (k counts grants, from 1). A non-nil error
	// aborts the worker with the lease still held — the crash-mid-lease
	// hook behind `factool work -crash-after`.
	AcquireHook func(k int, leaseID string, u Unit) error

	// Registry, when non-nil, receives the worker's metric families
	// (units by outcome, uploaded entries/bytes, renew heartbeats,
	// backoff and outage state) — `factool work -debug-addr` passes
	// its debug registry here. Nil skips registration; the families
	// are still counted, just not exposed.
	Registry *obs.Registry

	// Tracer records the worker's spans (fabric.work → fabric.unit →
	// census.sweep → fabric.upload). Nil selects obs.DefaultTracer.
	Tracer *obs.Tracer
}

// workerMetrics is one Work call's metric set. Instantiated per call
// (not package-global) so concurrent workers in one test process stay
// independent; registration into a Registry is opt-in.
type workerMetrics struct {
	units       *obs.CounterVec // result: completed|lost|stopped
	entries     *obs.Counter
	uploadBytes *obs.Counter
	renews      *obs.Counter
	acquireFail *obs.Counter
	backoffSec  *obs.Gauge
	outage      *obs.Gauge
}

func newWorkerMetrics() *workerMetrics {
	return &workerMetrics{
		units: obs.NewCounterVec("factool_worker_units_total",
			"Leased units by outcome.", "result"),
		entries: obs.NewCounter("factool_worker_entries_total",
			"Census entries uploaded across completed units."),
		uploadBytes: obs.NewCounter("factool_worker_upload_bytes_total",
			"Compressed shard bytes uploaded."),
		renews: obs.NewCounter("factool_worker_renews_total",
			"Successful lease renewal heartbeats."),
		acquireFail: obs.NewCounter("factool_worker_acquire_failures_total",
			"Acquire attempts that failed at the transport."),
		backoffSec: obs.NewGauge("factool_worker_backoff_seconds",
			"Current acquire retry backoff (0 while healthy)."),
		outage: obs.NewGauge("factool_worker_outage",
			"1 while the coordinator is unreachable."),
	}
}

func (m *workerMetrics) register(reg *obs.Registry) {
	reg.MustRegister("worker-units", m.units)
	reg.MustRegister("worker-entries", m.entries)
	reg.MustRegister("worker-upload-bytes", m.uploadBytes)
	reg.MustRegister("worker-renews", m.renews)
	reg.MustRegister("worker-acquire-failures", m.acquireFail)
	reg.MustRegister("worker-backoff", m.backoffSec)
	reg.MustRegister("worker-outage", m.outage)
}

// WorkerStats summarize one Work call.
type WorkerStats struct {
	Units   int    // units completed
	Entries uint64 // entries uploaded across them
}

var (
	errStopped   = errors.New("fabric: worker stopped")
	errLeaseLost = errors.New("fabric: lease lost")
)

// Work runs the worker loop until the campaign reports done, Stop
// closes, or MaxUnits is reached. Transport errors back off and retry
// (a coordinator restart is survivable mid-campaign); protocol errors
// — a conflicting or invalid shard — are fatal.
func Work(opts WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if opts.BaseURL == "" {
		return stats, errors.New("fabric: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		return stats, errors.New("fabric: worker needs an id")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 15 * time.Second
	}
	if opts.Tracer == nil {
		opts.Tracer = obs.DefaultTracer
	}
	w := &worker{opts: opts, m: newWorkerMetrics()}
	if opts.Registry != nil {
		w.m.register(opts.Registry)
	}
	w.workSpan = opts.Tracer.Start("fabric.work", 0, "worker", opts.ID)
	defer w.workSpan.End()
	w.logf("worker %s: joining campaign at %s", opts.ID, opts.BaseURL)

	backoff := time.Second
	var outageStart time.Time
	grants := 0
	for {
		select {
		case <-opts.Stop:
			return stats, nil
		default:
		}
		resp, err := w.acquire()
		if err != nil {
			w.m.acquireFail.Inc()
			w.m.outage.Set(1)
			w.m.backoffSec.Set(int64(backoff / time.Second))
			if outageStart.IsZero() {
				outageStart = time.Now()
			}
			if opts.MaxOutage > 0 && time.Since(outageStart) > opts.MaxOutage {
				return stats, fmt.Errorf("fabric: coordinator unreachable for %s: %w", opts.MaxOutage, err)
			}
			w.logf("worker %s: acquire failed (%v); retrying in %s", opts.ID, err, backoff)
			if !w.sleep(backoff) {
				return stats, nil
			}
			backoff = min(backoff*2, opts.MaxBackoff)
			continue
		}
		backoff = time.Second
		outageStart = time.Time{}
		w.m.outage.Set(0)
		w.m.backoffSec.Set(0)
		switch resp.Status {
		case "done":
			w.logf("worker %s: campaign complete (%d units, %d entries this worker)",
				opts.ID, stats.Units, stats.Entries)
			return stats, nil
		case "wait":
			retry := time.Duration(resp.RetrySec) * time.Second
			if retry <= 0 {
				retry = time.Second
			}
			if !w.sleep(retry) {
				return stats, nil
			}
			continue
		case "lease":
		default:
			return stats, fmt.Errorf("fabric: unknown acquire status %q", resp.Status)
		}

		l := resp.Lease
		grants++
		if opts.AcquireHook != nil {
			if err := opts.AcquireHook(grants, l.ID, l.Unit); err != nil {
				return stats, err
			}
		}
		entries, campaignDone, err := w.runUnit(l)
		switch {
		case err == nil:
			w.m.units.With("completed").Add(1)
			w.m.entries.Add(entries)
			stats.Units++
			stats.Entries += entries
			if campaignDone {
				// This upload finished the campaign: exit now rather
				// than racing an -exit-on-complete coordinator's drain.
				w.logf("worker %s: campaign complete (%d units, %d entries this worker)",
					opts.ID, stats.Units, stats.Entries)
				return stats, nil
			}
			if opts.MaxUnits > 0 && stats.Units >= opts.MaxUnits {
				w.logf("worker %s: unit budget reached (%d)", opts.ID, stats.Units)
				return stats, nil
			}
		case errors.Is(err, errStopped):
			w.m.units.With("stopped").Add(1)
			return stats, nil
		case errors.Is(err, errLeaseLost):
			w.m.units.With("lost").Add(1)
			// Expired under us, or the upload 404'd after a coordinator
			// restart: the unit is someone else's now, just re-acquire.
			w.logf("worker %s: lease %s lost; re-acquiring", opts.ID, l.ID)
		default:
			return stats, err
		}
	}
}

// worker carries the loop state shared by Work's helpers.
type worker struct {
	opts     WorkerOptions
	cache    *chromatic.TowerCache
	m        *workerMetrics
	workSpan *obs.ActiveSpan
}

func (w *worker) logf(format string, args ...any) {
	if w.opts.Log == nil {
		return
	}
	fmt.Fprintf(w.opts.Log, "fabric: "+format+"\n", args...)
}

// sleep waits d or until Stop; false means stopped.
func (w *worker) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-w.opts.Stop:
		return false
	}
}

// post sends one JSON request and decodes the response into out (when
// non-nil). Non-2xx statuses surface as *protocolError.
func (w *worker) post(path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(http.MethodPost, w.opts.BaseURL+path, rd)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

// protocolError is a non-2xx coordinator response.
type protocolError struct {
	status int
	body   string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("fabric: coordinator returned %d: %s", e.status, e.body)
}

func (w *worker) do(req *http.Request, out any) error {
	if req.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.opts.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+w.opts.APIKey)
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return &protocolError{status: resp.StatusCode, body: string(bytes.TrimSpace(b))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (w *worker) acquire() (*leaseResponse, error) {
	var resp leaseResponse
	err := w.post("/v1/leases", acquireRequest{Worker: w.opts.ID, TTLSec: w.opts.TTLSec, Task: w.opts.TaskSpec}, &resp)
	if err != nil {
		return nil, err
	}
	if resp.Status == "lease" && resp.Lease == nil {
		return nil, errors.New("fabric: lease response without a lease")
	}
	return &resp, nil
}

// runUnit sweeps one leased unit into a gzip spool file, renewing the
// lease while the sweep runs, then uploads the shard. campaignDone
// reports that this very upload completed the campaign.
func (w *worker) runUnit(l *leaseInfo) (entries uint64, campaignDone bool, err error) {
	c := l.Campaign
	unitSpan := w.opts.Tracer.Start("fabric.unit", w.workSpan.ID(),
		"lease", l.ID, "unit", fmt.Sprint(l.Unit.ID))
	defer func() {
		switch {
		case err == nil:
			unitSpan.SetAttr("outcome", "completed")
		case errors.Is(err, errLeaseLost):
			unitSpan.SetAttr("outcome", "lost")
		case errors.Is(err, errStopped):
			unitSpan.SetAttr("outcome", "stopped")
		default:
			unitSpan.SetAttr("outcome", "error")
		}
		unitSpan.End()
	}()
	w.logf("worker %s: lease %s unit %d [%d,%d) %d ranks",
		w.opts.ID, l.ID, l.Unit.ID, l.Unit.Lo, l.Unit.Hi, l.Unit.Ranks)
	f, err := os.CreateTemp(w.opts.TempDir, "fabric-unit-*.jsonl.gz")
	if err != nil {
		return 0, false, err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	sink, err := census.NewJSONLSinkCompressed(path)
	if err != nil {
		return 0, false, err
	}

	// Renewal heartbeat: extend the lease at TTL/3 until the sweep
	// ends; a 404/410 renewal means the lease is gone — stop sweeping.
	lost := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	interval := time.Duration(l.TTLSec) * time.Second / 3
	if interval < 500*time.Millisecond {
		interval = 500 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				var pe *protocolError
				err := w.post("/v1/leases/"+l.ID+"/renew", nil, nil)
				if err == nil {
					w.m.renews.Inc()
				}
				if errors.As(err, &pe) && (pe.status == http.StatusNotFound || pe.status == http.StatusGone) {
					close(lost)
					return
				}
				// Transport errors: keep sweeping and let the upload
				// retry path sort it out.
			}
		}
	}()

	// unitStop folds the worker's Stop and a lost lease into the
	// sweep's stop channel.
	unitStop := make(chan struct{})
	go func() {
		select {
		case <-w.opts.Stop:
		case <-lost:
		case <-done:
			return
		}
		close(unitStop)
	}()

	if w.cache == nil && c.Solve {
		if w.opts.CacheBytes > 0 {
			w.cache = chromatic.NewTowerCacheWithBudget(w.opts.CacheBytes)
		} else {
			w.cache = chromatic.NewTowerCache()
		}
		if w.opts.Registry != nil {
			// Ignore a duplicate registration: one Work per registry is
			// the wiring, but a second call must degrade, not panic.
			_ = w.opts.Registry.Register("tower-cache", w.cache)
		}
	}
	sweep := census.Options{
		Workers:     w.opts.Workers,
		Orbits:      c.Orbits,
		Solve:       c.Solve,
		Task:        c.Task,
		KTask:       c.KTask,
		MaxRounds:   c.MaxRounds,
		Cache:       w.cache,
		Stop:        unitStop,
		Tracer:      w.opts.Tracer,
		TraceParent: unitSpan.ID(),
	}
	if c.Solve {
		sweep.Universe = chromatic.SharedUniverse(c.N)
	}
	rep, err := census.SweepRange(c.N, sweep, sink, l.Unit.Lo, l.Unit.Hi)
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, err
	}
	if rep.Incomplete {
		// Interrupted mid-unit: hand the lease back so the unit
		// requeues immediately instead of waiting out the TTL.
		w.post("/v1/leases/"+l.ID+"/release", nil, nil)
		select {
		case <-lost:
			return 0, false, errLeaseLost
		default:
			return 0, false, errStopped
		}
	}
	entries = rep.Summary.Total
	if c.Orbits {
		entries = rep.Summary.Orbits
	}
	campaignDone, err = w.upload(l, path, unitSpan.ID())
	if err != nil {
		return 0, false, err
	}
	return entries, campaignDone, nil
}

// upload posts the finished shard, retrying transport errors — the
// sweep work is done, so surviving a coordinator restart here is worth
// waiting for. A 404 means the restart forgot the lease (errLeaseLost:
// re-acquire and re-sweep); other protocol errors are fatal. done
// reports that this upload completed the campaign's last open unit.
func (w *worker) upload(l *leaseInfo, path string, parent obs.SpanID) (done bool, err error) {
	uploadSpan := w.opts.Tracer.Start("fabric.upload", parent, "unit", fmt.Sprint(l.Unit.ID))
	defer uploadSpan.End()
	if fi, err := os.Stat(path); err == nil {
		uploadSpan.SetAttr("bytes", fmt.Sprint(fi.Size()))
	}
	backoff := time.Second
	var outageStart time.Time
	for {
		f, err := os.Open(path)
		if err != nil {
			return false, err
		}
		req, err := http.NewRequest(http.MethodPost, w.opts.BaseURL+"/v1/leases/"+l.ID+"/complete", f)
		if err != nil {
			f.Close()
			return false, err
		}
		req.Header.Set("Content-Type", "application/gzip")
		var resp completeResponse
		err = w.do(req, &resp)
		f.Close()
		if err == nil {
			if fi, serr := os.Stat(path); serr == nil {
				w.m.uploadBytes.Add(uint64(fi.Size()))
			}
			w.logf("worker %s: unit %d uploaded (added %d, duplicates %d) [%d/%d]",
				w.opts.ID, l.Unit.ID, resp.Added, resp.Duplicates, resp.UnitsDone, resp.UnitsTotal)
			return resp.UnitsDone == resp.UnitsTotal, nil
		}
		var pe *protocolError
		if errors.As(err, &pe) {
			if pe.status == http.StatusNotFound {
				return false, errLeaseLost
			}
			return false, err
		}
		if outageStart.IsZero() {
			outageStart = time.Now()
		}
		if w.opts.MaxOutage > 0 && time.Since(outageStart) > w.opts.MaxOutage {
			return false, fmt.Errorf("fabric: coordinator unreachable for %s: %w", w.opts.MaxOutage, err)
		}
		w.logf("worker %s: upload of unit %d failed (%v); retrying in %s",
			w.opts.ID, l.Unit.ID, err, backoff)
		if !w.sleep(backoff) {
			return false, errStopped
		}
		backoff = min(backoff*2, w.opts.MaxBackoff)
	}
}
