package obs

// The -debug-addr surface: one mux carrying /metrics, the span dump,
// pprof and expvar, shared verbatim by every factool long-runner
// (serve, coordinate, work, census).

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux builds the debug surface over a registry and tracer:
//
//	/healthz        liveness (always 200 while the process serves)
//	/metrics        Prometheus text exposition of reg
//	/debug/trace    JSONL dump of the tracer's finished-span ring
//	/debug/pprof/*  net/http/pprof profiles
//	/debug/vars     expvar
//
// A nil reg defaults to Default; a nil tr defaults to DefaultTracer.
func DebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = DefaultTracer
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%d}\n", int64(time.Since(processStart)/time.Second))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// StartDebug listens on addr and serves DebugMux(reg, tr) in the
// background. It returns the bound address (useful with ":0") and a
// stop function that closes the listener. The debug surface is
// deliberately unauthenticated — bind it to loopback or a private
// interface.
func StartDebug(addr string, reg *Registry, tr *Tracer) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(reg, tr)}
	go srv.Serve(ln)
	stop := func() { srv.Close() }
	return ln.Addr().String(), stop, nil
}
