// Package obs is the dependency-free telemetry plane shared by every
// long-running process in the system: the census engine, the fabric
// coordinator and workers, the solver/tower-cache stack and the serve
// layer all feed the same three surfaces.
//
//   - Metrics: hand-rolled Prometheus text exposition (counters,
//     labeled counter families, fixed-bucket histograms, gauges)
//     collected through a named Registry. Package-global families
//     register into Default at init; per-instance surfaces (a
//     coordinator, a worker) build their own Registry and Include
//     Default so several instances can coexist in one process.
//   - Tracing: a lightweight span recorder (start/end, parent links,
//     string attrs) with a bounded ring of finished spans and optional
//     JSONL export, cheap enough to leave on for every campaign.
//   - Debug surface: DebugMux wires /metrics, /debug/trace,
//     net/http/pprof and expvar behind one -debug-addr listener.
//
// Everything here is stdlib-only by design — the telemetry plane must
// never be the reason a build grows a dependency.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Collector is anything that can emit itself in Prometheus text
// exposition format. All metric primitives in this package implement
// it, as does Registry itself (so registries nest via Include).
type Collector interface {
	WritePrometheus(w io.Writer)
}

// CollectorFunc adapts a function to the Collector interface. Use it
// for scrape-time gauge blocks that derive several samples from one
// snapshot of live state.
type CollectorFunc func(w io.Writer)

// WritePrometheus calls f.
func (f CollectorFunc) WritePrometheus(w io.Writer) { f(w) }

// Registry is an ordered, named set of collectors. Registration order
// is exposition order, and names make registration idempotent to
// detect: registering a duplicate name panics, which turns silent
// double-exports into loud test failures.
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Collector)}
}

// Register adds a named collector. Duplicate names error.
func (r *Registry) Register(name string, c Collector) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("obs: collector %q already registered", name)
	}
	r.byName[name] = c
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register that panics on duplicate names. Use it for
// static wiring where a duplicate is a programming error.
func (r *Registry) MustRegister(name string, c Collector) {
	if err := r.Register(name, c); err != nil {
		panic(err)
	}
}

// Unregister removes a named collector (no-op when absent).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return
	}
	delete(r.byName, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Include chains another registry into this one under its own slot:
// the included registry's collectors are written after this registry's
// own. Per-instance registries Include Default so process-global
// families appear on every instance's scrape without being registered
// (and thus name-collided) per instance.
func (r *Registry) Include(other *Registry) {
	r.MustRegister(fmt.Sprintf("include-%p", other), other)
}

// Names returns the registered collector names in exposition order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// WritePrometheus writes every collector in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	cs := make([]Collector, 0, len(r.order))
	for _, n := range r.order {
		cs = append(cs, r.byName[n])
	}
	r.mu.Unlock()
	for _, c := range cs {
		c.WritePrometheus(w)
	}
}

// Default is the process-global registry. Package-level metric
// families (census, solver, worker sweep counters) register here at
// init; per-instance registries Include it.
var Default = NewRegistry()

var processStart = time.Now()

func init() {
	Default.MustRegister("go-runtime", CollectorFunc(writeRuntime))
}

// writeRuntime emits the process-health gauges every debug surface
// wants regardless of workload: goroutine count, heap, GC cycles and
// uptime.
func writeRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	WriteGauge(w, "go_goroutines", "Current number of goroutines.", int64(runtime.NumGoroutine()))
	WriteGauge(w, "go_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(ms.HeapAlloc))
	WriteGauge(w, "go_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
	WriteGauge(w, "process_uptime_seconds", "Seconds since process start.", int64(time.Since(processStart)/time.Second))
}

// sortedKeys returns the map's keys in sorted order (exposition wants
// deterministic row order).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
