package obs

// Hand-rolled Prometheus-format metric primitives: counters, labeled
// counter families, gauges and fixed-bucket histograms backed by
// atomics, with text exposition. No client library — the exposition
// format is a few lines of text and the system needs exactly counters,
// histograms and scrape-time gauges. These began life inside
// internal/api for the serve surface; internal/api now aliases them
// from here so the whole process shares one set of primitives.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a single monotonically increasing counter.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// NewCounter builds a plain counter.
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// WritePrometheus emits the counter with its HELP/TYPE header.
func (c *Counter) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
}

// CounterVec is a labeled counter family (one label dimension set at
// construction; values materialize on first use).
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	vals map[string]*atomic.Uint64 // key: joined label values
}

// NewCounterVec builds a counter family with the given label names.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{name: name, help: help, labels: labels, vals: make(map[string]*atomic.Uint64)}
}

// With returns the counter for one label-value combination.
func (c *CounterVec) With(values ...string) *atomic.Uint64 {
	key := strings.Join(values, "\x00")
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[key]
	if !ok {
		v = new(atomic.Uint64)
		c.vals[key] = v
	}
	return v
}

// Write emits the family in Prometheus text exposition format, rows
// sorted by label values.
func (c *CounterVec) Write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	c.mu.Lock()
	keys := sortedKeys(c.vals)
	type kv struct {
		key string
		val uint64
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{k, c.vals[k].Load()})
	}
	c.mu.Unlock()
	for _, r := range rows {
		values := strings.Split(r.key, "\x00")
		parts := make([]string, len(c.labels))
		for i, l := range c.labels {
			parts[i] = fmt.Sprintf("%s=%q", l, values[i])
		}
		fmt.Fprintf(w, "%s{%s} %d\n", c.name, strings.Join(parts, ","), r.val)
	}
}

// WritePrometheus implements Collector.
func (c *CounterVec) WritePrometheus(w io.Writer) { c.Write(w) }

// Gauge is a single instantaneous value set by the instrumented code
// (as opposed to scrape-time gauges, which use WriteGauge or a
// CollectorFunc over live state).
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge builds a settable gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// WritePrometheus emits the gauge with its HELP/TYPE header.
func (g *Gauge) WritePrometheus(w io.Writer) {
	WriteGauge(w, g.name, g.help, g.v.Load())
}

// Histogram is a fixed-bucket Prometheus histogram (cumulative buckets
// materialized at exposition; observation is two atomic adds and a
// bucket increment).
type Histogram struct {
	name    string
	help    string
	buckets []float64 // upper bounds, ascending
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
	count   atomic.Uint64
}

// DefaultLatencyBuckets span sub-millisecond store hits through
// multi-second live solves.
var DefaultLatencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{name: name, help: help, buckets: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Write emits the histogram in Prometheus text exposition format.
func (h *Histogram) Write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, FormatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %s\n", h.name, FormatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// WritePrometheus implements Collector.
func (h *Histogram) WritePrometheus(w io.Writer) { h.Write(w) }

// FormatFloat renders a float without trailing zeros, matching the
// bucket labels Prometheus clients emit.
func FormatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// WriteGauge emits one gauge sample with its HELP/TYPE header.
func WriteGauge(w io.Writer, name, help string, val int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, val)
}
