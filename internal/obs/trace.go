package obs

// Lightweight span tracing. A Tracer hands out monotonically numbered
// spans with parent links and string attrs; finished spans land in a
// bounded ring (always-on, allocation-light) and, when an export file
// is attached, are appended as JSONL. Spans are recorded at End, so a
// trace file is in end-time order — children precede their parents.
//
// There is no context propagation machinery: parents are passed
// explicitly as SpanIDs, which is all the census → fabric → solver
// call graph needs and keeps the hot path to one atomic increment,
// two time.Now calls and a short critical section.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one process's tracer. Zero means
// "no span" (roots have Parent == 0).
type SpanID uint64

// Span is one finished operation.
type Span struct {
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"` // unix nanoseconds
	EndNS   int64             `json:"end_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock length.
func (s Span) Duration() time.Duration {
	return time.Duration(s.EndNS - s.StartNS)
}

// DefaultRingSpans bounds the always-on finished-span ring.
const DefaultRingSpans = 4096

// Tracer records spans. The zero-value pointer is safe: a nil Tracer
// hands out nil spans whose methods all no-op, so call sites
// instrument unconditionally.
type Tracer struct {
	seq atomic.Uint64

	mu       sync.Mutex
	ring     []Span
	next     int
	recorded uint64
	out      *os.File
}

// NewTracer builds a tracer with a finished-span ring of the given
// capacity (DefaultRingSpans when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSpans
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// DefaultTracer is the process-global tracer every instrumented
// package records into unless handed an explicit one.
var DefaultTracer = NewTracer(DefaultRingSpans)

// ExportTo attaches a JSONL export file: every span finished from now
// on is appended to path (created or truncated). Call Close to flush
// and detach.
func (t *Tracer) ExportTo(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	t.mu.Lock()
	old := t.out
	t.out = f
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// Close detaches and closes the export file, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	f := t.out
	t.out = nil
	t.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// ActiveSpan is a started, not-yet-finished span. A nil *ActiveSpan
// (from a nil Tracer) no-ops everywhere.
type ActiveSpan struct {
	t    *Tracer
	span Span
	mu   sync.Mutex
	done bool
}

// Start opens a span. attrs are alternating key, value pairs recorded
// on the span at start.
func (t *Tracer) Start(name string, parent SpanID, attrs ...string) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{t: t, span: Span{
		ID:      SpanID(t.seq.Add(1)),
		Parent:  parent,
		Name:    name,
		StartNS: time.Now().UnixNano(),
	}}
	if len(attrs) >= 2 {
		s.span.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			s.span.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	return s
}

// ID returns the span's id (0 on a nil span), for use as a child's
// parent.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr records one attribute on the span.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = value
}

// End finishes the span, recording it in the tracer's ring and export
// file. Ending twice records once.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.span.EndNS = time.Now().UnixNano()
	sp := s.span
	s.mu.Unlock()
	s.t.record(sp)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % len(t.ring)
	}
	t.recorded++
	out := t.out
	if out != nil {
		// Encode inside the lock so concurrent span ends keep the
		// JSONL line-atomic; span end rate (shards, units, solves) is
		// far below where this would contend.
		b, err := json.Marshal(sp)
		if err == nil {
			b = append(b, '\n')
			out.Write(b)
		}
	}
	t.mu.Unlock()
}

// Spans returns the finished spans still in the ring, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) && t.next > 0 {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Recorded returns the total number of spans finished over the
// tracer's lifetime (the ring holds only the most recent).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// WriteJSONL dumps the ring contents (oldest first) as JSONL — the
// /debug/trace handler's payload.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, sp := range t.Spans() {
		b, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
