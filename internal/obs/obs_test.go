package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRegistryOrderAndDuplicates(t *testing.T) {
	r := NewRegistry()
	a := NewCounter("aaa_total", "a")
	b := NewCounter("bbb_total", "b")
	r.MustRegister("b", b)
	r.MustRegister("a", a)
	if err := r.Register("a", a); err == nil {
		t.Fatal("duplicate name accepted")
	}
	a.Add(3)
	b.Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "aaa_total 3\n") || !strings.Contains(out, "bbb_total 1\n") {
		t.Fatalf("missing samples:\n%s", out)
	}
	// Registration order, not name order, is exposition order.
	if strings.Index(out, "bbb_total") > strings.Index(out, "aaa_total") {
		t.Fatalf("exposition not in registration order:\n%s", out)
	}
	r.Unregister("b")
	buf.Reset()
	r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "bbb_total") {
		t.Fatalf("unregistered collector still written:\n%s", buf.String())
	}
}

func TestRegistryInclude(t *testing.T) {
	shared := NewRegistry()
	shared.MustRegister("c", NewCounter("shared_total", "shared"))
	r1 := NewRegistry()
	r2 := NewRegistry()
	r1.Include(shared)
	r2.Include(shared) // two instances including one global must not collide
	var buf bytes.Buffer
	r1.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "shared_total 0") {
		t.Fatalf("included registry not written:\n%s", buf.String())
	}
}

func TestGaugeExposition(t *testing.T) {
	g := NewGauge("depth", "Window depth.")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge value = %d, want 5", g.Value())
	}
	var buf bytes.Buffer
	g.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "# TYPE depth gauge\ndepth 5\n") {
		t.Fatalf("bad gauge exposition:\n%s", buf.String())
	}
}

func TestTracerRingAndParents(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("root", 0, "kind", "test")
	child := tr.Start("child", root.ID())
	child.SetAttr("unit", "3")
	child.End()
	child.End() // double End records once
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans record at End: child first, then root.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, root id = %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Attrs["unit"] != "3" || spans[1].Attrs["kind"] != "test" {
		t.Fatalf("attrs lost: %v %v", spans[0].Attrs, spans[1].Attrs)
	}
	if spans[0].EndNS < spans[0].StartNS {
		t.Fatal("span ends before it starts")
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("s", 0).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	if tr.Recorded() != 5 {
		t.Fatalf("recorded = %d, want 5", tr.Recorded())
	}
	// Oldest first: ids 3, 4, 5 survive.
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("ring kept ids %d..%d, want 3..5", spans[0].ID, spans[2].ID)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", 0)
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetAttr("a", "b")
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span has nonzero id")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer has spans: %v", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
}

func TestTracerJSONLExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := NewTracer(8)
	if err := tr.ExportTo(path); err != nil {
		t.Fatal(err)
	}
	root := tr.Start("campaign", 0, "n", "4")
	tr.Start("lease", root.ID(), "unit", "0").End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spans []Span
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	if spans[0].Name != "lease" || spans[0].Parent != spans[1].ID {
		t.Fatalf("export lost nesting: %+v", spans)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.Start("w", 0)
				s.SetAttr("i", "1")
				s.End()
			}
		}()
	}
	wg.Wait()
	if tr.Recorded() != 400 {
		t.Fatalf("recorded = %d, want 400", tr.Recorded())
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("debug_test_total", "x")
	c.Add(9)
	reg.MustRegister("c", c)
	tr := NewTracer(8)
	tr.Start("op", 0).End()
	mux := DebugMux(reg, tr)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "debug_test_total 9") {
		t.Fatalf("/metrics: %d %s", code, body)
	}
	if code, body := get("/debug/trace"); code != 200 || !strings.Contains(body, `"name":"op"`) {
		t.Fatalf("/debug/trace: %d %s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: %d %s", code, body)
	}
}

func TestStartDebug(t *testing.T) {
	addr, stop, err := StartDebug("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("bad bound addr %q", addr)
	}
}

func TestDefaultRegistryRuntimeGauges(t *testing.T) {
	var buf bytes.Buffer
	Default.WritePrometheus(&buf)
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "process_uptime_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Default registry missing %s:\n%s", want, buf.String())
		}
	}
}
