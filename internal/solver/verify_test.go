package solver

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sc"
	"repro/internal/tasks"
)

// TestVerifyWitnessParallelEquivalence checks that the parallel sweep
// accepts exactly the witnesses the serial one accepts.
func TestVerifyWitnessParallelEquivalence(t *testing.T) {
	for _, c := range []struct {
		name string
		adv  *adversary.Adversary
		k    int
	}{
		{"1-OF/k=1", adversary.KObstructionFree(3, 1), 1},
		{"1-res/k=2", adversary.TResilient(3, 1), 2},
	} {
		t.Run(c.name, func(t *testing.T) {
			ra := buildRA(t, c.adv)
			task := tasks.KSetConsensus(3, c.k)
			res, err := SolveAffine(task, ra, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solvable {
				t.Fatalf("%d-set consensus should be solvable in %v", c.k, c.adv)
			}
			member := ra.Membership()
			if err := VerifyWitnessWith(task, member, res.Rounds, res.Map, Options{Workers: 1}); err != nil {
				t.Fatalf("serial verify: %v", err)
			}
			for _, workers := range []int{2, 8} {
				if err := VerifyWitnessWith(task, member, res.Rounds, res.Map, Options{Workers: workers}); err != nil {
					t.Fatalf("workers=%d verify: %v", workers, err)
				}
			}
		})
	}
}

// TestVerifyWitnessCorruptedMap corrupts a valid witness one vertex at a
// time and checks that (a) at least one corruption is caught, and (b)
// the serial and parallel sweeps report the identical first violation.
func TestVerifyWitnessCorruptedMap(t *testing.T) {
	ra := buildRA(t, adversary.TResilient(3, 1))
	task := tasks.KSetConsensus(3, 2)
	res, err := SolveAffine(task, ra, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable {
		t.Fatal("2-set consensus should be solvable 1-resiliently")
	}
	member := ra.Membership()

	outByColor := make(map[int][]sc.VertexID)
	for _, o := range task.Output.VertexIDs() {
		ov, _ := task.Output.Vertex(o)
		outByColor[ov.Color] = append(outByColor[ov.Color], o)
	}
	caught := 0
	for v, orig := range res.Map {
		vv, _ := task.Output.Vertex(orig)
		for _, o := range outByColor[vv.Color] {
			if o == orig {
				continue
			}
			corrupted := make(sc.Map, len(res.Map))
			for k2, v2 := range res.Map {
				corrupted[k2] = v2
			}
			corrupted[v] = o
			serialErr := VerifyWitnessWith(task, member, res.Rounds, corrupted, Options{Workers: 1})
			parErr := VerifyWitnessWith(task, member, res.Rounds, corrupted, Options{Workers: 8})
			if (serialErr == nil) != (parErr == nil) {
				t.Fatalf("verdict diverges for corruption %v->%v: serial %v, parallel %v",
					v, o, serialErr, parErr)
			}
			if serialErr == nil {
				continue
			}
			caught++
			if serialErr.Error() != parErr.Error() {
				t.Fatalf("first violation diverges for corruption %v->%v:\n  serial:   %v\n  parallel: %v",
					v, o, serialErr, parErr)
			}
		}
	}
	if caught == 0 {
		t.Fatal("no corruption was caught — negative case not exercised")
	}
}
