package solver

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/tasks"
)

// TestSimplexAgreementSelfSolvable: the affine task R_A, viewed as a
// simplex-agreement task, is solvable from one iteration of R_A — the
// identity-shaped map exists by construction. This is the coherence
// check tying the task formalism to the affine model.
func TestSimplexAgreementSelfSolvable(t *testing.T) {
	for _, a := range []*adversary.Adversary{
		adversary.KObstructionFree(3, 1),
		adversary.TResilient(3, 1),
	} {
		ra := buildRA(t, a)
		task := tasks.SimplexAgreement(ra)
		if err := task.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		res, err := SolveAffine(task, ra, 1)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !res.Solvable || res.Rounds != 1 {
			t.Fatalf("%v: simplex agreement on R_A should be solvable at ℓ=1: %+v", a, res)
		}
		if err := VerifyWitness(task, ra.Membership(), res.Rounds, res.Map); err != nil {
			t.Fatalf("%v: witness invalid: %v", a, err)
		}
	}
}

// TestSimplexAgreementCrossModel: simplex agreement on R_{1-OF} is
// solvable from R_A of ANY model whose affine task refines it... in
// particular from R_{1-OF} itself; and the wait-free model (full Chr²)
// cannot solve R_{1-OF}-agreement in one round (the 1-OF task bans
// contention that wait-free runs exhibit).
func TestSimplexAgreementCrossModel(t *testing.T) {
	oneOF := buildRA(t, adversary.KObstructionFree(3, 1))
	task := tasks.SimplexAgreement(oneOF)

	// Solvable from a strictly stronger model: 1-resilience? R_{1-res}
	// is NOT inside R_{1-OF} (they are incomparable restrictions), so
	// no claim there; instead check the degenerate positive: from
	// R_{1-OF} itself it is solvable (previous test) and from the full
	// wait-free Chr² there is no 1-round map (wait-free cannot enforce
	// the 1-OF contention ban — otherwise it would solve consensus).
	wf := buildRA(t, adversary.WaitFree(3))
	res, err := SolveAffine(task, wf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solvable {
		t.Fatalf("wait-free should not solve R_{1-OF} simplex agreement (would imply consensus)")
	}
}
