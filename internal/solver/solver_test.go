package solver

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/tasks"
)

func buildRA(t *testing.T, a *adversary.Adversary) *affine.Task {
	t.Helper()
	u := chromatic.NewUniverse(a.N())
	task, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestIdentitySolvableEverywhere(t *testing.T) {
	ra := buildRA(t, adversary.KObstructionFree(3, 1))
	res, err := SolveAffine(tasks.TrivialIdentity(3), ra, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable || res.Rounds != 1 {
		t.Fatalf("identity should be solvable in one round: %+v", res)
	}
}

// TestFACTSetConsensus is experiment E12: for a battery of fair
// adversaries, k-set consensus is map-solvable from R_A iff
// k ≥ setcon(A). The positive direction must appear at ℓ = 1 (the μ_Q
// construction realizes it); the negative direction is checked at
// ℓ = 1 (and ℓ = 2 for the smallest configurations in the long bench).
func TestFACTSetConsensus(t *testing.T) {
	fig5b, err := adversary.SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	advs := []*adversary.Adversary{
		adversary.KObstructionFree(3, 1),
		adversary.KObstructionFree(3, 2),
		adversary.TResilient(3, 1),
		adversary.WaitFree(3),
		fig5b,
	}
	for _, a := range advs {
		ra := buildRA(t, a)
		setcon := a.Setcon()
		for k := 1; k <= 3; k++ {
			task := tasks.KSetConsensus(3, k)
			res, err := SolveAffine(task, ra, 1)
			if errors.Is(err, ErrSearchLimit) {
				// The only instance expected to exceed the bounded
				// search is the wait-free k=2 Sperner obstruction: a
				// global parity argument invisible to local pruning.
				// Impossibility there is the classical ACT result, not
				// this paper's contribution; we record it as undecided
				// by search (see EXPERIMENTS.md, E12).
				if a.Setcon() == 3 && k == 2 {
					continue
				}
				t.Fatalf("%v k=%d: unexpected search limit", a, k)
			}
			if err != nil {
				t.Fatalf("%v k=%d: %v", a, k, err)
			}
			want := k >= setcon
			if res.Solvable != want {
				t.Errorf("%v (setcon=%d): %s solvable=%v, want %v",
					a, setcon, task.Name, res.Solvable, want)
			}
			if res.Solvable {
				if err := VerifyWitness(task, ra.Membership(), res.Rounds, res.Map); err != nil {
					t.Errorf("%v k=%d: witness invalid: %v", a, k, err)
				}
			}
		}
	}
}

// TestConsensusImpossibleWaitFree: the FLP-style baseline — consensus
// has no map from Chr^{2ℓ} s for the wait-free model (ℓ = 1, 2).
func TestConsensusImpossibleWaitFree(t *testing.T) {
	task := tasks.Consensus(2)
	res, err := Solve(task, chromatic.FullChr2Membership, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solvable {
		t.Fatalf("wait-free consensus must be unsolvable")
	}
	if len(res.ComplexSizes) != 2 {
		t.Errorf("expected sizes for 2 rounds, got %v", res.ComplexSizes)
	}
}

// TestConsensusSolvableUnder1OF: 1-obstruction-freedom has setcon 1, so
// consensus is solvable from R_A in one round — and the witness map is
// independently verified.
func TestConsensusSolvableUnder1OF(t *testing.T) {
	ra := buildRA(t, adversary.KObstructionFree(3, 1))
	task := tasks.Consensus(3)
	res, err := SolveAffine(task, ra, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable {
		t.Fatal("consensus must be solvable under 1-OF")
	}
	if err := VerifyWitness(task, ra.Membership(), res.Rounds, res.Map); err != nil {
		t.Fatal(err)
	}
}

// TestCompactBoundedRounds is experiment E13: solvable tasks in affine
// models are solved at a bounded round, and the solver reports the
// witnessing ℓ — here ℓ=1 for 2-set consensus under 1-resilience.
func TestCompactBoundedRounds(t *testing.T) {
	ra := buildRA(t, adversary.TResilient(3, 1))
	res, err := SolveAffine(tasks.KSetConsensus(3, 2), ra, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable || res.Rounds != 1 {
		t.Fatalf("2-set consensus under 1-resilience: %+v", res)
	}
}

// TestSolveValidation: invalid configurations are rejected.
func TestSolveValidation(t *testing.T) {
	task := tasks.Consensus(2)
	if _, err := Solve(task, chromatic.FullChr2Membership, 0); err == nil {
		t.Errorf("maxRounds 0 should be rejected")
	}
	bad := &tasks.Task{Name: "bad", N: 2}
	if _, err := Solve(bad, chromatic.FullChr2Membership, 1); err == nil {
		t.Errorf("invalid task should be rejected")
	}
}

// TestWaitFreeKSetConsensusBounds: wait-free (full Chr²) positives
// resolve instantly (k = 3 trivially, and k = n is always a valid map);
// the k = 2 Sperner impossibility is a global parity obstruction that
// the bounded search reports as undecided (ErrSearchLimit) rather than
// deciding incorrectly — the mechanism this test pins.
func TestWaitFreeKSetConsensusBounds(t *testing.T) {
	triv, err := Solve(tasks.KSetConsensus(3, 3), chromatic.FullChr2Membership, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !triv.Solvable {
		t.Fatalf("3-set consensus must be trivially solvable")
	}
	if testing.Short() {
		t.Skip("skipping Sperner search-limit probe in -short mode")
	}
	_, err = Solve(tasks.KSetConsensus(3, 2), chromatic.FullChr2Membership, 1)
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("wait-free 2-set consensus should exhaust the search budget, got %v", err)
	}
}
