package solver

// Parallel map search. The backtracking tree is split at a deterministic
// frontier: the root branch is expanded — always replacing a branch by
// its children, in value order, in place — until there are enough
// independent subtrees to feed the worker pool. Workers then run the
// serial backtracker on each subtree. Because the frontier preserves the
// serial visit order and subtrees are disjoint, the lowest-indexed
// successful subtree holds exactly the witness the serial search would
// have returned first — so on instances decided within the node budget,
// decisions and witnesses are identical for every worker count. (The
// budget itself is per subtree, so an instance the serial budget cannot
// decide may still be decided when split — see Options.NodeLimit.) A
// branch is cancelled early once a lower-indexed branch has succeeded;
// branches above a witness can never change the result.

import (
	"sync"
	"sync/atomic"

	"repro/internal/sc"
)

// branchFactor scales the frontier target: workers * branchFactor
// subtrees give the pool headroom against uneven subtree sizes.
const branchFactor = 4

// branch is one node of the search frontier: a partial assignment with
// the forward-checked domains that remain under it.
type branch struct {
	assign  sc.Map
	domains map[sc.VertexID][]sc.VertexID
	// solved marks a complete assignment discovered during expansion.
	solved bool
}

// clone copies the branch state. Domain value slices are shared: the
// searcher never mutates them in place (pruning allocates fresh slices).
func (b *branch) clone() *branch {
	assign := make(sc.Map, len(b.assign)+1)
	for v, o := range b.assign {
		assign[v] = o
	}
	domains := make(map[sc.VertexID][]sc.VertexID, len(b.domains))
	for v, dom := range b.domains {
		domains[v] = dom
	}
	return &branch{assign: assign, domains: domains}
}

// winnerState tracks the lowest branch index that found a witness.
type winnerState struct {
	idx atomic.Int64
}

func newWinnerState(n int) *winnerState {
	w := &winnerState{}
	w.idx.Store(int64(n))
	return w
}

// beaten reports whether a lower-indexed branch has already won.
func (w *winnerState) beaten(branch int) bool {
	return w.idx.Load() < int64(branch)
}

// record lowers the winner index to branch if it improves it.
func (w *winnerState) record(branch int) {
	for {
		cur := w.idx.Load()
		if int64(branch) >= cur || w.idx.CompareAndSwap(cur, int64(branch)) {
			return
		}
	}
}

// expandBranch develops one branch: it picks the MRV variable and
// produces a child per surviving value, in value order — mirroring one
// level of the serial search. A branch with no unassigned variables is
// marked solved and gets no children.
func expandBranch(ctx *searchCtx, br *branch) []*branch {
	s := &searcher{ctx: ctx, domains: br.domains, assign: br.assign}
	v, any := s.pickVar()
	if !any {
		br.solved = true
		return nil
	}
	var kids []*branch
	for _, o := range br.domains[v] {
		ok := true
		for _, fi := range ctx.vertexFacets[v] {
			if !s.consistent(fi, v, o) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		child := br.clone()
		child.assign[v] = o
		cs := &searcher{ctx: ctx, domains: child.domains, assign: child.assign}
		if _, alive := cs.forwardCheck(v); alive {
			kids = append(kids, child)
		}
	}
	return kids
}

// expandFrontier grows the frontier from the root until it holds at
// least `target` branches (or nothing expandable remains). Expansion
// replaces a branch by its children in place, so the frontier always
// lists disjoint subtrees in serial visit order.
func expandFrontier(ctx *searchCtx, root *branch, target int) []*branch {
	frontier := []*branch{root}
	next := 0
	for len(frontier) < target {
		idx := -1
		for off := 0; off < len(frontier); off++ {
			j := (next + off) % len(frontier)
			if !frontier[j].solved {
				idx = j
				break
			}
		}
		if idx < 0 {
			break
		}
		br := frontier[idx]
		kids := expandBranch(ctx, br)
		if br.solved {
			next = idx + 1
			continue
		}
		spliced := make([]*branch, 0, len(frontier)-1+len(kids))
		spliced = append(spliced, frontier[:idx]...)
		spliced = append(spliced, kids...)
		spliced = append(spliced, frontier[idx+1:]...)
		frontier = spliced
		if len(frontier) == 0 {
			break
		}
		next = idx + len(kids)
	}
	return frontier
}

// searchParallel fans the frontier out over the worker pool and returns
// the lowest-indexed witness — the serial search's answer.
func searchParallel(ctx *searchCtx, root *branch, workers int) (sc.Map, bool, error) {
	frontier := expandFrontier(ctx, root, workers*branchFactor)
	if len(frontier) == 0 {
		return nil, false, nil
	}
	type outcome struct {
		m   sc.Map
		ok  bool
		err error
	}
	results := make([]outcome, len(frontier))
	winner := newWinnerState(len(frontier))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				if winner.beaten(i) {
					continue
				}
				br := frontier[i]
				if br.solved {
					results[i] = outcome{m: br.assign, ok: true}
					winner.record(i)
					continue
				}
				s := &searcher{
					ctx:     ctx,
					domains: br.domains,
					assign:  br.assign,
					limit:   ctx.limit,
					winner:  winner,
					branch:  i,
				}
				solved, err := s.solve()
				switch {
				case err == errCancelled:
					// A lower-indexed branch won; this subtree is moot.
				case err != nil:
					results[i] = outcome{err: err}
				case solved:
					results[i] = outcome{m: s.assign, ok: true}
					winner.record(i)
				}
			}
		}()
	}
	wg.Wait()
	// Scan in serial visit order: an error before the first witness is
	// what the serial search would have hit first.
	for i := range results {
		if results[i].err != nil {
			return nil, false, results[i].err
		}
		if results[i].ok {
			return results[i].m, true, nil
		}
	}
	return nil, false, nil
}
