package solver

// Process-global solver decision counters, registered into obs.Default
// so every telemetry surface that includes the default registry exposes
// them — the live view of how a solve-mode campaign's decisions split.

import "repro/internal/obs"

var solverDecisions = obs.NewCounterVec("factool_solver_decisions_total",
	"Solvability decisions by outcome and decided task.", "outcome", "task")

func init() {
	obs.Default.MustRegister("solver-decisions", solverDecisions)
}
