// Package solver decides affine-task solvability: given a task (I, O, Δ)
// and an affine task L ⊆ Chr² s, it searches for a chromatic simplicial
// map φ : L^ℓ(I) → O carried by Δ — the right-hand side of the FACT
// theorem (Theorem 16). Existence for some ℓ certifies solvability in
// the corresponding fair adversarial model; exhaustive failure up to a
// bound is the (finite) evidence used by the experiments for the
// impossibility direction.
//
// The engine is concurrent on both sides of the decision: the iterated
// subdivision L^ℓ(I) is built by the parallel chromatic engine (and
// memoized across queries via chromatic.TowerCache), and the map search
// partitions its backtracking frontier across workers with early cancel
// once a witness is found. Results are deterministic: on instances
// decided within the node budget, every worker count yields the same
// decision and the same witness map (near the budget, splitting the
// tree can decide instances the serial budget cannot — see
// Options.NodeLimit).
package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/obs"
	"repro/internal/sc"
	"repro/internal/tasks"
)

// Result reports a solvability decision.
type Result struct {
	Solvable bool
	Rounds   int    // iterations ℓ at which a map was found (when Solvable)
	Map      sc.Map // the witnessing vertex map (when Solvable)
	// Sizes of the explored subdivisions per round, for reporting.
	ComplexSizes []int
}

// Options tunes the engine. The zero value selects the defaults.
type Options struct {
	// Workers bounds the worker pools of both the subdivision
	// construction and the map search. <= 0 selects
	// chromatic.DefaultWorkers(); 1 forces the serial reference paths.
	Workers int

	// Cache, when non-nil, memoizes the iterated subdivisions L^ℓ(I)
	// under CacheKey so repeated queries against the same model and
	// input reuse them. CacheKey must uniquely determine the membership
	// predicate (affine.Task.Signature provides it); an empty CacheKey
	// disables caching.
	Cache    *chromatic.TowerCache
	CacheKey string

	// NodeLimit bounds the backtracking search: the whole search when
	// serial, each frontier subtree when parallel. Splitting therefore
	// grants more total budget — a budget-bound instance undecided at
	// Workers=1 (ErrSearchLimit) may be decided at higher worker
	// counts. Decisions within the budget are identical regardless.
	// <= 0 selects the package default.
	NodeLimit int

	// TraceParent, when nonzero, is the span id this decision's tower
	// extensions record under (the census solve path passes its
	// census.solve span so tower-extend spans nest inside it).
	TraceParent obs.SpanID

	// TaskLabel is the task value of the decision metrics — the census
	// passes its canonical task spec so multi-task campaigns split into
	// per-spec series. Empty selects the task's Name.
	TaskLabel string
}

// ErrBadInput reports an invalid configuration.
var ErrBadInput = errors.New("solver: invalid input")

// Solve searches for a chromatic simplicial map φ : L^ℓ(I) → O carried
// by Δ for ℓ = 1..maxRounds with default options. L is given by its
// membership predicate (use task.Membership() from the affine package,
// or chromatic.FullChr2Membership for the wait-free IIS model); callers
// holding an affine.Task should use SolveAffine, which consumes the
// task's rank-indexed membership tables directly.
func Solve(task *tasks.Task, member chromatic.Membership, maxRounds int) (*Result, error) {
	return SolveWith(task, member, maxRounds, Options{})
}

// SolveAffine is a convenience wrapper taking the affine task directly.
// Iterated subdivisions are memoized in chromatic.DefaultTowerCache
// under the task's signature, so repeated calls — across tasks (I, O, Δ)
// sharing the same input and model — rebuild nothing.
func SolveAffine(task *tasks.Task, l *affine.Task, maxRounds int) (*Result, error) {
	return SolveAffineWith(task, l, maxRounds, Options{Cache: chromatic.DefaultTowerCache})
}

// SolveAffineWith is SolveAffine with explicit options. When opts.Cache
// is set and opts.CacheKey is empty, the affine task's signature is
// used as the key. The subdivision engine consumes the task natively as
// a chromatic.MemberTables provider (the flat-array fast path).
func SolveAffineWith(task *tasks.Task, l *affine.Task, maxRounds int, opts Options) (*Result, error) {
	if opts.Cache != nil && opts.CacheKey == "" {
		opts.CacheKey = l.Signature()
	}
	return SolveTables(task, l, maxRounds, opts)
}

// SolveWith is Solve with explicit options. The membership callback is
// adapted into table form once for the whole decision (evaluated once
// per run per ground set), so every round reuses the tables.
func SolveWith(task *tasks.Task, member chromatic.Membership, maxRounds int, opts Options) (*Result, error) {
	return SolveTables(task, chromatic.TablesOf(member), maxRounds, opts)
}

// SolveTables is the table-form engine entry: L is given by its
// membership-table provider (affine.Task implements it; use
// chromatic.FullChr2Tables for the wait-free IIS model, or
// chromatic.TablesOf to adapt a callback).
func SolveTables(task *tasks.Task, tables chromatic.MemberTables, maxRounds int, opts Options) (*Result, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if maxRounds < 1 {
		return nil, fmt.Errorf("%w: maxRounds %d", ErrBadInput, maxRounds)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = chromatic.DefaultWorkers()
	}
	limit := opts.NodeLimit
	if limit <= 0 {
		limit = defaultNodeLimit
	}
	taskLabel := opts.TaskLabel
	if taskLabel == "" {
		taskLabel = task.Name
	}
	var (
		tower  *chromatic.Tower
		cached *chromatic.CachedTower
	)
	if opts.Cache != nil && opts.CacheKey != "" {
		cached = opts.Cache.Acquire(opts.CacheKey, task.Input, workers)
		// Unpin when the decision completes so byte-budgeted caches may
		// evict the tower; it stays shared (and hot) until then.
		defer cached.Release()
		tower = cached.Tower()
	} else {
		tower = chromatic.NewTower(task.Input)
		tower.SetWorkers(workers)
	}
	res := &Result{}
	for round := 1; round <= maxRounds; round++ {
		if cached != nil {
			if err := cached.EnsureHeightTablesTraced(tables, round, opts.TraceParent); err != nil {
				return nil, err
			}
		} else if err := tower.ExtendTables(tables); err != nil {
			return nil, err
		}
		res.ComplexSizes = append(res.ComplexSizes, tower.LevelComplex(round).NumVertices())
		m, ok, err := searchMap(tower, round, task, workers, limit)
		if err != nil {
			if errors.Is(err, ErrSearchLimit) {
				solverDecisions.With("undecided", taskLabel).Add(1)
			}
			return nil, err
		}
		if ok {
			res.Solvable = true
			res.Rounds = round
			res.Map = m
			solverDecisions.With("solvable", taskLabel).Add(1)
			return res, nil
		}
	}
	solverDecisions.With("unsolvable", taskLabel).Add(1)
	return res, nil
}

// ErrSearchLimit is returned when the backtracking search exceeds its
// node budget: the instance is undecided, not proven unsolvable.
var ErrSearchLimit = errors.New("solver: search node limit exceeded")

// defaultNodeLimit bounds the backtracking search. The experiments'
// instances resolve within a few hundred thousand nodes; anything
// beyond this is reported as undecided rather than silently hanging.
const defaultNodeLimit = 4_000_000

// searchMap looks for a chromatic vertex map from the level-`level`
// complex of the tower, carried by Δ, using MRV backtracking with
// forward checking over facet constraints — split across workers above
// a deterministic frontier.
func searchMap(tower *chromatic.Tower, level int, task *tasks.Task, workers, limit int) (sc.Map, bool, error) {
	top := tower.LevelComplex(level)
	vertices := top.VertexIDs()

	// Initial domains: same color, vertex-level Δ.
	outByColor := make(map[int][]sc.VertexID)
	for _, o := range task.Output.VertexIDs() {
		ov, _ := task.Output.Vertex(o)
		outByColor[ov.Color] = append(outByColor[ov.Color], o)
	}
	domains := make(map[sc.VertexID][]sc.VertexID, len(vertices))
	for _, v := range vertices {
		vv, _ := top.Vertex(v)
		carrier := tower.RootCarrierAt(level, v)
		var cands []sc.VertexID
		for _, o := range outByColor[vv.Color] {
			if task.VertexAllowed(carrier, o) {
				cands = append(cands, o)
			}
		}
		if len(cands) == 0 {
			return nil, false, nil
		}
		domains[v] = cands
	}

	facets := top.Facets()
	sort.Slice(facets, func(i, j int) bool { return facets[i].Key() < facets[j].Key() })
	vertexFacets := make(map[sc.VertexID][]int)
	for fi, f := range facets {
		for _, v := range f {
			vertexFacets[v] = append(vertexFacets[v], fi)
		}
	}
	facetCarriers := make([]sc.Simplex, len(facets))
	for i, f := range facets {
		facetCarriers[i] = tower.RootCarrierOfAt(level, f)
	}

	ctx := &searchCtx{
		task:          task,
		facets:        facets,
		facetCarriers: facetCarriers,
		vertexFacets:  vertexFacets,
		limit:         limit,
	}
	root := &branch{
		assign:  make(sc.Map, len(vertices)),
		domains: domains,
	}
	if workers <= 1 {
		return searchSerial(ctx, root)
	}
	return searchParallel(ctx, root, workers)
}

// searchSerial runs the reference backtracker on one branch.
func searchSerial(ctx *searchCtx, br *branch) (sc.Map, bool, error) {
	s := &searcher{ctx: ctx, domains: br.domains, assign: br.assign, limit: ctx.limit}
	ok, err := s.solve()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return s.assign, true, nil
}

// searchCtx is the read-only state shared by all search branches.
type searchCtx struct {
	task          *tasks.Task
	facets        []sc.Simplex
	facetCarriers []sc.Simplex
	vertexFacets  map[sc.VertexID][]int
	limit         int
}

// searcher is the forward-checking backtracker state of one branch.
type searcher struct {
	ctx     *searchCtx
	domains map[sc.VertexID][]sc.VertexID
	assign  sc.Map
	nodes   int
	limit   int

	// Parallel-search coordination: the branch aborts once a
	// lower-indexed branch has found a witness.
	winner *winnerState
	branch int
}

// consistent reports whether giving value o to vertex w keeps the facet
// image a Δ-allowed simplex of the output, given current assignments.
func (s *searcher) consistent(fi int, w sc.VertexID, o sc.VertexID) bool {
	f := s.ctx.facets[fi]
	img := make([]sc.VertexID, 0, len(f))
	for _, x := range f {
		if x == w {
			img = append(img, o)
			continue
		}
		if ox, ok := s.assign[x]; ok {
			img = append(img, ox)
		}
	}
	simplex := sc.NewSimplex(img...)
	if !s.ctx.task.Output.HasSimplex(simplex) {
		return false
	}
	return s.ctx.task.SimplexAllowed(s.ctx.facetCarriers[fi], simplex)
}

// restrictions recorded for undo.
type removal struct {
	v   sc.VertexID
	old []sc.VertexID
}

// forwardCheck prunes the domains of unassigned neighbors of v. It
// returns the undo trail and whether all domains stayed non-empty.
func (s *searcher) forwardCheck(v sc.VertexID) ([]removal, bool) {
	var trail []removal
	for _, fi := range s.ctx.vertexFacets[v] {
		for _, w := range s.ctx.facets[fi] {
			if w == v {
				continue
			}
			if _, ok := s.assign[w]; ok {
				continue
			}
			dom := s.domains[w]
			kept := dom[:0:0]
			for _, o := range dom {
				if s.consistent(fi, w, o) {
					kept = append(kept, o)
				}
			}
			if len(kept) != len(dom) {
				trail = append(trail, removal{v: w, old: dom})
				s.domains[w] = kept
				if len(kept) == 0 {
					return trail, false
				}
			}
		}
	}
	return trail, true
}

func (s *searcher) undo(trail []removal) {
	for i := len(trail) - 1; i >= 0; i-- {
		s.domains[trail[i].v] = trail[i].old
	}
}

// pickVar selects the unassigned vertex with the smallest domain (MRV).
func (s *searcher) pickVar() (sc.VertexID, bool) {
	var best sc.VertexID
	bestSize := -1
	for v, dom := range s.domains {
		if _, ok := s.assign[v]; ok {
			continue
		}
		if bestSize < 0 || len(dom) < bestSize || (len(dom) == bestSize && v < best) {
			best, bestSize = v, len(dom)
		}
	}
	return best, bestSize >= 0
}

// errCancelled aborts a parallel branch beaten by a lower-indexed
// witness; it never escapes to callers of the solver API.
var errCancelled = errors.New("solver: branch cancelled")

func (s *searcher) solve() (bool, error) {
	v, any := s.pickVar()
	if !any {
		return true, nil
	}
	s.nodes++
	if s.nodes > s.limit {
		return false, fmt.Errorf("%w: %d nodes", ErrSearchLimit, s.nodes)
	}
	if s.winner != nil && s.winner.beaten(s.branch) {
		return false, errCancelled
	}
	dom := s.domains[v]
	for _, o := range dom {
		// Check v's own facets against already-assigned vertices.
		ok := true
		for _, fi := range s.ctx.vertexFacets[v] {
			if !s.consistent(fi, v, o) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.assign[v] = o
		trail, alive := s.forwardCheck(v)
		if alive {
			solved, err := s.solve()
			if err != nil {
				return false, err
			}
			if solved {
				return true, nil
			}
		}
		s.undo(trail)
		delete(s.assign, v)
	}
	return false, nil
}

// VerifyWitness re-validates a returned map independently: simplicial,
// chromatic, and carried by Δ on every simplex of the subdivision.
// Used by tests (and the census engine) to guard against solver bugs.
// The carried-by-Δ sweep runs over the default worker pool; use
// VerifyWitnessWith to pin the worker count or reuse a tower cache.
func VerifyWitness(task *tasks.Task, member chromatic.Membership, rounds int, m sc.Map) error {
	return VerifyWitnessWith(task, member, rounds, m, Options{})
}

// VerifyWitnessWith is VerifyWitness with explicit engine options (see
// VerifyWitnessTables; the callback is adapted into table form once for
// the whole sweep).
func VerifyWitnessWith(task *tasks.Task, member chromatic.Membership, rounds int, m sc.Map, opts Options) error {
	return VerifyWitnessTables(task, chromatic.TablesOf(member), rounds, m, opts)
}

// VerifyWitnessTables is the table-form witness check (affine.Task is a
// provider; the census engine passes it directly). The simplex sweep is
// partitioned across opts.Workers goroutines with early exit once a
// violation is found; because candidates are checked in the
// deterministic sorted simplex order and the lowest-indexed violation
// wins, the returned error is identical for every worker count. When
// opts.Cache and opts.CacheKey are set the iterated subdivision is
// acquired from (and shared through) the cache instead of being rebuilt.
func VerifyWitnessTables(task *tasks.Task, tables chromatic.MemberTables, rounds int, m sc.Map, opts Options) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = chromatic.DefaultWorkers()
	}
	var tower *chromatic.Tower
	if opts.Cache != nil && opts.CacheKey != "" {
		cached := opts.Cache.Acquire(opts.CacheKey, task.Input, workers)
		defer cached.Release()
		if err := cached.EnsureHeightTables(tables, rounds); err != nil {
			return err
		}
		tower = cached.Tower()
	} else {
		tower = chromatic.NewTower(task.Input)
		tower.SetWorkers(workers)
		for i := 0; i < rounds; i++ {
			if err := tower.ExtendTables(tables); err != nil {
				return err
			}
		}
	}
	top := tower.LevelComplex(rounds)
	if err := m.VerifySimplicial(top, task.Output); err != nil {
		return err
	}
	if err := m.VerifyChromatic(top, task.Output); err != nil {
		return err
	}
	sims := top.Simplices() // deterministic sorted order
	check := func(s sc.Simplex) error {
		img := m.Apply(s)
		carrier := tower.RootCarrierOfAt(rounds, s)
		for _, o := range img {
			if !task.VertexAllowed(carrier, o) {
				return fmt.Errorf("vertex map not carried at %v", s)
			}
		}
		if !task.SimplexAllowed(carrier, img) {
			return fmt.Errorf("simplex map not carried at %v", s)
		}
		return nil
	}
	if workers == 1 {
		for _, s := range sims {
			if err := check(s); err != nil {
				return err
			}
		}
		return nil
	}
	// Parallel sweep: workers pull simplex indices from a shared cursor
	// and record violations under the lowest index seen so far; indices
	// above the current winner are skipped (early exit). The final
	// winner is the first violation of the serial order.
	errs := make([]error, len(sims))
	failed := atomic.Int64{}
	failed.Store(int64(len(sims)))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(sims) || int64(i) > failed.Load() {
					return
				}
				if err := check(sims[i]); err != nil {
					errs[i] = err
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if idx := failed.Load(); idx < int64(len(sims)) {
		return errs[idx]
	}
	return nil
}
