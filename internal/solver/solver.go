// Package solver decides affine-task solvability: given a task (I, O, Δ)
// and an affine task L ⊆ Chr² s, it searches for a chromatic simplicial
// map φ : L^ℓ(I) → O carried by Δ — the right-hand side of the FACT
// theorem (Theorem 16). Existence for some ℓ certifies solvability in
// the corresponding fair adversarial model; exhaustive failure up to a
// bound is the (finite) evidence used by the experiments for the
// impossibility direction.
package solver

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/sc"
	"repro/internal/tasks"
)

// Result reports a solvability decision.
type Result struct {
	Solvable bool
	Rounds   int    // iterations ℓ at which a map was found (when Solvable)
	Map      sc.Map // the witnessing vertex map (when Solvable)
	// Sizes of the explored subdivisions per round, for reporting.
	ComplexSizes []int
}

// ErrBadInput reports an invalid configuration.
var ErrBadInput = errors.New("solver: invalid input")

// Solve searches for a chromatic simplicial map φ : L^ℓ(I) → O carried
// by Δ for ℓ = 1..maxRounds. L is given by its membership predicate
// (use task.Membership() from the affine package, or
// chromatic.FullChr2Membership for the wait-free IIS model).
func Solve(task *tasks.Task, member chromatic.Membership, maxRounds int) (*Result, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if maxRounds < 1 {
		return nil, fmt.Errorf("%w: maxRounds %d", ErrBadInput, maxRounds)
	}
	tower := chromatic.NewTower(task.Input)
	res := &Result{}
	for round := 1; round <= maxRounds; round++ {
		if err := tower.Extend(member); err != nil {
			return nil, err
		}
		top := tower.Top()
		res.ComplexSizes = append(res.ComplexSizes, top.NumVertices())
		m, ok, err := searchMap(tower, task)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Solvable = true
			res.Rounds = round
			res.Map = m
			return res, nil
		}
	}
	return res, nil
}

// SolveAffine is a convenience wrapper taking the affine task directly.
func SolveAffine(task *tasks.Task, l *affine.Task, maxRounds int) (*Result, error) {
	return Solve(task, l.Membership(), maxRounds)
}

// ErrSearchLimit is returned when the backtracking search exceeds its
// node budget: the instance is undecided, not proven unsolvable.
var ErrSearchLimit = errors.New("solver: search node limit exceeded")

// defaultNodeLimit bounds the backtracking search. The experiments'
// instances resolve within a few hundred thousand nodes; anything
// beyond this is reported as undecided rather than silently hanging.
const defaultNodeLimit = 4_000_000

// searchMap looks for a chromatic vertex map carried by Δ using MRV
// backtracking with forward checking over facet constraints.
func searchMap(tower *chromatic.Tower, task *tasks.Task) (sc.Map, bool, error) {
	top := tower.Top()
	vertices := top.VertexIDs()

	// Initial domains: same color, vertex-level Δ.
	outByColor := make(map[int][]sc.VertexID)
	for _, o := range task.Output.VertexIDs() {
		ov, _ := task.Output.Vertex(o)
		outByColor[ov.Color] = append(outByColor[ov.Color], o)
	}
	domains := make(map[sc.VertexID][]sc.VertexID, len(vertices))
	for _, v := range vertices {
		vv, _ := top.Vertex(v)
		carrier := tower.RootCarrier(v)
		var cands []sc.VertexID
		for _, o := range outByColor[vv.Color] {
			if task.VertexAllowed(carrier, o) {
				cands = append(cands, o)
			}
		}
		if len(cands) == 0 {
			return nil, false, nil
		}
		domains[v] = cands
	}

	facets := top.Facets()
	sort.Slice(facets, func(i, j int) bool { return facets[i].Key() < facets[j].Key() })
	vertexFacets := make(map[sc.VertexID][]int)
	for fi, f := range facets {
		for _, v := range f {
			vertexFacets[v] = append(vertexFacets[v], fi)
		}
	}
	facetCarriers := make([]sc.Simplex, len(facets))
	for i, f := range facets {
		facetCarriers[i] = tower.RootCarrierOf(f)
	}

	s := &searcher{
		task:          task,
		facets:        facets,
		facetCarriers: facetCarriers,
		vertexFacets:  vertexFacets,
		domains:       domains,
		assign:        make(sc.Map, len(vertices)),
		limit:         defaultNodeLimit,
	}
	ok, err := s.solve()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return s.assign, true, nil
}

// searcher is the forward-checking backtracker state.
type searcher struct {
	task          *tasks.Task
	facets        []sc.Simplex
	facetCarriers []sc.Simplex
	vertexFacets  map[sc.VertexID][]int
	domains       map[sc.VertexID][]sc.VertexID
	assign        sc.Map
	nodes         int
	limit         int
}

// consistent reports whether giving value o to vertex w keeps the facet
// image a Δ-allowed simplex of the output, given current assignments.
func (s *searcher) consistent(fi int, w sc.VertexID, o sc.VertexID) bool {
	f := s.facets[fi]
	img := make([]sc.VertexID, 0, len(f))
	for _, x := range f {
		if x == w {
			img = append(img, o)
			continue
		}
		if ox, ok := s.assign[x]; ok {
			img = append(img, ox)
		}
	}
	simplex := sc.NewSimplex(img...)
	if !s.task.Output.HasSimplex(simplex) {
		return false
	}
	return s.task.SimplexAllowed(s.facetCarriers[fi], simplex)
}

// restrictions recorded for undo.
type removal struct {
	v   sc.VertexID
	old []sc.VertexID
}

// forwardCheck prunes the domains of unassigned neighbors of v. It
// returns the undo trail and whether all domains stayed non-empty.
func (s *searcher) forwardCheck(v sc.VertexID) ([]removal, bool) {
	var trail []removal
	for _, fi := range s.vertexFacets[v] {
		for _, w := range s.facets[fi] {
			if w == v {
				continue
			}
			if _, ok := s.assign[w]; ok {
				continue
			}
			dom := s.domains[w]
			kept := dom[:0:0]
			for _, o := range dom {
				if s.consistent(fi, w, o) {
					kept = append(kept, o)
				}
			}
			if len(kept) != len(dom) {
				trail = append(trail, removal{v: w, old: dom})
				s.domains[w] = kept
				if len(kept) == 0 {
					return trail, false
				}
			}
		}
	}
	return trail, true
}

func (s *searcher) undo(trail []removal) {
	for i := len(trail) - 1; i >= 0; i-- {
		s.domains[trail[i].v] = trail[i].old
	}
}

// pickVar selects the unassigned vertex with the smallest domain (MRV).
func (s *searcher) pickVar() (sc.VertexID, bool) {
	var best sc.VertexID
	bestSize := -1
	for v, dom := range s.domains {
		if _, ok := s.assign[v]; ok {
			continue
		}
		if bestSize < 0 || len(dom) < bestSize || (len(dom) == bestSize && v < best) {
			best, bestSize = v, len(dom)
		}
	}
	return best, bestSize >= 0
}

func (s *searcher) solve() (bool, error) {
	v, any := s.pickVar()
	if !any {
		return true, nil
	}
	s.nodes++
	if s.nodes > s.limit {
		return false, fmt.Errorf("%w: %d nodes", ErrSearchLimit, s.nodes)
	}
	dom := s.domains[v]
	for _, o := range dom {
		// Check v's own facets against already-assigned vertices.
		ok := true
		for _, fi := range s.vertexFacets[v] {
			if !s.consistent(fi, v, o) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.assign[v] = o
		trail, alive := s.forwardCheck(v)
		if alive {
			solved, err := s.solve()
			if err != nil {
				return false, err
			}
			if solved {
				return true, nil
			}
		}
		s.undo(trail)
		delete(s.assign, v)
	}
	return false, nil
}

// VerifyWitness re-validates a returned map independently: simplicial,
// chromatic, and carried by Δ on every simplex of the subdivision.
// Used by tests to guard against solver bugs.
func VerifyWitness(task *tasks.Task, member chromatic.Membership, rounds int, m sc.Map) error {
	tower := chromatic.NewTower(task.Input)
	for i := 0; i < rounds; i++ {
		if err := tower.Extend(member); err != nil {
			return err
		}
	}
	top := tower.Top()
	if err := m.VerifySimplicial(top, task.Output); err != nil {
		return err
	}
	if err := m.VerifyChromatic(top, task.Output); err != nil {
		return err
	}
	for _, s := range top.Simplices() {
		img := m.Apply(s)
		carrier := tower.RootCarrierOf(s)
		for _, o := range img {
			if !task.VertexAllowed(carrier, o) {
				return fmt.Errorf("vertex map not carried at %v", s)
			}
		}
		if !task.SimplexAllowed(carrier, img) {
			return fmt.Errorf("simplex map not carried at %v", s)
		}
	}
	return nil
}
