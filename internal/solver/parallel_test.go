package solver

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/tasks"
)

// TestSolveParallelDeterminism asserts that the parallel engine returns
// the same decision, round and witness map as the serial path on the
// E12 battery.
func TestSolveParallelDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		adv    *adversary.Adversary
		k      int
		rounds int
		want   bool
	}{
		{"1-OF/k=1", adversary.KObstructionFree(3, 1), 1, 1, true},
		{"1-res/k=1", adversary.TResilient(3, 1), 1, 1, false},
		{"1-res/k=2", adversary.TResilient(3, 1), 2, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ra := buildRA(t, c.adv)
			task := tasks.KSetConsensus(3, c.k)
			serial, err := SolveAffineWith(task, ra, c.rounds, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Solvable != c.want {
				t.Fatalf("serial solvable = %v, want %v", serial.Solvable, c.want)
			}
			for _, workers := range []int{2, 8} {
				par, err := SolveAffineWith(task, ra, c.rounds, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Solvable != serial.Solvable || par.Rounds != serial.Rounds {
					t.Fatalf("workers=%d: (%v, %d) != serial (%v, %d)",
						workers, par.Solvable, par.Rounds, serial.Solvable, serial.Rounds)
				}
				if len(par.Map) != len(serial.Map) {
					t.Fatalf("workers=%d: map sizes differ: %d vs %d",
						workers, len(par.Map), len(serial.Map))
				}
				for v, o := range serial.Map {
					if par.Map[v] != o {
						t.Fatalf("workers=%d: map[%d] = %d, want %d", workers, v, par.Map[v], o)
					}
				}
				if fmt.Sprint(par.ComplexSizes) != fmt.Sprint(serial.ComplexSizes) {
					t.Fatalf("workers=%d: complex sizes differ", workers)
				}
			}
			if serial.Solvable {
				if err := VerifyWitness(task, ra.Membership(), serial.Rounds, serial.Map); err != nil {
					t.Fatalf("witness invalid: %v", err)
				}
			}
		})
	}
}

// TestSolveAffineCacheReuse asserts that repeated SolveAffine calls
// against the same model and input reuse the memoized R_A^ℓ(I): one
// miss on first use, hits afterwards — including across distinct task
// instances with hash-equal inputs.
func TestSolveAffineCacheReuse(t *testing.T) {
	ra := buildRA(t, adversary.TResilient(3, 1))
	cache := chromatic.NewTowerCache()
	opts := Options{Cache: cache}

	first, err := SolveAffineWith(tasks.KSetConsensus(3, 2), ra, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after first call: %d hits / %d misses, want 0/1", hits, misses)
	}
	// Same task shape again — and a different task (k=1) over the same
	// input and model: both must reuse the cached tower.
	second, err := SolveAffineWith(tasks.KSetConsensus(3, 2), ra, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveAffineWith(tasks.KSetConsensus(3, 1), ra, 1, opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("after three calls: %d hits / %d misses, want 2/1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d towers, want 1", cache.Len())
	}
	if !first.Solvable || !second.Solvable || first.Rounds != second.Rounds {
		t.Fatalf("cached result diverged: %+v vs %+v", first, second)
	}
	for v, o := range first.Map {
		if second.Map[v] != o {
			t.Fatalf("cached witness diverged at %d", v)
		}
	}
}

// TestSolveDeeperRoundsReuseCache asserts that asking for more rounds
// extends the cached tower instead of rebuilding lower levels.
func TestSolveDeeperRoundsReuseCache(t *testing.T) {
	ra := buildRA(t, adversary.TResilient(3, 1))
	cache := chromatic.NewTowerCache()
	opts := Options{Cache: cache}
	task := tasks.KSetConsensus(3, 2)

	if _, err := SolveAffineWith(task, ra, 1, opts); err != nil {
		t.Fatal(err)
	}
	ct := cache.Acquire(ra.Signature(), task.Input, 0)
	if h := ct.Tower().Height(); h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
	level1 := ct.Tower().LevelComplex(1)
	// An unsolvable-at-1 task forces no deeper levels here; instead
	// extend explicitly and check level 1 is untouched.
	if err := ct.EnsureHeight(ra.Membership(), 2); err != nil {
		t.Fatal(err)
	}
	if ct.Tower().LevelComplex(1) != level1 {
		t.Fatal("extending rebuilt level 1")
	}
}
