package memory

import (
	"fmt"
	"testing"

	"repro/internal/iis"
	"repro/internal/procs"
	"repro/internal/sched"
)

// TestImmediateSnapshotExhaustiveN2 model-checks the Borowsky-Gafni
// immediate snapshot for two processes over EVERY schedule, including
// every placement of one crash: the IS axioms must hold in all of them.
func TestImmediateSnapshotExhaustiveN2(t *testing.T) {
	cfg := sched.ExploreConfig{
		N:            2,
		Participants: procs.FullSet(2),
		MaxCrashes:   1,
		MaxSteps:     40,
	}
	res, err := sched.Explore(cfg, func() (sched.Protocol, func(*sched.Result) error) {
		is := NewImmediateSnapshot[procs.ID](2)
		views := make(map[procs.ID]procs.Set)
		proto := func(ctx *sched.Context) error {
			out := is.WriteSnapshot(ctx, ctx.ID(), ctx.ID())
			var set procs.Set
			for q := range out {
				set = set.Add(q)
			}
			views[ctx.ID()] = set
			return nil
		}
		check := func(r *sched.Result) error {
			decidedViews := make(map[procs.ID]procs.Set)
			r.Decided.ForEach(func(p procs.ID) { decidedViews[p] = views[p] })
			if err := iis.ValidatePartialViews(decidedViews, procs.FullSet(2)); err != nil {
				return fmt.Errorf("schedule %v/%v: %w", r.Decided, r.Crashed, err)
			}
			return nil
		}
		return proto, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 10 {
		t.Fatalf("suspiciously few schedules explored: %d", res.Runs)
	}
	t.Logf("exhaustively checked %d schedules", res.Runs)
}

// TestImmediateSnapshotExplorationN3Bounded: bounded-systematic sweep at
// n=3 (the full tree is too large; the budget caps it).
func TestImmediateSnapshotExplorationN3Bounded(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration skipped in -short mode")
	}
	cfg := sched.ExploreConfig{
		N:            3,
		Participants: procs.FullSet(3),
		MaxCrashes:   1,
		MaxSteps:     80,
		MaxRuns:      4000,
	}
	res, err := sched.Explore(cfg, func() (sched.Protocol, func(*sched.Result) error) {
		is := NewImmediateSnapshot[procs.ID](3)
		views := make(map[procs.ID]procs.Set)
		proto := func(ctx *sched.Context) error {
			out := is.WriteSnapshot(ctx, ctx.ID(), ctx.ID())
			var set procs.Set
			for q := range out {
				set = set.Add(q)
			}
			views[ctx.ID()] = set
			return nil
		}
		check := func(r *sched.Result) error {
			decidedViews := make(map[procs.ID]procs.Set)
			r.Decided.ForEach(func(p procs.ID) { decidedViews[p] = views[p] })
			return iis.ValidatePartialViews(decidedViews, procs.FullSet(3))
		}
		return proto, check
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("systematically checked %d schedules (truncated=%v)", res.Runs, res.Truncated)
}
