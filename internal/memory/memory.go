// Package memory implements the shared-memory substrate of Section 2 on
// top of the cooperative scheduler: atomic registers, atomic-snapshot
// memory (update/snapshot), and one-shot immediate-snapshot objects
// (the iterated-levels Borowsky-Gafni wait-free construction).
//
// Because the scheduler serializes shared steps (exactly one process
// executes between grants), operations guarded by a single ctx.Step()
// are trivially linearizable: the linearization point is the granted
// step. The interesting construction is the immediate-snapshot object,
// which is built from plain writes and snapshots and must satisfy the
// IS axioms (self-inclusion, containment, immediacy) under every
// interleaving — property-tested against iis.ValidateViews.
package memory

import (
	"repro/internal/procs"
	"repro/internal/sched"
)

// Register is a single-writer multi-reader atomic register.
type Register[T any] struct {
	val T
	set bool
}

// Write stores v (one shared step).
func (r *Register[T]) Write(ctx *sched.Context, v T) {
	ctx.Step()
	r.val = v
	r.set = true
}

// Read returns the current value and whether it was ever written
// (one shared step).
func (r *Register[T]) Read(ctx *sched.Context) (T, bool) {
	ctx.Step()
	return r.val, r.set
}

// Snapshot is an n-slot atomic-snapshot memory: Update writes the
// caller's slot, Scan atomically reads all slots. The scheduler's step
// serialization makes Scan a true atomic snapshot.
type Snapshot[T any] struct {
	vals []T
	set  []bool
}

// NewSnapshot allocates an n-slot snapshot memory.
func NewSnapshot[T any](n int) *Snapshot[T] {
	return &Snapshot[T]{vals: make([]T, n), set: make([]bool, n)}
}

// Update writes v into slot i (one shared step).
func (s *Snapshot[T]) Update(ctx *sched.Context, i procs.ID, v T) {
	ctx.Step()
	s.vals[i] = v
	s.set[i] = true
}

// Scan returns a copy of all written slots (one shared step).
func (s *Snapshot[T]) Scan(ctx *sched.Context) map[procs.ID]T {
	ctx.Step()
	out := make(map[procs.ID]T)
	for i, ok := range s.set {
		if ok {
			out[procs.ID(i)] = s.vals[i]
		}
	}
	return out
}

// ImmediateSnapshot is a one-shot n-process immediate snapshot object
// implementing the WriteSnapshot operation of Section 2 via the
// classical level-descent algorithm: a process repeatedly descends one
// level, writes (value, level), scans, and returns the set S of
// processes at its level or below once |S| ≥ level.
type ImmediateSnapshot[T any] struct {
	n      int
	vals   []T
	levels []int // 0 = not started; otherwise current level
}

// NewImmediateSnapshot allocates a one-shot IS object for n processes.
func NewImmediateSnapshot[T any](n int) *ImmediateSnapshot[T] {
	return &ImmediateSnapshot[T]{n: n, vals: make([]T, n), levels: make([]int, n)}
}

// WriteSnapshot submits v for process p and returns the immediate
// snapshot: the values of the processes p "sees", satisfying
// self-inclusion, containment and immediacy across all callers.
// Each descent iteration costs two shared steps (write + scan).
func (is *ImmediateSnapshot[T]) WriteSnapshot(ctx *sched.Context, p procs.ID, v T) map[procs.ID]T {
	level := is.n + 1
	for {
		level--
		// Write (v, level).
		ctx.Step()
		is.vals[p] = v
		is.levels[p] = level
		// Scan.
		ctx.Step()
		var seen procs.Set
		for q := 0; q < is.n; q++ {
			if is.levels[q] != 0 && is.levels[q] <= level {
				seen = seen.Add(procs.ID(q))
			}
		}
		if seen.Size() >= level {
			out := make(map[procs.ID]T, seen.Size())
			seen.ForEach(func(q procs.ID) { out[q] = is.vals[q] })
			return out
		}
	}
}
