package memory

import (
	"fmt"
	"testing"

	"repro/internal/iis"
	"repro/internal/procs"
	"repro/internal/sched"
)

func TestRegister(t *testing.T) {
	var reg Register[int]
	cfg := sched.Config{N: 1, Participants: procs.SetOf(0), Seed: 1}
	_, err := sched.Run(cfg, func(ctx *sched.Context) error {
		if _, ok := reg.Read(ctx); ok {
			return fmt.Errorf("register unexpectedly set")
		}
		reg.Write(ctx, 42)
		v, ok := reg.Read(ctx)
		if !ok || v != 42 {
			return fmt.Errorf("read %d/%v, want 42", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotBasics(t *testing.T) {
	snap := NewSnapshot[string](3)
	cfg := sched.Config{N: 3, Participants: procs.FullSet(3), Seed: 2}
	res, err := sched.Run(cfg, func(ctx *sched.Context) error {
		snap.Update(ctx, ctx.ID(), ctx.ID().String())
		view := snap.Scan(ctx)
		// Self-inclusion of snapshot memory: the caller's own value is
		// visible after its update.
		if view[ctx.ID()] != ctx.ID().String() {
			return fmt.Errorf("own value missing from scan")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, e := range res.Errs {
		t.Errorf("%v: %v", p, e)
	}
}

func TestSnapshotContainmentUnderSchedules(t *testing.T) {
	// Scans by different processes after all updates must return the
	// full memory; partial scans must be prefixes under containment of
	// update order. We check the fundamental regularity: a scan that
	// happens-after another scan contains it (monotonicity of the
	// serialized memory).
	for seed := int64(0); seed < 30; seed++ {
		snap := NewSnapshot[int](3)
		var scans []map[procs.ID]int
		cfg := sched.Config{N: 3, Participants: procs.FullSet(3), Seed: seed}
		_, err := sched.Run(cfg, func(ctx *sched.Context) error {
			snap.Update(ctx, ctx.ID(), int(ctx.ID()))
			v := snap.Scan(ctx)
			scans = append(scans, v) // serialized: no race
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range scans {
			if _, ok := v[0]; !ok && len(v) == 3 {
				t.Fatalf("inconsistent scan %v", v)
			}
		}
	}
}

// TestImmediateSnapshotAxioms is the substrate validation for
// Algorithm 1: under many random schedules (including crashes), the
// views returned by the Borowsky-Gafni immediate snapshot satisfy the
// three IS axioms of Section 2.
func TestImmediateSnapshotAxioms(t *testing.T) {
	for n := 2; n <= 4; n++ {
		for seed := int64(0); seed < 60; seed++ {
			is := NewImmediateSnapshot[procs.ID](n)
			views := make(map[procs.ID]procs.Set)
			cfg := sched.Config{N: n, Participants: procs.FullSet(n), Seed: seed}
			if seed%3 == 1 && n > 2 {
				// Crash one process mid-flight: survivors must still
				// produce valid views.
				cfg.KillAfter = map[procs.ID]int{procs.ID(seed % int64(n)): int(seed % 5)}
			}
			_, err := sched.Run(cfg, func(ctx *sched.Context) error {
				out := is.WriteSnapshot(ctx, ctx.ID(), ctx.ID())
				var set procs.Set
				for q := range out {
					set = set.Add(q)
				}
				views[ctx.ID()] = set // serialized by the scheduler
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if err := iis.ValidatePartialViews(views, procs.FullSet(n)); err != nil {
				t.Fatalf("n=%d seed=%d: IS axioms violated: %v (views %v)",
					n, seed, err, views)
			}
		}
	}
}

// TestImmediateSnapshotSequential: a solo process sees only itself; a
// strictly sequential schedule yields strictly growing views.
func TestImmediateSnapshotSequential(t *testing.T) {
	n := 3
	is := NewImmediateSnapshot[int](n)
	views := make(map[procs.ID]procs.Set)
	// Run processes one after another (sequential participation).
	for p := 0; p < n; p++ {
		cfg := sched.Config{N: n, Participants: procs.SetOf(procs.ID(p)), Seed: int64(p)}
		_, err := sched.Run(cfg, func(ctx *sched.Context) error {
			out := is.WriteSnapshot(ctx, ctx.ID(), p)
			var set procs.Set
			for q := range out {
				set = set.Add(q)
			}
			views[ctx.ID()] = set
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []procs.Set{procs.SetOf(0), procs.SetOf(0, 1), procs.FullSet(3)}
	for p := 0; p < n; p++ {
		if views[procs.ID(p)] != want[p] {
			t.Errorf("sequential view of p%d = %v, want %v", p+1, views[procs.ID(p)], want[p])
		}
	}
}

// TestImmediateSnapshotValues: returned values are the submitted ones.
func TestImmediateSnapshotValues(t *testing.T) {
	n := 3
	is := NewImmediateSnapshot[string](n)
	cfg := sched.Config{N: n, Participants: procs.FullSet(n), Seed: 99}
	res, err := sched.Run(cfg, func(ctx *sched.Context) error {
		out := is.WriteSnapshot(ctx, ctx.ID(), "v"+ctx.ID().String())
		for q, v := range out {
			if v != "v"+q.String() {
				return fmt.Errorf("value of %v is %q", q, v)
			}
		}
		if _, ok := out[ctx.ID()]; !ok {
			return fmt.Errorf("self-inclusion of values failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, e := range res.Errs {
		t.Errorf("%v: %v", p, e)
	}
}
