package census

// Sinks consume the census entry stream. The engine guarantees strict
// enumeration order and single-goroutine delivery: Emit is never called
// concurrently, and entry i is emitted before entry j whenever i < j —
// which is what makes a byte stream (JSON lines) reproducible across
// worker counts, and what checkpoints count against.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Sink consumes census entries in strict enumeration order. Emit owns
// the entry only for the duration of the call; implementations that
// retain it must copy.
type Sink interface {
	Emit(e *Entry) error
}

// Flusher is implemented by sinks with buffered output. The engine
// flushes before writing a checkpoint, so the sidecar never records
// bytes that are not durably in the stream.
type Flusher interface {
	Flush() error
}

// OffsetSink reports the byte offset of the stream after the last
// emitted entry — what a checkpoint records so a resumed run can
// truncate a partially written tail.
type OffsetSink interface {
	Offset() int64
}

// ResumableSink is a sink with persistent output that can be positioned
// at a checkpoint: `entries` entries / `bytes` bytes already emitted by
// the interrupted run. Fresh runs position at (0, 0), which must reset
// the output. The engine calls ResumeAt exactly once, before any Emit.
type ResumableSink interface {
	Sink
	ResumeAt(entries uint64, bytes int64) error
}

// Collector is the in-memory sink: it materializes every entry, which
// is what Run uses to build the full Report for MaxDomain-sized
// domains.
type Collector struct {
	Entries []Entry
}

// Emit appends a copy of the entry.
func (c *Collector) Emit(e *Entry) error {
	c.Entries = append(c.Entries, *e)
	return nil
}

// Discard drops every entry: the aggregating-summarizer mode, where the
// running Summary the engine maintains is the only output. Memory is
// O(1) in the domain.
type Discard struct{}

// Emit drops the entry.
func (Discard) Emit(*Entry) error { return nil }

// JSONLSink streams entries as JSON lines (one Entry object per line)
// to a file, tracking byte offsets for checkpointing. The final file of
// a run — interrupted and resumed any number of times, at any worker
// count — is byte-identical to that of an uninterrupted serial run.
type JSONLSink struct {
	f       *os.File
	w       *bufio.Writer
	base    int64 // offset established by ResumeAt
	written int64 // bytes emitted since
}

// NewJSONLSink opens (creating if needed) the JSONL stream at path.
// The file is positioned by the engine: truncated to zero on a fresh
// run, to the checkpoint offset on a resumed one. Close when done.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("census: open sink: %w", err)
	}
	return &JSONLSink{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Emit writes one JSON line.
func (s *JSONLSink) Emit(e *Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	n, err := s.w.Write(b)
	s.written += int64(n)
	return err
}

// ResumeAt positions the file at a checkpoint: everything beyond the
// recorded offset (a tail written after the last checkpoint of an
// interrupted run) is truncated away. An output file shorter than the
// checkpoint claims is corruption and is reported instead of silently
// producing a stream with holes.
func (s *JSONLSink) ResumeAt(entries uint64, bytes int64) error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < bytes {
		return fmt.Errorf("census: output %s is %d bytes, checkpoint expects >= %d (entries %d): output/checkpoint mismatch",
			s.f.Name(), st.Size(), bytes, entries)
	}
	if err := s.f.Truncate(bytes); err != nil {
		return err
	}
	if _, err := s.f.Seek(bytes, io.SeekStart); err != nil {
		return err
	}
	s.w.Reset(s.f)
	s.base, s.written = bytes, 0
	return nil
}

// Offset returns the stream offset after the last emitted entry.
// Meaningful for checkpointing only after Flush.
func (s *JSONLSink) Offset() int64 { return s.base + s.written }

// Flush drains the buffer and syncs the file, making Offset durable.
func (s *JSONLSink) Flush() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the file.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
