package census

// Sinks consume the census entry stream. The engine guarantees strict
// enumeration order and single-goroutine delivery: Emit is never called
// concurrently, and entry i is emitted before entry j whenever i < j —
// which is what makes a byte stream (JSON lines) reproducible across
// worker counts, and what checkpoints count against.

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Sink consumes census entries in strict enumeration order. Emit owns
// the entry only for the duration of the call; implementations that
// retain it must copy.
type Sink interface {
	Emit(e *Entry) error
}

// Flusher is implemented by sinks with buffered output. The engine
// flushes before writing a checkpoint, so the sidecar never records
// bytes that are not durably in the stream.
type Flusher interface {
	Flush() error
}

// OffsetSink reports the byte offset of the stream after the last
// emitted entry — what a checkpoint records so a resumed run can
// truncate a partially written tail.
type OffsetSink interface {
	Offset() int64
}

// ResumableSink is a sink with persistent output that can be positioned
// at a checkpoint: `entries` entries / `bytes` bytes already emitted by
// the interrupted run. Fresh runs position at (0, 0), which must reset
// the output. The engine calls ResumeAt exactly once, before any Emit.
type ResumableSink interface {
	Sink
	ResumeAt(entries uint64, bytes int64) error
}

// KindSink lets a sink refine its checkpoint-compatibility kind beyond
// the persistent/volatile split (checkpoint.go). A compressed stream
// records a distinct kind so a resume cannot silently splice
// uncompressed lines into a gzip stream (or vice versa).
type KindSink interface {
	SinkKind() string
}

// Collector is the in-memory sink: it materializes every entry, which
// is what Run uses to build the full Report for MaxDomain-sized
// domains.
type Collector struct {
	Entries []Entry
}

// Emit appends a deep copy of the entry: the Sink contract only loans
// the entry for the duration of the call, so a retained shallow copy
// would alias its slice and pointer fields against the caller's.
func (c *Collector) Emit(e *Entry) error {
	c.Entries = append(c.Entries, *e.Clone())
	return nil
}

// Discard drops every entry: the aggregating-summarizer mode, where the
// running Summary the engine maintains is the only output. Memory is
// O(1) in the domain.
type Discard struct{}

// Emit drops the entry.
func (Discard) Emit(*Entry) error { return nil }

// JSONLSink streams entries as JSON lines (one Entry object per line)
// to a file, tracking byte offsets for checkpointing; optionally the
// lines are gzip-compressed (see NewJSONLSinkCompressed).
//
// Uncompressed, the final file of a run — interrupted and resumed any
// number of times, at any worker count — is byte-identical to that of
// an uninterrupted serial run. Compressed, that guarantee holds for the
// DECOMPRESSED stream: the engine flushes at checkpoints, each flush
// closes the current gzip member (concatenated members form a standard
// multi-stream gzip file), so the compressed framing depends on the
// checkpoint cadence while the content never does. Offsets recorded by
// checkpoints always land on member boundaries, which is what keeps
// resume truncation correct.
type JSONLSink struct {
	f        *os.File
	cnt      countingWriter
	w        *bufio.Writer
	gz       *gzip.Writer // open gzip member; nil between members and when uncompressed
	compress bool
	base     int64 // offset established by ResumeAt
}

// countingWriter counts the bytes that reached the underlying file —
// the durable-offset source for compressed streams, where bytes only
// land on gzip-member close.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewJSONLSink opens (creating if needed) the JSONL stream at path. A
// path ending in ".gz" selects the compressed form automatically. The
// file is positioned by the engine: truncated to zero on a fresh run,
// to the checkpoint offset on a resumed one. Close when done.
func NewJSONLSink(path string) (*JSONLSink, error) {
	return newJSONLSink(path, strings.HasSuffix(path, ".gz"))
}

// NewJSONLSinkCompressed opens a gzip-compressed JSONL stream at path
// regardless of its suffix — the census -compress mode that addresses
// the ~40 MB per 10 s of sweep shard growth at n=5.
func NewJSONLSinkCompressed(path string) (*JSONLSink, error) {
	return newJSONLSink(path, true)
}

func newJSONLSink(path string, compress bool) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("census: open sink: %w", err)
	}
	s := &JSONLSink{f: f, compress: compress}
	s.cnt.w = f
	s.w = bufio.NewWriterSize(&s.cnt, 1<<16)
	return s, nil
}

// Compressed reports whether the sink gzips its stream.
func (s *JSONLSink) Compressed() bool { return s.compress }

// SinkKind distinguishes the two persistent stream forms for checkpoint
// compatibility: a gzip checkpoint must not resume an uncompressed
// output (or vice versa). The uncompressed kind is the historic
// "persistent", so existing campaign checkpoints keep resuming.
func (s *JSONLSink) SinkKind() string {
	if s.compress {
		return "persistent-gzip"
	}
	return "persistent"
}

// Emit writes one JSON line.
func (s *JSONLSink) Emit(e *Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if s.compress {
		if s.gz == nil {
			s.gz = gzip.NewWriter(s.w)
		}
		_, err = s.gz.Write(b)
		return err
	}
	_, err = s.w.Write(b)
	return err
}

// ResumeAt positions the file at a checkpoint: everything beyond the
// recorded offset (a tail written after the last checkpoint of an
// interrupted run) is truncated away. For compressed streams the offset
// is a gzip-member boundary, so the truncated file stays a valid
// multi-stream gzip and the resumed run simply appends new members. An
// output file shorter than the checkpoint claims is corruption and is
// reported instead of silently producing a stream with holes.
func (s *JSONLSink) ResumeAt(entries uint64, bytes int64) error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < bytes {
		return fmt.Errorf("census: output %s is %d bytes, checkpoint expects >= %d (entries %d): output/checkpoint mismatch",
			s.f.Name(), st.Size(), bytes, entries)
	}
	if err := s.f.Truncate(bytes); err != nil {
		return err
	}
	if _, err := s.f.Seek(bytes, io.SeekStart); err != nil {
		return err
	}
	s.cnt = countingWriter{w: s.f}
	s.w.Reset(&s.cnt)
	s.gz = nil
	s.base = bytes
	return nil
}

// Offset returns the stream offset after the last emitted entry.
// Meaningful for checkpointing only after Flush (compressed streams
// buffer inside the open gzip member until then).
func (s *JSONLSink) Offset() int64 { return s.base + s.cnt.n + int64(s.w.Buffered()) }

// Flush drains the buffer and syncs the file, making Offset durable.
// In compressed mode this closes the current gzip member; the next Emit
// starts a new one.
func (s *JSONLSink) Flush() error {
	if s.gz != nil {
		if err := s.gz.Close(); err != nil {
			return err
		}
		s.gz = nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the file.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
