package census

// Checkpointing for long streaming sweeps: a small sidecar file records
// the contiguous completed frontier of the enumeration plus the running
// aggregates, so a killed n=5 campaign restarts where it left off and
// still produces byte-identical final output. The sidecar is written
// atomically (temp file + rename) and only after the sink has flushed,
// so it never points past durable output.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tasks"
)

// checkpointVersion guards the sidecar schema.
const checkpointVersion = 1

// Checkpoint is the resume state of a streaming census run.
type Checkpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"` // run parameters that must match to resume

	// NextIndex is the contiguous completed frontier: every enumeration
	// index below it has been examined and its entry (if any) emitted.
	NextIndex uint64 `json:"next_index"`
	// Emitted counts entries delivered to the sink — below NextIndex in
	// orbit mode, equal to it otherwise.
	Emitted uint64 `json:"emitted"`
	// OutBytes is the sink byte offset after the Emitted-th entry.
	OutBytes int64 `json:"out_bytes"`

	// SinkKind records whether the interrupted run streamed to a
	// persistent sink ("persistent": entries live in an output the run
	// can reposition) or not ("volatile": summary-only or in-memory).
	// Resuming with a different kind would silently drop the swept
	// prefix from the output, so it is rejected instead.
	SinkKind string `json:"sink_kind"`

	// Summary holds the running aggregates over [0, NextIndex).
	Summary Summary `json:"summary"`
}

// sinkKind classifies a sink for checkpoint compatibility. Resumable
// sinks may refine their kind via KindSink (e.g. the gzip JSONL stream),
// so a resume never splices one stream form into another.
func sinkKind(s Sink) string {
	if _, ok := s.(ResumableSink); ok {
		if ks, ok := s.(KindSink); ok {
			return ks.SinkKind()
		}
		return "persistent"
	}
	return "volatile"
}

// ErrCheckpointMismatch reports a checkpoint that does not belong to
// the attempted run (different n, mode flags, or schema).
var ErrCheckpointMismatch = errors.New("census: checkpoint does not match run parameters")

// fingerprint captures every option that shapes the output stream.
// Worker count and shard size are deliberately excluded: they change
// scheduling, never bytes, and a resumed run may use different ones.
// The task identity segment is `k=<k>` on the kset compat path — the
// exact pre-spec form, so old sidecars resume — and `task=<spec>` for
// every other spec, so a sweep can never silently resume a sidecar
// written for a different task. A family filter appends its own
// segment the same way.
func fingerprint(n int, opts *Options, spec tasks.Spec, family *familyFilter) string {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1
	}
	taskSeg := fmt.Sprintf("task=%s", spec)
	if spec.IsKSet() {
		taskSeg = fmt.Sprintf("k=%d", spec.Param("k"))
	}
	fp := fmt.Sprintf("census:v%d:n=%d:orbits=%t:solve=%t:%s:rounds=%d:verify=%t",
		checkpointVersion, n, opts.Orbits, opts.Solve, taskSeg, maxRounds, opts.VerifyWitnesses)
	if family != nil {
		fp += ":family=" + family.canonical
	}
	return fp
}

// LoadCheckpoint reads a checkpoint sidecar. A missing file returns
// os.ErrNotExist (callers treat it as a fresh start).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, fmt.Errorf("census: parse checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// validate checks a loaded checkpoint against this run's parameters.
func (ck *Checkpoint) validate(fp string, total uint64, n int, kind string) error {
	if ck.Version != checkpointVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrCheckpointMismatch, ck.Version, checkpointVersion)
	}
	if ck.Fingerprint != fp {
		return fmt.Errorf("%w: fingerprint %q, want %q", ErrCheckpointMismatch, ck.Fingerprint, fp)
	}
	if ck.SinkKind != kind {
		return fmt.Errorf("%w: checkpoint was written with a %s sink, this run uses a %s one — the swept prefix would be missing from the output; resume with the same output setup (or start a fresh checkpoint)",
			ErrCheckpointMismatch, ck.SinkKind, kind)
	}
	if ck.NextIndex > total {
		return fmt.Errorf("%w: frontier %d beyond domain %d", ErrCheckpointMismatch, ck.NextIndex, total)
	}
	if len(ck.Summary.SetconHist) != n+1 {
		return fmt.Errorf("%w: setcon histogram has %d buckets, want %d", ErrCheckpointMismatch, len(ck.Summary.SetconHist), n+1)
	}
	return nil
}

// write persists the checkpoint atomically: temp file in the same
// directory, fsync, rename over the target.
func (ck *Checkpoint) write(path string) error {
	b, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("census: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
