package census

// Tests for the task-zoo sweep axis: registered task specs threaded
// through solve sweeps (byte-compatibility of the kset path pinned
// exactly), checkpoint fingerprints that refuse to resume under a
// different task, and named adversary-family filters.

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
)

// TestTaskSpecKsetBytesPinned pins the acceptance criterion: a census
// run with -task kset:k=2 is byte-identical to the pre-spec -ktask 2
// path — entries carry no task field, the summary reports KTask.
func TestTaskSpecKsetBytesPinned(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "ktask.jsonl")
	spec := filepath.Join(dir, "spec.jsonl")
	repOld := runJSONL(t, 3, Options{Workers: 4, Solve: true, KTask: 2}, old)
	repSpec := runJSONL(t, 3, Options{Workers: 4, Solve: true, Task: "kset:k=2"}, spec)
	if !bytes.Equal(readFile(t, old), readFile(t, spec)) {
		t.Fatal("-task kset:k=2 stream differs from the -ktask 2 stream")
	}
	if repSpec.Summary.KTask != 2 || repSpec.Summary.Task != "" {
		t.Fatalf("kset spec summary: KTask=%d Task=%q, want 2 and empty", repSpec.Summary.KTask, repSpec.Summary.Task)
	}
	if got, want := jsonString(t, repSpec.Summary), jsonString(t, repOld.Summary); got != want {
		t.Fatalf("summaries differ:\n%s\n%s", got, want)
	}
	if bytes.Contains(readFile(t, spec), []byte(`"task"`)) {
		t.Fatal("kset entries must not carry the task field")
	}
}

// TestTaskSweepWorkerInvariance checks a non-kset task sweep is
// byte-identical at every worker count and stamps every entry with the
// canonical spec.
func TestTaskSweepWorkerInvariance(t *testing.T) {
	dir := t.TempDir()
	want := filepath.Join(dir, "w1.jsonl")
	rep1 := runJSONL(t, 3, Options{Workers: 1, Task: "loop-agreement"}, want)
	if rep1.Summary.Task != "loop-agreement" {
		t.Fatalf("summary task %q, want loop-agreement", rep1.Summary.Task)
	}
	out := filepath.Join(dir, "w8.jsonl")
	runJSONL(t, 3, Options{Workers: 8, Task: "loop-agreement"}, out)
	if !bytes.Equal(readFile(t, out), readFile(t, want)) {
		t.Fatal("w=8 loop-agreement stream differs from the serial reference")
	}
	var count, stamped int
	for _, line := range bytes.Split(bytes.TrimSpace(readFile(t, want)), []byte{'\n'}) {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		count++
		if e.Task == "loop-agreement" {
			stamped++
		}
	}
	if count == 0 || stamped != count {
		t.Fatalf("%d of %d entries stamped with the task spec", stamped, count)
	}
}

// TestConsensusSpecMatchesKSet1 cross-validates the zoo against the
// known small-n result: the consensus task decides exactly like 1-set
// consensus on every adversary.
func TestConsensusSpecMatchesKSet1(t *testing.T) {
	dir := t.TempDir()
	ks := filepath.Join(dir, "kset1.jsonl")
	cons := filepath.Join(dir, "consensus.jsonl")
	runJSONL(t, 3, Options{Workers: 4, Solve: true, KTask: 1}, ks)
	runJSONL(t, 3, Options{Workers: 4, Task: "consensus"}, cons)
	ksLines := bytes.Split(bytes.TrimSpace(readFile(t, ks)), []byte{'\n'})
	consLines := bytes.Split(bytes.TrimSpace(readFile(t, cons)), []byte{'\n'})
	if len(ksLines) != len(consLines) {
		t.Fatalf("entry counts differ: %d vs %d", len(ksLines), len(consLines))
	}
	for i := range ksLines {
		var a, b Entry
		if err := json.Unmarshal(ksLines[i], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(consLines[i], &b); err != nil {
			t.Fatal(err)
		}
		if a.Index != b.Index || a.Solved != b.Solved {
			t.Fatalf("index %d: solve coverage differs", a.Index)
		}
		switch {
		case a.Solvable == nil && b.Solvable == nil:
		case a.Solvable == nil || b.Solvable == nil || *a.Solvable != *b.Solvable:
			t.Fatalf("index %d: consensus and kset:k=1 verdicts differ", a.Index)
		}
		if b.Task != "consensus" {
			t.Fatalf("index %d: consensus entry task %q", b.Index, b.Task)
		}
	}
}

// TestCheckpointTaskMismatchRejected checks a sweep cannot resume a
// sidecar written under a different task spec: the fingerprint embeds
// the spec, and the family filter likewise.
func TestCheckpointTaskMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	rep := runJSONL(t, 3, Options{Workers: 1, Task: "loop-agreement", Checkpoint: ck, MaxIndices: 16}, out)
	if !rep.Incomplete {
		t.Fatal("budgeted run not incomplete")
	}
	for _, bad := range []Options{
		{Workers: 1, Solve: true, KTask: 1, Checkpoint: ck, Resume: true},
		{Workers: 1, Task: "approx:eps=1", Checkpoint: ck, Resume: true},
		{Workers: 1, Task: "loop-agreement", Family: "symmetric", Checkpoint: ck, Resume: true},
	} {
		sink, err := NewJSONLSink(filepath.Join(dir, "resume.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := Stream(3, bad, sink)
		sink.Close()
		if !errors.Is(serr, ErrCheckpointMismatch) {
			t.Fatalf("resume under %+v: err %v, want ErrCheckpointMismatch", bad, serr)
		}
	}
	// The matching spec resumes past the recorded frontier (bounded
	// again: fingerprint acceptance is the point, resume byte-identity
	// is pinned by the engine's own stream tests).
	fin := runJSONL(t, 3, Options{Workers: 4, Task: "loop-agreement", Checkpoint: ck, Resume: true, MaxIndices: 16}, out)
	if fin.NextIndex <= rep.NextIndex {
		t.Fatalf("matching-spec resume frontier %d did not advance past %d", fin.NextIndex, rep.NextIndex)
	}
}

// TestFamilyFilterTResilient checks the closed-form family size: the
// t-resilient family over n=3 is exactly the n adversaries A_{t-res},
// t ∈ [0, n-1], in both full and orbit mode (each member is fixed by
// every color permutation, so its orbit is a singleton).
func TestFamilyFilterTResilient(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	want := map[uint64]bool{}
	for tt := 0; tt < n; tt++ {
		want[adversary.EnumerationIndex(adversary.TResilient(n, tt))] = true
	}
	for _, orbits := range []bool{false, true} {
		out := filepath.Join(dir, "fam.jsonl")
		rep := runJSONL(t, n, Options{Workers: 4, Orbits: orbits, Family: "t-resilient"}, out)
		if got := rep.Summary.Total; got != uint64(n) {
			t.Fatalf("orbits=%v: family total %d, want %d", orbits, got, n)
		}
		seen := map[uint64]bool{}
		for _, line := range bytes.Split(bytes.TrimSpace(readFile(t, out)), []byte{'\n'}) {
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil {
				t.Fatal(err)
			}
			seen[e.Index] = true
			if orbits && e.OrbitSize != 1 {
				t.Fatalf("index %d: family member orbit size %d, want 1", e.Index, e.OrbitSize)
			}
		}
		if len(seen) != n {
			t.Fatalf("orbits=%v: %d distinct entries, want %d", orbits, len(seen), n)
		}
		for idx := range want {
			if !seen[idx] {
				t.Fatalf("orbits=%v: family member %d missing from the sweep", orbits, idx)
			}
		}
	}
	// A pinned parameter narrows to one member.
	out := filepath.Join(dir, "one.jsonl")
	rep := runJSONL(t, n, Options{Workers: 1, Family: "t-resilient:t=1"}, out)
	if rep.Summary.Total != 1 {
		t.Fatalf("t-resilient:t=1 total %d, want 1", rep.Summary.Total)
	}
}

// TestFamilyFilterErrors checks malformed and out-of-range family
// specs are rejected up front.
func TestFamilyFilterErrors(t *testing.T) {
	for _, spec := range []string{
		"unknown-family",
		"t-resilient:t=3", // t must be < n
		"t-resilient:k=1", // wrong parameter
		"symmetric:t=1",   // takes no parameter
		"k-obstruction-free:k=0",
		"t-resilient:t=",
	} {
		if _, err := resolveFamily(spec, 3); !errors.Is(err, ErrBadFamily) {
			t.Fatalf("family %q: err %v, want ErrBadFamily", spec, err)
		}
	}
	if f, err := resolveFamily("", 3); f != nil || err != nil {
		t.Fatalf("empty family: (%v, %v), want (nil, nil)", f, err)
	}
}
