package census

// Process-global census metric families. They register into
// obs.Default at init, so every sweep in the process — full-domain,
// orbit-mode, range-scoped fabric units, single-index Examiner queries
// — feeds one set of series, and any surface that Includes obs.Default
// (worker -debug-addr, census -debug-addr, coordinator /metrics)
// exposes them for free.

import "repro/internal/obs"

// classifyTaskLabel is the task label of classification-only sweeps:
// they examine adversaries without deciding any task, so their series
// are kept apart from every solve sweep's per-spec series.
const classifyTaskLabel = "classify"

var (
	censusIndicesExamined = obs.NewCounterVec("factool_census_indices_examined_total",
		"Enumeration indices examined (classified, and solved when solving).", "task")
	censusEntriesEmitted = obs.NewCounterVec("factool_census_entries_emitted_total",
		"Census entries delivered to sinks in frontier order.", "task")
	censusShardSeconds = obs.NewHistogram("factool_census_shard_seconds",
		"Per-shard examination latency in seconds (excludes reorder-window waits).",
		obs.DefaultLatencyBuckets)
	censusCheckpointSeconds = obs.NewHistogram("factool_census_checkpoint_seconds",
		"Checkpoint flush+persist latency in seconds.", obs.DefaultLatencyBuckets)
	censusReorderParked = obs.NewGauge("factool_census_reorder_parked",
		"Completed shards parked out-of-order in the reorder window.")
)

func init() {
	obs.Default.MustRegister("census-indices", censusIndicesExamined)
	obs.Default.MustRegister("census-entries", censusEntriesEmitted)
	obs.Default.MustRegister("census-shard-seconds", censusShardSeconds)
	obs.Default.MustRegister("census-checkpoint-seconds", censusCheckpointSeconds)
	obs.Default.MustRegister("census-reorder-parked", censusReorderParked)
}
