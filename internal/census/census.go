// Package census implements the sharded, parallel adversary-census
// engine: the paper's headline application of deciding task solvability
// across whole families of adversaries (the Figure 2 census domain),
// run as fast as the hardware allows.
//
// The enumeration space — every adversary over n processes, indexed by
// adversary.AdversaryAt — is partitioned into deterministic contiguous
// shards. A bounded worker pool classifies (and optionally solves) the
// adversaries of each shard, writing results into the entry slot of
// their enumeration index, so the aggregated report is byte-identical
// for every worker count. All solve jobs of one run share a single
// chromatic.Universe (one Chr² vertex identity space per n) and a
// single chromatic.TowerCache (iterated subdivisions built once per
// distinct R_A signature), which is what makes whole-landscape sweeps
// tractable.
package census

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// MaxDomain bounds the enumeration spaces a census run materializes:
// an entry is recorded per adversary, so the domain must fit in memory.
// 2^15 = 32768 covers n ≤ 4; n = 5 already has 2^31 adversaries.
const MaxDomain = 1 << 22

// ErrDomainTooLarge reports a census over an enumeration space beyond
// MaxDomain.
var ErrDomainTooLarge = errors.New("census: enumeration domain too large")

// Options tune a census run. The zero value selects the defaults:
// classification only, one worker per CPU.
type Options struct {
	// Workers bounds the shard worker pool. <= 0 selects one worker per
	// CPU; 1 runs the serial reference path. The report is identical
	// for every value.
	Workers int

	// ShardSize is the number of consecutive enumeration indices one
	// work unit covers. <= 0 selects a default scaled to the domain.
	ShardSize int

	// Solve additionally decides KTask-set consensus for every fair
	// adversary with setcon ≥ 1, building R_A over the run's shared
	// Universe and solving through the shared TowerCache.
	Solve bool

	// KTask is the k of the k-set consensus task decided when Solve is
	// set. <= 0 selects 1 (consensus).
	KTask int

	// MaxRounds bounds the solvability search (iterations of R_A).
	// <= 0 selects 1.
	MaxRounds int

	// VerifyWitnesses re-validates every witness map found by the solve
	// jobs through solver.VerifyWitnessWith (independent re-check of
	// the FACT positive direction).
	VerifyWitnesses bool

	// Cache is the shared iterated-subdivision cache for solve jobs.
	// Nil selects a cache private to the run.
	Cache *chromatic.TowerCache

	// Progress, when non-nil, is called after each completed shard with
	// the number of classified adversaries so far and the domain size.
	// Calls may come from any worker goroutine.
	Progress func(done, total uint64)
}

// Entry is the census record of one adversary. Every field is a
// schedule-independent function of the enumeration index, so entries
// compare byte-identical across worker counts.
type Entry struct {
	Index          uint64   `json:"index"`
	Adversary      string   `json:"adversary"`
	LiveSetMasks   []uint32 `json:"live_set_masks"`
	SupersetClosed bool     `json:"superset_closed"`
	Symmetric      bool     `json:"symmetric"`
	Fair           bool     `json:"fair"`
	Setcon         int      `json:"setcon"`
	CSize          int      `json:"csize"`

	// Solve-mode fields (omitted when the adversary was not solved:
	// Solve unset, unfair adversary, or empty R_A).
	Solved    bool  `json:"solved,omitempty"`
	Solvable  *bool `json:"solvable,omitempty"`
	Rounds    int   `json:"rounds,omitempty"`
	RAFacets  int   `json:"ra_facets,omitempty"`
	Undecided bool  `json:"undecided,omitempty"`
}

// Summary aggregates a census in enumeration order.
type Summary struct {
	N                   int      `json:"n"`
	Total               uint64   `json:"total"`
	SupersetClosed      uint64   `json:"superset_closed"`
	Symmetric           uint64   `json:"symmetric"`
	Fair                uint64   `json:"fair"`
	InclusionViolations uint64   `json:"inclusion_violations"`
	SetconHist          []uint64 `json:"setcon_hist"` // over fair adversaries; index = setcon

	// Solve-mode aggregates.
	KTask     int    `json:"k_task,omitempty"`
	Solved    uint64 `json:"solved,omitempty"`
	Solvable  uint64 `json:"solvable,omitempty"`
	Undecided uint64 `json:"undecided,omitempty"`
}

// Report is the full result of a census run: the summary, the
// per-adversary entries in enumeration order, and — when solve jobs ran
// — the shared subdivision-cache statistics. Marshalled to JSON it is
// byte-identical for every worker count.
type Report struct {
	Summary Summary               `json:"summary"`
	Cache   *chromatic.CacheStats `json:"cache,omitempty"`
	Entries []Entry               `json:"entries"`
}

// Run sweeps every adversary over n processes. See Options for the
// classify/solve modes; the returned report is deterministic.
func Run(n int, opts Options) (*Report, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("census: n must be in [1,6], got %d", n)
	}
	total := adversary.CensusSize(n)
	if total > MaxDomain {
		return nil, fmt.Errorf("%w: %d adversaries at n=%d (max %d)",
			ErrDomainTooLarge, total, n, MaxDomain)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = int(total / uint64(workers*8))
		if shardSize < 1 {
			shardSize = 1
		}
		if shardSize > 1024 {
			shardSize = 1024
		}
	}
	kTask := opts.KTask
	if kTask <= 0 {
		kTask = 1
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1
	}
	cache := opts.Cache
	if cache == nil {
		cache = chromatic.NewTowerCache()
	}

	env := &runEnv{
		n:         n,
		all:       adversary.EnumerationDomain(n),
		universe:  chromatic.NewUniverse(n),
		cache:     cache,
		solve:     opts.Solve,
		kTask:     kTask,
		maxRounds: maxRounds,
		verify:    opts.VerifyWitnesses,
	}

	entries := make([]Entry, total)
	shards := (total + uint64(shardSize) - 1) / uint64(shardSize)
	var cursor, done atomic.Uint64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := cursor.Add(1) - 1
				if s >= shards || firstErr.Load() != nil {
					return
				}
				lo := s * uint64(shardSize)
				hi := lo + uint64(shardSize)
				if hi > total {
					hi = total
				}
				for idx := lo; idx < hi; idx++ {
					e, err := env.examine(idx)
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					entries[idx] = e
				}
				if opts.Progress != nil {
					opts.Progress(done.Add(hi-lo), total)
				}
			}
		}()
	}
	wg.Wait()
	if perr := firstErr.Load(); perr != nil {
		return nil, *perr
	}

	rep := &Report{
		Summary: Summary{N: n, Total: total, SetconHist: make([]uint64, n+1)},
		Entries: entries,
	}
	for i := range entries {
		e := &entries[i]
		if e.SupersetClosed {
			rep.Summary.SupersetClosed++
		}
		if e.Symmetric {
			rep.Summary.Symmetric++
		}
		if e.Fair {
			rep.Summary.Fair++
			rep.Summary.SetconHist[e.Setcon]++
		}
		if (e.SupersetClosed || e.Symmetric) && !e.Fair {
			rep.Summary.InclusionViolations++
		}
		if e.Solved {
			rep.Summary.Solved++
			if e.Solvable != nil && *e.Solvable {
				rep.Summary.Solvable++
			}
			if e.Undecided {
				rep.Summary.Undecided++
			}
		}
	}
	if opts.Solve {
		rep.Summary.KTask = kTask
		st := cache.Snapshot()
		rep.Cache = &st
	}
	return rep, nil
}

// runEnv is the state shared by all workers of one census run.
type runEnv struct {
	n         int
	all       []procs.Set
	universe  *chromatic.Universe
	cache     *chromatic.TowerCache
	solve     bool
	kTask     int
	maxRounds int
	verify    bool
}

// examine classifies (and optionally solves) the adversary at one
// enumeration index. Pure per index: no cross-shard state beyond the
// concurrency-safe Universe and TowerCache.
func (env *runEnv) examine(idx uint64) (Entry, error) {
	a := adversary.AdversaryAtIn(env.n, env.all, idx)
	live := a.LiveSets()
	masks := make([]uint32, len(live))
	for i, s := range live {
		masks[i] = uint32(s)
	}
	e := Entry{
		Index:          idx,
		Adversary:      a.String(),
		LiveSetMasks:   masks,
		SupersetClosed: a.IsSupersetClosed(),
		Symmetric:      a.IsSymmetric(),
		Fair:           a.IsFair(),
		Setcon:         a.Setcon(),
		CSize:          a.CSize(),
	}
	if !env.solve || !e.Fair || e.Setcon < 1 {
		return e, nil
	}
	// Solve jobs run serially inside each worker (Workers: 1): the
	// census parallelism is across adversaries, not within one solve.
	ra, err := affine.BuildRAForAdversary(env.universe, a, affine.DefaultVariant)
	if err != nil {
		return e, fmt.Errorf("census: R_A for %v: %w", a, err)
	}
	e.RAFacets = ra.NumFacets()
	task := tasks.KSetConsensus(env.n, env.kTask)
	res, err := solver.SolveAffineWith(task, ra, env.maxRounds, solver.Options{
		Workers: 1,
		Cache:   env.cache,
	})
	e.Solved = true
	switch {
	case errors.Is(err, solver.ErrSearchLimit):
		e.Undecided = true
		return e, nil
	case err != nil:
		return e, fmt.Errorf("census: solve %v: %w", a, err)
	}
	solvable := res.Solvable
	e.Solvable = &solvable
	if solvable {
		e.Rounds = res.Rounds
		if env.verify {
			err := solver.VerifyWitnessWith(task, ra.Membership(), res.Rounds, res.Map,
				solver.Options{Workers: 1, Cache: env.cache, CacheKey: ra.Signature()})
			if err != nil {
				return e, fmt.Errorf("census: witness for %v rejected: %w", a, err)
			}
		}
	}
	return e, nil
}
