// Package census implements the sharded, parallel adversary-census
// engine: the paper's headline application of deciding task solvability
// across whole families of adversaries (the Figure 2 census domain),
// run as fast as the hardware allows.
//
// The enumeration space — every adversary over n processes, indexed by
// adversary.AdversaryAt — is partitioned into deterministic contiguous
// shards. A bounded worker pool classifies (and optionally solves) the
// adversaries of each shard; completed shards pass through a bounded
// reorder buffer that emits entries to a pluggable Sink in strict
// enumeration order, so every report and stream is byte-identical for
// every worker count while memory stays O(workers × ShardSize) entries
// — no full-domain slice, which is what lifts the engine from the
// MaxDomain cap toward the n=5 domain of 2^31 adversaries. Periodic
// checkpoints record the contiguous completed frontier plus the running
// aggregates, so an interrupted campaign resumes where it left off with
// byte-identical final output; an orbit mode sweeps one canonical
// representative per color-permutation orbit (adversary.Orbits) and
// weights the aggregates by orbit size, cutting the swept domain by up
// to n! while reporting the same totals.
//
// Orbit sweeps are driven by the stabilizer-aware canonical generator
// (adversary.Orbits.ForEachCanonicalFrom): a producer walks the
// canonical sequence directly — never visiting the non-canonical bulk —
// and slices it into rank-contiguous blocks of ShardSize
// representatives, so workers stay load-balanced instead of racing
// through empty stretches of raw indices. Checkpoints keep recording
// the raw-index frontier, so sidecars written by the old filter-based
// path resume unchanged and the output stays byte-identical to it.
//
// All solve jobs of one run share a single chromatic.Universe (one Chr²
// vertex identity space per n) and a single chromatic.TowerCache
// (iterated subdivisions built once per distinct R_A signature, LRU
// eviction under an optional byte budget), which is what makes
// whole-landscape sweeps tractable.
package census

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/chromatic"
	"repro/internal/obs"
)

// MaxDomain bounds the enumeration spaces Run materializes: the
// collector records an entry per adversary, so the domain must fit in
// memory. Streaming-sink runs (Stream) have no such cap — memory there
// is bounded by the reorder window, not the domain.
const MaxDomain = 1 << 22

// ErrDomainTooLarge reports a collecting census over an enumeration
// space beyond MaxDomain.
var ErrDomainTooLarge = errors.New("census: enumeration domain too large")

// Options tune a census run. The zero value selects the defaults:
// classification only, one worker per CPU.
type Options struct {
	// Workers bounds the shard worker pool. <= 0 selects one worker per
	// CPU; 1 runs the serial reference path. The report is identical
	// for every value.
	Workers int

	// ShardSize is the number of consecutive enumeration indices one
	// work unit covers — in orbit mode, the number of consecutive
	// canonical representatives (ranks in the canonical sequence), so
	// every work unit carries the same amount of real work. <= 0
	// selects a default scaled to the domain.
	ShardSize int

	// Solve additionally decides the configured task (Task, or
	// KTask-set consensus) for every fair adversary with setcon ≥ 1,
	// building R_A over the run's shared Universe and solving through
	// the shared TowerCache.
	Solve bool

	// Task is the spec of the task to decide — a registered tasks.Spec
	// string such as "kset:k=2", "loop-agreement" or "approx:eps=1".
	// Non-empty implies Solve; empty selects the KTask compat path
	// below. Non-kset specs stamp every emitted entry with the spec
	// string.
	Task string

	// KTask is the k of the k-set consensus task decided when Solve is
	// set and Task is empty — the pre-spec compat surface, equivalent
	// to Task "kset:k=<KTask>". <= 0 selects 1 (consensus).
	KTask int

	// Family, when non-empty, restricts the sweep to a named adversary
	// family ("t-resilient[:t=T]", "symmetric",
	// "k-obstruction-free[:k=K]"): frontiers and checkpoints keep their
	// whole-domain meaning, but only family members are examined,
	// emitted and aggregated — the summary totals equal the family
	// size. Family members are fixed by every color permutation, so
	// orbit mode emits each exactly once (orbit size 1).
	Family string

	// MaxRounds bounds the solvability search (iterations of R_A).
	// <= 0 selects 1.
	MaxRounds int

	// VerifyWitnesses re-validates every witness map found by the solve
	// jobs through solver.VerifyWitnessWith (independent re-check of
	// the FACT positive direction).
	VerifyWitnesses bool

	// Cache is the shared iterated-subdivision cache for solve jobs.
	// Nil selects a cache private to the run (byte-budgeted by
	// CacheBytes when set).
	Cache *chromatic.TowerCache

	// Universe is the Chr² vertex identity space solve jobs build R_A
	// over. Nil selects a run-private one; pass
	// chromatic.SharedUniverse(n) to share vertices with other engines
	// of the process (the store query layer does).
	Universe *chromatic.Universe

	// CacheBytes bounds the run-private tower cache (LRU eviction) so
	// long campaigns run flat. Only used when Cache is nil; <= 0 means
	// unbounded.
	CacheBytes int64

	// Orbits sweeps one canonical representative per color-permutation
	// orbit instead of the whole domain — up to n! fewer adversaries
	// examined. Emitted entries carry their orbit size and the summary
	// aggregates are orbit-weighted, so totals equal the full sweep's.
	// The sweep enumerates canonical representatives directly (the
	// stabilizer-aware generator), so only they are examined — and only
	// they are observed by examineHook.
	Orbits bool

	// Checkpoint, when non-empty, is the sidecar path the run
	// periodically records its frontier to (atomic write). See Resume.
	Checkpoint string

	// CheckpointEvery is the number of enumeration indices between
	// checkpoints. <= 0 selects a default.
	CheckpointEvery uint64

	// Resume continues from the Checkpoint sidecar when it exists: the
	// sweep restarts at the recorded frontier, resumable sinks truncate
	// to the recorded offset, and the final output is byte-identical to
	// an uninterrupted run. A missing sidecar starts fresh.
	Resume bool

	// MaxIndices, when > 0, budgets this run to about that many newly
	// swept enumeration indices (rounded up to whole shards). The run
	// stops cleanly at a contiguous frontier and reports Incomplete —
	// the deterministic form of an interruption, used with Checkpoint
	// to split a campaign across sessions.
	MaxIndices uint64

	// Budget, when > 0, is the wall-clock budget: once elapsed, workers
	// stop claiming new shards and the run winds down to a clean
	// frontier (checkpointed when Checkpoint is set).
	Budget time.Duration

	// Stop, when non-nil, interrupts the run when it becomes readable
	// (or is closed): the graceful-kill hook wired to SIGINT by
	// factool. Same clean wind-down as Budget.
	Stop <-chan struct{}

	// Progress, when non-nil, is called as the contiguous completed
	// frontier advances, with the number of enumeration indices done
	// (monotone) and the domain size. Calls come from worker
	// goroutines, one at a time.
	Progress func(done, total uint64)

	// Tracer records the run's spans (census.sweep → census.shard →
	// census.solve). Nil selects obs.DefaultTracer; tracing is always
	// on — the ring is bounded and span cost is nanoseconds against
	// shard work.
	Tracer *obs.Tracer

	// TraceParent, when nonzero, is the span the run's census.sweep
	// span nests under — the fabric worker passes its unit-lease span
	// here so one trace spans campaign → lease → sweep → solve.
	TraceParent obs.SpanID

	// examineHook, when non-nil, observes every examined index before
	// its entry is reordered (test instrumentation: any goroutine).
	examineHook func(idx uint64)

	// startIndex/endIndex clip the sweep to the raw index range
	// [startIndex, endIndex) — set only through SweepRange, which is
	// the supported surface (endIndex 0 means the domain end).
	// Range sweeps never checkpoint: the fabric's lease protocol is
	// their resume mechanism.
	startIndex uint64
	endIndex   uint64
}

// Entry is the census record of one adversary. Every field is a
// schedule-independent function of the enumeration index, so entries
// compare byte-identical across worker counts.
type Entry struct {
	Index          uint64   `json:"index"`
	Adversary      string   `json:"adversary"`
	LiveSetMasks   []uint32 `json:"live_set_masks"`
	SupersetClosed bool     `json:"superset_closed"`
	Symmetric      bool     `json:"symmetric"`
	Fair           bool     `json:"fair"`
	Setcon         int      `json:"setcon"`
	CSize          int      `json:"csize"`

	// OrbitSize is the number of adversaries in this entry's
	// color-permutation orbit (orbit-mode sweeps only, where the entry
	// is the orbit's canonical representative).
	OrbitSize uint64 `json:"orbit_size,omitempty"`

	// Solve-mode fields (omitted when the adversary was not solved:
	// Solve unset, unfair adversary, or empty R_A).
	Solved    bool  `json:"solved,omitempty"`
	Solvable  *bool `json:"solvable,omitempty"`
	Rounds    int   `json:"rounds,omitempty"`
	RAFacets  int   `json:"ra_facets,omitempty"`
	Undecided bool  `json:"undecided,omitempty"`

	// Task is the canonical spec of the task a solve-mode sweep
	// decided. Empty on the k-set consensus compat path, whose JSONL
	// predates task specs and stays byte-identical.
	Task string `json:"task,omitempty"`
}

// Summary aggregates a census in enumeration order. In orbit mode every
// counter is weighted by orbit size, so a reduced sweep reports the
// same totals as the full one; Orbits counts the representatives
// actually examined.
type Summary struct {
	N                   int      `json:"n"`
	Total               uint64   `json:"total"`
	SupersetClosed      uint64   `json:"superset_closed"`
	Symmetric           uint64   `json:"symmetric"`
	Fair                uint64   `json:"fair"`
	InclusionViolations uint64   `json:"inclusion_violations"`
	SetconHist          []uint64 `json:"setcon_hist"` // over fair adversaries; index = setcon

	// Orbits counts canonical representatives emitted (orbit mode).
	Orbits uint64 `json:"orbits,omitempty"`

	// Solve-mode aggregates. KTask reports the kset compat path; Task
	// is the canonical spec of every other decided task.
	KTask     int    `json:"k_task,omitempty"`
	Task      string `json:"task,omitempty"`
	Solved    uint64 `json:"solved,omitempty"`
	Solvable  uint64 `json:"solvable,omitempty"`
	Undecided uint64 `json:"undecided,omitempty"`
}

// Report is the result of a census run: the summary, the per-adversary
// entries when a Collector gathered them (Run), and — when solve jobs
// ran — the shared subdivision-cache statistics. Marshalled to JSON it
// is byte-identical for every worker count (budgeted cache stats
// excepted; see chromatic.CacheStats).
type Report struct {
	Summary Summary               `json:"summary"`
	Cache   *chromatic.CacheStats `json:"cache,omitempty"`

	// Incomplete reports an interrupted run (budget, MaxIndices, or
	// Stop): the sweep ended at the clean frontier NextIndex instead of
	// the end of the domain. Resume from the checkpoint to continue.
	Incomplete bool   `json:"incomplete,omitempty"`
	NextIndex  uint64 `json:"next_index,omitempty"`

	Entries []Entry `json:"entries,omitempty"`
}

// Run sweeps every adversary over n processes, materializing every
// entry in memory (domains up to MaxDomain). See Options for the
// classify/solve modes; the returned report is deterministic. For
// larger domains — or bounded memory on any domain — use Stream.
func Run(n int, opts Options) (*Report, error) {
	if n >= 1 && n <= 6 {
		if total := adversary.CensusSize(n); total > MaxDomain {
			return nil, fmt.Errorf("%w: %d adversaries at n=%d (max %d; use Stream)",
				ErrDomainTooLarge, total, n, MaxDomain)
		}
	}
	col := &Collector{}
	rep, err := Stream(n, opts, col)
	if err != nil {
		return nil, err
	}
	rep.Entries = col.Entries
	return rep, nil
}

// Stream sweeps the n-process domain, emitting every entry to the sink
// in strict enumeration order through a bounded reorder buffer: memory
// is O(Workers × ShardSize) entries regardless of the domain size. A
// nil sink aggregates only (the summarizer mode). The summary, the
// stream, and any checkpoint are byte-deterministic across worker
// counts and interruptions.
func Stream(n int, opts Options, sink Sink) (*Report, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("census: n must be in [1,6], got %d", n)
	}
	if sink == nil {
		sink = Discard{}
	}
	if opts.Resume && opts.Checkpoint == "" {
		// Silently ignoring Resume would reset persistent sinks to
		// offset zero — destroying the campaign output it was meant to
		// continue.
		return nil, errors.New("census: Resume requires a Checkpoint path")
	}
	total := adversary.CensusSize(n)
	env, err := newRunEnv(n, &opts)
	if err != nil {
		return nil, err
	}
	family, err := resolveFamily(opts.Family, n)
	if err != nil {
		return nil, err
	}
	fp := fingerprint(n, &opts, env.spec, family)
	kind := sinkKind(sink)

	// Resume state: the contiguous completed frontier and the running
	// aggregates recorded by the interrupted run's last checkpoint.
	start := uint64(0)
	var emitted uint64
	var outBytes int64
	sum := NewSummary(n)
	if opts.Resume {
		switch ck, err := LoadCheckpoint(opts.Checkpoint); {
		case err == nil:
			if err := ck.validate(fp, total, n, kind); err != nil {
				return nil, err
			}
			start, emitted, outBytes, sum = ck.NextIndex, ck.Emitted, ck.OutBytes, ck.Summary
		case errors.Is(err, os.ErrNotExist):
			// Fresh start: nothing checkpointed yet.
		default:
			return nil, err
		}
	}
	if rs, ok := sink.(ResumableSink); ok {
		if err := rs.ResumeAt(emitted, outBytes); err != nil {
			return nil, err
		}
	}

	// Range clipping (SweepRange): start at startIndex, stop the sweep
	// at endIndex as if the domain ended there. Checkpoints record
	// whole-campaign frontiers, so ranges and sidecars don't mix.
	end := total
	if opts.startIndex > 0 || opts.endIndex > 0 {
		if opts.Checkpoint != "" || opts.Resume {
			return nil, errors.New("census: range sweeps cannot checkpoint or resume")
		}
		if opts.endIndex > 0 && opts.endIndex < total {
			end = opts.endIndex
		}
		start = opts.startIndex
		if start > end {
			return nil, fmt.Errorf("census: range start %d beyond end %d", start, end)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	remaining := end - start
	shardSize := uint64(opts.ShardSize)
	if opts.ShardSize <= 0 {
		shardSize = remaining / uint64(workers*8)
		if shardSize < 1 {
			shardSize = 1
		}
		if shardSize > 1024 {
			shardSize = 1024
		}
	}
	checkpointEvery := opts.CheckpointEvery
	if checkpointEvery == 0 {
		checkpointEvery = 1 << 16
	}

	if opts.Orbits {
		env.orbits = adversary.NewOrbits(n)
	}

	sweep := env.tracer.Start("census.sweep", opts.TraceParent,
		"n", strconv.Itoa(n),
		"orbits", strconv.FormatBool(opts.Orbits),
		"solve", strconv.FormatBool(opts.Solve),
		"start", strconv.FormatUint(start, 10),
		"end", strconv.FormatUint(end, 10))
	defer sweep.End()

	// Shard budget of a full-domain run: whole domain remainder,
	// optionally capped by MaxIndices (rounded up to whole shards so
	// the frontier stays contiguous). Orbit runs are fed by the block
	// producer instead, which enforces MaxIndices itself.
	var shards uint64
	if !opts.Orbits {
		shards = (remaining + shardSize - 1) / shardSize
		if opts.MaxIndices > 0 {
			if budget := (opts.MaxIndices + shardSize - 1) / shardSize; budget < shards {
				shards = budget
			}
		}
	}

	em := &emitter{
		sink:            sink,
		sum:             &sum,
		total:           total,
		frontierIdx:     start,
		emitted:         emitted,
		parked:          make(map[uint64]parkedShard),
		window:          uint64(workers) * 4,
		checkpointPath:  opts.Checkpoint,
		checkpointEvery: checkpointEvery,
		lastCheckpoint:  start,
		fingerprint:     fp,
		sinkKind:        kind,
		taskLabel:       env.taskLabel,
		progress:        opts.Progress,
	}
	em.cond = sync.NewCond(&em.mu)

	// Interrupts: wall-clock budget and the external stop hook both
	// flip one flag; workers stop claiming new shards, finish the ones
	// they hold, and the reorder buffer drains to a clean frontier.
	var stop atomic.Bool
	runDone := make(chan struct{})
	defer close(runDone)
	if opts.Budget > 0 {
		t := time.AfterFunc(opts.Budget, func() { stop.Store(true) })
		defer t.Stop()
	}
	if opts.Stop != nil {
		go func() {
			select {
			case <-opts.Stop:
				stop.Store(true)
			case <-runDone:
			}
		}()
	}

	// Orbit mode: a dedicated producer runs the stabilizer-aware
	// canonical generator and slices its output into rank-contiguous
	// blocks of shardSize representatives; workers claim blocks instead
	// of raw index ranges. The channel capacity plus the reorder window
	// bound the prefetched blocks, so memory stays O(workers×ShardSize)
	// exactly as in the full-domain path.
	//
	// Solve-mode sweeps insert the big-orbit-first scheduler between the
	// producer and the workers: blocks are dispatched heaviest-first
	// within a lookahead bounded by the emitter's reorder window, so the
	// most expensive solve blocks start earliest (shorter stragglers fill
	// the tail) while the emitted stream stays in sequence order —
	// byte-identical to unscheduled dispatch.
	var orbitBlocks chan orbitBlock
	if env.orbits != nil {
		produced := make(chan orbitBlock, workers*4)
		prodQuit := make(chan struct{})
		defer close(prodQuit)
		go produceOrbitBlocks(env.orbits, produced, prodQuit, start, end, shardSize, opts.MaxIndices)
		orbitBlocks = produced
		if opts.Solve {
			scheduled := make(chan orbitBlock)
			go scheduleBigOrbitFirst(produced, scheduled, prodQuit, uint64(workers)*4)
			orbitBlocks = scheduled
		}
	}

	var cursor atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]Entry, 0, shardSize)
			for {
				if stop.Load() || em.aborted() {
					return
				}
				var s uint64
				var blk orbitBlock
				if orbitBlocks != nil {
					b, ok := <-orbitBlocks
					if !ok {
						return
					}
					blk, s = b, b.seq
				} else {
					s = cursor.Add(1) - 1
					if s >= shards {
						return
					}
				}
				if !em.waitTurn(s) {
					return
				}
				shardSpan := env.tracer.Start("census.shard", sweep.ID(),
					"seq", strconv.FormatUint(s, 10))
				shardStart := time.Now()
				buf = buf[:0]
				var covered uint64
				short := false
				if orbitBlocks != nil {
					// Stop lands between representatives, not blocks: a
					// solve job can take minutes per representative, so
					// the block is truncated here and delivered short —
					// the reorder buffer cuts the run off at its
					// boundary. The raw frontier after a truncation is
					// just past the last examined representative.
					covered = blk.lo
					for _, r := range blk.reps {
						if stop.Load() {
							short = true
							break
						}
						// Family filter: non-members still advance the
						// frontier (checkpoints stay whole-domain) but are
						// never examined or emitted.
						if family != nil && !family.member(r.idx) {
							covered = r.idx + 1
							continue
						}
						if opts.examineHook != nil {
							opts.examineHook(r.idx)
						}
						covered = r.idx + 1
						e, err := env.examine(r.idx, shardSpan.ID())
						if err != nil {
							em.fail(err)
							return
						}
						e.OrbitSize = r.size
						buf = append(buf, e)
					}
					if !short {
						covered = blk.hi
					}
				} else {
					lo := start + s*shardSize
					hi := lo + shardSize
					if hi > end {
						hi = end
					}
					covered = lo
					for idx := lo; idx < hi; idx++ {
						// Same mid-shard stop as the orbit path above.
						if stop.Load() {
							break
						}
						// Same family filter as the orbit path above.
						if family != nil && !family.member(idx) {
							covered = idx + 1
							continue
						}
						if opts.examineHook != nil {
							opts.examineHook(idx)
						}
						covered = idx + 1
						e, err := env.examine(idx, shardSpan.ID())
						if err != nil {
							em.fail(err)
							return
						}
						buf = append(buf, e)
					}
					short = covered < hi
				}
				censusShardSeconds.Observe(time.Since(shardStart).Seconds())
				shardSpan.SetAttr("entries", strconv.Itoa(len(buf)))
				shardSpan.End()
				entries := make([]Entry, len(buf))
				copy(entries, buf)
				if !em.deliver(s, entries, covered, short) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := em.err; err != nil {
		return nil, err
	}

	// Final flush + checkpoint at the clean frontier (also when the run
	// completed, so a follow-up resume is a no-op).
	if em.checkpointPath != "" {
		if err := em.writeCheckpoint(); err != nil {
			return nil, err
		}
	} else if f, ok := sink.(Flusher); ok {
		if err := f.Flush(); err != nil {
			return nil, err
		}
	}

	sweep.SetAttr("frontier", strconv.FormatUint(em.frontierIdx, 10))
	rep := &Report{Summary: sum}
	if em.frontierIdx < total {
		rep.Incomplete = true
		rep.NextIndex = em.frontierIdx
	}
	if opts.Solve {
		if env.spec.IsKSet() {
			rep.Summary.KTask = env.kTask
		} else {
			rep.Summary.Task = env.taskField
		}
		st := env.cache.Snapshot()
		rep.Cache = &st
	}
	return rep, nil
}

// emitter is the bounded reorder buffer between the unordered shard
// workers and the strictly ordered sink. Workers park completed shards;
// the worker that completes the frontier shard drains every contiguous
// successor — emitting entries, folding aggregates, checkpointing —
// then wakes the workers throttled by the window.
type emitter struct {
	mu   sync.Mutex
	cond *sync.Cond
	sink Sink
	sum  *Summary

	total uint64

	nextShard   uint64                 // next shard to emit
	frontierIdx uint64                 // first unswept enumeration index
	emitted     uint64                 // entries delivered to the sink
	parked      map[uint64]parkedShard // completed out-of-order shards
	window      uint64                 // max shards a worker may run ahead

	checkpointPath  string
	checkpointEvery uint64
	lastCheckpoint  uint64
	fingerprint     string
	sinkKind        string
	taskLabel       string

	// cutoff marks that a stop-truncated shard reached the frontier:
	// the emitted prefix ends inside that shard's index range, so no
	// later shard may be emitted (it would leave a hole). Set once,
	// ends the run.
	cutoff bool

	progress func(done, total uint64)
	err      error
}

// parkedShard is one completed shard awaiting its turn: its entries,
// the first raw index it did NOT cover, and whether a stop truncated
// it before its nominal end.
type parkedShard struct {
	entries []Entry
	hi      uint64
	short   bool
}

// canonRep is one canonical orbit representative with its orbit size,
// as emitted by the stabilizer-aware generator.
type canonRep struct{ idx, size uint64 }

// orbitBlock is one orbit-mode work unit: a rank-contiguous slice of
// the canonical sequence (shardSize representatives, except the last),
// plus the raw index range [lo, hi) it accounts for — every canonical
// index in that range is in reps, so hi is the raw frontier once the
// block is emitted.
type orbitBlock struct {
	seq  uint64
	reps []canonRep
	lo   uint64
	hi   uint64
}

// produceOrbitBlocks walks the canonical sequence from the resume
// frontier and slices it into rank blocks, with the channel send as
// backpressure (capacity + reorder window bound prefetch). MaxIndices
// budgets the sweep in raw enumeration indices, exactly like the
// full-domain path: the walk ends at the first representative at or
// beyond start+maxIndices and the final block's hi lands on that
// boundary, so the checkpointed frontier covers every skipped
// non-canonical index below it. quit unblocks the producer when the
// run winds down early (stop, budget, failure).
func produceOrbitBlocks(o *adversary.Orbits, out chan<- orbitBlock, quit <-chan struct{}, start, total, shardSize, maxIndices uint64) {
	defer close(out)
	limit := total
	// Overflow-safe: start+maxIndices can wrap on an "effectively
	// unlimited" budget, and a wrapped limit below start would regress
	// the frontier under already-emitted output.
	if maxIndices > 0 && maxIndices < total-start {
		limit = start + maxIndices
	}
	blk := orbitBlock{lo: start}
	aborted := false
	o.ForEachCanonicalFrom(start, func(idx, size uint64) bool {
		if idx >= limit {
			return false
		}
		blk.reps = append(blk.reps, canonRep{idx: idx, size: size})
		if uint64(len(blk.reps)) < shardSize {
			return true
		}
		blk.hi = idx + 1
		select {
		case out <- blk:
		case <-quit:
			aborted = true
			return false
		}
		blk = orbitBlock{seq: blk.seq + 1, lo: idx + 1}
		return true
	})
	if aborted {
		return
	}
	// Final (possibly empty) block: advances the raw frontier to the
	// sweep limit — every canonical representative below it is in a
	// block, so the non-canonical tail is accounted for.
	blk.hi = limit
	select {
	case out <- blk:
	case <-quit:
	}
}

// blockWeight is the big-orbit-first scheduling key of an orbit block:
// its total orbit weight (the number of raw adversaries the block
// accounts for). Large total weight means many asymmetric
// representatives — the blocks whose solve jobs dominate a sweep's wall
// clock — so dispatching them first keeps the cheap symmetric blocks
// for the tail, the longest-processing-time-first heuristic.
func blockWeight(b orbitBlock) uint64 {
	var w uint64
	for _, r := range b.reps {
		w += r.size
	}
	return w
}

// scheduleBigOrbitFirst re-orders orbit-block dispatch for solve-mode
// sweeps: among the buffered blocks it always hands workers the
// heaviest (blockWeight, ties to the lower sequence number) first.
// Emission order is untouched — the reorder buffer still emits blocks
// strictly by sequence — so the output is byte-identical to FIFO
// dispatch; only the wall-clock shape changes.
//
// The lookahead is bounded two ways: at most `lookahead` blocks are
// buffered, and no buffered block's sequence number runs `lookahead` or
// more past the lowest undispatched one. The second bound is the
// liveness invariant: every dispatched block then satisfies
// seq < lowestUndispatched + lookahead ≤ frontier + emitter window, so
// a worker holding a scheduled block always clears the emitter's
// waitTurn throttle and the frontier block cannot be starved behind
// stalled workers.
func scheduleBigOrbitFirst(in <-chan orbitBlock, out chan<- orbitBlock, quit <-chan struct{}, lookahead uint64) {
	defer close(out)
	if lookahead < 1 {
		lookahead = 1
	}
	var buf []orbitBlock
	nextSeq := uint64(0) // sequence number of the next block to arrive
	open := true
	for {
		for open && uint64(len(buf)) < lookahead {
			if len(buf) > 0 {
				minSeq := buf[0].seq
				for _, b := range buf[1:] {
					if b.seq < minSeq {
						minSeq = b.seq
					}
				}
				if nextSeq >= minSeq+lookahead {
					break // sequence window exhausted until minSeq goes out
				}
			}
			select {
			case b, ok := <-in:
				if !ok {
					open = false
				} else {
					buf = append(buf, b)
					nextSeq = b.seq + 1
				}
			case <-quit:
				return
			}
		}
		if len(buf) == 0 {
			return
		}
		best := 0
		bw := blockWeight(buf[0])
		for i := 1; i < len(buf); i++ {
			if w := blockWeight(buf[i]); w > bw || (w == bw && buf[i].seq < buf[best].seq) {
				best, bw = i, w
			}
		}
		b := buf[best]
		buf[best] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
		select {
		case out <- b:
		case <-quit:
			return
		}
	}
}

// waitTurn blocks the worker holding shard s until s is inside the
// reorder window — the backpressure that bounds parked memory. Returns
// false when the run failed or was cut off meanwhile.
func (em *emitter) waitTurn(s uint64) bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	for s >= em.nextShard+em.window && em.err == nil && !em.cutoff {
		em.cond.Wait()
	}
	return em.err == nil && !em.cutoff
}

// fail records the first error and wakes every throttled worker.
func (em *emitter) fail(err error) {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.err == nil {
		em.err = err
	}
	em.cond.Broadcast()
}

// aborted reports whether the run already failed or was cut off.
func (em *emitter) aborted() bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.err != nil || em.cutoff
}

// deliver parks a completed shard and drains the contiguous frontier.
// A short shard ends the drain at its covered boundary (cutoff): later
// shards would leave a hole after it, so they are discarded — their
// indices stay above the frontier and are re-swept on resume. Returns
// false when the worker should exit (failure or cutoff).
func (em *emitter) deliver(s uint64, entries []Entry, hi uint64, short bool) bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.err != nil || em.cutoff {
		return false
	}
	em.parked[s] = parkedShard{entries: entries, hi: hi, short: short}
	for !em.cutoff {
		batch, ok := em.parked[em.nextShard]
		if !ok {
			break
		}
		delete(em.parked, em.nextShard)
		for i := range batch.entries {
			e := &batch.entries[i]
			if err := em.sink.Emit(e); err != nil {
				em.err = err
				em.cond.Broadcast()
				return false
			}
			em.emitted++
			censusEntriesEmitted.With(em.taskLabel).Add(1)
			em.aggregate(e)
		}
		em.nextShard++
		// Every shard reports the first raw index it did not cover —
		// the raw-index frontier either way, which is what keeps
		// checkpoints compatible between full-domain shards and
		// orbit-mode rank blocks.
		em.frontierIdx = batch.hi
		if batch.short {
			em.cutoff = true
		}
		if em.checkpointPath != "" && em.frontierIdx-em.lastCheckpoint >= em.checkpointEvery {
			if err := em.writeCheckpointLocked(); err != nil {
				em.err = err
				em.cond.Broadcast()
				return false
			}
		}
		if em.progress != nil {
			em.progress(em.frontierIdx, em.total)
		}
	}
	censusReorderParked.Set(int64(len(em.parked)))
	em.cond.Broadcast()
	return !em.cutoff
}

// aggregate folds one emitted entry into the running summary. Callers
// hold em.mu.
func (em *emitter) aggregate(e *Entry) {
	em.sum.Accumulate(e)
}

// NewSummary returns an empty summary over an n-process domain.
func NewSummary(n int) Summary {
	return Summary{N: n, SetconHist: make([]uint64, n+1)}
}

// Accumulate folds one entry into the summary. Entries carrying an
// orbit size (canonical representatives of orbit-mode sweeps) weight
// every counter by it and count toward Orbits; plain entries weigh 1 —
// so a reduced sweep, a full sweep, and a store scan all aggregate to
// the same totals through this one function.
func (s *Summary) Accumulate(e *Entry) {
	w := uint64(1)
	if e.OrbitSize > 0 {
		w = e.OrbitSize
		s.Orbits++
	}
	s.Total += w
	if e.SupersetClosed {
		s.SupersetClosed += w
	}
	if e.Symmetric {
		s.Symmetric += w
	}
	if e.Fair {
		s.Fair += w
		if e.Setcon < len(s.SetconHist) {
			s.SetconHist[e.Setcon] += w
		}
	}
	if (e.SupersetClosed || e.Symmetric) && !e.Fair {
		s.InclusionViolations += w
	}
	if e.Solved {
		s.Solved += w
		if e.Solvable != nil && *e.Solvable {
			s.Solvable += w
		}
		if e.Undecided {
			s.Undecided += w
		}
	}
}

// writeCheckpoint flushes the sink and persists the frontier (entry
// point for the final checkpoint, after the workers are gone).
func (em *emitter) writeCheckpoint() error {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.writeCheckpointLocked()
}

func (em *emitter) writeCheckpointLocked() error {
	flushStart := time.Now()
	defer func() { censusCheckpointSeconds.Observe(time.Since(flushStart).Seconds()) }()
	if f, ok := em.sink.(Flusher); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	var outBytes int64
	if o, ok := em.sink.(OffsetSink); ok {
		outBytes = o.Offset()
	}
	ck := &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: em.fingerprint,
		NextIndex:   em.frontierIdx,
		Emitted:     em.emitted,
		OutBytes:    outBytes,
		SinkKind:    em.sinkKind,
		Summary:     *em.sum,
	}
	ck.Summary.SetconHist = append([]uint64(nil), em.sum.SetconHist...)
	if err := ck.write(em.checkpointPath); err != nil {
		return err
	}
	em.lastCheckpoint = em.frontierIdx
	return nil
}
