package census

// The per-index examination core of the census, factored out of the
// streaming engine so other subsystems — notably the store query layer
// (`factool serve`) — can classify or solve a single adversary on
// demand through the exact same code path the whole-domain sweeps use.

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/obs"
	"repro/internal/procs"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// runEnv is the state shared by all workers of one census run (and by
// all queries of one Examiner).
type runEnv struct {
	n         int
	all       []procs.Set
	universe  *chromatic.Universe
	cache     *chromatic.TowerCache
	orbits    *adversary.Orbits
	solve     bool
	spec      tasks.Spec
	taskField string // Entry.Task value: the spec string, "" on the kset compat path
	taskLabel string // metric label: the spec string when solving, "classify" otherwise
	kTask     int
	maxRounds int
	verify    bool
	tracer    *obs.Tracer
}

// newRunEnv normalizes the examination-shaping options into the shared
// environment: the resolved task spec (Options.Task, or the KTask
// compat path), defaulted rounds, a Universe (the run-private default,
// or opts.Universe to share e.g. chromatic.SharedUniverse across
// engines), and a TowerCache (opts.Cache, or a private one budgeted by
// CacheBytes).
func newRunEnv(n int, opts *Options) (*runEnv, error) {
	kTask := opts.KTask
	if kTask <= 0 {
		kTask = 1
	}
	spec := tasks.KSetSpec(kTask)
	if opts.Task != "" {
		var err error
		spec, err = tasks.ParseSpec(opts.Task)
		if err != nil {
			return nil, fmt.Errorf("census: %w", err)
		}
		if spec.IsKSet() {
			kTask = spec.Param("k")
		}
		// Naming a task is asking for its decision: Task implies Solve,
		// like the factool -task flag. Mutated through the pointer so
		// the callers' later opts.Solve reads agree.
		opts.Solve = true
	}
	// Probe the registry once so a spec the builder rejects fails the
	// run up front, not per examined index.
	if opts.Solve {
		if _, err := spec.Build(n); err != nil {
			return nil, fmt.Errorf("census: %w", err)
		}
	}
	taskField := ""
	if !spec.IsKSet() {
		taskField = spec.String()
	}
	taskLabel := classifyTaskLabel
	if opts.Solve {
		taskLabel = spec.String()
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1
	}
	cache := opts.Cache
	if cache == nil {
		if opts.CacheBytes > 0 {
			cache = chromatic.NewTowerCacheWithBudget(opts.CacheBytes)
		} else {
			cache = chromatic.NewTowerCache()
		}
	}
	universe := opts.Universe
	if universe == nil {
		universe = chromatic.NewUniverse(n)
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer
	}
	return &runEnv{
		n:         n,
		all:       adversary.EnumerationDomain(n),
		universe:  universe,
		cache:     cache,
		solve:     opts.Solve,
		spec:      spec,
		taskField: taskField,
		taskLabel: taskLabel,
		kTask:     kTask,
		maxRounds: maxRounds,
		verify:    opts.VerifyWitnesses,
		tracer:    tracer,
	}, nil
}

// examine classifies (and optionally solves) the adversary at one
// enumeration index, recording a census.solve span under parent when a
// solve job runs. Pure per index: no cross-shard state beyond the
// concurrency-safe Universe and TowerCache, so concurrent calls are
// safe.
func (env *runEnv) examine(idx uint64, parent obs.SpanID) (Entry, error) {
	censusIndicesExamined.With(env.taskLabel).Add(1)
	a := adversary.AdversaryAtIn(env.n, env.all, idx)
	live := a.LiveSets()
	masks := make([]uint32, len(live))
	for i, s := range live {
		masks[i] = uint32(s)
	}
	e := Entry{
		Index:          idx,
		Adversary:      a.String(),
		LiveSetMasks:   masks,
		SupersetClosed: a.IsSupersetClosed(),
		Symmetric:      a.IsSymmetric(),
		Fair:           a.IsFair(),
		Setcon:         a.Setcon(),
		CSize:          a.CSize(),
	}
	// Non-kset sweeps stamp every entry with the spec, so stores built
	// from them know which task their solve verdicts answer. The kset
	// path leaves the field empty: its JSONL predates task specs and
	// must stay byte-identical.
	if env.solve {
		e.Task = env.taskField
	}
	if !env.solve || !e.Fair || e.Setcon < 1 {
		return e, nil
	}
	// Solve jobs run serially inside each worker (Workers: 1): the
	// census parallelism is across adversaries, not within one solve.
	solveSpan := env.tracer.Start("census.solve", parent,
		"index", strconv.FormatUint(idx, 10))
	defer solveSpan.End()
	ra, err := affine.BuildRAForAdversary(env.universe, a, affine.DefaultVariant)
	if err != nil {
		return e, fmt.Errorf("census: R_A for %v: %w", a, err)
	}
	e.RAFacets = ra.NumFacets()
	// The task is built per call, never shared: its complexes would
	// otherwise be read by concurrent solve jobs of different workers.
	task, err := env.spec.Build(env.n)
	if err != nil {
		return e, fmt.Errorf("census: task %s: %w", env.spec, err)
	}
	res, err := solver.SolveAffineWith(task, ra, env.maxRounds, solver.Options{
		Workers:     1,
		Cache:       env.cache,
		TaskLabel:   env.taskLabel,
		TraceParent: solveSpan.ID(),
	})
	e.Solved = true
	switch {
	case errors.Is(err, solver.ErrSearchLimit):
		e.Undecided = true
		solveSpan.SetAttr("outcome", "undecided")
		return e, nil
	case err != nil:
		return e, fmt.Errorf("census: solve %v: %w", a, err)
	}
	solvable := res.Solvable
	e.Solvable = &solvable
	solveSpan.SetAttr("outcome", map[bool]string{true: "solvable", false: "unsolvable"}[solvable])
	if solvable {
		e.Rounds = res.Rounds
		if env.verify {
			err := solver.VerifyWitnessTables(task, ra, res.Rounds, res.Map,
				solver.Options{Workers: 1, Cache: env.cache, CacheKey: ra.Signature()})
			if err != nil {
				return e, fmt.Errorf("census: witness for %v rejected: %w", a, err)
			}
		}
	}
	return e, nil
}

// Examiner answers single-index census queries — the live-computation
// fallback of the store query layer. It shares the census examination
// code path exactly (same Entry for the same index and options as a
// whole-domain sweep) and is safe for concurrent use: the Universe and
// TowerCache it holds are concurrency-safe and every query builds its
// own adversary.
type Examiner struct {
	env *runEnv
}

// NewExaminer builds an examiner for n-process queries. Only the
// examination-shaping options are read: Solve, Task/KTask, MaxRounds,
// VerifyWitnesses, Cache/CacheBytes and Universe. Pass
// chromatic.SharedUniverse(n) as opts.Universe to share the vertex
// identity space with other engines of the process.
func NewExaminer(n int, opts Options) (*Examiner, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("census: n must be in [1,6], got %d", n)
	}
	env, err := newRunEnv(n, &opts)
	if err != nil {
		return nil, err
	}
	return &Examiner{env: env}, nil
}

// N returns the system size queries are answered for.
func (x *Examiner) N() int { return x.env.n }

// TaskSpec returns the canonical spec of the task the examiner decides
// in solve mode (the kset spec on the KTask compat path).
func (x *Examiner) TaskSpec() string { return x.env.spec.String() }

// Examine classifies (and, when the examiner solves, decides) the
// adversary at the given enumeration index.
func (x *Examiner) Examine(idx uint64) (Entry, error) {
	if idx >= adversary.CensusSize(x.env.n) {
		return Entry{}, fmt.Errorf("census: index %d beyond the n=%d domain", idx, x.env.n)
	}
	return x.env.examine(idx, 0)
}

// CacheSnapshot reports the examiner's tower-cache statistics.
func (x *Examiner) CacheSnapshot() chromatic.CacheStats {
	return x.env.cache.Snapshot()
}

// Clone returns a deep copy of the entry: retained entries must not
// alias the masks slice or the solvability pointer of the original.
func (e *Entry) Clone() *Entry {
	cp := *e
	if e.LiveSetMasks != nil {
		// make+copy, not append: an empty adversary's masks are an
		// empty non-nil slice, which must stay [] (not null) in JSON.
		cp.LiveSetMasks = make([]uint32, len(e.LiveSetMasks))
		copy(cp.LiveSetMasks, e.LiveSetMasks)
	}
	if e.Solvable != nil {
		v := *e.Solvable
		cp.Solvable = &v
	}
	return &cp
}
