package census

// Rank-range-scoped sweeps: the library entrypoint the distributed
// fabric's workers drive. A range sweep is an ordinary Stream over the
// raw index window [lo, hi) — full-domain shards or orbit blocks alike
// — so its output is byte-identical to the corresponding slice of a
// whole-domain sweep, and shards produced by disjoint ranges merge
// into exactly the single-node store.

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
)

// SweepRange sweeps exactly the raw enumeration indices [lo, hi) of
// the n-process domain, emitting to the sink in index order. In orbit
// mode only the canonical representatives inside the range are
// examined (ranges with boundaries on arbitrary raw indices partition
// the canonical sequence cleanly). The report is Incomplete only when
// the sweep stopped short of hi (Budget or Stop); range sweeps never
// checkpoint — re-acquiring the range is the resume mechanism — so
// opts.Checkpoint, opts.Resume and opts.MaxIndices must be unset.
func SweepRange(n int, opts Options, sink Sink, lo, hi uint64) (*Report, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("census: n must be in [1,6], got %d", n)
	}
	total := adversary.CensusSize(n)
	if lo > hi || hi > total {
		return nil, fmt.Errorf("census: range [%d, %d) outside the n=%d domain [0, %d]", lo, hi, n, total)
	}
	if opts.Checkpoint != "" || opts.Resume {
		return nil, errors.New("census: range sweeps cannot checkpoint or resume")
	}
	if opts.MaxIndices > 0 {
		return nil, errors.New("census: SweepRange bounds the sweep itself; MaxIndices must be unset")
	}
	if lo == hi {
		rep := &Report{Summary: NewSummary(n)}
		if f, ok := sink.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return nil, err
			}
		}
		return rep, nil
	}
	opts.startIndex = lo
	opts.endIndex = hi
	rep, err := Stream(n, opts, sink)
	if err != nil {
		return nil, err
	}
	// Stream judges completeness against the whole domain; a range
	// sweep is complete once its frontier reaches hi.
	if rep.Incomplete && rep.NextIndex >= hi {
		rep.Incomplete = false
		rep.NextIndex = 0
	}
	return rep, nil
}
