package census

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runJSONL streams the n-domain to a JSONL file with the given options
// and returns the final report. Fails the test on error.
func runJSONL(t *testing.T, n int, opts Options, path string) *Report {
	t.Helper()
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, serr := Stream(n, opts, sink)
	if cerr := sink.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if serr != nil {
		t.Fatal(serr)
	}
	return rep
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamMatchesRun checks the streamed entry sequence and summary
// equal the collecting engine's report exactly.
func TestStreamMatchesRun(t *testing.T) {
	rep, err := Run(3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var col Collector
	srep, err := Stream(3, Options{Workers: 4, ShardSize: 5}, &col)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Incomplete {
		t.Fatal("full stream reported incomplete")
	}
	if fmt.Sprintf("%+v", srep.Summary) != fmt.Sprintf("%+v", rep.Summary) {
		t.Fatalf("summaries differ:\n%+v\n%+v", srep.Summary, rep.Summary)
	}
	if len(col.Entries) != len(rep.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(col.Entries), len(rep.Entries))
	}
	a, _ := json.Marshal(col.Entries)
	b, _ := json.Marshal(rep.Entries)
	if !bytes.Equal(a, b) {
		t.Fatal("streamed entries differ from collected entries")
	}
}

// TestStreamJSONLDeterministic checks the JSONL byte stream is
// identical for every worker count and shard size.
func TestStreamJSONLDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "w1.jsonl")
	runJSONL(t, 3, Options{Workers: 1}, base)
	want := readFile(t, base)
	if len(want) == 0 {
		t.Fatal("empty stream")
	}
	for i, opts := range []Options{
		{Workers: 8},
		{Workers: 8, ShardSize: 1},
		{Workers: 3, ShardSize: 7},
	} {
		path := filepath.Join(dir, fmt.Sprintf("v%d.jsonl", i))
		runJSONL(t, 3, opts, path)
		if !bytes.Equal(readFile(t, path), want) {
			t.Fatalf("JSONL differs for %+v", opts)
		}
	}
}

// TestStreamBoundedWindow asserts the tentpole memory property: with a
// sink that stalls on the first entry, workers stop claiming shards
// once the reorder window (workers × 4 shards) fills — the engine never
// materializes the domain.
func TestStreamBoundedWindow(t *testing.T) {
	const workers, shardSize = 2, 1
	release := make(chan struct{})
	var examined atomic.Uint64
	var once sync.Once
	blocking := sinkFunc(func(e *Entry) error {
		once.Do(func() { <-release }) // stall the frontier
		return nil
	})
	opts := Options{Workers: workers, ShardSize: shardSize}
	opts.examineHook = func(uint64) { examined.Add(1) }

	done := make(chan *Report, 1)
	go func() {
		rep, err := Stream(3, opts, blocking)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()

	// The first Emit blocks while holding the reorder lock, so the
	// frontier cannot advance; workers may claim at most window
	// (workers*4) shards ahead plus the ones they already hold.
	maxAhead := uint64(workers*4+workers) * shardSize
	waitForStall(t, &examined, maxAhead)
	if got := examined.Load(); got > maxAhead {
		t.Fatalf("examined %d indices with a stalled sink, window bound is %d", got, maxAhead)
	}
	close(release)
	rep := <-done
	if rep != nil && rep.Summary.Total != 128 {
		t.Fatalf("total = %d after release, want 128", rep.Summary.Total)
	}
}

// waitForStall polls until the examined counter stops moving (two equal
// consecutive reads with a scheduler yield between them, after it
// first moves at all).
func waitForStall(t *testing.T, c *atomic.Uint64, bound uint64) {
	t.Helper()
	var last uint64
	stable := 0
	for i := 0; i < 10000; i++ {
		cur := c.Load()
		if cur > bound {
			return // over the bound already: let the caller fail
		}
		if cur == last && cur > 0 {
			stable++
			if stable > 50 {
				return
			}
		} else {
			stable = 0
		}
		last = cur
		time.Sleep(time.Millisecond)
	}
}

// sinkFunc adapts a function to a Sink.
type sinkFunc func(e *Entry) error

func (f sinkFunc) Emit(e *Entry) error { return f(e) }

// TestStreamCheckpointResume is the kill/resume acceptance test: a run
// interrupted by MaxIndices and resumed from its checkpoint produces a
// byte-identical JSONL stream and an identical summary, serial and
// parallel, including across worker-count changes mid-campaign.
func TestStreamCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Workers: 1}, full)
	want := readFile(t, full)
	fullRep, err := Run(3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantSum, _ := json.Marshal(fullRep.Summary)

	for _, workers := range []int{1, 4} {
		for _, resumeWorkers := range []int{1, 7} {
			name := fmt.Sprintf("w%d-then-w%d", workers, resumeWorkers)
			out := filepath.Join(dir, name+".jsonl")
			ck := filepath.Join(dir, name+".ckpt")

			part := runJSONL(t, 3, Options{
				Workers: workers, ShardSize: 4,
				Checkpoint: ck, CheckpointEvery: 8,
				MaxIndices: 52,
			}, out)
			if !part.Incomplete {
				t.Fatalf("%s: budgeted run not reported incomplete", name)
			}
			if part.NextIndex == 0 || part.NextIndex >= 128 {
				t.Fatalf("%s: frontier %d", name, part.NextIndex)
			}
			if ckpt, err := LoadCheckpoint(ck); err != nil || ckpt.NextIndex != part.NextIndex {
				t.Fatalf("%s: checkpoint frontier %v / %v vs report %d", name, ckpt, err, part.NextIndex)
			}

			fin := runJSONL(t, 3, Options{
				Workers: resumeWorkers, ShardSize: 9,
				Checkpoint: ck, Resume: true,
			}, out)
			if fin.Incomplete {
				t.Fatalf("%s: resumed run incomplete at %d", name, fin.NextIndex)
			}
			if got := readFile(t, out); !bytes.Equal(got, want) {
				t.Fatalf("%s: resumed JSONL differs from uninterrupted run (%d vs %d bytes)", name, len(got), len(want))
			}
			gotSum, _ := json.Marshal(fin.Summary)
			if !bytes.Equal(gotSum, wantSum) {
				t.Fatalf("%s: resumed summary differs:\n%s\n%s", name, gotSum, wantSum)
			}
		}
	}
}

// TestStreamResumeTruncatesTail checks crash recovery: output written
// beyond the last checkpoint (a torn tail) is truncated on resume, so
// the final stream has no duplicate or phantom lines.
func TestStreamResumeTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "out.ckpt")
	runJSONL(t, 3, Options{Workers: 2, ShardSize: 4, Checkpoint: ck, CheckpointEvery: 16, MaxIndices: 64}, out)
	// Simulate a crash after the checkpoint: garbage tail past the
	// recorded offset.
	f, err := os.OpenFile(out, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"torn\":true"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runJSONL(t, 3, Options{Workers: 2, Checkpoint: ck, Resume: true}, out)
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Workers: 1}, full)
	if !bytes.Equal(readFile(t, out), readFile(t, full)) {
		t.Fatal("torn tail survived resume")
	}
}

// TestStreamStopChannel interrupts a run through the Stop hook and
// checks it winds down to a clean checkpointed frontier that resumes to
// byte-identical output.
func TestStreamStopChannel(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "out.ckpt")
	stop := make(chan struct{})
	var once sync.Once
	opts := Options{
		Workers: 4, ShardSize: 1,
		Checkpoint: ck, CheckpointEvery: 4,
		Stop: stop,
		Progress: func(done, total uint64) {
			if done >= 16 {
				once.Do(func() { close(stop) })
			}
		},
	}
	rep := runJSONL(t, 3, opts, out)
	if !rep.Incomplete {
		t.Skip("run completed before the stop landed (tiny domain)")
	}
	fin := runJSONL(t, 3, Options{Workers: 4, Checkpoint: ck, Resume: true}, out)
	if fin.Incomplete {
		t.Fatalf("resumed run incomplete at %d", fin.NextIndex)
	}
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Workers: 1}, full)
	if !bytes.Equal(readFile(t, out), readFile(t, full)) {
		t.Fatal("stop/resume output differs from uninterrupted run")
	}
}

// TestStreamCheckpointMismatch checks a checkpoint from different run
// parameters is rejected instead of silently blending streams.
func TestStreamCheckpointMismatch(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "out.ckpt")
	runJSONL(t, 3, Options{Checkpoint: ck, MaxIndices: 32, ShardSize: 8}, out)
	sink, err := NewJSONLSink(out)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if _, err := Stream(3, Options{Checkpoint: ck, Resume: true, Orbits: true}, sink); err == nil {
		t.Fatal("orbit-mode resume of a full-sweep checkpoint must fail")
	}
	if _, err := Stream(2, Options{Checkpoint: ck, Resume: true}, sink); err == nil {
		t.Fatal("n=2 resume of an n=3 checkpoint must fail")
	}
}

// TestOrbitCensusTotals is the symmetry-reduction acceptance test: the
// orbit-mode census examines strictly fewer adversaries yet reports
// exactly the full sweep's totals, for n ≤ 4 (n=4 skipped in -short).
func TestOrbitCensusTotals(t *testing.T) {
	ns := []int{1, 2, 3}
	if !testing.Short() {
		ns = append(ns, 4)
	}
	for _, n := range ns {
		fullRep, err := Run(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var col Collector
		orbRep, err := Stream(n, Options{Orbits: true, Workers: 4}, &col)
		if err != nil {
			t.Fatal(err)
		}
		want := fullRep.Summary
		got := orbRep.Summary
		got.Orbits = 0 // the only legitimately differing field
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("n=%d: orbit summary differs from full sweep:\n%+v\n%+v", n, got, want)
		}
		if n >= 2 && uint64(len(col.Entries)) >= fullRep.Summary.Total {
			t.Fatalf("n=%d: orbit mode examined %d of %d — no reduction", n, len(col.Entries), fullRep.Summary.Total)
		}
		if orbRep.Summary.Orbits != uint64(len(col.Entries)) {
			t.Fatalf("n=%d: orbit count %d vs %d entries", n, orbRep.Summary.Orbits, len(col.Entries))
		}
		var weight uint64
		for _, e := range col.Entries {
			if e.OrbitSize == 0 {
				t.Fatalf("n=%d: entry %d missing orbit size", n, e.Index)
			}
			weight += e.OrbitSize
		}
		if weight != fullRep.Summary.Total {
			t.Fatalf("n=%d: orbit sizes sum to %d, want %d", n, weight, fullRep.Summary.Total)
		}
	}
}

// TestOrbitCensusSolveTotals checks orbit weighting through the solve
// path at n=2: weighted solve counters match the full solving sweep.
func TestOrbitCensusSolveTotals(t *testing.T) {
	full, err := Run(2, Options{Solve: true, KTask: 1, VerifyWitnesses: true})
	if err != nil {
		t.Fatal(err)
	}
	orb, err := Stream(2, Options{Solve: true, KTask: 1, VerifyWitnesses: true, Orbits: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if orb.Summary.Solved != full.Summary.Solved ||
		orb.Summary.Solvable != full.Summary.Solvable ||
		orb.Summary.Undecided != full.Summary.Undecided {
		t.Fatalf("orbit solve counters differ: %+v vs %+v", orb.Summary, full.Summary)
	}
}

// TestOrbitCheckpointResume checks the n=5 campaign shape end to end at
// n=3: an orbit-reduced streaming sweep, interrupted and resumed, is
// byte-identical to its uninterrupted counterpart.
func TestOrbitCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Orbits: true, Workers: 1}, full)

	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "out.ckpt")
	part := runJSONL(t, 3, Options{Orbits: true, Workers: 4, ShardSize: 4, Checkpoint: ck, CheckpointEvery: 8, MaxIndices: 40}, out)
	if !part.Incomplete {
		t.Fatal("budgeted orbit run not incomplete")
	}
	fin := runJSONL(t, 3, Options{Orbits: true, Workers: 2, Checkpoint: ck, Resume: true}, out)
	if fin.Incomplete {
		t.Fatal("resumed orbit run incomplete")
	}
	if !bytes.Equal(readFile(t, out), readFile(t, full)) {
		t.Fatal("orbit resume output differs from uninterrupted run")
	}
	if fin.Summary.Total != 128 {
		t.Fatalf("orbit-weighted total = %d, want 128", fin.Summary.Total)
	}
}

// TestStreamDomainBeyondMaxDomainGate pins the MaxDomain boundary: Run
// still refuses n=5 (collector memory), Stream does not gate on domain
// size (a budgeted probe of the first shards must succeed).
func TestStreamDomainBeyondMaxDomainGate(t *testing.T) {
	if _, err := Run(5, Options{}); !errors.Is(err, ErrDomainTooLarge) {
		t.Fatalf("Run(5) = %v, want ErrDomainTooLarge", err)
	}
	rep, err := Stream(5, Options{Workers: 2, ShardSize: 8, MaxIndices: 32}, nil)
	if err != nil {
		t.Fatalf("budgeted n=5 stream: %v", err)
	}
	if !rep.Incomplete || rep.NextIndex != 32 {
		t.Fatalf("n=5 probe: incomplete=%v next=%d, want true/32", rep.Incomplete, rep.NextIndex)
	}
	if rep.Summary.Total != 32 {
		t.Fatalf("n=5 probe total = %d, want 32", rep.Summary.Total)
	}
}

// TestStreamSinkKindMismatch guards the campaign against silently
// losing its swept prefix: a checkpoint written without a persistent
// sink cannot be resumed with one (and vice versa).
func TestStreamSinkKindMismatch(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	// Summary-only (volatile) interrupted run.
	if _, err := Stream(3, Options{Checkpoint: ck, MaxIndices: 32, ShardSize: 8}, nil); err != nil {
		t.Fatal(err)
	}
	sink, err := NewJSONLSink(filepath.Join(dir, "out.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if _, err := Stream(3, Options{Checkpoint: ck, Resume: true}, sink); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("persistent resume of a volatile checkpoint = %v, want ErrCheckpointMismatch", err)
	}
	// And the reverse: a JSONL checkpoint resumed summary-only.
	ck2 := filepath.Join(dir, "ck2.json")
	sink2, err := NewJSONLSink(filepath.Join(dir, "out2.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	if _, err := Stream(3, Options{Checkpoint: ck2, MaxIndices: 32, ShardSize: 8}, sink2); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(3, Options{Checkpoint: ck2, Resume: true}, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("volatile resume of a persistent checkpoint = %v, want ErrCheckpointMismatch", err)
	}
	// Matching kinds still resume fine.
	if rep, err := Stream(3, Options{Checkpoint: ck, Resume: true}, nil); err != nil || rep.Incomplete {
		t.Fatalf("volatile/volatile resume: %v (incomplete=%v)", err, rep != nil && rep.Incomplete)
	}
}

// TestStreamStopMidShard checks the stop hook lands between indices,
// not shards: with one worker and a big shard, the frontier must end
// inside the first shard (bounded overshoot), and the resumed run must
// still be byte-identical.
func TestStreamStopMidShard(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	stop := make(chan struct{})
	var once sync.Once
	opts := Options{
		Workers: 1, ShardSize: 64,
		Checkpoint: ck, Stop: stop,
	}
	opts.examineHook = func(idx uint64) {
		if idx == 10 {
			once.Do(func() { close(stop) })
			// Give the stop watcher time to latch before the worker
			// reaches the next index check.
			time.Sleep(100 * time.Millisecond)
		}
	}
	part := runJSONL(t, 3, opts, out)
	if !part.Incomplete {
		t.Fatal("stopped run not incomplete")
	}
	if part.NextIndex <= 10 || part.NextIndex >= 64 {
		t.Fatalf("frontier %d: stop should land mid-shard (10 < frontier < 64)", part.NextIndex)
	}
	fin := runJSONL(t, 3, Options{Workers: 4, Checkpoint: ck, Resume: true}, out)
	if fin.Incomplete {
		t.Fatal("resumed run incomplete")
	}
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Workers: 1}, full)
	if !bytes.Equal(readFile(t, out), readFile(t, full)) {
		t.Fatal("mid-shard stop/resume output differs from uninterrupted run")
	}
}

// TestStreamResumeRequiresCheckpoint guards the campaign's output: a
// Resume without a Checkpoint path would silently reset persistent
// sinks to offset zero, so it must be rejected before the sink is
// touched.
func TestStreamResumeRequiresCheckpoint(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	part := runJSONL(t, 3, Options{Checkpoint: ck, MaxIndices: 32, ShardSize: 8}, out)
	if !part.Incomplete {
		t.Fatal("budgeted run not incomplete")
	}
	before := readFile(t, out)
	sink, err := NewJSONLSink(out)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if _, err := Stream(3, Options{Resume: true}, sink); err == nil {
		t.Fatal("Resume without Checkpoint must fail")
	}
	if got := readFile(t, out); !bytes.Equal(got, before) {
		t.Fatalf("rejected resume touched the output: %d bytes -> %d", len(before), len(got))
	}
}
