package census

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// gunzip inflates a (possibly multi-member) gzip file.
func gunzip(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	b, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCompressedSinkMatchesPlain: the gzip sink's decompressed stream
// is byte-identical to the plain JSONL stream, and the ".gz" suffix
// selects compression automatically.
func TestCompressedSinkMatchesPlain(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "census.jsonl")
	gz := filepath.Join(dir, "census.jsonl.gz")
	for _, path := range []string{plain, gz} {
		sink, err := NewJSONLSink(path)
		if err != nil {
			t.Fatal(err)
		}
		if path == gz && !sink.Compressed() {
			t.Fatal(".gz suffix should select compression")
		}
		if path == plain && sink.Compressed() {
			t.Fatal("plain path should not compress")
		}
		if _, err := Stream(3, Options{Workers: 4}, sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(want) {
		t.Errorf("compressed stream (%d bytes) not smaller than plain (%d bytes)", len(comp), len(want))
	}
	if got := gunzip(t, gz); !bytes.Equal(got, want) {
		t.Errorf("decompressed stream differs from plain stream (%d vs %d bytes)", len(got), len(want))
	}
	// NewJSONLSinkCompressed forces compression regardless of suffix.
	forced, err := NewJSONLSinkCompressed(filepath.Join(dir, "forced.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Compressed() {
		t.Error("NewJSONLSinkCompressed should compress")
	}
	forced.Close()
}

// TestCompressedResumeByteIdentical: an interrupted + resumed compressed
// run must decompress to exactly the uninterrupted plain stream — the
// checkpoint offset lands on a gzip member boundary, the resume
// truncates the torn tail and appends fresh members. Serial and
// parallel.
func TestCompressedResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "full.jsonl")
	sink, err := NewJSONLSink(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(3, Options{Workers: 1}, sink); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		out := filepath.Join(dir, "part.jsonl.gz")
		ck := filepath.Join(dir, "ck.json")
		os.Remove(out)
		os.Remove(ck)

		part, err := NewJSONLSink(out)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Stream(3, Options{
			Workers: workers, ShardSize: 8, MaxIndices: 48,
			Checkpoint: ck, CheckpointEvery: 16,
		}, part)
		if err != nil {
			t.Fatal(err)
		}
		part.Close()
		if !rep.Incomplete {
			t.Fatal("budgeted run should be incomplete")
		}

		// Simulate a torn tail written after the final checkpoint: the
		// resume must truncate it back to the member boundary.
		f, err := os.OpenFile(out, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("torn tail")
		f.Close()

		part, err = NewJSONLSink(out)
		if err != nil {
			t.Fatal(err)
		}
		rep, err = Stream(3, Options{
			Workers: workers, ShardSize: 8,
			Checkpoint: ck, Resume: true,
		}, part)
		if err != nil {
			t.Fatal(err)
		}
		part.Close()
		if rep.Incomplete {
			t.Fatal("resumed run should complete")
		}
		if got := gunzip(t, out); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed compressed stream decompresses to %d bytes, want %d (plain)",
				workers, len(got), len(want))
		}
	}
}

// TestCompressedCheckpointKindGuard: a checkpoint written against a
// compressed stream must refuse to resume with an uncompressed sink
// (and vice versa) — splicing plain lines into a gzip file would
// corrupt the campaign output.
func TestCompressedCheckpointKindGuard(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "part.jsonl.gz")
	ck := filepath.Join(dir, "ck.json")
	sink, err := NewJSONLSink(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(3, Options{
		Workers: 1, ShardSize: 8, MaxIndices: 48,
		Checkpoint: ck, CheckpointEvery: 16,
	}, sink); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	plainSink, err := NewJSONLSink(filepath.Join(dir, "plain.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer plainSink.Close()
	if _, err := Stream(3, Options{Workers: 1, Checkpoint: ck, Resume: true}, plainSink); err == nil {
		t.Fatal("resuming a gzip checkpoint with a plain sink should fail")
	}
}
