package census

import (
	"bytes"
	"path/filepath"
	"testing"
)

// makeBlocks builds sequential test blocks whose weight is the given
// per-block total (one representative carrying the whole weight).
func makeBlocks(weights ...uint64) []orbitBlock {
	out := make([]orbitBlock, len(weights))
	for i, w := range weights {
		out[i] = orbitBlock{seq: uint64(i), reps: []canonRep{{idx: uint64(i), size: w}}}
	}
	return out
}

// runScheduler feeds the blocks through scheduleBigOrbitFirst with the
// given lookahead and returns the dispatch order (sequence numbers).
func runScheduler(t *testing.T, blocks []orbitBlock, lookahead uint64) []uint64 {
	t.Helper()
	in := make(chan orbitBlock)
	out := make(chan orbitBlock)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		defer close(in)
		for _, b := range blocks {
			in <- b
		}
	}()
	go scheduleBigOrbitFirst(in, out, quit, lookahead)
	var order []uint64
	for b := range out {
		order = append(order, b.seq)
	}
	return order
}

// TestScheduleBigOrbitFirstOrder pins the dispatch policy: within the
// lookahead the heaviest block goes first, ties break to the lower
// sequence number, and every block is dispatched exactly once.
func TestScheduleBigOrbitFirstOrder(t *testing.T) {
	order := runScheduler(t, makeBlocks(1, 5, 3, 5, 2, 9), 6)
	want := []uint64{5, 1, 3, 2, 4, 0}
	if len(order) != len(want) {
		t.Fatalf("dispatched %d blocks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestScheduleBigOrbitFirstLookahead pins the liveness invariant: no
// block is dispatched once its sequence number would run `lookahead` or
// more past the lowest still-undispatched one — the bound that keeps
// every scheduled worker inside the emitter's reorder window.
func TestScheduleBigOrbitFirstLookahead(t *testing.T) {
	const lookahead = 4
	// Block 0 is the lightest everywhere: without the sequence-window
	// bound the scheduler would defer it indefinitely.
	weights := make([]uint64, 32)
	for i := range weights {
		weights[i] = uint64(2 + i%7)
	}
	weights[0] = 1
	order := runScheduler(t, makeBlocks(weights...), lookahead)
	if len(order) != len(weights) {
		t.Fatalf("dispatched %d blocks, want %d", len(order), len(weights))
	}
	dispatched := make([]bool, len(weights))
	lowest := uint64(0)
	for _, s := range order {
		if s >= lowest+lookahead {
			t.Fatalf("dispatched seq %d with lowest undispatched %d (lookahead %d)", s, lowest, lookahead)
		}
		if dispatched[s] {
			t.Fatalf("seq %d dispatched twice", s)
		}
		dispatched[s] = true
		for int(lowest) < len(dispatched) && dispatched[lowest] {
			lowest++
		}
	}
}

// TestOrbitSolveScheduledByteIdentical is the big-orbit-first
// acceptance test: solve-mode orbit sweeps — the only mode that runs
// through the scheduler — produce byte-identical streams at one worker
// and at eight, and match the scheduler-free classify-shaped totals.
func TestOrbitSolveScheduledByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := func(workers int) Options {
		return Options{Orbits: true, Solve: true, KTask: 1, MaxRounds: 1, Workers: workers, ShardSize: 2}
	}
	w1 := filepath.Join(dir, "w1.jsonl")
	w8 := filepath.Join(dir, "w8.jsonl")
	rep1 := runJSONL(t, 3, opts(1), w1)
	rep8 := runJSONL(t, 3, opts(8), w8)
	if !bytes.Equal(readFile(t, w1), readFile(t, w8)) {
		t.Fatal("scheduled solve-mode orbit stream differs between 1 and 8 workers")
	}
	if rep1.Summary.Total != rep8.Summary.Total ||
		rep1.Summary.Solved != rep8.Summary.Solved ||
		rep1.Summary.Solvable != rep8.Summary.Solvable ||
		rep1.Summary.Orbits != rep8.Summary.Orbits {
		t.Fatalf("scheduled solve summaries differ: %+v vs %+v", rep1.Summary, rep8.Summary)
	}
}
