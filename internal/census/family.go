package census

// Named adversary-family filters over the enumeration: instead of the
// whole 2^(2^n - 1) domain, a sweep can target the classically studied
// families — t-resilient, symmetric, k-obstruction-free — built from
// the existing adversary constructors. Every family member here is
// fixed by every color permutation, so its orbit is a singleton and
// full-domain and orbit-mode family sweeps emit the same entries.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adversary"
)

// ErrBadFamily reports a malformed or unknown family spec.
var ErrBadFamily = errors.New("census: invalid adversary family")

// familyFilter is one resolved family: its canonical spec string (part
// of the checkpoint fingerprint) and the member enumeration indices.
type familyFilter struct {
	canonical string
	indices   map[uint64]bool
}

func (f *familyFilter) member(idx uint64) bool { return f.indices[idx] }

// FamilyKinds returns the family kinds a sweep can filter by.
func FamilyKinds() []string {
	return []string{"t-resilient", "symmetric", "k-obstruction-free"}
}

// resolveFamily parses `kind[:param=value]` and materializes the member
// index set for an n-process domain. An empty spec means no filter
// (nil). Kinds:
//
//   - t-resilient[:t=T] — A_{t-res} for the given t, or all t ∈ [0, n-1]
//   - symmetric — every SymmetricFromSizes adversary (one per non-empty
//     set of live-set sizes), 2^n - 1 members
//   - k-obstruction-free[:k=K] — A_{k-OF} for the given k, or all
//     k ∈ [1, n]
func resolveFamily(spec string, n int) (*familyFilter, error) {
	if spec == "" {
		return nil, nil
	}
	kind := spec
	param := -1
	paramName := ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind = spec[:i]
		kv := spec[i+1:]
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("%w: %q: want kind:param=value", ErrBadFamily, spec)
		}
		v, err := strconv.Atoi(kv[eq+1:])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%w: %q: parameter %s is not a non-negative integer", ErrBadFamily, spec, kv[:eq])
		}
		paramName, param = kv[:eq], v
	}
	f := &familyFilter{indices: make(map[uint64]bool)}
	add := func(a *adversary.Adversary) { f.indices[adversary.EnumerationIndex(a)] = true }
	switch kind {
	case "t-resilient":
		if paramName != "" && paramName != "t" {
			return nil, fmt.Errorf("%w: %q: t-resilient takes t=", ErrBadFamily, spec)
		}
		if param >= n {
			return nil, fmt.Errorf("%w: %q: t must be in [0, %d]", ErrBadFamily, spec, n-1)
		}
		if paramName == "" {
			f.canonical = kind
			for t := 0; t < n; t++ {
				add(adversary.TResilient(n, t))
			}
		} else {
			f.canonical = fmt.Sprintf("%s:t=%d", kind, param)
			add(adversary.TResilient(n, param))
		}
	case "symmetric":
		if paramName != "" {
			return nil, fmt.Errorf("%w: %q: symmetric takes no parameter", ErrBadFamily, spec)
		}
		f.canonical = kind
		// One adversary per non-empty subset of live-set sizes {1..n}.
		for bits := 1; bits < 1<<uint(n); bits++ {
			var sizes []int
			for s := 1; s <= n; s++ {
				if bits&(1<<uint(s-1)) != 0 {
					sizes = append(sizes, s)
				}
			}
			add(adversary.SymmetricFromSizes(n, sizes...))
		}
	case "k-obstruction-free":
		if paramName != "" && paramName != "k" {
			return nil, fmt.Errorf("%w: %q: k-obstruction-free takes k=", ErrBadFamily, spec)
		}
		if paramName != "" && (param < 1 || param > n) {
			return nil, fmt.Errorf("%w: %q: k must be in [1, %d]", ErrBadFamily, spec, n)
		}
		if paramName == "" {
			f.canonical = kind
			for k := 1; k <= n; k++ {
				add(adversary.KObstructionFree(n, k))
			}
		} else {
			f.canonical = fmt.Sprintf("%s:k=%d", kind, param)
			add(adversary.KObstructionFree(n, param))
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (known: %s)",
			ErrBadFamily, kind, strings.Join(FamilyKinds(), ", "))
	}
	return f, nil
}
