package census

// Tests pinning the stabilizer-aware orbit sweep (rank-based shards
// over adversary.Orbits.ForEachCanonicalFrom) byte-identical to the
// filter-based path it replaced, including resume from a filter-era
// checkpoint sidecar — plus the Collector copy-on-emit regression.

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/tasks"
)

// filterReferenceJSONL renders the n-domain orbit sweep exactly as the
// old filter-based engine did: scan every raw index below limit, keep
// canonical representatives, attach orbit sizes, one JSON line each.
// Returns the stream bytes, the entry count, and the running summary.
func filterReferenceJSONL(t *testing.T, n int, limit uint64) ([]byte, uint64, Summary) {
	t.Helper()
	o := adversary.NewOrbits(n)
	x, err := NewExaminer(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary(n)
	var buf bytes.Buffer
	var count uint64
	o.ForEachRepresentative(func(idx, size uint64) bool {
		if idx >= limit {
			return false
		}
		e, err := x.Examine(idx)
		if err != nil {
			t.Fatal(err)
		}
		e.OrbitSize = size
		b, err := json.Marshal(&e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
		count++
		sum.Accumulate(&e)
		return true
	})
	return buf.Bytes(), count, sum
}

// TestOrbitGeneratorStreamMatchesFilter pins the rank-shard sweep
// byte-identical to the filter-based reference at every worker count,
// for n=3 and n=4.
func TestOrbitGeneratorStreamMatchesFilter(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{3, 4} {
		want, _, _ := filterReferenceJSONL(t, n, adversary.CensusSize(n))
		for _, workers := range []int{1, 2, 4, 8} {
			out := filepath.Join(dir, "out.jsonl")
			rep := runJSONL(t, n, Options{Orbits: true, Workers: workers}, out)
			if rep.Incomplete {
				t.Fatalf("n=%d w=%d: full orbit sweep incomplete", n, workers)
			}
			if got := readFile(t, out); !bytes.Equal(got, want) {
				t.Fatalf("n=%d w=%d: generator stream differs from the filter reference", n, workers)
			}
			if err := os.Remove(out); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOrbitResumeFromFilterEraCheckpoint replays the campaign upgrade:
// a sidecar written by the old filter-based enumerator records a raw
// frontier that is neither canonical nor rank-block aligned, and the
// rank-shard engine must resume it to byte-identical final output.
func TestOrbitResumeFromFilterEraCheckpoint(t *testing.T) {
	const n, frontier = 3, 50 // 50 is non-canonical and unaligned
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")

	// The interrupted old run: entries and aggregates over [0, 50).
	prefix, emitted, sum := filterReferenceJSONL(t, n, frontier)
	if err := os.WriteFile(out, prefix, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{Orbits: true}
	sidecar := &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: fingerprint(n, &opts, tasks.KSetSpec(1), nil),
		NextIndex:   frontier,
		Emitted:     emitted,
		OutBytes:    int64(len(prefix)),
		SinkKind:    "persistent",
		Summary:     sum,
	}
	if err := sidecar.write(ck); err != nil {
		t.Fatal(err)
	}

	fin := runJSONL(t, n, Options{Orbits: true, Workers: 4, Checkpoint: ck, Resume: true}, out)
	if fin.Incomplete {
		t.Fatal("resumed run incomplete")
	}
	want, _, wantSum := filterReferenceJSONL(t, n, adversary.CensusSize(n))
	if !bytes.Equal(readFile(t, out), want) {
		t.Fatal("resume from a filter-era checkpoint diverges from an uninterrupted sweep")
	}
	if got, wantS := jsonString(t, fin.Summary), jsonString(t, wantSum); got != wantS {
		t.Fatalf("resumed summary differs:\n%s\n%s", got, wantS)
	}
}

// TestOrbitMaxIndicesFrontier checks the raw-index budget lands the
// frontier exactly at start+MaxIndices even though work units are rank
// blocks — the non-canonical tail below the boundary is accounted for.
func TestOrbitMaxIndicesFrontier(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	rep := runJSONL(t, 3, Options{Orbits: true, Workers: 2, ShardSize: 4, Checkpoint: ck, MaxIndices: 50}, out)
	if !rep.Incomplete {
		t.Fatal("budgeted orbit run not incomplete")
	}
	if rep.NextIndex != 50 {
		t.Fatalf("frontier %d, want the raw budget boundary 50", rep.NextIndex)
	}
	want, _, _ := filterReferenceJSONL(t, 3, 50)
	if !bytes.Equal(readFile(t, out), want) {
		t.Fatal("budgeted orbit prefix differs from the filter reference")
	}
}

// TestOrbitMaxIndicesOverflow checks an "effectively unlimited" budget
// does not wrap start+MaxIndices below the resume frontier (which
// would regress the checkpoint under already-emitted output).
func TestOrbitMaxIndicesOverflow(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	runJSONL(t, 3, Options{Orbits: true, Checkpoint: ck, MaxIndices: 50}, out)
	fin := runJSONL(t, 3, Options{Orbits: true, Checkpoint: ck, Resume: true, MaxIndices: math.MaxUint64}, out)
	if fin.Incomplete {
		t.Fatalf("max-budget resume incomplete at %d", fin.NextIndex)
	}
	full := filepath.Join(dir, "full.jsonl")
	runJSONL(t, 3, Options{Orbits: true}, full)
	if !bytes.Equal(readFile(t, out), readFile(t, full)) {
		t.Fatal("overflowed budget corrupted the stream")
	}
}

// TestOrbitStopMidBlock checks the stop hook lands between canonical
// representatives inside a rank block: the raw frontier must end just
// past the last examined representative, and the resumed run must
// still be byte-identical.
func TestOrbitStopMidBlock(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ck := filepath.Join(dir, "ck.json")
	stop := make(chan struct{})
	var once sync.Once
	var seen int
	opts := Options{
		Orbits:  true,
		Workers: 1, ShardSize: 64,
		Checkpoint: ck, Stop: stop,
	}
	opts.examineHook = func(idx uint64) {
		seen++
		if seen == 10 {
			once.Do(func() { close(stop) })
			// Let the stop watcher latch before the worker checks.
			time.Sleep(100 * time.Millisecond)
		}
	}
	part := runJSONL(t, 3, opts, out)
	if !part.Incomplete {
		t.Fatal("stopped orbit run not incomplete")
	}
	if part.NextIndex == 0 || part.NextIndex >= adversary.CensusSize(3) {
		t.Fatalf("frontier %d: stop should land mid-domain", part.NextIndex)
	}
	fin := runJSONL(t, 3, Options{Orbits: true, Workers: 4, Checkpoint: ck, Resume: true}, out)
	if fin.Incomplete {
		t.Fatal("resumed orbit run incomplete")
	}
	want, _, _ := filterReferenceJSONL(t, 3, adversary.CensusSize(3))
	if !bytes.Equal(readFile(t, out), want) {
		t.Fatal("mid-block stop/resume output differs from the filter reference")
	}
}

func jsonString(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCollectorEmitCopies is the mutation-after-emit regression: the
// Sink contract loans the entry only for the duration of Emit, so a
// caller mutating its slice or pointer fields afterwards must not leak
// into the collected entries.
func TestCollectorEmitCopies(t *testing.T) {
	solvable := true
	e := Entry{
		Index:        7,
		LiveSetMasks: []uint32{1, 2, 4},
		Solved:       true,
		Solvable:     &solvable,
	}
	var c Collector
	if err := c.Emit(&e); err != nil {
		t.Fatal(err)
	}
	e.LiveSetMasks[0] = 99
	*e.Solvable = false
	got := c.Entries[0]
	if got.LiveSetMasks[0] != 1 {
		t.Fatalf("collected masks aliased the emitted entry: %v", got.LiveSetMasks)
	}
	if !*got.Solvable {
		t.Fatal("collected solvability pointer aliased the emitted entry")
	}
}
