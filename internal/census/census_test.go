package census

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
)

// TestCensusFigure2 pins the n=3 census to the Figure 2 numbers the
// serial EnumerateAdversaries loop established (experiment E8).
func TestCensusFigure2(t *testing.T) {
	rep, err := Run(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Total != 128 || s.SupersetClosed != 19 || s.Symmetric != 8 || s.Fair != 44 {
		t.Errorf("summary = (total %d, superset %d, symmetric %d, fair %d), want (128, 19, 8, 44)",
			s.Total, s.SupersetClosed, s.Symmetric, s.Fair)
	}
	if s.InclusionViolations != 0 {
		t.Errorf("inclusion violations = %d, want 0", s.InclusionViolations)
	}
	wantHist := []uint64{1, 24, 18, 1}
	for k, w := range wantHist {
		if s.SetconHist[k] != w {
			t.Errorf("setcon=%d count = %d, want %d", k, s.SetconHist[k], w)
		}
	}
	if len(rep.Entries) != 128 {
		t.Fatalf("entries = %d, want 128", len(rep.Entries))
	}
	for i, e := range rep.Entries {
		if e.Index != uint64(i) {
			t.Fatalf("entry %d has index %d — aggregation out of enumeration order", i, e.Index)
		}
	}
}

// TestCensusDeterminism asserts the tentpole invariant: the census JSON
// is byte-identical for every worker count and shard size.
func TestCensusDeterminism(t *testing.T) {
	baseline, err := Run(3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Workers: 8},
		{Workers: 8, ShardSize: 1},
		{Workers: 3, ShardSize: 7},
	} {
		rep, err := Run(3, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("census JSON differs for %+v", opts)
		}
	}
}

// TestCensusSolveDeterminism runs the solve mode at n=2 (8 adversaries,
// tiny towers) and checks worker-count invariance of the solve fields
// and cache statistics too.
func TestCensusSolveDeterminism(t *testing.T) {
	opts := Options{Solve: true, KTask: 1, VerifyWitnesses: true}
	opts.Workers = 1
	serial, err := Run(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.MarshalIndent(serial, "", "  ")
	opts.Workers = 8
	parallel, err := Run(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.MarshalIndent(parallel, "", "  ")
	if !bytes.Equal(got, want) {
		t.Fatalf("solve-mode census JSON differs across worker counts:\n%s\n---\n%s", want, got)
	}
	if serial.Summary.Solved == 0 || serial.Summary.Solvable == 0 {
		t.Fatalf("solve mode decided nothing: %+v", serial.Summary)
	}
	if serial.Cache == nil || serial.Cache.Towers == 0 {
		t.Fatalf("solve mode should populate cache stats: %+v", serial.Cache)
	}
}

// TestCensusSolveFACT cross-checks the solve mode against the FACT
// prediction at n=3: 1-set consensus is solvable iff setcon == 1 ...
// i.e. for every solved fair adversary, solvable ⇔ k ≥ setcon.
func TestCensusSolveFACT(t *testing.T) {
	if testing.Short() {
		t.Skip("solve census over 128 adversaries in -short mode")
	}
	rep, err := Run(3, Options{Solve: true, KTask: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Entries {
		if !e.Solved || e.Solvable == nil {
			continue
		}
		want := 2 >= e.Setcon
		if *e.Solvable != want {
			t.Errorf("%s: setcon=%d, 2-set consensus solvable=%v — FACT predicts %v",
				e.Adversary, e.Setcon, *e.Solvable, want)
		}
	}
}

// TestCensusProgress checks the progress callback reaches the domain
// size exactly once at completion.
func TestCensusProgress(t *testing.T) {
	var last atomic.Uint64
	_, err := Run(3, Options{Workers: 4, Progress: func(done, total uint64) {
		if done > total {
			t.Errorf("progress overshoot: %d > %d", done, total)
		}
		for {
			cur := last.Load()
			if done <= cur || last.CompareAndSwap(cur, done) {
				break
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last.Load() != 128 {
		t.Errorf("final progress = %d, want 128", last.Load())
	}
}

func TestCensusDomainTooLarge(t *testing.T) {
	if _, err := Run(5, Options{}); err == nil {
		t.Fatal("n=5 census (2^31 adversaries) should be rejected")
	}
}
