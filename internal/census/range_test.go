package census

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/adversary"
)

// sweepRangeEntries runs SweepRange over [lo, hi) into a Collector.
func sweepRangeEntries(t *testing.T, n int, opts Options, lo, hi uint64) ([]Entry, *Report) {
	t.Helper()
	col := &Collector{}
	rep, err := SweepRange(n, opts, col, lo, hi)
	if err != nil {
		t.Fatalf("SweepRange [%d, %d): %v", lo, hi, err)
	}
	if rep.Incomplete {
		t.Fatalf("SweepRange [%d, %d) incomplete at %d", lo, hi, rep.NextIndex)
	}
	return col.Entries, rep
}

// TestSweepRangePartition: concatenating range sweeps over any
// partition of the domain reproduces the full sweep byte-for-byte, in
// both full and orbit mode — the invariant the fabric's disjoint work
// units rely on for conflict-free merges.
func TestSweepRangePartition(t *testing.T) {
	n := 3
	total := adversary.CensusSize(n)
	for _, orbits := range []bool{false, true} {
		opts := Options{Workers: 3, Orbits: orbits}
		full, err := Run(n, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Boundaries on arbitrary raw indices, including non-canonical
		// ones and an empty range.
		cuts := []uint64{0, 1, 7, 7, total/2 + 1, 100, total}
		var got []Entry
		sum := NewSummary(n)
		for i := 0; i+1 < len(cuts); i++ {
			part, _ := sweepRangeEntries(t, n, opts, cuts[i], cuts[i+1])
			for j := range part {
				sum.Accumulate(&part[j])
			}
			got = append(got, part...)
		}

		a, _ := json.Marshal(full.Entries)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Errorf("orbits=%v: concatenated range sweeps differ from the full sweep (%d vs %d entries)",
				orbits, len(got), len(full.Entries))
		}
		if !reflect.DeepEqual(sum, full.Summary) {
			t.Errorf("orbits=%v: summed range summaries %+v != full summary %+v", orbits, sum, full.Summary)
		}
	}
}

// TestSweepRangeWorkerInvariance: a range sweep is byte-identical at
// any worker count.
func TestSweepRangeWorkerInvariance(t *testing.T) {
	n := 3
	total := adversary.CensusSize(n)
	lo, hi := uint64(13), total-9
	ser, _ := sweepRangeEntries(t, n, Options{Workers: 1, Orbits: true}, lo, hi)
	par, _ := sweepRangeEntries(t, n, Options{Workers: 8, ShardSize: 5, Orbits: true}, lo, hi)
	a, _ := json.Marshal(ser)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatalf("range sweep differs across worker counts (%d vs %d entries)", len(ser), len(par))
	}
}

// TestSweepRangeStop: an interrupted range sweep reports Incomplete
// with a frontier inside the range.
func TestSweepRangeStop(t *testing.T) {
	n := 3
	// A 1ns budget flips the stop flag as the run starts; the slow
	// examine hook guarantees the sweep is still in flight when it does.
	opts := Options{Workers: 2, ShardSize: 4, Budget: time.Nanosecond,
		examineHook: func(uint64) { time.Sleep(time.Millisecond) }}
	col := &Collector{}
	rep, err := SweepRange(n, opts, col, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete {
		t.Fatal("stopped range sweep not reported incomplete")
	}
	if rep.NextIndex < 5 || rep.NextIndex >= 100 {
		t.Fatalf("stopped frontier %d outside [5, 100)", rep.NextIndex)
	}
}

// TestSweepRangeRejects: the guards on domain bounds and
// checkpoint/budget coupling.
func TestSweepRangeRejects(t *testing.T) {
	n := 3
	total := adversary.CensusSize(n)
	if _, err := SweepRange(n, Options{}, nil, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := SweepRange(n, Options{}, nil, 0, total+1); err == nil {
		t.Error("range beyond the domain accepted")
	}
	if _, err := SweepRange(n, Options{Checkpoint: "x", Resume: true}, nil, 0, 5); err == nil {
		t.Error("checkpointed range sweep accepted")
	}
	if _, err := SweepRange(n, Options{MaxIndices: 3}, nil, 0, 5); err == nil {
		t.Error("MaxIndices range sweep accepted")
	}
}
