package iis

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/procs"
)

func TestValidateViewsAxioms(t *testing.T) {
	valid := map[procs.ID]procs.Set{
		1: procs.SetOf(1),
		0: procs.SetOf(0, 1),
		2: procs.FullSet(3),
	}
	if err := ValidateViews(valid); err != nil {
		t.Errorf("valid views rejected: %v", err)
	}

	cases := []struct {
		name  string
		views map[procs.ID]procs.Set
		want  error
	}{
		{
			"self-inclusion",
			map[procs.ID]procs.Set{0: procs.SetOf(1), 1: procs.SetOf(0, 1)},
			ErrSelfInclusion,
		},
		{
			"containment",
			map[procs.ID]procs.Set{0: procs.SetOf(0), 1: procs.SetOf(1)},
			ErrContainment,
		},
		{
			"immediacy",
			map[procs.ID]procs.Set{
				0: procs.SetOf(0, 1),
				1: procs.SetOf(0, 1, 2),
				2: procs.SetOf(0, 1, 2),
			},
			ErrImmediacy,
		},
		{
			"ghost process",
			map[procs.ID]procs.Set{0: procs.SetOf(0, 5)},
			ErrOutOfGround,
		},
	}
	for _, c := range cases {
		if err := ValidateViews(c.views); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// The immediacy case above: p0 sees {p0,p1}, p1 sees all 3. p1's view
// contains p0... wait, p1 sees p0 and p0's view ⊆ p1's: fine. p0 sees p1
// but p1's view ⊄ p0's: immediacy violation. The containment pair
// (p0,p2) is fine. Sanity-checked by the test.

func TestPartitionFromViewsRoundTrip(t *testing.T) {
	for n := 1; n <= 4; n++ {
		ground := procs.FullSet(n)
		for _, op := range procs.EnumerateOrderedPartitions(ground) {
			got, err := PartitionFromViews(op.Views())
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, op, err)
			}
			if !got.Equal(op) {
				t.Fatalf("n=%d: round trip %v -> %v", n, op, got)
			}
		}
	}
}

func TestPartitionFromViewsRejectsInvalid(t *testing.T) {
	if _, err := PartitionFromViews(map[procs.ID]procs.Set{
		0: procs.SetOf(0), 1: procs.SetOf(1),
	}); err == nil {
		t.Errorf("invalid views should be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	g := procs.FullSet(3)
	good := Run{procs.Synchronous(g), procs.SingletonOrder(1, 0, 2)}
	if err := good.Validate(g); err != nil {
		t.Errorf("good run rejected: %v", err)
	}
	if good.Rounds() != 2 || good.Ground() != g {
		t.Errorf("run metadata wrong")
	}
	bad := Run{procs.Synchronous(g), procs.SingletonOrder(1, 0)}
	if err := bad.Validate(g); err == nil {
		t.Errorf("bad run accepted")
	}
	var empty Run
	if empty.Ground() != 0 {
		t.Errorf("empty run ground should be empty")
	}
}

func TestKnowledgeAccumulation(t *testing.T) {
	g := procs.FullSet(3)
	// Round 1: p2 alone, then p1, then p3. Round 2: p1 alone, then p2,p3.
	r := Run{
		procs.SingletonOrder(1, 0, 2),
		procs.OrderedPartition{procs.SetOf(0), procs.SetOf(1, 2)},
	}
	// After round 1: knowledge = round-1 views.
	if got := r.Knowledge(0, 1); got != procs.SetOf(0, 1) {
		t.Errorf("p1 round-1 knowledge = %v", got)
	}
	// After round 2: p1 saw only itself in round 2, so knowledge stays.
	if got := r.Knowledge(0, 2); got != procs.SetOf(0, 1) {
		t.Errorf("p1 round-2 knowledge = %v", got)
	}
	// p2 sees {p1,p2,p3} in round 2: union of round-1 views = all.
	if got := r.Knowledge(1, 2); got != g {
		t.Errorf("p2 round-2 knowledge = %v", got)
	}
	// Out-of-range rounds.
	if r.Knowledge(0, 0) != 0 || r.Knowledge(0, 3) != 0 {
		t.Errorf("out-of-range knowledge should be empty")
	}
}

func TestKnowledgeMonotone(t *testing.T) {
	// Property: knowledge only grows with rounds, and always contains
	// the round-1 view.
	rng := rand.New(rand.NewSource(3))
	g := procs.FullSet(4)
	for trial := 0; trial < 100; trial++ {
		r := RandomRun(g, 3, rng)
		g.ForEach(func(p procs.ID) {
			prev := procs.EmptySet
			for round := 1; round <= 3; round++ {
				k := r.Knowledge(p, round)
				if !prev.SubsetOf(k) {
					t.Fatalf("knowledge shrank for %v: %v -> %v", p, prev, k)
				}
				if !k.Contains(p) {
					t.Fatalf("knowledge must include self")
				}
				prev = k
			}
		})
	}
}

func TestEnumerateRunsCount(t *testing.T) {
	g := procs.FullSet(3)
	runs := EnumerateRuns(g, 2)
	if len(runs) != 169 {
		t.Fatalf("2-round runs = %d, want 13^2 = 169", len(runs))
	}
	seen := map[string]bool{}
	for _, r := range runs {
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		key := r[0].Key() + "/" + r[1].Key()
		if seen[key] {
			t.Fatalf("duplicate run %v", r)
		}
		seen[key] = true
	}
	if got := len(EnumerateRuns(procs.FullSet(2), 3)); got != 27 {
		t.Errorf("3-round n=2 runs = %d, want 27", got)
	}
}

func TestRunViews(t *testing.T) {
	g := procs.FullSet(3)
	r := Run{procs.SingletonOrder(1, 0, 2), procs.Synchronous(g)}
	fv := RunViews(r)
	if len(fv) != 3 {
		t.Fatalf("views for %d processes", len(fv))
	}
	if fv[0][0] != procs.SetOf(0, 1) || fv[0][1] != g {
		t.Errorf("p1 views = %v", fv[0])
	}
}

func TestRandomRunValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := procs.FullSet(5)
	for i := 0; i < 50; i++ {
		r := RandomRun(g, 4, rng)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}
