// Package iis models the iterated immediate snapshot communication model
// of Section 2: one-shot immediate snapshot (IS) semantics, multi-round
// IIS runs, and the full-information protocol whose r-round knowledge is
// the carrier of the corresponding Chr^r s vertex.
//
// The package establishes (and tests) the bijection at the heart of the
// topological approach: valid IS output vectors over a participating set
// P are exactly the view vectors of ordered partitions of P, so r-round
// IIS runs are r-tuples of ordered partitions, i.e. facets of Chr^r s.
package iis

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/procs"
)

// IS axiom violations.
var (
	ErrSelfInclusion = errors.New("IS violates self-inclusion")
	ErrContainment   = errors.New("IS violates containment")
	ErrImmediacy     = errors.New("IS violates immediacy")
	ErrOutOfGround   = errors.New("IS view mentions non-participating process")
)

// ValidateViews checks the three IS axioms for a vector of views over the
// participating set (the domain of views).
func ValidateViews(views map[procs.ID]procs.Set) error {
	var ground procs.Set
	for p := range views {
		ground = ground.Add(p)
	}
	for p, vp := range views {
		if !vp.Contains(p) {
			return fmt.Errorf("%w: %v ∉ %v", ErrSelfInclusion, p, vp)
		}
		if !vp.SubsetOf(ground) {
			return fmt.Errorf("%w: %v", ErrOutOfGround, vp)
		}
		for q, vq := range views {
			if !vp.SubsetOf(vq) && !vq.SubsetOf(vp) {
				return fmt.Errorf("%w: %v and %v", ErrContainment, vp, vq)
			}
			if vp.Contains(q) && !vq.SubsetOf(vp) {
				return fmt.Errorf("%w: %v sees %v but %v ⊄ %v", ErrImmediacy, p, q, vq, vp)
			}
		}
	}
	return nil
}

// ValidatePartialViews checks the IS axioms for a run in which some
// participants crashed mid-operation: views exist only for the processes
// in the map, but may mention any process in participants (a crashed
// process's submitted value is legitimately visible). Self-inclusion and
// containment are checked on the available views; immediacy is checked
// whenever both views are available.
func ValidatePartialViews(views map[procs.ID]procs.Set, participants procs.Set) error {
	for p, vp := range views {
		if !vp.Contains(p) {
			return fmt.Errorf("%w: %v ∉ %v", ErrSelfInclusion, p, vp)
		}
		if !vp.SubsetOf(participants) {
			return fmt.Errorf("%w: %v ⊄ %v", ErrOutOfGround, vp, participants)
		}
		for q, vq := range views {
			if !vp.SubsetOf(vq) && !vq.SubsetOf(vp) {
				return fmt.Errorf("%w: %v and %v", ErrContainment, vp, vq)
			}
			if vp.Contains(q) && !vq.SubsetOf(vp) {
				return fmt.Errorf("%w: %v sees %v but %v ⊄ %v", ErrImmediacy, p, q, vq, vp)
			}
		}
	}
	return nil
}

// PartitionFromViews reconstructs the unique ordered partition inducing
// the given valid IS views: blocks are the groups of processes sharing a
// view, ordered by view size.
func PartitionFromViews(views map[procs.ID]procs.Set) (procs.OrderedPartition, error) {
	if err := ValidateViews(views); err != nil {
		return nil, err
	}
	groups := make(map[procs.Set]procs.Set)
	for p, v := range views {
		groups[v] = groups[v].Add(p)
	}
	keys := make([]procs.Set, 0, len(groups))
	for v := range groups {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Size() < keys[j].Size() })
	out := make(procs.OrderedPartition, 0, len(keys))
	for _, v := range keys {
		out = append(out, groups[v])
	}
	return out, nil
}

// Run is an m-round IIS run over a fixed participating set: one ordered
// partition per round. In the IIS model there are no failures — every
// participating process moves in every round.
type Run []procs.OrderedPartition

// Validate checks every round partitions the same ground set.
func (r Run) Validate(ground procs.Set) error {
	for i, op := range r {
		if err := op.Validate(ground); err != nil {
			return fmt.Errorf("round %d: %w", i+1, err)
		}
	}
	return nil
}

// Ground returns the participating set.
func (r Run) Ground() procs.Set {
	if len(r) == 0 {
		return 0
	}
	return r[0].Ground()
}

// Rounds returns the number of IS rounds.
func (r Run) Rounds() int { return len(r) }

// Knowledge returns the set of processes p has (transitively) heard of
// after the given round of the full-information protocol: round-1
// knowledge is p's view, round-r knowledge is the union of round-(r-1)
// knowledge over p's round-r view. This is χ(carrier(v, s)) of p's
// Chr^r s vertex.
func (r Run) Knowledge(p procs.ID, round int) procs.Set {
	if round <= 0 || round > len(r) {
		return 0
	}
	know := make(map[procs.ID]procs.Set)
	views := r[0].Views()
	for q, v := range views {
		know[q] = v
	}
	for i := 1; i < round; i++ {
		next := make(map[procs.ID]procs.Set, len(know))
		vs := r[i].Views()
		for q, view := range vs {
			var acc procs.Set
			view.ForEach(func(x procs.ID) { acc = acc.Union(know[x]) })
			next[q] = acc
		}
		know = next
	}
	return know[p]
}

// RandomRun draws a random m-round IIS run over ground.
func RandomRun(ground procs.Set, rounds int, rng *rand.Rand) Run {
	out := make(Run, rounds)
	for i := range out {
		out[i] = procs.RandomOrderedPartition(ground, rng)
	}
	return out
}

// EnumerateRuns lists all m-round IIS runs over ground. The count is
// (ordered Bell of |ground|)^m; use only for small systems.
func EnumerateRuns(ground procs.Set, rounds int) []Run {
	parts := procs.EnumerateOrderedPartitions(ground)
	total := 1
	for i := 0; i < rounds; i++ {
		total *= len(parts)
	}
	out := make([]Run, 0, total)
	idx := make([]int, rounds)
	for {
		run := make(Run, rounds)
		for i, j := range idx {
			run[i] = parts[j]
		}
		out = append(out, run)
		k := rounds - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(parts) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out
}

// FullInfoViews returns, for every process, its complete r-round
// full-information content: the nested view structure flattened to the
// per-round views of every known process. Round index 0 = first IS.
type FullInfoViews map[procs.ID][]procs.Set

// RunViews computes per-round views for all processes in the run.
func RunViews(r Run) FullInfoViews {
	out := make(FullInfoViews)
	ground := r.Ground()
	ground.ForEach(func(p procs.ID) {
		views := make([]procs.Set, len(r))
		for i, op := range r {
			v, _ := op.ViewOf(p)
			views[i] = v
		}
		out[p] = views
	})
	return out
}
