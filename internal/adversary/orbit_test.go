package adversary

import (
	"testing"

	"repro/internal/procs"
)

// TestOrbitImageMatchesPermute cross-checks the byte-table index remap
// against the reference path: permuting the adversary's live sets
// directly and re-deriving its enumeration index.
func TestOrbitImageMatchesPermute(t *testing.T) {
	for n := 1; n <= 3; n++ {
		o := NewOrbits(n)
		perms := Permutations(n)
		if len(perms) != o.NumPerms() {
			t.Fatalf("n=%d: %d perms, orbits reports %d", n, len(perms), o.NumPerms())
		}
		total := CensusSize(n)
		for idx := uint64(0); idx < total; idx++ {
			a := AdversaryAt(n, idx)
			for p, perm := range perms {
				want := EnumerationIndex(a.Permute(perm))
				if got := o.Image(idx, p); got != want {
					t.Fatalf("n=%d idx=%d perm=%v: Image=%d, permuted index=%d",
						n, idx, perm, got, want)
				}
			}
		}
	}
}

// TestOrbitIdentityFirst pins permutation 0 as the identity: Image must
// be the identity map on indices.
func TestOrbitIdentityFirst(t *testing.T) {
	o := NewOrbits(4)
	for _, idx := range []uint64{0, 1, 5, 1234, CensusSize(4) - 1} {
		if got := o.Image(idx, 0); got != idx {
			t.Fatalf("Image(%d, identity) = %d", idx, got)
		}
	}
}

// TestOrbitCanonicalization checks, over the full n ≤ 3 domains, that
// every adversary maps to a canonical representative inside its own
// orbit, that the representative is itself canonical, and that every
// member of the orbit agrees on it.
func TestOrbitCanonicalization(t *testing.T) {
	for n := 1; n <= 3; n++ {
		o := NewOrbits(n)
		total := CensusSize(n)
		for idx := uint64(0); idx < total; idx++ {
			canon, size := o.Canonical(idx)
			if canon > idx {
				t.Fatalf("n=%d: canonical rep %d above %d", n, canon, idx)
			}
			if !o.IsCanonical(canon) {
				t.Fatalf("n=%d idx=%d: rep %d is not canonical", n, idx, canon)
			}
			if o.IsCanonical(idx) != (canon == idx) {
				t.Fatalf("n=%d idx=%d: IsCanonical disagrees with Canonical=%d", n, idx, canon)
			}
			// The rep must be an actual image of idx, and every image
			// must share the same rep and orbit size.
			found := false
			for p := 0; p < o.NumPerms(); p++ {
				img := o.Image(idx, p)
				if img == canon {
					found = true
				}
				c2, s2 := o.Canonical(img)
				if c2 != canon || s2 != size {
					t.Fatalf("n=%d: orbit of %d disagrees at image %d: (%d,%d) vs (%d,%d)",
						n, idx, img, c2, s2, canon, size)
				}
			}
			if !found {
				t.Fatalf("n=%d idx=%d: canonical rep %d not in orbit", n, idx, canon)
			}
		}
	}
}

// TestOrbitSizesSumToCensus checks that orbit sizes over the canonical
// representatives partition the whole domain: Σ size = CensusSize(n)
// for n ≤ 4 — the invariant that makes weighted orbit-mode census
// totals equal full-sweep totals.
func TestOrbitSizesSumToCensus(t *testing.T) {
	for n := 1; n <= 4; n++ {
		o := NewOrbits(n)
		var sum, reps uint64
		o.ForEachRepresentative(func(idx, size uint64) bool {
			if !o.IsCanonical(idx) {
				t.Fatalf("n=%d: representative %d not canonical", n, idx)
			}
			sum += size
			reps++
			return true
		})
		if sum != CensusSize(n) {
			t.Fatalf("n=%d: orbit sizes sum to %d, want %d", n, sum, CensusSize(n))
		}
		if n >= 2 && reps >= CensusSize(n) {
			t.Fatalf("n=%d: %d representatives — no reduction over %d", n, reps, CensusSize(n))
		}
		t.Logf("n=%d: %d orbits over %d adversaries", n, reps, CensusSize(n))
	}
}

// TestOrbitClassInvariance spot-checks that the classified properties
// are constant on orbits (the correctness condition for weighted
// aggregation): for every n=3 adversary and permutation, the image
// agrees on superset closure, symmetry, fairness, setcon and csize.
func TestOrbitClassInvariance(t *testing.T) {
	n := 3
	o := NewOrbits(n)
	total := CensusSize(n)
	for idx := uint64(0); idx < total; idx++ {
		a := AdversaryAt(n, idx)
		ref := [5]int{b2i(a.IsSupersetClosed()), b2i(a.IsSymmetric()), b2i(a.IsFair()), a.Setcon(), a.CSize()}
		for p := 1; p < o.NumPerms(); p++ {
			b := AdversaryAt(n, o.Image(idx, p))
			got := [5]int{b2i(b.IsSupersetClosed()), b2i(b.IsSymmetric()), b2i(b.IsFair()), b.Setcon(), b.CSize()}
			if got != ref {
				t.Fatalf("idx=%d perm=%d: class %v != %v", idx, p, got, ref)
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestEnumerationIndexRoundTrip checks EnumerationIndex inverts
// AdversaryAt across the n=3 domain.
func TestEnumerationIndexRoundTrip(t *testing.T) {
	for idx := uint64(0); idx < CensusSize(3); idx++ {
		if got := EnumerationIndex(AdversaryAt(3, idx)); got != idx {
			t.Fatalf("round trip: %d -> %d", idx, got)
		}
	}
}

// TestPermuteIsomorphism checks Permute preserves live-set count and
// sizes (a renaming, not a different adversary).
func TestPermuteIsomorphism(t *testing.T) {
	a := MustNew(3, procs.SetOf(0), procs.SetOf(1, 2))
	perm := []procs.ID{2, 0, 1}
	b := a.Permute(perm)
	if b.NumLiveSets() != a.NumLiveSets() {
		t.Fatalf("live set count changed: %d vs %d", b.NumLiveSets(), a.NumLiveSets())
	}
	if !b.Contains(procs.SetOf(2)) || !b.Contains(procs.SetOf(0, 1)) {
		t.Fatalf("permuted live sets wrong: %v", b)
	}
}

// TestPermutationBetween checks the rehydration helper: for every pair
// (idx, image) of a sampled orbit, the returned permutation maps the
// source adversary onto the target, and cross-orbit pairs report !ok.
func TestPermutationBetween(t *testing.T) {
	o := NewOrbits(4)
	total := CensusSize(4)
	for idx := uint64(0); idx < total; idx += 97 {
		canon, _ := o.Canonical(idx)
		perm, ok := o.PermutationBetween(canon, idx)
		if !ok {
			t.Fatalf("no permutation from %d to its orbit member %d", canon, idx)
		}
		got := AdversaryAt(4, canon).Permute(perm)
		if EnumerationIndex(got) != idx {
			t.Fatalf("permuting %d landed on %d, want %d", canon, EnumerationIndex(got), idx)
		}
	}
	// 1-OF (all singletons) and t-resilient live sets are in different
	// orbits: no permutation relates them.
	a := EnumerationIndex(KObstructionFree(4, 1))
	b := EnumerationIndex(TResilient(4, 1))
	if _, ok := o.PermutationBetween(a, b); ok {
		t.Fatal("cross-orbit PermutationBetween should report !ok")
	}
}
