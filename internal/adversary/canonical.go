package adversary

// Stabilizer-aware canonical orbit enumeration.
//
// The filter-based sweep (ForEachRepresentative) visits every
// enumeration index and pays an n!·(bits/8) table-read scan to reject
// the non-canonical bulk — at n=5 that is 2^31 visits for ~2^24
// canonical representatives, and the nightly campaign spends most of
// its wall clock on indices it then discards. The generator below jumps
// between canonical indices directly: a DFS over the domain bit
// positions, most significant first, that extends a partial index
// bit-by-bit and prunes any branch where some permutation's partial
// image is already lexicographically below the partial index — the
// lex-leader pruning of symmetry-reduced model checking and
// nauty-style canonical-form search. Its cost is output-sensitive in
// the number of surviving prefixes, not the domain size.
//
// Per DFS node the comparison against every still-active permutation is
// word-level: with the top bits of the index fixed, the image bits that
// are already determined are exactly the images of the fixed positions.
// Each permutation's partial image is carried down the DFS alongside
// the active list and extended incrementally — fixing one more index
// bit ORs in that bit's precomputed single-bit image — so the per-node
// decision is one OR plus one precomputed mask per (permutation,
// depth), never a re-remap of the whole partial value. That decides
// whether the permutation (a) proves the prefix non-canonical (image <
// index: prune), (b) can never reject any completion (image > index:
// drop it for the whole subtree), or (c) is still undecided. Once every
// non-identity permutation is dropped, the whole subtree is canonical
// with trivial stabilizer and is emitted without further scans. At a
// leaf the permutations still active are exactly the stabilizer, so the
// orbit size (n!/|stabilizer|, by orbit–stabilizer) falls out of the
// same pass that proved canonicality.

import "math/bits"

// ForEachCanonicalFrom calls f for every canonical orbit representative
// with enumeration index >= start, in increasing index order, together
// with the orbit's size. Stops early when f returns false. Unlike
// ForEachRepresentative it never visits the non-canonical bulk between
// representatives, so its cost scales with the number of orbits, not
// the domain — the difference between 2^24 and 2^31·n! at n=5.
//
// Starting mid-domain (any raw index, canonical or not) is exact: the
// DFS descends directly to the first canonical index >= start, which is
// what lets a resumed census campaign continue from a checkpoint
// frontier recorded by the filter-based path.
func (o *Orbits) ForEachCanonicalFrom(start uint64, f func(idx, size uint64) bool) {
	total := CensusSize(o.n)
	if start >= total {
		return
	}
	bitsN := o.domainBits
	nPerms := uint64(o.nPerms)

	// Active-permutation arena: one scratch slice per depth, reused —
	// only one child per level is alive on the DFS path at a time.
	// images[t] carries, aligned with active[t], each still-active
	// permutation's image of the partial value (its low undetermined
	// bits are zero, so the carried word needs no masking on extension).
	active := make([][]int32, bitsN+1)
	images := make([][]uint64, bitsN+1)
	root := make([]int32, 0, o.nPerms-1)
	for p := 1; p < o.nPerms; p++ {
		root = append(root, int32(p))
	}
	active[0] = root
	images[0] = make([]uint64, len(root)) // Image(0, p) = 0 for all p
	for t := 1; t <= bitsN; t++ {
		active[t] = make([]int32, 0, o.nPerms-1)
		images[t] = make([]uint64, 0, o.nPerms-1)
	}

	// rec extends the partial index `value` (top t bits fixed) by the
	// next lower position. imgs is aligned with act. Returns false to
	// abort the whole walk.
	var rec func(value uint64, t int, act []int32, imgs []uint64) bool
	rec = func(value uint64, t int, act []int32, imgs []uint64) bool {
		if len(act) == 0 {
			// Every non-identity permutation maps every completion of
			// this prefix strictly above it: the whole subtree is
			// canonical with trivial stabilizer. Emit it in order.
			rem := uint(bitsN - t)
			w := uint64(0)
			if start > value {
				w = start - value // value's low bits are zero
			}
			for ; w < uint64(1)<<rem; w++ {
				if !f(value|w, nPerms) {
					return false
				}
			}
			return true
		}
		if t == bitsN {
			// Leaf: the permutations still active compare equal on the
			// full word — they are the stabilizer of this index.
			return f(value, nPerms/uint64(1+len(act)))
		}
		cur := uint(bitsN - 1 - t)
		lowMask := (uint64(1) << cur) - 1
		defMask := o.canonDefMasks[t+1]
		for b := uint64(0); b <= 1; b++ {
			v := value | b<<cur
			if v|lowMask < start {
				continue // entire subtree below the seek point
			}
			bm := -b // all-ones when the new bit is set, zero otherwise
			child := active[t+1][:0]
			childImgs := images[t+1][:0]
			pruned := false
			for i, p := range act {
				imgVal := imgs[i] | o.canonBitImgs[p][cur]&bm
				imgDef := o.canonImgDefs[p][t+1]
				unknown := defMask &^ imgDef
				pending := ((imgVal ^ v) & defMask & imgDef) | unknown
				if pending == 0 {
					// Equal so far, undecided.
					child = append(child, p)
					childImgs = append(childImgs, imgVal)
					continue
				}
				top := uint64(1) << uint(63-bits.LeadingZeros64(pending))
				switch {
				case unknown&top != 0:
					// Stalled on an unset low bit.
					child = append(child, p)
					childImgs = append(childImgs, imgVal)
				case v&top != 0:
					pruned = true // image < index for every completion
				default:
					// image > index for every completion: drop.
				}
				if pruned {
					break
				}
			}
			if pruned {
				continue
			}
			if !rec(v, t+1, child, childImgs) {
				return false
			}
		}
		return true
	}
	rec(0, 0, active[0], images[0])
}

// initCanonTables precomputes, per permutation, the per-depth mask of
// image bit positions determined when the top `depth` index bits are
// fixed (the image of the fixed-position mask) and the image of each
// single bit position — the increment the DFS ORs into a carried
// partial image when it fixes one more bit. Called from NewOrbits;
// nPerms·(2·bits+1) words (~60 KiB at n=5).
func (o *Orbits) initCanonTables() {
	bitsN := o.domainBits
	o.canonDefMasks = make([]uint64, bitsN+1)
	for t := 1; t <= bitsN; t++ {
		o.canonDefMasks[t] = ((uint64(1) << uint(t)) - 1) << uint(bitsN-t)
	}
	o.canonImgDefs = make([][]uint64, o.nPerms)
	o.canonBitImgs = make([][]uint64, o.nPerms)
	for p := 0; p < o.nPerms; p++ {
		defs := make([]uint64, bitsN+1)
		for t := 1; t <= bitsN; t++ {
			defs[t] = o.Image(o.canonDefMasks[t], p)
		}
		o.canonImgDefs[p] = defs
		bitImgs := make([]uint64, bitsN)
		for i := 0; i < bitsN; i++ {
			bitImgs[i] = o.Image(uint64(1)<<uint(i), p)
		}
		o.canonBitImgs[p] = bitImgs
	}
}
