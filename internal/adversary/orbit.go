package adversary

// Color-permutation orbits of the census enumeration domain.
//
// Renaming processes maps an adversary to an isomorphic one: every
// structural property the census classifies (superset closure, symmetry,
// fairness, setcon, csize) and every solvability answer for a symmetric
// task (k-set consensus) is invariant under the action. The n-process
// enumeration domain therefore splits into orbits of the symmetric
// group S_n, and a whole-landscape sweep only has to examine one
// canonical representative per orbit — a reduction approaching n! that
// is what makes the n=5 domain (2^31 adversaries) approachable.
//
// The action is computed on enumeration indices directly: bit i of an
// index selects the i-th non-empty subset of Π as a live set, so a
// process permutation π induces a permutation of the domain bit
// positions (live set S at position i moves to the position of π(S)).
// Orbits precomputes, per permutation, byte-indexed lookup tables that
// remap a whole index in (domainBits/8) table reads — the canonicality
// filter runs inside the census hot loop at n=5.

import (
	"fmt"
	"sync"

	"repro/internal/procs"
)

// Orbits enumerates the S_n action on the n-process census domain.
// Construct with NewOrbits; the value is immutable afterwards and safe
// for concurrent use by any number of goroutines.
type Orbits struct {
	n          int
	domainBits int
	nPerms     int

	// perms[p] is the process permutation behind tables[p], in the
	// canonical Permutations order (identity first) — what
	// PermutationBetween hands to Adversary.Permute for rehydration.
	perms [][]procs.ID

	// tables[p][b][v] is the image contribution of byte b having value
	// v under permutation p: OR-ing the looked-up words of every byte
	// of an index yields its image index.
	tables [][][256]uint64

	// Lex-leader DFS state (canonical.go): canonDefMasks[t] is the mask
	// of the top t bit positions, canonImgDefs[p][t] its image under
	// permutation p — the image positions already determined when the
	// top t index bits are fixed. canonBitImgs[p][i] is the image of the
	// single bit position i, what lets the DFS extend a carried partial
	// image by one OR instead of re-remapping the whole value.
	canonDefMasks []uint64
	canonImgDefs  [][]uint64
	canonBitImgs  [][]uint64
}

// NewOrbits precomputes the orbit tables for the n-process domain.
// Table memory is n!·ceil((2^n−1)/8)·256 words — ~1 MiB at n=5.
func NewOrbits(n int) *Orbits {
	if n < 1 || n > 6 {
		panic(fmt.Sprintf("adversary: NewOrbits n=%d out of [1,6]", n))
	}
	domain := EnumerationDomain(n)
	posOf := enumerationPos(n)
	perms := permutations(n)
	bits := len(domain)
	nBytes := (bits + 7) / 8
	o := &Orbits{n: n, domainBits: bits, nPerms: len(perms), perms: perms}
	o.tables = make([][][256]uint64, len(perms))
	for p, perm := range perms {
		// posPerm[i]: where the live set at domain position i lands.
		posPerm := make([]int, bits)
		for i, s := range domain {
			var img procs.Set
			s.ForEach(func(id procs.ID) { img = img.Add(perm[id]) })
			posPerm[i] = int(posOf[img])
		}
		tab := make([][256]uint64, nBytes)
		for b := 0; b < nBytes; b++ {
			for v := 0; v < 256; v++ {
				var out uint64
				for j := 0; j < 8; j++ {
					if v&(1<<j) == 0 {
						continue
					}
					src := b*8 + j
					if src < bits {
						out |= 1 << uint(posPerm[src])
					}
				}
				tab[b][v] = out
			}
		}
		o.tables[p] = tab
	}
	o.initCanonTables()
	return o
}

// N returns the system size of the domain.
func (o *Orbits) N() int { return o.n }

// NumPerms returns n! — the size of the acting group. Permutation 0 is
// the identity.
func (o *Orbits) NumPerms() int { return o.nPerms }

// Image returns the enumeration index of the adversary obtained by
// renaming the processes of the idx-th adversary under permutation p.
func (o *Orbits) Image(idx uint64, p int) uint64 {
	var out uint64
	for b, tab := range o.tables[p] {
		out |= tab[(idx>>(8*uint(b)))&0xff]
	}
	return out
}

// IsCanonical reports whether idx is the canonical representative of
// its orbit: the minimum enumeration index among all its images.
func (o *Orbits) IsCanonical(idx uint64) bool {
	for p := 1; p < o.nPerms; p++ {
		if o.Image(idx, p) < idx {
			return false
		}
	}
	return true
}

// Canonical returns the canonical representative of the orbit of idx
// and the orbit's size (the number of distinct adversaries it contains,
// n!/|stabilizer| by orbit–stabilizer).
func (o *Orbits) Canonical(idx uint64) (canon uint64, size uint64) {
	canon = idx
	stab := uint64(0)
	for p := 0; p < o.nPerms; p++ {
		img := o.Image(idx, p)
		if img < canon {
			canon = img
		}
		if img == idx {
			stab++
		}
	}
	return canon, uint64(o.nPerms) / stab
}

// OrbitSize returns the size of the orbit of idx.
func (o *Orbits) OrbitSize(idx uint64) uint64 {
	_, size := o.Canonical(idx)
	return size
}

// PermutationBetween returns a process permutation whose action takes
// the adversary at enumeration index src to the one at dst, i.e.
// AdversaryAt(src).Permute(perm) is the adversary at dst. ok is false
// when the two indices are not in the same orbit. The returned slice is
// shared — callers must not mutate it.
func (o *Orbits) PermutationBetween(src, dst uint64) (perm []procs.ID, ok bool) {
	for p := 0; p < o.nPerms; p++ {
		if o.Image(src, p) == dst {
			return o.perms[p], true
		}
	}
	return nil, false
}

// ForEachRepresentative calls f for every canonical orbit
// representative of the domain in increasing index order, with the
// orbit size. Stops early when f returns false.
//
// This is the filter-based reference path: it visits every enumeration
// index and runs one image scan per index (minimality and stabilizer
// decided together — rejection bails at the first smaller image). The
// production sweeps use ForEachCanonicalFrom, which never visits the
// non-canonical bulk; equivalence tests pin the two byte-identical.
func (o *Orbits) ForEachRepresentative(f func(idx, size uint64) bool) {
	total := CensusSize(o.n)
	for idx := uint64(0); idx < total; idx++ {
		size, ok := o.selfCanonical(idx)
		if !ok {
			continue
		}
		if !f(idx, size) {
			return
		}
	}
}

// selfCanonical decides in a single image scan whether idx is its
// orbit's canonical representative and, when it is, the orbit's size:
// the first image below idx rejects immediately, otherwise the same
// pass has counted the stabilizer.
func (o *Orbits) selfCanonical(idx uint64) (size uint64, ok bool) {
	stab := uint64(1) // the identity
	for p := 1; p < o.nPerms; p++ {
		img := o.Image(idx, p)
		if img < idx {
			return 0, false
		}
		if img == idx {
			stab++
		}
	}
	return uint64(o.nPerms) / stab, true
}

// CanonicalWithWitness returns the canonical representative and size of
// idx's orbit together with a witness permutation mapping the
// representative's adversary onto idx's — everything a rehydrating
// store lookup needs, in one image scan instead of the two full scans
// of Canonical followed by PermutationBetween. The returned permutation
// is freshly allocated; callers may retain it.
func (o *Orbits) CanonicalWithWitness(idx uint64) (canon, size uint64, fromCanon []procs.ID) {
	canon = idx
	best := 0
	stab := uint64(0)
	for p := 0; p < o.nPerms; p++ {
		img := o.Image(idx, p)
		if img < canon {
			canon, best = img, p
		}
		if img == idx {
			stab++
		}
	}
	// perms[best] renames idx's adversary onto canon's; its inverse
	// renames canon's back onto idx's.
	inv := make([]procs.ID, o.n)
	for i, id := range o.perms[best] {
		inv[id] = procs.ID(i)
	}
	return canon, uint64(o.nPerms) / stab, inv
}

// EnumerationIndex is the inverse of AdversaryAt: the index of the
// adversary in the n-process enumeration order. The per-n position
// table is computed once and shared (this runs per entry in store orbit
// rehydration under `factool serve`).
func EnumerationIndex(a *Adversary) uint64 {
	posOf := enumerationPos(a.n)
	var idx uint64
	for _, s := range a.live {
		idx |= 1 << uint(posOf[s])
	}
	return idx
}

// enumerationPos returns the position of each candidate live set in the
// n-process enumeration order, indexed by the set's bitmask — the
// inverse of EnumerationDomain, cached per n with the same lifecycle.
func enumerationPos(n int) []int16 {
	if n < 1 || n > 6 {
		panic(fmt.Sprintf("adversary: enumeration position table n=%d out of [1,6]", n))
	}
	posTabOnce[n].Do(func() {
		domain := EnumerationDomain(n)
		tab := make([]int16, 1<<uint(n))
		for i, s := range domain {
			tab[s] = int16(i)
		}
		posTabs[n] = tab
	})
	return posTabs[n]
}

var (
	posTabOnce [7]sync.Once
	posTabs    [7][]int16
)

// Permute returns the adversary with every process p renamed to
// perm[p]. perm must be a permutation of 0..n−1.
func (a *Adversary) Permute(perm []procs.ID) *Adversary {
	live := make([]procs.Set, 0, len(a.live))
	for _, s := range a.live {
		var img procs.Set
		s.ForEach(func(id procs.ID) { img = img.Add(perm[id]) })
		live = append(live, img)
	}
	out, err := New(a.n, live...)
	if err != nil {
		panic("adversary: Permute produced invalid live sets") // unreachable for valid perms
	}
	return out
}

// Permutations returns all n! permutations of 0..n−1 in a deterministic
// order with the identity first — the same order Orbits.Image indexes.
func Permutations(n int) [][]procs.ID { return permutations(n) }

func permutations(n int) [][]procs.ID {
	ids := make([]procs.ID, n)
	for i := range ids {
		ids[i] = procs.ID(i)
	}
	var out [][]procs.ID
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]procs.ID, n)
			copy(cp, ids)
			out = append(out, cp)
			return
		}
		// Lexicographic-ish deterministic order; identity is emitted
		// first because the first branch keeps positions in place.
		for i := k; i < n; i++ {
			ids[k], ids[i] = ids[i], ids[k]
			rec(k + 1)
			ids[k], ids[i] = ids[i], ids[k]
		}
	}
	rec(0)
	return out
}
