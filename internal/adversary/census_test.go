package adversary

import "testing"

// TestFigure2Census is experiment E8: the Figure 2 class diagram as
// data. For every adversary over 3 processes: superset-closed and
// symmetric adversaries are fair (the paper's inclusions), and the
// class sizes match the measured census recorded in EXPERIMENTS.md.
func TestFigure2Census(t *testing.T) {
	total, superset, symmetric, fair := 0, 0, 0, 0
	EnumerateAdversaries(3, func(a *Adversary) bool {
		total++
		ss := a.IsSupersetClosed()
		sym := a.IsSymmetric()
		fr := a.IsFair()
		if ss {
			superset++
		}
		if sym {
			symmetric++
		}
		if fr {
			fair++
		}
		if (ss || sym) && !fr {
			t.Errorf("inclusion violated: %v is superset/symmetric but unfair", a)
		}
		return true
	})
	if total != 128 || superset != 19 || symmetric != 8 || fair != 44 {
		t.Errorf("census = (total %d, superset %d, symmetric %d, fair %d), want (128, 19, 8, 44)",
			total, superset, symmetric, fair)
	}
}

// TestCensusSetconHistogram pins the distribution of agreement powers
// over the fair class at n=3.
func TestCensusSetconHistogram(t *testing.T) {
	hist := map[int]int{}
	EnumerateAdversaries(3, func(a *Adversary) bool {
		if a.IsFair() {
			hist[a.Setcon()]++
		}
		return true
	})
	want := map[int]int{0: 1, 1: 24, 2: 18, 3: 1}
	for k, w := range want {
		if hist[k] != w {
			t.Errorf("setcon=%d count = %d, want %d", k, hist[k], w)
		}
	}
}
