package adversary

import (
	"errors"
	"testing"

	"repro/internal/procs"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrBadSize) {
		t.Errorf("want ErrBadSize, got %v", err)
	}
	if _, err := New(3, procs.EmptySet); !errors.Is(err, ErrEmptyLiveSet) {
		t.Errorf("want ErrEmptyLiveSet, got %v", err)
	}
	if _, err := New(2, procs.SetOf(3)); !errors.Is(err, ErrOutOfSystem) {
		t.Errorf("want ErrOutOfSystem, got %v", err)
	}
	// Deduplication.
	a := MustNew(3, procs.SetOf(0), procs.SetOf(0))
	if a.NumLiveSets() != 1 {
		t.Errorf("duplicates not removed")
	}
}

func TestConstructorsBasics(t *testing.T) {
	wf := WaitFree(3)
	if wf.NumLiveSets() != 7 {
		t.Errorf("wait-free live sets = %d, want 7", wf.NumLiveSets())
	}
	tr := TResilient(3, 1)
	if tr.NumLiveSets() != 4 { // three pairs + full set
		t.Errorf("1-resilient live sets = %d, want 4", tr.NumLiveSets())
	}
	kof := KObstructionFree(3, 1)
	if kof.NumLiveSets() != 3 {
		t.Errorf("1-OF live sets = %d, want 3", kof.NumLiveSets())
	}
	sym := SymmetricFromSizes(4, 2, 4)
	if sym.NumLiveSets() != 7 { // C(4,2)=6 plus the full set
		t.Errorf("symmetric live sets = %d, want 7", sym.NumLiveSets())
	}
	fig5b, err := SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	// {p2} and supersets: 4; {p1,p3}: itself + full (already counted): +1.
	if fig5b.NumLiveSets() != 5 {
		t.Errorf("figure 5b live sets = %d, want 5: %v", fig5b.NumLiveSets(), fig5b)
	}
	if !fig5b.Contains(procs.SetOf(1)) || fig5b.Contains(procs.SetOf(0)) {
		t.Errorf("Contains wrong for %v", fig5b)
	}
}

func TestSupersetClosureErrors(t *testing.T) {
	if _, err := SupersetClosure(3, procs.EmptySet); !errors.Is(err, ErrEmptyLiveSet) {
		t.Errorf("want ErrEmptyLiveSet, got %v", err)
	}
	if _, err := SupersetClosure(2, procs.SetOf(5)); !errors.Is(err, ErrOutOfSystem) {
		t.Errorf("want ErrOutOfSystem, got %v", err)
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		name      string
		a         *Adversary
		superset  bool
		symmetric bool
		fair      bool
	}{
		{"wait-free", WaitFree(3), true, true, true},
		{"1-resilient", TResilient(3, 1), true, true, true},
		{"2-resilient", TResilient(3, 2), true, true, true},
		{"1-OF", KObstructionFree(3, 1), false, true, true},
		{"2-OF", KObstructionFree(3, 2), false, true, true},
		{"fig5b", mustSuperset(t, 3, procs.SetOf(1), procs.SetOf(0, 2)), true, false, true},
		{"unfair example", MustNew(3, procs.SetOf(0, 1), procs.SetOf(2)), false, false, false},
	}
	for _, c := range cases {
		if got := c.a.IsSupersetClosed(); got != c.superset {
			t.Errorf("%s: IsSupersetClosed = %v, want %v", c.name, got, c.superset)
		}
		if got := c.a.IsSymmetric(); got != c.symmetric {
			t.Errorf("%s: IsSymmetric = %v, want %v", c.name, got, c.symmetric)
		}
		if got := c.a.IsFair(); got != c.fair {
			t.Errorf("%s: IsFair = %v, want %v", c.name, got, c.fair)
		}
	}
}

func mustSuperset(t *testing.T, n int, gens ...procs.Set) *Adversary {
	t.Helper()
	a, err := SupersetClosure(n, gens...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestUnfairWitness(t *testing.T) {
	// A = {{p1,p2},{p3}}: restricting to P={p1,p3}, Q={p1} gives an empty
	// A|P,Q while min(|Q|, setcon(A|P)) = 1.
	a := MustNew(3, procs.SetOf(0, 1), procs.SetOf(2))
	p, q, fair := a.FairnessWitness()
	if fair {
		t.Fatalf("adversary should be unfair")
	}
	if SetconOf(a.RestrictTouching(p, q)) == min(q.Size(), a.Alpha(p)) {
		t.Fatalf("witness (%v,%v) does not violate fairness", p, q)
	}
}

func TestSetconTResilient(t *testing.T) {
	// setcon of the t-resilient adversary is t+1 (symmetric formula),
	// and equals csize for this superset-closed adversary.
	for n := 2; n <= 5; n++ {
		for tt := 0; tt < n; tt++ {
			a := TResilient(n, tt)
			if got := a.Setcon(); got != tt+1 {
				t.Errorf("n=%d t=%d: setcon = %d, want %d", n, tt, got, tt+1)
			}
			if got := a.CSize(); got != tt+1 {
				t.Errorf("n=%d t=%d: csize = %d, want %d", n, tt, got, tt+1)
			}
		}
	}
}

func TestSetconKObstructionFree(t *testing.T) {
	// α(P) = min(|P|, k) for the k-OF adversary.
	for n := 2; n <= 4; n++ {
		for k := 1; k <= n; k++ {
			a := KObstructionFree(n, k)
			procs.ForEachSubset(procs.FullSet(n), func(p procs.Set) bool {
				want := p.Size()
				if want > k {
					want = k
				}
				if got := a.Alpha(p); got != want {
					t.Errorf("n=%d k=%d α(%v) = %d, want %d", n, k, p, got, want)
				}
				return true
			})
		}
	}
}

func TestSetconSupersetClosedEqualsCSize(t *testing.T) {
	// Gafni-Kuznetsov: for superset-closed adversaries setcon = csize.
	gens := [][]procs.Set{
		{procs.SetOf(1)},
		{procs.SetOf(1), procs.SetOf(0, 2)},
		{procs.SetOf(0, 1), procs.SetOf(1, 2), procs.SetOf(0, 2)},
		{procs.SetOf(0), procs.SetOf(1), procs.SetOf(2)},
		{procs.SetOf(0, 1, 2, 3)},
		{procs.SetOf(0, 1), procs.SetOf(2, 3)},
	}
	for _, g := range gens {
		n := 3
		for _, s := range g {
			if s.Contains(3) {
				n = 4
			}
		}
		a := mustSuperset(t, n, g...)
		if got, want := a.Setcon(), a.CSize(); got != want {
			t.Errorf("%v: setcon = %d, csize = %d", a, got, want)
		}
	}
}

func TestSymmetricSetconFormula(t *testing.T) {
	// For symmetric adversaries: setcon = number of distinct live-set
	// sizes present (Section 3).
	cases := [][]int{{1}, {2}, {1, 3}, {2, 3}, {1, 2, 3}, {3}}
	for _, sizes := range cases {
		a := SymmetricFromSizes(3, sizes...)
		if got := a.Setcon(); got != len(sizes) {
			t.Errorf("sizes %v: setcon = %d, want %d", sizes, got, len(sizes))
		}
	}
}

func TestFigure5bAgreementFunction(t *testing.T) {
	a := mustSuperset(t, 3, procs.SetOf(1), procs.SetOf(0, 2))
	want := map[procs.Set]int{
		procs.EmptySet:    0,
		procs.SetOf(0):    0,
		procs.SetOf(1):    1,
		procs.SetOf(2):    0,
		procs.SetOf(0, 1): 1,
		procs.SetOf(0, 2): 1,
		procs.SetOf(1, 2): 1,
		procs.FullSet(3):  2,
	}
	af := a.AgreementFunction()
	for p, w := range want {
		if af[p] != w {
			t.Errorf("α(%v) = %d, want %d", p, af[p], w)
		}
	}
}

func TestAgreementLawsHold(t *testing.T) {
	advs := []*Adversary{
		WaitFree(3), TResilient(3, 1), TResilient(4, 2),
		KObstructionFree(3, 2), KObstructionFree(4, 3),
		mustSuperset(t, 3, procs.SetOf(1), procs.SetOf(0, 2)),
		MustNew(3, procs.SetOf(0, 1), procs.SetOf(2)), // even unfair ones
	}
	for _, a := range advs {
		if p, q, ok := a.ValidateAgreementLaws(); !ok {
			t.Errorf("%v: agreement laws fail at (%v,%v)", a, p, q)
		}
	}
}

func TestAlphaModel(t *testing.T) {
	a := TResilient(3, 1)
	m := a.AlphaModel()
	if m.N() != 3 {
		t.Errorf("N = %d", m.N())
	}
	full := procs.FullSet(3)
	if m.Alpha(full) != 2 || m.MaxFailures(full) != 1 {
		t.Errorf("α/failures wrong: %d/%d", m.Alpha(full), m.MaxFailures(full))
	}
	if !m.Allows(full, procs.SetOf(0)) {
		t.Errorf("one failure must be allowed at full participation")
	}
	if m.Allows(full, procs.SetOf(0, 1)) {
		t.Errorf("two failures must be rejected")
	}
	if m.Allows(procs.SetOf(0), procs.SetOf(1)) {
		t.Errorf("faulty set must be within participation")
	}
	// α(P)=0 participation is not permitted at all.
	b := mustSuperset(t, 3, procs.SetOf(1))
	if b.AlphaModel().Allows(procs.SetOf(0), procs.EmptySet) {
		t.Errorf("participation with α=0 must be disallowed")
	}
}

func TestEnumerateAdversariesCensus(t *testing.T) {
	// n = 2: adversaries are subsets of {{p1},{p2},{p1,p2}} → 8 total.
	count := 0
	EnumerateAdversaries(2, func(*Adversary) bool {
		count++
		return true
	})
	if count != 8 {
		t.Errorf("n=2 adversary count = %d, want 8", count)
	}
	// Early stop works.
	count = 0
	EnumerateAdversaries(2, func(*Adversary) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop failed: %d", count)
	}
}

func TestSetconOfDirect(t *testing.T) {
	if SetconOf(nil) != 0 {
		t.Errorf("setcon(∅) must be 0")
	}
	// Single live set of size k has setcon... min over removals:
	// setcon({S}|S\{a}) = 0 (S ⊄ S\{a}), so setcon = 1 regardless of k.
	if got := SetconOf([]procs.Set{procs.FullSet(4)}); got != 1 {
		t.Errorf("single live set setcon = %d, want 1", got)
	}
	// Wait-free n-process: setcon = n.
	for n := 1; n <= 4; n++ {
		if got := SetconOf(procs.NonemptySubsets(procs.FullSet(n))); got != n {
			t.Errorf("wait-free n=%d setcon = %d", n, got)
		}
	}
}

func TestRestrict(t *testing.T) {
	a := TResilient(3, 1)
	r := a.Restrict(procs.SetOf(0, 1))
	if r.NumLiveSets() != 1 || !r.Contains(procs.SetOf(0, 1)) {
		t.Errorf("Restrict wrong: %v", r)
	}
	touching := a.RestrictTouching(procs.FullSet(3), procs.SetOf(2))
	for _, s := range touching {
		if !s.Contains(2) {
			t.Errorf("RestrictTouching returned %v without p3", s)
		}
	}
	if len(touching) != 3 {
		t.Errorf("touching count = %d, want 3", len(touching))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
