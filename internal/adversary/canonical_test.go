package adversary

import (
	"testing"
)

type rep struct{ idx, size uint64 }

func collectFilter(o *Orbits, start, limit uint64) []rep {
	var out []rep
	total := CensusSize(o.N())
	if limit > total {
		limit = total
	}
	for idx := start; idx < limit; idx++ {
		if size, ok := o.selfCanonical(idx); ok {
			out = append(out, rep{idx, size})
		}
	}
	return out
}

func collectGenerator(o *Orbits, start, limit uint64) []rep {
	var out []rep
	o.ForEachCanonicalFrom(start, func(idx, size uint64) bool {
		if idx >= limit {
			return false
		}
		out = append(out, rep{idx, size})
		return true
	})
	return out
}

func sameReps(t *testing.T, label string, got, want []rep) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d representatives, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: representative %d is (%d,%d), want (%d,%d)",
				label, i, got[i].idx, got[i].size, want[i].idx, want[i].size)
		}
	}
}

// TestCanonicalGeneratorMatchesFilter pins the stabilizer-aware DFS
// byte-identical to the filter-based reference scan over the full n<=4
// domains: same representatives, same order, same orbit sizes.
func TestCanonicalGeneratorMatchesFilter(t *testing.T) {
	for n := 1; n <= 4; n++ {
		o := NewOrbits(n)
		total := CensusSize(n)
		want := collectFilter(o, 0, total)
		got := collectGenerator(o, 0, total)
		sameReps(t, "full domain", got, want)
		var sum uint64
		for _, r := range got {
			sum += r.size
		}
		if sum != total {
			t.Fatalf("n=%d: orbit sizes sum to %d, want %d", n, sum, total)
		}
		t.Logf("n=%d: %d orbits over %d adversaries", n, len(got), total)
	}
}

// TestCanonicalGeneratorSeek checks mid-domain starts are exact: for
// arbitrary raw starting points (canonical or not, including the raw
// shard boundaries a filter-era checkpoint records), the generator's
// output equals the tail of the full canonical sequence.
func TestCanonicalGeneratorSeek(t *testing.T) {
	n := 4
	o := NewOrbits(n)
	total := CensusSize(n)
	for _, start := range []uint64{0, 1, 2, 3, 48, 100, 1000, 4096, 9999, total - 1, total} {
		want := collectFilter(o, start, total)
		got := collectGenerator(o, start, total)
		sameReps(t, "seek", got, want)
	}
}

// TestCanonicalGeneratorN5 cross-checks the generator at n=5 against
// the filter on a sampled prefix and a mid-domain raw window — the full
// 2^31 domain is exactly what the generator exists to avoid scanning.
func TestCanonicalGeneratorN5(t *testing.T) {
	o := NewOrbits(5)
	// Prefix: the first 4096 raw indices (dense in canonical reps).
	sameReps(t, "n=5 prefix", collectGenerator(o, 0, 4096), collectFilter(o, 0, 4096))
	// Mid-domain window, deliberately unaligned.
	const lo, hi = uint64(1)<<30 + 12345, uint64(1)<<30 + 12345 + 1<<15
	sameReps(t, "n=5 window", collectGenerator(o, lo, hi), collectFilter(o, lo, hi))
}

// TestCanonicalGeneratorEarlyStop checks a false return aborts the walk
// immediately.
func TestCanonicalGeneratorEarlyStop(t *testing.T) {
	o := NewOrbits(4)
	calls := 0
	o.ForEachCanonicalFrom(0, func(idx, size uint64) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Fatalf("early stop after %d calls, want 7", calls)
	}
}

// TestCanonicalWithWitness checks the one-scan lookup bundle: canon and
// size agree with Canonical, and the witness permutation maps the
// representative's adversary onto the queried index.
func TestCanonicalWithWitness(t *testing.T) {
	n := 4
	o := NewOrbits(n)
	for idx := uint64(0); idx < CensusSize(n); idx += 89 {
		wantCanon, wantSize := o.Canonical(idx)
		canon, size, perm := o.CanonicalWithWitness(idx)
		if canon != wantCanon || size != wantSize {
			t.Fatalf("idx=%d: (%d,%d), want (%d,%d)", idx, canon, size, wantCanon, wantSize)
		}
		if got := EnumerationIndex(AdversaryAt(n, canon).Permute(perm)); got != idx {
			t.Fatalf("idx=%d: witness permutation lands on %d", idx, got)
		}
	}
}
