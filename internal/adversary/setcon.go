package adversary

// Definition 1 (set-consensus power) and agreement functions.

import "repro/internal/procs"

// SetconOf computes setcon of an arbitrary collection of live sets
// (Definition 1):
//
//	setcon(A) = 0                                          if A = ∅
//	setcon(A) = max_{S∈A} (min_{a∈S} setcon(A|_{S\{a}})+1) otherwise
//
// where A|P keeps the live sets included in P. All recursive calls are
// restrictions of the original collection, so results are memoized per
// restriction set.
func SetconOf(live []procs.Set) int {
	memo := make(map[procs.Set]int)
	var rec func(p procs.Set) int
	rec = func(p procs.Set) int {
		if v, ok := memo[p]; ok {
			return v
		}
		best := 0
		for _, s := range live {
			if !s.SubsetOf(p) {
				continue
			}
			// min_{a∈S} setcon(A|S\{a}) + 1
			inner := -1
			s.ForEach(func(a procs.ID) {
				v := rec(s.Remove(a)) + 1
				if inner < 0 || v < inner {
					inner = v
				}
			})
			if inner > best {
				best = inner
			}
		}
		memo[p] = best
		return best
	}
	var full procs.Set
	for _, s := range live {
		full = full.Union(s)
	}
	return rec(full)
}

// Setcon returns the set-consensus power of the adversary: the smallest
// k such that k-set consensus is solvable in the A-model.
func (a *Adversary) Setcon() int {
	return a.Alpha(procs.FullSet(a.n))
}

// Alpha evaluates the agreement function of the adversary at P:
// α(P) = setcon(A|P). Memoized — and the memo is the shared (P, Q)
// setcon table, so α evaluations and fairness checks feed each other.
func (a *Adversary) Alpha(p procs.Set) int {
	// A|P = A|P,P for non-empty live sets: the Q = P diagonal.
	return a.setconTouch(p, p)
}

// setconTouch computes setcon(A|P,Q) — the set-consensus power of
// {S ∈ A : S ⊆ P, S ∩ Q ≠ ∅} — through the per-adversary memo.
//
// The family is closed under the Definition 1 recursion: restricting
// A|P,Q to live sets inside P' yields A|(P∩P'),Q, so a single memo
// keyed by the (P, Q∩P) pair serves Setcon, every Alpha(P) and all
// (P, Q) fairness probes of one adversary. This replaces the fresh
// SetconOf memo the fairness sweep used to rebuild per (P, Q) pair —
// Alpha/IsFair dominate census classification time.
func (a *Adversary) setconTouch(p, q procs.Set) int {
	q = q.Intersect(p) // membership of S ⊆ P depends on Q only via Q∩P
	key := uint64(p)<<32 | uint64(q)
	if v, ok := a.setconPQ[key]; ok {
		return v
	}
	best := 0
	for _, s := range a.live {
		if !s.SubsetOf(p) || !s.Intersects(q) {
			continue
		}
		// min_{x∈S} setcon(A|(S\{x}), Q) + 1
		inner := -1
		s.ForEach(func(x procs.ID) {
			v := a.setconTouch(s.Remove(x), q) + 1
			if inner < 0 || v < inner {
				inner = v
			}
		})
		if inner > best {
			best = inner
		}
	}
	a.setconPQ[key] = best
	return best
}

// AgreementFunction materializes α over every subset of Π.
func (a *Adversary) AgreementFunction() map[procs.Set]int {
	out := make(map[procs.Set]int, 1<<uint(a.n))
	procs.ForEachSubset(procs.FullSet(a.n), func(p procs.Set) bool {
		out[p] = a.Alpha(p)
		return true
	})
	return out
}

// ValidateAgreementLaws checks the two structural laws of agreement
// functions stated in Section 3 — monotonicity (P ⊆ P' ⇒ α(P) ≤ α(P'))
// and bounded growth (α(P') ≤ α(P) + |P'\P|) — plus, for fair
// adversaries, the regularity law α(P) ≥ α(P\Q) ≥ α(P) − |Q| used by
// Lemma 3. Returns the first violated pair, or ok=true.
func (a *Adversary) ValidateAgreementLaws() (p, q procs.Set, ok bool) {
	full := procs.FullSet(a.n)
	subsets := procs.Subsets(full)
	for _, pp := range subsets {
		for _, qq := range subsets {
			if !pp.SubsetOf(qq) {
				continue
			}
			ap, aq := a.Alpha(pp), a.Alpha(qq)
			if ap > aq {
				return pp, qq, false
			}
			if aq > ap+qq.Diff(pp).Size() {
				return pp, qq, false
			}
		}
	}
	return 0, 0, true
}

// IsFair implements Definition 2: A is fair iff for all Q ⊆ P ⊆ Π,
// setcon(A|P,Q) = min(|Q|, setcon(A|P)).
func (a *Adversary) IsFair() bool {
	_, _, fair := a.FairnessWitness()
	return fair
}

// FairnessWitness returns a violating pair (P, Q) when the adversary is
// unfair, or fair=true.
func (a *Adversary) FairnessWitness() (p, q procs.Set, fair bool) {
	full := procs.FullSet(a.n)
	violated := false
	var vp, vq procs.Set
	procs.ForEachSubset(full, func(pp procs.Set) bool {
		alphaP := a.Alpha(pp)
		procs.ForEachSubset(pp, func(qq procs.Set) bool {
			want := qq.Size()
			if alphaP < want {
				want = alphaP
			}
			if a.setconTouch(pp, qq) != want {
				violated = true
				vp, vq = pp, qq
				return false
			}
			return true
		})
		return !violated
	})
	if violated {
		return vp, vq, false
	}
	return 0, 0, true
}

// EnumerateAdversaries calls f for every adversary over n processes
// (every subset of the non-empty subsets of Π, including the empty
// adversary). Stops early if f returns false. The count is
// 2^(2^n - 1): 128 for n = 3 — the Figure 2 census domain.
func EnumerateAdversaries(n int, f func(*Adversary) bool) {
	all := procs.NonemptySubsets(procs.FullSet(n))
	total := CensusSize(n)
	for idx := uint64(0); idx < total; idx++ {
		if !f(adversaryAt(n, all, idx)) {
			return
		}
	}
}

// CensusSize returns the number of adversaries EnumerateAdversaries
// visits for an n-process system: 2^(2^n − 1). Valid for n ≤ 6 (the
// count overflows uint64 beyond that — far past any enumerable census).
func CensusSize(n int) uint64 {
	if n < 1 || n > 6 {
		panic("adversary: CensusSize out of range")
	}
	return uint64(1) << uint((1<<uint(n))-1)
}

// EnumerationDomain returns the candidate live sets of the n-process
// enumeration in the fixed order AdversaryAt indexes by. Sweeps over
// many indices should compute it once and use AdversaryAtIn.
func EnumerationDomain(n int) []procs.Set {
	return procs.NonemptySubsets(procs.FullSet(n))
}

// AdversaryAt returns the idx-th adversary of the EnumerateAdversaries
// order: bit i of idx selects the i-th non-empty subset of Π (in the
// procs.NonemptySubsets order) as a live set. This random-access form is
// what lets the census engine partition the enumeration space into
// deterministic shards.
func AdversaryAt(n int, idx uint64) *Adversary {
	return adversaryAt(n, EnumerationDomain(n), idx)
}

// AdversaryAtIn is AdversaryAt over a precomputed EnumerationDomain(n)
// — the hot-loop form that skips re-deriving the domain per index.
func AdversaryAtIn(n int, domain []procs.Set, idx uint64) *Adversary {
	return adversaryAt(n, domain, idx)
}

func adversaryAt(n int, all []procs.Set, idx uint64) *Adversary {
	live := make([]procs.Set, 0, len(all))
	for i := 0; i < len(all); i++ {
		if idx&(1<<uint(i)) != 0 {
			live = append(live, all[i])
		}
	}
	adv, err := New(n, live...)
	if err != nil {
		panic("adversary: enumeration produced invalid live sets") // unreachable
	}
	return adv
}
