package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/procs"
)

// randAdversary derives an adversary over 3 processes from a 7-bit mask
// (one bit per non-empty subset of Π).
func randAdversary(mask uint8) *Adversary {
	subsets := procs.NonemptySubsets(procs.FullSet(3))
	var live []procs.Set
	for i, s := range subsets {
		if mask&(1<<uint(i)) != 0 {
			live = append(live, s)
		}
	}
	a, err := New(3, live...)
	if err != nil {
		panic(err) // unreachable: inputs valid by construction
	}
	return a
}

// TestQuickAgreementLaws: α is monotone with bounded growth for every
// adversary (not just fair ones).
func TestQuickAgreementLaws(t *testing.T) {
	f := func(mask uint8) bool {
		a := randAdversary(mask % 128)
		_, _, ok := a.ValidateAgreementLaws()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}

// TestQuickRestrictComposition: (A|P)|Q = A|(P∩Q).
func TestQuickRestrictComposition(t *testing.T) {
	f := func(mask uint8, pRaw, qRaw uint8) bool {
		a := randAdversary(mask % 128)
		p := procs.Set(pRaw) & procs.FullSet(3)
		q := procs.Set(qRaw) & procs.FullSet(3)
		left := a.Restrict(p).Restrict(q)
		right := a.Restrict(p.Intersect(q))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSetconRestrictionMonotone: setcon(A|P) ≤ setcon(A) and
// α(P) equals SetconOf of the restricted live sets.
func TestQuickSetconConsistency(t *testing.T) {
	f := func(mask uint8, pRaw uint8) bool {
		a := randAdversary(mask % 128)
		p := procs.Set(pRaw) & procs.FullSet(3)
		alphaP := a.Alpha(p)
		if alphaP > a.Setcon() {
			return false
		}
		return alphaP == SetconOf(a.Restrict(p).LiveSets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFairnessUpperBound: for any adversary and any Q ⊆ P,
// setcon(A|P,Q) ≤ min(|Q|, setcon(A|P)) — fairness is about achieving
// this bound, exceeding it is impossible.
func TestQuickFairnessUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		a := randAdversary(uint8(rng.Intn(128)))
		p := procs.Set(rng.Intn(8)) & procs.FullSet(3)
		sub := procs.Subsets(p)
		q := sub[rng.Intn(len(sub))]
		got := SetconOf(a.RestrictTouching(p, q))
		bound := q.Size()
		if ap := a.Alpha(p); ap < bound {
			bound = ap
		}
		if got > bound {
			t.Fatalf("%v: setcon(A|%v,%v) = %d > bound %d", a, p, q, got, bound)
		}
	}
}

// TestQuickSupersetClosureIsClosed: the closure constructor always
// yields a superset-closed (hence fair) adversary.
func TestQuickSupersetClosureIsClosed(t *testing.T) {
	f := func(gensRaw [3]uint8) bool {
		var gens []procs.Set
		for _, g := range gensRaw {
			s := procs.Set(g) & procs.FullSet(3)
			if !s.IsEmpty() {
				gens = append(gens, s)
			}
		}
		if len(gens) == 0 {
			return true
		}
		a, err := SupersetClosure(3, gens...)
		if err != nil {
			return false
		}
		return a.IsSupersetClosed() && a.IsFair()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSymmetricIsFair: symmetric adversaries are fair (paper §3).
func TestQuickSymmetricIsFair(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		var sizes []int
		for k := 1; k <= 3; k++ {
			if mask&(1<<uint(k-1)) != 0 {
				sizes = append(sizes, k)
			}
		}
		if len(sizes) == 0 {
			continue
		}
		a := SymmetricFromSizes(3, sizes...)
		if !a.IsSymmetric() || !a.IsFair() {
			t.Fatalf("sizes %v: symmetric=%v fair=%v", sizes, a.IsSymmetric(), a.IsFair())
		}
	}
}
