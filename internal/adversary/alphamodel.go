package adversary

// The α-model (Definition 3) and α-set-consensus model (Definition 4).

import "repro/internal/procs"

// AlphaFunc is an agreement function: subsets of Π to {0,...,n}.
type AlphaFunc func(procs.Set) int

// AlphaModel is the weakest model with agreement function α
// (Definition 3): if P is the participating set then α(P) ≥ 1 and at
// most α(P)−1 processes in P are faulty. By Theorems 1 and 2 it is
// task-equivalent to the A-model of any fair adversary A with agreement
// function α, and to the α-set-consensus model.
type AlphaModel struct {
	n     int
	alpha AlphaFunc
}

// NewAlphaModel wraps an agreement function for an n-process system.
func NewAlphaModel(n int, alpha AlphaFunc) *AlphaModel {
	return &AlphaModel{n: n, alpha: alpha}
}

// AlphaModel derives the α-model of the adversary's agreement function.
func (a *Adversary) AlphaModel() *AlphaModel {
	return NewAlphaModel(a.n, a.Alpha)
}

// N returns the system size.
func (m *AlphaModel) N() int { return m.n }

// Alpha evaluates the agreement function.
func (m *AlphaModel) Alpha(p procs.Set) int { return m.alpha(p) }

// MaxFailures returns the failure budget α(P)−1 for participation P
// (−1 when α(P) = 0, meaning P is not a permitted participation).
func (m *AlphaModel) MaxFailures(p procs.Set) int { return m.alpha(p) - 1 }

// Allows reports whether a run with participating set P and faulty set
// F complies with the α-model.
func (m *AlphaModel) Allows(p, f procs.Set) bool {
	if !f.SubsetOf(p) {
		return false
	}
	a := m.alpha(p)
	return a >= 1 && f.Size() <= a-1
}
