package procs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// OrderedPartition is an ordered partition of a ground set into non-empty
// blocks. It is the combinatorial form of a one-round immediate-snapshot
// schedule: the processes of block i take their WriteSnapshot "at the same
// time", after all blocks j < i. The view of a process is the union of its
// own block and all earlier blocks (containment + immediacy of IS).
type OrderedPartition []Set

// Validation errors for ordered partitions.
var (
	ErrEmptyBlock    = errors.New("ordered partition has an empty block")
	ErrOverlap       = errors.New("ordered partition blocks overlap")
	ErrWrongGround   = errors.New("ordered partition does not cover the ground set")
	ErrUnknownMember = errors.New("process not in ordered partition")
)

// Validate checks that op is an ordered partition of ground.
func (op OrderedPartition) Validate(ground Set) error {
	var seen Set
	for _, b := range op {
		if b.IsEmpty() {
			return ErrEmptyBlock
		}
		if seen.Intersects(b) {
			return ErrOverlap
		}
		seen = seen.Union(b)
	}
	if seen != ground {
		return fmt.Errorf("%w: covered %v, want %v", ErrWrongGround, seen, ground)
	}
	return nil
}

// Ground returns the union of all blocks.
func (op OrderedPartition) Ground() Set {
	var g Set
	for _, b := range op {
		g = g.Union(b)
	}
	return g
}

// BlockOf returns the index of the block containing p, or -1 if absent.
func (op OrderedPartition) BlockOf(p ID) int {
	for i, b := range op {
		if b.Contains(p) {
			return i
		}
	}
	return -1
}

// ViewOf returns the IS view of process p under this schedule: the union
// of p's block with all earlier blocks. ok is false if p is not in the
// partition.
func (op OrderedPartition) ViewOf(p ID) (view Set, ok bool) {
	var acc Set
	for _, b := range op {
		acc = acc.Union(b)
		if b.Contains(p) {
			return acc, true
		}
	}
	return 0, false
}

// Views returns the map of every participating process to its IS view.
func (op OrderedPartition) Views() map[ID]Set {
	out := make(map[ID]Set, op.Ground().Size())
	var acc Set
	for _, b := range op {
		acc = acc.Union(b)
		view := acc
		b.ForEach(func(p ID) { out[p] = view })
	}
	return out
}

// Prefix returns the union of the first k blocks.
func (op OrderedPartition) Prefix(k int) Set {
	var acc Set
	for i := 0; i < k && i < len(op); i++ {
		acc = acc.Union(op[i])
	}
	return acc
}

// Equal reports whether two ordered partitions are identical.
func (op OrderedPartition) Equal(other OrderedPartition) bool {
	if len(op) != len(other) {
		return false
	}
	for i := range op {
		if op[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of op.
func (op OrderedPartition) Clone() OrderedPartition {
	out := make(OrderedPartition, len(op))
	copy(out, op)
	return out
}

// String renders the partition in the paper's run notation,
// e.g. "{p2}, {p1}, {p3}".
func (op OrderedPartition) String() string {
	parts := make([]string, len(op))
	for i, b := range op {
		parts[i] = b.String()
	}
	return strings.Join(parts, ", ")
}

// Key returns a compact canonical key for use in maps.
func (op OrderedPartition) Key() string {
	var b strings.Builder
	b.Grow(len(op) * 5)
	for _, blk := range op {
		fmt.Fprintf(&b, "%x|", uint32(blk))
	}
	return b.String()
}

// EnumerateOrderedPartitions returns every ordered partition of ground,
// in a deterministic order. The count is the ordered Bell (Fubini) number
// of |ground|: 1, 3, 13, 75, 541, 4683, ... for |ground| = 1, 2, 3, ...
func EnumerateOrderedPartitions(ground Set) []OrderedPartition {
	if ground.IsEmpty() {
		return []OrderedPartition{{}}
	}
	var out []OrderedPartition
	// Choose the first block (any non-empty subset), recurse on the rest.
	for _, first := range NonemptySubsets(ground) {
		rest := ground.Diff(first)
		for _, tail := range EnumerateOrderedPartitions(rest) {
			op := make(OrderedPartition, 0, 1+len(tail))
			op = append(op, first)
			op = append(op, tail...)
			out = append(out, op)
		}
	}
	return out
}

// CountOrderedPartitions returns the ordered Bell number a(n): the number
// of ordered partitions of an n-element set. a(0) = 1.
func CountOrderedPartitions(n int) uint64 {
	// a(n) = sum_{k=1..n} C(n,k) a(n-k)
	a := make([]uint64, n+1)
	a[0] = 1
	for m := 1; m <= n; m++ {
		var sum uint64
		c := uint64(1) // C(m, k)
		for k := 1; k <= m; k++ {
			c = c * uint64(m-k+1) / uint64(k)
			sum += c * a[m-k]
		}
		a[m] = sum
	}
	return a[n]
}

// RandomOrderedPartition draws a uniformly-ish random ordered partition of
// ground using rng: it shuffles the members and inserts block boundaries
// with probability 1/2. (Not exactly uniform over ordered partitions; it
// is a schedule generator, not a statistical estimator, and it reaches
// every partition with positive probability.)
func RandomOrderedPartition(ground Set, rng *rand.Rand) OrderedPartition {
	members := ground.Members()
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	var out OrderedPartition
	cur := EmptySet
	for i, p := range members {
		cur = cur.Add(p)
		if i == len(members)-1 || rng.Intn(2) == 0 {
			out = append(out, cur)
			cur = EmptySet
		}
	}
	return out
}

// SingletonOrder returns the fully sequential ordered partition following
// the given order of processes, e.g. {p2}, {p1}, {p3}.
func SingletonOrder(order ...ID) OrderedPartition {
	out := make(OrderedPartition, len(order))
	for i, p := range order {
		out[i] = SetOf(p)
	}
	return out
}

// Synchronous returns the one-block partition {P}: the fully synchronous
// IS run of Figure 3b.
func Synchronous(ground Set) OrderedPartition {
	return OrderedPartition{ground}
}
