package procs

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// OrderedPartition is an ordered partition of a ground set into non-empty
// blocks. It is the combinatorial form of a one-round immediate-snapshot
// schedule: the processes of block i take their WriteSnapshot "at the same
// time", after all blocks j < i. The view of a process is the union of its
// own block and all earlier blocks (containment + immediacy of IS).
type OrderedPartition []Set

// Validation errors for ordered partitions.
var (
	ErrEmptyBlock    = errors.New("ordered partition has an empty block")
	ErrOverlap       = errors.New("ordered partition blocks overlap")
	ErrWrongGround   = errors.New("ordered partition does not cover the ground set")
	ErrUnknownMember = errors.New("process not in ordered partition")
)

// Validate checks that op is an ordered partition of ground.
func (op OrderedPartition) Validate(ground Set) error {
	var seen Set
	for _, b := range op {
		if b.IsEmpty() {
			return ErrEmptyBlock
		}
		if seen.Intersects(b) {
			return ErrOverlap
		}
		seen = seen.Union(b)
	}
	if seen != ground {
		return fmt.Errorf("%w: covered %v, want %v", ErrWrongGround, seen, ground)
	}
	return nil
}

// Ground returns the union of all blocks.
func (op OrderedPartition) Ground() Set {
	var g Set
	for _, b := range op {
		g = g.Union(b)
	}
	return g
}

// BlockOf returns the index of the block containing p, or -1 if absent.
func (op OrderedPartition) BlockOf(p ID) int {
	for i, b := range op {
		if b.Contains(p) {
			return i
		}
	}
	return -1
}

// ViewOf returns the IS view of process p under this schedule: the union
// of p's block with all earlier blocks. ok is false if p is not in the
// partition.
func (op OrderedPartition) ViewOf(p ID) (view Set, ok bool) {
	var acc Set
	for _, b := range op {
		acc = acc.Union(b)
		if b.Contains(p) {
			return acc, true
		}
	}
	return 0, false
}

// Views returns the map of every participating process to its IS view.
func (op OrderedPartition) Views() map[ID]Set {
	out := make(map[ID]Set, op.Ground().Size())
	var acc Set
	for _, b := range op {
		acc = acc.Union(b)
		view := acc
		b.ForEach(func(p ID) { out[p] = view })
	}
	return out
}

// Prefix returns the union of the first k blocks.
func (op OrderedPartition) Prefix(k int) Set {
	var acc Set
	for i := 0; i < k && i < len(op); i++ {
		acc = acc.Union(op[i])
	}
	return acc
}

// Equal reports whether two ordered partitions are identical.
func (op OrderedPartition) Equal(other OrderedPartition) bool {
	if len(op) != len(other) {
		return false
	}
	for i := range op {
		if op[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of op.
func (op OrderedPartition) Clone() OrderedPartition {
	out := make(OrderedPartition, len(op))
	copy(out, op)
	return out
}

// String renders the partition in the paper's run notation,
// e.g. "{p2}, {p1}, {p3}".
func (op OrderedPartition) String() string {
	parts := make([]string, len(op))
	for i, b := range op {
		parts[i] = b.String()
	}
	return strings.Join(parts, ", ")
}

// Key returns a compact canonical key for use in maps.
func (op OrderedPartition) Key() string {
	var b strings.Builder
	b.Grow(len(op) * 5)
	for _, blk := range op {
		fmt.Fprintf(&b, "%x|", uint32(blk))
	}
	return b.String()
}

// PackedKeyMaxProcs bounds the ground sets PackedKey can encode: the
// nibble layout holds 16 processes in at most 15 blocks (1-based block
// indices must fit a nibble). Ordered-partition enumeration grows with
// the Fubini numbers (4683 at n=6, ~10^9 at n=12), so every enumerable
// instance fits with a wide margin.
const PackedKeyMaxProcs = 16

// PackedKey encodes the partition as a single comparable word: the
// nibble at position 4p holds the 1-based block index of process p, 0
// marking absence. Two partitions within the packed capacity (ground ⊆
// {p1..p16}, at most 15 blocks) are equal iff their packed keys are;
// the encoding is the membership hot-path key, replacing the fmt-built
// string form of Key. Panics beyond the capacity rather than colliding.
func (op OrderedPartition) PackedKey() uint64 {
	if len(op) >= PackedKeyMaxProcs {
		// Block index PackedKeyMaxProcs would not fit its nibble.
		panic("procs: PackedKey on partition with more than 15 blocks")
	}
	var key uint64
	for i, blk := range op {
		if uint32(blk)>>PackedKeyMaxProcs != 0 {
			panic("procs: PackedKey on partition beyond PackedKeyMaxProcs")
		}
		idx := uint64(i + 1)
		for b := blk; b != 0; {
			p := ID(bits.TrailingZeros32(uint32(b)))
			key |= idx << (4 * uint(p))
			b = b.Remove(p)
		}
	}
	return key
}

// EnumerateOrderedPartitions returns every ordered partition of ground,
// in a deterministic order. The count is the ordered Bell (Fubini) number
// of |ground|: 1, 3, 13, 75, 541, 4683, ... for |ground| = 1, 2, 3, ...
func EnumerateOrderedPartitions(ground Set) []OrderedPartition {
	if ground.IsEmpty() {
		return []OrderedPartition{{}}
	}
	var out []OrderedPartition
	// Choose the first block (any non-empty subset), recurse on the rest.
	for _, first := range NonemptySubsets(ground) {
		rest := ground.Diff(first)
		for _, tail := range EnumerateOrderedPartitions(rest) {
			op := make(OrderedPartition, 0, 1+len(tail))
			op = append(op, first)
			op = append(op, tail...)
			out = append(out, op)
		}
	}
	return out
}

// CountOrderedPartitions returns the ordered Bell number a(n): the number
// of ordered partitions of an n-element set. a(0) = 1.
func CountOrderedPartitions(n int) uint64 {
	// a(n) = sum_{k=1..n} C(n,k) a(n-k)
	a := make([]uint64, n+1)
	a[0] = 1
	for m := 1; m <= n; m++ {
		var sum uint64
		c := uint64(1) // C(m, k)
		for k := 1; k <= m; k++ {
			c = c * uint64(m-k+1) / uint64(k)
			sum += c * a[m-k]
		}
		a[m] = sum
	}
	return a[n]
}

// RandomOrderedPartition draws a uniformly-ish random ordered partition of
// ground using rng: it shuffles the members and inserts block boundaries
// with probability 1/2. (Not exactly uniform over ordered partitions; it
// is a schedule generator, not a statistical estimator, and it reaches
// every partition with positive probability.)
func RandomOrderedPartition(ground Set, rng *rand.Rand) OrderedPartition {
	members := ground.Members()
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	var out OrderedPartition
	cur := EmptySet
	for i, p := range members {
		cur = cur.Add(p)
		if i == len(members)-1 || rng.Intn(2) == 0 {
			out = append(out, cur)
			cur = EmptySet
		}
	}
	return out
}

// SingletonOrder returns the fully sequential ordered partition following
// the given order of processes, e.g. {p2}, {p1}, {p3}.
func SingletonOrder(order ...ID) OrderedPartition {
	out := make(OrderedPartition, len(order))
	for i, p := range order {
		out[i] = SetOf(p)
	}
	return out
}

// Synchronous returns the one-block partition {P}: the fully synchronous
// IS run of Figure 3b.
func Synchronous(ground Set) OrderedPartition {
	return OrderedPartition{ground}
}
