package procs

import "testing"

// TestPackedKeyInjective checks that PackedKey is collision-free over
// every ordered partition of every subset of a 5-process system — the
// same key space the membership hot path relies on.
func TestPackedKeyInjective(t *testing.T) {
	seen := make(map[uint64]string)
	for _, ground := range NonemptySubsets(FullSet(5)) {
		for _, op := range EnumerateOrderedPartitions(ground) {
			k := op.PackedKey()
			if prev, ok := seen[k]; ok {
				t.Fatalf("PackedKey collision: %v and %s share %#x", op, prev, k)
			}
			seen[k] = op.String()
		}
	}
}

// TestPackedKeyMatchesStringKey checks that the binary key induces the
// same equivalence as the canonical string key.
func TestPackedKeyMatchesStringKey(t *testing.T) {
	ops := EnumerateOrderedPartitions(FullSet(4))
	for _, a := range ops {
		for _, b := range ops {
			if (a.Key() == b.Key()) != (a.PackedKey() == b.PackedKey()) {
				t.Fatalf("key equivalence mismatch: %v vs %v", a, b)
			}
		}
	}
}

func TestPackedKeyOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackedKey beyond PackedKeyMaxProcs should panic")
		}
	}()
	op := OrderedPartition{SetOf(ID(PackedKeyMaxProcs))}
	_ = op.PackedKey()
}

// TestPackedKeyBlockCapacity pins the nibble-capacity boundary: 15
// singleton blocks encode (and stay distinct from nearby partitions),
// 16 blocks panic instead of silently colliding with the 15-block key.
func TestPackedKeyBlockCapacity(t *testing.T) {
	blocks15 := make(OrderedPartition, 0, 15)
	for p := 0; p < 15; p++ {
		blocks15 = append(blocks15, SetOf(ID(p)))
	}
	merged := make(OrderedPartition, 0, 14)
	merged = append(merged, SetOf(0, 1))
	merged = append(merged, blocks15[2:]...)
	if blocks15.PackedKey() == merged.PackedKey() {
		t.Fatal("15-block and 14-block partitions collide")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("16-block partition should panic, not collide")
		}
	}()
	blocks16 := append(blocks15.Clone(), SetOf(15))
	_ = blocks16.PackedKey()
}
