package procs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := SetOf(0, 2)
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2) {
		t.Fatalf("membership wrong for %v", s)
	}
	if got := s.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	if s.String() != "{p1,p3}" {
		t.Fatalf("String = %q, want {p1,p3}", s.String())
	}
	if EmptySet.String() != "{}" {
		t.Fatalf("empty String = %q", EmptySet.String())
	}
}

func TestFullSet(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{{0, 0}, {1, 1}, {3, 3}, {5, 5}, {32, 32}}
	for _, c := range cases {
		if got := FullSet(c.n).Size(); got != c.want {
			t.Errorf("FullSet(%d).Size = %d, want %d", c.n, got, c.want)
		}
	}
	if FullSet(40).Size() != MaxProcs {
		t.Errorf("FullSet should clamp at MaxProcs")
	}
	if FullSet(-1) != EmptySet {
		t.Errorf("FullSet(-1) should be empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(0, 1)
	b := SetOf(1, 2)
	if a.Union(b) != SetOf(0, 1, 2) {
		t.Errorf("union wrong")
	}
	if a.Intersect(b) != SetOf(1) {
		t.Errorf("intersect wrong")
	}
	if a.Diff(b) != SetOf(0) {
		t.Errorf("diff wrong")
	}
	if !SetOf(1).SubsetOf(a) || SetOf(2).SubsetOf(a) {
		t.Errorf("subset wrong")
	}
	if !SetOf(1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Errorf("proper subset wrong")
	}
	if !a.Intersects(b) || a.Intersects(SetOf(3)) {
		t.Errorf("intersects wrong")
	}
}

func TestMinMembers(t *testing.T) {
	if _, ok := EmptySet.Min(); ok {
		t.Errorf("Min of empty should report !ok")
	}
	m, ok := SetOf(3, 1, 4).Min()
	if !ok || m != 1 {
		t.Errorf("Min = %v, want p2", m)
	}
	got := SetOf(2, 0).Members()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Members = %v", got)
	}
}

func TestSubsets(t *testing.T) {
	s := SetOf(0, 2, 3)
	subs := Subsets(s)
	if len(subs) != 8 {
		t.Fatalf("len(Subsets) = %d, want 8", len(subs))
	}
	seen := map[Set]bool{}
	for _, sub := range subs {
		if !sub.SubsetOf(s) {
			t.Errorf("%v not a subset of %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
	}
	if len(NonemptySubsets(s)) != 7 {
		t.Errorf("NonemptySubsets count wrong")
	}
	if got := len(SubsetsOfSize(s, 2)); got != 3 {
		t.Errorf("SubsetsOfSize(2) = %d, want 3", got)
	}
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	count := 0
	ForEachSubset(FullSet(4), func(Set) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop failed, count = %d", count)
	}
}

func TestSubsetsPropertyCount(t *testing.T) {
	// Property: |Subsets(s)| == 2^|s| for any s over a small universe.
	f := func(raw uint16) bool {
		s := Set(raw) & FullSet(10)
		return len(Subsets(s)) == 1<<uint(s.Size())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderedPartitionViews(t *testing.T) {
	// The paper's Figure 3a run: {p2}, {p1}, {p3}.
	op := SingletonOrder(1, 0, 2)
	if err := op.Validate(FullSet(3)); err != nil {
		t.Fatal(err)
	}
	wantViews := map[ID]Set{
		1: SetOf(1),       // p2 sees {p2}
		0: SetOf(0, 1),    // p1 sees {p1,p2}
		2: SetOf(0, 1, 2), // p3 sees {p1,p2,p3}
	}
	views := op.Views()
	for p, want := range wantViews {
		if views[p] != want {
			t.Errorf("view of %v = %v, want %v", p, views[p], want)
		}
	}
	// Figure 3b: synchronous run {p1,p2,p3}: all see everything.
	sync := Synchronous(FullSet(3))
	for p, v := range sync.Views() {
		if v != FullSet(3) {
			t.Errorf("synchronous view of %v = %v", p, v)
		}
	}
}

func TestOrderedPartitionValidate(t *testing.T) {
	g := FullSet(3)
	cases := []struct {
		name string
		op   OrderedPartition
		ok   bool
	}{
		{"valid", OrderedPartition{SetOf(1), SetOf(0, 2)}, true},
		{"empty block", OrderedPartition{SetOf(1), EmptySet, SetOf(0, 2)}, false},
		{"overlap", OrderedPartition{SetOf(1), SetOf(1, 0, 2)}, false},
		{"incomplete", OrderedPartition{SetOf(1)}, false},
	}
	for _, c := range cases {
		err := c.op.Validate(g)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestEnumerateOrderedPartitionsCounts(t *testing.T) {
	// Ordered Bell numbers: 1, 1, 3, 13, 75, 541.
	want := []uint64{1, 1, 3, 13, 75, 541}
	for n := 0; n <= 5; n++ {
		ops := EnumerateOrderedPartitions(FullSet(n))
		if uint64(len(ops)) != want[n] {
			t.Errorf("n=%d: %d partitions, want %d", n, len(ops), want[n])
		}
		if CountOrderedPartitions(n) != want[n] {
			t.Errorf("CountOrderedPartitions(%d) = %d, want %d",
				n, CountOrderedPartitions(n), want[n])
		}
		seen := map[string]bool{}
		for _, op := range ops {
			if err := op.Validate(FullSet(n)); err != nil {
				t.Fatalf("n=%d: invalid partition %v: %v", n, op, err)
			}
			k := op.Key()
			if seen[k] {
				t.Fatalf("n=%d: duplicate partition %v", n, op)
			}
			seen[k] = true
		}
	}
}

func TestOrderedPartitionContainmentImmediacy(t *testing.T) {
	// IS axioms hold for the views of every ordered partition (n = 4):
	// self-inclusion, containment, immediacy.
	ground := FullSet(4)
	for _, op := range EnumerateOrderedPartitions(ground) {
		views := op.Views()
		for p, vp := range views {
			if !vp.Contains(p) {
				t.Fatalf("self-inclusion fails: %v ∉ %v in %v", p, vp, op)
			}
			for q, vq := range views {
				if !vp.SubsetOf(vq) && !vq.SubsetOf(vp) {
					t.Fatalf("containment fails for %v,%v in %v", p, q, op)
				}
				if vp.Contains(q) && !vq.SubsetOf(vp) {
					t.Fatalf("immediacy fails for %v,%v in %v", p, q, op)
				}
			}
		}
	}
}

func TestRandomOrderedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ground := FullSet(5)
	for i := 0; i < 200; i++ {
		op := RandomOrderedPartition(ground, rng)
		if err := op.Validate(ground); err != nil {
			t.Fatalf("random partition invalid: %v (%v)", err, op)
		}
	}
	// Reaches at least both extremes over many draws at n=2.
	sawSync, sawSeq := false, false
	for i := 0; i < 200; i++ {
		op := RandomOrderedPartition(FullSet(2), rng)
		if len(op) == 1 {
			sawSync = true
		}
		if len(op) == 2 {
			sawSeq = true
		}
	}
	if !sawSync || !sawSeq {
		t.Errorf("random partitions not diverse: sync=%v seq=%v", sawSync, sawSeq)
	}
}

func TestPartitionHelpers(t *testing.T) {
	op := OrderedPartition{SetOf(1), SetOf(0, 2)}
	if op.BlockOf(2) != 1 || op.BlockOf(1) != 0 || op.BlockOf(3) != -1 {
		t.Errorf("BlockOf wrong")
	}
	if op.Prefix(1) != SetOf(1) || op.Prefix(2) != FullSet(3) || op.Prefix(9) != FullSet(3) {
		t.Errorf("Prefix wrong")
	}
	if _, ok := op.ViewOf(5); ok {
		t.Errorf("ViewOf absent process should fail")
	}
	if !op.Equal(op.Clone()) {
		t.Errorf("Clone not equal")
	}
	if op.Equal(OrderedPartition{SetOf(1)}) {
		t.Errorf("Equal false positive")
	}
	if op.String() != "{p2}, {p1,p3}" {
		t.Errorf("String = %q", op.String())
	}
	if op.Ground() != FullSet(3) {
		t.Errorf("Ground wrong")
	}
}
